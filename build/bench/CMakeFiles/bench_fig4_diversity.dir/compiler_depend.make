# Empty compiler generated dependencies file for bench_fig4_diversity.
# This may be replaced when dependencies are built.
