file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_proxy.dir/bench_fig5_proxy.cc.o"
  "CMakeFiles/bench_fig5_proxy.dir/bench_fig5_proxy.cc.o.d"
  "bench_fig5_proxy"
  "bench_fig5_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
