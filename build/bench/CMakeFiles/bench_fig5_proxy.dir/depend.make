# Empty dependencies file for bench_fig5_proxy.
# This may be replaced when dependencies are built.
