# Empty compiler generated dependencies file for fair_pool.
# This may be replaced when dependencies are built.
