file(REMOVE_RECURSE
  "CMakeFiles/fair_pool.dir/fair_pool.cpp.o"
  "CMakeFiles/fair_pool.dir/fair_pool.cpp.o.d"
  "fair_pool"
  "fair_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fair_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
