file(REMOVE_RECURSE
  "CMakeFiles/recidivism_audit.dir/recidivism_audit.cpp.o"
  "CMakeFiles/recidivism_audit.dir/recidivism_audit.cpp.o.d"
  "recidivism_audit"
  "recidivism_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recidivism_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
