# Empty dependencies file for recidivism_audit.
# This may be replaced when dependencies are built.
