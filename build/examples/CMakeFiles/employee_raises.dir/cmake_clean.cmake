file(REMOVE_RECURSE
  "CMakeFiles/employee_raises.dir/employee_raises.cpp.o"
  "CMakeFiles/employee_raises.dir/employee_raises.cpp.o.d"
  "employee_raises"
  "employee_raises.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/employee_raises.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
