# Empty dependencies file for employee_raises.
# This may be replaced when dependencies are built.
