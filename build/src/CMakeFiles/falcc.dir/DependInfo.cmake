
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/decouple.cc" "src/CMakeFiles/falcc.dir/baselines/decouple.cc.o" "gcc" "src/CMakeFiles/falcc.dir/baselines/decouple.cc.o.d"
  "/root/repo/src/baselines/fair_ensembles.cc" "src/CMakeFiles/falcc.dir/baselines/fair_ensembles.cc.o" "gcc" "src/CMakeFiles/falcc.dir/baselines/fair_ensembles.cc.o.d"
  "/root/repo/src/baselines/fair_smote.cc" "src/CMakeFiles/falcc.dir/baselines/fair_smote.cc.o" "gcc" "src/CMakeFiles/falcc.dir/baselines/fair_smote.cc.o.d"
  "/root/repo/src/baselines/fairboost.cc" "src/CMakeFiles/falcc.dir/baselines/fairboost.cc.o" "gcc" "src/CMakeFiles/falcc.dir/baselines/fairboost.cc.o.d"
  "/root/repo/src/baselines/falces.cc" "src/CMakeFiles/falcc.dir/baselines/falces.cc.o" "gcc" "src/CMakeFiles/falcc.dir/baselines/falces.cc.o.d"
  "/root/repo/src/baselines/fax.cc" "src/CMakeFiles/falcc.dir/baselines/fax.cc.o" "gcc" "src/CMakeFiles/falcc.dir/baselines/fax.cc.o.d"
  "/root/repo/src/baselines/ifair.cc" "src/CMakeFiles/falcc.dir/baselines/ifair.cc.o" "gcc" "src/CMakeFiles/falcc.dir/baselines/ifair.cc.o.d"
  "/root/repo/src/baselines/lfr.cc" "src/CMakeFiles/falcc.dir/baselines/lfr.cc.o" "gcc" "src/CMakeFiles/falcc.dir/baselines/lfr.cc.o.d"
  "/root/repo/src/cluster/kdtree.cc" "src/CMakeFiles/falcc.dir/cluster/kdtree.cc.o" "gcc" "src/CMakeFiles/falcc.dir/cluster/kdtree.cc.o.d"
  "/root/repo/src/cluster/kmeans.cc" "src/CMakeFiles/falcc.dir/cluster/kmeans.cc.o" "gcc" "src/CMakeFiles/falcc.dir/cluster/kmeans.cc.o.d"
  "/root/repo/src/cluster/logmeans.cc" "src/CMakeFiles/falcc.dir/cluster/logmeans.cc.o" "gcc" "src/CMakeFiles/falcc.dir/cluster/logmeans.cc.o.d"
  "/root/repo/src/cluster/xmeans.cc" "src/CMakeFiles/falcc.dir/cluster/xmeans.cc.o" "gcc" "src/CMakeFiles/falcc.dir/cluster/xmeans.cc.o.d"
  "/root/repo/src/core/assessment.cc" "src/CMakeFiles/falcc.dir/core/assessment.cc.o" "gcc" "src/CMakeFiles/falcc.dir/core/assessment.cc.o.d"
  "/root/repo/src/core/falcc.cc" "src/CMakeFiles/falcc.dir/core/falcc.cc.o" "gcc" "src/CMakeFiles/falcc.dir/core/falcc.cc.o.d"
  "/root/repo/src/core/model_pool.cc" "src/CMakeFiles/falcc.dir/core/model_pool.cc.o" "gcc" "src/CMakeFiles/falcc.dir/core/model_pool.cc.o.d"
  "/root/repo/src/core/tuning.cc" "src/CMakeFiles/falcc.dir/core/tuning.cc.o" "gcc" "src/CMakeFiles/falcc.dir/core/tuning.cc.o.d"
  "/root/repo/src/data/csv_dataset.cc" "src/CMakeFiles/falcc.dir/data/csv_dataset.cc.o" "gcc" "src/CMakeFiles/falcc.dir/data/csv_dataset.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/CMakeFiles/falcc.dir/data/dataset.cc.o" "gcc" "src/CMakeFiles/falcc.dir/data/dataset.cc.o.d"
  "/root/repo/src/data/groups.cc" "src/CMakeFiles/falcc.dir/data/groups.cc.o" "gcc" "src/CMakeFiles/falcc.dir/data/groups.cc.o.d"
  "/root/repo/src/data/split.cc" "src/CMakeFiles/falcc.dir/data/split.cc.o" "gcc" "src/CMakeFiles/falcc.dir/data/split.cc.o.d"
  "/root/repo/src/data/transforms.cc" "src/CMakeFiles/falcc.dir/data/transforms.cc.o" "gcc" "src/CMakeFiles/falcc.dir/data/transforms.cc.o.d"
  "/root/repo/src/datagen/benchmark_data.cc" "src/CMakeFiles/falcc.dir/datagen/benchmark_data.cc.o" "gcc" "src/CMakeFiles/falcc.dir/datagen/benchmark_data.cc.o.d"
  "/root/repo/src/datagen/synthetic.cc" "src/CMakeFiles/falcc.dir/datagen/synthetic.cc.o" "gcc" "src/CMakeFiles/falcc.dir/datagen/synthetic.cc.o.d"
  "/root/repo/src/eval/experiment.cc" "src/CMakeFiles/falcc.dir/eval/experiment.cc.o" "gcc" "src/CMakeFiles/falcc.dir/eval/experiment.cc.o.d"
  "/root/repo/src/eval/pareto.cc" "src/CMakeFiles/falcc.dir/eval/pareto.cc.o" "gcc" "src/CMakeFiles/falcc.dir/eval/pareto.cc.o.d"
  "/root/repo/src/eval/report.cc" "src/CMakeFiles/falcc.dir/eval/report.cc.o" "gcc" "src/CMakeFiles/falcc.dir/eval/report.cc.o.d"
  "/root/repo/src/fairness/audit.cc" "src/CMakeFiles/falcc.dir/fairness/audit.cc.o" "gcc" "src/CMakeFiles/falcc.dir/fairness/audit.cc.o.d"
  "/root/repo/src/fairness/diversity.cc" "src/CMakeFiles/falcc.dir/fairness/diversity.cc.o" "gcc" "src/CMakeFiles/falcc.dir/fairness/diversity.cc.o.d"
  "/root/repo/src/fairness/loss.cc" "src/CMakeFiles/falcc.dir/fairness/loss.cc.o" "gcc" "src/CMakeFiles/falcc.dir/fairness/loss.cc.o.d"
  "/root/repo/src/fairness/metrics.cc" "src/CMakeFiles/falcc.dir/fairness/metrics.cc.o" "gcc" "src/CMakeFiles/falcc.dir/fairness/metrics.cc.o.d"
  "/root/repo/src/fairness/proxy.cc" "src/CMakeFiles/falcc.dir/fairness/proxy.cc.o" "gcc" "src/CMakeFiles/falcc.dir/fairness/proxy.cc.o.d"
  "/root/repo/src/ml/adaboost.cc" "src/CMakeFiles/falcc.dir/ml/adaboost.cc.o" "gcc" "src/CMakeFiles/falcc.dir/ml/adaboost.cc.o.d"
  "/root/repo/src/ml/classifier.cc" "src/CMakeFiles/falcc.dir/ml/classifier.cc.o" "gcc" "src/CMakeFiles/falcc.dir/ml/classifier.cc.o.d"
  "/root/repo/src/ml/decision_tree.cc" "src/CMakeFiles/falcc.dir/ml/decision_tree.cc.o" "gcc" "src/CMakeFiles/falcc.dir/ml/decision_tree.cc.o.d"
  "/root/repo/src/ml/grid_search.cc" "src/CMakeFiles/falcc.dir/ml/grid_search.cc.o" "gcc" "src/CMakeFiles/falcc.dir/ml/grid_search.cc.o.d"
  "/root/repo/src/ml/knn_classifier.cc" "src/CMakeFiles/falcc.dir/ml/knn_classifier.cc.o" "gcc" "src/CMakeFiles/falcc.dir/ml/knn_classifier.cc.o.d"
  "/root/repo/src/ml/logistic_regression.cc" "src/CMakeFiles/falcc.dir/ml/logistic_regression.cc.o" "gcc" "src/CMakeFiles/falcc.dir/ml/logistic_regression.cc.o.d"
  "/root/repo/src/ml/naive_bayes.cc" "src/CMakeFiles/falcc.dir/ml/naive_bayes.cc.o" "gcc" "src/CMakeFiles/falcc.dir/ml/naive_bayes.cc.o.d"
  "/root/repo/src/ml/random_forest.cc" "src/CMakeFiles/falcc.dir/ml/random_forest.cc.o" "gcc" "src/CMakeFiles/falcc.dir/ml/random_forest.cc.o.d"
  "/root/repo/src/ml/serialize.cc" "src/CMakeFiles/falcc.dir/ml/serialize.cc.o" "gcc" "src/CMakeFiles/falcc.dir/ml/serialize.cc.o.d"
  "/root/repo/src/util/csv.cc" "src/CMakeFiles/falcc.dir/util/csv.cc.o" "gcc" "src/CMakeFiles/falcc.dir/util/csv.cc.o.d"
  "/root/repo/src/util/math.cc" "src/CMakeFiles/falcc.dir/util/math.cc.o" "gcc" "src/CMakeFiles/falcc.dir/util/math.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/CMakeFiles/falcc.dir/util/rng.cc.o" "gcc" "src/CMakeFiles/falcc.dir/util/rng.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/falcc.dir/util/status.cc.o" "gcc" "src/CMakeFiles/falcc.dir/util/status.cc.o.d"
  "/root/repo/src/util/timer.cc" "src/CMakeFiles/falcc.dir/util/timer.cc.o" "gcc" "src/CMakeFiles/falcc.dir/util/timer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
