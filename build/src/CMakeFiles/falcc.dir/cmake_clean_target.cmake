file(REMOVE_RECURSE
  "libfalcc.a"
)
