# Empty dependencies file for falcc.
# This may be replaced when dependencies are built.
