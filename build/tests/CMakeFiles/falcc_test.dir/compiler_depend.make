# Empty compiler generated dependencies file for falcc_test.
# This may be replaced when dependencies are built.
