file(REMOVE_RECURSE
  "CMakeFiles/falcc_test.dir/falcc_test.cc.o"
  "CMakeFiles/falcc_test.dir/falcc_test.cc.o.d"
  "falcc_test"
  "falcc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/falcc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
