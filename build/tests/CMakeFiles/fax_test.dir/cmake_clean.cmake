file(REMOVE_RECURSE
  "CMakeFiles/fax_test.dir/fax_test.cc.o"
  "CMakeFiles/fax_test.dir/fax_test.cc.o.d"
  "fax_test"
  "fax_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fax_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
