# Empty compiler generated dependencies file for fax_test.
# This may be replaced when dependencies are built.
