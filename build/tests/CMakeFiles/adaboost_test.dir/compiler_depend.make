# Empty compiler generated dependencies file for adaboost_test.
# This may be replaced when dependencies are built.
