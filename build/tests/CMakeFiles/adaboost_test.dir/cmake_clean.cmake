file(REMOVE_RECURSE
  "CMakeFiles/adaboost_test.dir/adaboost_test.cc.o"
  "CMakeFiles/adaboost_test.dir/adaboost_test.cc.o.d"
  "adaboost_test"
  "adaboost_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaboost_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
