# Empty compiler generated dependencies file for knn_classifier_test.
# This may be replaced when dependencies are built.
