file(REMOVE_RECURSE
  "CMakeFiles/knn_classifier_test.dir/knn_classifier_test.cc.o"
  "CMakeFiles/knn_classifier_test.dir/knn_classifier_test.cc.o.d"
  "knn_classifier_test"
  "knn_classifier_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knn_classifier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
