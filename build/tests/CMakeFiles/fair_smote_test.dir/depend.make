# Empty dependencies file for fair_smote_test.
# This may be replaced when dependencies are built.
