file(REMOVE_RECURSE
  "CMakeFiles/fair_smote_test.dir/fair_smote_test.cc.o"
  "CMakeFiles/fair_smote_test.dir/fair_smote_test.cc.o.d"
  "fair_smote_test"
  "fair_smote_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fair_smote_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
