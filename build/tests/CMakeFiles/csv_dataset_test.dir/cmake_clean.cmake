file(REMOVE_RECURSE
  "CMakeFiles/csv_dataset_test.dir/csv_dataset_test.cc.o"
  "CMakeFiles/csv_dataset_test.dir/csv_dataset_test.cc.o.d"
  "csv_dataset_test"
  "csv_dataset_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csv_dataset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
