# Empty dependencies file for csv_dataset_test.
# This may be replaced when dependencies are built.
