# Empty dependencies file for ifair_test.
# This may be replaced when dependencies are built.
