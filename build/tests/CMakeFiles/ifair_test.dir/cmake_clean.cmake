file(REMOVE_RECURSE
  "CMakeFiles/ifair_test.dir/ifair_test.cc.o"
  "CMakeFiles/ifair_test.dir/ifair_test.cc.o.d"
  "ifair_test"
  "ifair_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ifair_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
