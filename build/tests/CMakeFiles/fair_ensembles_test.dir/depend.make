# Empty dependencies file for fair_ensembles_test.
# This may be replaced when dependencies are built.
