file(REMOVE_RECURSE
  "CMakeFiles/fair_ensembles_test.dir/fair_ensembles_test.cc.o"
  "CMakeFiles/fair_ensembles_test.dir/fair_ensembles_test.cc.o.d"
  "fair_ensembles_test"
  "fair_ensembles_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fair_ensembles_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
