# Empty compiler generated dependencies file for benchmark_data_test.
# This may be replaced when dependencies are built.
