file(REMOVE_RECURSE
  "CMakeFiles/benchmark_data_test.dir/benchmark_data_test.cc.o"
  "CMakeFiles/benchmark_data_test.dir/benchmark_data_test.cc.o.d"
  "benchmark_data_test"
  "benchmark_data_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benchmark_data_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
