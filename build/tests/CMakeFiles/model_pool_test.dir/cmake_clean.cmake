file(REMOVE_RECURSE
  "CMakeFiles/model_pool_test.dir/model_pool_test.cc.o"
  "CMakeFiles/model_pool_test.dir/model_pool_test.cc.o.d"
  "model_pool_test"
  "model_pool_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
