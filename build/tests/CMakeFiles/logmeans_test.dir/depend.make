# Empty dependencies file for logmeans_test.
# This may be replaced when dependencies are built.
