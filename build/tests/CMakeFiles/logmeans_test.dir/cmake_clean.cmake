file(REMOVE_RECURSE
  "CMakeFiles/logmeans_test.dir/logmeans_test.cc.o"
  "CMakeFiles/logmeans_test.dir/logmeans_test.cc.o.d"
  "logmeans_test"
  "logmeans_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logmeans_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
