file(REMOVE_RECURSE
  "CMakeFiles/decouple_test.dir/decouple_test.cc.o"
  "CMakeFiles/decouple_test.dir/decouple_test.cc.o.d"
  "decouple_test"
  "decouple_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decouple_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
