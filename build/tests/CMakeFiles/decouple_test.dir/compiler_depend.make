# Empty compiler generated dependencies file for decouple_test.
# This may be replaced when dependencies are built.
