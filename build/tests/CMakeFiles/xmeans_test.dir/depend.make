# Empty dependencies file for xmeans_test.
# This may be replaced when dependencies are built.
