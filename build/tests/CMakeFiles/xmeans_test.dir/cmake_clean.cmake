file(REMOVE_RECURSE
  "CMakeFiles/xmeans_test.dir/xmeans_test.cc.o"
  "CMakeFiles/xmeans_test.dir/xmeans_test.cc.o.d"
  "xmeans_test"
  "xmeans_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmeans_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
