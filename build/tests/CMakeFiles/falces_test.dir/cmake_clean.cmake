file(REMOVE_RECURSE
  "CMakeFiles/falces_test.dir/falces_test.cc.o"
  "CMakeFiles/falces_test.dir/falces_test.cc.o.d"
  "falces_test"
  "falces_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/falces_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
