# Empty dependencies file for falces_test.
# This may be replaced when dependencies are built.
