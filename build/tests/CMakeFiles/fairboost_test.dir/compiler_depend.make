# Empty compiler generated dependencies file for fairboost_test.
# This may be replaced when dependencies are built.
