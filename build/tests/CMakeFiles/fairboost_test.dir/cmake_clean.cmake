file(REMOVE_RECURSE
  "CMakeFiles/fairboost_test.dir/fairboost_test.cc.o"
  "CMakeFiles/fairboost_test.dir/fairboost_test.cc.o.d"
  "fairboost_test"
  "fairboost_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairboost_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
