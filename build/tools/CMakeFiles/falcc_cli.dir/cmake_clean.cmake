file(REMOVE_RECURSE
  "CMakeFiles/falcc_cli.dir/falcc_cli.cc.o"
  "CMakeFiles/falcc_cli.dir/falcc_cli.cc.o.d"
  "falcc_cli"
  "falcc_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/falcc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
