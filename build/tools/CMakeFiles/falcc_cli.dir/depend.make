# Empty dependencies file for falcc_cli.
# This may be replaced when dependencies are built.
