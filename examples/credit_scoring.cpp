// Credit scoring with proxy-discrimination mitigation.
//
// Uses the Credit Card Clients stand-in dataset (Tab. 4 metadata) and
// compares FALCC under the three proxy strategies (none / reweigh /
// remove), reporting accuracy, global bias, and local loss for each —
// a per-dataset slice of the paper's Fig. 5 experiment.

#include <cstdio>

#include "core/falcc.h"
#include "data/split.h"
#include "datagen/benchmark_data.h"
#include "fairness/loss.h"

namespace {

const char* StrategyName(falcc::ProxyMitigation s) {
  switch (s) {
    case falcc::ProxyMitigation::kNone:
      return "none";
    case falcc::ProxyMitigation::kReweigh:
      return "reweigh";
    case falcc::ProxyMitigation::kRemove:
      return "remove";
  }
  return "?";
}

}  // namespace

int main() {
  using namespace falcc;

  BenchmarkDataSpec spec = CreditCardSpec();
  spec.num_proxies = 3;       // strengthen the redlining structure
  spec.proxy_strength = 1.0;
  const Dataset data = GenerateBenchmarkDataset(spec, 21, 0.2).value();
  const TrainValTest splits = SplitDatasetDefault(data, 21).value();
  std::printf("== Credit scoring (%zu applicants, sensitive: %s) ==\n\n",
              data.num_rows(), data.feature_names().back().c_str());
  std::printf("%-8s  %-9s  %-11s  %-10s\n", "strategy", "accuracy",
              "global-bias", "local-loss");

  for (ProxyMitigation strategy :
       {ProxyMitigation::kNone, ProxyMitigation::kReweigh,
        ProxyMitigation::kRemove}) {
    FalccOptions options;
    options.proxy.strategy = strategy;
    options.proxy.removal_threshold = 0.3;
    options.seed = 21;
    const FalccModel model =
        FalccModel::Train(splits.train, splits.validation, options).value();

    const Dataset& test = splits.test;
    const std::vector<int> predictions = model.ClassifyAll(test);
    const GroupIndex index = GroupIndex::Build(test).value();
    GroupedPredictions in;
    in.labels = test.labels();
    in.predictions = predictions;
    const std::vector<size_t> groups = index.GroupsOf(test).value();
    in.groups = groups;
    in.num_groups = index.num_groups();

    const LossBreakdown global =
        CombinedLoss(in, options.metric, options.lambda).value();
    std::vector<size_t> regions(test.num_rows());
    for (size_t i = 0; i < test.num_rows(); ++i) {
      regions[i] = model.MatchCluster(test.Row(i));
    }
    const LossBreakdown local =
        LocalLoss(in, regions, model.num_clusters(), options.metric,
                  options.lambda)
            .value();

    std::printf("%-8s  %8.1f%%  %11.3f  %10.3f\n", StrategyName(strategy),
                100.0 * (1.0 - global.inaccuracy), global.bias,
                local.combined);
  }

  std::printf("\nExpected shape (paper Fig. 5): the mitigation strategies "
              "lower global bias on proxy-ridden data while local loss "
              "stays roughly stable.\n");
  return 0;
}
