// The paper's running example (§3.2): deciding employee raises fairly.
//
// A company wants a decision-support model for raises. The historical
// data is biased against one gender, and "sick leave days" acts as a
// proxy for gender. This example builds that scenario synthetically,
// walks FALCC's offline phase component by component (diverse training,
// proxy analysis, clustering, model assessment), and then classifies two
// near-identical employees of different gender — showing that each is
// served by the model chosen for (their local region, their group).

#include <cstdio>

#include "core/falcc.h"
#include "data/split.h"
#include "datagen/synthetic.h"
#include "fairness/proxy.h"

int main() {
  using namespace falcc;

  // "Employees": 8 attributes (sickLeave-like proxy features first) plus
  // the protected attribute gender; raises historically biased.
  SyntheticConfig config;
  config.num_samples = 5000;
  config.num_proxies = 2;  // e.g. sickLeave correlates with gender
  config.bias = 0.35;
  config.seed = 3;
  const Dataset employees = GenerateImplicitBias(config).value();
  const TrainValTest splits = SplitDatasetDefault(employees, 9).value();

  std::printf("== Employee raise decisions (paper running example) ==\n\n");

  // Component 1: proxy analysis — which attributes leak the gender?
  ProxyOptions proxy_options;
  proxy_options.strategy = ProxyMitigation::kRemove;
  proxy_options.removal_threshold = 0.2;
  const auto reports =
      AnalyzeProxies(splits.validation, proxy_options).value();
  std::printf("proxy analysis of the validation data:\n");
  for (const auto& r : reports) {
    std::printf("  %-8s |rho| = %.3f  weight = %.3f%s\n",
                employees.feature_names()[r.column].c_str(),
                r.mean_abs_correlation, r.weight,
                r.removed ? "  [flagged as proxy]" : "");
  }

  // Components 2-4: the full offline phase with proxy removal.
  FalccOptions options;
  options.proxy = proxy_options;
  options.seed = 9;
  const FalccModel model =
      FalccModel::Train(splits.train, splits.validation, options).value();
  std::printf("\noffline phase: %zu diverse models, %zu local regions\n",
              model.pool().size(), model.num_clusters());
  for (size_t c = 0; c < model.num_clusters(); ++c) {
    std::printf("  region %zu best combination:", c);
    for (size_t g = 0; g < model.num_groups(); ++g) {
      std::printf(" group%zu->%s", g,
                  model.pool()
                      .model(model.selected_combinations()[c][g])
                      .Name()
                      .c_str());
    }
    std::printf("\n");
  }

  // Online phase: two near-identical employees, different gender.
  // (Example 3.5: t of group g_d and t' of group g_f.)
  std::vector<double> t(splits.test.Row(0).begin(), splits.test.Row(0).end());
  std::vector<double> t_prime = t;
  const size_t gender_col = employees.sensitive_features()[0];
  t[gender_col] = 1.0;        // discriminated group
  t_prime[gender_col] = 0.0;  // favored group

  const size_t cluster_t = model.MatchCluster(t);
  const size_t cluster_tp = model.MatchCluster(t_prime);
  std::printf("\nemployee t  (gender=1): region %zu, raise prediction %d\n",
              cluster_t, model.Classify(t));
  std::printf("employee t' (gender=0): region %zu, raise prediction %d\n",
              cluster_tp, model.Classify(t_prime));
  std::printf("\n(cluster matching ignores gender: t and t' share a region"
              "%s)\n",
              cluster_t == cluster_tp ? " - confirmed" : "");
  return 0;
}
