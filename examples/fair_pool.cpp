// The FALCC* configuration (paper §4.2.2): feeding classifiers that were
// themselves optimized for fairness — LFR, Fair-SMOTE, FaX, plus the
// classic 2NB, AdaFair and Reweighing methods — into FALCC's ensemble
// selection via TrainWithPool, then comparing against the default
// diverse-AdaBoost configuration.

#include <cstdio>

#include "baselines/fair_ensembles.h"
#include "baselines/fair_smote.h"
#include "baselines/fax.h"
#include "baselines/lfr.h"
#include "core/falcc.h"
#include "data/split.h"
#include "datagen/benchmark_data.h"
#include "eval/report.h"
#include "fairness/audit.h"

int main() {
  using namespace falcc;

  const Dataset data =
      GenerateBenchmarkDataset(AdultSexSpec(), 55, 0.05).value();
  const TrainValTest splits = SplitDatasetDefault(data, 55).value();
  std::printf("== FALCC with fair classifiers as input (Adult stand-in, "
              "%zu rows) ==\n\n",
              data.num_rows());

  // Build the fair pool. Every method implements Classifier, so the pool
  // is just a list.
  ModelPool pool;
  {
    LfrOptions lfr;
    lfr.seed = 55;
    auto model = std::make_unique<LfrClassifier>(lfr);
    if (!model->Fit(splits.train).ok()) return 1;
    pool.Add(std::move(model));
  }
  {
    FairSmoteOptions opt;
    opt.seed = 55;
    auto model = std::make_unique<FairSmote>(opt);
    if (!model->Fit(splits.train).ok()) return 1;
    pool.Add(std::move(model));
  }
  {
    FaxOptions opt;
    opt.seed = 55;
    auto model = std::make_unique<FaxClassifier>(opt);
    if (!model->Fit(splits.train).ok()) return 1;
    pool.Add(std::move(model));
  }
  {
    auto model = std::make_unique<TwoNaiveBayes>();
    if (!model->Fit(splits.train).ok()) return 1;
    pool.Add(std::move(model));
  }
  {
    AdaFairOptions opt;
    opt.seed = 55;
    auto model = std::make_unique<AdaFair>(opt);
    if (!model->Fit(splits.train).ok()) return 1;
    pool.Add(std::move(model));
  }
  {
    ReweighingOptions opt;
    opt.seed = 55;
    auto model = std::make_unique<ReweighingClassifier>(opt);
    if (!model->Fit(splits.train).ok()) return 1;
    pool.Add(std::move(model));
  }
  std::printf("fair pool: %zu classifiers\n", pool.size());

  FalccOptions options;
  options.seed = 55;

  const FalccModel star =
      FalccModel::TrainWithPool(std::move(pool), splits.validation, options)
          .value();
  const FalccModel plain =
      FalccModel::Train(splits.train, splits.validation, options).value();

  for (const auto& [name, model] :
       {std::pair<const char*, const FalccModel*>{"FALCC*", &star},
        {"FALCC", &plain}}) {
    const FairnessAudit audit =
        AuditPredictions(splits.test, model->ClassifyAll(splits.test))
            .value();
    std::printf("\n--- %s (%zu clusters) ---\n%s", name,
                model->num_clusters(), FormatAudit(audit).c_str());
  }
  std::printf("\nExpected shape (paper): FALCC* strengthens global "
              "fairness (all pool members were built for it) while FALCC "
              "with the non-fair diverse pool stays nearly as good — "
              "'a non-fairness-induced diverse model ensemble set can be "
              "nearly as effective'.\n");
  return 0;
}
