// Quickstart: train FALCC on synthetic data and classify new samples.
//
//   $ ./quickstart
//
// Walks through the whole API surface: generating data, splitting it,
// running the offline phase, inspecting what was precomputed, and
// classifying test samples online.

#include <cstdio>

#include "core/falcc.h"
#include "data/split.h"
#include "datagen/synthetic.h"
#include "fairness/loss.h"

int main() {
  using namespace falcc;

  // 1. Data: ~14k samples, 8 features, one binary sensitive attribute,
  //    30% injected proxy (implicit) bias — the paper's synthetic setup.
  SyntheticConfig data_config;
  data_config.num_samples = 6000;
  data_config.bias = 0.30;
  data_config.seed = 7;
  Result<Dataset> data = GenerateImplicitBias(data_config);
  if (!data.ok()) {
    std::fprintf(stderr, "datagen failed: %s\n",
                 data.status().ToString().c_str());
    return 1;
  }
  std::printf("dataset: %zu rows, %zu features, positive rate %.1f%%\n",
              data.value().num_rows(), data.value().num_features(),
              100.0 * data.value().PositiveRate());

  // 2. Split 50/35/15 (train / validation / test), as in the paper.
  Result<TrainValTest> splits = SplitDatasetDefault(data.value(), 42);
  if (!splits.ok()) {
    std::fprintf(stderr, "split failed: %s\n",
                 splits.status().ToString().c_str());
    return 1;
  }

  // 3. Offline phase: diverse AdaBoost pool, proxy reweighing, automatic
  //    cluster count via LOG-Means, per-cluster model assessment.
  FalccOptions options;
  options.metric = FairnessMetric::kDemographicParity;
  options.lambda = 0.5;  // equal weight on accuracy and fairness
  options.proxy.strategy = ProxyMitigation::kReweigh;
  options.seed = 42;
  Result<FalccModel> model = FalccModel::Train(
      splits.value().train, splits.value().validation, options);
  if (!model.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 model.status().ToString().c_str());
    return 1;
  }
  std::printf("offline phase: %zu models (entropy %.3f), %zu clusters, "
              "%zu sensitive groups\n",
              model.value().pool().size(), model.value().pool_entropy(),
              model.value().num_clusters(), model.value().num_groups());

  // 4. Online phase: classify the held-out test set. Each call is a
  //    cluster match + model lookup + one prediction.
  const Dataset& test = splits.value().test;
  const std::vector<int> predictions = model.value().ClassifyAll(test);

  // 5. Quality: accuracy, global bias, and the local (per-region) loss.
  const GroupIndex index = GroupIndex::Build(test).value();
  GroupedPredictions in;
  in.labels = test.labels();
  in.predictions = predictions;
  const std::vector<size_t> groups = index.GroupsOf(test).value();
  in.groups = groups;
  in.num_groups = index.num_groups();
  const LossBreakdown global =
      CombinedLoss(in, options.metric, options.lambda).value();
  std::vector<size_t> regions(test.num_rows());
  for (size_t i = 0; i < test.num_rows(); ++i) {
    regions[i] = model.value().MatchCluster(test.Row(i));
  }
  const LossBreakdown local =
      LocalLoss(in, regions, model.value().num_clusters(), options.metric,
                options.lambda)
          .value();

  std::printf("test accuracy:    %.1f%%\n", 100.0 * (1.0 - global.inaccuracy));
  std::printf("global dp bias:   %.3f\n", global.bias);
  std::printf("local loss (L^):  %.3f\n", local.combined);

  // 6. Single-sample online classification.
  const auto sample = test.Row(0);
  std::printf("sample 0 -> cluster %zu, group %zu, prediction %d (label %d)\n",
              model.value().MatchCluster(sample),
              model.value().GroupOf(sample).value(),
              model.value().Classify(sample), test.Label(0));
  return 0;
}
