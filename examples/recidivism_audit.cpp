// Auditing classifiers for local fairness on a COMPAS-like dataset.
//
// Plays the role of an auditor: trains several fairness interventions on
// the COMPAS stand-in (Tab. 4 metadata) and compares them across all four
// fairness notions the paper evaluates — accuracy, global bias, local
// loss, and individual bias — on a shared evaluation geometry, mirroring
// one column of Fig. 3.

#include <cstdio>

#include "eval/experiment.h"
#include "datagen/benchmark_data.h"
#include "eval/report.h"

int main() {
  using namespace falcc;

  const Dataset data =
      GenerateBenchmarkDataset(CompasSpec(), 33, 0.5).value();
  std::printf("== Recidivism audit (COMPAS stand-in, %zu defendants) ==\n\n",
              data.num_rows());

  ExperimentOptions options;
  options.metric = FairnessMetric::kDemographicParity;
  options.seed = 33;
  const Experiment experiment = Experiment::Create(data, options).value();
  std::printf("shared evaluation: %zu local regions on the test split\n\n",
              experiment.num_eval_regions());

  TextTable table({"algorithm", "acc%", "global", "local", "indiv",
                   "us/sample"});
  for (Algorithm algorithm :
       {Algorithm::kFairSmote, Algorithm::kFaX, Algorithm::kDecouple,
        Algorithm::kFalcc}) {
    Result<EvalMeasurement> m = experiment.Run(algorithm);
    if (!m.ok()) {
      std::fprintf(stderr, "%s failed: %s\n",
                   AlgorithmName(algorithm).c_str(),
                   m.status().ToString().c_str());
      continue;
    }
    table.AddRow({AlgorithmName(algorithm),
                  FormatPercent(m.value().accuracy, 1),
                  FormatDouble(m.value().global_bias, 3),
                  FormatDouble(m.value().local_bias, 3),
                  FormatDouble(m.value().individual_bias, 3),
                  FormatDouble(m.value().online_micros_per_sample, 1)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Reading guide: lower bias columns are fairer; FALCC should "
              "be strongest on the 'local' column while staying cheap "
              "per sample.\n");
  return 0;
}
