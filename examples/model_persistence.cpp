// Deploying FALCC: train once, save the model, load it in a "serving
// process", and verify the loaded model classifies identically — the
// offline/online split of the paper taken to its operational conclusion.

#include <cstdio>
#include <string>

#include "core/falcc.h"
#include "data/split.h"
#include "datagen/synthetic.h"
#include "util/timer.h"

int main() {
  using namespace falcc;

  SyntheticConfig cfg;
  cfg.num_samples = 4000;
  cfg.seed = 77;
  const Dataset data = GenerateImplicitBias(cfg).value();
  const TrainValTest splits = SplitDatasetDefault(data, 77).value();

  // Offline phase ("training job").
  FalccOptions options;
  options.seed = 77;
  options.proxy.strategy = ProxyMitigation::kReweigh;
  Timer offline;
  const FalccModel trained =
      FalccModel::Train(splits.train, splits.validation, options).value();
  std::printf("offline phase: %.2fs (%zu models, %zu clusters)\n",
              offline.ElapsedSeconds(), trained.pool().size(),
              trained.num_clusters());

  const std::string path = "/tmp/falcc_deployed.model";
  if (!trained.SaveToFile(path).ok()) {
    std::fprintf(stderr, "save failed\n");
    return 1;
  }
  std::printf("saved model to %s\n", path.c_str());

  // Online phase ("serving process"): load and classify.
  Result<FalccModel> served = FalccModel::LoadFromFile(path);
  if (!served.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 served.status().ToString().c_str());
    return 1;
  }

  Timer online;
  const std::vector<int> live = served.value().ClassifyAll(splits.test);
  const double micros =
      online.ElapsedSeconds() * 1e6 / splits.test.num_rows();

  const std::vector<int> reference = trained.ClassifyAll(splits.test);
  size_t agree = 0, correct = 0;
  for (size_t i = 0; i < live.size(); ++i) {
    agree += live[i] == reference[i];
    correct += live[i] == splits.test.Label(i);
  }
  std::printf("served %zu samples at %.2f us/sample\n", live.size(), micros);
  std::printf("loaded model agreement with original: %zu/%zu\n", agree,
              live.size());
  std::printf("test accuracy: %.1f%%\n",
              100.0 * static_cast<double>(correct) / live.size());
  std::remove(path.c_str());
  return agree == live.size() ? 0 : 1;
}
