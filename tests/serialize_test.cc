// Round-trip tests for the text serialization of classifiers, the
// supporting structures, and whole FALCC models: a deserialized model
// must predict bit-identically to the original.

#include "ml/serialize.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/falcc.h"
#include "data/split.h"
#include "datagen/synthetic.h"
#include "ml/adaboost.h"
#include "ml/decision_tree.h"
#include "ml/knn_classifier.h"
#include "ml/logistic_regression.h"
#include "ml/naive_bayes.h"
#include "ml/random_forest.h"

namespace falcc {
namespace {

Dataset MakeData(size_t n = 400, uint64_t seed = 7) {
  SyntheticConfig cfg;
  cfg.num_samples = n;
  cfg.seed = seed;
  return GenerateImplicitBias(cfg).value();
}

// Serializes, deserializes, and checks prediction equality on `data`.
void ExpectRoundTrip(const Classifier& model, const Dataset& data) {
  std::stringstream stream;
  ASSERT_TRUE(SerializeClassifier(model, &stream).ok()) << model.Name();
  Result<std::unique_ptr<Classifier>> loaded =
      DeserializeClassifier(&stream);
  ASSERT_TRUE(loaded.ok()) << model.Name() << ": "
                           << loaded.status().ToString();
  EXPECT_EQ(loaded.value()->TypeTag(), model.TypeTag());
  for (size_t i = 0; i < data.num_rows(); ++i) {
    ASSERT_DOUBLE_EQ(loaded.value()->PredictProba(data.Row(i)),
                     model.PredictProba(data.Row(i)))
        << model.Name() << " row " << i;
  }
}

TEST(SerializeTest, DecisionTreeRoundTrip) {
  const Dataset d = MakeData();
  DecisionTree model;
  ASSERT_TRUE(model.Fit(d).ok());
  ExpectRoundTrip(model, d);
}

TEST(SerializeTest, AdaBoostRoundTrip) {
  const Dataset d = MakeData();
  AdaBoostOptions opt;
  opt.num_estimators = 10;
  opt.base.max_depth = 3;
  AdaBoost model(opt);
  ASSERT_TRUE(model.Fit(d).ok());
  ExpectRoundTrip(model, d);
}

TEST(SerializeTest, RandomForestRoundTrip) {
  const Dataset d = MakeData();
  RandomForestOptions opt;
  opt.num_trees = 8;
  RandomForest model(opt);
  ASSERT_TRUE(model.Fit(d).ok());
  ExpectRoundTrip(model, d);
}

TEST(SerializeTest, LogisticRegressionRoundTrip) {
  const Dataset d = MakeData();
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(d).ok());
  ExpectRoundTrip(model, d);
}

TEST(SerializeTest, GaussianNbRoundTrip) {
  const Dataset d = MakeData();
  GaussianNaiveBayes model;
  ASSERT_TRUE(model.Fit(d).ok());
  ExpectRoundTrip(model, d);
}

TEST(SerializeTest, KnnRoundTrip) {
  const Dataset d = MakeData(200);
  KnnClassifier model;
  ASSERT_TRUE(model.Fit(d).ok());
  ExpectRoundTrip(model, d);
}

TEST(SerializeTest, UnsupportedTypeFails) {
  // FairBoost (a baseline) does not opt into serialization.
  class Unsupported final : public Classifier {
   public:
    Status Fit(const Dataset&, std::span<const double>) override {
      return Status::OK();
    }
    double PredictProba(std::span<const double>) const override {
      return 0.5;
    }
    std::unique_ptr<Classifier> Clone() const override {
      return std::make_unique<Unsupported>(*this);
    }
    std::string Name() const override { return "Unsupported"; }
  };
  Unsupported model;
  std::stringstream stream;
  EXPECT_FALSE(SerializeClassifier(model, &stream).ok());
}

TEST(SerializeTest, UnknownTagFails) {
  std::stringstream stream("martian_model 1 2 3");
  EXPECT_FALSE(DeserializeClassifier(&stream).ok());
}

TEST(SerializeTest, TruncatedStreamFails) {
  const Dataset d = MakeData(100);
  DecisionTree model;
  ASSERT_TRUE(model.Fit(d).ok());
  std::stringstream stream;
  ASSERT_TRUE(SerializeClassifier(model, &stream).ok());
  const std::string full = stream.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_FALSE(DeserializeClassifier(&truncated).ok());
}

TEST(SerializeTest, FalccModelRoundTrip) {
  const Dataset d = MakeData(1500, 21);
  const TrainValTest s = SplitDatasetDefault(d, 21).value();
  FalccOptions opt;
  opt.seed = 21;
  opt.trainer.estimator_grid = {5};
  opt.trainer.pool_size = 3;
  const FalccModel model =
      FalccModel::Train(s.train, s.validation, opt).value();

  std::stringstream stream;
  ASSERT_TRUE(model.Save(&stream).ok());
  Result<FalccModel> loaded = FalccModel::Load(&stream);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded.value().num_clusters(), model.num_clusters());
  EXPECT_EQ(loaded.value().num_groups(), model.num_groups());
  EXPECT_DOUBLE_EQ(loaded.value().pool_entropy(), model.pool_entropy());
  EXPECT_EQ(loaded.value().ClassifyAll(s.test), model.ClassifyAll(s.test));
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(loaded.value().MatchCluster(s.test.Row(i)),
              model.MatchCluster(s.test.Row(i)));
  }
}

TEST(SerializeTest, FalccModelFileRoundTrip) {
  const Dataset d = MakeData(800, 23);
  const TrainValTest s = SplitDatasetDefault(d, 23).value();
  FalccOptions opt;
  opt.seed = 23;
  opt.trainer.estimator_grid = {5};
  opt.trainer.pool_size = 2;
  const FalccModel model =
      FalccModel::Train(s.train, s.validation, opt).value();

  const std::string path = ::testing::TempDir() + "/falcc_model.txt";
  ASSERT_TRUE(model.SaveToFile(path).ok());
  Result<FalccModel> loaded = FalccModel::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().ClassifyAll(s.test), model.ClassifyAll(s.test));
  std::remove(path.c_str());
}

TEST(SerializeTest, FalccModelLoadRejectsGarbage) {
  std::stringstream stream("not-a-falcc-model");
  EXPECT_FALSE(FalccModel::Load(&stream).ok());
}

TEST(SerializeTest, MultipleModelsInOneStream) {
  const Dataset d = MakeData(150);
  DecisionTree a;
  GaussianNaiveBayes b;
  ASSERT_TRUE(a.Fit(d).ok());
  ASSERT_TRUE(b.Fit(d).ok());
  std::stringstream stream;
  ASSERT_TRUE(SerializeClassifier(a, &stream).ok());
  ASSERT_TRUE(SerializeClassifier(b, &stream).ok());
  Result<std::unique_ptr<Classifier>> first =
      DeserializeClassifier(&stream);
  Result<std::unique_ptr<Classifier>> second =
      DeserializeClassifier(&stream);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value()->TypeTag(), "decision_tree");
  EXPECT_EQ(second.value()->TypeTag(), "gaussian_nb");
}

}  // namespace
}  // namespace falcc
