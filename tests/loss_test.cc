#include "fairness/loss.h"

#include <gtest/gtest.h>

namespace falcc {
namespace {

GroupedPredictions Make(const std::vector<int>& labels,
                        const std::vector<int>& predictions,
                        const std::vector<size_t>& groups,
                        size_t num_groups) {
  GroupedPredictions in;
  in.labels = labels;
  in.predictions = predictions;
  in.groups = groups;
  in.num_groups = num_groups;
  return in;
}

TEST(CombinedLossTest, PerfectPredictionsZeroLoss) {
  const std::vector<int> y = {1, 0, 1, 0};
  const std::vector<size_t> g = {0, 0, 1, 1};
  const LossBreakdown loss =
      CombinedLoss(Make(y, y, g, 2), FairnessMetric::kDemographicParity, 0.5)
          .value();
  EXPECT_DOUBLE_EQ(loss.inaccuracy, 0.0);
  EXPECT_DOUBLE_EQ(loss.bias, 0.0);
  EXPECT_DOUBLE_EQ(loss.combined, 0.0);
}

TEST(CombinedLossTest, LambdaWeighting) {
  // 50% wrong, bias 0.5 by construction.
  const std::vector<int> y = {1, 1, 0, 0};
  const std::vector<int> z = {1, 1, 1, 1};
  const std::vector<size_t> g = {0, 0, 1, 1};
  const GroupedPredictions in = Make(y, z, g, 2);
  const LossBreakdown pure_acc =
      CombinedLoss(in, FairnessMetric::kDemographicParity, 1.0).value();
  EXPECT_DOUBLE_EQ(pure_acc.combined, pure_acc.inaccuracy);
  const LossBreakdown pure_bias =
      CombinedLoss(in, FairnessMetric::kDemographicParity, 0.0).value();
  EXPECT_DOUBLE_EQ(pure_bias.combined, pure_bias.bias);
}

TEST(CombinedLossTest, HandValue) {
  // 1 of 4 wrong -> inaccuracy 0.25; all predictions 1 -> dp bias 0.
  const std::vector<int> y = {1, 1, 1, 0};
  const std::vector<int> z = {1, 1, 1, 1};
  const std::vector<size_t> g = {0, 1, 0, 1};
  const LossBreakdown loss =
      CombinedLoss(Make(y, z, g, 2), FairnessMetric::kDemographicParity, 0.5)
          .value();
  EXPECT_DOUBLE_EQ(loss.inaccuracy, 0.25);
  EXPECT_DOUBLE_EQ(loss.bias, 0.0);
  EXPECT_DOUBLE_EQ(loss.combined, 0.125);
}

TEST(CombinedLossTest, RejectsBadLambda) {
  const std::vector<int> y = {1};
  const std::vector<size_t> g = {0};
  EXPECT_FALSE(
      CombinedLoss(Make(y, y, g, 1), FairnessMetric::kDemographicParity, 1.5)
          .ok());
  EXPECT_FALSE(
      CombinedLoss(Make(y, y, g, 1), FairnessMetric::kDemographicParity, -0.1)
          .ok());
}

TEST(LocalLossTest, SingleRegionEqualsGlobal) {
  const std::vector<int> y = {1, 1, 0, 0, 1, 0};
  const std::vector<int> z = {1, 0, 0, 1, 1, 0};
  const std::vector<size_t> g = {0, 1, 0, 1, 0, 1};
  const std::vector<size_t> regions(6, 0);
  const GroupedPredictions in = Make(y, z, g, 2);
  const LossBreakdown global =
      CombinedLoss(in, FairnessMetric::kDemographicParity, 0.5).value();
  const LossBreakdown local =
      LocalLoss(in, regions, 1, FairnessMetric::kDemographicParity, 0.5)
          .value();
  EXPECT_DOUBLE_EQ(local.combined, global.combined);
  EXPECT_DOUBLE_EQ(local.bias, global.bias);
}

TEST(LocalLossTest, DetectsLocalOnlyBias) {
  // Globally fair (each group 50% positive overall) but each region is
  // maximally unfair — the paper's Fig. 1 scenario.
  const std::vector<int> z = {1, 0, 0, 1};
  const std::vector<int> y = z;
  const std::vector<size_t> g = {0, 1, 0, 1};
  const std::vector<size_t> regions = {0, 0, 1, 1};
  const GroupedPredictions in = Make(y, z, g, 2);
  EXPECT_DOUBLE_EQ(
      CombinedLoss(in, FairnessMetric::kDemographicParity, 0.0)
          .value()
          .combined,
      0.0);
  EXPECT_GT(
      LocalLoss(in, regions, 2, FairnessMetric::kDemographicParity, 0.0)
          .value()
          .combined,
      0.4);
}

TEST(LocalLossTest, WeightsByRegionSize) {
  // Region 0 (2 samples) has bias, region 1 (6 samples) does not.
  std::vector<int> z = {1, 0};
  std::vector<int> y = {1, 0};
  std::vector<size_t> g = {0, 1};
  std::vector<size_t> regions = {0, 0};
  for (int i = 0; i < 3; ++i) {
    z.push_back(1);
    z.push_back(1);
    y.push_back(1);
    y.push_back(1);
    g.push_back(0);
    g.push_back(1);
    regions.push_back(1);
    regions.push_back(1);
  }
  const GroupedPredictions in = Make(y, z, g, 2);
  const double local =
      LocalLoss(in, regions, 2, FairnessMetric::kDemographicParity, 0.0)
          .value()
          .combined;
  // Region 0 bias = 0.5, weight 2/8; region 1 bias = 0.
  EXPECT_NEAR(local, 0.5 * 2.0 / 8.0, 1e-12);
}

TEST(LocalLossTest, EmptyRegionsSkipped) {
  const std::vector<int> y = {1, 0};
  const std::vector<size_t> g = {0, 1};
  const std::vector<size_t> regions = {2, 2};  // regions 0,1 empty
  const GroupedPredictions in = Make(y, y, g, 2);
  const LossBreakdown loss =
      LocalLoss(in, regions, 3, FairnessMetric::kDemographicParity, 0.5)
          .value();
  EXPECT_DOUBLE_EQ(loss.inaccuracy, 0.0);
}

TEST(LocalLossTest, RejectsBadRegions) {
  const std::vector<int> y = {1, 0};
  const std::vector<size_t> g = {0, 1};
  const std::vector<size_t> regions = {0, 5};
  const GroupedPredictions in = Make(y, y, g, 2);
  EXPECT_FALSE(
      LocalLoss(in, regions, 2, FairnessMetric::kDemographicParity, 0.5)
          .ok());
  const std::vector<size_t> short_regions = {0};
  EXPECT_FALSE(LocalLoss(in, short_regions, 1,
                         FairnessMetric::kDemographicParity, 0.5)
                   .ok());
}

}  // namespace
}  // namespace falcc
