#include "baselines/fax.h"

#include <gtest/gtest.h>

#include "datagen/synthetic.h"
#include "data/transforms.h"
#include "fairness/metrics.h"
#include "data/groups.h"
#include "ml/decision_tree.h"

namespace falcc {
namespace {

Dataset MakeProxyData(size_t n = 2000, double bias = 0.5, uint64_t seed = 3) {
  SyntheticConfig cfg;
  cfg.num_samples = n;
  cfg.bias = bias;
  cfg.seed = seed;
  return GenerateImplicitBias(cfg).value();
}

double DpBias(const Classifier& model, const Dataset& d) {
  const GroupIndex index = GroupIndex::Build(d).value();
  const std::vector<size_t> groups = index.GroupsOf(d).value();
  const std::vector<int> preds = PredictAll(model, d);
  GroupedPredictions in;
  in.labels = d.labels();
  in.predictions = preds;
  in.groups = groups;
  in.num_groups = index.num_groups();
  return DemographicParity(in).value();
}

TEST(FaxTest, DetectsProxies) {
  const Dataset d = MakeProxyData();
  FaxOptions opt;
  opt.proxy_threshold = 0.15;
  FaxClassifier model(opt);
  ASSERT_TRUE(model.Fit(d).ok());
  // The implicit generator's proxies are columns 0..2.
  EXPECT_GE(model.proxy_columns().size(), 2u);
  for (size_t c : model.proxy_columns()) EXPECT_LT(c, 3u);
}

TEST(FaxTest, MarginalizationReducesBias) {
  const Dataset d = MakeProxyData();
  DecisionTree plain;
  ASSERT_TRUE(plain.Fit(d).ok());
  FaxOptions opt;
  opt.proxy_threshold = 0.15;
  FaxClassifier fax(opt);
  ASSERT_TRUE(fax.Fit(d).ok());
  EXPECT_LT(DpBias(fax, d), DpBias(plain, d));
}

TEST(FaxTest, PredictionInsensitiveToProxyValue) {
  const Dataset d = MakeProxyData();
  FaxOptions opt;
  opt.proxy_threshold = 0.15;
  FaxClassifier model(opt);
  ASSERT_TRUE(model.Fit(d).ok());
  ASSERT_FALSE(model.proxy_columns().empty());
  // Changing a proxy value must not change the (marginalized) output.
  std::vector<double> row(d.Row(0).begin(), d.Row(0).end());
  const double before = model.PredictProba(row);
  row[model.proxy_columns()[0]] += 100.0;
  EXPECT_DOUBLE_EQ(model.PredictProba(row), before);
}

TEST(FaxTest, StillBeatsChance) {
  const Dataset d = MakeProxyData();
  FaxOptions opt;
  opt.proxy_threshold = 0.15;
  FaxClassifier model(opt);
  ASSERT_TRUE(model.Fit(d).ok());
  EXPECT_GT(Accuracy(model, d), 0.6);
}

TEST(FaxTest, NoProxiesFallsBackToPlainModel) {
  const Dataset d = MakeProxyData(1000, 0.0, 5);  // no proxy correlation
  FaxOptions opt;
  opt.proxy_threshold = 0.4;
  FaxClassifier model(opt);
  ASSERT_TRUE(model.Fit(d).ok());
  EXPECT_TRUE(model.proxy_columns().empty());
  EXPECT_GT(Accuracy(model, d), 0.7);
}

TEST(FaxTest, DeterministicForSeed) {
  const Dataset d = MakeProxyData(500);
  FaxOptions opt;
  opt.seed = 12;
  FaxClassifier a(opt), b(opt);
  ASSERT_TRUE(a.Fit(d).ok());
  ASSERT_TRUE(b.Fit(d).ok());
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(a.PredictProba(d.Row(i)), b.PredictProba(d.Row(i)));
  }
}

TEST(FaxTest, CloneKeepsState) {
  const Dataset d = MakeProxyData(500);
  FaxClassifier model;
  ASSERT_TRUE(model.Fit(d).ok());
  const std::unique_ptr<Classifier> clone = model.Clone();
  EXPECT_DOUBLE_EQ(model.PredictProba(d.Row(0)),
                   clone->PredictProba(d.Row(0)));
}

TEST(FaxTest, RejectsBadConfig) {
  const Dataset d = MakeProxyData(200);
  FaxOptions opt;
  opt.num_interventions = 0;
  FaxClassifier model(opt);
  EXPECT_FALSE(model.Fit(d).ok());
}

}  // namespace
}  // namespace falcc
