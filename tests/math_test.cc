#include "util/math.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.h"

namespace falcc {
namespace {

TEST(MathTest, MeanBasics) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(Mean(std::vector<double>{}), 0.0);
}

TEST(MathTest, VarianceAndStdDev) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Variance(xs), 4.0);
  EXPECT_DOUBLE_EQ(StdDev(xs), 2.0);
}

TEST(MathTest, VarianceDegenerate) {
  EXPECT_DOUBLE_EQ(Variance(std::vector<double>{5.0}), 0.0);
}

TEST(MathTest, PearsonPerfectPositive) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
}

TEST(MathTest, PearsonPerfectNegative) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {10, 8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(x, y), -1.0, 1e-12);
}

TEST(MathTest, PearsonZeroVarianceIsZero) {
  const std::vector<double> x = {1, 1, 1, 1};
  const std::vector<double> y = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(x, y), 0.0);
}

TEST(MathTest, PearsonIndependentNearZero) {
  Rng rng(3);
  std::vector<double> x(5000), y(5000);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.Normal();
    y[i] = rng.Normal();
  }
  EXPECT_NEAR(PearsonCorrelation(x, y), 0.0, 0.05);
}

TEST(MathTest, PearsonBounded) {
  Rng rng(4);
  std::vector<double> x(100), y(100);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.Normal();
    y[i] = 0.9 * x[i] + 0.1 * rng.Normal();
  }
  const double r = PearsonCorrelation(x, y);
  EXPECT_LE(r, 1.0);
  EXPECT_GE(r, -1.0);
  EXPECT_GT(r, 0.9);
}

TEST(MathTest, PearsonPValueStrongCorrelationSignificant) {
  // |r| = 0.9 over 100 samples is overwhelmingly significant.
  EXPECT_LT(PearsonPValue(0.9, 100), 1e-6);
}

TEST(MathTest, PearsonPValueWeakCorrelationInsignificant) {
  EXPECT_GT(PearsonPValue(0.05, 20), 0.5);
}

TEST(MathTest, PearsonPValueSmallSampleIsOne) {
  EXPECT_DOUBLE_EQ(PearsonPValue(0.9, 2), 1.0);
}

TEST(MathTest, PearsonPValueSymmetric) {
  EXPECT_NEAR(PearsonPValue(0.5, 30), PearsonPValue(-0.5, 30), 1e-12);
}

TEST(MathTest, LogGammaMatchesFactorials) {
  // Gamma(n) = (n-1)!
  EXPECT_NEAR(std::exp(LogGamma(5.0)), 24.0, 1e-9);
  EXPECT_NEAR(std::exp(LogGamma(1.0)), 1.0, 1e-12);
  EXPECT_NEAR(std::exp(LogGamma(0.5)), std::sqrt(M_PI), 1e-9);
}

TEST(MathTest, IncompleteBetaBoundaries) {
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2.0, 3.0, 1.0), 1.0);
}

TEST(MathTest, IncompleteBetaSymmetry) {
  // I_x(a,b) = 1 - I_{1-x}(b,a).
  const double v = RegularizedIncompleteBeta(2.5, 1.5, 0.3);
  const double w = 1.0 - RegularizedIncompleteBeta(1.5, 2.5, 0.7);
  EXPECT_NEAR(v, w, 1e-10);
}

TEST(MathTest, IncompleteBetaUniformCase) {
  // I_x(1,1) = x.
  for (double x : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    EXPECT_NEAR(RegularizedIncompleteBeta(1.0, 1.0, x), x, 1e-10);
  }
}

TEST(MathTest, StudentTCdfCenterIsHalf) {
  EXPECT_NEAR(StudentTCdf(0.0, 5.0), 0.5, 1e-12);
}

TEST(MathTest, StudentTCdfKnownValue) {
  // t = 2.015 is the 95th percentile at df = 5.
  EXPECT_NEAR(StudentTCdf(2.015, 5.0), 0.95, 1e-3);
}

TEST(MathTest, StudentTCdfMonotone) {
  double prev = 0.0;
  for (double t = -5.0; t <= 5.0; t += 0.5) {
    const double c = StudentTCdf(t, 10.0);
    EXPECT_GT(c, prev);
    prev = c;
  }
}

TEST(MathTest, NormalCdfKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.959964), 0.975, 1e-5);
  EXPECT_NEAR(NormalCdf(-1.959964), 0.025, 1e-5);
}

TEST(MathTest, NormalQuantileInvertsCdf) {
  for (double p : {0.001, 0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 0.999}) {
    EXPECT_NEAR(NormalCdf(NormalQuantile(p)), p, 1e-8) << "p=" << p;
  }
}

TEST(MathTest, SigmoidProperties) {
  EXPECT_DOUBLE_EQ(Sigmoid(0.0), 0.5);
  EXPECT_NEAR(Sigmoid(100.0), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(-100.0), 0.0, 1e-12);
  EXPECT_NEAR(Sigmoid(2.0) + Sigmoid(-2.0), 1.0, 1e-12);
}

TEST(MathTest, ClampWorks) {
  EXPECT_DOUBLE_EQ(Clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(Clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(Clamp(0.5, 0.0, 1.0), 0.5);
}

TEST(MathTest, Distances) {
  const std::vector<double> a = {0.0, 0.0};
  const std::vector<double> b = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b), 25.0);
  EXPECT_DOUBLE_EQ(EuclideanDistance(a, b), 5.0);
}

TEST(MathTest, FitLineExact) {
  const std::vector<double> x = {0, 1, 2, 3};
  const std::vector<double> y = {1, 3, 5, 7};
  const LinearFit fit = FitLine(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
}

TEST(MathTest, FitLineDegenerateX) {
  const std::vector<double> x = {2, 2, 2};
  const std::vector<double> y = {1, 2, 3};
  const LinearFit fit = FitLine(x, y);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 2.0);
}

}  // namespace
}  // namespace falcc
