#include "ml/knn_classifier.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace falcc {
namespace {

Dataset MakeBlobs(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> features;
  std::vector<int> labels;
  for (size_t i = 0; i < n; ++i) {
    const int y = rng.Bernoulli(0.5) ? 1 : 0;
    const double mu = y == 1 ? 2.0 : -2.0;
    features.push_back(rng.Normal(mu, 1.0));
    features.push_back(rng.Normal(mu, 1.0));
    labels.push_back(y);
  }
  return Dataset::Create({"x0", "x1"}, std::move(features), 2,
                         std::move(labels), {})
      .value();
}

TEST(KnnClassifierTest, LearnsBlobs) {
  const Dataset train = MakeBlobs(1000, 1);
  const Dataset test = MakeBlobs(300, 2);
  KnnClassifier model;
  ASSERT_TRUE(model.Fit(train).ok());
  EXPECT_GT(Accuracy(model, test), 0.95);
}

TEST(KnnClassifierTest, OneNearestNeighborMemorizes) {
  const Dataset d = MakeBlobs(200, 3);
  KnnClassifierOptions opt;
  opt.k = 1;
  KnnClassifier model(opt);
  ASSERT_TRUE(model.Fit(d).ok());
  EXPECT_DOUBLE_EQ(Accuracy(model, d), 1.0);
}

TEST(KnnClassifierTest, ProbaIsNeighborFraction) {
  // 3 points at x=0 with labels {1,1,0}; k=3 -> proba 2/3 at x=0.
  Dataset d = Dataset::Create({"x"}, {0.0, 0.01, -0.01, 100.0}, 1,
                              {1, 1, 0, 0}, {})
                  .value();
  KnnClassifierOptions opt;
  opt.k = 3;
  KnnClassifier model(opt);
  ASSERT_TRUE(model.Fit(d).ok());
  const std::vector<double> q = {0.0};
  EXPECT_NEAR(model.PredictProba(q), 2.0 / 3.0, 1e-9);
}

TEST(KnnClassifierTest, VoteWeightsBias) {
  Dataset d = Dataset::Create({"x"}, {0.0, 0.01}, 1, {0, 1}, {}).value();
  KnnClassifierOptions opt;
  opt.k = 2;
  KnnClassifier model(opt);
  const std::vector<double> w = {1.0, 10.0};
  ASSERT_TRUE(model.Fit(d, w).ok());
  const std::vector<double> q = {0.0};
  EXPECT_EQ(model.Predict(q), 1);
}

TEST(KnnClassifierTest, StandardizationMakesScalesComparable) {
  // Feature 1 has a huge scale but carries no signal; feature 0 decides.
  Rng rng(5);
  std::vector<double> features;
  std::vector<int> labels;
  for (size_t i = 0; i < 500; ++i) {
    const int y = rng.Bernoulli(0.5) ? 1 : 0;
    features.push_back(y == 1 ? rng.Normal(2, 1) : rng.Normal(-2, 1));
    features.push_back(rng.Normal(0.0, 1e6));
    labels.push_back(y);
  }
  Dataset d = Dataset::Create({"signal", "huge_noise"}, std::move(features),
                              2, std::move(labels), {})
                  .value();
  KnnClassifier model;
  ASSERT_TRUE(model.Fit(d).ok());
  EXPECT_GT(Accuracy(model, d), 0.85);
}

TEST(KnnClassifierTest, CopyAndCloneKeepState) {
  const Dataset d = MakeBlobs(200, 6);
  KnnClassifier model;
  ASSERT_TRUE(model.Fit(d).ok());
  KnnClassifier copy = model;
  const std::unique_ptr<Classifier> clone = model.Clone();
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(model.PredictProba(d.Row(i)),
                     copy.PredictProba(d.Row(i)));
    EXPECT_DOUBLE_EQ(model.PredictProba(d.Row(i)),
                     clone->PredictProba(d.Row(i)));
  }
}

TEST(KnnClassifierTest, RejectsBadConfig) {
  const Dataset d = MakeBlobs(50, 7);
  KnnClassifierOptions opt;
  opt.k = 0;
  KnnClassifier model(opt);
  EXPECT_FALSE(model.Fit(d).ok());
  Dataset empty;
  KnnClassifier model2;
  EXPECT_FALSE(model2.Fit(empty).ok());
}

TEST(KnnClassifierTest, NameIncludesK) {
  KnnClassifierOptions opt;
  opt.k = 15;
  EXPECT_EQ(KnnClassifier(opt).Name(), "kNN(k=15)");
}

}  // namespace
}  // namespace falcc
