#include "baselines/fair_smote.h"

#include <gtest/gtest.h>

#include "data/groups.h"
#include "datagen/synthetic.h"

namespace falcc {
namespace {

Dataset MakeSkewed(size_t n = 1000, uint64_t seed = 8) {
  SyntheticConfig cfg;
  cfg.num_samples = n;
  cfg.bias = 0.4;
  cfg.pr_favored = 0.7;  // group sizes skewed too
  cfg.seed = seed;
  return GenerateSocialBias(cfg).value();
}

// (group, label) subgroup sizes.
std::vector<size_t> SubgroupSizes(const Dataset& d) {
  const GroupIndex index = GroupIndex::Build(d).value();
  const std::vector<size_t> groups = index.GroupsOf(d).value();
  std::vector<size_t> sizes(index.num_groups() * 2, 0);
  for (size_t i = 0; i < d.num_rows(); ++i) {
    ++sizes[groups[i] * 2 + d.Label(i)];
  }
  return sizes;
}

TEST(BalanceSubgroupsTest, EqualizesAllSubgroups) {
  const Dataset d = MakeSkewed();
  const Dataset balanced = BalanceSubgroups(d, 5, 1).value();
  const std::vector<size_t> sizes = SubgroupSizes(balanced);
  for (size_t s : sizes) EXPECT_EQ(s, sizes[0]);
}

TEST(BalanceSubgroupsTest, NeverRemovesRows) {
  const Dataset d = MakeSkewed();
  const Dataset balanced = BalanceSubgroups(d, 5, 1).value();
  EXPECT_GE(balanced.num_rows(), d.num_rows());
  // Original rows are preserved verbatim at the front.
  for (size_t i = 0; i < d.num_rows(); ++i) {
    EXPECT_EQ(balanced.Label(i), d.Label(i));
    EXPECT_DOUBLE_EQ(balanced.Feature(i, 0), d.Feature(i, 0));
  }
}

TEST(BalanceSubgroupsTest, SyntheticSensitiveValuesAreCategorical) {
  const Dataset d = MakeSkewed();
  const Dataset balanced = BalanceSubgroups(d, 5, 2).value();
  const size_t sens = d.sensitive_features()[0];
  for (size_t i = d.num_rows(); i < balanced.num_rows(); ++i) {
    const double v = balanced.Feature(i, sens);
    EXPECT_TRUE(v == 0.0 || v == 1.0) << "row " << i;
  }
}

TEST(BalanceSubgroupsTest, AlreadyBalancedIsNoop) {
  // Build a perfectly balanced 2-group dataset.
  std::vector<double> features;
  std::vector<int> labels;
  for (int g = 0; g < 2; ++g) {
    for (int y = 0; y < 2; ++y) {
      for (int i = 0; i < 10; ++i) {
        features.push_back(i);
        features.push_back(g);
        labels.push_back(y);
      }
    }
  }
  const Dataset d = Dataset::Create({"x", "s"}, std::move(features), 2,
                                    std::move(labels), {1})
                        .value();
  const Dataset balanced = BalanceSubgroups(d, 5, 1).value();
  EXPECT_EQ(balanced.num_rows(), d.num_rows());
}

TEST(BalanceSubgroupsTest, DeterministicForSeed) {
  const Dataset d = MakeSkewed(400);
  const Dataset a = BalanceSubgroups(d, 5, 9).value();
  const Dataset b = BalanceSubgroups(d, 5, 9).value();
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (size_t i = 0; i < a.num_rows(); ++i) {
    EXPECT_DOUBLE_EQ(a.Feature(i, 0), b.Feature(i, 0));
  }
}

TEST(BalanceSubgroupsTest, RejectsZeroK) {
  const Dataset d = MakeSkewed(200);
  EXPECT_FALSE(BalanceSubgroups(d, 0, 1).ok());
}

TEST(FairSmoteTest, TrainsAndBeatsChance) {
  const Dataset d = MakeSkewed();
  FairSmote model;
  ASSERT_TRUE(model.Fit(d).ok());
  EXPECT_GT(Accuracy(model, d), 0.6);
  EXPECT_GT(model.num_synthetic(), 0u);
}

TEST(FairSmoteTest, CloneKeepsState) {
  const Dataset d = MakeSkewed(400);
  FairSmote model;
  ASSERT_TRUE(model.Fit(d).ok());
  const std::unique_ptr<Classifier> clone = model.Clone();
  EXPECT_DOUBLE_EQ(model.PredictProba(d.Row(0)),
                   clone->PredictProba(d.Row(0)));
}

TEST(FairSmoteTest, RejectsSampleWeights) {
  const Dataset d = MakeSkewed(200);
  FairSmote model;
  std::vector<double> w(d.num_rows(), 1.0);
  EXPECT_FALSE(model.Fit(d, w).ok());
}

}  // namespace
}  // namespace falcc
