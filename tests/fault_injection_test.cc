// Fault-injection sweeps: every byte offset of a valid snapshot is a
// place where a read can be cut short (truncated file) or fail outright
// (device error). The loaders must return a clean Status at every one of
// them, and the serving engine must keep answering on its old snapshot
// whenever a reload hits such an artifact.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/falcc.h"
#include "data/csv_dataset.h"
#include "data/split.h"
#include "datagen/synthetic.h"
#include "io/snapshot.h"
#include "serve/engine.h"
#include "testing/faulty_stream.h"
#include "testing/invariants.h"
#include "util/csv.h"

namespace falcc {
namespace {

using testing::FaultMode;
using testing::FaultyStream;

// Small splits + aggressively small model options: the sweeps below are
// quadratic in the snapshot size, so the artifact must stay tiny.
TrainValTest TinySplits() {
  SyntheticConfig cfg;
  cfg.num_samples = 160;
  cfg.seed = 7;
  const Dataset d = GenerateImplicitBias(cfg).value();
  return SplitDatasetDefault(d, 11).value();
}

FalccModel TrainTinyModel(uint64_t seed) {
  const TrainValTest s = TinySplits();
  FalccOptions opt;
  opt.seed = seed;
  opt.fixed_k = 2;
  opt.trainer.estimator_grid = {2};
  opt.trainer.depth_grid = {1};
  opt.trainer.pool_size = 2;
  return FalccModel::Train(s.train, s.validation, opt).value();
}

std::string Snapshot(const FalccModel& model) {
  std::string bytes;
  EXPECT_TRUE(testing::SaveToString(model, &bytes).ok());
  return bytes;
}

// Probes a loaded model with one valid sample; any abort or non-finite
// output here means a fault produced a half-initialized model.
void ProbeModel(const FalccModel& model) {
  const std::vector<double> sample(model.num_features(), 0.5);
  const double p = model.ClassifyProba(sample);
  EXPECT_TRUE(p >= 0.0 && p <= 1.0) << "probability " << p;
}

TEST(FaultInjectionTest, LoadSurvivesTruncationAtEveryByte) {
  const std::string bytes = Snapshot(TrainTinyModel(42));
  size_t loads = 0;
  for (size_t off = 0; off <= bytes.size(); ++off) {
    FaultyStream in(bytes, off, FaultMode::kTruncate);
    const Result<FalccModel> r = FalccModel::Load(&in);
    if (r.ok()) {
      // Legitimate: cutting exactly at the optional monitor section (or
      // inside the trailing whitespace) yields a valid legacy artifact.
      ++loads;
      ProbeModel(r.value());
    } else {
      EXPECT_FALSE(r.status().message().empty()) << "offset " << off;
    }
  }
  EXPECT_GE(loads, 1u);  // the full-length stream must load
}

TEST(FaultInjectionTest, LoadSurvivesStreamErrorAtEveryByte) {
  const std::string bytes = Snapshot(TrainTinyModel(42));
  for (size_t off = 0; off <= bytes.size(); ++off) {
    FaultyStream in(bytes, off, FaultMode::kError);
    const Result<FalccModel> r = FalccModel::Load(&in);
    if (r.ok()) {
      ProbeModel(r.value());
    } else {
      EXPECT_FALSE(r.status().message().empty()) << "offset " << off;
    }
  }
}

TEST(FaultInjectionTest, CsvReadSurvivesTruncationAtEveryByte) {
  // The CSV reader slurps the whole stream first, so a truncated file is
  // simply a shorter CSV — every prefix must parse or reject cleanly.
  const TrainValTest s = TinySplits();
  CsvTable table = DatasetToCsv(s.test, "label");
  const std::string bytes = ToCsv(table);
  for (size_t off = 0; off <= bytes.size(); ++off) {
    const Result<CsvTable> r = ParseCsv(bytes.substr(0, off));
    if (!r.ok()) {
      EXPECT_FALSE(r.status().message().empty()) << "offset " << off;
    }
  }
}

TEST(FaultInjectionTest, ReloadKeepsServingAcrossPrefixSweep) {
  // Engine serving model A; an operator tries to hot-swap to model B but
  // the new file is cut short at every possible offset. The engine must
  // never stop serving, and must serve exactly the model the last
  // *successful* reload installed.
  const FalccModel a = TrainTinyModel(42);
  const FalccModel b = TrainTinyModel(43);
  const std::string b_bytes = Snapshot(b);

  const TrainValTest s = TinySplits();
  std::vector<double> probe;
  const size_t kProbeRows = 8;
  for (size_t i = 0; i < kProbeRows; ++i) {
    const auto row = s.test.Row(i);
    probe.insert(probe.end(), row.begin(), row.end());
  }
  ClassifyRequest request;
  request.features = probe;
  request.num_features = s.test.num_features();

  serve::FalccEngineOptions eopt;
  eopt.start_flusher = false;
  serve::FalccEngine engine(eopt);
  engine.Install(TrainTinyModel(42));

  // Decisions the engine is expected to produce: those of the last
  // successfully installed snapshot (A until some prefix of B loads —
  // e.g. a cut at the monitor-section boundary is a valid legacy file).
  std::vector<SampleDecision> expected =
      a.ClassifyBatch(request).value().decisions;

  const std::string path = ::testing::TempDir() + "/falcc-reload-sweep.bin";
  size_t swaps = 0;
  for (size_t off = 0; off <= b_bytes.size(); ++off) {
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      ASSERT_TRUE(out.good());
      out << b_bytes.substr(0, off);
    }
    const uint64_t version_before = engine.snapshot_version();
    const Status reload = engine.ReloadFromFile(path);
    if (reload.ok()) {
      ++swaps;
      EXPECT_EQ(engine.snapshot_version(), version_before + 1);
      const Result<FalccModel> direct =
          testing::LoadFromString(b_bytes.substr(0, off));
      ASSERT_TRUE(direct.ok()) << "offset " << off;
      expected = direct.value().ClassifyBatch(request).value().decisions;
    } else {
      EXPECT_EQ(engine.snapshot_version(), version_before);
      EXPECT_FALSE(reload.message().empty()) << "offset " << off;
    }

    // Serving is never interrupted and always reflects the expected
    // snapshot, bit for bit.
    const Result<ClassifyResponse> served = engine.ClassifyBatch(request);
    ASSERT_TRUE(served.ok()) << "offset " << off << ": "
                             << served.status().ToString();
    ASSERT_EQ(served.value().decisions.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      const SampleDecision& got = served.value().decisions[i];
      const SampleDecision& want = expected[i];
      ASSERT_TRUE(got.label == want.label &&
                  got.probability == want.probability &&
                  got.cluster == want.cluster && got.group == want.group &&
                  got.model == want.model)
          << "offset " << off << " sample " << i;
    }
  }
  EXPECT_GE(swaps, 1u);  // the full-length file must swap in
  std::remove(path.c_str());
}

TEST(FaultInjectionTest, PerSectionCorruptionNamesTheSectionAndKeepsServing) {
  // One flipped byte in each v2 section's payload: the load must fail
  // citing exactly that section (incremental validation), and an engine
  // mid-reload must keep serving its current snapshot.
  const FalccModel model = TrainTinyModel(42);
  const std::string bytes = Snapshot(model);
  const Result<io::SnapshotReader> reader = io::SnapshotReader::ParseView(bytes);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  const size_t payload = reader.value().payload_file_offset();

  serve::FalccEngineOptions eopt;
  eopt.start_flusher = false;
  serve::FalccEngine engine(eopt);
  engine.Install(TrainTinyModel(42));
  const std::vector<double> probe(model.num_features(), 0.5);
  const std::string path = ::testing::TempDir() + "/falcc-section-corrupt.bin";

  ASSERT_FALSE(reader.value().manifest().sections.empty());
  for (const io::SectionInfo& section : reader.value().manifest().sections) {
    ASSERT_GT(section.length, 0u) << section.name;
    std::string corrupt = bytes;
    corrupt[payload + section.offset + section.length / 2] ^= 0x01;

    const Result<FalccModel> direct = testing::LoadFromString(corrupt);
    ASSERT_FALSE(direct.ok()) << section.name;
    EXPECT_NE(direct.status().message().find("'" + section.name + "'"),
              std::string::npos)
        << section.name << ": " << direct.status().message();

    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out << corrupt;
    }
    const uint64_t version = engine.snapshot_version();
    EXPECT_FALSE(engine.ReloadFromFile(path).ok()) << section.name;
    EXPECT_FALSE(engine.ReloadMapped(path).ok()) << section.name;
    EXPECT_EQ(engine.snapshot_version(), version) << section.name;
    ClassifyRequest request;
    request.features = probe;
    request.num_features = probe.size();
    EXPECT_TRUE(engine.ClassifyBatch(request).ok()) << section.name;
  }
  std::remove(path.c_str());
}

TEST(FaultInjectionTest, DeltaFaultsNeverKillAServingEngine) {
  // Wrong-base, mutated, and truncated deltas must all reject cleanly
  // while the engine keeps serving; only the valid delta swaps.
  const FalccModel a = TrainTinyModel(42);
  const FalccModel b = TrainTinyModel(43);

  serve::FalccEngineOptions eopt;
  eopt.start_flusher = false;
  serve::FalccEngine engine(eopt);

  // No snapshot installed yet: a delta has nothing to apply to.
  EXPECT_EQ(engine.ApplyDeltaBytes("falcc-delta-v2\n").code(),
            StatusCode::kUnavailable);

  engine.Install(TrainTinyModel(42));
  const std::vector<double> probe(a.num_features(), 0.5);

  // A delta built against B's content hash, fired at an engine serving A.
  std::ostringstream wrong;
  const size_t clusters[] = {0};
  ASSERT_TRUE(b.SaveDelta(&wrong, clusters, b.ContentHash().value()).ok());
  const uint64_t version = engine.snapshot_version();
  const Status rejected = engine.ApplyDeltaBytes(wrong.str());
  EXPECT_EQ(rejected.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(engine.snapshot_version(), version);

  // Every prefix of a valid delta: reject cleanly or apply; serving
  // never pauses either way.
  std::ostringstream valid;
  const uint64_t base_hash =
      engine.snapshot()->ContentHash().value();
  ASSERT_TRUE(a.SaveDelta(&valid, clusters, base_hash).ok());
  const std::string delta = valid.str();
  size_t applied = 0;
  for (size_t off = 0; off <= delta.size(); ++off) {
    const Status st = engine.ApplyDeltaBytes(delta.substr(0, off));
    if (st.ok()) {
      ++applied;
    } else {
      EXPECT_FALSE(st.message().empty()) << "offset " << off;
    }
    ClassifyRequest request;
    request.features = probe;
    request.num_features = probe.size();
    EXPECT_TRUE(engine.ClassifyBatch(request).ok()) << "offset " << off;
  }
  EXPECT_GE(applied, 1u);  // the full delta must apply
}

}  // namespace
}  // namespace falcc
