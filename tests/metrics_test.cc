#include "fairness/metrics.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace falcc {
namespace {

GroupedPredictions Make(const std::vector<int>& labels,
                        const std::vector<int>& predictions,
                        const std::vector<size_t>& groups,
                        size_t num_groups) {
  GroupedPredictions in;
  in.labels = labels;
  in.predictions = predictions;
  in.groups = groups;
  in.num_groups = num_groups;
  return in;
}

TEST(DemographicParityTest, PerfectParityIsZero) {
  // Both groups get 50% positive predictions.
  const std::vector<int> y = {1, 0, 1, 0};
  const std::vector<int> z = {1, 0, 1, 0};
  const std::vector<size_t> g = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(DemographicParity(Make(y, z, g, 2)).value(), 0.0);
}

TEST(DemographicParityTest, MaximalDisparity) {
  // Group 0 all positive, group 1 all negative; overall rate 0.5.
  const std::vector<int> y = {1, 1, 0, 0};
  const std::vector<int> z = {1, 1, 0, 0};
  const std::vector<size_t> g = {0, 0, 1, 1};
  // |1 - 0.5| and |0 - 0.5| average to 0.5.
  EXPECT_DOUBLE_EQ(DemographicParity(Make(y, z, g, 2)).value(), 0.5);
}

TEST(DemographicParityTest, HandComputedValue) {
  // Group 0: 2/3 positive; group 1: 1/3; overall: 1/2.
  const std::vector<int> z = {1, 1, 0, 1, 0, 0};
  const std::vector<int> y = z;
  const std::vector<size_t> g = {0, 0, 0, 1, 1, 1};
  // (|2/3-1/2| + |1/3-1/2|) / 2 = 1/6.
  EXPECT_NEAR(DemographicParity(Make(y, z, g, 2)).value(), 1.0 / 6.0, 1e-12);
}

TEST(DemographicParityTest, LabelsIrrelevant) {
  const std::vector<int> z = {1, 0, 1, 0};
  const std::vector<size_t> g = {0, 0, 1, 1};
  const std::vector<int> y1 = {1, 1, 1, 1};
  const std::vector<int> y2 = {0, 0, 0, 0};
  EXPECT_DOUBLE_EQ(DemographicParity(Make(y1, z, g, 2)).value(),
                   DemographicParity(Make(y2, z, g, 2)).value());
}

TEST(EqualizedOddsTest, PerfectPredictorEqualBaseRates) {
  // Perfect predictions with equal base rates per group: zero.
  const std::vector<int> y = {1, 0, 1, 0};
  const std::vector<int> z = y;
  const std::vector<size_t> g = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(EqualizedOdds(Make(y, z, g, 2)).value(), 0.0);
}

TEST(EqualizedOddsTest, GroupConditionalErrorDetected) {
  // Among true positives: group 0 predicted 1, group 1 predicted 0.
  const std::vector<int> y = {1, 1, 0, 0};
  const std::vector<int> z = {1, 0, 0, 0};
  const std::vector<size_t> g = {0, 1, 0, 1};
  EXPECT_GT(EqualizedOdds(Make(y, z, g, 2)).value(), 0.0);
}

TEST(EqualOpportunityTest, OnlyPositiveLabelMatters) {
  // Disparity exists only among y=0 rows: eq_op is zero.
  const std::vector<int> y = {1, 1, 0, 0};
  const std::vector<int> z = {1, 1, 1, 0};
  const std::vector<size_t> g = {0, 1, 0, 1};
  EXPECT_DOUBLE_EQ(EqualOpportunity(Make(y, z, g, 2)).value(), 0.0);
  EXPECT_GT(EqualizedOdds(Make(y, z, g, 2)).value(), 0.0);
}

TEST(EqualOpportunityTest, DetectsTprGap) {
  const std::vector<int> y = {1, 1, 1, 1};
  const std::vector<int> z = {1, 1, 0, 0};
  const std::vector<size_t> g = {0, 0, 1, 1};
  // TPR group 0 = 1, group 1 = 0, overall 0.5 -> mean dev 0.5.
  EXPECT_DOUBLE_EQ(EqualOpportunity(Make(y, z, g, 2)).value(), 0.5);
}

TEST(TreatmentEqualityTest, NoErrorsIsFair) {
  const std::vector<int> y = {1, 0, 1, 0};
  const std::vector<int> z = y;
  const std::vector<size_t> g = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(TreatmentEquality(Make(y, z, g, 2)).value(), 0.0);
}

TEST(TreatmentEqualityTest, OppositeErrorProfiles) {
  // Group 0 errs only with FPs, group 1 only with FNs.
  const std::vector<int> y = {0, 0, 1, 1};
  const std::vector<int> z = {1, 1, 0, 0};
  const std::vector<size_t> g = {0, 0, 1, 1};
  // Ratios: group0 = 1, group1 = 0, overall 0.5 -> 0.5.
  EXPECT_DOUBLE_EQ(TreatmentEquality(Make(y, z, g, 2)).value(), 0.5);
}

TEST(MetricsTest, AllBoundedZeroOne) {
  Rng rng(1);
  std::vector<int> y(200), z(200);
  std::vector<size_t> g(200);
  for (size_t i = 0; i < 200; ++i) {
    y[i] = rng.Bernoulli(0.4);
    z[i] = rng.Bernoulli(0.6);
    g[i] = rng.UniformInt(3);
  }
  const GroupedPredictions in = Make(y, z, g, 3);
  for (FairnessMetric m :
       {FairnessMetric::kDemographicParity, FairnessMetric::kEqualizedOdds,
        FairnessMetric::kEqualOpportunity,
        FairnessMetric::kTreatmentEquality}) {
    const double bias = ComputeBias(m, in).value();
    EXPECT_GE(bias, 0.0) << FairnessMetricName(m);
    EXPECT_LE(bias, 1.0) << FairnessMetricName(m);
  }
}

TEST(MetricsTest, SingleGroupIsAlwaysFair) {
  const std::vector<int> y = {1, 0, 1};
  const std::vector<int> z = {0, 1, 1};
  const std::vector<size_t> g = {0, 0, 0};
  const GroupedPredictions in = Make(y, z, g, 1);
  EXPECT_DOUBLE_EQ(DemographicParity(in).value(), 0.0);
  EXPECT_DOUBLE_EQ(EqualizedOdds(in).value(), 0.0);
  EXPECT_DOUBLE_EQ(TreatmentEquality(in).value(), 0.0);
}

TEST(MetricsTest, ValidationErrors) {
  const std::vector<int> y = {1};
  const std::vector<int> z = {1, 0};
  const std::vector<size_t> g = {0};
  EXPECT_FALSE(DemographicParity(Make(y, z, g, 1)).ok());

  const std::vector<int> y2 = {2};
  const std::vector<int> z2 = {0};
  EXPECT_FALSE(DemographicParity(Make(y2, z2, g, 1)).ok());

  const std::vector<int> y3 = {1};
  const std::vector<int> z3 = {1};
  const std::vector<size_t> g3 = {5};
  EXPECT_FALSE(DemographicParity(Make(y3, z3, g3, 1)).ok());

  EXPECT_FALSE(DemographicParity(Make({}, {}, {}, 1)).ok());
}

TEST(MetricsTest, NamesStable) {
  EXPECT_EQ(FairnessMetricName(FairnessMetric::kDemographicParity), "dp");
  EXPECT_EQ(FairnessMetricName(FairnessMetric::kEqualizedOdds), "eq_od");
  EXPECT_EQ(FairnessMetricName(FairnessMetric::kEqualOpportunity), "eq_op");
  EXPECT_EQ(FairnessMetricName(FairnessMetric::kTreatmentEquality), "tr_eq");
}

TEST(MetricsPropertyTest, DpInvariantUnderGroupRelabeling) {
  // Swapping group ids must not change any mean-difference metric.
  Rng rng(7);
  std::vector<int> y(150), z(150);
  std::vector<size_t> g(150), swapped(150);
  for (size_t i = 0; i < 150; ++i) {
    y[i] = rng.Bernoulli(0.5);
    z[i] = rng.Bernoulli(0.5);
    g[i] = rng.UniformInt(2);
    swapped[i] = 1 - g[i];
  }
  for (FairnessMetric m :
       {FairnessMetric::kDemographicParity, FairnessMetric::kEqualizedOdds,
        FairnessMetric::kEqualOpportunity,
        FairnessMetric::kTreatmentEquality}) {
    EXPECT_DOUBLE_EQ(ComputeBias(m, Make(y, z, g, 2)).value(),
                     ComputeBias(m, Make(y, z, swapped, 2)).value())
        << FairnessMetricName(m);
  }
}

TEST(MetricsPropertyTest, DpInvariantUnderSampleShuffle) {
  Rng rng(8);
  std::vector<int> y(100), z(100);
  std::vector<size_t> g(100);
  for (size_t i = 0; i < 100; ++i) {
    y[i] = rng.Bernoulli(0.4);
    z[i] = rng.Bernoulli(0.6);
    g[i] = rng.UniformInt(3);
  }
  const double before = DemographicParity(Make(y, z, g, 3)).value();
  const std::vector<size_t> perm = rng.Permutation(100);
  std::vector<int> y2(100), z2(100);
  std::vector<size_t> g2(100);
  for (size_t i = 0; i < 100; ++i) {
    y2[i] = y[perm[i]];
    z2[i] = z[perm[i]];
    g2[i] = g[perm[i]];
  }
  EXPECT_DOUBLE_EQ(DemographicParity(Make(y2, z2, g2, 3)).value(), before);
}

TEST(MetricsPropertyTest, EqualizedOddsIsMeanOfConditionalParities) {
  // eq_od averages the y=0 and y=1 conditional deviations; eq_op is the
  // y=1 half, so eq_od must lie between eq_op/2 and eq_op/2 + 1/2.
  Rng rng(9);
  std::vector<int> y(200), z(200);
  std::vector<size_t> g(200);
  for (size_t i = 0; i < 200; ++i) {
    y[i] = rng.Bernoulli(0.5);
    z[i] = rng.Bernoulli(0.5);
    g[i] = rng.UniformInt(2);
  }
  const GroupedPredictions in = Make(y, z, g, 2);
  const double eq_od = EqualizedOdds(in).value();
  const double eq_op = EqualOpportunity(in).value();
  EXPECT_GE(eq_od, eq_op / 2.0 - 1e-12);
  EXPECT_LE(eq_od, eq_op / 2.0 + 0.5 + 1e-12);
}

TEST(MetricsPropertyTest, DuplicatingAllSamplesPreservesMetrics) {
  Rng rng(10);
  std::vector<int> y(80), z(80);
  std::vector<size_t> g(80);
  for (size_t i = 0; i < 80; ++i) {
    y[i] = rng.Bernoulli(0.5);
    z[i] = rng.Bernoulli(0.5);
    g[i] = rng.UniformInt(2);
  }
  std::vector<int> y2 = y, z2 = z;
  std::vector<size_t> g2 = g;
  y2.insert(y2.end(), y.begin(), y.end());
  z2.insert(z2.end(), z.begin(), z.end());
  g2.insert(g2.end(), g.begin(), g.end());
  for (FairnessMetric m :
       {FairnessMetric::kDemographicParity, FairnessMetric::kEqualizedOdds,
        FairnessMetric::kTreatmentEquality}) {
    EXPECT_NEAR(ComputeBias(m, Make(y, z, g, 2)).value(),
                ComputeBias(m, Make(y2, z2, g2, 2)).value(), 1e-12)
        << FairnessMetricName(m);
  }
}

TEST(ConsistencyTest, UnanimousNeighborhoodIsOne) {
  const std::vector<int> z = {1, 1, 1};
  const std::vector<std::vector<size_t>> nn = {{1, 2}, {0, 2}, {0, 1}};
  EXPECT_DOUBLE_EQ(Consistency(z, nn).value(), 1.0);
}

TEST(ConsistencyTest, FullyInconsistent) {
  // Each sample disagrees with all its neighbors.
  const std::vector<int> z = {1, 0};
  const std::vector<std::vector<size_t>> nn = {{1}, {0}};
  EXPECT_DOUBLE_EQ(Consistency(z, nn).value(), 0.0);
}

TEST(ConsistencyTest, PartialDisagreement) {
  const std::vector<int> z = {1, 1, 0};
  const std::vector<std::vector<size_t>> nn = {{1, 2}, {0, 2}, {0, 1}};
  // deviations: |1-0.5| + |1-0.5| + |0-1| = 2 -> 1 - 2/3.
  EXPECT_NEAR(Consistency(z, nn).value(), 1.0 - 2.0 / 3.0, 1e-12);
}

TEST(ConsistencyTest, IsolatedSamplesCountConsistent) {
  const std::vector<int> z = {1, 0};
  const std::vector<std::vector<size_t>> nn = {{}, {}};
  EXPECT_DOUBLE_EQ(Consistency(z, nn).value(), 1.0);
}

TEST(ConsistencyKnnTest, ClusteredPredictionsAreConsistent) {
  // Two spatial clusters, predictions constant within each.
  std::vector<std::vector<double>> points;
  std::vector<int> z;
  Rng rng(2);
  for (int c = 0; c < 2; ++c) {
    for (int i = 0; i < 50; ++i) {
      points.push_back({rng.Normal(c * 20.0, 0.5)});
      z.push_back(c);
    }
  }
  EXPECT_DOUBLE_EQ(ConsistencyKnn(z, points, 5).value(), 1.0);
}

TEST(ConsistencyKnnTest, RandomPredictionsInconsistent) {
  std::vector<std::vector<double>> points;
  std::vector<int> z;
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    points.push_back({rng.Normal()});
    z.push_back(rng.Bernoulli(0.5) ? 1 : 0);
  }
  EXPECT_LT(ConsistencyKnn(z, points, 10).value(), 0.9);
}

}  // namespace
}  // namespace falcc
