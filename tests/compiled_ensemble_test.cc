// Tests of the compiled flat-node inference kernels: bit-identity with
// the interpreted prediction path for every lowerable model family
// (including block-edge batch sizes), fallback behaviour for models that
// do not lower, stitching/dedup in CompiledCombo, bit-identity on the
// checked-in golden models, and classify-during-hot-swap-recompile
// concurrency (the TSan target in tools/check.sh).

#include "ml/compiled_ensemble.h"

#include <atomic>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/falcc.h"
#include "core/model_pool.h"
#include "data/split.h"
#include "datagen/synthetic.h"
#include "ml/adaboost.h"
#include "ml/decision_tree.h"
#include "ml/logistic_regression.h"
#include "ml/random_forest.h"
#include "ml/serialize.h"
#include "serve/engine.h"

namespace falcc {
namespace {

Dataset MakeData(size_t n = 400, uint64_t seed = 9) {
  SyntheticConfig config;
  config.num_samples = n;
  config.seed = seed;
  return GenerateImplicitBias(config).value();
}

std::vector<size_t> AllRows(size_t n) {
  std::vector<size_t> rows(n);
  for (size_t i = 0; i < n; ++i) rows[i] = i;
  return rows;
}

// Compiled and interpreted probabilities over `rows` must be equal as
// doubles — not approximately: the kernel contract is bit-identity.
void ExpectBitIdentical(const Classifier& model, const CompiledEnsemble& kernel,
                        const Dataset& data, std::span<const size_t> rows) {
  std::vector<double> interpreted(rows.size());
  std::vector<double> compiled(rows.size());
  model.PredictProbaBatch(data, rows, interpreted);
  kernel.PredictProbaBatch(data, rows, compiled);
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(interpreted[i], compiled[i]) << "row " << rows[i];
  }
}

// Every batch size around the row-block boundary (the kernel processes
// rows in fixed-size blocks) plus a full pass.
void CheckAllBlockEdges(const Classifier& model, const Dataset& data) {
  const Result<CompiledEnsemble> kernel = CompiledEnsemble::Compile(model);
  ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();
  const std::vector<size_t> all = AllRows(data.num_rows());
  for (size_t n : {size_t{0}, size_t{1}, size_t{15}, size_t{16}, size_t{17},
                   size_t{31}, size_t{33}, data.num_rows()}) {
    ExpectBitIdentical(model, kernel.value(), data,
                       std::span<const size_t>(all).subspan(0, n));
  }
}

TEST(CompiledEnsembleTest, DecisionTreeBitIdentity) {
  const Dataset data = MakeData();
  DecisionTreeOptions options;
  options.max_depth = 12;
  DecisionTree tree(options);
  ASSERT_TRUE(tree.Fit(data).ok());
  CheckAllBlockEdges(tree, data);
}

TEST(CompiledEnsembleTest, StumpAndConstantTreeBitIdentity) {
  const Dataset data = MakeData(200, 3);
  DecisionTreeOptions options;
  options.max_depth = 1;
  DecisionTree stump(options);
  ASSERT_TRUE(stump.Fit(data).ok());
  CheckAllBlockEdges(stump, data);

  // A dataset with one constant label trains a root-only tree — the
  // zero-step walk must still land on the (root) leaf.
  Dataset constant = MakeData(64, 4);
  for (size_t i = 0; i < constant.num_rows(); ++i) constant.SetLabel(i, 1);
  DecisionTree leaf_only(options);
  ASSERT_TRUE(leaf_only.Fit(constant).ok());
  CheckAllBlockEdges(leaf_only, constant);
}

TEST(CompiledEnsembleTest, AdaBoostBitIdentity) {
  const Dataset data = MakeData();
  AdaBoostOptions deep;
  deep.num_estimators = 40;
  deep.base.max_depth = 8;
  AdaBoost boosted(deep);
  ASSERT_TRUE(boosted.Fit(data).ok());
  CheckAllBlockEdges(boosted, data);

  AdaBoostOptions shallow;
  shallow.num_estimators = 20;
  shallow.base.max_depth = 4;
  AdaBoost stumps(shallow);
  ASSERT_TRUE(stumps.Fit(data).ok());
  CheckAllBlockEdges(stumps, data);
}

TEST(CompiledEnsembleTest, RandomForestBitIdentity) {
  const Dataset data = MakeData();
  RandomForestOptions options;
  options.num_trees = 40;
  options.base.max_depth = 10;
  RandomForest forest(options);
  ASSERT_TRUE(forest.Fit(data).ok());
  CheckAllBlockEdges(forest, data);
}

TEST(CompiledEnsembleTest, NonLowerableModelsFailPrecondition) {
  const Dataset data = MakeData(200, 5);
  LogisticRegression logistic;
  ASSERT_TRUE(logistic.Fit(data).ok());
  const Result<CompiledEnsemble> kernel = CompiledEnsemble::Compile(logistic);
  EXPECT_FALSE(kernel.ok());
  EXPECT_EQ(kernel.status().code(), StatusCode::kFailedPrecondition);
}

TEST(CompiledComboTest, FusedGroupsMatchAndFallbackRoutes) {
  const Dataset data = MakeData();
  auto boosted = std::make_unique<AdaBoost>();
  ASSERT_TRUE(boosted->Fit(data).ok());
  auto logistic = std::make_unique<LogisticRegression>();
  ASSERT_TRUE(logistic->Fit(data).ok());
  const AdaBoost& boosted_ref = *boosted;

  ModelPool pool;
  pool.Add(std::move(boosted));
  pool.Add(std::move(logistic));

  const ModelCombination combo = {0, 1};
  const auto compiled = CompiledCombo::Compile(pool, combo);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  const CompiledCombo& kernel = *compiled.value();

  ASSERT_EQ(kernel.num_groups(), 2u);
  EXPECT_TRUE(kernel.GroupCompiled(0));
  EXPECT_FALSE(kernel.GroupCompiled(1));  // logistic: interpreted fallback
  EXPECT_EQ(kernel.GroupModel(0), 0u);
  EXPECT_EQ(kernel.GroupModel(1), 1u);
  EXPECT_EQ(kernel.num_compiled_groups(), 1u);

  const std::vector<size_t> rows = AllRows(data.num_rows());
  std::vector<double> interpreted(rows.size());
  std::vector<double> fused(rows.size());
  boosted_ref.PredictProbaBatch(data, rows, interpreted);
  kernel.PredictGroup(data, 0, rows, fused);
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(interpreted[i], fused[i]) << "row " << i;
  }
}

TEST(CompiledComboTest, GroupsSharingAModelShareOneLoweredEntry) {
  const Dataset data = MakeData(300, 6);
  auto boosted = std::make_unique<AdaBoost>();
  ASSERT_TRUE(boosted->Fit(data).ok());
  const Result<CompiledEnsemble> standalone =
      CompiledEnsemble::Compile(*boosted);
  ASSERT_TRUE(standalone.ok());

  ModelPool pool;
  pool.Add(std::move(boosted));
  const ModelCombination combo = {0, 0, 0};  // three groups, one model
  const auto compiled = CompiledCombo::Compile(pool, combo);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

  // The model is lowered once, not once per group.
  EXPECT_EQ(compiled.value()->num_nodes(), standalone.value().num_nodes());
  EXPECT_EQ(compiled.value()->num_compiled_groups(), 3u);
}

TEST(CompiledComboTest, IndependentCompilesOfSameComboAreBitIdentical) {
  const Dataset data = MakeData(300, 7);
  auto forest = std::make_unique<RandomForest>();
  ASSERT_TRUE(forest->Fit(data).ok());
  ModelPool pool;
  pool.Add(std::move(forest));
  const ModelCombination combo = {0, 0};
  const auto a = CompiledCombo::Compile(pool, combo);
  const auto b = CompiledCombo::Compile(pool, combo);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(a.value()->SameBits(*b.value()));
  EXPECT_NE(a.value().get(), b.value().get());
}

// --- Golden models -----------------------------------------------------

// The checked-in reference models (tests/golden/) pin the trainers'
// exact behaviour; the compiled kernels must reproduce each of them bit
// for bit on a deterministic probe grid.
TEST(CompiledGoldenTest, GoldenModelsCompileBitIdentical) {
  const std::string kGolden[] = {
      "adaboost_weighted.txt",      "random_forest_bootstrap.txt",
      "tree_entropy_weighted.txt",  "tree_gini_duplicates.txt",
      "tree_max_features.txt",      "tree_min_leaf.txt",
  };
  for (const std::string& name : kGolden) {
    SCOPED_TRACE(name);
    std::ifstream in(std::string(FALCC_GOLDEN_DIR) + "/" + name);
    ASSERT_TRUE(in.good()) << "missing golden file";
    Result<std::unique_ptr<Classifier>> model = DeserializeClassifier(&in);
    ASSERT_TRUE(model.ok()) << model.status().ToString();

    // Recover the model's input width by probing the validator.
    size_t width = 0;
    for (size_t w = 1; w <= 64; ++w) {
      if (model.value()->ValidateForWidth(w).ok()) {
        width = w;
        break;
      }
    }
    ASSERT_GT(width, 0u) << "no width in 1..64 validates";

    // Deterministic probe grid crossing the row-block boundary.
    const size_t n = 45;
    std::vector<double> features(n * width);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < width; ++j) {
        features[i * width + j] =
            static_cast<double>((i * 7 + j * 3) % 23) * 0.25 - 2.0;
      }
    }
    std::vector<std::string> names(width);
    for (size_t j = 0; j < width; ++j) names[j] = "f" + std::to_string(j);
    const Dataset probe =
        Dataset::Create(std::move(names), std::move(features), width,
                        std::vector<int>(n, 0), {})
            .value();
    CheckAllBlockEdges(*model.value(), probe);
  }
}

// --- Concurrency (TSan target) -----------------------------------------

TrainValTest MakeSplits() {
  SyntheticConfig cfg;
  cfg.num_samples = 1500;
  cfg.seed = 7;
  const Dataset d = GenerateImplicitBias(cfg).value();
  return SplitDatasetDefault(d, 11).value();
}

FalccOptions FastOptions() {
  FalccOptions opt;
  opt.seed = 42;
  opt.trainer.estimator_grid = {5};
  opt.trainer.depth_grid = {1, 4};
  opt.trainer.pool_size = 3;
  return opt;
}

// Readers classify continuously while the main thread repeatedly
// hot-swaps models whose kernels were dropped — forcing Install's
// compile-before-publish path to race against serving. Under TSan this
// is the "concurrent classify during hot-swap recompile" check.
TEST(CompiledConcurrencyTest, ClassifyDuringHotSwapRecompile) {
  const TrainValTest s = MakeSplits();
  FalccModel model =
      FalccModel::Train(s.train, s.validation, FastOptions()).value();
  std::ostringstream buffer;
  ASSERT_TRUE(model.Save(&buffer).ok());
  const std::string bytes = buffer.str();

  serve::FalccEngineOptions options;
  options.start_flusher = false;
  serve::FalccEngine engine(options);
  engine.Install(std::move(model));

  std::vector<double> batch;
  const size_t width = s.test.num_features();
  for (size_t i = 0; i < 64; ++i) {
    const auto row = s.test.Row(i);
    batch.insert(batch.end(), row.begin(), row.end());
  }
  ClassifyRequest request{batch, width};

  std::atomic<bool> stop{false};
  std::atomic<size_t> served{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const Result<ClassifyResponse> response = engine.ClassifyBatch(request);
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      served.fetch_add(response.value().decisions.size(),
                       std::memory_order_relaxed);
    }
  });

  for (int swap = 0; swap < 8; ++swap) {
    std::istringstream in(bytes);
    FalccModel next = FalccModel::Load(&in).value();
    next.ClearCompiledKernels();  // force Install to recompile
    engine.Install(std::move(next));
  }
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_GT(served.load(), 0u);
  EXPECT_TRUE(engine.snapshot()->has_compiled_kernels());
  EXPECT_GE(engine.GetMetrics().compile.count, 8u);
}

}  // namespace
}  // namespace falcc
