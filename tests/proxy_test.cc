#include "fairness/proxy.h"

#include <gtest/gtest.h>

#include "datagen/synthetic.h"

namespace falcc {
namespace {

// Implicit dataset: columns 0..2 are proxies of the sensitive column 8.
Dataset MakeProxyData(double bias = 0.4) {
  SyntheticConfig cfg;
  cfg.num_samples = 4000;
  cfg.num_proxies = 3;
  cfg.bias = bias;
  cfg.seed = 21;
  return GenerateImplicitBias(cfg).value();
}

TEST(AnalyzeProxiesTest, ReportsOnlyNonSensitiveColumns) {
  const Dataset d = MakeProxyData();
  const auto reports = AnalyzeProxies(d, {}).value();
  EXPECT_EQ(reports.size(), 8u);  // 9 features - 1 sensitive
  for (const auto& r : reports) {
    EXPECT_NE(r.column, d.sensitive_features()[0]);
  }
}

TEST(AnalyzeProxiesTest, ProxiesGetLowerWeights) {
  const Dataset d = MakeProxyData(0.5);
  const auto reports = AnalyzeProxies(d, {}).value();
  double proxy_weight = 0.0, other_weight = 0.0;
  int proxies = 0, others = 0;
  for (const auto& r : reports) {
    if (r.column < 3) {
      proxy_weight += r.weight;
      ++proxies;
    } else {
      other_weight += r.weight;
      ++others;
    }
  }
  EXPECT_LT(proxy_weight / proxies, other_weight / others);
}

TEST(AnalyzeProxiesTest, WeightsInUnitInterval) {
  const Dataset d = MakeProxyData();
  const auto reports = AnalyzeProxies(d, {}).value();
  for (const auto& r : reports) {
    EXPECT_GE(r.weight, 0.0);
    EXPECT_LE(r.weight, 1.0);
  }
}

TEST(AnalyzeProxiesTest, RemovalFlagsRespectThreshold) {
  const Dataset d = MakeProxyData(0.5);
  ProxyOptions strict;
  strict.removal_threshold = 0.99;  // nothing correlates that strongly
  const auto strict_reports = AnalyzeProxies(d, strict).value();
  for (const auto& r : strict_reports) {
    EXPECT_FALSE(r.removed);
  }
  ProxyOptions loose;
  loose.removal_threshold = 0.05;
  int removed = 0;
  const auto loose_reports = AnalyzeProxies(d, loose).value();
  for (const auto& r : loose_reports) {
    removed += r.removed;
  }
  EXPECT_GE(removed, 3);  // at least the three proxies
}

TEST(AnalyzeProxiesTest, NoBiasNoRemovals) {
  const Dataset d = MakeProxyData(0.0);
  ProxyOptions opt;
  opt.removal_threshold = 0.3;
  const auto reports = AnalyzeProxies(d, opt).value();
  for (const auto& r : reports) {
    EXPECT_FALSE(r.removed) << "column " << r.column;
  }
}

TEST(AnalyzeProxiesTest, RejectsBadInputs) {
  const Dataset d = MakeProxyData();
  ProxyOptions opt;
  opt.removal_threshold = 2.0;
  EXPECT_FALSE(AnalyzeProxies(d, opt).ok());
  const Dataset no_sens =
      Dataset::Create({"a"}, {1.0, 2.0, 3.0}, 1, {0, 1, 0}, {}).value();
  EXPECT_FALSE(AnalyzeProxies(no_sens, {}).ok());
}

TEST(BuildClusteringTransformTest, AlwaysDropsSensitive) {
  const Dataset d = MakeProxyData();
  for (ProxyMitigation strategy :
       {ProxyMitigation::kNone, ProxyMitigation::kReweigh,
        ProxyMitigation::kRemove}) {
    ProxyOptions opt;
    opt.strategy = strategy;
    opt.removal_threshold = 0.2;
    const ColumnTransform t =
        BuildClusteringTransform(d, opt, ColumnTransform::Identity(9))
            .value();
    for (size_t kept : t.kept_columns()) {
      EXPECT_NE(kept, d.sensitive_features()[0]);
    }
  }
}

TEST(BuildClusteringTransformTest, RemoveDropsProxies) {
  const Dataset d = MakeProxyData(0.5);
  ProxyOptions opt;
  opt.strategy = ProxyMitigation::kRemove;
  opt.removal_threshold = 0.1;
  const ColumnTransform t =
      BuildClusteringTransform(d, opt, ColumnTransform::Identity(9)).value();
  for (size_t kept : t.kept_columns()) {
    EXPECT_GE(kept, 3u);  // proxy columns 0..2 dropped
  }
  EXPECT_GE(t.num_output_features(), 1u);
}

TEST(BuildClusteringTransformTest, ReweighShrinksProxyContribution) {
  const Dataset d = MakeProxyData(0.5);
  ProxyOptions opt;
  opt.strategy = ProxyMitigation::kReweigh;
  const ColumnTransform t =
      BuildClusteringTransform(d, opt, ColumnTransform::Identity(9)).value();
  // A unit step along proxy column 0 maps to less than a unit step along
  // a noise column (column 5 has lower |rho|, so higher weight).
  std::vector<double> base(9, 0.0);
  std::vector<double> step_proxy = base;
  step_proxy[0] = 1.0;
  std::vector<double> step_noise = base;
  step_noise[5] = 1.0;
  const auto tb = t.Apply(base);
  const auto tp = t.Apply(step_proxy);
  const auto tn = t.Apply(step_noise);
  double proxy_shift = 0.0, noise_shift = 0.0;
  for (size_t j = 0; j < tb.size(); ++j) {
    proxy_shift += std::abs(tp[j] - tb[j]);
    noise_shift += std::abs(tn[j] - tb[j]);
  }
  EXPECT_LT(proxy_shift, noise_shift);
}

TEST(BuildClusteringTransformTest, RejectsWidthMismatch) {
  const Dataset d = MakeProxyData();
  EXPECT_FALSE(
      BuildClusteringTransform(d, {}, ColumnTransform::Identity(3)).ok());
}

}  // namespace
}  // namespace falcc
