#include "cluster/kdtree.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/math.h"
#include "util/rng.h"

namespace falcc {
namespace {

std::vector<std::vector<double>> RandomPoints(size_t n, size_t d,
                                              uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> points(n, std::vector<double>(d));
  for (auto& p : points) {
    for (auto& v : p) v = rng.Uniform(-10.0, 10.0);
  }
  return points;
}

// Brute-force reference: indices of the k nearest points.
std::vector<size_t> BruteForce(const std::vector<std::vector<double>>& pts,
                               std::span<const double> q, size_t k) {
  std::vector<size_t> idx(pts.size());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::stable_sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
    return SquaredDistance(q, pts[a]) < SquaredDistance(q, pts[b]);
  });
  idx.resize(std::min(k, idx.size()));
  return idx;
}

TEST(KdTreeTest, MatchesBruteForce) {
  const auto points = RandomPoints(500, 4, 1);
  const KdTree tree = KdTree::Build(points).value();
  Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> q(4);
    for (auto& v : q) v = rng.Uniform(-12.0, 12.0);
    const auto expected = BruteForce(points, q, 7);
    const auto actual = tree.Nearest(q, 7);
    EXPECT_EQ(actual, expected) << "trial " << trial;
  }
}

TEST(KdTreeTest, SingleNearest) {
  const auto points = RandomPoints(100, 3, 3);
  const KdTree tree = KdTree::Build(points).value();
  // Query exactly at a point: that point is the nearest.
  for (size_t i = 0; i < 10; ++i) {
    const auto nn = tree.Nearest(points[i], 1);
    ASSERT_EQ(nn.size(), 1u);
    EXPECT_EQ(nn[0], i);
  }
}

TEST(KdTreeTest, KLargerThanSizeReturnsAll) {
  const auto points = RandomPoints(10, 2, 4);
  const KdTree tree = KdTree::Build(points).value();
  const std::vector<double> q = {0.0, 0.0};
  EXPECT_EQ(tree.Nearest(q, 100).size(), 10u);
}

TEST(KdTreeTest, KZeroReturnsEmpty) {
  const auto points = RandomPoints(10, 2, 5);
  const KdTree tree = KdTree::Build(points).value();
  const std::vector<double> q = {0.0, 0.0};
  EXPECT_TRUE(tree.Nearest(q, 0).empty());
}

TEST(KdTreeTest, ResultsOrderedByDistance) {
  const auto points = RandomPoints(300, 3, 6);
  const KdTree tree = KdTree::Build(points).value();
  const std::vector<double> q = {1.0, 2.0, 3.0};
  const auto nn = tree.Nearest(q, 20);
  for (size_t i = 1; i < nn.size(); ++i) {
    EXPECT_LE(SquaredDistance(q, points[nn[i - 1]]),
              SquaredDistance(q, points[nn[i]]));
  }
}

TEST(KdTreeTest, NearestWhereRespectsFilter) {
  const auto points = RandomPoints(200, 2, 7);
  const KdTree tree = KdTree::Build(points).value();
  std::vector<bool> accept(200, false);
  for (size_t i = 0; i < 200; i += 3) accept[i] = true;
  const std::vector<double> q = {0.0, 0.0};
  const auto nn = tree.NearestWhere(q, 10, accept);
  ASSERT_EQ(nn.size(), 10u);
  for (size_t idx : nn) EXPECT_TRUE(accept[idx]);
}

TEST(KdTreeTest, NearestWhereMatchesFilteredBruteForce) {
  const auto points = RandomPoints(300, 3, 8);
  const KdTree tree = KdTree::Build(points).value();
  std::vector<bool> accept(300, false);
  Rng rng(9);
  for (size_t i = 0; i < 300; ++i) accept[i] = rng.Bernoulli(0.4);
  std::vector<std::vector<double>> filtered;
  std::vector<size_t> original_idx;
  for (size_t i = 0; i < 300; ++i) {
    if (accept[i]) {
      filtered.push_back(points[i]);
      original_idx.push_back(i);
    }
  }
  const std::vector<double> q = {1.0, -1.0, 0.5};
  const auto expected_local = BruteForce(filtered, q, 5);
  const auto actual = tree.NearestWhere(q, 5, accept);
  ASSERT_EQ(actual.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(actual[i], original_idx[expected_local[i]]);
  }
}

TEST(KdTreeTest, DuplicatePointsHandled) {
  std::vector<std::vector<double>> points(50, {1.0, 1.0});
  points.push_back({2.0, 2.0});
  const KdTree tree = KdTree::Build(points).value();
  const std::vector<double> q = {1.0, 1.0};
  const auto nn = tree.Nearest(q, 3);
  EXPECT_EQ(nn.size(), 3u);
  for (size_t idx : nn) EXPECT_LT(idx, 50u);  // all duplicates, not (2,2)
}

TEST(KdTreeTest, RejectsEmptyAndRagged) {
  EXPECT_FALSE(KdTree::Build({}).ok());
  EXPECT_FALSE(KdTree::Build({{1.0, 2.0}, {1.0}}).ok());
  EXPECT_FALSE(KdTree::Build({{}}).ok());
}

class KdTreeDimSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(KdTreeDimSweep, CorrectAcrossDimensionalities) {
  const size_t d = GetParam();
  const auto points = RandomPoints(200, d, 10 + d);
  const KdTree tree = KdTree::Build(points).value();
  Rng rng(20 + d);
  std::vector<double> q(d);
  for (auto& v : q) v = rng.Uniform(-10.0, 10.0);
  EXPECT_EQ(tree.Nearest(q, 5), BruteForce(points, q, 5));
}

INSTANTIATE_TEST_SUITE_P(Dims, KdTreeDimSweep,
                         ::testing::Values(1, 2, 5, 10, 25));

}  // namespace
}  // namespace falcc
