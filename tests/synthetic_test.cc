#include "datagen/synthetic.h"

#include <gtest/gtest.h>

#include "util/math.h"

namespace falcc {
namespace {

// Measured positive-rate gap between the favored (s=0) and discriminated
// (s=1) groups.
double MeasuredBias(const Dataset& d) {
  const size_t sens = d.sensitive_features()[0];
  double pos[2] = {0, 0}, count[2] = {0, 0};
  for (size_t i = 0; i < d.num_rows(); ++i) {
    const int s = d.Feature(i, sens) >= 0.5 ? 1 : 0;
    count[s] += 1.0;
    pos[s] += d.Label(i);
  }
  return pos[0] / count[0] - pos[1] / count[1];
}

TEST(SyntheticTest, SocialShapeMatchesConfig) {
  SyntheticConfig cfg;
  cfg.num_samples = 5000;
  cfg.seed = 11;
  const Dataset d = GenerateSocialBias(cfg).value();
  EXPECT_EQ(d.num_rows(), 5000u);
  EXPECT_EQ(d.num_features(), 9u);  // 8 + sensitive
  EXPECT_EQ(d.sensitive_features(), (std::vector<size_t>{8}));
  EXPECT_EQ(d.feature_names().back(), "sens");
}

TEST(SyntheticTest, SocialBiasNearTarget) {
  SyntheticConfig cfg;
  cfg.num_samples = 20000;
  cfg.bias = 0.30;
  cfg.seed = 13;
  const Dataset d = GenerateSocialBias(cfg).value();
  EXPECT_NEAR(MeasuredBias(d), 0.30, 0.03);
  EXPECT_NEAR(d.PositiveRate(), 0.5, 0.02);
}

TEST(SyntheticTest, ImplicitBiasNearTarget) {
  SyntheticConfig cfg;
  cfg.num_samples = 20000;
  cfg.bias = 0.30;
  cfg.seed = 17;
  const Dataset d = GenerateImplicitBias(cfg).value();
  EXPECT_NEAR(MeasuredBias(d), 0.30, 0.04);
}

TEST(SyntheticTest, ImplicitZeroBiasIsUnbiased) {
  SyntheticConfig cfg;
  cfg.num_samples = 20000;
  cfg.bias = 0.0;
  cfg.seed = 19;
  const Dataset d = GenerateImplicitBias(cfg).value();
  EXPECT_NEAR(MeasuredBias(d), 0.0, 0.03);
}

TEST(SyntheticTest, ImplicitProxiesCorrelateWithGroup) {
  SyntheticConfig cfg;
  cfg.num_samples = 10000;
  cfg.bias = 0.30;
  cfg.num_proxies = 3;
  cfg.seed = 23;
  const Dataset d = GenerateImplicitBias(cfg).value();
  const std::vector<double> sens = d.Column(d.sensitive_features()[0]);
  // Proxy columns (0..2) correlate with the group; others do not.
  for (size_t j = 0; j < 3; ++j) {
    EXPECT_GT(std::abs(PearsonCorrelation(sens, d.Column(j))), 0.1)
        << "proxy " << j;
  }
  for (size_t j = 3; j < 8; ++j) {
    EXPECT_LT(std::abs(PearsonCorrelation(sens, d.Column(j))), 0.05)
        << "non-proxy " << j;
  }
}

TEST(SyntheticTest, SocialFeaturesIndependentOfGroup) {
  SyntheticConfig cfg;
  cfg.num_samples = 10000;
  cfg.seed = 29;
  const Dataset d = GenerateSocialBias(cfg).value();
  const std::vector<double> sens = d.Column(d.sensitive_features()[0]);
  // Features correlate with the label only; with the group the
  // correlation is the indirect one through the biased label, bounded by
  // the label signal — but never as strong as an implicit proxy.
  for (size_t j = 0; j < 8; ++j) {
    EXPECT_LT(std::abs(PearsonCorrelation(sens, d.Column(j))), 0.2);
  }
}

TEST(SyntheticTest, DeterministicForSeed) {
  SyntheticConfig cfg;
  cfg.num_samples = 500;
  cfg.seed = 31;
  const Dataset a = GenerateImplicitBias(cfg).value();
  const Dataset b = GenerateImplicitBias(cfg).value();
  for (size_t i = 0; i < a.num_rows(); ++i) {
    EXPECT_EQ(a.Label(i), b.Label(i));
    EXPECT_DOUBLE_EQ(a.Feature(i, 0), b.Feature(i, 0));
  }
}

TEST(SyntheticTest, RejectsBadConfig) {
  SyntheticConfig cfg;
  cfg.num_samples = 5;
  EXPECT_FALSE(GenerateSocialBias(cfg).ok());

  cfg = {};
  cfg.bias = 1.0;
  EXPECT_FALSE(GenerateSocialBias(cfg).ok());

  cfg = {};
  cfg.pr_favored = 0.0;
  EXPECT_FALSE(GenerateImplicitBias(cfg).ok());

  cfg = {};
  cfg.num_proxies = 100;
  EXPECT_FALSE(GenerateImplicitBias(cfg).ok());
}

class SyntheticBiasSweep : public ::testing::TestWithParam<double> {};

TEST_P(SyntheticBiasSweep, ImplicitBiasCalibrationHoldsAcrossLevels) {
  SyntheticConfig cfg;
  cfg.num_samples = 20000;
  cfg.bias = GetParam();
  cfg.seed = 37;
  const Dataset d = GenerateImplicitBias(cfg).value();
  EXPECT_NEAR(MeasuredBias(d), GetParam(), 0.04);
}

INSTANTIATE_TEST_SUITE_P(BiasLevels, SyntheticBiasSweep,
                         ::testing::Values(0.1, 0.2, 0.3, 0.4, 0.5));

}  // namespace
}  // namespace falcc
