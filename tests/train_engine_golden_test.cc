// Golden-equivalence tests of the presorted split engine.
//
// The engine (ml/tree_builder.h) must reproduce the seed trainer's
// models exactly — same split ties, same midpoint thresholds, same node
// order — not just approximately. Three equivalences are asserted per
// case:
//
//  1. the new engine's serialized bytes equal the frozen seed trainer's
//     (ml/reference_trainer.h) serialized bytes, and
//  2. both equal the golden file checked in under tests/golden/ (which
//     pins today's behaviour against future drift in either trainer),
//  3. per-row probabilities of the new model equal the model
//     deserialized from the golden file, bit for bit, on held-out data.
//
// The cases cover weighted samples, duplicate feature values (tied
// thresholds), max_features subsampling, and min-leaf constraints.
//
// Regenerate the golden files after an *intentional* behaviour change
// with: FALCC_REGEN_GOLDENS=1 ./train_engine_golden_test

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "data/feature_columns.h"
#include "datagen/synthetic.h"
#include "ml/adaboost.h"
#include "ml/decision_tree.h"
#include "ml/random_forest.h"
#include "ml/reference_trainer.h"
#include "ml/serialize.h"
#include "ml/tree_builder.h"

namespace falcc {
namespace {

// Quantizes every feature to one decimal so columns are full of
// duplicate values — the regime where threshold scans must skip equal
// neighbours and tie-break identically to the seed.
Dataset Quantize(Dataset data) {
  for (size_t i = 0; i < data.num_rows(); ++i) {
    for (double& v : data.MutableRow(i)) {
      v = std::round(v * 10.0) / 10.0;
    }
  }
  return data;
}

Dataset Implicit(size_t n, uint64_t seed) {
  SyntheticConfig config;
  config.num_samples = n;
  config.seed = seed;
  return GenerateImplicitBias(config).value();
}

Dataset Social(size_t n, uint64_t seed) {
  SyntheticConfig config;
  config.num_samples = n;
  config.seed = seed;
  return GenerateSocialBias(config).value();
}

// Exactly representable non-uniform weights (…, 1.0, 1.25, 1.5, …).
std::vector<double> PatternWeights(size_t n) {
  std::vector<double> weights(n);
  for (size_t i = 0; i < n; ++i) {
    weights[i] = 1.0 + static_cast<double>(i % 7) * 0.25;
  }
  return weights;
}

std::string Bytes(const Classifier& model) {
  std::ostringstream out;
  EXPECT_TRUE(SerializeClassifier(model, &out).ok());
  return out.str();
}

// Compares serialized bytes against tests/golden/<name>.txt, writing the
// file instead when FALCC_REGEN_GOLDENS is set. Returns the golden
// bytes (== `bytes` on success).
std::string CheckGolden(const std::string& name, const std::string& bytes) {
  const std::string path = std::string(FALCC_GOLDEN_DIR) + "/" + name + ".txt";
  if (std::getenv("FALCC_REGEN_GOLDENS") != nullptr) {
    std::ofstream out(path);
    out << bytes;
    EXPECT_TRUE(out.good()) << "cannot write " << path;
    return bytes;
  }
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing golden file " << path
                         << " (run with FALCC_REGEN_GOLDENS=1 to create)";
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(golden.str(), bytes) << "golden mismatch for " << name;
  return golden.str();
}

// Full three-way check: engine bytes == reference bytes == golden file,
// and bit-identical probabilities vs the deserialized golden model on
// `probe`.
void ExpectGoldenEquivalence(const std::string& name,
                             const Classifier& engine_model,
                             const Classifier& reference_model,
                             const Dataset& probe) {
  const std::string engine_bytes = Bytes(engine_model);
  const std::string reference_bytes = Bytes(reference_model);
  EXPECT_EQ(engine_bytes, reference_bytes)
      << name << ": engine diverges from the seed trainer";
  const std::string golden_bytes = CheckGolden(name, reference_bytes);

  std::istringstream in(golden_bytes);
  Result<std::unique_ptr<Classifier>> golden = DeserializeClassifier(&in);
  ASSERT_TRUE(golden.ok()) << golden.status().message();
  for (size_t i = 0; i < probe.num_rows(); ++i) {
    const double expected = golden.value()->PredictProba(probe.Row(i));
    ASSERT_EQ(engine_model.PredictProba(probe.Row(i)), expected)
        << name << ": probability diverges at probe row " << i;
  }
  const std::vector<int> engine_preds = PredictAll(engine_model, probe);
  const std::vector<int> golden_preds = PredictAll(*golden.value(), probe);
  EXPECT_EQ(engine_preds, golden_preds) << name;
}

TEST(TrainEngineGolden, TreeGiniWithDuplicateValues) {
  const Dataset train = Quantize(Implicit(600, 21));
  const Dataset probe = Quantize(Implicit(300, 22));
  DecisionTreeOptions opt;
  opt.max_depth = 7;
  DecisionTree tree(opt);
  ASSERT_TRUE(tree.Fit(train).ok());
  Result<DecisionTree> reference = reference::TrainTree(train, {}, opt);
  ASSERT_TRUE(reference.ok());
  ExpectGoldenEquivalence("tree_gini_duplicates", tree, reference.value(),
                          probe);
}

TEST(TrainEngineGolden, TreeEntropyWeighted) {
  const Dataset train = Social(500, 31);
  const Dataset probe = Social(250, 32);
  const std::vector<double> weights = PatternWeights(train.num_rows());
  DecisionTreeOptions opt;
  opt.max_depth = 6;
  opt.criterion = SplitCriterion::kEntropy;
  DecisionTree tree(opt);
  ASSERT_TRUE(tree.Fit(train, weights).ok());
  Result<DecisionTree> reference = reference::TrainTree(train, weights, opt);
  ASSERT_TRUE(reference.ok());
  ExpectGoldenEquivalence("tree_entropy_weighted", tree, reference.value(),
                          probe);
}

TEST(TrainEngineGolden, TreeMaxFeaturesSubsampling) {
  const Dataset train = Implicit(400, 41);
  const Dataset probe = Implicit(200, 42);
  DecisionTreeOptions opt;
  opt.max_depth = 5;
  opt.max_features = 3;
  opt.seed = 11;
  DecisionTree tree(opt);
  ASSERT_TRUE(tree.Fit(train).ok());
  Result<DecisionTree> reference = reference::TrainTree(train, {}, opt);
  ASSERT_TRUE(reference.ok());
  ExpectGoldenEquivalence("tree_max_features", tree, reference.value(),
                          probe);
}

TEST(TrainEngineGolden, TreeMinLeafConstraints) {
  const Dataset train = Quantize(Social(400, 51));
  const Dataset probe = Quantize(Social(200, 52));
  DecisionTreeOptions opt;
  opt.max_depth = 8;
  opt.min_samples_leaf = 20;
  opt.min_samples_split = 10;
  DecisionTree tree(opt);
  ASSERT_TRUE(tree.Fit(train).ok());
  Result<DecisionTree> reference = reference::TrainTree(train, {}, opt);
  ASSERT_TRUE(reference.ok());
  ExpectGoldenEquivalence("tree_min_leaf", tree, reference.value(), probe);
}

TEST(TrainEngineGolden, AdaBoostWeightedRounds) {
  const Dataset train = Quantize(Implicit(500, 61));
  const Dataset probe = Quantize(Implicit(250, 62));
  const std::vector<double> weights = PatternWeights(train.num_rows());
  AdaBoostOptions opt;
  opt.num_estimators = 10;
  opt.base.max_depth = 3;
  AdaBoost boost(opt);
  ASSERT_TRUE(boost.Fit(train, weights).ok());
  Result<AdaBoost> reference = reference::TrainAdaBoost(train, weights, opt);
  ASSERT_TRUE(reference.ok());
  ASSERT_EQ(boost.num_fitted(), reference.value().num_fitted());
  ExpectGoldenEquivalence("adaboost_weighted", boost, reference.value(),
                          probe);
}

TEST(TrainEngineGolden, RandomForestBootstrap) {
  const Dataset train = Social(400, 71);
  const Dataset probe = Social(200, 72);
  RandomForestOptions opt;
  opt.num_trees = 10;
  opt.base.max_depth = 5;
  opt.seed = 7;
  RandomForest forest(opt);
  ASSERT_TRUE(forest.Fit(train, {}).ok());
  Result<RandomForest> reference = reference::TrainRandomForest(train, {}, opt);
  ASSERT_TRUE(reference.ok());
  ExpectGoldenEquivalence("random_forest_bootstrap", forest,
                          reference.value(), probe);
}

// The column-cache Fit overloads must match the Dataset overloads
// exactly: one shared cache and builder across fits changes nothing.
TEST(TrainEngineGolden, SharedColumnsAndBuilderAreTransparent) {
  const Dataset train = Quantize(Implicit(400, 81));
  const FeatureColumns columns(train);
  const std::vector<double> weights = PatternWeights(train.num_rows());

  DecisionTreeOptions opt;
  opt.max_depth = 6;
  TreeBuilder shared;
  DecisionTree from_data(opt);
  DecisionTree from_columns(opt);
  ASSERT_TRUE(from_data.Fit(train, weights).ok());
  ASSERT_TRUE(from_columns.Fit(columns, weights, &shared).ok());
  EXPECT_EQ(Bytes(from_data), Bytes(from_columns));

  AdaBoostOptions boost_opt;
  boost_opt.num_estimators = 5;
  boost_opt.base.max_depth = 3;
  AdaBoost boost_data(boost_opt);
  AdaBoost boost_columns(boost_opt);
  ASSERT_TRUE(boost_data.Fit(train, weights).ok());
  ASSERT_TRUE(boost_columns.Fit(columns, weights).ok());
  EXPECT_EQ(Bytes(boost_data), Bytes(boost_columns));
}

}  // namespace
}  // namespace falcc
