#include "data/feature_columns.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "datagen/synthetic.h"

namespace falcc {
namespace {

Dataset MakeData(size_t n, uint64_t seed) {
  SyntheticConfig config;
  config.num_samples = n;
  config.seed = seed;
  return GenerateImplicitBias(config).value();
}

TEST(FeatureColumnsTest, ShapeMatchesDataset) {
  const Dataset data = MakeData(200, 1);
  const FeatureColumns columns(data);
  EXPECT_EQ(columns.num_rows(), data.num_rows());
  EXPECT_EQ(columns.num_features(), data.num_features());
  EXPECT_EQ(&columns.data(), &data);
  for (size_t f = 0; f < columns.num_features(); ++f) {
    EXPECT_EQ(columns.SortedRows(f).size(), data.num_rows());
    EXPECT_EQ(columns.SortedValues(f).size(), data.num_rows());
  }
}

TEST(FeatureColumnsTest, ColumnsAreSortedPermutations) {
  const Dataset data = MakeData(300, 2);
  const FeatureColumns columns(data);
  for (size_t f = 0; f < columns.num_features(); ++f) {
    const auto rows = columns.SortedRows(f);
    const auto values = columns.SortedValues(f);

    // Values ascend and agree with the dataset at their row.
    for (size_t i = 0; i < rows.size(); ++i) {
      EXPECT_EQ(values[i], data.Feature(rows[i], f));
      if (i > 0) EXPECT_LE(values[i - 1], values[i]);
    }

    // The row list is a permutation of 0..n-1.
    std::vector<uint32_t> sorted_rows(rows.begin(), rows.end());
    std::sort(sorted_rows.begin(), sorted_rows.end());
    for (size_t i = 0; i < sorted_rows.size(); ++i) {
      EXPECT_EQ(sorted_rows[i], static_cast<uint32_t>(i));
    }
  }
}

TEST(FeatureColumnsTest, TiesKeepRowOrder) {
  // Column with heavy duplication: the sort must be stable (value, row).
  const std::vector<double> features = {
      1.0, 0.5, 1.0, 0.5, 1.0, 0.5, 0.25, 1.0,
  };
  std::vector<int> labels(features.size(), 0);
  const Dataset data =
      Dataset::Create({"x"}, std::vector<double>(features), 1,
                      std::move(labels), {})
          .value();
  const FeatureColumns columns(data);
  const auto rows = columns.SortedRows(0);
  const std::vector<uint32_t> expected = {6, 1, 3, 5, 0, 2, 4, 7};
  ASSERT_EQ(rows.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(rows[i], expected[i]) << "position " << i;
  }
}

}  // namespace
}  // namespace falcc
