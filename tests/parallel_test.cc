#include "util/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace falcc {
namespace {

// Restores the configured parallelism after each test so test order
// cannot leak pool state.
class ParallelTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = Parallelism(); }
  void TearDown() override { SetParallelism(previous_); }
  size_t previous_ = 1;
};

TEST_F(ParallelTest, ParallelismIsAtLeastOne) {
  EXPECT_GE(Parallelism(), 1u);
  SetParallelism(0);  // clamped
  EXPECT_EQ(Parallelism(), 1u);
  SetParallelism(3);
  EXPECT_EQ(Parallelism(), 3u);
}

TEST_F(ParallelTest, NumChunksMatchesGrain) {
  EXPECT_EQ(NumChunks(0, 0, 4), 0u);
  EXPECT_EQ(NumChunks(5, 5, 4), 0u);
  EXPECT_EQ(NumChunks(0, 1, 4), 1u);
  EXPECT_EQ(NumChunks(0, 8, 4), 2u);
  EXPECT_EQ(NumChunks(0, 9, 4), 3u);
  EXPECT_EQ(NumChunks(3, 9, 4), 2u);
  EXPECT_EQ(NumChunks(0, 9, 0), 9u);  // grain clamped to 1
}

TEST_F(ParallelTest, CoversEveryIndexExactlyOnce) {
  for (size_t threads : {1u, 2u, 4u}) {
    SetParallelism(threads);
    for (size_t n : {0u, 1u, 7u, 64u, 1000u}) {
      std::vector<std::atomic<int>> hits(n);
      for (auto& h : hits) h = 0;
      ParallelFor(0, n, 7, [&](size_t /*chunk*/, size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) hits[i]++;
      });
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[i], 1) << "n=" << n << " threads=" << threads;
      }
    }
  }
}

TEST_F(ParallelTest, ChunkBoundsRespectGrain) {
  SetParallelism(4);
  const size_t n = 103;
  const size_t grain = 10;
  std::vector<std::pair<size_t, size_t>> bounds(NumChunks(0, n, grain));
  ParallelFor(0, n, grain, [&](size_t chunk, size_t lo, size_t hi) {
    bounds[chunk] = {lo, hi};
  });
  for (size_t c = 0; c < bounds.size(); ++c) {
    EXPECT_EQ(bounds[c].first, c * grain);
    EXPECT_EQ(bounds[c].second, std::min((c + 1) * grain, n));
  }
}

TEST_F(ParallelTest, ChunkingIsIndependentOfThreadCount) {
  // The determinism contract: per-chunk partial sums combined in chunk
  // order give bit-identical floating-point results at any parallelism.
  const size_t n = 5000;
  std::vector<double> values(n);
  for (size_t i = 0; i < n; ++i) values[i] = 1.0 / (1.0 + i);
  auto chunked_sum = [&]() {
    const size_t grain = 64;
    std::vector<double> partial(NumChunks(0, n, grain), 0.0);
    ParallelFor(0, n, grain, [&](size_t chunk, size_t lo, size_t hi) {
      double local = 0.0;
      for (size_t i = lo; i < hi; ++i) local += values[i];
      partial[chunk] = local;
    });
    double total = 0.0;
    for (double p : partial) total += p;
    return total;
  };
  SetParallelism(1);
  const double serial = chunked_sum();
  for (size_t threads : {2u, 3u, 8u}) {
    SetParallelism(threads);
    EXPECT_EQ(serial, chunked_sum()) << "threads=" << threads;
  }
}

TEST_F(ParallelTest, ParallelMapPreservesOrder) {
  SetParallelism(4);
  const std::vector<int> out =
      ParallelMap<int>(100, 3, [](size_t i) { return static_cast<int>(i * i); });
  ASSERT_EQ(out.size(), 100u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i * i));
  }
}

TEST_F(ParallelTest, PropagatesExceptions) {
  for (size_t threads : {1u, 4u}) {
    SetParallelism(threads);
    EXPECT_THROW(
        ParallelFor(0, 100, 1,
                    [](size_t /*chunk*/, size_t lo, size_t /*hi*/) {
                      if (lo == 37) throw std::runtime_error("boom");
                    }),
        std::runtime_error);
    // The pool survives a throwing loop.
    std::atomic<size_t> done{0};
    ParallelFor(0, 10, 1,
                [&](size_t, size_t, size_t) { done++; });
    EXPECT_EQ(done, 10u);
  }
}

TEST_F(ParallelTest, RethrowsLowestChunkException) {
  SetParallelism(4);
  try {
    ParallelFor(0, 64, 1, [](size_t chunk, size_t, size_t) {
      if (chunk == 5 || chunk == 41) {
        throw std::runtime_error("chunk " + std::to_string(chunk));
      }
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "chunk 5");
  }
}

TEST_F(ParallelTest, NestedCallsRunInline) {
  SetParallelism(4);
  std::atomic<size_t> total{0};
  ParallelFor(0, 8, 1, [&](size_t, size_t, size_t) {
    // A nested loop inside a pool task must not deadlock on the pool.
    ParallelFor(0, 100, 10,
                [&](size_t, size_t lo, size_t hi) { total += hi - lo; });
  });
  EXPECT_EQ(total, 800u);
}

TEST_F(ParallelTest, PoolRestartsAfterShutdown) {
  SetParallelism(4);
  std::atomic<size_t> count{0};
  ParallelFor(0, 50, 1, [&](size_t, size_t, size_t) { count++; });
  EXPECT_EQ(count, 50u);

  ShutdownParallelPool();  // next loop restarts the workers lazily
  count = 0;
  ParallelFor(0, 50, 1, [&](size_t, size_t, size_t) { count++; });
  EXPECT_EQ(count, 50u);

  // Resizing mid-session also stops and lazily restarts the pool.
  SetParallelism(2);
  count = 0;
  ParallelFor(0, 50, 1, [&](size_t, size_t, size_t) { count++; });
  EXPECT_EQ(count, 50u);
}

TEST_F(ParallelTest, ScopedCapForcesInlineExecution) {
  // The shard-worker oversubscription guard: with a cap of 1, every
  // chunk runs on the calling thread even though the pool has workers.
  SetParallelism(4);
  std::set<std::thread::id> cap_threads;
  {
    ScopedParallelismCap cap(1);
    EXPECT_EQ(CurrentParallelismCap(), 1u);
    ParallelFor(0, 64, 1, [&](size_t, size_t, size_t) {
      cap_threads.insert(std::this_thread::get_id());
    });
  }
  EXPECT_EQ(cap_threads.size(), 1u);
  EXPECT_EQ(*cap_threads.begin(), std::this_thread::get_id());
  EXPECT_EQ(CurrentParallelismCap(), SIZE_MAX);  // restored on scope exit
}

TEST_F(ParallelTest, ScopedCapNestsByMinimum) {
  SetParallelism(8);
  ScopedParallelismCap outer(2);
  EXPECT_EQ(CurrentParallelismCap(), 2u);
  {
    ScopedParallelismCap wider(6);  // cannot widen an enclosing cap
    EXPECT_EQ(CurrentParallelismCap(), 2u);
    {
      ScopedParallelismCap tighter(1);
      EXPECT_EQ(CurrentParallelismCap(), 1u);
    }
    EXPECT_EQ(CurrentParallelismCap(), 2u);
  }
  EXPECT_EQ(CurrentParallelismCap(), 2u);
}

TEST_F(ParallelTest, ScopedCapDoesNotChangeChunking) {
  // Capped and uncapped runs see identical chunk decomposition, so
  // chunk-ordered reductions stay bit-identical (the determinism
  // contract the sharded engine relies on).
  SetParallelism(4);
  const size_t n = 1000;
  const size_t grain = 32;
  auto bounds = [&]() {
    std::vector<std::pair<size_t, size_t>> b(NumChunks(0, n, grain));
    ParallelFor(0, n, grain,
                [&](size_t chunk, size_t lo, size_t hi) { b[chunk] = {lo, hi}; });
    return b;
  };
  const auto uncapped = bounds();
  ScopedParallelismCap cap(1);
  EXPECT_EQ(bounds(), uncapped);
}

TEST_F(ParallelTest, ScopedCapBoundsWorkerFanOut) {
  // A cap of 2 admits at most the caller plus one pool worker.
  SetParallelism(4);
  ScopedParallelismCap cap(2);
  std::mutex mu;
  std::set<std::thread::id> threads;
  ParallelFor(0, 256, 1, [&](size_t, size_t, size_t) {
    std::lock_guard<std::mutex> lock(mu);
    threads.insert(std::this_thread::get_id());
  });
  EXPECT_LE(threads.size(), 2u);
}

TEST_F(ParallelTest, ManyBackToBackLoops) {
  // Stresses region handoff: stragglers from loop i must never corrupt
  // loop i+1 (shared-ownership regression guard).
  SetParallelism(4);
  for (size_t round = 0; round < 200; ++round) {
    std::vector<size_t> out(64, 0);
    ParallelFor(0, out.size(), 1,
                [&](size_t, size_t lo, size_t hi) {
                  for (size_t i = lo; i < hi; ++i) out[i] = i + round;
                });
    for (size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out[i], i + round) << "round=" << round;
    }
  }
}

}  // namespace
}  // namespace falcc
