#include "serve/batch_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace falcc::serve {
namespace {

constexpr size_t kWidth = 3;

std::vector<double> Sample(double v) { return {v, v + 1.0, v + 2.0}; }

/// Drains every queued batch on the caller's thread, completing each so
/// tickets resolve; returns the total sample count handed over.
size_t DrainAndComplete(BatchQueue* queue) {
  queue->Stop();
  size_t total = 0;
  while (std::shared_ptr<MicroBatch> batch = queue->NextBatch()) {
    EXPECT_EQ(batch->features.size(), batch->num_samples * kWidth);
    EXPECT_EQ(batch->submitted.size(), batch->num_samples);
    total += batch->num_samples;
    batch->Complete(Status::OK(),
                    std::vector<SampleDecision>(batch->num_samples));
  }
  return total;
}

TEST(BatchQueueTest, RejectsAtMaxPendingSingleThread) {
  BatchQueueOptions options;
  options.max_batch = 4;
  options.max_pending = 6;
  options.max_delay_seconds = 3600.0;  // no time-based flushes
  BatchQueue queue(options);

  std::vector<Ticket> accepted;
  size_t rejected = 0;
  for (size_t i = 0; i < 10; ++i) {
    Result<Ticket> ticket = queue.Submit(Sample(static_cast<double>(i)));
    if (ticket.ok()) {
      accepted.push_back(ticket.value());
    } else {
      EXPECT_EQ(ticket.status().code(), StatusCode::kUnavailable);
      ++rejected;
    }
  }
  EXPECT_EQ(accepted.size(), 6u);
  EXPECT_EQ(rejected, 4u);

  EXPECT_EQ(DrainAndComplete(&queue), 6u);
  for (const Ticket& ticket : accepted) {
    EXPECT_TRUE(ticket.Wait().ok());
  }
}

// The max_pending rejection path under concurrent submitters: exactly
// max_pending submissions succeed, every accepted ticket resolves after
// the drain (no ticket leaks into a batch that never completes), and
// the rejected ones fail with kUnavailable without corrupting the
// queue's accounting.
TEST(BatchQueueTest, ConcurrentSubmittersRespectMaxPending) {
  BatchQueueOptions options;
  options.max_batch = 8;
  options.max_pending = 30;
  options.max_delay_seconds = 3600.0;
  BatchQueue queue(options);

  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 16;  // 128 attempts for 30 slots
  std::atomic<size_t> accepted_count{0};
  std::atomic<size_t> rejected_count{0};
  std::vector<std::vector<Ticket>> accepted(kThreads);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        Result<Ticket> ticket =
            queue.Submit(Sample(static_cast<double>(t * kPerThread + i)));
        if (ticket.ok()) {
          EXPECT_TRUE(ticket.value().valid());
          accepted[t].push_back(ticket.value());
          accepted_count.fetch_add(1);
        } else {
          EXPECT_EQ(ticket.status().code(), StatusCode::kUnavailable);
          rejected_count.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(accepted_count.load(), options.max_pending);
  EXPECT_EQ(rejected_count.load(), kThreads * kPerThread - options.max_pending);

  // Every accepted sample is in exactly one queued batch.
  EXPECT_EQ(DrainAndComplete(&queue), options.max_pending);

  // Every accepted ticket resolves (its batch was completed above).
  for (const auto& per_thread : accepted) {
    for (const Ticket& ticket : per_thread) {
      EXPECT_TRUE(ticket.Wait().ok());
    }
  }
}

TEST(BatchQueueTest, SubmitWorksAgainInFreshQueueAfterDrain) {
  // A drained-and-stopped queue stays rejecting; a fresh queue accepts
  // again — callers recover by constructing a new engine/queue.
  BatchQueueOptions options;
  options.max_batch = 2;
  options.max_pending = 4;
  options.max_delay_seconds = 3600.0;
  {
    BatchQueue queue(options);
    ASSERT_TRUE(queue.Submit(Sample(0.0)).ok());
    EXPECT_EQ(DrainAndComplete(&queue), 1u);
    Result<Ticket> after = queue.Submit(Sample(1.0));
    ASSERT_FALSE(after.ok());
    EXPECT_EQ(after.status().code(), StatusCode::kUnavailable);
  }
  BatchQueue fresh(options);
  EXPECT_TRUE(fresh.Submit(Sample(2.0)).ok());
  EXPECT_EQ(DrainAndComplete(&fresh), 1u);
}

}  // namespace
}  // namespace falcc::serve
