#include "data/csv_dataset.h"

#include <gtest/gtest.h>

#include "datagen/synthetic.h"

namespace falcc {
namespace {

CsvTable MakeTable() {
  CsvTable table;
  table.header = {"f0", "sex", "label"};
  table.rows = {
      {1.5, 0.0, 1.0},
      {2.5, 1.0, 0.0},
      {3.5, 0.0, 1.0},
  };
  return table;
}

TEST(CsvDatasetTest, ConvertsTable) {
  const Dataset d =
      DatasetFromCsv(MakeTable(), "label", {"sex"}).value();
  EXPECT_EQ(d.num_rows(), 3u);
  EXPECT_EQ(d.num_features(), 2u);
  EXPECT_EQ(d.feature_names(), (std::vector<std::string>{"f0", "sex"}));
  EXPECT_EQ(d.sensitive_features(), (std::vector<size_t>{1}));
  EXPECT_EQ(d.Label(0), 1);
  EXPECT_DOUBLE_EQ(d.Feature(1, 0), 2.5);
}

TEST(CsvDatasetTest, LabelColumnAnywhere) {
  CsvTable table;
  table.header = {"label", "f0"};
  table.rows = {{1.0, 9.0}};
  const Dataset d = DatasetFromCsv(table, "label", {}).value();
  EXPECT_EQ(d.num_features(), 1u);
  EXPECT_DOUBLE_EQ(d.Feature(0, 0), 9.0);
}

TEST(CsvDatasetTest, MissingLabelColumnFails) {
  EXPECT_FALSE(DatasetFromCsv(MakeTable(), "y", {"sex"}).ok());
}

TEST(CsvDatasetTest, MissingSensitiveColumnFails) {
  EXPECT_FALSE(DatasetFromCsv(MakeTable(), "label", {"race"}).ok());
}

TEST(CsvDatasetTest, SensitiveLabelFails) {
  EXPECT_FALSE(DatasetFromCsv(MakeTable(), "label", {"label"}).ok());
}

TEST(CsvDatasetTest, NonBinaryLabelFails) {
  CsvTable table = MakeTable();
  table.rows[0][2] = 2.0;
  EXPECT_FALSE(DatasetFromCsv(table, "label", {"sex"}).ok());
}

TEST(CsvDatasetTest, RoundTripThroughCsv) {
  SyntheticConfig cfg;
  cfg.num_samples = 100;
  cfg.seed = 9;
  const Dataset original = GenerateSocialBias(cfg).value();
  const CsvTable table = DatasetToCsv(original, "label");
  const Dataset back =
      DatasetFromCsv(table, "label", {"sens"}).value();
  ASSERT_EQ(back.num_rows(), original.num_rows());
  ASSERT_EQ(back.num_features(), original.num_features());
  EXPECT_EQ(back.sensitive_features(), original.sensitive_features());
  for (size_t i = 0; i < back.num_rows(); ++i) {
    EXPECT_EQ(back.Label(i), original.Label(i));
    for (size_t j = 0; j < back.num_features(); ++j) {
      EXPECT_DOUBLE_EQ(back.Feature(i, j), original.Feature(i, j));
    }
  }
}

TEST(CsvDatasetTest, FileRoundTrip) {
  SyntheticConfig cfg;
  cfg.num_samples = 50;
  cfg.seed = 10;
  const Dataset original = GenerateImplicitBias(cfg).value();
  const std::string path = ::testing::TempDir() + "/falcc_data.csv";
  ASSERT_TRUE(WriteDatasetCsv(path, original, "label").ok());
  Result<Dataset> back = ReadDatasetCsv(path, "label", {"sens"});
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().num_rows(), original.num_rows());
  std::remove(path.c_str());
}

// --- Parser edge cases --------------------------------------------------

TEST(CsvEdgeCaseTest, CrlfLineEndings) {
  const Result<CsvTable> t = ParseCsv("a,b,label\r\n1,2,0\r\n3,4,1\r\n");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t.value().header, (std::vector<std::string>{"a", "b", "label"}));
  ASSERT_EQ(t.value().rows.size(), 2u);
  EXPECT_DOUBLE_EQ(t.value().rows[1][1], 4.0);
  const Result<Dataset> d = DatasetFromCsv(t.value(), "label", {});
  EXPECT_TRUE(d.ok()) << d.status().ToString();
}

TEST(CsvEdgeCaseTest, TrailingCommaIsDiagnosedNotMisparsed) {
  // A trailing comma means a trailing empty cell; it must surface as a
  // located error (empty cells are not silently zero).
  const Result<CsvTable> t = ParseCsv("a,b\n1,\n");
  ASSERT_FALSE(t.ok());
  EXPECT_NE(t.status().message().find("line 2"), std::string::npos)
      << t.status().ToString();
  EXPECT_NE(t.status().message().find("column 2"), std::string::npos)
      << t.status().ToString();

  // On the header it creates an unnamed column — rejected immediately
  // with the column position (found by the fuzzer: a lone empty header
  // name serializes to a blank line, which does not re-parse).
  const Result<CsvTable> h = ParseCsv("a,b,\n1,2\n");
  ASSERT_FALSE(h.ok());
  EXPECT_NE(h.status().message().find("column 3"), std::string::npos)
      << h.status().ToString();
  EXPECT_NE(h.status().message().find("empty header name"), std::string::npos)
      << h.status().ToString();
}

TEST(CsvEdgeCaseTest, QuotedFieldsWithSeparators) {
  // Quoted header names may contain the separator and escaped quotes;
  // values parse normally around them.
  const Result<CsvTable> t =
      ParseCsv("\"age, years\",\"the \"\"label\"\"\"\n17,1\n");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t.value().header,
            (std::vector<std::string>{"age, years", "the \"label\""}));
  ASSERT_EQ(t.value().rows.size(), 1u);
  EXPECT_DOUBLE_EQ(t.value().rows[0][0], 17.0);

  // And ToCsv re-quotes such names so the round trip is stable.
  const Result<CsvTable> round = ParseCsv(ToCsv(t.value()));
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_EQ(round.value().header, t.value().header);

  // Quoted numeric cells are also fine.
  const Result<CsvTable> q = ParseCsv("a,b\n\"1.5\",2\n");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_DOUBLE_EQ(q.value().rows[0][0], 1.5);
}

TEST(CsvEdgeCaseTest, EmptyFileFails) {
  const Result<CsvTable> t = ParseCsv("");
  ASSERT_FALSE(t.ok());
  EXPECT_FALSE(t.status().message().empty());
  EXPECT_FALSE(ParseCsv("\n\r\n\n").ok());  // only blank lines
}

TEST(CsvEdgeCaseTest, HeaderOnlyFailsDatasetConversion) {
  const Result<CsvTable> t = ParseCsv("a,b,label\n");
  ASSERT_TRUE(t.ok()) << t.status().ToString();  // a table, just empty
  EXPECT_TRUE(t.value().rows.empty());
  const Result<Dataset> d = DatasetFromCsv(t.value(), "label", {});
  ASSERT_FALSE(d.ok());
  EXPECT_NE(d.status().message().find("no data rows"), std::string::npos)
      << d.status().ToString();
}

TEST(CsvEdgeCaseTest, NonNumericCellCarriesRowAndColumn) {
  const Result<CsvTable> t = ParseCsv("a,b,label\n1,2,0\n3,oops,1\n");
  ASSERT_FALSE(t.ok());
  const std::string& msg = t.status().message();
  EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("column 2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'b'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("oops"), std::string::npos) << msg;
}

TEST(CsvEdgeCaseTest, NonFiniteCellsAreRejected) {
  // strtod accepts "nan" and "inf", but a dataset with them poisons
  // every downstream statistic — the parser rejects them with location.
  for (const char* bad : {"nan", "inf", "-inf", "1e999"}) {
    const Result<CsvTable> t =
        ParseCsv(std::string("a,b\n1,") + bad + "\n");
    ASSERT_FALSE(t.ok()) << bad;
    EXPECT_NE(t.status().message().find("column 2"), std::string::npos)
        << t.status().ToString();
  }
}

TEST(CsvEdgeCaseTest, BadLabelCarriesRowDiagnostics) {
  CsvTable table = MakeTable();
  table.rows[1][2] = 3.0;
  const Result<Dataset> d = DatasetFromCsv(table, "label", {"sex"});
  ASSERT_FALSE(d.ok());
  const std::string& msg = d.status().message();
  EXPECT_NE(msg.find("row 2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("label"), std::string::npos) << msg;
}

}  // namespace
}  // namespace falcc
