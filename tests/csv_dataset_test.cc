#include "data/csv_dataset.h"

#include <gtest/gtest.h>

#include "datagen/synthetic.h"

namespace falcc {
namespace {

CsvTable MakeTable() {
  CsvTable table;
  table.header = {"f0", "sex", "label"};
  table.rows = {
      {1.5, 0.0, 1.0},
      {2.5, 1.0, 0.0},
      {3.5, 0.0, 1.0},
  };
  return table;
}

TEST(CsvDatasetTest, ConvertsTable) {
  const Dataset d =
      DatasetFromCsv(MakeTable(), "label", {"sex"}).value();
  EXPECT_EQ(d.num_rows(), 3u);
  EXPECT_EQ(d.num_features(), 2u);
  EXPECT_EQ(d.feature_names(), (std::vector<std::string>{"f0", "sex"}));
  EXPECT_EQ(d.sensitive_features(), (std::vector<size_t>{1}));
  EXPECT_EQ(d.Label(0), 1);
  EXPECT_DOUBLE_EQ(d.Feature(1, 0), 2.5);
}

TEST(CsvDatasetTest, LabelColumnAnywhere) {
  CsvTable table;
  table.header = {"label", "f0"};
  table.rows = {{1.0, 9.0}};
  const Dataset d = DatasetFromCsv(table, "label", {}).value();
  EXPECT_EQ(d.num_features(), 1u);
  EXPECT_DOUBLE_EQ(d.Feature(0, 0), 9.0);
}

TEST(CsvDatasetTest, MissingLabelColumnFails) {
  EXPECT_FALSE(DatasetFromCsv(MakeTable(), "y", {"sex"}).ok());
}

TEST(CsvDatasetTest, MissingSensitiveColumnFails) {
  EXPECT_FALSE(DatasetFromCsv(MakeTable(), "label", {"race"}).ok());
}

TEST(CsvDatasetTest, SensitiveLabelFails) {
  EXPECT_FALSE(DatasetFromCsv(MakeTable(), "label", {"label"}).ok());
}

TEST(CsvDatasetTest, NonBinaryLabelFails) {
  CsvTable table = MakeTable();
  table.rows[0][2] = 2.0;
  EXPECT_FALSE(DatasetFromCsv(table, "label", {"sex"}).ok());
}

TEST(CsvDatasetTest, RoundTripThroughCsv) {
  SyntheticConfig cfg;
  cfg.num_samples = 100;
  cfg.seed = 9;
  const Dataset original = GenerateSocialBias(cfg).value();
  const CsvTable table = DatasetToCsv(original, "label");
  const Dataset back =
      DatasetFromCsv(table, "label", {"sens"}).value();
  ASSERT_EQ(back.num_rows(), original.num_rows());
  ASSERT_EQ(back.num_features(), original.num_features());
  EXPECT_EQ(back.sensitive_features(), original.sensitive_features());
  for (size_t i = 0; i < back.num_rows(); ++i) {
    EXPECT_EQ(back.Label(i), original.Label(i));
    for (size_t j = 0; j < back.num_features(); ++j) {
      EXPECT_DOUBLE_EQ(back.Feature(i, j), original.Feature(i, j));
    }
  }
}

TEST(CsvDatasetTest, FileRoundTrip) {
  SyntheticConfig cfg;
  cfg.num_samples = 50;
  cfg.seed = 10;
  const Dataset original = GenerateImplicitBias(cfg).value();
  const std::string path = ::testing::TempDir() + "/falcc_data.csv";
  ASSERT_TRUE(WriteDatasetCsv(path, original, "label").ok());
  Result<Dataset> back = ReadDatasetCsv(path, "label", {"sens"});
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().num_rows(), original.num_rows());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace falcc
