#include "serve/engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "core/falcc.h"
#include "data/split.h"
#include "datagen/synthetic.h"
#include "serve/batch_queue.h"
#include "serve/metrics.h"

namespace falcc {
namespace {

TrainValTest MakeSplits(uint64_t seed = 11, size_t n = 2000) {
  SyntheticConfig cfg;
  cfg.num_samples = n;
  cfg.seed = 7;
  const Dataset d = GenerateImplicitBias(cfg).value();
  return SplitDatasetDefault(d, seed).value();
}

FalccOptions FastOptions() {
  FalccOptions opt;
  opt.seed = 42;
  opt.trainer.estimator_grid = {5};
  opt.trainer.depth_grid = {1, 4};
  opt.trainer.pool_size = 3;
  return opt;
}

FalccModel TrainSmallModel() {
  const TrainValTest s = MakeSplits();
  return FalccModel::Train(s.train, s.validation, FastOptions()).value();
}

/// Flattens the feature matrix of `data` into a row-major vector.
std::vector<double> Flatten(const Dataset& data) {
  std::vector<double> flat;
  flat.reserve(data.num_rows() * data.num_features());
  for (size_t i = 0; i < data.num_rows(); ++i) {
    const auto row = data.Row(i);
    flat.insert(flat.end(), row.begin(), row.end());
  }
  return flat;
}

// Batch ≡ sequential bit-identity now lives in invariants_test
// (InvariantsTest.BatchMatchesSequentialClassify) via the shared
// CheckBatchMatchesSequential helper.

TEST(ClassifyBatchTest, RejectsMalformedInput) {
  const FalccModel model = TrainSmallModel();
  const size_t width = model.num_features();
  std::vector<double> good(width * 2, 0.5);

  {  // Wrong declared width.
    ClassifyRequest request;
    request.features = good;
    request.num_features = width + 1;
    const Result<ClassifyResponse> r = model.ClassifyBatch(request);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  {  // Length not divisible by the width.
    ClassifyRequest request;
    request.features = std::span<const double>(good).subspan(0, width + 1);
    request.num_features = width;
    const Result<ClassifyResponse> r = model.ClassifyBatch(request);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  {  // NaN and Inf are rejected with a sample/column diagnostic.
    for (const double bad :
         {std::numeric_limits<double>::quiet_NaN(),
          std::numeric_limits<double>::infinity(),
          -std::numeric_limits<double>::infinity()}) {
      std::vector<double> poisoned = good;
      poisoned[width + 1] = bad;
      ClassifyRequest request;
      request.features = poisoned;
      request.num_features = width;
      const Result<ClassifyResponse> r = model.ClassifyBatch(request);
      ASSERT_FALSE(r.ok());
      EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
      EXPECT_NE(r.status().message().find("sample 1"), std::string::npos);
      EXPECT_NE(r.status().message().find("column 1"), std::string::npos);
    }
  }
  {  // Empty request is valid and returns no decisions.
    ClassifyRequest request;
    request.num_features = width;
    const Result<ClassifyResponse> r = model.ClassifyBatch(request);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.value().decisions.empty());
  }
}

TEST(ClassifyBatchTest, GroupOfRejectsMalformedInput) {
  const FalccModel model = TrainSmallModel();
  const std::vector<double> short_sample(model.num_features() - 1, 0.0);
  const Result<size_t> wrong_width = model.GroupOf(short_sample);
  ASSERT_FALSE(wrong_width.ok());
  EXPECT_EQ(wrong_width.status().code(), StatusCode::kInvalidArgument);

  std::vector<double> nan_sample(model.num_features(), 0.0);
  nan_sample[0] = std::nan("");
  const Result<size_t> with_nan = model.GroupOf(nan_sample);
  ASSERT_FALSE(with_nan.ok());
  EXPECT_EQ(with_nan.status().code(), StatusCode::kInvalidArgument);
}

TEST(ServeEngineTest, UnavailableBeforeFirstLoad) {
  serve::FalccEngine engine;
  const std::vector<double> sample(9, 0.0);

  const Result<SampleDecision> classified = engine.Classify(sample);
  ASSERT_FALSE(classified.ok());
  EXPECT_EQ(classified.status().code(), StatusCode::kUnavailable);

  ClassifyRequest request;
  request.features = sample;
  request.num_features = sample.size();
  const Result<ClassifyResponse> batch = engine.ClassifyBatch(request);
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), StatusCode::kUnavailable);

  EXPECT_EQ(engine.snapshot(), nullptr);
  EXPECT_EQ(engine.snapshot_version(), 0u);
  EXPECT_EQ(engine.GetMetrics().errors, 2u);
}

TEST(ServeEngineTest, MicroBatchedMatchesSequential) {
  const TrainValTest s = MakeSplits();
  serve::FalccEngineOptions options;
  options.queue.max_batch = 32;
  serve::FalccEngine engine(options);
  engine.Install(
      FalccModel::Train(s.train, s.validation, FastOptions()).value());
  EXPECT_EQ(engine.snapshot_version(), 1u);

  const std::shared_ptr<const FalccModel> model = engine.snapshot();
  ASSERT_NE(model, nullptr);

  // Pipeline all rows through the micro-batching path, then compare
  // against the sequential per-sample path.
  std::vector<serve::Ticket> tickets;
  tickets.reserve(s.test.num_rows());
  for (size_t i = 0; i < s.test.num_rows(); ++i) {
    tickets.push_back(engine.Submit(s.test.Row(i)).value());
  }
  for (size_t i = 0; i < tickets.size(); ++i) {
    const SampleDecision d = tickets[i].Wait().value();
    EXPECT_EQ(d.label, model->Classify(s.test.Row(i))) << "row " << i;
    EXPECT_EQ(d.probability, model->ClassifyProba(s.test.Row(i)))
        << "row " << i;
  }

  const serve::MetricsSnapshot metrics = engine.GetMetrics();
  EXPECT_EQ(metrics.samples, s.test.num_rows());
  EXPECT_EQ(metrics.requests, s.test.num_rows());
  EXPECT_EQ(metrics.errors, 0u);
  EXPECT_GE(metrics.flushes, s.test.num_rows() / options.queue.max_batch);
  EXPECT_EQ(metrics.total.count, s.test.num_rows());
  EXPECT_EQ(metrics.queue_wait.count, s.test.num_rows());
  EXPECT_GT(metrics.total.p50_seconds, 0.0);
}

TEST(ServeEngineTest, SubmitRejectsMalformedSamples) {
  serve::FalccEngine engine;
  engine.Install(TrainSmallModel());
  const std::shared_ptr<const FalccModel> model = engine.snapshot();

  const std::vector<double> short_sample(model->num_features() - 1, 0.0);
  const Result<serve::Ticket> wrong_width = engine.Submit(short_sample);
  ASSERT_FALSE(wrong_width.ok());
  EXPECT_EQ(wrong_width.status().code(), StatusCode::kInvalidArgument);

  std::vector<double> nan_sample(model->num_features(), 0.0);
  nan_sample.back() = std::nan("");
  const Result<serve::Ticket> with_nan = engine.Submit(nan_sample);
  ASSERT_FALSE(with_nan.ok());
  EXPECT_EQ(with_nan.status().code(), StatusCode::kInvalidArgument);

  EXPECT_EQ(engine.GetMetrics().errors, 2u);
}

TEST(ServeEngineTest, MaxDelayFlushesPartialBatches) {
  serve::FalccEngineOptions options;
  options.queue.max_batch = 1 << 20;  // never fills: delay must trigger
  options.queue.max_delay_seconds = 1e-3;
  serve::FalccEngine engine(options);
  engine.Install(TrainSmallModel());
  const std::shared_ptr<const FalccModel> model = engine.snapshot();

  const std::vector<double> sample(model->num_features(), 0.25);
  const SampleDecision d = engine.Classify(sample).value();
  EXPECT_EQ(d.label, model->Classify(sample));
}

TEST(ServeEngineTest, ShutdownDrainsAndRejects) {
  serve::FalccEngineOptions options;
  options.queue.max_batch = 1 << 20;
  options.queue.max_delay_seconds = 10.0;  // drain only via shutdown
  serve::FalccEngine engine(options);
  engine.Install(TrainSmallModel());
  const std::shared_ptr<const FalccModel> model = engine.snapshot();

  const std::vector<double> sample(model->num_features(), 0.75);
  const serve::Ticket ticket = engine.Submit(sample).value();
  engine.Shutdown();

  // The queued sample was drained and classified before the flusher
  // exited; new submissions are rejected.
  const SampleDecision d = ticket.Wait().value();
  EXPECT_EQ(d.label, model->Classify(sample));
  const Result<serve::Ticket> after = engine.Submit(sample);
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kUnavailable);
}

TEST(ServeEngineTest, ReloadFromFileFailureKeepsServing) {
  serve::FalccEngine engine;
  engine.Install(TrainSmallModel());
  const uint64_t version = engine.snapshot_version();

  const Status bad = engine.ReloadFromFile("/nonexistent/model.falcc");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(engine.snapshot_version(), version);
  ASSERT_NE(engine.snapshot(), nullptr);

  const std::vector<double> sample(engine.snapshot()->num_features(), 0.5);
  EXPECT_TRUE(engine.Classify(sample).ok());
}

// The TSan target of tools/check.sh: hot-swaps (file reloads and
// installs) racing batched and micro-batched classification. Any data
// race in the snapshot handoff or queue fails the sanitizer build.
TEST(ServeEngineTest, HotSwapUnderConcurrentClassification) {
  const TrainValTest s = MakeSplits();
  const FalccModel original =
      FalccModel::Train(s.train, s.validation, FastOptions()).value();
  const std::string path = ::testing::TempDir() + "/serve_hot_swap.falcc";
  ASSERT_TRUE(original.SaveToFile(path).ok());

  serve::FalccEngineOptions options;
  options.queue.max_batch = 16;
  serve::FalccEngine engine(options);
  ASSERT_TRUE(engine.ReloadFromFile(path).ok());

  const std::vector<double> flat = Flatten(s.test);
  const size_t width = s.test.num_features();
  const std::vector<int> expected = original.ClassifyAll(s.test);

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  // Reader A: direct batched classification over full snapshots.
  std::thread direct([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      ClassifyRequest request;
      request.features = flat;
      request.num_features = width;
      const Result<ClassifyResponse> response = engine.ClassifyBatch(request);
      if (!response.ok()) {
        failures.fetch_add(1);
        continue;
      }
      for (size_t i = 0; i < expected.size(); ++i) {
        if (response.value().decisions[i].label != expected[i]) {
          failures.fetch_add(1);
          break;
        }
      }
    }
  });

  // Reader B: micro-batched single-sample submissions.
  std::thread micro([&] {
    size_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const auto row = s.test.Row(i % s.test.num_rows());
      const Result<SampleDecision> d = engine.Classify(row);
      if (!d.ok() || d.value().label != expected[i % expected.size()]) {
        failures.fetch_add(1);
      }
      ++i;
    }
  });

  // Writer: a storm of hot-swaps while both readers run.
  for (int swap = 0; swap < 20; ++swap) {
    ASSERT_TRUE(engine.ReloadFromFile(path).ok());
  }
  stop.store(true, std::memory_order_relaxed);
  direct.join();
  micro.join();
  std::remove(path.c_str());

  // Every reload installed the same artifact, so decisions must never
  // have wavered regardless of which snapshot served a request.
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(engine.snapshot_version(), 21u);
  EXPECT_EQ(engine.GetMetrics().reloads, 21u);
  EXPECT_EQ(engine.GetMetrics().errors, 0u);
}

TEST(ServeMetricsTest, HistogramPercentilesAreMonotonic) {
  serve::LatencyHistogram histogram;
  for (int i = 1; i <= 100; ++i) {
    histogram.Record(static_cast<double>(i) * 1e-6);
  }
  const serve::LatencySummary summary = histogram.Summarize();
  EXPECT_EQ(summary.count, 100u);
  EXPECT_GT(summary.p50_seconds, 0.0);
  EXPECT_LE(summary.p50_seconds, summary.p95_seconds);
  EXPECT_LE(summary.p95_seconds, summary.p99_seconds);
  // Power-of-two buckets: quantiles are exact to within a factor of two.
  EXPECT_LE(summary.p50_seconds, 2 * 50e-6);
  EXPECT_LE(summary.p99_seconds, 2 * 100e-6);
  EXPECT_GE(summary.p99_seconds, 50e-6);
}

TEST(ServeMetricsTest, SnapshotRendersAllStages) {
  serve::Metrics metrics;
  metrics.AddRequests(3);
  metrics.total().Record(5e-6);
  const std::string text = metrics.Snapshot().ToString();
  for (const char* stage :
       {"total", "queue_wait", "validate", "transform", "match", "predict"}) {
    EXPECT_NE(text.find(stage), std::string::npos) << stage;
  }
}

}  // namespace
}  // namespace falcc
