// Encodes the paper's running example (Tab. 2 and Examples 3.1–3.5):
// seven labeled validation employees, three models m1–m3 with the printed
// predictions, two clusters, two sensitive groups (g_d = gender 1,
// g_f = gender 0), demographic parity, λ = 0.5.
//
// Note on Example 3.4: the paper claims {(m3, g_d), (m3, g_f)} is optimal
// for cluster C1 with inaccuracy 1/3 and bias 0 (L̂ = 1/6). Evaluating
// every combination with the paper's own Eq. 2 + Tab. 3 formulas, the
// combinations assigning m2 or m3 to g_d and m1 to g_f achieve
// inaccuracy 0 with dp bias 1/4, i.e. L̂ = 1/8 < 1/6 — so the printed
// text slightly contradicts its own formulas for C1. This test pins the
// formula-faithful behaviour and additionally verifies the values the
// paper states for its chosen combinations. Cluster C2 matches the paper
// exactly ({(m1, g_d), (m3, g_f)} is the unique zero-loss combination).

#include <gtest/gtest.h>

#include "core/assessment.h"

namespace falcc {
namespace {

class RunningExampleTest : public ::testing::Test {
 protected:
  RunningExampleTest() {
    // Rows are eid 1..7 of Tab. 2 (index = eid − 1).
    votes_ = {
        {0, 1, 1, 0, 0, 0, 0},  // Pr_m1
        {1, 1, 0, 0, 1, 0, 0},  // Pr_m2
        {1, 0, 1, 0, 0, 1, 1},  // Pr_m3
    };
    labels_ = {1, 1, 1, 0, 0, 0, 1};
    // gender: 1 = g_d (group 0 here), 0 = g_f (group 1 here).
    groups_ = {0, 0, 1, 1, 0, 1, 1};
    cluster1_ = {0, 2, 5};     // eids 1, 3, 6
    cluster2_ = {1, 3, 4, 6};  // eids 2, 4, 5, 7

    ctx_.votes = &votes_;
    ctx_.labels = labels_;
    ctx_.groups = groups_;
    ctx_.num_groups = 2;
    ctx_.metric = FairnessMetric::kDemographicParity;
    ctx_.lambda = 0.5;
  }

  std::vector<std::vector<int>> votes_;
  std::vector<int> labels_;
  std::vector<size_t> groups_;
  std::vector<size_t> cluster1_, cluster2_;
  AssessmentContext ctx_;
};

TEST_F(RunningExampleTest, PaperValuesForM3M3OnClusterOne) {
  // Example 3.4: (m3, m3) on C1 has inaccuracy 1/3 and bias 0 -> L̂ = 1/6.
  const ModelCombination m3m3 = {2, 2};
  EXPECT_NEAR(AssessCombination(ctx_, m3m3, cluster1_).value(), 1.0 / 6.0,
              1e-12);
}

TEST_F(RunningExampleTest, PaperValuesForM1M3OnClusterTwo) {
  // Example 3.4: (m1 for g_d, m3 for g_f) on C2 is perfect: L̂ = 0.
  const ModelCombination m1m3 = {0, 2};
  EXPECT_NEAR(AssessCombination(ctx_, m1m3, cluster2_).value(), 0.0, 1e-12);
}

TEST_F(RunningExampleTest, ClusterTwoSelectionMatchesPaper) {
  std::vector<ModelCombination> combos;
  for (size_t a = 0; a < 3; ++a) {
    for (size_t b = 0; b < 3; ++b) combos.push_back({a, b});
  }
  const std::vector<std::vector<size_t>> regions = {cluster2_};
  const size_t best = SelectBestCombinations(ctx_, combos, regions).value()[0];
  EXPECT_EQ(combos[best], (ModelCombination{0, 2}));  // (m1, m3), unique 0
}

TEST_F(RunningExampleTest, ClusterOneSelectionIsFormulaOptimal) {
  std::vector<ModelCombination> combos;
  for (size_t a = 0; a < 3; ++a) {
    for (size_t b = 0; b < 3; ++b) combos.push_back({a, b});
  }
  const std::vector<std::vector<size_t>> regions = {cluster1_};
  const size_t best_idx =
      SelectBestCombinations(ctx_, combos, regions).value()[0];
  const double best_loss =
      AssessCombination(ctx_, combos[best_idx], cluster1_).value();
  // The formula-faithful optimum is L̂ = 1/8 (see file comment), better
  // than the paper's stated 1/6 for (m3, m3).
  EXPECT_NEAR(best_loss, 0.125, 1e-12);
  // And it assigns m1 to g_f (the only model perfect on g_f in C1).
  EXPECT_EQ(combos[best_idx][1], 0u);
  // No combination beats it.
  for (const auto& combo : combos) {
    EXPECT_GE(AssessCombination(ctx_, combo, cluster1_).value(),
              best_loss - 1e-12);
  }
}

TEST_F(RunningExampleTest, NineCandidateCombinationsAsInExample31) {
  // Example 3.1: three models and two groups yield 9 candidates.
  size_t count = 0;
  for (size_t a = 0; a < 3; ++a) {
    for (size_t b = 0; b < 3; ++b, ++count) {
    }
  }
  EXPECT_EQ(count, 9u);
}

TEST_F(RunningExampleTest, OnlinePhaseLookupForNewEmployee) {
  // Example 3.5: t (eid 0) belongs to g_d and matches cluster C2, so it
  // must be classified by the model stored for (C2, g_d) — m1 under the
  // paper's MC. Simulate the lookup.
  const ModelCombination mc_c2 = {0, 2};  // (m1, g_d), (m3, g_f)
  const size_t group_of_t = 0;            // g_d
  EXPECT_EQ(mc_c2[group_of_t], 0u);       // m1
}

}  // namespace
}  // namespace falcc
