// Metamorphic invariants of the full pipeline, via the shared checks in
// testing/invariants.h. This suite replaces the bit-identity tests that
// were previously duplicated across falcc_test, serve_engine_test, and
// monitor_test with one run of each helper over freshly trained models.

#include "testing/invariants.h"

#include <gtest/gtest.h>

#include "data/split.h"
#include "datagen/synthetic.h"

namespace falcc {
namespace {

using testing::CheckBatchMatchesSequential;
using testing::CheckClassifyThreadInvariance;
using testing::CheckCompiledMatchesInterpreted;
using testing::CheckPermutationInvariance;
using testing::CheckRefreshIsolation;
using testing::CheckSaveLoadSaveIdempotent;
using testing::CheckShardedMatchesSingleLoop;
using testing::CheckTrainingThreadInvariance;
using testing::LoadFromString;
using testing::SaveToString;

TrainValTest MakeSplits(uint64_t seed = 11, size_t n = 2000) {
  SyntheticConfig cfg;
  cfg.num_samples = n;
  cfg.seed = 7;
  const Dataset d = GenerateImplicitBias(cfg).value();
  return SplitDatasetDefault(d, seed).value();
}

FalccOptions FastOptions() {
  FalccOptions opt;
  opt.seed = 42;
  opt.trainer.estimator_grid = {5};
  opt.trainer.depth_grid = {1, 4};
  opt.trainer.pool_size = 3;
  return opt;
}

// One model + splits shared across the whole suite: each invariant is a
// property of the same artifact, and training dominates the runtime.
struct Fixture {
  TrainValTest splits = MakeSplits();
  FalccModel model =
      FalccModel::Train(splits.train, splits.validation, FastOptions())
          .value();
};

Fixture& Shared() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

TEST(InvariantsTest, BatchMatchesSequentialClassify) {
  Fixture& f = Shared();
  const Status st = CheckBatchMatchesSequential(f.model, f.splits.test);
  EXPECT_TRUE(st.ok()) << st.ToString();

  // Decision diagnostics stay consistent with the exposed online steps.
  for (size_t i = 0; i < 50; ++i) {
    const auto row = f.splits.test.Row(i);
    const size_t cluster = f.model.MatchCluster(row);
    const size_t group = f.model.GroupOf(row).value();
    const double p = f.model.ClassifyProba(row);
    EXPECT_EQ(f.model.Classify(row), p >= 0.5 ? 1 : 0) << "row " << i;
    EXPECT_LT(cluster, f.model.num_clusters());
    EXPECT_EQ(f.model.selected_combinations()[cluster].size(),
              f.model.num_groups())
        << "row " << i << " group " << group;
  }
}

TEST(InvariantsTest, RowPermutationInvariance) {
  Fixture& f = Shared();
  for (uint64_t seed : {1u, 2u, 3u}) {
    const Status st = CheckPermutationInvariance(f.model, f.splits.test, seed);
    EXPECT_TRUE(st.ok()) << "seed " << seed << ": " << st.ToString();
  }
}

TEST(InvariantsTest, ClassifyThreadCountInvariance) {
  Fixture& f = Shared();
  const Status st = CheckClassifyThreadInvariance(f.model, f.splits.test);
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST(InvariantsTest, TrainingThreadCountInvariance) {
  // The parallel runtime's hard contract: the offline phase run on 1 and
  // on 4 threads produces byte-identical serialized models and identical
  // batch predictions. Random forests exercise per-tree parallelism.
  const TrainValTest s = MakeSplits();
  FalccOptions opt = FastOptions();
  opt.trainer.family = TrainerFamily::kRandomForest;
  const Status st =
      CheckTrainingThreadInvariance(s.train, s.validation, s.test, opt);
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST(InvariantsTest, SaveLoadSaveIsByteIdempotent) {
  Fixture& f = Shared();
  const Status st = CheckSaveLoadSaveIdempotent(f.model);
  EXPECT_TRUE(st.ok()) << st.ToString();

  // And the reloaded model serves identically to the original.
  std::string bytes;
  ASSERT_TRUE(SaveToString(f.model, &bytes).ok());
  const FalccModel reloaded = LoadFromString(bytes).value();
  const Status served = CheckBatchMatchesSequential(reloaded, f.splits.test);
  EXPECT_TRUE(served.ok()) << served.ToString();
  EXPECT_EQ(reloaded.ClassifyAll(f.splits.test),
            f.model.ClassifyAll(f.splits.test));
}

TEST(InvariantsTest, CompiledKernelsMatchInterpretedBitForBit) {
  Fixture& f = Shared();
  ASSERT_TRUE(f.model.has_compiled_kernels());
  const Status st = CheckCompiledMatchesInterpreted(&f.model, f.splits.test);
  EXPECT_TRUE(st.ok()) << st.ToString();

  // The invariant restores the routing toggle it found.
  EXPECT_TRUE(f.model.use_compiled());
}

TEST(InvariantsTest, ShardedServingMatchesSingleLoop) {
  // Routing is invisible: 1, 2, and 8 shards all reproduce the
  // single-sample loop bit for bit, under round-robin and keyed routing.
  Fixture& f = Shared();
  const size_t kShardCounts[] = {1, 2, 8};
  const Status st =
      CheckShardedMatchesSingleLoop(f.model, f.splits.test, kShardCounts);
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST(InvariantsTest, RefreshLeavesUntouchedClustersBitIdentical) {
  Fixture& f = Shared();
  ASSERT_GE(f.model.num_clusters(), 2u);

  // Swap cluster 0 to a combination that differs from the serving one.
  const ModelCombination& current = f.model.selected_combinations()[0];
  ModelCombination replacement = current;
  replacement[0] = (current[0] + 1) % f.model.pool().size();
  ClusterRefresh refresh;
  refresh.cluster = 0;
  refresh.combination = replacement;
  refresh.baseline_loss = 0.123;

  const Status st = CheckRefreshIsolation(f.model, f.splits.test, refresh);
  EXPECT_TRUE(st.ok()) << st.ToString();

  const FalccModel clone = f.model.CloneWithRefreshes({&refresh, 1}).value();
  EXPECT_EQ(clone.baseline_losses()[0], 0.123);

  // Invalid refreshes are rejected.
  ClusterRefresh bad = refresh;
  bad.cluster = f.model.num_clusters();
  EXPECT_FALSE(f.model.CloneWithRefreshes({&bad, 1}).ok());

  bad = refresh;
  bad.combination.push_back(0);
  EXPECT_FALSE(f.model.CloneWithRefreshes({&bad, 1}).ok());

  bad = refresh;
  bad.combination[0] = f.model.pool().size();
  EXPECT_FALSE(f.model.CloneWithRefreshes({&bad, 1}).ok());

  bad = refresh;
  bad.baseline_loss = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(f.model.CloneWithRefreshes({&bad, 1}).ok());
}

}  // namespace
}  // namespace falcc
