// Robustness suite: degenerate and adversarial inputs through the full
// FALCC pipeline and the substrates it depends on. These are the cases a
// downstream user hits in practice — constant features, tiny groups,
// single-label partitions, duplicated rows — and the pipeline must
// either handle them or fail with a clean Status (never crash).

#include <gtest/gtest.h>

#include "core/falcc.h"
#include "data/split.h"
#include "datagen/synthetic.h"
#include "ml/decision_tree.h"
#include "util/rng.h"

namespace falcc {
namespace {

FalccOptions FastOptions(uint64_t seed = 99) {
  FalccOptions opt;
  opt.seed = seed;
  opt.trainer.estimator_grid = {5};
  opt.trainer.depth_grid = {2};
  opt.trainer.pool_size = 2;
  opt.fixed_k = 2;
  return opt;
}

Dataset WithConstantColumn(const Dataset& base) {
  // Rebuild with an extra all-zero column in front.
  std::vector<std::string> names = {"constant"};
  for (const auto& n : base.feature_names()) names.push_back(n);
  std::vector<double> features;
  for (size_t i = 0; i < base.num_rows(); ++i) {
    features.push_back(0.0);
    const auto row = base.Row(i);
    features.insert(features.end(), row.begin(), row.end());
  }
  std::vector<size_t> sensitive;
  for (size_t s : base.sensitive_features()) sensitive.push_back(s + 1);
  return Dataset::Create(std::move(names), std::move(features),
                         base.num_features() + 1, base.labels(),
                         std::move(sensitive))
      .value();
}

TEST(RobustnessTest, ConstantFeatureColumnSurvivesPipeline) {
  SyntheticConfig cfg;
  cfg.num_samples = 600;
  cfg.seed = 31;
  const Dataset d = WithConstantColumn(GenerateImplicitBias(cfg).value());
  const TrainValTest s = SplitDatasetDefault(d, 31).value();
  Result<FalccModel> model =
      FalccModel::Train(s.train, s.validation, FastOptions());
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  EXPECT_EQ(model.value().ClassifyAll(s.test).size(), s.test.num_rows());
}

TEST(RobustnessTest, TinyMinorityGroupSurvivesPipeline) {
  SyntheticConfig cfg;
  cfg.num_samples = 800;
  cfg.pr_favored = 0.97;  // ~3% minority
  cfg.seed = 33;
  const Dataset d = GenerateImplicitBias(cfg).value();
  const TrainValTest s = SplitDatasetDefault(d, 33).value();
  FalccOptions opt = FastOptions(33);
  opt.fixed_k = 8;  // clusters will miss the minority -> gap filling
  Result<FalccModel> model = FalccModel::Train(s.train, s.validation, opt);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  const std::vector<int> preds = model.value().ClassifyAll(s.test);
  EXPECT_EQ(preds.size(), s.test.num_rows());
}

TEST(RobustnessTest, NearlyAllPositiveLabels) {
  Rng rng(35);
  std::vector<double> features;
  std::vector<int> labels;
  for (size_t i = 0; i < 400; ++i) {
    features.push_back(rng.Normal());
    features.push_back(rng.Bernoulli(0.5) ? 1.0 : 0.0);
    labels.push_back(i < 8 ? 0 : 1);  // 2% negatives
  }
  const Dataset d = Dataset::Create({"x", "s"}, std::move(features), 2,
                                    std::move(labels), {1})
                        .value();
  const TrainValTest s = SplitDatasetDefault(d, 35).value();
  Result<FalccModel> model =
      FalccModel::Train(s.train, s.validation, FastOptions(35));
  ASSERT_TRUE(model.ok()) << model.status().ToString();
}

TEST(RobustnessTest, DuplicatedRowsSurvivePipeline) {
  SyntheticConfig cfg;
  cfg.num_samples = 150;
  cfg.seed = 37;
  Dataset d = GenerateImplicitBias(cfg).value();
  // Triple every row.
  std::vector<size_t> rows;
  for (size_t rep = 0; rep < 3; ++rep) {
    for (size_t i = 0; i < 150; ++i) rows.push_back(i);
  }
  const Dataset tripled = d.Subset(rows);
  const TrainValTest s = SplitDatasetDefault(tripled, 37).value();
  Result<FalccModel> model =
      FalccModel::Train(s.train, s.validation, FastOptions(37));
  ASSERT_TRUE(model.ok()) << model.status().ToString();
}

TEST(RobustnessTest, OutOfDistributionSamplesClassify) {
  SyntheticConfig cfg;
  cfg.num_samples = 600;
  cfg.seed = 39;
  const Dataset d = GenerateImplicitBias(cfg).value();
  const TrainValTest s = SplitDatasetDefault(d, 39).value();
  const FalccModel model =
      FalccModel::Train(s.train, s.validation, FastOptions(39)).value();
  // Extreme feature values and an unseen sensitive value.
  std::vector<double> extreme(d.num_features(), 1e9);
  extreme[d.sensitive_features()[0]] = 7.0;  // unseen group value
  const int label = model.Classify(extreme);
  EXPECT_TRUE(label == 0 || label == 1);
}

TEST(RobustnessTest, ValidationSmallerThanGapFillK) {
  SyntheticConfig cfg;
  cfg.num_samples = 90;  // validation ~31 rows < gap_fill_k * groups
  cfg.seed = 41;
  const Dataset d = GenerateImplicitBias(cfg).value();
  const TrainValTest s = SplitDatasetDefault(d, 41).value();
  FalccOptions opt = FastOptions(41);
  opt.gap_fill_k = 50;
  Result<FalccModel> model = FalccModel::Train(s.train, s.validation, opt);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
}

TEST(RobustnessTest, SingleGroupDatasetDegradesGracefully) {
  // Every sample in the same sensitive group: FALCC devolves into plain
  // per-region model selection.
  Rng rng(43);
  std::vector<double> features;
  std::vector<int> labels;
  for (size_t i = 0; i < 300; ++i) {
    const int y = rng.Bernoulli(0.5) ? 1 : 0;
    features.push_back(rng.Normal(y == 1 ? 1.0 : -1.0, 1.0));
    features.push_back(1.0);  // constant sensitive value
    labels.push_back(y);
  }
  const Dataset d = Dataset::Create({"x", "s"}, std::move(features), 2,
                                    std::move(labels), {1})
                        .value();
  const TrainValTest s = SplitDatasetDefault(d, 43).value();
  Result<FalccModel> model =
      FalccModel::Train(s.train, s.validation, FastOptions(43));
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  EXPECT_EQ(model.value().num_groups(), 1u);
  size_t correct = 0;
  const std::vector<int> preds = model.value().ClassifyAll(s.test);
  for (size_t i = 0; i < preds.size(); ++i) {
    correct += preds[i] == s.test.Label(i);
  }
  EXPECT_GT(static_cast<double>(correct) / preds.size(), 0.6);
}

TEST(RobustnessTest, DecisionTreeOnSingleRepeatedPoint) {
  Dataset d =
      Dataset::Create({"x"}, {1.0, 1.0, 1.0, 1.0}, 1, {1, 0, 1, 0}, {})
          .value();
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(d).ok());
  EXPECT_EQ(tree.num_nodes(), 1u);  // nothing separable
  EXPECT_DOUBLE_EQ(tree.PredictProba(d.Row(0)), 0.5);
}

TEST(RobustnessTest, KOneWithProxyRemovalStillWorks) {
  SyntheticConfig cfg;
  cfg.num_samples = 600;
  cfg.bias = 0.5;
  cfg.seed = 45;
  const Dataset d = GenerateImplicitBias(cfg).value();
  const TrainValTest s = SplitDatasetDefault(d, 45).value();
  FalccOptions opt = FastOptions(45);
  opt.fixed_k = 1;
  opt.proxy.strategy = ProxyMitigation::kRemove;
  opt.proxy.removal_threshold = 0.1;
  Result<FalccModel> model = FalccModel::Train(s.train, s.validation, opt);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  EXPECT_EQ(model.value().num_clusters(), 1u);
}

}  // namespace
}  // namespace falcc
