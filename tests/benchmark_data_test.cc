#include "datagen/benchmark_data.h"

#include <gtest/gtest.h>

#include "data/groups.h"
#include "util/math.h"

namespace falcc {
namespace {

TEST(BenchmarkDataTest, AllSpecsListed) {
  const auto specs = AllBenchmarkSpecs();
  ASSERT_EQ(specs.size(), 7u);
  EXPECT_EQ(specs[0].name, "ACS2017");
  EXPECT_EQ(specs[6].name, "CreditCard");
}

TEST(BenchmarkDataTest, SpecsMatchTable4Metadata) {
  EXPECT_EQ(Acs2017Spec().num_samples, 72000u);
  EXPECT_EQ(Acs2017Spec().num_features, 23u);
  EXPECT_EQ(AdultSexSpec().num_samples, 46000u);
  EXPECT_EQ(CommunitiesSpec().num_features, 91u);
  EXPECT_EQ(CompasSpec().num_features, 7u);
  EXPECT_EQ(AdultSexRaceSpec().groups.size(), 4u);
}

TEST(BenchmarkDataTest, GroupProbabilitiesSumToOne) {
  for (const auto& spec : AllBenchmarkSpecs()) {
    double sum = 0.0;
    for (const auto& g : spec.groups) sum += g.probability;
    EXPECT_NEAR(sum, 1.0, 1e-9) << spec.name;
  }
}

TEST(BenchmarkDataTest, GeneratedShape) {
  const Dataset d = GenerateBenchmarkDataset(CompasSpec(), 1, 0.5).value();
  EXPECT_EQ(d.num_rows(), 3050u);
  EXPECT_EQ(d.num_features(), 7u);
  EXPECT_EQ(d.sensitive_features().size(), 1u);
}

TEST(BenchmarkDataTest, ScaleFloorsAtFifty) {
  const Dataset d =
      GenerateBenchmarkDataset(CompasSpec(), 1, 0.0001).value();
  EXPECT_EQ(d.num_rows(), 50u);
}

TEST(BenchmarkDataTest, MultiAttributeGroups) {
  const Dataset d =
      GenerateBenchmarkDataset(AdultSexRaceSpec(), 2, 0.2).value();
  EXPECT_EQ(d.sensitive_features().size(), 2u);
  const GroupIndex index = GroupIndex::Build(d).value();
  EXPECT_EQ(index.num_groups(), 4u);
}

TEST(BenchmarkDataTest, DeterministicForSeed) {
  const Dataset a = GenerateBenchmarkDataset(CompasSpec(), 5, 0.1).value();
  const Dataset b = GenerateBenchmarkDataset(CompasSpec(), 5, 0.1).value();
  for (size_t i = 0; i < a.num_rows(); ++i) {
    EXPECT_DOUBLE_EQ(a.Feature(i, 0), b.Feature(i, 0));
    EXPECT_EQ(a.Label(i), b.Label(i));
  }
}

TEST(BenchmarkDataTest, RejectsBadSpecs) {
  BenchmarkDataSpec spec = CompasSpec();
  spec.groups.clear();
  EXPECT_FALSE(GenerateBenchmarkDataset(spec, 1).ok());

  spec = CompasSpec();
  spec.groups[0].probability = 0.9;  // no longer sums to 1
  EXPECT_FALSE(GenerateBenchmarkDataset(spec, 1).ok());

  spec = CompasSpec();
  spec.num_features = 2;  // too small for blocks
  EXPECT_FALSE(GenerateBenchmarkDataset(spec, 1).ok());

  EXPECT_FALSE(GenerateBenchmarkDataset(CompasSpec(), 1, 0.0).ok());
}

struct SpecCase {
  std::string name;
  double pr_s1;
  double rate_s1;
  double rate_s0;
};

class BenchmarkDataRates : public ::testing::TestWithParam<SpecCase> {};

TEST_P(BenchmarkDataRates, ReproducesPublishedRates) {
  const SpecCase& expected = GetParam();
  BenchmarkDataSpec spec;
  for (const auto& s : AllBenchmarkSpecs()) {
    if (s.name == expected.name) spec = s;
  }
  ASSERT_FALSE(spec.name.empty());
  // Generate at least ~10k rows so rate estimates have little noise
  // (Communities publishes only 2k samples).
  const double scale =
      std::max(0.5, 10000.0 / static_cast<double>(spec.num_samples));
  const Dataset d = GenerateBenchmarkDataset(spec, 42, scale).value();

  const size_t sens = d.sensitive_features()[0];
  double pos[2] = {0, 0}, count[2] = {0, 0};
  for (size_t i = 0; i < d.num_rows(); ++i) {
    const int s = d.Feature(i, sens) >= 0.5 ? 1 : 0;
    count[s] += 1.0;
    pos[s] += d.Label(i);
  }
  const double n = count[0] + count[1];
  EXPECT_NEAR(count[1] / n, expected.pr_s1, 0.03) << "Pr(s=1)";
  EXPECT_NEAR(pos[1] / count[1], expected.rate_s1, 0.03) << "Pr(y=1|s=1)";
  EXPECT_NEAR(pos[0] / count[0], expected.rate_s0, 0.03) << "Pr(y=1|s=0)";
}

INSTANTIATE_TEST_SUITE_P(
    Table4, BenchmarkDataRates,
    ::testing::Values(SpecCase{"ACS2017", 0.588, 0.496, 0.282},
                      SpecCase{"AdultSex", 0.676, 0.313, 0.114},
                      SpecCase{"AdultRace", 0.857, 0.263, 0.160},
                      SpecCase{"Communities", 0.514, 0.194, 0.626},
                      SpecCase{"COMPAS", 0.401, 0.385, 0.502},
                      SpecCase{"CreditCard", 0.604, 0.208, 0.242}),
    [](const ::testing::TestParamInfo<SpecCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace falcc
