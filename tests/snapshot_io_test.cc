// The sectioned snapshot stack (src/io + the FalccModel v2 API): writer
// and reader round trips, per-section checksums, delta artifacts,
// zero-copy mapped loads, and the serve-layer SnapshotSource dispatch.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/falcc.h"
#include "data/split.h"
#include "datagen/synthetic.h"
#include "io/mapped_file.h"
#include "io/snapshot.h"
#include "serve/engine.h"
#include "serve/sharded_engine.h"
#include "serve/snapshot_source.h"

namespace falcc {
namespace {

// --- container layer ---------------------------------------------------

TEST(SnapshotWriterTest, RoundTripsSectionsWithAlignedOffsets) {
  std::ostringstream out;
  io::SnapshotWriter writer(&out);
  *writer.BeginSection("alpha") << "first payload";
  ASSERT_TRUE(writer.EndSection().ok());
  *writer.BeginSection("beta") << std::string(3, '\0') << "binary\x01";
  ASSERT_TRUE(writer.EndSection().ok());
  io::SnapshotManifest manifest;
  ASSERT_TRUE(writer.Finish(&manifest).ok());

  ASSERT_EQ(manifest.sections.size(), 2u);
  EXPECT_EQ(manifest.sections[0].name, "alpha");
  EXPECT_EQ(manifest.sections[1].name, "beta");
  EXPECT_EQ(manifest.sections[0].offset % 8, 0u);
  EXPECT_EQ(manifest.sections[1].offset % 8, 0u);

  const Result<io::SnapshotReader> reader =
      io::SnapshotReader::Parse(out.str());
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_FALSE(reader.value().is_delta());
  EXPECT_EQ(reader.value().payload_file_offset() % 8, 0u);
  const Result<std::string_view> alpha =
      reader.value().ReadSection("alpha");
  ASSERT_TRUE(alpha.ok());
  EXPECT_EQ(alpha.value(), "first payload");
  const Result<std::string_view> beta = reader.value().ReadSection("beta");
  ASSERT_TRUE(beta.ok());
  EXPECT_EQ(beta.value(), std::string(3, '\0') + "binary\x01");
  EXPECT_TRUE(reader.value().VerifyAll().ok());
  EXPECT_EQ(reader.value().manifest().ContentHash(), manifest.ContentHash());
}

TEST(SnapshotWriterTest, EmptyAndMalformedUsagesError) {
  {
    std::ostringstream out;
    io::SnapshotWriter writer(&out);
    EXPECT_FALSE(writer.Finish().ok());  // no sections
  }
  {
    std::ostringstream out;
    io::SnapshotWriter writer(&out);
    writer.BeginSection("a");
    EXPECT_FALSE(writer.Finish().ok());  // open section
  }
  {
    std::ostringstream out;
    io::SnapshotWriter writer(&out);
    writer.BeginSection("BAD NAME");
    EXPECT_FALSE(writer.EndSection().ok());
  }
}

TEST(SnapshotReaderTest, ChecksumFailureNamesSectionAndOffset) {
  std::ostringstream out;
  io::SnapshotWriter writer(&out);
  *writer.BeginSection("pool") << "some payload bytes";
  ASSERT_TRUE(writer.EndSection().ok());
  ASSERT_TRUE(writer.Finish().ok());

  std::string corrupt = out.str();
  corrupt[corrupt.size() - 3] ^= 0x40;
  const Result<io::SnapshotReader> reader = io::SnapshotReader::Parse(corrupt);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();  // manifest intact
  const Result<std::string_view> section =
      reader.value().ReadSection("pool");
  ASSERT_FALSE(section.ok());
  EXPECT_NE(section.status().message().find("'pool'"), std::string::npos)
      << section.status().message();
  EXPECT_NE(section.status().message().find("offset"), std::string::npos);
  EXPECT_FALSE(reader.value().VerifyAll().ok());
}

TEST(SnapshotReaderTest, TruncatedManifestAndPayloadAreRejected) {
  std::ostringstream out;
  io::SnapshotWriter writer(&out);
  *writer.BeginSection("only") << "0123456789";
  ASSERT_TRUE(writer.EndSection().ok());
  ASSERT_TRUE(writer.Finish().ok());
  const std::string bytes = out.str();
  for (const size_t keep : {0u, 5u, 20u}) {
    EXPECT_FALSE(io::SnapshotReader::Parse(bytes.substr(0, keep)).ok());
  }
  EXPECT_FALSE(
      io::SnapshotReader::Parse(bytes.substr(0, bytes.size() - 1)).ok());
  EXPECT_FALSE(io::SnapshotReader::Parse(bytes + "x").ok());
}

TEST(MappedFileTest, MapsBytesAndRejectsMissing) {
  const std::string path = ::testing::TempDir() + "/falcc-mapped-file.bin";
  const std::string payload = "mapped contents\x00with binary";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << payload;
  }
  Result<io::MappedFile> mapped = io::MappedFile::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ(mapped.value().view(), payload);
  EXPECT_FALSE(io::MappedFile::Open(path + ".does-not-exist").ok());
  std::remove(path.c_str());
}

// --- model layer -------------------------------------------------------

FalccModel TrainTinyModel(uint64_t seed) {
  SyntheticConfig cfg;
  cfg.num_samples = 160;
  cfg.seed = 7;
  const Dataset d = GenerateImplicitBias(cfg).value();
  const TrainValTest s = SplitDatasetDefault(d, 11).value();
  FalccOptions opt;
  opt.seed = seed;
  opt.fixed_k = 2;
  opt.trainer.estimator_grid = {2};
  opt.trainer.depth_grid = {1};
  opt.trainer.pool_size = 2;
  return FalccModel::Train(s.train, s.validation, opt).value();
}

std::string SaveBytes(const FalccModel& model) {
  std::ostringstream out;
  EXPECT_TRUE(model.Save(&out).ok());
  return out.str();
}

std::vector<double> ProbeRows(const FalccModel& model, size_t rows) {
  std::vector<double> flat;
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < model.num_features(); ++j) {
      flat.push_back(0.25 * static_cast<double>(i) -
                     0.5 * static_cast<double>(j % 3));
    }
  }
  return flat;
}

std::vector<SampleDecision> Decide(const FalccModel& model,
                                   const std::vector<double>& flat) {
  ClassifyRequest request;
  request.features = flat;
  request.num_features = model.num_features();
  return model.ClassifyBatch(request).value().decisions;
}

void ExpectSameDecisions(const std::vector<SampleDecision>& a,
                         const std::vector<SampleDecision>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].label, b[i].label) << i;
    EXPECT_EQ(a[i].probability, b[i].probability) << i;
    EXPECT_EQ(a[i].cluster, b[i].cluster) << i;
    EXPECT_EQ(a[i].group, b[i].group) << i;
    EXPECT_EQ(a[i].model, b[i].model) << i;
  }
}

TEST(SnapshotV2Test, SaveLoadSaveIsByteIdentical) {
  const FalccModel model = TrainTinyModel(42);
  EXPECT_EQ(model.save_format(), SnapshotFormat::kV2);
  const std::string bytes = SaveBytes(model);
  std::istringstream in(bytes);
  const Result<FalccModel> loaded = FalccModel::Load(&in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().save_format(), SnapshotFormat::kV2);
  EXPECT_EQ(SaveBytes(loaded.value()), bytes);
}

TEST(SnapshotV2Test, ContentHashIgnoresTheDerivedFlatSection) {
  FalccModel with_kernels = TrainTinyModel(42);
  ASSERT_TRUE(with_kernels.has_compiled_kernels());
  const uint64_t hash = with_kernels.ContentHash().value();

  FalccModel without = TrainTinyModel(42);
  without.ClearCompiledKernels();
  ASSERT_FALSE(without.has_compiled_kernels());
  EXPECT_EQ(without.ContentHash().value(), hash);

  // And the artifacts genuinely differ (one carries flat, one doesn't),
  // while loading to the same decisions.
  const std::string bytes_with = SaveBytes(with_kernels);
  const std::string bytes_without = SaveBytes(without);
  EXPECT_NE(bytes_with, bytes_without);
  std::istringstream in(bytes_without);
  const Result<FalccModel> reloaded = FalccModel::Load(&in);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  // The loader recompiles when flat is absent; the recompiled save must
  // reproduce the kernel-carrying artifact bit for bit (canonical slots).
  EXPECT_EQ(SaveBytes(reloaded.value()), bytes_with);
}

TEST(SnapshotV2Test, MappedLoadIsBitIdenticalToStreamLoad) {
  const FalccModel model = TrainTinyModel(42);
  const std::string path = ::testing::TempDir() + "/falcc-mapped-model.falcc";
  ASSERT_TRUE(model.SaveToFile(path).ok());

  const Result<FalccModel> streamed = FalccModel::LoadFromFile(path);
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
  const Result<FalccModel> mapped = FalccModel::LoadMapped(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();

  const std::vector<double> probe = ProbeRows(model, 16);
  ExpectSameDecisions(Decide(streamed.value(), probe),
                      Decide(mapped.value(), probe));
  ExpectSameDecisions(Decide(model, probe), Decide(mapped.value(), probe));
  EXPECT_EQ(SaveBytes(mapped.value()), SaveBytes(streamed.value()));
  std::remove(path.c_str());
}

TEST(SnapshotV2Test, MappedLoadFallsBackForV1Artifacts) {
  const FalccModel model = TrainTinyModel(42);
  const std::string path = ::testing::TempDir() + "/falcc-v1-model.falcc";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(model.Save(&out, SnapshotFormat::kV1).ok());
  }
  const Result<FalccModel> loaded = FalccModel::LoadMapped(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const std::vector<double> probe = ProbeRows(model, 8);
  ExpectSameDecisions(Decide(model, probe), Decide(loaded.value(), probe));
  std::remove(path.c_str());
}

TEST(SnapshotDeltaTest, DeltaMatchesCloneWithRefreshes) {
  const FalccModel model = TrainTinyModel(42);
  ASSERT_GE(model.num_clusters(), 2u);

  // A refresh that actually changes cluster 0's combination.
  ModelCombination changed = model.selected_combinations()[0];
  changed[0] = (changed[0] + 1) % model.pool().size();
  ClusterRefresh refresh;
  refresh.cluster = 0;
  refresh.combination = changed;
  refresh.baseline_loss = 0.25;
  const Result<FalccModel> clone = model.CloneWithRefreshes({&refresh, 1});
  ASSERT_TRUE(clone.ok()) << clone.status().ToString();

  std::ostringstream delta;
  const size_t clusters[] = {0};
  ASSERT_TRUE(clone.value()
                  .SaveDelta(&delta, clusters, model.ContentHash().value())
                  .ok());
  // The delta is one combo section, not a full artifact.
  EXPECT_LT(delta.str().size(), SaveBytes(model).size() / 4);

  const Result<FalccModel> applied = model.ApplyDeltaBytes(delta.str());
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(SaveBytes(applied.value()), SaveBytes(clone.value()));
  EXPECT_EQ(applied.value().ContentHash().value(),
            clone.value().ContentHash().value());

  // Untouched clusters share the base's compiled kernels.
  for (size_t c = 1; c < model.num_clusters(); ++c) {
    EXPECT_EQ(applied.value().compiled_combo(c), model.compiled_combo(c));
  }
}

TEST(SnapshotDeltaTest, IncrementalManifestMatchesFullRecompute) {
  // CloneWithRefreshes updates the cached manifest in place; its content
  // hash must equal the hash of a from-scratch serialization.
  FalccModel model = TrainTinyModel(42);
  ASSERT_TRUE(model.EnsureManifest().ok());
  ModelCombination changed = model.selected_combinations()[0];
  changed[0] = (changed[0] + 1) % model.pool().size();
  ClusterRefresh refresh;
  refresh.cluster = 0;
  refresh.combination = changed;
  refresh.baseline_loss = 0.25;
  const Result<FalccModel> clone = model.CloneWithRefreshes({&refresh, 1});
  ASSERT_TRUE(clone.ok());
  const uint64_t incremental = clone.value().ContentHash().value();

  std::istringstream in(SaveBytes(clone.value()));
  const Result<FalccModel> reloaded = FalccModel::Load(&in);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded.value().ContentHash().value(), incremental);
}

TEST(SnapshotDeltaTest, WrongAndMissingBasesAreRejected) {
  const FalccModel a = TrainTinyModel(42);
  const FalccModel b = TrainTinyModel(43);
  std::ostringstream delta;
  const size_t clusters[] = {0};
  ASSERT_TRUE(b.SaveDelta(&delta, clusters, b.ContentHash().value()).ok());

  const Result<FalccModel> applied = a.ApplyDeltaBytes(delta.str());
  ASSERT_FALSE(applied.ok());
  EXPECT_EQ(applied.status().code(), StatusCode::kFailedPrecondition);

  // Full snapshots are not deltas and vice versa.
  EXPECT_FALSE(a.ApplyDeltaBytes(SaveBytes(a)).ok());
  std::istringstream in(delta.str());
  EXPECT_FALSE(FalccModel::Load(&in).ok());
}

TEST(SnapshotDeltaTest, SaveDeltaValidatesClusterList) {
  const FalccModel model = TrainTinyModel(42);
  const uint64_t hash = model.ContentHash().value();
  std::ostringstream out;
  const size_t empty[] = {0};
  EXPECT_FALSE(model.SaveDelta(&out, {empty, 0}, hash).ok());
  const size_t oob[] = {model.num_clusters()};
  EXPECT_FALSE(model.SaveDelta(&out, oob, hash).ok());
  const size_t dup[] = {0, 0};
  EXPECT_FALSE(model.SaveDelta(&out, dup, hash).ok());

  // Unsorted input is canonicalized: section order in the artifact is
  // always ascending, so both spellings produce identical bytes.
  std::ostringstream sorted_out, unsorted_out;
  const size_t sorted[] = {0, 1};
  const size_t unsorted[] = {1, 0};
  ASSERT_TRUE(model.SaveDelta(&sorted_out, sorted, hash).ok());
  ASSERT_TRUE(model.SaveDelta(&unsorted_out, unsorted, hash).ok());
  EXPECT_EQ(unsorted_out.str(), sorted_out.str());
}

// --- serve layer -------------------------------------------------------

TEST(SnapshotSourceTest, DispatchesFullMappedAndDeltaLoads) {
  const FalccModel model = TrainTinyModel(42);
  const std::string dir = ::testing::TempDir();
  const std::string full_path = dir + "/falcc-source-full.falcc";
  const std::string delta_path = dir + "/falcc-source-delta.falcc";
  ASSERT_TRUE(model.SaveToFile(full_path).ok());

  ModelCombination changed = model.selected_combinations()[0];
  changed[0] = (changed[0] + 1) % model.pool().size();
  ClusterRefresh refresh;
  refresh.cluster = 0;
  refresh.combination = changed;
  refresh.baseline_loss = 0.25;
  const Result<FalccModel> next = model.CloneWithRefreshes({&refresh, 1});
  ASSERT_TRUE(next.ok());
  {
    std::ofstream out(delta_path, std::ios::binary | std::ios::trunc);
    const size_t clusters[] = {0};
    ASSERT_TRUE(next.value()
                    .SaveDelta(&out, clusters, model.ContentHash().value())
                    .ok());
  }

  serve::FalccEngineOptions eopt;
  eopt.start_flusher = false;
  serve::FalccEngine engine(eopt);
  serve::SnapshotSourceOptions sopt;
  sopt.prefer_mmap = true;
  serve::SnapshotSource source(&engine, sopt);

  Result<serve::SnapshotLoadKind> kind = source.Load(full_path);
  ASSERT_TRUE(kind.ok()) << kind.status().ToString();
  EXPECT_EQ(kind.value(), serve::SnapshotLoadKind::kMapped);
  const std::shared_ptr<const FalccModel> before = engine.snapshot();
  ASSERT_NE(before, nullptr);

  kind = source.Load(delta_path);
  ASSERT_TRUE(kind.ok()) << kind.status().ToString();
  EXPECT_EQ(kind.value(), serve::SnapshotLoadKind::kDelta);
  const std::shared_ptr<const FalccModel> after = engine.snapshot();

  // Incremental hot-swap: untouched clusters keep the mapped snapshot's
  // kernels pointer-identically.
  for (size_t c = 1; c < before->num_clusters(); ++c) {
    EXPECT_EQ(after->compiled_combo(c), before->compiled_combo(c));
  }
  EXPECT_NE(after->compiled_combo(0), before->compiled_combo(0));

  const std::vector<double> probe = ProbeRows(model, 8);
  ExpectSameDecisions(Decide(next.value(), probe), Decide(*after, probe));

  // Garbage headers fail without touching the engine.
  const std::string junk_path = dir + "/falcc-source-junk.falcc";
  {
    std::ofstream out(junk_path, std::ios::binary | std::ios::trunc);
    out << "not a snapshot\n";
  }
  const uint64_t version = engine.snapshot_version();
  EXPECT_FALSE(source.Load(junk_path).ok());
  EXPECT_EQ(engine.snapshot_version(), version);

  std::remove(full_path.c_str());
  std::remove(delta_path.c_str());
  std::remove(junk_path.c_str());
}

TEST(SnapshotSourceTest, WorksAgainstAShardedEngine) {
  const FalccModel model = TrainTinyModel(42);
  const std::string path = ::testing::TempDir() + "/falcc-sharded-full.falcc";
  ASSERT_TRUE(model.SaveToFile(path).ok());

  serve::ShardedEngineOptions sopt;
  sopt.num_shards = 2;
  serve::ShardedEngine engine(sopt);
  serve::SnapshotSource source(&engine);
  const Result<serve::SnapshotLoadKind> kind = source.Load(path);
  ASSERT_TRUE(kind.ok()) << kind.status().ToString();
  EXPECT_EQ(kind.value(), serve::SnapshotLoadKind::kFull);

  const std::vector<double> sample(model.num_features(), 0.5);
  const Result<SampleDecision> decision = engine.Classify(sample);
  ASSERT_TRUE(decision.ok()) << decision.status().ToString();
  EXPECT_EQ(decision.value().label, model.Classify(sample));
  engine.Shutdown();
  std::remove(path.c_str());
}

TEST(SnapshotSourceTest, EngineInstallCachesTheManifest) {
  serve::FalccEngineOptions eopt;
  eopt.start_flusher = false;
  serve::FalccEngine engine(eopt);
  engine.Install(TrainTinyModel(42));
  // The manifest (and so the content hash) is frozen into the snapshot
  // at install time — delta application never recomputes it.
  ASSERT_TRUE(engine.snapshot()->manifest().has_value());
}

}  // namespace
}  // namespace falcc
