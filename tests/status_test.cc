#include "util/status.h"

#include <gtest/gtest.h>

namespace falcc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, FactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIOError), "IOError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "Unavailable");
}

TEST(StatusTest, UnavailableToString) {
  // The serving layer reports "engine not ready" conditions with this
  // code; the CLI prints it through ToString.
  EXPECT_EQ(Status::Unavailable("draining").ToString(),
            "Unavailable: draining");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r.ValueOr("fallback"), "hello");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

TEST(ReturnIfErrorTest, PropagatesError) {
  auto fails = [] { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    FALCC_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

TEST(ReturnIfErrorTest, PassesOk) {
  auto succeeds = [] { return Status::OK(); };
  auto wrapper = [&]() -> Status {
    FALCC_RETURN_IF_ERROR(succeeds());
    return Status::OK();
  };
  EXPECT_TRUE(wrapper().ok());
}

}  // namespace
}  // namespace falcc
