#include "data/split.h"

#include <gtest/gtest.h>

#include <set>

#include "datagen/synthetic.h"

namespace falcc {
namespace {

Dataset MakeData(size_t n) {
  SyntheticConfig cfg;
  cfg.num_samples = n;
  cfg.seed = 5;
  return GenerateSocialBias(cfg).value();
}

TEST(SplitTest, DefaultFractions) {
  const Dataset d = MakeData(1000);
  Result<TrainValTest> s = SplitDatasetDefault(d, 1);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value().train.num_rows(), 500u);
  EXPECT_EQ(s.value().validation.num_rows(), 350u);
  EXPECT_EQ(s.value().test.num_rows(), 150u);
}

TEST(SplitTest, CoversWholeDatasetWhenFractionsSumToOne) {
  const Dataset d = MakeData(997);  // not divisible
  Result<TrainValTest> s = SplitDatasetDefault(d, 1);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value().train.num_rows() + s.value().validation.num_rows() +
                s.value().test.num_rows(),
            997u);
}

TEST(SplitTest, DeterministicForSeed) {
  const Dataset d = MakeData(200);
  const TrainValTest a = SplitDatasetDefault(d, 7).value();
  const TrainValTest b = SplitDatasetDefault(d, 7).value();
  ASSERT_EQ(a.train.num_rows(), b.train.num_rows());
  for (size_t i = 0; i < a.train.num_rows(); ++i) {
    EXPECT_DOUBLE_EQ(a.train.Feature(i, 0), b.train.Feature(i, 0));
  }
}

TEST(SplitTest, DifferentSeedsDiffer) {
  const Dataset d = MakeData(200);
  const TrainValTest a = SplitDatasetDefault(d, 1).value();
  const TrainValTest b = SplitDatasetDefault(d, 2).value();
  bool any_diff = false;
  for (size_t i = 0; i < a.train.num_rows() && !any_diff; ++i) {
    any_diff = a.train.Feature(i, 0) != b.train.Feature(i, 0);
  }
  EXPECT_TRUE(any_diff);
}

TEST(SplitTest, PartitionsAreDisjoint) {
  const Dataset d = MakeData(300);
  const TrainValTest s = SplitDatasetDefault(d, 3).value();
  // Feature 0 values are continuous draws — effectively unique keys.
  std::multiset<double> seen;
  for (size_t i = 0; i < s.train.num_rows(); ++i) {
    seen.insert(s.train.Feature(i, 0));
  }
  for (size_t i = 0; i < s.validation.num_rows(); ++i) {
    EXPECT_EQ(seen.count(s.validation.Feature(i, 0)), 0u);
  }
  for (size_t i = 0; i < s.test.num_rows(); ++i) {
    EXPECT_EQ(seen.count(s.test.Feature(i, 0)), 0u);
  }
}

TEST(SplitTest, CustomFractions) {
  const Dataset d = MakeData(100);
  Result<TrainValTest> s = SplitDataset(d, 0.6, 0.2, 0.2, 1);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value().train.num_rows(), 60u);
}

TEST(SplitTest, RejectsBadFractions) {
  const Dataset d = MakeData(100);
  EXPECT_FALSE(SplitDataset(d, 0.0, 0.5, 0.5, 1).ok());
  EXPECT_FALSE(SplitDataset(d, 0.6, 0.5, 0.5, 1).ok());
  EXPECT_FALSE(SplitDataset(d, -0.1, 0.5, 0.5, 1).ok());
}

TEST(SplitTest, RejectsTinyDataset) {
  const Dataset d =
      Dataset::Create({"a"}, {1.0, 2.0}, 1, {0, 1}, {}).value();
  EXPECT_FALSE(SplitDatasetDefault(d, 1).ok());
}

}  // namespace
}  // namespace falcc
