#include "eval/pareto.h"

#include <gtest/gtest.h>

namespace falcc {
namespace {

TEST(ParetoFrontTest, SinglePointIsOptimal) {
  const std::vector<QualityPoint> points = {{0.8, 0.1}};
  EXPECT_EQ(ParetoFront(points), (std::vector<bool>{true}));
}

TEST(ParetoFrontTest, DominatedPointExcluded) {
  const std::vector<QualityPoint> points = {
      {0.9, 0.1},  // dominates the next
      {0.8, 0.2},
  };
  EXPECT_EQ(ParetoFront(points), (std::vector<bool>{true, false}));
}

TEST(ParetoFrontTest, TradeoffPointsBothOptimal) {
  const std::vector<QualityPoint> points = {
      {0.9, 0.3},
      {0.7, 0.1},
  };
  EXPECT_EQ(ParetoFront(points), (std::vector<bool>{true, true}));
}

TEST(ParetoFrontTest, EqualPointsBothOptimal) {
  const std::vector<QualityPoint> points = {{0.8, 0.2}, {0.8, 0.2}};
  EXPECT_EQ(ParetoFront(points), (std::vector<bool>{true, true}));
}

TEST(ParetoFrontTest, ChainOfDomination) {
  const std::vector<QualityPoint> points = {
      {0.9, 0.1}, {0.85, 0.15}, {0.8, 0.2}, {0.95, 0.05}};
  EXPECT_EQ(ParetoFront(points),
            (std::vector<bool>{false, false, false, true}));
}

TEST(ParetoFrontTest, PartialDominationOnOneAxis) {
  // Same accuracy, different bias: only the lower-bias one survives.
  const std::vector<QualityPoint> points = {{0.8, 0.1}, {0.8, 0.3}};
  EXPECT_EQ(ParetoFront(points), (std::vector<bool>{true, false}));
}

TEST(TopKByLossTest, OrdersByCombinedLoss) {
  const std::vector<QualityPoint> points = {
      {0.5, 0.5},   // L = 0.50
      {0.9, 0.3},   // L = 0.20
      {0.8, 0.0},   // L = 0.10
      {0.99, 0.5},  // L = 0.255
  };
  const std::vector<size_t> top = TopKByLoss(points, 3, 0.5);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 2u);
  EXPECT_EQ(top[1], 1u);
  EXPECT_EQ(top[2], 3u);
}

TEST(TopKByLossTest, ExactTiesBrokenByIndex) {
  // Identical points have bit-identical losses: stable sort keeps order.
  const std::vector<QualityPoint> points = {{0.8, 0.2}, {0.8, 0.2}};
  const std::vector<size_t> top = TopKByLoss(points, 2, 0.5);
  EXPECT_EQ(top[0], 0u);
  EXPECT_EQ(top[1], 1u);
}

TEST(TopKByLossTest, LambdaShiftsRanking) {
  const std::vector<QualityPoint> points = {
      {0.99, 0.5},  // great accuracy, bad bias
      {0.6, 0.01},  // poor accuracy, great bias
  };
  EXPECT_EQ(TopKByLoss(points, 1, 1.0)[0], 0u);  // accuracy only
  EXPECT_EQ(TopKByLoss(points, 1, 0.0)[0], 1u);  // bias only
}

TEST(TopKByLossTest, KLargerThanSize) {
  const std::vector<QualityPoint> points = {{0.5, 0.5}};
  EXPECT_EQ(TopKByLoss(points, 10, 0.5).size(), 1u);
}

TEST(TopKByLossTest, EmptyInput) {
  EXPECT_TRUE(TopKByLoss({}, 3, 0.5).empty());
}

}  // namespace
}  // namespace falcc
