// End-to-end integration tests: full FALCC pipeline against the paper's
// qualitative claims on controlled synthetic data.

#include <gtest/gtest.h>

#include "baselines/falces.h"
#include "core/falcc.h"
#include "data/split.h"
#include "datagen/benchmark_data.h"
#include "datagen/synthetic.h"
#include "eval/experiment.h"
#include "ml/decision_tree.h"
#include "util/timer.h"

namespace falcc {
namespace {

TEST(IntegrationTest, FalccOnlineOrdersOfMagnitudeFasterThanFalces) {
  // The paper's Fig. 6 headline: FALCC's online phase is a lookup,
  // FALCES's is a kNN search plus combination assessment.
  SyntheticConfig cfg;
  cfg.num_samples = 3000;
  cfg.seed = 1;
  const Dataset d = GenerateImplicitBias(cfg).value();
  const TrainValTest s = SplitDatasetDefault(d, 4).value();

  FalccOptions falcc_opt;
  falcc_opt.seed = 4;
  falcc_opt.trainer.estimator_grid = {5};
  falcc_opt.trainer.pool_size = 3;
  const FalccModel falcc_model =
      FalccModel::Train(s.train, s.validation, falcc_opt).value();

  FalcesOptions falces_opt;
  falces_opt.prefilter = true;  // FALCES-FASTEST
  falces_opt.seed = 4;
  const FalcesModel falces_model =
      FalcesModel::Train(s.train, s.validation, falces_opt).value();

  const size_t n = std::min<size_t>(200, s.test.num_rows());
  Timer t1;
  for (size_t i = 0; i < n; ++i) falcc_model.Classify(s.test.Row(i));
  const double falcc_time = t1.ElapsedSeconds();
  Timer t2;
  for (size_t i = 0; i < n; ++i) falces_model.Classify(s.test.Row(i));
  const double falces_time = t2.ElapsedSeconds();

  EXPECT_LT(falcc_time * 10.0, falces_time)
      << "falcc=" << falcc_time << "s falces=" << falces_time << "s";
}

TEST(IntegrationTest, FalccImprovesLocalBiasOverBestSingleModel) {
  // On proxy-biased data, per-region ensemble selection should achieve
  // lower or equal cluster-weighted bias than the single globally most
  // accurate pool member.
  SyntheticConfig cfg;
  cfg.num_samples = 4000;
  cfg.bias = 0.4;
  cfg.seed = 2;
  const Dataset d = GenerateImplicitBias(cfg).value();

  ExperimentOptions opt;
  opt.seed = 3;
  opt.eval_clusters = 6;
  const Experiment exp = Experiment::Create(d, opt).value();
  const EvalMeasurement falcc = exp.Run(Algorithm::kFalcc).value();

  // A single unconstrained decision tree as reference.
  DecisionTreeOptions dt;
  dt.max_depth = 7;
  DecisionTree tree(dt);
  ASSERT_TRUE(tree.Fit(exp.splits().train).ok());
  Timer timer;
  const std::vector<int> preds = PredictAll(tree, exp.splits().test);
  const EvalMeasurement plain =
      exp.Measure(preds, timer.ElapsedSeconds()).value();

  EXPECT_LE(falcc.local_bias, plain.local_bias + 0.03);
}

TEST(IntegrationTest, ProxyMitigationReducesGlobalBiasOnImplicitData) {
  // Fig. 5's qualitative claim: on data with strong implicit bias, the
  // mitigation strategies reduce FALCC's global bias.
  SyntheticConfig cfg;
  cfg.num_samples = 4000;
  cfg.bias = 0.5;
  cfg.seed = 5;
  const Dataset d = GenerateImplicitBias(cfg).value();
  const TrainValTest s = SplitDatasetDefault(d, 6).value();

  auto global_bias = [&](ProxyMitigation strategy) {
    FalccOptions opt;
    opt.seed = 6;
    opt.fixed_k = 6;
    opt.proxy.strategy = strategy;
    opt.proxy.removal_threshold = 0.15;
    const FalccModel model =
        FalccModel::Train(s.train, s.validation, opt).value();
    const std::vector<int> preds = model.ClassifyAll(s.test);
    const GroupIndex index = GroupIndex::Build(s.test).value();
    GroupedPredictions in;
    in.labels = s.test.labels();
    in.predictions = preds;
    const std::vector<size_t> groups = index.GroupsOf(s.test).value();
    in.groups = groups;
    in.num_groups = index.num_groups();
    return DemographicParity(in).value();
  };

  const double none = global_bias(ProxyMitigation::kNone);
  const double reweigh = global_bias(ProxyMitigation::kReweigh);
  const double remove = global_bias(ProxyMitigation::kRemove);
  // At least one mitigation strategy should not make things notably
  // worse; typically both reduce the bias.
  EXPECT_LE(std::min(reweigh, remove), none + 0.05);
}

TEST(IntegrationTest, FullTableFivePipelineOnOneConfig) {
  // A miniature Tab. 5 cell: every default algorithm runs on one split
  // and produces bounded measurements.
  const Dataset d =
      GenerateBenchmarkDataset(CompasSpec(), 11, 0.25).value();
  ExperimentOptions opt;
  opt.seed = 11;
  opt.eval_clusters = 4;
  const Experiment exp = Experiment::Create(d, opt).value();
  for (Algorithm a : DefaultAlgorithms()) {
    Result<EvalMeasurement> m = exp.Run(a);
    ASSERT_TRUE(m.ok()) << AlgorithmName(a) << ": "
                        << m.status().ToString();
    EXPECT_GT(m.value().accuracy, 0.3) << AlgorithmName(a);
    EXPECT_LE(m.value().global_bias, 1.0);
  }
}

TEST(IntegrationTest, FairInputVariantsRun) {
  const Dataset d =
      GenerateBenchmarkDataset(CompasSpec(), 13, 0.15).value();
  ExperimentOptions opt;
  opt.seed = 13;
  opt.eval_clusters = 3;
  const Experiment exp = Experiment::Create(d, opt).value();
  for (Algorithm a : FairInputAlgorithms()) {
    Result<EvalMeasurement> m = exp.Run(a);
    ASSERT_TRUE(m.ok()) << AlgorithmName(a) << ": "
                        << m.status().ToString();
    EXPECT_GT(m.value().accuracy, 0.3) << AlgorithmName(a);
  }
}

TEST(IntegrationTest, MultiGroupDatasetEndToEnd) {
  // Adult with sex x race (4 sensitive groups) through FALCC.
  const Dataset d =
      GenerateBenchmarkDataset(AdultSexRaceSpec(), 17, 0.05).value();
  const TrainValTest s = SplitDatasetDefault(d, 17).value();
  FalccOptions opt;
  opt.seed = 17;
  opt.trainer.estimator_grid = {5};
  opt.trainer.pool_size = 3;
  const FalccModel model =
      FalccModel::Train(s.train, s.validation, opt).value();
  EXPECT_EQ(model.num_groups(), 4u);
  const std::vector<int> preds = model.ClassifyAll(s.test);
  EXPECT_EQ(preds.size(), s.test.num_rows());
}

}  // namespace
}  // namespace falcc
