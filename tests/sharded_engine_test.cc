#include "serve/sharded_engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/falcc.h"
#include "data/split.h"
#include "datagen/synthetic.h"
#include "serve/batch_queue.h"
#include "serve/shard_router.h"
#include "testing/invariants.h"
#include "util/parallel.h"

namespace falcc {
namespace {

TrainValTest MakeSplits(uint64_t seed = 11, size_t n = 2000) {
  SyntheticConfig cfg;
  cfg.num_samples = n;
  cfg.seed = 7;
  const Dataset d = GenerateImplicitBias(cfg).value();
  return SplitDatasetDefault(d, seed).value();
}

FalccOptions FastOptions() {
  FalccOptions opt;
  opt.seed = 42;
  opt.trainer.estimator_grid = {5};
  opt.trainer.depth_grid = {1, 4};
  opt.trainer.pool_size = 3;
  return opt;
}

FalccModel TrainSmallModel() {
  const TrainValTest s = MakeSplits();
  return FalccModel::Train(s.train, s.validation, FastOptions()).value();
}

// --- Router ---------------------------------------------------------------

TEST(ShardRouterTest, RouteKeyIsStableAcrossInstances) {
  serve::ShardRouter a(8);
  serve::ShardRouter b(8);
  for (uint64_t key = 0; key < 1000; ++key) {
    const size_t shard = a.RouteKey(key);
    EXPECT_LT(shard, 8u);
    // Pure function of (key, num_shards): no instance state involved.
    EXPECT_EQ(shard, b.RouteKey(key));
    EXPECT_EQ(shard, a.RouteKey(key));  // and idempotent
  }
}

TEST(ShardRouterTest, RouteKeySpreadsAcrossShards) {
  serve::ShardRouter router(4);
  std::vector<size_t> hits(4, 0);
  const size_t kKeys = 4000;
  for (uint64_t key = 0; key < kKeys; ++key) hits[router.RouteKey(key)]++;
  // splitmix64 finalizer: sequential keys land near-uniformly. A loose
  // bound catches a broken hash without flaking on distribution noise.
  for (size_t shard = 0; shard < 4; ++shard) {
    EXPECT_GT(hits[shard], kKeys / 8) << "shard " << shard;
    EXPECT_LT(hits[shard], kKeys / 2) << "shard " << shard;
  }
}

TEST(ShardRouterTest, RoundRobinCyclesAllShards) {
  serve::ShardRouter router(3);
  std::vector<size_t> hits(3, 0);
  for (int i = 0; i < 9; ++i) hits[router.RouteNext()]++;
  for (size_t shard = 0; shard < 3; ++shard) EXPECT_EQ(hits[shard], 3u);
}

// --- Submit ring ----------------------------------------------------------

TEST(SubmitRingTest, FifoAndCapacity) {
  serve::SubmitRing ring(3);  // rounds up to 4
  EXPECT_EQ(ring.capacity(), 4u);
  serve::ShardTask tasks[5];
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.Push(&tasks[i]));
  EXPECT_FALSE(ring.Push(&tasks[4]));  // full: backpressure, not a block
  for (int i = 0; i < 4; ++i) EXPECT_EQ(ring.Pop(), &tasks[i]);
  EXPECT_EQ(ring.Pop(), nullptr);
  // Slots recycle after wrap-around.
  EXPECT_TRUE(ring.Push(&tasks[4]));
  EXPECT_EQ(ring.Pop(), &tasks[4]);
}

TEST(SubmitRingTest, ConcurrentProducersLoseNothing) {
  serve::SubmitRing ring(1 << 12);
  const size_t kProducers = 4;
  const size_t kPerProducer = 500;
  std::vector<serve::ShardTask> tasks(kProducers * kPerProducer);
  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (size_t i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(ring.Push(&tasks[p * kPerProducer + i]));
      }
    });
  }
  std::set<serve::ShardTask*> seen;
  size_t popped = 0;
  while (popped < tasks.size()) {
    serve::ShardTask* task = ring.Pop();
    if (task == nullptr) {
      std::this_thread::yield();
      continue;
    }
    EXPECT_TRUE(seen.insert(task).second) << "duplicate pop";
    ++popped;
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(seen.size(), tasks.size());
  EXPECT_EQ(ring.Pop(), nullptr);
}

// --- Service-time model ---------------------------------------------------

TEST(ServiceTimeModelTest, ConvergesToObservedCost) {
  // Seeded wrong on purpose; feed a consistent 10 µs/row + 50 µs
  // overhead workload and the EWMA must converge near it.
  serve::ServiceTimeModel model(/*seed_row_seconds=*/1e-6,
                                /*seed_overhead_seconds=*/1e-6,
                                /*alpha=*/0.25);
  const double kRow = 10e-6;
  const double kOverhead = 50e-6;
  for (int i = 0; i < 200; ++i) {
    const size_t rows = 1 + (i % 32);
    model.Update(rows, kOverhead + static_cast<double>(rows) * kRow);
  }
  // Attribution between the two terms is approximate (part of the
  // overhead can settle in the per-row term); what matters is that the
  // estimate is bracketed by the true marginal cost and the fully
  // amortized single-row cost.
  EXPECT_GE(model.per_row_seconds(), 0.5 * kRow);
  EXPECT_LE(model.per_row_seconds(), kRow + kOverhead);
  // Predictions grow monotonically with batch size.
  EXPECT_LT(model.Predict(1), model.Predict(16));
  EXPECT_LT(model.Predict(16), model.Predict(256));
  // Predict(32) lands within 2x of the true cost of a 32-row batch.
  const double truth = kOverhead + 32 * kRow;
  EXPECT_GT(model.Predict(32), 0.5 * truth);
  EXPECT_LT(model.Predict(32), 2.0 * truth);
}

TEST(ServiceTimeModelTest, SurvivesDegenerateObservations) {
  serve::ServiceTimeModel model(2e-6, 20e-6, 0.125);
  model.Update(0, 1.0);       // zero rows: ignored, no divide-by-zero
  model.Update(8, 0.0);       // faster than the overhead estimate
  model.Update(8, -1.0);      // clock went backwards
  EXPECT_GT(model.per_row_seconds(), 0.0);
  EXPECT_GE(model.overhead_seconds(), 0.0);
  EXPECT_GT(model.Predict(100), model.Predict(1));
}

// --- Sharded engine -------------------------------------------------------

TEST(ShardedEngineTest, ShardCountsMatchSingleLoopBitIdentically) {
  // The routing-determinism contract of the tentpole: 1, 2, and 8 shards
  // all reproduce the single-sample loop exactly — label, probability,
  // and the full audit trail — under both round-robin and keyed routing.
  const TrainValTest s = MakeSplits();
  const FalccModel model =
      FalccModel::Train(s.train, s.validation, FastOptions()).value();
  const size_t kShardCounts[] = {1, 2, 8};
  const Status verdict =
      testing::CheckShardedMatchesSingleLoop(model, s.test, kShardCounts);
  EXPECT_TRUE(verdict.ok()) << verdict.ToString();
}

TEST(ShardedEngineTest, SubmitBeforeInstallIsUnavailable) {
  serve::ShardedEngineOptions options;
  options.num_shards = 2;
  serve::ShardedEngine engine(options);
  const std::vector<double> sample(4, 0.5);
  const Result<serve::ShardTicket> ticket = engine.Submit(sample);
  ASSERT_FALSE(ticket.ok());
  EXPECT_EQ(ticket.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(engine.GetMetrics().errors, 1u);
}

TEST(ShardedEngineTest, ValidatesOnSubmittingThread) {
  serve::ShardedEngineOptions options;
  options.num_shards = 2;
  serve::ShardedEngine engine(options);
  engine.Install(TrainSmallModel());
  const size_t width = engine.snapshot()->num_features();

  const std::vector<double> wrong_width(width + 1, 0.5);
  const Result<serve::ShardTicket> bad = engine.Submit(wrong_width);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);

  std::vector<double> poisoned(width, 0.5);
  poisoned[0] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(engine.Submit(poisoned).ok());
}

TEST(ShardedEngineTest, ClassifyMatchesModelAcrossRoutingModes) {
  serve::ShardedEngineOptions options;
  options.num_shards = 4;
  serve::ShardedEngine engine(options);
  engine.Install(TrainSmallModel());
  const std::shared_ptr<const FalccModel> model = engine.snapshot();
  const TrainValTest s = MakeSplits();

  for (size_t i = 0; i < 64; ++i) {
    const auto row = s.test.Row(i);
    // Round-robin.
    const SampleDecision rr = engine.Classify(row).value();
    EXPECT_EQ(rr.label, model->Classify(row)) << "row " << i;
    EXPECT_EQ(rr.probability, model->ClassifyProba(row)) << "row " << i;
    // Keyed affinity: same decision regardless of which shard serves it.
    const serve::ShardTicket keyed = engine.SubmitWithKey(i, row).value();
    const SampleDecision kd = keyed.Wait().value();
    EXPECT_EQ(kd.label, rr.label) << "row " << i;
    EXPECT_EQ(kd.probability, rr.probability) << "row " << i;
  }
  // Per-ticket totals are recorded after Complete() wakes the waiter:
  // join the workers before asserting on the histogram.
  engine.Shutdown();
  const serve::MetricsSnapshot metrics = engine.GetMetrics();
  EXPECT_EQ(metrics.samples, 128u);
  EXPECT_EQ(metrics.errors, 0u);
  EXPECT_GE(metrics.flushes, 1u);
  EXPECT_EQ(metrics.total.count, 128u);  // true per-ticket latencies
}

TEST(ShardedEngineTest, KeyedSubmissionsLandOnTheRoutedShard) {
  serve::ShardedEngineOptions options;
  options.num_shards = 4;
  serve::ShardedEngine engine(options);
  engine.Install(TrainSmallModel());
  const size_t width = engine.snapshot()->num_features();
  const std::vector<double> sample(width, 0.25);

  // Pick keys routing to one shard; all their samples must be counted
  // by exactly that shard's metrics.
  const uint64_t kProbeKeys = 64;
  std::vector<uint64_t> counts_before(4);
  for (size_t shard = 0; shard < 4; ++shard) {
    counts_before[shard] = engine.GetShardMetrics(shard).samples;
  }
  std::vector<uint64_t> expected(4, 0);
  for (uint64_t key = 0; key < kProbeKeys; ++key) {
    expected[engine.RouteKey(key)]++;
    engine.SubmitWithKey(key, sample).value().Wait().value();
  }
  for (size_t shard = 0; shard < 4; ++shard) {
    EXPECT_EQ(engine.GetShardMetrics(shard).samples - counts_before[shard],
              expected[shard])
        << "shard " << shard;
  }
}

TEST(ShardedEngineTest, IdleTrafficCollapsesToTinyBatches) {
  serve::ShardedEngineOptions options;
  options.num_shards = 1;
  serve::ShardedEngine engine(options);
  engine.Install(TrainSmallModel());
  const size_t width = engine.snapshot()->num_features();
  const std::vector<double> sample(width, 0.5);

  // Sequential closed-loop traffic: each submit waits for its decision,
  // so the ring holds at most one task and the adaptive flush must not
  // sit on it waiting for company (no max_delay stalling).
  const size_t kRequests = 40;
  for (size_t i = 0; i < kRequests; ++i) {
    engine.Classify(sample).value();
  }
  const serve::ShardStatus status = engine.GetShardStatus(0);
  EXPECT_EQ(status.samples, kRequests);
  // Batch size ≈ 1 when idle: flushes track samples almost 1:1.
  EXPECT_GE(status.flushes, kRequests / 2);
  EXPECT_GT(status.ewma_row_seconds, 0.0);
}

TEST(ShardedEngineTest, BacklogGrowsBatchesUnderLoad) {
  serve::ShardedEngineOptions options;
  options.num_shards = 1;
  options.start_workers = false;  // let a backlog accumulate
  serve::ShardedEngine engine(options);
  engine.Install(TrainSmallModel());
  const size_t width = engine.snapshot()->num_features();
  const std::vector<double> sample(width, 0.5);

  std::vector<serve::ShardTicket> tickets;
  for (int i = 0; i < 100; ++i) {
    tickets.push_back(engine.Submit(sample).value());
  }
  // No workers ran: Shutdown drains the ring and fails the tickets
  // rather than stranding them.
  engine.Shutdown();
  for (const auto& ticket : tickets) {
    const Result<SampleDecision> d = ticket.Wait();
    ASSERT_FALSE(d.ok());
    EXPECT_EQ(d.status().code(), StatusCode::kUnavailable);
  }
}

TEST(ShardedEngineTest, RingBackpressureIsUnavailable) {
  serve::ShardedEngineOptions options;
  options.num_shards = 1;
  options.ring_capacity = 4;
  options.start_workers = false;  // nothing drains: ring must fill
  serve::ShardedEngine engine(options);
  engine.Install(TrainSmallModel());
  const size_t width = engine.snapshot()->num_features();
  const std::vector<double> sample(width, 0.5);

  std::vector<serve::ShardTicket> held;
  for (int i = 0; i < 4; ++i) held.push_back(engine.Submit(sample).value());
  const Result<serve::ShardTicket> overflow = engine.Submit(sample);
  ASSERT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(overflow.status().message().find("ring"), std::string::npos);
}

TEST(ShardedEngineTest, ShutdownDrainsPendingAndRejectsNew) {
  serve::ShardedEngineOptions options;
  options.num_shards = 2;
  serve::ShardedEngine engine(options);
  engine.Install(TrainSmallModel());
  const std::shared_ptr<const FalccModel> model = engine.snapshot();
  const std::vector<double> sample(model->num_features(), 0.75);

  std::vector<serve::ShardTicket> tickets;
  for (int i = 0; i < 32; ++i) {
    tickets.push_back(engine.Submit(sample).value());
  }
  engine.Shutdown();
  // Every pre-shutdown ticket completed with a real decision.
  for (const auto& ticket : tickets) {
    const SampleDecision d = ticket.Wait().value();
    EXPECT_EQ(d.label, model->Classify(sample));
  }
  const Result<serve::ShardTicket> after = engine.Submit(sample);
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kUnavailable);
  engine.Shutdown();  // idempotent
}

TEST(ShardedEngineTest, WorkersRunWithParallelismCapped) {
  // The oversubscription guard: a flush inside a shard worker must not
  // fan out through the global pool. Indirect but deterministic probe:
  // worker_parallelism=1 keeps every kernel on the worker thread, so a
  // fleet-wide storm from a single-core pool cannot deadlock or
  // oversubscribe — and decisions still match the model.
  serve::ShardedEngineOptions options;
  options.num_shards = 4;
  options.worker_parallelism = 1;
  serve::ShardedEngine engine(options);
  engine.Install(TrainSmallModel());
  const std::shared_ptr<const FalccModel> model = engine.snapshot();
  const TrainValTest s = MakeSplits();

  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      for (size_t i = c; i < 256; i += 4) {
        const auto row = s.test.Row(i % s.test.num_rows());
        const Result<SampleDecision> d = engine.Classify(row);
        if (!d.ok() || d.value().label != model->Classify(row)) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// The TSan target of tools/check.sh: hot-swaps racing sharded
// submissions from multiple client threads. Any data race in the ring,
// the wakeup protocol, or the snapshot handoff fails the sanitizer run.
TEST(ShardedEngineTest, HotSwapUnderConcurrentShardedSubmits) {
  const TrainValTest s = MakeSplits();
  const FalccModel original =
      FalccModel::Train(s.train, s.validation, FastOptions()).value();
  const std::string path = ::testing::TempDir() + "/sharded_hot_swap.falcc";
  ASSERT_TRUE(original.SaveToFile(path).ok());

  serve::ShardedEngineOptions options;
  options.num_shards = 2;
  serve::ShardedEngine engine(options);
  ASSERT_TRUE(engine.ReloadFromFile(path).ok());
  const std::vector<int> expected = original.ClassifyAll(s.test);

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      size_t i = c;
      while (!stop.load(std::memory_order_relaxed)) {
        const size_t row = i % s.test.num_rows();
        const Result<SampleDecision> d =
            (c % 2 == 0) ? engine.Classify(s.test.Row(row))
                         : [&] {
                             auto t = engine.SubmitWithKey(row, s.test.Row(row));
                             return t.ok() ? t.value().Wait()
                                           : Result<SampleDecision>(t.status());
                           }();
        if (!d.ok() || d.value().label != expected[row]) failures.fetch_add(1);
        ++i;
      }
    });
  }
  for (int swap = 0; swap < 10; ++swap) {
    ASSERT_TRUE(engine.ReloadFromFile(path).ok());
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : clients) t.join();
  std::remove(path.c_str());

  // Same artifact on every reload: decisions never waver mid-swap.
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(engine.GetMetrics().errors, 0u);
}

TEST(ShardedEngineTest, FleetMetricsAggregateAllShards) {
  serve::ShardedEngineOptions options;
  options.num_shards = 3;
  serve::ShardedEngine engine(options);
  engine.Install(TrainSmallModel());
  const size_t width = engine.snapshot()->num_features();
  const std::vector<double> sample(width, 0.5);

  const size_t kRequests = 30;  // round-robin: 10 per shard
  std::vector<serve::ShardTicket> tickets;
  for (size_t i = 0; i < kRequests; ++i) {
    tickets.push_back(engine.Submit(sample).value());
  }
  for (const auto& t : tickets) t.Wait().value();
  engine.Shutdown();  // join workers so per-ticket totals are recorded

  uint64_t per_shard_sum = 0;
  for (size_t shard = 0; shard < 3; ++shard) {
    per_shard_sum += engine.GetShardMetrics(shard).samples;
  }
  EXPECT_EQ(per_shard_sum, kRequests);
  const serve::MetricsSnapshot fleet = engine.GetMetrics();
  EXPECT_EQ(fleet.samples, kRequests);
  EXPECT_EQ(fleet.requests, kRequests);
  EXPECT_EQ(fleet.total.count, kRequests);
  EXPECT_EQ(fleet.reloads, 1u);  // the Install, from the inner engine
  EXPECT_GT(fleet.total.p50_seconds, 0.0);
  EXPECT_LE(fleet.total.p50_seconds, fleet.total.p99_seconds);
}

TEST(ShardedEngineTest, ZeroShardsDefaultsToHardwareConcurrency) {
  serve::ShardedEngine engine;  // num_shards = 0
  EXPECT_GE(engine.num_shards(), 1u);
  engine.Install(TrainSmallModel());
  const size_t width = engine.snapshot()->num_features();
  EXPECT_TRUE(engine.Classify(std::vector<double>(width, 0.5)).ok());
}

}  // namespace
}  // namespace falcc
