#include "baselines/lfr.h"

#include <gtest/gtest.h>

#include "data/groups.h"
#include "datagen/synthetic.h"
#include "fairness/metrics.h"
#include "ml/decision_tree.h"

namespace falcc {
namespace {

Dataset MakeBiased(size_t n = 1200, double bias = 0.4, uint64_t seed = 5) {
  SyntheticConfig cfg;
  cfg.num_samples = n;
  cfg.bias = bias;
  cfg.seed = seed;
  return GenerateSocialBias(cfg).value();
}

double DpBias(const Classifier& model, const Dataset& d) {
  const GroupIndex index = GroupIndex::Build(d).value();
  const std::vector<size_t> groups = index.GroupsOf(d).value();
  const std::vector<int> preds = PredictAll(model, d);
  GroupedPredictions in;
  in.labels = d.labels();
  in.predictions = preds;
  in.groups = groups;
  in.num_groups = index.num_groups();
  return DemographicParity(in).value();
}

TEST(LfrTest, TrainingDecreasesLoss) {
  const Dataset d = MakeBiased(600);
  LfrOptions zero;
  zero.max_iterations = 0;
  zero.seed = 3;
  LfrClassifier untrained(zero);
  ASSERT_TRUE(untrained.Fit(d).ok());
  const double loss_before = untrained.EvaluateLoss(d).value();

  LfrOptions trained_opt = zero;
  trained_opt.max_iterations = 120;
  LfrClassifier trained(trained_opt);
  ASSERT_TRUE(trained.Fit(d).ok());
  const double loss_after = trained.EvaluateLoss(d).value();
  EXPECT_LT(loss_after, loss_before);
}

TEST(LfrTest, ReducesBiasVersusPlainTree) {
  const Dataset d = MakeBiased(1500, 0.5);
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(d).ok());
  LfrClassifier lfr;
  ASSERT_TRUE(lfr.Fit(d).ok());
  EXPECT_LT(DpBias(lfr, d), DpBias(tree, d));
}

TEST(LfrTest, RetainsSignal) {
  const Dataset d = MakeBiased(1500, 0.2);
  LfrClassifier lfr;
  ASSERT_TRUE(lfr.Fit(d).ok());
  EXPECT_GT(Accuracy(lfr, d), 0.55);
}

TEST(LfrTest, RepresentationIsSimplex) {
  const Dataset d = MakeBiased(400);
  LfrOptions opt;
  opt.num_prototypes = 8;
  LfrClassifier lfr(opt);
  ASSERT_TRUE(lfr.Fit(d).ok());
  for (size_t i = 0; i < 20; ++i) {
    const std::vector<double> m = lfr.Representation(d.Row(i));
    ASSERT_EQ(m.size(), 8u);
    double sum = 0.0;
    for (double v : m) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(LfrTest, ProbaBounded) {
  const Dataset d = MakeBiased(400);
  LfrClassifier lfr;
  ASSERT_TRUE(lfr.Fit(d).ok());
  for (size_t i = 0; i < 50; ++i) {
    const double p = lfr.PredictProba(d.Row(i));
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(LfrTest, DeterministicForSeed) {
  const Dataset d = MakeBiased(400);
  LfrOptions opt;
  opt.seed = 11;
  opt.max_iterations = 30;
  LfrClassifier a(opt), b(opt);
  ASSERT_TRUE(a.Fit(d).ok());
  ASSERT_TRUE(b.Fit(d).ok());
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(a.PredictProba(d.Row(i)), b.PredictProba(d.Row(i)));
  }
}

TEST(LfrTest, SubsamplingCapsTrainingRows) {
  const Dataset d = MakeBiased(2000);
  LfrOptions opt;
  opt.max_train_rows = 200;
  opt.max_iterations = 20;
  LfrClassifier lfr(opt);
  EXPECT_TRUE(lfr.Fit(d).ok());  // must not blow up; just works on a cap
}

TEST(LfrTest, RejectsBadInputs) {
  const Dataset d = MakeBiased(100);
  LfrOptions opt;
  opt.num_prototypes = 1;
  LfrClassifier lfr(opt);
  EXPECT_FALSE(lfr.Fit(d).ok());

  LfrClassifier lfr2;
  std::vector<double> weights(d.num_rows(), 1.0);
  EXPECT_FALSE(lfr2.Fit(d, weights).ok());  // weights unsupported

  const Dataset no_sens =
      Dataset::Create({"a"}, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 1,
                      {0, 1, 0, 1, 0, 1, 0, 1, 0, 1}, {})
          .value();
  LfrClassifier lfr3;
  EXPECT_FALSE(lfr3.Fit(no_sens).ok());  // needs sensitive groups
}

TEST(LfrTest, CloneKeepsState) {
  const Dataset d = MakeBiased(300);
  LfrOptions opt;
  opt.max_iterations = 20;
  LfrClassifier lfr(opt);
  ASSERT_TRUE(lfr.Fit(d).ok());
  const std::unique_ptr<Classifier> clone = lfr.Clone();
  EXPECT_DOUBLE_EQ(lfr.PredictProba(d.Row(0)),
                   clone->PredictProba(d.Row(0)));
}

}  // namespace
}  // namespace falcc
