#include "ml/logistic_regression.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace falcc {
namespace {

Dataset MakeLinear(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> features;
  std::vector<int> labels;
  for (size_t i = 0; i < n; ++i) {
    const double x0 = rng.Normal();
    const double x1 = rng.Normal();
    features.push_back(x0);
    features.push_back(x1);
    labels.push_back(2.0 * x0 - x1 > 0.0 ? 1 : 0);
  }
  return Dataset::Create({"x0", "x1"}, std::move(features), 2,
                         std::move(labels), {})
      .value();
}

TEST(LogisticRegressionTest, LearnsLinearBoundary) {
  const Dataset train = MakeLinear(2000, 1);
  const Dataset test = MakeLinear(500, 2);
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(train).ok());
  EXPECT_GT(Accuracy(model, test), 0.95);
}

TEST(LogisticRegressionTest, ScaleInvariantViaStandardization) {
  // Same data, one feature scaled by 1e6 — accuracy should not collapse.
  Rng rng(3);
  std::vector<double> features;
  std::vector<int> labels;
  for (size_t i = 0; i < 1000; ++i) {
    const double x0 = rng.Normal() * 1e6;
    const double x1 = rng.Normal();
    features.push_back(x0);
    features.push_back(x1);
    labels.push_back(x0 / 1e6 - x1 > 0.0 ? 1 : 0);
  }
  Dataset d = Dataset::Create({"big", "small"}, std::move(features), 2,
                              std::move(labels), {})
                  .value();
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(d).ok());
  EXPECT_GT(Accuracy(model, d), 0.95);
}

TEST(LogisticRegressionTest, ProbaCalibratedDirection) {
  const Dataset d = MakeLinear(1000, 4);
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(d).ok());
  // A point deep in the positive region has high probability.
  const std::vector<double> positive = {3.0, -3.0};
  const std::vector<double> negative = {-3.0, 3.0};
  EXPECT_GT(model.PredictProba(positive), 0.9);
  EXPECT_LT(model.PredictProba(negative), 0.1);
}

TEST(LogisticRegressionTest, SampleWeightsShiftBoundary) {
  Dataset d = Dataset::Create({"x"}, {1.0, 1.0}, 1, {0, 1}, {}).value();
  LogisticRegression model;
  const std::vector<double> w = {0.01, 0.99};
  ASSERT_TRUE(model.Fit(d, w).ok());
  EXPECT_EQ(model.Predict(d.Row(0)), 1);
}

TEST(LogisticRegressionTest, Deterministic) {
  const Dataset d = MakeLinear(500, 5);
  LogisticRegression a, b;
  ASSERT_TRUE(a.Fit(d).ok());
  ASSERT_TRUE(b.Fit(d).ok());
  for (size_t i = 0; i < d.num_rows(); ++i) {
    EXPECT_DOUBLE_EQ(a.PredictProba(d.Row(i)), b.PredictProba(d.Row(i)));
  }
}

TEST(LogisticRegressionTest, CloneKeepsState) {
  const Dataset d = MakeLinear(300, 6);
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(d).ok());
  const std::unique_ptr<Classifier> clone = model.Clone();
  EXPECT_DOUBLE_EQ(model.PredictProba(d.Row(0)),
                   clone->PredictProba(d.Row(0)));
}

TEST(LogisticRegressionTest, RejectsEmptyData) {
  Dataset empty;
  LogisticRegression model;
  EXPECT_FALSE(model.Fit(empty).ok());
}

TEST(LogisticRegressionTest, CoefficientSignsMatchGenerator) {
  const Dataset d = MakeLinear(2000, 7);
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(d).ok());
  ASSERT_EQ(model.coefficients().size(), 2u);
  EXPECT_GT(model.coefficients()[0], 0.0);  // +2 x0
  EXPECT_LT(model.coefficients()[1], 0.0);  // -1 x1
}

}  // namespace
}  // namespace falcc
