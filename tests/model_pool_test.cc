#include "core/model_pool.h"

#include <gtest/gtest.h>

#include "ml/decision_tree.h"

namespace falcc {
namespace {

Dataset MakeData() {
  return Dataset::Create({"x", "s"}, {1, 0, 2, 1, 3, 0, 4, 1}, 2,
                         {0, 0, 1, 1}, {1})
      .value();
}

std::unique_ptr<Classifier> TrainedTree(const Dataset& d, uint64_t seed) {
  DecisionTreeOptions opt;
  opt.seed = seed;
  auto tree = std::make_unique<DecisionTree>(opt);
  EXPECT_TRUE(tree->Fit(d).ok());
  return tree;
}

TEST(ModelPoolTest, AddAndAccess) {
  const Dataset d = MakeData();
  ModelPool pool;
  pool.Add(TrainedTree(d, 1));
  pool.Add(TrainedTree(d, 2), {0});
  EXPECT_EQ(pool.size(), 2u);
}

TEST(ModelPoolTest, ApplicabilityDefaultsToAllGroups) {
  const Dataset d = MakeData();
  ModelPool pool;
  pool.Add(TrainedTree(d, 1));
  EXPECT_TRUE(pool.Applicable(0, 0));
  EXPECT_TRUE(pool.Applicable(0, 99));
}

TEST(ModelPoolTest, RestrictedApplicability) {
  const Dataset d = MakeData();
  ModelPool pool;
  pool.Add(TrainedTree(d, 1), {1});
  EXPECT_FALSE(pool.Applicable(0, 0));
  EXPECT_TRUE(pool.Applicable(0, 1));
}

TEST(ModelPoolTest, PredictMatrixShape) {
  const Dataset d = MakeData();
  ModelPool pool;
  pool.Add(TrainedTree(d, 1));
  pool.Add(TrainedTree(d, 2));
  const auto votes = pool.PredictMatrix(d);
  ASSERT_EQ(votes.size(), 2u);
  EXPECT_EQ(votes[0].size(), d.num_rows());
  for (const auto& row : votes) {
    for (int v : row) EXPECT_TRUE(v == 0 || v == 1);
  }
}

TEST(EnumerateCombinationsTest, FullCrossProduct) {
  const Dataset d = MakeData();
  ModelPool pool;
  pool.Add(TrainedTree(d, 1));
  pool.Add(TrainedTree(d, 2));
  pool.Add(TrainedTree(d, 3));
  const auto combos = EnumerateCombinations(pool, 2).value();
  EXPECT_EQ(combos.size(), 9u);  // 3^2
  // All combinations distinct.
  for (size_t i = 0; i < combos.size(); ++i) {
    for (size_t j = i + 1; j < combos.size(); ++j) {
      EXPECT_NE(combos[i], combos[j]);
    }
  }
}

TEST(EnumerateCombinationsTest, RespectsApplicability) {
  const Dataset d = MakeData();
  ModelPool pool;
  pool.Add(TrainedTree(d, 1));       // all groups
  pool.Add(TrainedTree(d, 2), {0});  // group 0 only
  const auto combos = EnumerateCombinations(pool, 2).value();
  // Group 0: 2 options; group 1: 1 option -> 2 combos.
  EXPECT_EQ(combos.size(), 2u);
  for (const auto& combo : combos) {
    EXPECT_EQ(combo[1], 0u);  // group 1 must use model 0
  }
}

TEST(EnumerateCombinationsTest, FailsWhenGroupUncovered) {
  const Dataset d = MakeData();
  ModelPool pool;
  pool.Add(TrainedTree(d, 1), {0});
  Result<std::vector<ModelCombination>> combos =
      EnumerateCombinations(pool, 2);
  EXPECT_FALSE(combos.ok());
  EXPECT_EQ(combos.status().code(), StatusCode::kFailedPrecondition);
}

TEST(EnumerateCombinationsTest, EnforcesCombinationLimit) {
  const Dataset d = MakeData();
  ModelPool pool;
  for (int i = 0; i < 10; ++i) pool.Add(TrainedTree(d, i));
  // 10^6 combinations exceed a limit of 1000.
  EXPECT_FALSE(EnumerateCombinations(pool, 6, 1000).ok());
}

TEST(EnumerateCombinationsTest, RejectsEmptyInputs) {
  ModelPool pool;
  EXPECT_FALSE(EnumerateCombinations(pool, 1).ok());
  const Dataset d = MakeData();
  ModelPool pool2;
  pool2.Add(TrainedTree(d, 1));
  EXPECT_FALSE(EnumerateCombinations(pool2, 0).ok());
}

}  // namespace
}  // namespace falcc
