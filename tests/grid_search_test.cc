#include "ml/grid_search.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "data/split.h"
#include "datagen/synthetic.h"
#include "fairness/diversity.h"

namespace falcc {
namespace {

TrainValTest MakeSplits() {
  SyntheticConfig cfg;
  cfg.num_samples = 1500;
  cfg.seed = 3;
  const Dataset d = GenerateImplicitBias(cfg).value();
  return SplitDatasetDefault(d, 11).value();
}

TEST(DiverseTrainerTest, ProducesRequestedPoolSize) {
  const TrainValTest s = MakeSplits();
  DiverseTrainerOptions opt;
  opt.pool_size = 5;
  opt.accuracy_tolerance = 1.0;  // no pruning
  Result<DiversePool> pool = TrainDiversePool(s.train, s.validation, opt);
  ASSERT_TRUE(pool.ok());
  EXPECT_EQ(pool.value().models.size(), 5u);
}

TEST(DiverseTrainerTest, PoolSizeCappedByGrid) {
  const TrainValTest s = MakeSplits();
  DiverseTrainerOptions opt;
  opt.pool_size = 100;  // grid has 2*2*2 = 8 candidates
  opt.accuracy_tolerance = 1.0;
  Result<DiversePool> pool = TrainDiversePool(s.train, s.validation, opt);
  ASSERT_TRUE(pool.ok());
  EXPECT_EQ(pool.value().models.size(), 8u);
}

TEST(DiverseTrainerTest, AccuracyTolerancePrunesWeakCandidates) {
  const TrainValTest s = MakeSplits();
  DiverseTrainerOptions opt;
  opt.pool_size = 8;
  opt.accuracy_tolerance = 0.0;  // only ties with the best survive
  const DiversePool pool =
      TrainDiversePool(s.train, s.validation, opt).value();
  ASSERT_GE(pool.models.size(), 1u);
  // Every surviving model matches the best candidate's accuracy.
  double best = 0.0;
  for (const auto& m : pool.models) {
    best = std::max(best, Accuracy(*m, s.validation));
  }
  for (const auto& m : pool.models) {
    EXPECT_NEAR(Accuracy(*m, s.validation), best, 1e-12);
  }
}

TEST(DiverseTrainerTest, EntropyMatchesSelectedPool) {
  const TrainValTest s = MakeSplits();
  DiverseTrainerOptions opt;
  opt.pool_size = 4;
  const DiversePool pool =
      TrainDiversePool(s.train, s.validation, opt).value();
  std::vector<std::vector<int>> votes;
  for (const auto& m : pool.models) {
    votes.push_back(PredictAll(*m, s.validation));
  }
  EXPECT_NEAR(pool.entropy, EnsembleEntropy(votes).value(), 1e-12);
}

TEST(DiverseTrainerTest, LargerPoolNeverLessDiverseThanGreedyPrefix) {
  // The greedy selection grows entropy-maximally: adding the 4th model to
  // the 3-pool should not reduce the entropy the search reports vs a
  // 3-pool run with identical candidates.
  const TrainValTest s = MakeSplits();
  DiverseTrainerOptions small;
  small.pool_size = 3;
  DiverseTrainerOptions large;
  large.pool_size = 6;
  const double e_small =
      TrainDiversePool(s.train, s.validation, small).value().entropy;
  const double e_large =
      TrainDiversePool(s.train, s.validation, large).value().entropy;
  // Entropy is not monotone in pool size in general, but both must be
  // valid entropies.
  EXPECT_GE(e_small, 0.0);
  EXPECT_LE(e_small, 1.0);
  EXPECT_GE(e_large, 0.0);
  EXPECT_LE(e_large, 1.0);
}

TEST(DiverseTrainerTest, RandomForestFamilyWorks) {
  const TrainValTest s = MakeSplits();
  DiverseTrainerOptions opt;
  opt.family = TrainerFamily::kRandomForest;
  opt.pool_size = 3;
  Result<DiversePool> pool = TrainDiversePool(s.train, s.validation, opt);
  ASSERT_TRUE(pool.ok());
  EXPECT_GE(pool.value().models.size(), 1u);
  EXPECT_LE(pool.value().models.size(), 3u);
  for (const auto& m : pool.value().models) {
    EXPECT_NE(m->Name().find("RandomForest"), std::string::npos);
  }
}

TEST(DiverseTrainerTest, ModelsAreReasonablyAccurate) {
  const TrainValTest s = MakeSplits();
  DiverseTrainerOptions opt;
  const DiversePool pool =
      TrainDiversePool(s.train, s.validation, opt).value();
  // The anchor (first selected) is the most accurate candidate; it must
  // beat chance clearly on this separable dataset.
  EXPECT_GT(Accuracy(*pool.models[0], s.validation), 0.7);
}

TEST(DiverseTrainerTest, RejectsEmptyGrid) {
  const TrainValTest s = MakeSplits();
  DiverseTrainerOptions opt;
  opt.estimator_grid.clear();
  EXPECT_FALSE(TrainDiversePool(s.train, s.validation, opt).ok());
  opt = {};
  opt.try_gini = false;
  opt.try_entropy = false;
  EXPECT_FALSE(TrainDiversePool(s.train, s.validation, opt).ok());
  opt = {};
  opt.pool_size = 0;
  EXPECT_FALSE(TrainDiversePool(s.train, s.validation, opt).ok());
}

TEST(StandardPoolTest, TrainsFiveModels) {
  const TrainValTest s = MakeSplits();
  Result<std::vector<std::unique_ptr<Classifier>>> pool =
      TrainStandardPool(s.train, 1);
  ASSERT_TRUE(pool.ok());
  EXPECT_EQ(pool.value().size(), 5u);
  for (const auto& m : pool.value()) {
    EXPECT_GT(Accuracy(*m, s.validation), 0.55) << m->Name();
  }
}

}  // namespace
}  // namespace falcc
