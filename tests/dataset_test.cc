#include "data/dataset.h"

#include <gtest/gtest.h>

namespace falcc {
namespace {

Dataset MakeSmall() {
  // 3 rows, 2 features ("f", "s"), s is sensitive.
  return Dataset::Create({"f", "s"}, {1.0, 0.0, 2.0, 1.0, 3.0, 0.0}, 2,
                         {0, 1, 1}, {1})
      .value();
}

TEST(DatasetTest, CreateAndAccess) {
  const Dataset d = MakeSmall();
  EXPECT_EQ(d.num_rows(), 3u);
  EXPECT_EQ(d.num_features(), 2u);
  EXPECT_DOUBLE_EQ(d.Feature(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(d.Feature(2, 1), 0.0);
  EXPECT_EQ(d.Label(0), 0);
  EXPECT_EQ(d.Label(2), 1);
  EXPECT_EQ(d.sensitive_features(), (std::vector<size_t>{1}));
}

TEST(DatasetTest, RowSpan) {
  const Dataset d = MakeSmall();
  const auto row = d.Row(1);
  ASSERT_EQ(row.size(), 2u);
  EXPECT_DOUBLE_EQ(row[0], 2.0);
  EXPECT_DOUBLE_EQ(row[1], 1.0);
}

TEST(DatasetTest, Column) {
  const Dataset d = MakeSmall();
  EXPECT_EQ(d.Column(0), (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(DatasetTest, PositiveRate) {
  const Dataset d = MakeSmall();
  EXPECT_NEAR(d.PositiveRate(), 2.0 / 3.0, 1e-12);
}

TEST(DatasetTest, SubsetSelectsAndOrders) {
  const Dataset d = MakeSmall();
  const std::vector<size_t> rows = {2, 0};
  const Dataset sub = d.Subset(rows);
  EXPECT_EQ(sub.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(sub.Feature(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(sub.Feature(1, 0), 1.0);
  EXPECT_EQ(sub.Label(0), 1);
  EXPECT_EQ(sub.sensitive_features(), d.sensitive_features());
}

TEST(DatasetTest, AppendRow) {
  Dataset d = MakeSmall();
  const std::vector<double> row = {9.0, 1.0};
  d.AppendRow(row, 0);
  EXPECT_EQ(d.num_rows(), 4u);
  EXPECT_DOUBLE_EQ(d.Feature(3, 0), 9.0);
  EXPECT_EQ(d.Label(3), 0);
}

TEST(DatasetTest, SetLabel) {
  Dataset d = MakeSmall();
  d.SetLabel(0, 1);
  EXPECT_EQ(d.Label(0), 1);
}

TEST(DatasetTest, CreateRejectsBadShapes) {
  EXPECT_FALSE(Dataset::Create({"a"}, {1.0, 2.0}, 1, {0}, {}).ok());
  EXPECT_FALSE(Dataset::Create({"a", "b"}, {1.0}, 1, {0}, {}).ok());
  EXPECT_FALSE(Dataset::Create({}, {}, 0, {}, {}).ok());
}

TEST(DatasetTest, CreateRejectsNonBinaryLabels) {
  EXPECT_FALSE(Dataset::Create({"a"}, {1.0}, 1, {2}, {}).ok());
}

TEST(DatasetTest, CreateRejectsBadSensitiveIndex) {
  EXPECT_FALSE(Dataset::Create({"a"}, {1.0}, 1, {0}, {5}).ok());
  EXPECT_FALSE(Dataset::Create({"a", "b"}, {1.0, 2.0}, 2, {0}, {1, 1}).ok());
}

TEST(DatasetTest, ConcatDatasets) {
  const Dataset a = MakeSmall();
  const Dataset b = MakeSmall();
  Result<Dataset> c = ConcatDatasets(a, b);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c.value().num_rows(), 6u);
  EXPECT_DOUBLE_EQ(c.value().Feature(3, 0), 1.0);
}

TEST(DatasetTest, ConcatRejectsSchemaMismatch) {
  const Dataset a = MakeSmall();
  const Dataset b =
      Dataset::Create({"x", "s"}, {1.0, 0.0}, 2, {0}, {1}).value();
  EXPECT_FALSE(ConcatDatasets(a, b).ok());
}

}  // namespace
}  // namespace falcc
