// Tests of the delta replication subsystem: feed naming and sniffing,
// publisher sequencing/checkpointing/GC, the puller's in-order and
// out-of-order apply paths, every fault-fallback route (chain break,
// corrupt artifact, persistent gap, deleted checkpoint — the replica
// must never stop serving), redelivery idempotency, late-joiner
// bootstrap, fleet convergence, and the pull-while-classify race the
// TSan stage exercises.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/falcc.h"
#include "data/split.h"
#include "datagen/synthetic.h"
#include "replicate/feed.h"
#include "replicate/fleet.h"
#include "replicate/publisher.h"
#include "replicate/puller.h"
#include "serve/engine.h"
#include "serve/sharded_engine.h"
#include "testing/faulty_stream.h"
#include "testing/mutator.h"

namespace falcc {
namespace {

namespace fs = std::filesystem;

using replicate::ArtifactKind;
using replicate::DeltaPublisher;
using replicate::DeltaPublisherOptions;
using replicate::DeltaPuller;
using replicate::DeltaPullerOptions;
using replicate::DeltaPullerStats;
using replicate::DirectoryFeed;
using replicate::FeedEntry;
using replicate::ParseSequence;
using replicate::PublishedArtifact;
using replicate::PublishReport;
using replicate::PullReport;
using replicate::ReplicaFleet;
using replicate::ReplicaFleetOptions;
using replicate::SequencedName;

TrainValTest MakeSplits(uint64_t seed = 11, size_t n = 2000) {
  SyntheticConfig cfg;
  cfg.num_samples = n;
  cfg.seed = 7;
  const Dataset d = GenerateImplicitBias(cfg).value();
  return SplitDatasetDefault(d, seed).value();
}

FalccOptions FastOptions() {
  FalccOptions opt;
  opt.seed = 42;
  opt.trainer.estimator_grid = {5};
  opt.trainer.depth_grid = {1, 4};
  opt.trainer.pool_size = 3;
  opt.fixed_k = 4;
  return opt;
}

/// One training run for the whole binary; every test deserializes its
/// own copy (FalccModel is move-only, engines own their snapshots).
const std::string& SharedModelBytes() {
  static const std::string* bytes = [] {
    const TrainValTest s = MakeSplits();
    const FalccModel model =
        FalccModel::Train(s.train, s.validation, FastOptions()).value();
    auto* out = new std::string;
    std::ostringstream buffer;
    FALCC_CHECK(model.Save(&buffer).ok(), "test: model save failed");
    *out = buffer.str();
    return out;
  }();
  return *bytes;
}

FalccModel FreshModel() {
  std::istringstream in(SharedModelBytes());
  return FalccModel::Load(&in).value();
}

/// The version after `base`: one cluster's combination rotated to the
/// next pool model — exactly the shape of a monitor refresh.
FalccModel NextVersion(const FalccModel& base, size_t cluster) {
  ModelCombination combo = base.selected_combinations()[cluster];
  combo[0] = (combo[0] + 1) % base.pool().size();
  ClusterRefresh refresh;
  refresh.cluster = cluster;
  refresh.combination = combo;
  refresh.baseline_loss = 0.25;
  return base.CloneWithRefreshes({&refresh, 1}).value();
}

uint64_t HashOf(const FalccModel& model) { return model.ContentHash().value(); }

std::string SaveBytes(const FalccModel& model) {
  std::ostringstream out;
  FALCC_CHECK(model.Save(&out).ok(), "test: save failed");
  return out.str();
}

std::string DeltaBytes(const FalccModel& next, size_t cluster,
                       uint64_t base_hash) {
  std::ostringstream out;
  const size_t clusters[] = {cluster};
  FALCC_CHECK(next.SaveDelta(&out, clusters, base_hash).ok(),
              "test: delta save failed");
  return out.str();
}

std::string FreshDir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  FALCC_CHECK(static_cast<bool>(out), "test: artifact write failed");
}

serve::FalccEngineOptions NoFlusher() {
  serve::FalccEngineOptions options;
  options.start_flusher = false;
  return options;
}

/// Puller options tuned for deterministic tests: retry instantly so a
/// recovery test needs no wall-clock sleeps.
DeltaPullerOptions FastPuller() {
  DeltaPullerOptions options;
  options.backoff_initial_seconds = 0.0;
  return options;
}

DeltaPublisher OpenPublisher(const std::string& dir, size_t checkpoint_every) {
  DeltaPublisherOptions options;
  options.dir = dir;
  options.checkpoint_every = checkpoint_every;
  return DeltaPublisher::Open(options).value();
}

/// Feed with test-controlled visibility: artifacts live on disk (the
/// publisher wrote them), but the feed only reports what the test has
/// exposed — simulating replication transports where artifacts arrive
/// late or out of order.
class ScriptedFeed final : public replicate::DeltaFeed {
 public:
  Result<std::vector<FeedEntry>> Poll(uint64_t after_sequence) override {
    std::vector<FeedEntry> out;
    for (const FeedEntry& entry : visible_) {
      if (entry.sequence > after_sequence) out.push_back(entry);
    }
    std::sort(out.begin(), out.end(),
              [](const FeedEntry& a, const FeedEntry& b) {
                return a.sequence < b.sequence;
              });
    return out;
  }

  void Expose(const PublishedArtifact& artifact, uint64_t base_hash = 0) {
    FeedEntry entry;
    entry.sequence = artifact.sequence;
    entry.kind = artifact.kind;
    entry.path = artifact.path;
    entry.bytes = artifact.bytes;
    entry.base_hash = base_hash;
    visible_.push_back(entry);
  }

 private:
  std::vector<FeedEntry> visible_;
};

// --- Feed naming and sniffing ------------------------------------------

TEST(FeedNameTest, SequencedNameZeroPadsSoDirectoryOrderIsApplyOrder) {
  EXPECT_EQ(SequencedName(7, "delta-x.falcc"), "00000007-delta-x.falcc");
  // The motivating bug: plain version numbers sort wrong past 9.
  const std::string v9 = SequencedName(9, "a.falcc");
  const std::string v10 = SequencedName(10, "a.falcc");
  const std::string v100 = SequencedName(100, "a.falcc");
  EXPECT_LT(v9, v10);
  EXPECT_LT(v10, v100);
  // Past the padding width, consumers parse numbers — names still parse.
  EXPECT_EQ(ParseSequence(SequencedName(123456789012ull, "a.falcc")).value(),
            123456789012ull);
}

TEST(FeedNameTest, ParseSequenceRejectsNonConformingNames) {
  EXPECT_EQ(ParseSequence("00000010-delta.falcc").value(), 10u);
  EXPECT_FALSE(ParseSequence("delta.falcc").ok());
  EXPECT_FALSE(ParseSequence("-delta.falcc").ok());
  EXPECT_FALSE(ParseSequence("").ok());
  EXPECT_FALSE(ParseSequence("99999999999999999999999-x.falcc").ok());
}

TEST(DirectoryFeedTest, OrdersSniffsAndSkipsInProgressWrites) {
  const std::string dir = FreshDir("replicate_feed");
  const FalccModel v0 = FreshModel();
  const uint64_t h0 = HashOf(v0);
  const FalccModel v1 = NextVersion(v0, 0);

  // Written shuffled: a garbage artifact, a full snapshot, a delta, an
  // in-progress `.tmp`, and an unrelated file.
  WriteFile(dir + "/" + SequencedName(3, "delta.falcc"),
            DeltaBytes(v1, 0, h0));
  WriteFile(dir + "/" + SequencedName(1, "garbage.falcc"), "not a snapshot\n");
  WriteFile(dir + "/" + SequencedName(2, "checkpoint.falcc"), SaveBytes(v0));
  WriteFile(dir + "/" + SequencedName(4, "syncing.falcc") + ".tmp", "partial");
  WriteFile(dir + "/README.md", "not an artifact");

  DirectoryFeed feed(dir);
  const std::vector<FeedEntry> entries = feed.Poll(0).value();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].sequence, 1u);
  EXPECT_EQ(entries[0].kind, ArtifactKind::kUnreadable);
  EXPECT_EQ(entries[1].sequence, 2u);
  EXPECT_EQ(entries[1].kind, ArtifactKind::kFull);
  EXPECT_EQ(entries[2].sequence, 3u);
  EXPECT_EQ(entries[2].kind, ArtifactKind::kDelta);
  EXPECT_EQ(entries[2].base_hash, h0);
  EXPECT_GT(entries[2].bytes, 0u);

  // The cursor filter.
  const std::vector<FeedEntry> tail = feed.Poll(2).value();
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].sequence, 3u);

  // A feed over a missing directory fails the poll, not the process.
  DirectoryFeed missing(dir + "/no-such-subdir");
  EXPECT_FALSE(missing.Poll(0).ok());
}

// --- Publisher ----------------------------------------------------------

TEST(PublisherTest, SequencesCheckpointsOnCadenceAndGarbageCollects) {
  const std::string dir = FreshDir("replicate_pub");
  DeltaPublisher publisher = OpenPublisher(dir, /*checkpoint_every=*/2);
  EXPECT_EQ(publisher.next_sequence(), 1u);

  const FalccModel v0 = FreshModel();
  const FalccModel v1 = NextVersion(v0, 0);
  const FalccModel v2 = NextVersion(v1, 1);

  const PublishReport checkpoint =
      publisher.PublishCheckpoint(v0).value();
  ASSERT_EQ(checkpoint.artifacts.size(), 1u);
  EXPECT_EQ(checkpoint.artifacts[0].sequence, 1u);
  EXPECT_EQ(checkpoint.artifacts[0].kind, ArtifactKind::kFull);

  const size_t clusters0[] = {0};
  const PublishReport first =
      publisher.PublishDelta(v1, clusters0, HashOf(v0)).value();
  ASSERT_EQ(first.artifacts.size(), 1u);  // cadence not due yet
  EXPECT_EQ(first.artifacts[0].sequence, 2u);
  EXPECT_EQ(first.artifacts[0].kind, ArtifactKind::kDelta);

  // Second delta trips the cadence: delta + checkpoint of the post-delta
  // state + GC of everything the checkpoint supersedes.
  const size_t clusters1[] = {1};
  const PublishReport second =
      publisher.PublishDelta(v2, clusters1, HashOf(v1)).value();
  ASSERT_EQ(second.artifacts.size(), 2u);
  EXPECT_EQ(second.artifacts[0].sequence, 3u);
  EXPECT_EQ(second.artifacts[0].kind, ArtifactKind::kDelta);
  EXPECT_EQ(second.artifacts[1].sequence, 4u);
  EXPECT_EQ(second.artifacts[1].kind, ArtifactKind::kFull);
  EXPECT_EQ(second.gc_removed, 3u);  // sequences 1..3 superseded

  DirectoryFeed feed(dir);
  const std::vector<FeedEntry> remaining = feed.Poll(0).value();
  ASSERT_EQ(remaining.size(), 1u);
  EXPECT_EQ(remaining[0].sequence, 4u);
  EXPECT_EQ(remaining[0].kind, ArtifactKind::kFull);

  // No half-written artifacts left behind.
  for (const auto& entry : fs::directory_iterator(dir)) {
    EXPECT_NE(entry.path().extension(), ".tmp") << entry.path();
  }

  // A restarted publisher resumes the sequence instead of renumbering.
  DeltaPublisher reopened = OpenPublisher(dir, 2);
  EXPECT_EQ(reopened.next_sequence(), 5u);
}

// --- Puller: the happy chain -------------------------------------------

TEST(PullerTest, BootstrapsFromCheckpointAndAppliesDeltasInOrder) {
  const std::string dir = FreshDir("replicate_chain");
  DeltaPublisher publisher = OpenPublisher(dir, 0);
  const FalccModel v0 = FreshModel();
  const FalccModel v1 = NextVersion(v0, 0);
  const FalccModel v2 = NextVersion(v1, 1);

  publisher.PublishCheckpoint(v0).value();
  const size_t c0[] = {0};
  publisher.PublishDelta(v1, c0, HashOf(v0)).value();
  const size_t c1[] = {1};
  publisher.PublishDelta(v2, c1, HashOf(v1)).value();

  serve::FalccEngine engine(NoFlusher());
  DeltaPuller puller(&engine, std::make_unique<DirectoryFeed>(dir),
                     FastPuller());
  EXPECT_FALSE(puller.ServingHash().ok());  // empty replica

  const PullReport report = puller.PollOnce();
  EXPECT_EQ(report.full_reloads, 1u);   // the bootstrap checkpoint
  EXPECT_EQ(report.deltas_applied, 2u);
  EXPECT_EQ(report.quarantined, 0u);
  EXPECT_FALSE(report.recovery_pending);
  EXPECT_EQ(puller.ServingHash().value(), HashOf(v2));

  // Idle poll: nothing new, nothing churns.
  const uint64_t version = engine.snapshot_version();
  const PullReport idle = puller.PollOnce();
  EXPECT_EQ(idle.entries_seen, 0u);
  EXPECT_EQ(engine.snapshot_version(), version);

  // The replica's decisions are the primary's, bit for bit.
  const TrainValTest s = MakeSplits();
  std::vector<double> flat;
  for (size_t i = 0; i < s.test.num_rows(); ++i) {
    const auto row = s.test.Row(i);
    flat.insert(flat.end(), row.begin(), row.end());
  }
  const ClassifyRequest request{flat, s.test.num_features()};
  const ClassifyResponse primary = v2.ClassifyBatch(request).value();
  const ClassifyResponse replica = engine.ClassifyBatch(request).value();
  ASSERT_EQ(primary.decisions.size(), replica.decisions.size());
  for (size_t i = 0; i < primary.decisions.size(); ++i) {
    const SampleDecision& p = primary.decisions[i];
    const SampleDecision& r = replica.decisions[i];
    EXPECT_TRUE(p.label == r.label && p.probability == r.probability &&
                p.cluster == r.cluster && p.group == r.group &&
                p.model == r.model)
        << "sample " << i;
  }
}

TEST(PullerTest, ShardedEngineFollowsTheSameFeed) {
  const std::string dir = FreshDir("replicate_sharded");
  DeltaPublisher publisher = OpenPublisher(dir, 0);
  const FalccModel v0 = FreshModel();
  const FalccModel v1 = NextVersion(v0, 2);
  publisher.PublishCheckpoint(v0).value();
  const size_t c2[] = {2};
  publisher.PublishDelta(v1, c2, HashOf(v0)).value();

  serve::ShardedEngineOptions options;
  options.num_shards = 2;
  serve::ShardedEngine engine(options);
  DeltaPuller puller(&engine, std::make_unique<DirectoryFeed>(dir),
                     FastPuller());
  puller.PollOnce();
  EXPECT_EQ(puller.ServingHash().value(), HashOf(v1));

  const TrainValTest s = MakeSplits();
  for (size_t i = 0; i < std::min<size_t>(s.test.num_rows(), 32); ++i) {
    const SampleDecision d = engine.Classify(s.test.Row(i)).value();
    EXPECT_EQ(d.label, v1.Classify(s.test.Row(i))) << "row " << i;
  }
  engine.Shutdown();
}

// --- Redelivery idempotency --------------------------------------------

TEST(DeltaIdempotencyTest, RedeliveredDeltaIsASuccessNoOp) {
  const FalccModel v0 = FreshModel();
  const uint64_t h0 = HashOf(v0);
  const FalccModel v1 = NextVersion(v0, 0);
  const uint64_t h1 = HashOf(v1);
  ASSERT_NE(h0, h1);
  const std::string delta = DeltaBytes(v1, 0, h0);

  // Model level: first apply advances the hash; the redelivered copy no
  // longer matches the base hash but its sections are already live, so
  // it succeeds as a no-op instead of failing the chain.
  const FalccModel applied = v0.ApplyDeltaBytes(delta).value();
  EXPECT_EQ(HashOf(applied), h1);
  const FalccModel reapplied = applied.ApplyDeltaBytes(delta).value();
  EXPECT_EQ(HashOf(reapplied), h1);

  // A delta that matches neither the base nor the live sections still
  // fails with the chain-break code.
  const FalccModel v2 = NextVersion(v1, 0);
  const Result<FalccModel> wrong =
      v0.ApplyDeltaBytes(DeltaBytes(v2, 0, h1));
  ASSERT_FALSE(wrong.ok());
  EXPECT_EQ(wrong.status().code(), StatusCode::kFailedPrecondition);

  // Engine level: the redelivery succeeds without reinstalling (no
  // version churn, snapshot untouched).
  serve::FalccEngine engine(NoFlusher());
  engine.Install(FreshModel());
  ASSERT_TRUE(engine.ApplyDeltaBytes(delta).ok());
  const uint64_t version = engine.snapshot_version();
  const std::shared_ptr<const FalccModel> snapshot = engine.snapshot();
  ASSERT_TRUE(engine.ApplyDeltaBytes(delta).ok());
  EXPECT_EQ(engine.snapshot_version(), version);
  EXPECT_EQ(engine.snapshot().get(), snapshot.get());
}

// --- Out-of-order arrivals and gaps ------------------------------------

TEST(PullerTest, BuffersOutOfOrderArrivalsUntilTheGapFills) {
  const std::string dir = FreshDir("replicate_ooo");
  DeltaPublisher publisher = OpenPublisher(dir, 0);
  const FalccModel v0 = FreshModel();
  const FalccModel v1 = NextVersion(v0, 0);
  const FalccModel v2 = NextVersion(v1, 1);
  const PublishedArtifact a1 =
      publisher.PublishCheckpoint(v0).value().artifacts[0];
  const size_t c0[] = {0};
  const PublishedArtifact a2 =
      publisher.PublishDelta(v1, c0, HashOf(v0)).value().artifacts[0];
  const size_t c1[] = {1};
  const PublishedArtifact a3 =
      publisher.PublishDelta(v2, c1, HashOf(v1)).value().artifacts[0];

  auto feed = std::make_unique<ScriptedFeed>();
  ScriptedFeed* script = feed.get();
  DeltaPullerOptions options = FastPuller();
  options.gap_patience_polls = 10;  // patient: this test never falls back
  serve::FalccEngine engine(NoFlusher());
  DeltaPuller puller(&engine, std::move(feed), options);

  // Sequence 3 arrives before sequence 2: it waits in the buffer.
  script->Expose(a1);
  script->Expose(a3, HashOf(v1));
  puller.PollOnce();
  EXPECT_EQ(puller.ServingHash().value(), HashOf(v0));
  EXPECT_EQ(puller.Stats().buffered, 1u);
  puller.PollOnce();
  EXPECT_EQ(puller.ServingHash().value(), HashOf(v0));

  // The gap fills: both deltas apply in order within one poll.
  script->Expose(a2, HashOf(v0));
  const PullReport report = puller.PollOnce();
  EXPECT_EQ(report.deltas_applied, 2u);
  EXPECT_EQ(puller.ServingHash().value(), HashOf(v2));
  const DeltaPullerStats stats = puller.Stats();
  EXPECT_EQ(stats.gap_fallbacks, 0u);
  EXPECT_EQ(stats.recoveries, 0u);
  EXPECT_EQ(stats.buffered, 0u);
}

TEST(PullerTest, PersistentGapFallsBackAndCheckpointJumpsIt) {
  const std::string dir = FreshDir("replicate_gap");
  DeltaPublisher publisher = OpenPublisher(dir, 0);
  const FalccModel v0 = FreshModel();
  const FalccModel v1 = NextVersion(v0, 0);
  const FalccModel v2 = NextVersion(v1, 1);
  const PublishedArtifact a1 =
      publisher.PublishCheckpoint(v0).value().artifacts[0];
  const size_t c0[] = {0};
  publisher.PublishDelta(v1, c0, HashOf(v0)).value();  // sequence 2: lost
  const size_t c1[] = {1};
  const PublishedArtifact a3 =
      publisher.PublishDelta(v2, c1, HashOf(v1)).value().artifacts[0];

  auto feed = std::make_unique<ScriptedFeed>();
  ScriptedFeed* script = feed.get();
  DeltaPullerOptions options = FastPuller();
  options.gap_patience_polls = 1;
  serve::FalccEngine engine(NoFlusher());
  DeltaPuller puller(&engine, std::move(feed), options);

  // Sequence 2 never arrives; the replica keeps serving v0 throughout.
  script->Expose(a1);
  script->Expose(a3, HashOf(v1));
  for (int i = 0; i < 4; ++i) {
    puller.PollOnce();
    EXPECT_EQ(puller.ServingHash().value(), HashOf(v0)) << "poll " << i;
  }
  EXPECT_GE(puller.Stats().gap_fallbacks, 1u);

  // A checkpoint at the head subsumes the lost delta: the replica jumps
  // the gap and converges.
  const PublishedArtifact a4 =
      publisher.PublishCheckpoint(v2).value().artifacts[0];
  script->Expose(a4);
  puller.PollOnce();
  EXPECT_EQ(puller.ServingHash().value(), HashOf(v2));
  EXPECT_FALSE(puller.Stats().recovery_pending);
}

// --- Fault injection ----------------------------------------------------

TEST(PullerFaultTest, MutatedDeltaNeverStopsServingAndRecovers) {
  const FalccModel v0 = FreshModel();
  const uint64_t h0 = HashOf(v0);
  const FalccModel v1 = NextVersion(v0, 0);
  const uint64_t h1 = HashOf(v1);
  const std::string delta = DeltaBytes(v1, 0, h0);
  const std::string full0 = SaveBytes(v0);
  const std::string full1 = SaveBytes(v1);

  const TrainValTest s = MakeSplits();
  std::vector<double> probe;
  const size_t probe_rows = std::min<size_t>(s.test.num_rows(), 16);
  for (size_t i = 0; i < probe_rows; ++i) {
    const auto row = s.test.Row(i);
    probe.insert(probe.end(), row.begin(), row.end());
  }
  const ClassifyRequest request{probe, s.test.num_features()};

  testing::Mutator mutator(7);
  for (int iter = 0; iter < 12; ++iter) {
    const std::string dir = FreshDir("replicate_mut");
    WriteFile(dir + "/" + SequencedName(1, "checkpoint.falcc"), full0);
    WriteFile(dir + "/" + SequencedName(2, "delta.falcc"),
              mutator.Mutate(delta));

    serve::FalccEngine engine(NoFlusher());
    DeltaPuller puller(&engine, std::make_unique<DirectoryFeed>(dir),
                       FastPuller());
    for (int p = 0; p < 6; ++p) puller.PollOnce();

    // Whatever the mutation did, the replica serves a real snapshot —
    // the base, or (if the mutation happened to be semantically inert)
    // the applied version — and classification works.
    const Result<uint64_t> serving = puller.ServingHash();
    ASSERT_TRUE(serving.ok()) << "iter " << iter;
    EXPECT_TRUE(serving.value() == h0 || serving.value() == h1)
        << "iter " << iter;
    EXPECT_TRUE(engine.ClassifyBatch(request).ok()) << "iter " << iter;

    // A later good checkpoint always repairs the replica.
    WriteFile(dir + "/" + SequencedName(3, "checkpoint-good.falcc"), full1);
    for (int p = 0; p < 6 && puller.ServingHash().value() != h1; ++p) {
      puller.PollOnce();
    }
    EXPECT_EQ(puller.ServingHash().value(), h1) << "iter " << iter;
  }
}

TEST(PullerFaultTest, TruncatedArtifactsFailCleanAndQuarantine) {
  const FalccModel v0 = FreshModel();
  const uint64_t h0 = HashOf(v0);
  const FalccModel v1 = NextVersion(v0, 0);
  const std::string delta = DeltaBytes(v1, 0, h0);
  const std::string full = SaveBytes(v0);

  // Loader sweep: a full snapshot interrupted at any offset — short read
  // or device error — returns a clean status, never a crash or a
  // partially applied model.
  const size_t step = std::max<size_t>(1, full.size() / 64);
  for (const testing::FaultMode mode :
       {testing::FaultMode::kTruncate, testing::FaultMode::kError}) {
    for (size_t offset = 0; offset < full.size(); offset += step) {
      testing::FaultyStream in(full, offset, mode);
      EXPECT_FALSE(FalccModel::Load(&in).ok())
          << "offset " << offset << " mode " << static_cast<int>(mode);
    }
  }
  // Delta prefix sweep: every truncation point is rejected.
  const size_t delta_step = std::max<size_t>(1, delta.size() / 64);
  for (size_t len = 0; len < delta.size(); len += delta_step) {
    EXPECT_FALSE(v0.ApplyDeltaBytes(delta.substr(0, len)).ok())
        << "length " << len;
  }

  // Feed level: a truncated delta artifact is quarantined and the
  // replica keeps serving the checkpoint.
  const std::string dir = FreshDir("replicate_trunc");
  WriteFile(dir + "/" + SequencedName(1, "checkpoint.falcc"), full);
  WriteFile(dir + "/" + SequencedName(2, "delta.falcc"),
            delta.substr(0, delta.size() / 2));
  serve::FalccEngine engine(NoFlusher());
  DeltaPuller puller(&engine, std::make_unique<DirectoryFeed>(dir),
                     FastPuller());
  for (int p = 0; p < 4; ++p) puller.PollOnce();
  EXPECT_EQ(puller.ServingHash().value(), h0);
  EXPECT_GE(puller.Stats().quarantined, 1u);
  EXPECT_TRUE(engine.snapshot() != nullptr);
}

TEST(PullerFaultTest, ChainBreakWithDeletedCheckpointKeepsServingUntilRepair) {
  const std::string dir = FreshDir("replicate_deleted");
  DeltaPublisher publisher = OpenPublisher(dir, 0);
  const FalccModel v0 = FreshModel();
  const FalccModel v1 = NextVersion(v0, 0);
  const PublishedArtifact checkpoint =
      publisher.PublishCheckpoint(v0).value().artifacts[0];

  serve::FalccEngine engine(NoFlusher());
  DeltaPuller puller(&engine, std::make_unique<DirectoryFeed>(dir),
                     FastPuller());
  puller.PollOnce();
  ASSERT_EQ(puller.ServingHash().value(), HashOf(v0));

  // The only checkpoint disappears (operator error, aggressive sync),
  // then a delta arrives whose base is not what we serve: chain break
  // with nothing to recover from.
  fs::remove(checkpoint.path);
  const size_t c0[] = {0};
  publisher.PublishDelta(v1, c0, /*base_hash=*/0x1234abcd).value();
  const PullReport broken = puller.PollOnce();
  EXPECT_GE(broken.chain_breaks, 1u);
  EXPECT_TRUE(broken.recovery_pending);
  // Cardinal rule: still serving the last-good snapshot.
  EXPECT_EQ(puller.ServingHash().value(), HashOf(v0));
  EXPECT_GE(puller.Stats().retries, 1u);

  // A fresh checkpoint repairs the fleet.
  publisher.PublishCheckpoint(v1).value();
  for (int p = 0; p < 4 && puller.Stats().recovery_pending; ++p) {
    puller.PollOnce();
  }
  EXPECT_EQ(puller.ServingHash().value(), HashOf(v1));
  EXPECT_FALSE(puller.Stats().recovery_pending);
  EXPECT_GE(puller.Stats().recoveries, 1u);
}

// --- Late joiner and retention -----------------------------------------

TEST(PullerTest, LateJoinerBootstrapsFromTheRetainedTail) {
  const std::string dir = FreshDir("replicate_late");
  DeltaPublisher publisher = OpenPublisher(dir, /*checkpoint_every=*/2);
  FalccModel head = FreshModel();
  publisher.PublishCheckpoint(head).value();
  size_t published = 1;
  for (size_t i = 0; i < 5; ++i) {
    FalccModel next = NextVersion(head, i % head.num_clusters());
    const size_t clusters[] = {i % head.num_clusters()};
    const PublishReport report =
        publisher.PublishDelta(next, clusters, HashOf(head)).value();
    published += report.artifacts.size();
    head = std::move(next);
  }

  // GC pruned the feed's history: far fewer artifacts remain than were
  // published, yet a late joiner still converges on the head.
  DirectoryFeed feed(dir);
  const size_t remaining = feed.Poll(0).value().size();
  EXPECT_LT(remaining, published);

  serve::FalccEngine engine(NoFlusher());
  DeltaPuller puller(&engine, std::make_unique<DirectoryFeed>(dir),
                     FastPuller());
  puller.PollOnce();
  EXPECT_EQ(puller.ServingHash().value(), HashOf(head));
  EXPECT_FALSE(puller.Stats().recovery_pending);
}

// --- Fleet convergence --------------------------------------------------

TEST(FleetTest, ReplicasConvergeToPrimaryWithBitIdenticalDecisions) {
  const std::string dir = FreshDir("replicate_fleet");
  DeltaPublisher publisher = OpenPublisher(dir, 0);
  FalccModel head = FreshModel();
  publisher.PublishCheckpoint(head).value();
  const std::string model_path =
      (fs::path(::testing::TempDir()) / "replicate_fleet_v0.falcc").string();
  ASSERT_TRUE(head.SaveToFile(model_path).ok());

  ReplicaFleetOptions options;
  options.num_replicas = 4;
  options.feed_dir = dir;
  options.puller = FastPuller();
  ReplicaFleet fleet(options);
  ASSERT_TRUE(fleet.Bootstrap(model_path).ok());
  fleet.PollAll();  // consume the seed checkpoint
  ASSERT_TRUE(fleet.ConvergedTo(HashOf(head)));

  for (size_t event = 0; event < 3; ++event) {
    FalccModel next = NextVersion(head, event % head.num_clusters());
    const size_t clusters[] = {event % head.num_clusters()};
    publisher.PublishDelta(next, clusters, HashOf(head)).value();
    head = std::move(next);
    bool converged = false;
    for (int poll = 0; poll < 20 && !converged; ++poll) {
      fleet.PollAll();
      converged = fleet.ConvergedTo(HashOf(head));
    }
    EXPECT_TRUE(converged) << "event " << event;
  }

  // Hash convergence implies decision identity — verify it directly.
  const TrainValTest s = MakeSplits();
  std::vector<double> flat;
  for (size_t i = 0; i < s.test.num_rows(); ++i) {
    const auto row = s.test.Row(i);
    flat.insert(flat.end(), row.begin(), row.end());
  }
  const ClassifyRequest request{flat, s.test.num_features()};
  const ClassifyResponse primary = head.ClassifyBatch(request).value();
  for (size_t r = 0; r < fleet.size(); ++r) {
    const ClassifyResponse replica =
        fleet.engine(r)->ClassifyBatch(request).value();
    ASSERT_EQ(replica.decisions.size(), primary.decisions.size());
    for (size_t i = 0; i < primary.decisions.size(); ++i) {
      const SampleDecision& p = primary.decisions[i];
      const SampleDecision& d = replica.decisions[i];
      ASSERT_TRUE(p.label == d.label && p.probability == d.probability &&
                  p.cluster == d.cluster && p.group == d.group &&
                  p.model == d.model)
          << "replica " << r << " sample " << i;
    }
  }
}

// --- Concurrency (ThreadSanitizer coverage) ----------------------------

// A replica classifies continuously while its background puller applies
// deltas (lock-free hot-swaps) — the pull-while-classify race.
TEST(PullerConcurrencyTest, BackgroundPullWhileClassifyRace) {
  const std::string dir = FreshDir("replicate_race");
  DeltaPublisher publisher = OpenPublisher(dir, 0);
  FalccModel head = FreshModel();
  publisher.PublishCheckpoint(head).value();

  serve::FalccEngine engine(NoFlusher());
  engine.Install(FreshModel());

  DeltaPullerOptions options = FastPuller();
  options.poll_interval_seconds = 1e-3;
  DeltaPuller puller(&engine, std::make_unique<DirectoryFeed>(dir), options);
  puller.Start();
  puller.Start();  // idempotent

  const TrainValTest s = MakeSplits();
  std::vector<double> flat;
  const size_t rows = std::min<size_t>(s.test.num_rows(), 64);
  for (size_t i = 0; i < rows; ++i) {
    const auto row = s.test.Row(i);
    flat.insert(flat.end(), row.begin(), row.end());
  }
  const size_t width = s.test.num_features();

  std::atomic<bool> stop{false};
  std::thread classifier([&] {
    const ClassifyRequest request{flat, width};
    while (!stop.load(std::memory_order_acquire)) {
      const Result<ClassifyResponse> response = engine.ClassifyBatch(request);
      EXPECT_TRUE(response.ok());
    }
  });

  for (size_t event = 0; event < 5; ++event) {
    FalccModel next = NextVersion(head, event % head.num_clusters());
    const size_t clusters[] = {event % head.num_clusters()};
    ASSERT_TRUE(
        publisher.PublishDelta(next, clusters, HashOf(head)).ok());
    head = std::move(next);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  // The background thread converges on the head without manual polls.
  const uint64_t target = HashOf(head);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    const Result<uint64_t> serving = puller.ServingHash();
    if (serving.ok() && serving.value() == target) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop.store(true, std::memory_order_release);
  classifier.join();
  puller.Stop();
  EXPECT_EQ(puller.ServingHash().value(), target);
  EXPECT_EQ(puller.Stats().deltas_applied, 5u);
}

}  // namespace
}  // namespace falcc
