// Tests of the delta replication subsystem: feed naming and sniffing,
// publisher sequencing/checkpointing/GC, the puller's in-order and
// out-of-order apply paths, every fault-fallback route (chain break,
// corrupt artifact, persistent gap, deleted checkpoint — the replica
// must never stop serving), redelivery idempotency, late-joiner
// bootstrap, fleet convergence, and the pull-while-classify race the
// TSan stage exercises. The socket transport rides the same harness:
// wire-codec round trips and reject sweeps, the directory watcher,
// socket fleet convergence, and the partition/fault suite (mid-frame
// drops at every byte offset, heartbeat timeouts, slow-subscriber
// backpressure, publisher restarts).

#include <gtest/gtest.h>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "core/falcc.h"
#include "data/split.h"
#include "datagen/synthetic.h"
#include "io/snapshot.h"
#include "replicate/dir_watcher.h"
#include "replicate/feed.h"
#include "replicate/fleet.h"
#include "replicate/publisher.h"
#include "replicate/puller.h"
#include "replicate/socket_feed.h"
#include "replicate/wire.h"
#include "serve/engine.h"
#include "serve/sharded_engine.h"
#include "testing/faulty_stream.h"
#include "testing/mutator.h"

namespace falcc {
namespace {

namespace fs = std::filesystem;

using replicate::ArtifactKind;
using replicate::DeltaPublisher;
using replicate::DeltaPublisherOptions;
using replicate::DeltaPuller;
using replicate::DeltaPullerOptions;
using replicate::DeltaPullerStats;
using replicate::DirectoryFeed;
using replicate::FeedEntry;
using replicate::ParseSequence;
using replicate::PublishedArtifact;
using replicate::PublishReport;
using replicate::PullReport;
using replicate::DecodeFrame;
using replicate::DirectoryWatcher;
using replicate::EncodeFrame;
using replicate::FrameDecode;
using replicate::FrameDecoder;
using replicate::FrameType;
using replicate::kWireGreeting;
using replicate::kWireHeaderBytes;
using replicate::kWireMagic;
using replicate::ReplicaFleet;
using replicate::ReplicaFleetOptions;
using replicate::SequencedName;
using replicate::SocketFeed;
using replicate::SocketFeedOptions;
using replicate::SocketFeedStats;
using replicate::SocketPublisher;
using replicate::SocketPublisherOptions;
using replicate::SocketPublisherStats;
using replicate::WireFrame;

TrainValTest MakeSplits(uint64_t seed = 11, size_t n = 2000) {
  SyntheticConfig cfg;
  cfg.num_samples = n;
  cfg.seed = 7;
  const Dataset d = GenerateImplicitBias(cfg).value();
  return SplitDatasetDefault(d, seed).value();
}

FalccOptions FastOptions() {
  FalccOptions opt;
  opt.seed = 42;
  opt.trainer.estimator_grid = {5};
  opt.trainer.depth_grid = {1, 4};
  opt.trainer.pool_size = 3;
  opt.fixed_k = 4;
  return opt;
}

/// One training run for the whole binary; every test deserializes its
/// own copy (FalccModel is move-only, engines own their snapshots).
const std::string& SharedModelBytes() {
  static const std::string* bytes = [] {
    const TrainValTest s = MakeSplits();
    const FalccModel model =
        FalccModel::Train(s.train, s.validation, FastOptions()).value();
    auto* out = new std::string;
    std::ostringstream buffer;
    FALCC_CHECK(model.Save(&buffer).ok(), "test: model save failed");
    *out = buffer.str();
    return out;
  }();
  return *bytes;
}

FalccModel FreshModel() {
  std::istringstream in(SharedModelBytes());
  return FalccModel::Load(&in).value();
}

/// The version after `base`: one cluster's combination rotated to the
/// next pool model — exactly the shape of a monitor refresh.
FalccModel NextVersion(const FalccModel& base, size_t cluster) {
  ModelCombination combo = base.selected_combinations()[cluster];
  combo[0] = (combo[0] + 1) % base.pool().size();
  ClusterRefresh refresh;
  refresh.cluster = cluster;
  refresh.combination = combo;
  refresh.baseline_loss = 0.25;
  return base.CloneWithRefreshes({&refresh, 1}).value();
}

uint64_t HashOf(const FalccModel& model) { return model.ContentHash().value(); }

std::string SaveBytes(const FalccModel& model) {
  std::ostringstream out;
  FALCC_CHECK(model.Save(&out).ok(), "test: save failed");
  return out.str();
}

std::string DeltaBytes(const FalccModel& next, size_t cluster,
                       uint64_t base_hash) {
  std::ostringstream out;
  const size_t clusters[] = {cluster};
  FALCC_CHECK(next.SaveDelta(&out, clusters, base_hash).ok(),
              "test: delta save failed");
  return out.str();
}

std::string FreshDir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  FALCC_CHECK(static_cast<bool>(out), "test: artifact write failed");
}

serve::FalccEngineOptions NoFlusher() {
  serve::FalccEngineOptions options;
  options.start_flusher = false;
  return options;
}

/// Puller options tuned for deterministic tests: retry instantly so a
/// recovery test needs no wall-clock sleeps.
DeltaPullerOptions FastPuller() {
  DeltaPullerOptions options;
  options.backoff_initial_seconds = 0.0;
  return options;
}

DeltaPublisher OpenPublisher(const std::string& dir, size_t checkpoint_every) {
  DeltaPublisherOptions options;
  options.dir = dir;
  options.checkpoint_every = checkpoint_every;
  return DeltaPublisher::Open(options).value();
}

/// Feed with test-controlled visibility: artifacts live on disk (the
/// publisher wrote them), but the feed only reports what the test has
/// exposed — simulating replication transports where artifacts arrive
/// late or out of order.
class ScriptedFeed final : public replicate::DeltaFeed {
 public:
  Result<std::vector<FeedEntry>> Poll(uint64_t after_sequence) override {
    std::vector<FeedEntry> out;
    for (const FeedEntry& entry : visible_) {
      if (entry.sequence > after_sequence) out.push_back(entry);
    }
    std::sort(out.begin(), out.end(),
              [](const FeedEntry& a, const FeedEntry& b) {
                return a.sequence < b.sequence;
              });
    return out;
  }

  void Expose(const PublishedArtifact& artifact, uint64_t base_hash = 0) {
    FeedEntry entry;
    entry.sequence = artifact.sequence;
    entry.kind = artifact.kind;
    entry.path = artifact.path;
    entry.bytes = artifact.bytes;
    entry.base_hash = base_hash;
    visible_.push_back(entry);
  }

 private:
  std::vector<FeedEntry> visible_;
};

// --- Feed naming and sniffing ------------------------------------------

TEST(FeedNameTest, SequencedNameZeroPadsSoDirectoryOrderIsApplyOrder) {
  EXPECT_EQ(SequencedName(7, "delta-x.falcc"), "00000007-delta-x.falcc");
  // The motivating bug: plain version numbers sort wrong past 9.
  const std::string v9 = SequencedName(9, "a.falcc");
  const std::string v10 = SequencedName(10, "a.falcc");
  const std::string v100 = SequencedName(100, "a.falcc");
  EXPECT_LT(v9, v10);
  EXPECT_LT(v10, v100);
  // Past the padding width, consumers parse numbers — names still parse.
  EXPECT_EQ(ParseSequence(SequencedName(123456789012ull, "a.falcc")).value(),
            123456789012ull);
}

TEST(FeedNameTest, ParseSequenceRejectsNonConformingNames) {
  EXPECT_EQ(ParseSequence("00000010-delta.falcc").value(), 10u);
  EXPECT_FALSE(ParseSequence("delta.falcc").ok());
  EXPECT_FALSE(ParseSequence("-delta.falcc").ok());
  EXPECT_FALSE(ParseSequence("").ok());
  EXPECT_FALSE(ParseSequence("99999999999999999999999-x.falcc").ok());
}

TEST(DirectoryFeedTest, OrdersSniffsAndSkipsInProgressWrites) {
  const std::string dir = FreshDir("replicate_feed");
  const FalccModel v0 = FreshModel();
  const uint64_t h0 = HashOf(v0);
  const FalccModel v1 = NextVersion(v0, 0);

  // Written shuffled: a garbage artifact, a full snapshot, a delta, an
  // in-progress `.tmp`, and an unrelated file.
  WriteFile(dir + "/" + SequencedName(3, "delta.falcc"),
            DeltaBytes(v1, 0, h0));
  WriteFile(dir + "/" + SequencedName(1, "garbage.falcc"), "not a snapshot\n");
  WriteFile(dir + "/" + SequencedName(2, "checkpoint.falcc"), SaveBytes(v0));
  WriteFile(dir + "/" + SequencedName(4, "syncing.falcc") + ".tmp", "partial");
  WriteFile(dir + "/README.md", "not an artifact");

  DirectoryFeed feed(dir);
  const std::vector<FeedEntry> entries = feed.Poll(0).value();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].sequence, 1u);
  EXPECT_EQ(entries[0].kind, ArtifactKind::kUnreadable);
  EXPECT_EQ(entries[1].sequence, 2u);
  EXPECT_EQ(entries[1].kind, ArtifactKind::kFull);
  EXPECT_EQ(entries[2].sequence, 3u);
  EXPECT_EQ(entries[2].kind, ArtifactKind::kDelta);
  EXPECT_EQ(entries[2].base_hash, h0);
  EXPECT_GT(entries[2].bytes, 0u);

  // The cursor filter.
  const std::vector<FeedEntry> tail = feed.Poll(2).value();
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].sequence, 3u);

  // A feed over a missing directory fails the poll, not the process.
  DirectoryFeed missing(dir + "/no-such-subdir");
  EXPECT_FALSE(missing.Poll(0).ok());
}

// --- Publisher ----------------------------------------------------------

TEST(PublisherTest, SequencesCheckpointsOnCadenceAndGarbageCollects) {
  const std::string dir = FreshDir("replicate_pub");
  DeltaPublisher publisher = OpenPublisher(dir, /*checkpoint_every=*/2);
  EXPECT_EQ(publisher.next_sequence(), 1u);

  const FalccModel v0 = FreshModel();
  const FalccModel v1 = NextVersion(v0, 0);
  const FalccModel v2 = NextVersion(v1, 1);

  const PublishReport checkpoint =
      publisher.PublishCheckpoint(v0).value();
  ASSERT_EQ(checkpoint.artifacts.size(), 1u);
  EXPECT_EQ(checkpoint.artifacts[0].sequence, 1u);
  EXPECT_EQ(checkpoint.artifacts[0].kind, ArtifactKind::kFull);

  const size_t clusters0[] = {0};
  const PublishReport first =
      publisher.PublishDelta(v1, clusters0, HashOf(v0)).value();
  ASSERT_EQ(first.artifacts.size(), 1u);  // cadence not due yet
  EXPECT_EQ(first.artifacts[0].sequence, 2u);
  EXPECT_EQ(first.artifacts[0].kind, ArtifactKind::kDelta);

  // Second delta trips the cadence: delta + checkpoint of the post-delta
  // state + GC of everything the checkpoint supersedes.
  const size_t clusters1[] = {1};
  const PublishReport second =
      publisher.PublishDelta(v2, clusters1, HashOf(v1)).value();
  ASSERT_EQ(second.artifacts.size(), 2u);
  EXPECT_EQ(second.artifacts[0].sequence, 3u);
  EXPECT_EQ(second.artifacts[0].kind, ArtifactKind::kDelta);
  EXPECT_EQ(second.artifacts[1].sequence, 4u);
  EXPECT_EQ(second.artifacts[1].kind, ArtifactKind::kFull);
  EXPECT_EQ(second.gc_removed, 3u);  // sequences 1..3 superseded

  DirectoryFeed feed(dir);
  const std::vector<FeedEntry> remaining = feed.Poll(0).value();
  ASSERT_EQ(remaining.size(), 1u);
  EXPECT_EQ(remaining[0].sequence, 4u);
  EXPECT_EQ(remaining[0].kind, ArtifactKind::kFull);

  // No half-written artifacts left behind.
  for (const auto& entry : fs::directory_iterator(dir)) {
    EXPECT_NE(entry.path().extension(), ".tmp") << entry.path();
  }

  // A restarted publisher resumes the sequence instead of renumbering.
  DeltaPublisher reopened = OpenPublisher(dir, 2);
  EXPECT_EQ(reopened.next_sequence(), 5u);
}

// --- Puller: the happy chain -------------------------------------------

TEST(PullerTest, BootstrapsFromCheckpointAndAppliesDeltasInOrder) {
  const std::string dir = FreshDir("replicate_chain");
  DeltaPublisher publisher = OpenPublisher(dir, 0);
  const FalccModel v0 = FreshModel();
  const FalccModel v1 = NextVersion(v0, 0);
  const FalccModel v2 = NextVersion(v1, 1);

  publisher.PublishCheckpoint(v0).value();
  const size_t c0[] = {0};
  publisher.PublishDelta(v1, c0, HashOf(v0)).value();
  const size_t c1[] = {1};
  publisher.PublishDelta(v2, c1, HashOf(v1)).value();

  serve::FalccEngine engine(NoFlusher());
  DeltaPuller puller(&engine, std::make_unique<DirectoryFeed>(dir),
                     FastPuller());
  EXPECT_FALSE(puller.ServingHash().ok());  // empty replica

  const PullReport report = puller.PollOnce();
  EXPECT_EQ(report.full_reloads, 1u);   // the bootstrap checkpoint
  EXPECT_EQ(report.deltas_applied, 2u);
  EXPECT_EQ(report.quarantined, 0u);
  EXPECT_FALSE(report.recovery_pending);
  EXPECT_EQ(puller.ServingHash().value(), HashOf(v2));

  // Idle poll: nothing new, nothing churns.
  const uint64_t version = engine.snapshot_version();
  const PullReport idle = puller.PollOnce();
  EXPECT_EQ(idle.entries_seen, 0u);
  EXPECT_EQ(engine.snapshot_version(), version);

  // The replica's decisions are the primary's, bit for bit.
  const TrainValTest s = MakeSplits();
  std::vector<double> flat;
  for (size_t i = 0; i < s.test.num_rows(); ++i) {
    const auto row = s.test.Row(i);
    flat.insert(flat.end(), row.begin(), row.end());
  }
  const ClassifyRequest request{flat, s.test.num_features()};
  const ClassifyResponse primary = v2.ClassifyBatch(request).value();
  const ClassifyResponse replica = engine.ClassifyBatch(request).value();
  ASSERT_EQ(primary.decisions.size(), replica.decisions.size());
  for (size_t i = 0; i < primary.decisions.size(); ++i) {
    const SampleDecision& p = primary.decisions[i];
    const SampleDecision& r = replica.decisions[i];
    EXPECT_TRUE(p.label == r.label && p.probability == r.probability &&
                p.cluster == r.cluster && p.group == r.group &&
                p.model == r.model)
        << "sample " << i;
  }
}

TEST(PullerTest, ShardedEngineFollowsTheSameFeed) {
  const std::string dir = FreshDir("replicate_sharded");
  DeltaPublisher publisher = OpenPublisher(dir, 0);
  const FalccModel v0 = FreshModel();
  const FalccModel v1 = NextVersion(v0, 2);
  publisher.PublishCheckpoint(v0).value();
  const size_t c2[] = {2};
  publisher.PublishDelta(v1, c2, HashOf(v0)).value();

  serve::ShardedEngineOptions options;
  options.num_shards = 2;
  serve::ShardedEngine engine(options);
  DeltaPuller puller(&engine, std::make_unique<DirectoryFeed>(dir),
                     FastPuller());
  puller.PollOnce();
  EXPECT_EQ(puller.ServingHash().value(), HashOf(v1));

  const TrainValTest s = MakeSplits();
  for (size_t i = 0; i < std::min<size_t>(s.test.num_rows(), 32); ++i) {
    const SampleDecision d = engine.Classify(s.test.Row(i)).value();
    EXPECT_EQ(d.label, v1.Classify(s.test.Row(i))) << "row " << i;
  }
  engine.Shutdown();
}

// --- Redelivery idempotency --------------------------------------------

TEST(DeltaIdempotencyTest, RedeliveredDeltaIsASuccessNoOp) {
  const FalccModel v0 = FreshModel();
  const uint64_t h0 = HashOf(v0);
  const FalccModel v1 = NextVersion(v0, 0);
  const uint64_t h1 = HashOf(v1);
  ASSERT_NE(h0, h1);
  const std::string delta = DeltaBytes(v1, 0, h0);

  // Model level: first apply advances the hash; the redelivered copy no
  // longer matches the base hash but its sections are already live, so
  // it succeeds as a no-op instead of failing the chain.
  const FalccModel applied = v0.ApplyDeltaBytes(delta).value();
  EXPECT_EQ(HashOf(applied), h1);
  const FalccModel reapplied = applied.ApplyDeltaBytes(delta).value();
  EXPECT_EQ(HashOf(reapplied), h1);

  // A delta that matches neither the base nor the live sections still
  // fails with the chain-break code.
  const FalccModel v2 = NextVersion(v1, 0);
  const Result<FalccModel> wrong =
      v0.ApplyDeltaBytes(DeltaBytes(v2, 0, h1));
  ASSERT_FALSE(wrong.ok());
  EXPECT_EQ(wrong.status().code(), StatusCode::kFailedPrecondition);

  // Engine level: the redelivery succeeds without reinstalling (no
  // version churn, snapshot untouched).
  serve::FalccEngine engine(NoFlusher());
  engine.Install(FreshModel());
  ASSERT_TRUE(engine.ApplyDeltaBytes(delta).ok());
  const uint64_t version = engine.snapshot_version();
  const std::shared_ptr<const FalccModel> snapshot = engine.snapshot();
  ASSERT_TRUE(engine.ApplyDeltaBytes(delta).ok());
  EXPECT_EQ(engine.snapshot_version(), version);
  EXPECT_EQ(engine.snapshot().get(), snapshot.get());
}

// --- Out-of-order arrivals and gaps ------------------------------------

TEST(PullerTest, BuffersOutOfOrderArrivalsUntilTheGapFills) {
  const std::string dir = FreshDir("replicate_ooo");
  DeltaPublisher publisher = OpenPublisher(dir, 0);
  const FalccModel v0 = FreshModel();
  const FalccModel v1 = NextVersion(v0, 0);
  const FalccModel v2 = NextVersion(v1, 1);
  const PublishedArtifact a1 =
      publisher.PublishCheckpoint(v0).value().artifacts[0];
  const size_t c0[] = {0};
  const PublishedArtifact a2 =
      publisher.PublishDelta(v1, c0, HashOf(v0)).value().artifacts[0];
  const size_t c1[] = {1};
  const PublishedArtifact a3 =
      publisher.PublishDelta(v2, c1, HashOf(v1)).value().artifacts[0];

  auto feed = std::make_unique<ScriptedFeed>();
  ScriptedFeed* script = feed.get();
  DeltaPullerOptions options = FastPuller();
  options.gap_patience_polls = 10;  // patient: this test never falls back
  serve::FalccEngine engine(NoFlusher());
  DeltaPuller puller(&engine, std::move(feed), options);

  // Sequence 3 arrives before sequence 2: it waits in the buffer.
  script->Expose(a1);
  script->Expose(a3, HashOf(v1));
  puller.PollOnce();
  EXPECT_EQ(puller.ServingHash().value(), HashOf(v0));
  EXPECT_EQ(puller.Stats().buffered, 1u);
  puller.PollOnce();
  EXPECT_EQ(puller.ServingHash().value(), HashOf(v0));

  // The gap fills: both deltas apply in order within one poll.
  script->Expose(a2, HashOf(v0));
  const PullReport report = puller.PollOnce();
  EXPECT_EQ(report.deltas_applied, 2u);
  EXPECT_EQ(puller.ServingHash().value(), HashOf(v2));
  const DeltaPullerStats stats = puller.Stats();
  EXPECT_EQ(stats.gap_fallbacks, 0u);
  EXPECT_EQ(stats.recoveries, 0u);
  EXPECT_EQ(stats.buffered, 0u);
}

TEST(PullerTest, PersistentGapFallsBackAndCheckpointJumpsIt) {
  const std::string dir = FreshDir("replicate_gap");
  DeltaPublisher publisher = OpenPublisher(dir, 0);
  const FalccModel v0 = FreshModel();
  const FalccModel v1 = NextVersion(v0, 0);
  const FalccModel v2 = NextVersion(v1, 1);
  const PublishedArtifact a1 =
      publisher.PublishCheckpoint(v0).value().artifacts[0];
  const size_t c0[] = {0};
  publisher.PublishDelta(v1, c0, HashOf(v0)).value();  // sequence 2: lost
  const size_t c1[] = {1};
  const PublishedArtifact a3 =
      publisher.PublishDelta(v2, c1, HashOf(v1)).value().artifacts[0];

  auto feed = std::make_unique<ScriptedFeed>();
  ScriptedFeed* script = feed.get();
  DeltaPullerOptions options = FastPuller();
  options.gap_patience_polls = 1;
  serve::FalccEngine engine(NoFlusher());
  DeltaPuller puller(&engine, std::move(feed), options);

  // Sequence 2 never arrives; the replica keeps serving v0 throughout.
  script->Expose(a1);
  script->Expose(a3, HashOf(v1));
  for (int i = 0; i < 4; ++i) {
    puller.PollOnce();
    EXPECT_EQ(puller.ServingHash().value(), HashOf(v0)) << "poll " << i;
  }
  EXPECT_GE(puller.Stats().gap_fallbacks, 1u);

  // A checkpoint at the head subsumes the lost delta: the replica jumps
  // the gap and converges.
  const PublishedArtifact a4 =
      publisher.PublishCheckpoint(v2).value().artifacts[0];
  script->Expose(a4);
  puller.PollOnce();
  EXPECT_EQ(puller.ServingHash().value(), HashOf(v2));
  EXPECT_FALSE(puller.Stats().recovery_pending);
}

// --- Fault injection ----------------------------------------------------

TEST(PullerFaultTest, MutatedDeltaNeverStopsServingAndRecovers) {
  const FalccModel v0 = FreshModel();
  const uint64_t h0 = HashOf(v0);
  const FalccModel v1 = NextVersion(v0, 0);
  const uint64_t h1 = HashOf(v1);
  const std::string delta = DeltaBytes(v1, 0, h0);
  const std::string full0 = SaveBytes(v0);
  const std::string full1 = SaveBytes(v1);

  const TrainValTest s = MakeSplits();
  std::vector<double> probe;
  const size_t probe_rows = std::min<size_t>(s.test.num_rows(), 16);
  for (size_t i = 0; i < probe_rows; ++i) {
    const auto row = s.test.Row(i);
    probe.insert(probe.end(), row.begin(), row.end());
  }
  const ClassifyRequest request{probe, s.test.num_features()};

  testing::Mutator mutator(7);
  for (int iter = 0; iter < 12; ++iter) {
    const std::string dir = FreshDir("replicate_mut");
    WriteFile(dir + "/" + SequencedName(1, "checkpoint.falcc"), full0);
    WriteFile(dir + "/" + SequencedName(2, "delta.falcc"),
              mutator.Mutate(delta));

    serve::FalccEngine engine(NoFlusher());
    DeltaPuller puller(&engine, std::make_unique<DirectoryFeed>(dir),
                       FastPuller());
    for (int p = 0; p < 6; ++p) puller.PollOnce();

    // Whatever the mutation did, the replica serves a real snapshot —
    // the base, or (if the mutation happened to be semantically inert)
    // the applied version — and classification works.
    const Result<uint64_t> serving = puller.ServingHash();
    ASSERT_TRUE(serving.ok()) << "iter " << iter;
    EXPECT_TRUE(serving.value() == h0 || serving.value() == h1)
        << "iter " << iter;
    EXPECT_TRUE(engine.ClassifyBatch(request).ok()) << "iter " << iter;

    // A later good checkpoint always repairs the replica.
    WriteFile(dir + "/" + SequencedName(3, "checkpoint-good.falcc"), full1);
    for (int p = 0; p < 6 && puller.ServingHash().value() != h1; ++p) {
      puller.PollOnce();
    }
    EXPECT_EQ(puller.ServingHash().value(), h1) << "iter " << iter;
  }
}

TEST(PullerFaultTest, TruncatedArtifactsFailCleanAndQuarantine) {
  const FalccModel v0 = FreshModel();
  const uint64_t h0 = HashOf(v0);
  const FalccModel v1 = NextVersion(v0, 0);
  const std::string delta = DeltaBytes(v1, 0, h0);
  const std::string full = SaveBytes(v0);

  // Loader sweep: a full snapshot interrupted at any offset — short read
  // or device error — returns a clean status, never a crash or a
  // partially applied model.
  const size_t step = std::max<size_t>(1, full.size() / 64);
  for (const testing::FaultMode mode :
       {testing::FaultMode::kTruncate, testing::FaultMode::kError}) {
    for (size_t offset = 0; offset < full.size(); offset += step) {
      testing::FaultyStream in(full, offset, mode);
      EXPECT_FALSE(FalccModel::Load(&in).ok())
          << "offset " << offset << " mode " << static_cast<int>(mode);
    }
  }
  // Delta prefix sweep: every truncation point is rejected.
  const size_t delta_step = std::max<size_t>(1, delta.size() / 64);
  for (size_t len = 0; len < delta.size(); len += delta_step) {
    EXPECT_FALSE(v0.ApplyDeltaBytes(delta.substr(0, len)).ok())
        << "length " << len;
  }

  // Feed level: a truncated delta artifact is quarantined and the
  // replica keeps serving the checkpoint.
  const std::string dir = FreshDir("replicate_trunc");
  WriteFile(dir + "/" + SequencedName(1, "checkpoint.falcc"), full);
  WriteFile(dir + "/" + SequencedName(2, "delta.falcc"),
            delta.substr(0, delta.size() / 2));
  serve::FalccEngine engine(NoFlusher());
  DeltaPuller puller(&engine, std::make_unique<DirectoryFeed>(dir),
                     FastPuller());
  for (int p = 0; p < 4; ++p) puller.PollOnce();
  EXPECT_EQ(puller.ServingHash().value(), h0);
  EXPECT_GE(puller.Stats().quarantined, 1u);
  EXPECT_TRUE(engine.snapshot() != nullptr);
}

TEST(PullerFaultTest, ChainBreakWithDeletedCheckpointKeepsServingUntilRepair) {
  const std::string dir = FreshDir("replicate_deleted");
  DeltaPublisher publisher = OpenPublisher(dir, 0);
  const FalccModel v0 = FreshModel();
  const FalccModel v1 = NextVersion(v0, 0);
  const PublishedArtifact checkpoint =
      publisher.PublishCheckpoint(v0).value().artifacts[0];

  serve::FalccEngine engine(NoFlusher());
  DeltaPuller puller(&engine, std::make_unique<DirectoryFeed>(dir),
                     FastPuller());
  puller.PollOnce();
  ASSERT_EQ(puller.ServingHash().value(), HashOf(v0));

  // The only checkpoint disappears (operator error, aggressive sync),
  // then a delta arrives whose base is not what we serve: chain break
  // with nothing to recover from.
  fs::remove(checkpoint.path);
  const size_t c0[] = {0};
  publisher.PublishDelta(v1, c0, /*base_hash=*/0x1234abcd).value();
  const PullReport broken = puller.PollOnce();
  EXPECT_GE(broken.chain_breaks, 1u);
  EXPECT_TRUE(broken.recovery_pending);
  // Cardinal rule: still serving the last-good snapshot.
  EXPECT_EQ(puller.ServingHash().value(), HashOf(v0));
  EXPECT_GE(puller.Stats().retries, 1u);

  // A fresh checkpoint repairs the fleet.
  publisher.PublishCheckpoint(v1).value();
  for (int p = 0; p < 4 && puller.Stats().recovery_pending; ++p) {
    puller.PollOnce();
  }
  EXPECT_EQ(puller.ServingHash().value(), HashOf(v1));
  EXPECT_FALSE(puller.Stats().recovery_pending);
  EXPECT_GE(puller.Stats().recoveries, 1u);
}

// --- Late joiner and retention -----------------------------------------

TEST(PullerTest, LateJoinerBootstrapsFromTheRetainedTail) {
  const std::string dir = FreshDir("replicate_late");
  DeltaPublisher publisher = OpenPublisher(dir, /*checkpoint_every=*/2);
  FalccModel head = FreshModel();
  publisher.PublishCheckpoint(head).value();
  size_t published = 1;
  for (size_t i = 0; i < 5; ++i) {
    FalccModel next = NextVersion(head, i % head.num_clusters());
    const size_t clusters[] = {i % head.num_clusters()};
    const PublishReport report =
        publisher.PublishDelta(next, clusters, HashOf(head)).value();
    published += report.artifacts.size();
    head = std::move(next);
  }

  // GC pruned the feed's history: far fewer artifacts remain than were
  // published, yet a late joiner still converges on the head.
  DirectoryFeed feed(dir);
  const size_t remaining = feed.Poll(0).value().size();
  EXPECT_LT(remaining, published);

  serve::FalccEngine engine(NoFlusher());
  DeltaPuller puller(&engine, std::make_unique<DirectoryFeed>(dir),
                     FastPuller());
  puller.PollOnce();
  EXPECT_EQ(puller.ServingHash().value(), HashOf(head));
  EXPECT_FALSE(puller.Stats().recovery_pending);
}

// --- Fleet convergence --------------------------------------------------

TEST(FleetTest, ReplicasConvergeToPrimaryWithBitIdenticalDecisions) {
  const std::string dir = FreshDir("replicate_fleet");
  DeltaPublisher publisher = OpenPublisher(dir, 0);
  FalccModel head = FreshModel();
  publisher.PublishCheckpoint(head).value();
  const std::string model_path =
      (fs::path(::testing::TempDir()) / "replicate_fleet_v0.falcc").string();
  ASSERT_TRUE(head.SaveToFile(model_path).ok());

  ReplicaFleetOptions options;
  options.num_replicas = 4;
  options.feed_dir = dir;
  options.puller = FastPuller();
  ReplicaFleet fleet(options);
  ASSERT_TRUE(fleet.Bootstrap(model_path).ok());
  fleet.PollAll();  // consume the seed checkpoint
  ASSERT_TRUE(fleet.ConvergedTo(HashOf(head)));

  for (size_t event = 0; event < 3; ++event) {
    FalccModel next = NextVersion(head, event % head.num_clusters());
    const size_t clusters[] = {event % head.num_clusters()};
    publisher.PublishDelta(next, clusters, HashOf(head)).value();
    head = std::move(next);
    bool converged = false;
    for (int poll = 0; poll < 20 && !converged; ++poll) {
      fleet.PollAll();
      converged = fleet.ConvergedTo(HashOf(head));
    }
    EXPECT_TRUE(converged) << "event " << event;
  }

  // Hash convergence implies decision identity — verify it directly.
  const TrainValTest s = MakeSplits();
  std::vector<double> flat;
  for (size_t i = 0; i < s.test.num_rows(); ++i) {
    const auto row = s.test.Row(i);
    flat.insert(flat.end(), row.begin(), row.end());
  }
  const ClassifyRequest request{flat, s.test.num_features()};
  const ClassifyResponse primary = head.ClassifyBatch(request).value();
  for (size_t r = 0; r < fleet.size(); ++r) {
    const ClassifyResponse replica =
        fleet.engine(r)->ClassifyBatch(request).value();
    ASSERT_EQ(replica.decisions.size(), primary.decisions.size());
    for (size_t i = 0; i < primary.decisions.size(); ++i) {
      const SampleDecision& p = primary.decisions[i];
      const SampleDecision& d = replica.decisions[i];
      ASSERT_TRUE(p.label == d.label && p.probability == d.probability &&
                  p.cluster == d.cluster && p.group == d.group &&
                  p.model == d.model)
          << "replica " << r << " sample " << i;
    }
  }
}

// --- Concurrency (ThreadSanitizer coverage) ----------------------------

// A replica classifies continuously while its background puller applies
// deltas (lock-free hot-swaps) — the pull-while-classify race.
TEST(PullerConcurrencyTest, BackgroundPullWhileClassifyRace) {
  const std::string dir = FreshDir("replicate_race");
  DeltaPublisher publisher = OpenPublisher(dir, 0);
  FalccModel head = FreshModel();
  publisher.PublishCheckpoint(head).value();

  serve::FalccEngine engine(NoFlusher());
  engine.Install(FreshModel());

  DeltaPullerOptions options = FastPuller();
  options.poll_interval_seconds = 1e-3;
  DeltaPuller puller(&engine, std::make_unique<DirectoryFeed>(dir), options);
  puller.Start();
  puller.Start();  // idempotent

  const TrainValTest s = MakeSplits();
  std::vector<double> flat;
  const size_t rows = std::min<size_t>(s.test.num_rows(), 64);
  for (size_t i = 0; i < rows; ++i) {
    const auto row = s.test.Row(i);
    flat.insert(flat.end(), row.begin(), row.end());
  }
  const size_t width = s.test.num_features();

  std::atomic<bool> stop{false};
  std::thread classifier([&] {
    const ClassifyRequest request{flat, width};
    while (!stop.load(std::memory_order_acquire)) {
      const Result<ClassifyResponse> response = engine.ClassifyBatch(request);
      EXPECT_TRUE(response.ok());
    }
  });

  for (size_t event = 0; event < 5; ++event) {
    FalccModel next = NextVersion(head, event % head.num_clusters());
    const size_t clusters[] = {event % head.num_clusters()};
    ASSERT_TRUE(
        publisher.PublishDelta(next, clusters, HashOf(head)).ok());
    head = std::move(next);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  // The background thread converges on the head without manual polls.
  const uint64_t target = HashOf(head);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    const Result<uint64_t> serving = puller.ServingHash();
    if (serving.ok() && serving.value() == target) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop.store(true, std::memory_order_release);
  classifier.join();
  puller.Stop();
  EXPECT_EQ(puller.ServingHash().value(), target);
  EXPECT_EQ(puller.Stats().deltas_applied, 5u);
}

// --- Wire codec --------------------------------------------------------

std::string ReadAllBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

WireFrame HelloFrame(uint64_t next_sequence) {
  WireFrame frame;
  frame.type = FrameType::kHello;
  frame.sequence = next_sequence;
  frame.payload = kWireGreeting;
  return frame;
}

WireFrame SubscribeFrame(uint64_t from) {
  WireFrame frame;
  frame.type = FrameType::kSubscribe;
  frame.sequence = from;
  return frame;
}

WireFrame ArtifactFrame(uint64_t sequence, ArtifactKind kind,
                        std::string payload, uint64_t base_hash = 0) {
  WireFrame frame;
  frame.type = FrameType::kArtifact;
  frame.kind = kind;
  frame.sequence = sequence;
  frame.base_hash = base_hash;
  frame.payload = std::move(payload);
  return frame;
}

/// The wire layout assembled by hand, so tests can express frames
/// EncodeFrame itself refuses to produce.
std::string RawFrame(uint8_t type, uint8_t kind, uint64_t sequence,
                     uint64_t base_hash, const std::string& payload) {
  std::string out;
  const auto put32 = [&out](uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    }
  };
  const auto put64 = [&out](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    }
  };
  put32(kWireMagic);
  out.push_back(static_cast<char>(type));
  out.push_back(static_cast<char>(kind));
  out.push_back(0);
  out.push_back(0);
  put64(sequence);
  put64(base_hash);
  put32(static_cast<uint32_t>(payload.size()));
  put64(io::Fnv1a(payload));
  out += payload;
  return out;
}

TEST(WireCodecTest, EveryFrameTypeRoundTripsByteIdentically) {
  std::vector<WireFrame> frames;
  frames.push_back(HelloFrame(42));
  frames.push_back(SubscribeFrame(7));
  frames.push_back(
      ArtifactFrame(3, ArtifactKind::kDelta, "delta-bytes", 0x1234abcdull));
  frames.push_back(
      ArtifactFrame(4, ArtifactKind::kFull, std::string(1 << 10, '\xab')));
  WireFrame heartbeat;
  heartbeat.type = FrameType::kHeartbeat;
  heartbeat.sequence = 9;
  frames.push_back(heartbeat);
  WireFrame eof;
  eof.type = FrameType::kEof;
  frames.push_back(eof);

  for (const WireFrame& frame : frames) {
    const std::string bytes = EncodeFrame(frame);
    const Result<FrameDecode> decoded = DecodeFrame(bytes);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    ASSERT_TRUE(decoded.value().complete);
    EXPECT_EQ(decoded.value().consumed, bytes.size());
    const WireFrame& out = decoded.value().frame;
    EXPECT_EQ(out.type, frame.type);
    EXPECT_EQ(out.kind, frame.kind);
    EXPECT_EQ(out.sequence, frame.sequence);
    EXPECT_EQ(out.base_hash, frame.base_hash);
    EXPECT_EQ(out.payload, frame.payload);
    EXPECT_EQ(EncodeFrame(out), bytes);
  }
}

TEST(WireCodecTest, MalformedFramesRejectWithDescriptiveErrors) {
  const std::string valid =
      EncodeFrame(ArtifactFrame(1, ArtifactKind::kDelta, "payload", 5));
  const auto expect_reject = [](const std::string& bytes, const char* what) {
    const Result<FrameDecode> decoded = DecodeFrame(bytes);
    ASSERT_FALSE(decoded.ok()) << what;
    EXPECT_FALSE(decoded.status().message().empty()) << what;
  };
  {
    std::string b = valid;
    b[0] = static_cast<char>(b[0] ^ 0xFF);
    expect_reject(b, "bad magic");
  }
  {
    std::string b = valid;
    b[4] = 0;
    expect_reject(b, "frame type 0");
  }
  {
    std::string b = valid;
    b[4] = 9;
    expect_reject(b, "unknown frame type");
  }
  {
    std::string b = valid;
    b[5] = 3;
    expect_reject(b, "unknown artifact kind");
  }
  {
    std::string b = valid;
    b[6] = 1;
    expect_reject(b, "nonzero reserved bits");
  }
  {
    // A payload-length field past the cap rejects from the header alone,
    // before any attempt to buffer 4 GiB.
    std::string b = valid;
    for (size_t at = 24; at < 28; ++at) b[at] = static_cast<char>(0xFF);
    expect_reject(b, "oversize payload length");
  }
  {
    std::string b = valid;
    b.back() = static_cast<char>(b.back() ^ 0x01);
    expect_reject(b, "payload checksum");
  }
  // Semantically invalid frames with correct checksums.
  expect_reject(RawFrame(3, 0, 1, 0, "x"), "ARTIFACT without a kind");
  expect_reject(RawFrame(3, 1, 1, 5, ""), "empty ARTIFACT payload");
  expect_reject(RawFrame(3, 2, 1, 5, "x"), "base_hash on a full artifact");
  expect_reject(RawFrame(4, 1, 0, 0, ""), "kind on a control frame");
  expect_reject(RawFrame(5, 0, 0, 7, ""), "base_hash on a control frame");
  expect_reject(RawFrame(4, 0, 0, 0, "x"), "payload on a HEARTBEAT");
  expect_reject(RawFrame(2, 0, 0, 0, "x"), "payload on a SUBSCRIBE");
  expect_reject(RawFrame(1, 0, 0, 0, "hi"), "HELLO greeting mismatch");
}

TEST(WireCodecTest, EveryPrefixOfAValidStreamAsksForMoreBytes) {
  std::string stream;
  stream += EncodeFrame(HelloFrame(2));
  stream += EncodeFrame(ArtifactFrame(1, ArtifactKind::kFull, "full-bytes"));
  stream += EncodeFrame(SubscribeFrame(3));
  for (size_t cut = 0; cut <= stream.size(); ++cut) {
    FrameDecoder decoder;
    decoder.Append(std::string_view(stream).substr(0, cut));
    size_t frames = 0;
    for (;;) {
      const Result<std::optional<WireFrame>> next = decoder.Next();
      ASSERT_TRUE(next.ok()) << "cut at " << cut << ": "
                             << next.status().ToString();
      if (!next.value().has_value()) break;
      ++frames;
    }
    EXPECT_LE(frames, 3u) << "cut at " << cut;
  }
}

TEST(WireCodecTest, StreamingDecoderMatchesOneShotFrameForFrame) {
  const std::vector<WireFrame> sent = {
      HelloFrame(6),
      ArtifactFrame(4, ArtifactKind::kDelta, "delta-bytes", 0xfeedull),
      ArtifactFrame(5, ArtifactKind::kFull, "full-bytes"),
  };
  std::string stream;
  for (const WireFrame& frame : sent) stream += EncodeFrame(frame);

  FrameDecoder decoder;
  std::vector<WireFrame> received;
  for (char byte : stream) {
    decoder.Append(std::string_view(&byte, 1));
    for (;;) {
      Result<std::optional<WireFrame>> next = decoder.Next();
      ASSERT_TRUE(next.ok()) << next.status().ToString();
      if (!next.value().has_value()) break;
      received.push_back(std::move(next).value().value());
    }
  }
  ASSERT_EQ(received.size(), sent.size());
  EXPECT_EQ(decoder.buffered(), 0u);
  for (size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(received[i].type, sent[i].type) << i;
    EXPECT_EQ(received[i].kind, sent[i].kind) << i;
    EXPECT_EQ(received[i].sequence, sent[i].sequence) << i;
    EXPECT_EQ(received[i].base_hash, sent[i].base_hash) << i;
    EXPECT_EQ(received[i].payload, sent[i].payload) << i;
  }
}

TEST(FeedNameTest, SequencedNameWidthExtensionKeepsOrderPastEightDigits) {
  // The regression: without a width marker, "100000000-" sorts before
  // "99999999-" and the feed's apply order silently inverts at the
  // hundred-millionth artifact.
  const std::string last8 = SequencedName(99'999'999ull, "a.falcc");
  const std::string first9 = SequencedName(100'000'000ull, "a.falcc");
  EXPECT_EQ(last8, "99999999-a.falcc");
  EXPECT_EQ(first9, "z100000000-a.falcc");
  EXPECT_LT(last8, first9);
  EXPECT_EQ(ParseSequence(last8).value(), 99'999'999ull);
  EXPECT_EQ(ParseSequence(first9).value(), 100'000'000ull);
  // Strictly ordered across every width boundary the scheme crosses.
  const uint64_t probes[] = {1ull,
                             99'999'999ull,
                             100'000'000ull,
                             999'999'999ull,
                             1'000'000'000ull,
                             123'456'789'012ull};
  for (size_t i = 0; i + 1 < std::size(probes); ++i) {
    const std::string lo = SequencedName(probes[i], "a.falcc");
    const std::string hi = SequencedName(probes[i + 1], "a.falcc");
    EXPECT_LT(lo, hi) << probes[i] << " vs " << probes[i + 1];
    EXPECT_EQ(ParseSequence(lo).value(), probes[i]);
  }
  // Only canonical widths parse: one marker demands exactly nine digits.
  EXPECT_FALSE(ParseSequence("z00000001-a.falcc").ok());
  EXPECT_FALSE(ParseSequence("z1234567890-a.falcc").ok());
}

// --- Directory watcher -------------------------------------------------

TEST(DirectoryWatcherTest, RenameIntoWatchedDirectoryWakesTheWait) {
  const std::string dir = FreshDir("replicate_watch_wake");
  DirectoryWatcher watcher(dir);
  if (!watcher.using_inotify()) GTEST_SKIP() << "inotify unavailable";
  std::thread writer([&dir] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const std::string tmp = dir + "/artifact.tmp";
    WriteFile(tmp, "bytes");
    fs::rename(tmp, dir + "/00000001-a.falcc");
  });
  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(watcher.Wait(10.0));
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(elapsed, 5.0);
  writer.join();
  // Once the queued events are drained the watcher quiesces: waits time
  // out instead of spinning on stale events.
  while (watcher.Wait(0.05)) {
  }
  EXPECT_FALSE(watcher.Wait(0.05));
}

TEST(DirectoryWatcherTest, EventBetweenWaitsIsNotLost) {
  const std::string dir = FreshDir("replicate_watch_queued");
  DirectoryWatcher watcher(dir);
  if (!watcher.using_inotify()) GTEST_SKIP() << "inotify unavailable";
  // Nobody is waiting when the artifact lands; the event queues in the
  // kernel and the next Wait returns without sleeping out its timeout.
  WriteFile(dir + "/00000001-a.falcc", "bytes");
  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(watcher.Wait(10.0));
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(elapsed, 5.0);
}

TEST(DirectoryWatcherTest, EnvOverrideForcesFallbackAndCancelWakes) {
  ::setenv("FALCC_NO_INOTIFY", "1", 1);
  const std::string dir = FreshDir("replicate_watch_fallback");
  DirectoryWatcher watcher(dir);
  ::unsetenv("FALCC_NO_INOTIFY");
  EXPECT_FALSE(watcher.using_inotify());
  // The fallback never reports filesystem events — only timeouts...
  WriteFile(dir + "/00000001-a.falcc", "bytes");
  EXPECT_FALSE(watcher.Wait(0.02));
  // ...and cancellations, which cut a long wait short.
  std::thread canceller([&watcher] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    watcher.Cancel();
  });
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(watcher.Wait(10.0));
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(elapsed, 5.0);
  canceller.join();
}

TEST(DirectoryWatcherTest, WatcherAndPollDrivenPullersConvergeIdentically) {
  const std::string dir = FreshDir("replicate_watch_equiv");
  DeltaPublisher publisher = OpenPublisher(dir, 0);
  FalccModel head = FreshModel();
  publisher.PublishCheckpoint(head).value();

  // Same feed directory, two wake strategies: a watcher-driven puller
  // with a long poll interval, and a pure poller with a short one.
  serve::FalccEngine watched_engine(NoFlusher());
  DeltaPullerOptions watched_options = FastPuller();
  watched_options.poll_interval_seconds = 0.5;
  DeltaPuller watched(&watched_engine,
                      std::make_unique<DirectoryFeed>(dir, true),
                      watched_options);

  serve::FalccEngine polled_engine(NoFlusher());
  DeltaPullerOptions polled_options = FastPuller();
  polled_options.poll_interval_seconds = 1e-3;
  DeltaPuller polled(&polled_engine,
                     std::make_unique<DirectoryFeed>(dir, false),
                     polled_options);

  watched.Start();
  polled.Start();
  for (size_t event = 0; event < 3; ++event) {
    FalccModel next = NextVersion(head, event % head.num_clusters());
    const size_t clusters[] = {event % head.num_clusters()};
    ASSERT_TRUE(publisher.PublishDelta(next, clusters, HashOf(head)).ok());
    head = std::move(next);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const uint64_t target = HashOf(head);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (std::chrono::steady_clock::now() < deadline) {
    const Result<uint64_t> a = watched.ServingHash();
    const Result<uint64_t> b = polled.ServingHash();
    if (a.ok() && b.ok() && a.value() == target && b.value() == target) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  watched.Stop();
  polled.Stop();
  EXPECT_EQ(watched.ServingHash().value(), target);
  EXPECT_EQ(polled.ServingHash().value(), target);
  // The two strategies applied the identical artifact sequence — wakes
  // change latency, never the chain.
  EXPECT_EQ(watched.Stats().deltas_applied, polled.Stats().deltas_applied);
  EXPECT_EQ(watched.Stats().deltas_applied, 3u);
}

// --- Socket transport --------------------------------------------------

std::string SocketPath(const std::string& name) {
  const fs::path path = fs::path(::testing::TempDir()) / name;
  fs::remove(path);
  return path.string();
}

int ConnectUnixSocket(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  FALCC_CHECK(fd >= 0, "test: socket() failed");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s", path.c_str());
  FALCC_CHECK(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof(addr)) == 0,
              "test: connect() failed");
  return fd;
}

void SendRaw(int fd, std::string_view bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return;  // peer gone; the test asserts on what arrived
    sent += static_cast<size_t>(n);
  }
}

/// Receives into `decoder` until `want` frames decoded or the deadline
/// passes; returns the decoded frames.
std::vector<WireFrame> RecvFrames(int fd, FrameDecoder* decoder, size_t want,
                                  double timeout_seconds) {
  std::vector<WireFrame> frames;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration<double>(timeout_seconds);
  while (frames.size() < want &&
         std::chrono::steady_clock::now() < deadline) {
    for (;;) {
      Result<std::optional<WireFrame>> next = decoder->Next();
      if (!next.ok() || !next.value().has_value()) break;
      frames.push_back(std::move(next).value().value());
    }
    if (frames.size() >= want) break;
    pollfd p{fd, POLLIN, 0};
    if (::poll(&p, 1, 50) <= 0) continue;
    char buf[4096];
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    decoder->Append(std::string_view(buf, static_cast<size_t>(n)));
  }
  return frames;
}

/// A fake publisher: accepts connections serially and hands each to the
/// scripted handler. The tests use it to misbehave in ways the real
/// SocketPublisher never would — drop mid-frame, go silent, babble.
class ScriptedServer {
 public:
  using Handler = std::function<void(ScriptedServer*, int fd, size_t index)>;

  ScriptedServer(std::string path, Handler handler)
      : path_(std::move(path)), handler_(std::move(handler)) {
    ::unlink(path_.c_str());
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    FALCC_CHECK(listen_fd_ >= 0, "test: socket() failed");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s", path_.c_str());
    FALCC_CHECK(::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
                       sizeof(addr)) == 0,
                "test: bind() failed");
    FALCC_CHECK(::listen(listen_fd_, 64) == 0, "test: listen() failed");
    thread_ = std::thread([this] { AcceptLoop(); });
  }

  ~ScriptedServer() { Stop(); }

  void Stop() {
    if (stopped_) return;
    stopped_ = true;
    stop_.store(true, std::memory_order_release);
    if (thread_.joinable()) thread_.join();
    ::close(listen_fd_);
    ::unlink(path_.c_str());
  }

  bool stopping() const { return stop_.load(std::memory_order_acquire); }
  size_t connections() const {
    return connections_.load(std::memory_order_acquire);
  }
  std::string endpoint() const { return "unix://" + path_; }

 private:
  void AcceptLoop() {
    size_t index = 0;
    while (!stop_.load(std::memory_order_acquire)) {
      pollfd p{listen_fd_, POLLIN, 0};
      if (::poll(&p, 1, 20) <= 0) continue;
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) continue;
      connections_.fetch_add(1, std::memory_order_release);
      handler_(this, fd, index++);
      ::close(fd);
    }
  }

  std::string path_;
  Handler handler_;
  int listen_fd_ = -1;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<size_t> connections_{0};
  bool stopped_ = false;
};

bool WaitConverged(ReplicaFleet* fleet, uint64_t hash,
                   double timeout_seconds = 30.0) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration<double>(timeout_seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    fleet->PollAll();
    if (fleet->ConvergedTo(hash)) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return false;
}

TEST(SocketEndpointTest, SchemesAreRecognizedAndDirectoriesAreNot) {
  EXPECT_TRUE(replicate::IsSocketEndpoint("tcp://127.0.0.1:9000"));
  EXPECT_TRUE(replicate::IsSocketEndpoint("unix:///tmp/feed.sock"));
  EXPECT_FALSE(replicate::IsSocketEndpoint("/var/lib/falcc/feed"));
  EXPECT_FALSE(replicate::IsSocketEndpoint("feed"));
}

TEST(SocketFleetTest, ReplicasConvergeOverAUnixSocketFeed) {
  const std::string dir = FreshDir("replicate_sock_fleet");
  SocketPublisherOptions po;
  po.listen = "unix://" + SocketPath("sock_fleet.sock");
  po.publisher.dir = dir;
  po.publisher.checkpoint_every = 0;
  po.heartbeat_interval_seconds = 0.05;
  std::unique_ptr<SocketPublisher> publisher =
      SocketPublisher::Open(po).value();
  FalccModel head = FreshModel();
  publisher->PublishCheckpoint(head).value();
  const std::string model_path =
      (fs::path(::testing::TempDir()) / "sock_fleet_v0.falcc").string();
  ASSERT_TRUE(head.SaveToFile(model_path).ok());

  ReplicaFleetOptions options;
  options.num_replicas = 4;
  options.feed_endpoint = publisher->endpoint();
  options.puller = FastPuller();
  options.socket.reconnect_initial_seconds = 0.01;
  options.socket.reconnect_max_seconds = 0.05;
  ReplicaFleet fleet(options);
  ASSERT_TRUE(fleet.Bootstrap(model_path).ok());
  // The replicas subscribed after the checkpoint was published: it
  // reaches them via catch-up replay, not the filesystem.
  ASSERT_TRUE(WaitConverged(&fleet, HashOf(head)));
  EXPECT_GE(publisher->Stats().catchup_artifacts, 1u);

  for (size_t event = 0; event < 3; ++event) {
    FalccModel next = NextVersion(head, event % head.num_clusters());
    const size_t clusters[] = {event % head.num_clusters()};
    publisher->PublishDelta(next, clusters, HashOf(head)).value();
    head = std::move(next);
    ASSERT_TRUE(WaitConverged(&fleet, HashOf(head))) << "event " << event;
  }

  // Bit-identical decisions across the socket-fed fleet.
  const TrainValTest s = MakeSplits();
  std::vector<double> flat;
  for (size_t i = 0; i < s.test.num_rows(); ++i) {
    const auto row = s.test.Row(i);
    flat.insert(flat.end(), row.begin(), row.end());
  }
  const ClassifyRequest request{flat, s.test.num_features()};
  const ClassifyResponse primary = head.ClassifyBatch(request).value();
  for (size_t r = 0; r < fleet.size(); ++r) {
    const ClassifyResponse replica =
        fleet.engine(r)->ClassifyBatch(request).value();
    ASSERT_EQ(replica.decisions.size(), primary.decisions.size());
    for (size_t i = 0; i < primary.decisions.size(); ++i) {
      const SampleDecision& p = primary.decisions[i];
      const SampleDecision& d = replica.decisions[i];
      ASSERT_TRUE(p.label == d.label && p.probability == d.probability &&
                  p.cluster == d.cluster && p.group == d.group &&
                  p.model == d.model)
          << "replica " << r << " sample " << i;
    }
  }
  publisher->Close();
}

TEST(SocketPartitionTest, MidFrameDropAtEveryByteOffsetStillDelivers) {
  const std::string checkpoint_payload = "full-snapshot-payload";
  const std::string delta_payload = "delta-payload";
  std::string stream;
  stream += EncodeFrame(HelloFrame(3));
  stream += EncodeFrame(ArtifactFrame(1, ArtifactKind::kFull,
                                      checkpoint_payload));
  stream += EncodeFrame(ArtifactFrame(2, ArtifactKind::kDelta, delta_payload,
                                      0xfeedull));
  // Connection i dies after byte i: every possible mid-frame cut, from
  // an empty HELLO through one byte short of the full stream. Once the
  // offsets are exhausted the server finally sends everything.
  ScriptedServer server(
      SocketPath("sock_drop.sock"),
      [&stream](ScriptedServer*, int fd, size_t index) {
        SendRaw(fd, std::string_view(stream).substr(
                        0, std::min(index, stream.size())));
      });

  SocketFeedOptions options;
  options.reconnect_initial_seconds = 1e-4;
  options.reconnect_max_seconds = 1e-3;
  options.reconnect_jitter = 0.0;
  options.liveness_timeout_seconds = 0.25;
  std::unique_ptr<SocketFeed> feed =
      SocketFeed::Connect(server.endpoint(), options).value();

  std::vector<FeedEntry> entries;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (std::chrono::steady_clock::now() < deadline) {
    entries = feed->Poll(0).value();
    if (entries.size() == 2) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(entries.size(), 2u) << "after " << server.connections()
                                << " connections";
  EXPECT_GT(server.connections(), stream.size());
  // Both artifacts arrived exactly once, byte-identical, despite every
  // earlier connection dying mid-frame.
  EXPECT_EQ(entries[0].sequence, 1u);
  EXPECT_EQ(entries[0].kind, ArtifactKind::kFull);
  EXPECT_EQ(ReadAllBytes(entries[0].path), checkpoint_payload);
  EXPECT_EQ(entries[1].sequence, 2u);
  EXPECT_EQ(entries[1].kind, ArtifactKind::kDelta);
  EXPECT_EQ(entries[1].base_hash, 0xfeedull);
  EXPECT_EQ(ReadAllBytes(entries[1].path), delta_payload);
  const SocketFeedStats stats = feed->Stats();
  EXPECT_EQ(stats.artifacts_spooled, 2u);
  EXPECT_GE(stats.connects, 1u);
  server.Stop();
}

TEST(SocketPartitionTest, HeartbeatTimeoutTearsDownAndReconnects) {
  const std::string hello = EncodeFrame(HelloFrame(1));
  // A publisher that hangs without closing: handshake completes, then
  // silence. Only the liveness timeout can detect this.
  ScriptedServer server(
      SocketPath("sock_silent.sock"),
      [&hello](ScriptedServer* server, int fd, size_t) {
        SendRaw(fd, hello);
        while (!server->stopping()) {
          pollfd p{fd, POLLIN, 0};
          if (::poll(&p, 1, 20) <= 0) continue;
          char buf[256];
          const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
          if (n == 0) return;  // the subscriber gave up on us
          if (n < 0 && errno != EAGAIN && errno != EINTR) return;
        }
      });

  SocketFeedOptions options;
  options.reconnect_initial_seconds = 1e-3;
  options.reconnect_max_seconds = 5e-3;
  options.liveness_timeout_seconds = 0.1;
  std::unique_ptr<SocketFeed> feed =
      SocketFeed::Connect(server.endpoint(), options).value();

  // Meanwhile the replica keeps serving its installed snapshot.
  serve::FalccEngine engine(NoFlusher());
  engine.Install(FreshModel());
  const TrainValTest s = MakeSplits();
  std::vector<double> flat;
  const auto row = s.test.Row(0);
  flat.insert(flat.end(), row.begin(), row.end());
  const ClassifyRequest request{flat, s.test.num_features()};

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline) {
    EXPECT_TRUE(engine.ClassifyBatch(request).ok());
    const SocketFeedStats stats = feed->Stats();
    if (stats.liveness_timeouts >= 2 && stats.connects >= 2) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const SocketFeedStats stats = feed->Stats();
  EXPECT_GE(stats.liveness_timeouts, 2u);
  EXPECT_GE(stats.connects, 2u);
  EXPECT_EQ(stats.artifacts_spooled, 0u);
  server.Stop();
}

TEST(SocketPartitionTest, SlowSubscriberIsDroppedToTheNewestCheckpoint) {
  const std::string dir = FreshDir("replicate_sock_slow");
  const std::string path = SocketPath("sock_slow.sock");
  SocketPublisherOptions po;
  po.listen = "unix://" + path;
  po.publisher.dir = dir;
  po.publisher.checkpoint_every = 1;  // every delta is chased by a full
  po.max_queue = 2;
  po.send_buffer_bytes = 4096;  // tiny SO_SNDBUF: sends stall fast
  po.send_timeout_seconds = 60.0;  // the stall must outlive the test, not the socket
  po.heartbeat_interval_seconds = 0.05;
  std::unique_ptr<SocketPublisher> publisher =
      SocketPublisher::Open(po).value();

  // A raw subscriber that handshakes and then stops reading.
  const int fd = ConnectUnixSocket(path);
  SendRaw(fd, EncodeFrame(SubscribeFrame(0)));
  FrameDecoder decoder;
  const std::vector<WireFrame> hello = RecvFrames(fd, &decoder, 1, 10.0);
  ASSERT_EQ(hello.size(), 1u);
  ASSERT_EQ(hello[0].type, FrameType::kHello);

  // Publish while the subscriber stalls. Enough bytes must go out to
  // overflow the kernel socket buffer and stall the sender mid-entry —
  // only then can the bounded queue overflow and force a re-plan.
  FalccModel head = FreshModel();
  publisher->PublishCheckpoint(head).value();
  for (size_t event = 0; event < 16; ++event) {
    FalccModel next = NextVersion(head, event % head.num_clusters());
    const size_t clusters[] = {event % head.num_clusters()};
    publisher->PublishDelta(next, clusters, HashOf(head)).value();
    head = std::move(next);
  }
  // The overflow happened while the sender was stalled mid-checkpoint;
  // the re-plan (and its drop-to-checkpoint accounting) happens when the
  // sender next dequeues — i.e. once the subscriber starts reading.
  // Somewhere in the drained stream is a full checkpoint carrying the
  // publisher's final state, byte-identical to a local save of the same
  // model.
  const std::string want = SaveBytes(head);
  bool recovered = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!recovered && std::chrono::steady_clock::now() < deadline) {
    const std::vector<WireFrame> frames = RecvFrames(fd, &decoder, 1, 5.0);
    if (frames.empty()) break;
    for (const WireFrame& frame : frames) {
      if (frame.type == FrameType::kArtifact &&
          frame.kind == ArtifactKind::kFull && frame.payload == want) {
        recovered = true;
      }
    }
  }
  EXPECT_TRUE(recovered);
  EXPECT_GE(publisher->Stats().drops_to_checkpoint, 1u);
  ::close(fd);
  publisher->Close();
}

TEST(SocketPartitionTest, PublisherRestartResubscribesAndReconverges) {
  const std::string dir = FreshDir("replicate_sock_restart");
  SocketPublisherOptions po;
  po.listen = "unix://" + SocketPath("sock_restart.sock");
  po.publisher.dir = dir;
  po.publisher.checkpoint_every = 0;
  po.heartbeat_interval_seconds = 0.05;
  std::unique_ptr<SocketPublisher> publisher =
      SocketPublisher::Open(po).value();
  FalccModel head = FreshModel();
  publisher->PublishCheckpoint(head).value();
  const std::string model_path =
      (fs::path(::testing::TempDir()) / "sock_restart_v0.falcc").string();
  ASSERT_TRUE(head.SaveToFile(model_path).ok());

  ReplicaFleetOptions options;
  options.num_replicas = 2;
  options.feed_endpoint = publisher->endpoint();
  options.puller = FastPuller();
  options.socket.reconnect_initial_seconds = 0.01;
  options.socket.reconnect_max_seconds = 0.05;
  options.socket.liveness_timeout_seconds = 0.3;
  ReplicaFleet fleet(options);
  ASSERT_TRUE(fleet.Bootstrap(model_path).ok());
  ASSERT_TRUE(WaitConverged(&fleet, HashOf(head)));
  {
    FalccModel next = NextVersion(head, 0);
    const size_t clusters[] = {0};
    publisher->PublishDelta(next, clusters, HashOf(head)).value();
    head = std::move(next);
  }
  ASSERT_TRUE(WaitConverged(&fleet, HashOf(head)));

  // The publisher dies. Replicas keep serving what they have.
  publisher->Close();
  const TrainValTest s = MakeSplits();
  std::vector<double> flat;
  const auto row = s.test.Row(0);
  flat.insert(flat.end(), row.begin(), row.end());
  const ClassifyRequest request{flat, s.test.num_features()};
  EXPECT_TRUE(fleet.engine(0)->ClassifyBatch(request).ok());
  EXPECT_TRUE(fleet.ConvergedTo(HashOf(head)));

  // A new publisher binds the same endpoint over the same durable feed
  // directory: sequences resume, replicas resubscribe from their last
  // applied position, and the next delta converges the fleet again.
  std::unique_ptr<SocketPublisher> revived = SocketPublisher::Open(po).value();
  {
    FalccModel next = NextVersion(head, 1 % head.num_clusters());
    const size_t clusters[] = {1 % head.num_clusters()};
    revived->PublishDelta(next, clusters, HashOf(head)).value();
    head = std::move(next);
  }
  EXPECT_TRUE(WaitConverged(&fleet, HashOf(head)));
  revived->Close();
}

// The socket variant of the pull-while-classify race: the receiver
// thread spools frames and notifies, the puller thread applies, the
// classify thread reads — all concurrently (TSan coverage).
TEST(PullerConcurrencyTest, SocketPullWhileClassifyRace) {
  const std::string dir = FreshDir("replicate_sock_race");
  SocketPublisherOptions po;
  po.listen = "unix://" + SocketPath("sock_race.sock");
  po.publisher.dir = dir;
  po.publisher.checkpoint_every = 0;
  po.heartbeat_interval_seconds = 0.05;
  std::unique_ptr<SocketPublisher> publisher =
      SocketPublisher::Open(po).value();
  FalccModel head = FreshModel();
  publisher->PublishCheckpoint(head).value();

  serve::FalccEngine engine(NoFlusher());
  engine.Install(FreshModel());

  SocketFeedOptions feed_options;
  feed_options.reconnect_initial_seconds = 0.01;
  feed_options.reconnect_max_seconds = 0.05;
  std::unique_ptr<SocketFeed> feed =
      SocketFeed::Connect(publisher->endpoint(), feed_options).value();
  DeltaPullerOptions options = FastPuller();
  options.poll_interval_seconds = 0.05;  // frames push their own wakes
  DeltaPuller puller(&engine, std::move(feed), options);
  puller.Start();

  const TrainValTest s = MakeSplits();
  std::vector<double> flat;
  const size_t rows = std::min<size_t>(s.test.num_rows(), 64);
  for (size_t i = 0; i < rows; ++i) {
    const auto row = s.test.Row(i);
    flat.insert(flat.end(), row.begin(), row.end());
  }
  const size_t width = s.test.num_features();

  std::atomic<bool> stop{false};
  std::thread classifier([&] {
    const ClassifyRequest request{flat, width};
    while (!stop.load(std::memory_order_acquire)) {
      const Result<ClassifyResponse> response = engine.ClassifyBatch(request);
      EXPECT_TRUE(response.ok());
    }
  });

  for (size_t event = 0; event < 5; ++event) {
    FalccModel next = NextVersion(head, event % head.num_clusters());
    const size_t clusters[] = {event % head.num_clusters()};
    ASSERT_TRUE(publisher->PublishDelta(next, clusters, HashOf(head)).ok());
    head = std::move(next);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  const uint64_t target = HashOf(head);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (std::chrono::steady_clock::now() < deadline) {
    const Result<uint64_t> serving = puller.ServingHash();
    if (serving.ok() && serving.value() == target) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop.store(true, std::memory_order_release);
  classifier.join();
  puller.Stop();
  EXPECT_EQ(puller.ServingHash().value(), target);
  EXPECT_EQ(puller.Stats().deltas_applied, 5u);
  publisher->Close();
}

}  // namespace
}  // namespace falcc
