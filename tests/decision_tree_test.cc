#include "ml/decision_tree.h"

#include <gtest/gtest.h>

#include "datagen/synthetic.h"
#include "util/rng.h"

namespace falcc {
namespace {

// Axis-separable toy data: y = 1 iff feature0 > 0.
Dataset MakeSeparable(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> features;
  std::vector<int> labels;
  for (size_t i = 0; i < n; ++i) {
    const double x0 = rng.Uniform(-1.0, 1.0);
    const double x1 = rng.Uniform(-1.0, 1.0);
    features.push_back(x0);
    features.push_back(x1);
    labels.push_back(x0 > 0.0 ? 1 : 0);
  }
  return Dataset::Create({"x0", "x1"}, std::move(features), 2,
                         std::move(labels), {})
      .value();
}

TEST(DecisionTreeTest, LearnsSeparableData) {
  const Dataset d = MakeSeparable(500, 1);
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(d).ok());
  EXPECT_GT(Accuracy(tree, d), 0.99);
}

TEST(DecisionTreeTest, GeneralizesToFreshData) {
  const Dataset train = MakeSeparable(500, 1);
  const Dataset test = MakeSeparable(500, 2);
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(train).ok());
  EXPECT_GT(Accuracy(tree, test), 0.97);
}

TEST(DecisionTreeTest, DepthZeroIsMajorityVote) {
  const Dataset d = MakeSeparable(100, 3);
  DecisionTreeOptions opt;
  opt.max_depth = 0;
  DecisionTree tree(opt);
  ASSERT_TRUE(tree.Fit(d).ok());
  EXPECT_EQ(tree.num_nodes(), 1u);
  EXPECT_EQ(tree.depth(), 0u);
  // Every sample gets the same probability.
  EXPECT_DOUBLE_EQ(tree.PredictProba(d.Row(0)), tree.PredictProba(d.Row(1)));
}

TEST(DecisionTreeTest, RespectsMaxDepth) {
  const Dataset d = MakeSeparable(500, 4);
  DecisionTreeOptions opt;
  opt.max_depth = 2;
  DecisionTree tree(opt);
  ASSERT_TRUE(tree.Fit(d).ok());
  EXPECT_LE(tree.depth(), 2u);
}

TEST(DecisionTreeTest, PureNodeStops) {
  // All labels equal -> single leaf.
  Dataset d =
      Dataset::Create({"x"}, {1.0, 2.0, 3.0}, 1, {1, 1, 1}, {}).value();
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(d).ok());
  EXPECT_EQ(tree.num_nodes(), 1u);
  EXPECT_DOUBLE_EQ(tree.PredictProba(d.Row(0)), 1.0);
}

TEST(DecisionTreeTest, WeightsShiftPrediction) {
  // Two identical points with conflicting labels: weights decide.
  Dataset d =
      Dataset::Create({"x"}, {1.0, 1.0}, 1, {0, 1}, {}).value();
  DecisionTree tree;
  const std::vector<double> w = {1.0, 9.0};
  ASSERT_TRUE(tree.Fit(d, w).ok());
  EXPECT_EQ(tree.Predict(d.Row(0)), 1);
  const std::vector<double> w2 = {9.0, 1.0};
  ASSERT_TRUE(tree.Fit(d, w2).ok());
  EXPECT_EQ(tree.Predict(d.Row(0)), 0);
}

TEST(DecisionTreeTest, EntropyCriterionAlsoLearns) {
  const Dataset d = MakeSeparable(300, 5);
  DecisionTreeOptions opt;
  opt.criterion = SplitCriterion::kEntropy;
  DecisionTree tree(opt);
  ASSERT_TRUE(tree.Fit(d).ok());
  EXPECT_GT(Accuracy(tree, d), 0.98);
}

TEST(DecisionTreeTest, MinSamplesLeafLimitsSplits) {
  const Dataset d = MakeSeparable(100, 6);
  DecisionTreeOptions opt;
  opt.min_samples_leaf = 60;  // no split can satisfy both sides
  DecisionTree tree(opt);
  ASSERT_TRUE(tree.Fit(d).ok());
  EXPECT_EQ(tree.num_nodes(), 1u);
}

TEST(DecisionTreeTest, FeatureSubsamplingStillWorks) {
  const Dataset d = MakeSeparable(500, 7);
  DecisionTreeOptions opt;
  opt.max_features = 1;
  opt.seed = 3;
  DecisionTree tree(opt);
  ASSERT_TRUE(tree.Fit(d).ok());
  // With only 2 features and the informative one being x0, random
  // subsampling still finds it at some depth.
  EXPECT_GT(Accuracy(tree, d), 0.8);
}

TEST(DecisionTreeTest, DeterministicForSeed) {
  const Dataset d = MakeSeparable(300, 8);
  DecisionTreeOptions opt;
  opt.max_features = 1;
  opt.seed = 42;
  DecisionTree a(opt), b(opt);
  ASSERT_TRUE(a.Fit(d).ok());
  ASSERT_TRUE(b.Fit(d).ok());
  for (size_t i = 0; i < d.num_rows(); ++i) {
    EXPECT_EQ(a.Predict(d.Row(i)), b.Predict(d.Row(i)));
  }
}

TEST(DecisionTreeTest, CloneKeepsFittedState) {
  const Dataset d = MakeSeparable(300, 9);
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(d).ok());
  const std::unique_ptr<Classifier> clone = tree.Clone();
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(tree.Predict(d.Row(i)), clone->Predict(d.Row(i)));
  }
}

TEST(DecisionTreeTest, RejectsEmptyData) {
  Dataset d;
  DecisionTree tree;
  EXPECT_FALSE(tree.Fit(d).ok());
}

TEST(DecisionTreeTest, RejectsBadWeights) {
  const Dataset d = MakeSeparable(10, 10);
  DecisionTree tree;
  const std::vector<double> neg = {1, 1, 1, 1, 1, 1, 1, 1, 1, -1};
  EXPECT_FALSE(tree.Fit(d, neg).ok());
  const std::vector<double> wrong_size = {1.0};
  EXPECT_FALSE(tree.Fit(d, wrong_size).ok());
}

TEST(DecisionTreeTest, ProbaIsLeafPositiveFraction) {
  // 4 points in one leaf region (depth 0): proba = 3/4.
  Dataset d = Dataset::Create({"x"}, {1, 1, 1, 1}, 1, {1, 1, 1, 0}, {})
                  .value();
  DecisionTreeOptions opt;
  opt.max_depth = 0;
  DecisionTree tree(opt);
  ASSERT_TRUE(tree.Fit(d).ok());
  EXPECT_DOUBLE_EQ(tree.PredictProba(d.Row(0)), 0.75);
}

TEST(DecisionTreeTest, NameReflectsOptions) {
  DecisionTreeOptions opt;
  opt.max_depth = 3;
  opt.criterion = SplitCriterion::kEntropy;
  EXPECT_EQ(DecisionTree(opt).Name(), "DecisionTree(depth=3,entropy)");
}

}  // namespace
}  // namespace falcc
