// Tests of the online drift monitor: the lock-free decision log, the
// windowed loss estimators, CUSUM detection, the per-cluster refresh
// path, and the end-to-end drift → alarm → refresh acceptance scenario.

#include "monitor/monitor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/assessment.h"
#include "core/falcc.h"
#include "data/split.h"
#include "datagen/synthetic.h"
#include "fairness/loss.h"
#include "monitor/decision_log.h"
#include "monitor/drift_detector.h"
#include "monitor/refresher.h"
#include "monitor/window_stats.h"
#include "serve/engine.h"
#include "serve/sharded_engine.h"

namespace falcc {
namespace {

using monitor::ClusterWindow;
using monitor::DecisionLog;
using monitor::DecisionLogStats;
using monitor::DriftDetector;
using monitor::DriftDetectorOptions;
using monitor::FairnessMonitor;
using monitor::LoggedDecision;
using monitor::MonitorOptions;
using monitor::MonitorPollResult;
using monitor::RefreshOutcome;
using monitor::WindowLoss;
using monitor::WindowStats;
using monitor::WindowStatsOptions;

TrainValTest MakeSplits(uint64_t seed = 11, size_t n = 2000) {
  SyntheticConfig cfg;
  cfg.num_samples = n;
  cfg.seed = 7;
  const Dataset d = GenerateImplicitBias(cfg).value();
  return SplitDatasetDefault(d, seed).value();
}

FalccOptions FastOptions() {
  FalccOptions opt;
  opt.seed = 42;
  opt.trainer.estimator_grid = {5};
  opt.trainer.depth_grid = {1, 4};
  opt.trainer.pool_size = 3;
  opt.fixed_k = 4;
  return opt;
}

std::vector<double> Flatten(const Dataset& data) {
  std::vector<double> flat;
  flat.reserve(data.num_rows() * data.num_features());
  for (size_t i = 0; i < data.num_rows(); ++i) {
    const auto row = data.Row(i);
    flat.insert(flat.end(), row.begin(), row.end());
  }
  return flat;
}

SampleDecision MakeDecision(size_t cluster, size_t group, int label) {
  SampleDecision d;
  d.cluster = cluster;
  d.group = group;
  d.model = 0;
  d.label = label;
  d.probability = label == 1 ? 0.9 : 0.1;
  return d;
}

// --- DecisionLog -------------------------------------------------------

TEST(DecisionLogTest, AppendFeedbackDrainRoundTrip) {
  DecisionLog log(8, 3);
  const std::vector<double> f0 = {1.0, 2.0, 3.0};
  const std::vector<double> f1 = {4.0, 5.0, 6.0};
  const std::vector<double> f2 = {7.0, 8.0, 9.0};
  EXPECT_EQ(log.Append(MakeDecision(0, 0, 1), f0, 5), 0u);
  EXPECT_EQ(log.Append(MakeDecision(1, 1, 0), f1, 5), 1u);
  EXPECT_EQ(log.Append(MakeDecision(2, 0, 1), f2, 6), 2u);

  EXPECT_TRUE(log.AddFeedback(2, 0));  // out of order on purpose
  EXPECT_TRUE(log.AddFeedback(0, 1));

  std::vector<LoggedDecision> drained;
  std::vector<std::vector<double>> features;
  const size_t n = log.DrainLabeled([&](const LoggedDecision& d) {
    drained.push_back(d);
    features.emplace_back(d.features.begin(), d.features.end());
  });
  ASSERT_EQ(n, 2u);
  // Id order regardless of feedback order.
  EXPECT_EQ(drained[0].id, 0u);
  EXPECT_EQ(drained[0].cluster, 0u);
  EXPECT_EQ(drained[0].group, 0u);
  EXPECT_EQ(drained[0].predicted, 1);
  EXPECT_EQ(drained[0].truth, 1);
  EXPECT_EQ(drained[0].snapshot_version, 5u);
  EXPECT_EQ(features[0], f0);
  EXPECT_EQ(drained[1].id, 2u);
  EXPECT_EQ(drained[1].predicted, 1);
  EXPECT_EQ(drained[1].truth, 0);
  EXPECT_EQ(drained[1].snapshot_version, 6u);
  EXPECT_EQ(features[1], f2);

  // Unlabeled id 1 stays; a second drain finds nothing new.
  EXPECT_EQ(log.DrainLabeled([](const LoggedDecision&) {}), 0u);

  const DecisionLogStats stats = log.Stats();
  EXPECT_EQ(stats.appended, 3u);
  EXPECT_EQ(stats.labeled, 2u);
  EXPECT_EQ(stats.consumed, 2u);
  EXPECT_EQ(stats.feedback_missed, 0u);
  EXPECT_EQ(stats.overwritten, 0u);
}

TEST(DecisionLogTest, FeedbackMissesAndOverwrites) {
  DecisionLog log(4, 1);
  const std::vector<double> f = {1.0};
  for (uint64_t i = 0; i < 4; ++i) {
    log.Append(MakeDecision(0, 0, 0), f, 1);
  }
  EXPECT_TRUE(log.AddFeedback(1, 1));
  EXPECT_FALSE(log.AddFeedback(1, 1));  // double feedback
  EXPECT_EQ(log.DrainLabeled([](const LoggedDecision&) {}), 1u);
  EXPECT_FALSE(log.AddFeedback(1, 1));  // already consumed

  // Wrap the ring: ids 4..7 displace 0..3. Ids 0, 2, 3 were never
  // consumed (id 1 was), so three entries are lost.
  for (uint64_t i = 0; i < 4; ++i) {
    log.Append(MakeDecision(0, 0, 0), f, 1);
  }
  EXPECT_FALSE(log.AddFeedback(0, 1));  // overwritten
  const DecisionLogStats stats = log.Stats();
  EXPECT_EQ(stats.overwritten, 3u);
  EXPECT_EQ(stats.feedback_missed, 3u);
  // Feedback for the live generation still works.
  EXPECT_TRUE(log.AddFeedback(7, 0));
}

TEST(DecisionLogTest, CapacityRoundsUpToPowerOfTwo) {
  DecisionLog log(5, 2);
  EXPECT_EQ(log.capacity(), 8u);
  EXPECT_EQ(log.num_features(), 2u);
}

// --- WindowStats -------------------------------------------------------

/// Recomputes the windowed loss from the window's raw samples through
/// the offline implementation (CombinedLoss), the reference WindowStats
/// must match bit for bit in group-fairness mode.
WindowLoss ReferenceLoss(const ClusterWindow& window, size_t num_groups,
                         FairnessMetric metric, double lambda) {
  GroupedPredictions in;
  in.labels = window.labels;
  in.predictions = window.predictions;
  in.groups = window.groups;
  in.num_groups = num_groups;
  const LossBreakdown loss = CombinedLoss(in, metric, lambda).value();
  WindowLoss out;
  out.inaccuracy = loss.inaccuracy;
  out.bias = loss.bias;
  out.combined = loss.combined;
  out.count = window.labels.size();
  return out;
}

TEST(WindowStatsTest, CountsLossMatchesCombinedLossExactly) {
  for (const FairnessMetric metric :
       {FairnessMetric::kDemographicParity, FairnessMetric::kEqualizedOdds,
        FairnessMetric::kEqualOpportunity,
        FairnessMetric::kTreatmentEquality}) {
    WindowStatsOptions options;
    options.window = 32;
    options.num_clusters = 2;
    options.num_groups = 3;
    options.num_features = 2;
    options.lambda = 0.35;
    options.metric = metric;
    WindowStats stats(options);

    // 80 adds > 2 windows of churn: eviction must keep counts exact.
    uint64_t state = 12345;
    for (size_t i = 0; i < 80; ++i) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      const size_t group = (state >> 33) % 3;
      const int truth = static_cast<int>((state >> 17) & 1);
      const int predicted = static_cast<int>((state >> 25) & 1);
      const std::vector<double> features = {static_cast<double>(i), 0.5};
      stats.Add(i % 2, group, truth, predicted, features);
    }

    for (size_t cluster = 0; cluster < 2; ++cluster) {
      ASSERT_EQ(stats.Count(cluster), 32u);
      EXPECT_EQ(stats.Seen(cluster), 40u);
      const WindowLoss actual = stats.Loss(cluster).value();
      const WindowLoss expected = ReferenceLoss(
          stats.Window(cluster), options.num_groups, metric, options.lambda);
      // Bit-identical: the counts determine the same rates in the same
      // summation order as fairness/metrics.cc.
      EXPECT_EQ(actual.inaccuracy, expected.inaccuracy)
          << FairnessMetricName(metric);
      EXPECT_EQ(actual.bias, expected.bias) << FairnessMetricName(metric);
      EXPECT_EQ(actual.combined, expected.combined)
          << FairnessMetricName(metric);
    }
  }
}

TEST(WindowStatsTest, ConsistencyModeMatchesAssessmentFormula) {
  WindowStatsOptions options;
  options.window = 16;
  options.num_clusters = 1;
  options.num_groups = 2;
  options.num_features = 1;
  options.lambda = 0.5;
  options.mode = AssessmentMode::kConsistency;
  WindowStats stats(options);

  std::vector<int> predictions, labels;
  for (size_t i = 0; i < 16; ++i) {
    const int truth = static_cast<int>(i % 2);
    const int predicted = static_cast<int>((i / 3) % 2);
    const std::vector<double> f = {static_cast<double>(i)};
    stats.Add(0, i % 2, truth, predicted, f);
    labels.push_back(truth);
    predictions.push_back(predicted);
  }

  // Reference: the per-sample loop of AssessCombination's consistency
  // branch (cluster-as-neighborhood inconsistency).
  const size_t n = predictions.size();
  double wrong = 0.0, pos = 0.0;
  for (size_t i = 0; i < n; ++i) {
    if (predictions[i] != labels[i]) ++wrong;
    pos += predictions[i];
  }
  double inconsistency = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double others = (pos - predictions[i]) / static_cast<double>(n - 1);
    inconsistency += std::fabs(static_cast<double>(predictions[i]) - others);
  }
  inconsistency /= static_cast<double>(n);
  const double expected =
      0.5 * wrong / static_cast<double>(n) + 0.5 * inconsistency;

  const WindowLoss actual = stats.Loss(0).value();
  EXPECT_NEAR(actual.combined, expected, 1e-12);
}

TEST(WindowStatsTest, WindowOrderEvictionAndClear) {
  WindowStatsOptions options;
  options.window = 4;
  options.num_clusters = 1;
  options.num_groups = 2;
  options.num_features = 1;
  WindowStats stats(options);

  for (int i = 0; i < 6; ++i) {  // evicts samples 0 and 1
    const std::vector<double> f = {static_cast<double>(i)};
    stats.Add(0, static_cast<size_t>(i) % 2, i % 2, 1 - i % 2, f);
  }
  ASSERT_EQ(stats.Count(0), 4u);
  const ClusterWindow window = stats.Window(0);
  // Oldest → newest: samples 2, 3, 4, 5.
  EXPECT_EQ(window.features, (std::vector<double>{2.0, 3.0, 4.0, 5.0}));
  EXPECT_EQ(window.labels, (std::vector<int>{0, 1, 0, 1}));
  EXPECT_EQ(window.predictions, (std::vector<int>{1, 0, 1, 0}));
  EXPECT_EQ(window.groups, (std::vector<size_t>{0, 1, 0, 1}));
  // Counts reflect eviction: (g=0, y=0, z=1) holds samples 2 and 4.
  EXPECT_EQ(stats.GroupCount(0, 0, 0, 1), 2u);
  EXPECT_EQ(stats.GroupCount(0, 1, 1, 0), 2u);
  EXPECT_EQ(stats.GroupCount(0, 0, 0, 0), 0u);

  stats.Clear(0);
  EXPECT_EQ(stats.Count(0), 0u);
  EXPECT_EQ(stats.GroupCount(0, 0, 0, 1), 0u);
  EXPECT_EQ(stats.Seen(0), 6u);  // lifetime counter survives Clear
  EXPECT_FALSE(stats.Loss(0).ok());
}

// --- DriftDetector -----------------------------------------------------

TEST(DriftDetectorTest, CusumAccumulatesLatchesAndResets) {
  DriftDetectorOptions options;
  options.threshold = 1.0;
  options.slack = 0.05;
  options.min_samples = 10;
  DriftDetector detector(options, {0.2, 0.3});

  // Below min_samples: ignored entirely.
  EXPECT_FALSE(detector.Update(0, 5.0, 9));
  EXPECT_EQ(detector.State(0).updates, 0u);

  // At the baseline: the score stays clamped at zero.
  EXPECT_FALSE(detector.Update(0, 0.2, 50));
  EXPECT_EQ(detector.State(0).score, 0.0);
  // Within the slack dead-zone: still zero.
  EXPECT_FALSE(detector.Update(0, 0.24, 50));
  EXPECT_EQ(detector.State(0).score, 0.0);

  // Sustained excess of 0.25 per step: alarm on the 4th step.
  EXPECT_FALSE(detector.Update(0, 0.5, 50));
  EXPECT_FALSE(detector.Update(0, 0.5, 50));
  EXPECT_FALSE(detector.Update(0, 0.5, 50));
  EXPECT_TRUE(detector.Update(0, 0.5, 50));
  EXPECT_TRUE(detector.Alarmed(0));
  // Latched: further updates report no NEW alarm, and a low loss does
  // not clear it.
  EXPECT_FALSE(detector.Update(0, 0.0, 50));
  EXPECT_TRUE(detector.Alarmed(0));
  EXPECT_EQ(detector.AlarmedClusters(), (std::vector<size_t>{0}));
  EXPECT_FALSE(detector.Alarmed(1));

  detector.Reset(0, 0.45);
  EXPECT_FALSE(detector.Alarmed(0));
  EXPECT_EQ(detector.State(0).score, 0.0);
  EXPECT_EQ(detector.State(0).baseline, 0.45);
  EXPECT_TRUE(detector.AlarmedClusters().empty());
}

// --- ReassessRegion ----------------------------------------------------

TEST(ReassessRegionTest, MatchesSelectBestCombinations) {
  // 3 models, 2 groups, 12 rows of deterministic pseudo-random votes.
  const size_t n = 12;
  std::vector<std::vector<int>> votes(3, std::vector<int>(n));
  std::vector<int> labels(n);
  std::vector<size_t> groups(n);
  uint64_t state = 99;
  for (size_t i = 0; i < n; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    labels[i] = static_cast<int>((state >> 11) & 1);
    groups[i] = (state >> 22) & 1;
    for (size_t m = 0; m < 3; ++m) {
      votes[m][i] = static_cast<int>((state >> (31 + m)) & 1);
    }
  }
  std::vector<ModelCombination> combos;
  for (size_t a = 0; a < 3; ++a) {
    for (size_t b = 0; b < 3; ++b) combos.push_back({a, b});
  }
  AssessmentContext ctx;
  ctx.votes = &votes;
  ctx.labels = labels;
  ctx.groups = groups;
  ctx.num_groups = 2;
  ctx.lambda = 0.5;

  const std::vector<std::vector<size_t>> regions = {
      {0, 1, 2, 3}, {4, 5, 6, 7, 8}, {9, 10, 11}};
  const std::vector<size_t> best =
      SelectBestCombinations(ctx, combos, regions).value();
  for (size_t r = 0; r < regions.size(); ++r) {
    const RegionBest region = ReassessRegion(ctx, combos, regions[r]).value();
    EXPECT_EQ(region.index, best[r]) << "region " << r;
    EXPECT_EQ(region.loss,
              AssessCombination(ctx, combos[best[r]], regions[r]).value());
  }
}

// --- Snapshot baselines ------------------------------------------------

TEST(SnapshotBaselineTest, RoundTripPreservesBaselinesAndParams) {
  const TrainValTest s = MakeSplits();
  FalccOptions options = FastOptions();
  options.lambda = 0.4;
  options.metric = FairnessMetric::kEqualizedOdds;
  const FalccModel model =
      FalccModel::Train(s.train, s.validation, options).value();
  ASSERT_TRUE(model.has_baseline_losses());
  ASSERT_EQ(model.baseline_losses().size(), model.num_clusters());
  for (const double loss : model.baseline_losses()) {
    EXPECT_TRUE(std::isfinite(loss));
    EXPECT_GE(loss, 0.0);
  }

  std::stringstream buffer;
  ASSERT_TRUE(model.Save(&buffer).ok());
  const FalccModel loaded = FalccModel::Load(&buffer).value();
  ASSERT_TRUE(loaded.has_baseline_losses());
  EXPECT_EQ(loaded.baseline_losses(), model.baseline_losses());
  EXPECT_EQ(loaded.assess_lambda(), 0.4);
  EXPECT_EQ(loaded.assess_metric(), FairnessMetric::kEqualizedOdds);
  EXPECT_EQ(loaded.assess_mode(), AssessmentMode::kGroupFairness);
}

TEST(SnapshotBaselineTest, LegacyStreamWithoutMonitorSectionStillLoads) {
  const TrainValTest s = MakeSplits();
  const FalccModel model =
      FalccModel::Train(s.train, s.validation, FastOptions()).value();
  std::stringstream buffer;
  // Pre-monitoring artifacts only ever existed in the v1 text format.
  ASSERT_TRUE(model.Save(&buffer, SnapshotFormat::kV1).ok());

  // A pre-monitoring artifact is exactly the bytes before the trailing
  // monitor section.
  std::string bytes = buffer.str();
  const size_t marker = bytes.find("falcc-monitor-v1");
  ASSERT_NE(marker, std::string::npos);
  std::stringstream legacy(bytes.substr(0, marker));
  const FalccModel loaded = FalccModel::Load(&legacy).value();
  EXPECT_FALSE(loaded.has_baseline_losses());
  EXPECT_TRUE(loaded.baseline_losses().empty());

  // Classification is unaffected by the missing section.
  for (size_t i = 0; i < std::min<size_t>(s.test.num_rows(), 50); ++i) {
    EXPECT_EQ(loaded.Classify(s.test.Row(i)), model.Classify(s.test.Row(i)));
  }

  // But the monitor refuses to attach without baselines.
  serve::FalccEngineOptions engine_options;
  engine_options.start_flusher = false;
  serve::FalccEngine engine(engine_options);
  std::stringstream legacy_again(bytes.substr(0, marker));
  engine.Install(FalccModel::Load(&legacy_again).value());
  Result<std::unique_ptr<FairnessMonitor>> monitor =
      FairnessMonitor::Attach(&engine);
  ASSERT_FALSE(monitor.ok());
  EXPECT_EQ(monitor.status().code(), StatusCode::kFailedPrecondition);
}

// --- CloneWithRefreshes ------------------------------------------------

// Refresh isolation (untouched clusters bit-identical, routing stable,
// invalid refreshes rejected) now lives in invariants_test
// (InvariantsTest.RefreshLeavesUntouchedClustersBitIdentical) via the
// shared CheckRefreshIsolation helper.

TEST(RefreshCompileTest, UntouchedClustersReuseKernelsAcrossHotSwap) {
  const TrainValTest s = MakeSplits();
  FalccModel model =
      FalccModel::Train(s.train, s.validation, FastOptions()).value();
  ASSERT_TRUE(model.has_compiled_kernels());
  ASSERT_GE(model.num_clusters(), 2u);

  // Refresh cluster 0 to a combination that differs from the serving one.
  ModelCombination replacement = model.selected_combinations()[0];
  replacement[0] = (replacement[0] + 1) % model.pool().size();
  ClusterRefresh refresh;
  refresh.cluster = 0;
  refresh.combination = replacement;
  refresh.baseline_loss = 0.25;

  FalccModel clone = model.CloneWithRefreshes({&refresh, 1}).value();
  ASSERT_TRUE(clone.has_compiled_kernels());

  // Untouched clusters share the source's kernel objects verbatim — the
  // refresh path must reuse, not recompile.
  for (size_t c = 1; c < model.num_clusters(); ++c) {
    EXPECT_EQ(clone.compiled_combo(c).get(), model.compiled_combo(c).get())
        << "cluster " << c;
  }

  // The refreshed cluster got a new kernel, bit-identical to compiling
  // its combination from scratch against the clone's pool.
  ASSERT_NE(clone.compiled_combo(0), nullptr);
  EXPECT_NE(clone.compiled_combo(0).get(), model.compiled_combo(0).get());
  const std::shared_ptr<const CompiledCombo> scratch =
      CompiledCombo::Compile(clone.pool(), replacement).value();
  EXPECT_TRUE(clone.compiled_combo(0)->SameBits(*scratch));

  // Hot-swapping the clone must not trigger a recompile: the installed
  // snapshot serves the exact kernel objects the clone carried in.
  std::vector<const CompiledCombo*> expected;
  expected.reserve(clone.num_clusters());
  for (size_t c = 0; c < clone.num_clusters(); ++c) {
    expected.push_back(clone.compiled_combo(c).get());
  }
  serve::FalccEngineOptions engine_options;
  engine_options.start_flusher = false;
  serve::FalccEngine engine(engine_options);
  engine.Install(std::move(clone));
  const std::shared_ptr<const FalccModel> snapshot = engine.snapshot();
  ASSERT_NE(snapshot, nullptr);
  for (size_t c = 0; c < snapshot->num_clusters(); ++c) {
    EXPECT_EQ(snapshot->compiled_combo(c).get(), expected[c])
        << "cluster " << c;
  }

  // And the swapped snapshot still serves the refreshed combination
  // through the compiled path exactly as the interpreter would.
  const std::vector<double> flat = Flatten(s.test);
  ClassifyRequest request{flat, s.test.num_features()};
  const ClassifyResponse compiled_response =
      engine.ClassifyBatch(request).value();
  FalccModel interpreted = model.CloneWithRefreshes({&refresh, 1}).value();
  interpreted.set_use_compiled(false);
  const ClassifyResponse interpreted_response =
      interpreted.ClassifyBatch(request).value();
  ASSERT_EQ(compiled_response.decisions.size(),
            interpreted_response.decisions.size());
  for (size_t i = 0; i < compiled_response.decisions.size(); ++i) {
    const SampleDecision& a = compiled_response.decisions[i];
    const SampleDecision& b = interpreted_response.decisions[i];
    EXPECT_EQ(a.label, b.label) << "row " << i;
    EXPECT_EQ(a.probability, b.probability) << "row " << i;
    EXPECT_EQ(a.model, b.model) << "row " << i;
  }
}

// --- End-to-end drift → alarm → refresh --------------------------------

struct Replay {
  serve::FalccEngine* engine;
  FairnessMonitor* monitor;
  const std::vector<double>* features;  // row-major replay pool
  size_t width = 0;
  size_t num_rows = 0;
  size_t cursor = 0;
};

/// Replays `count` samples in chunks: classify, feed back ground truth
/// (flipping the label of `drift_cluster`'s decisions when >= 0), poll.
/// Appends every poll result to `*polls`; stops early once a poll ran a
/// refresh.
void ReplayChunks(Replay* r, size_t count, size_t chunk,
                  int64_t drift_cluster,
                  std::vector<MonitorPollResult>* polls) {
  size_t sent = 0;
  while (sent < count) {
    const size_t take = std::min(chunk, count - sent);
    std::vector<double> batch;
    batch.reserve(take * r->width);
    for (size_t i = 0; i < take; ++i) {
      const size_t row = (r->cursor + i) % r->num_rows;
      batch.insert(batch.end(), r->features->begin() + row * r->width,
                   r->features->begin() + (row + 1) * r->width);
    }
    r->cursor = (r->cursor + take) % r->num_rows;
    sent += take;

    const uint64_t base = r->monitor->log().next_id();
    const ClassifyRequest request{batch, r->width};
    const ClassifyResponse response =
        r->engine->ClassifyBatch(request).value();
    for (size_t i = 0; i < response.decisions.size(); ++i) {
      const SampleDecision& d = response.decisions[i];
      const bool flip = drift_cluster >= 0 &&
                        d.cluster == static_cast<size_t>(drift_cluster);
      const int truth = flip ? 1 - d.label : d.label;
      EXPECT_TRUE(r->monitor->AddFeedback(base + i, truth)) << "id " << i;
    }
    polls->push_back(r->monitor->Poll().value());
    if (!polls->back().refreshes.empty()) break;
  }
}

TEST(MonitorE2ETest, AlarmOnlyOnShiftedClusterAndRefreshImproves) {
  const TrainValTest s = MakeSplits(11, 3000);
  FalccModel model =
      FalccModel::Train(s.train, s.validation, FastOptions()).value();
  const size_t num_clusters = model.num_clusters();
  ASSERT_GE(num_clusters, 2u);

  // Pick the replay pool's most populated cluster as the drift target.
  const std::vector<double> pool = Flatten(s.test);
  const size_t width = s.test.num_features();
  const ClassifyRequest probe_request{pool, width};
  const ClassifyResponse probe = model.ClassifyBatch(probe_request).value();
  std::vector<size_t> per_cluster(num_clusters, 0);
  for (const SampleDecision& d : probe.decisions) ++per_cluster[d.cluster];
  const size_t target = static_cast<size_t>(
      std::max_element(per_cluster.begin(), per_cluster.end()) -
      per_cluster.begin());

  serve::FalccEngineOptions engine_options;
  engine_options.start_flusher = false;
  serve::FalccEngine engine(engine_options);
  engine.Install(std::move(model));

  MonitorOptions options;
  options.log_capacity = 1 << 12;
  options.window = 256;
  options.detector.threshold = 1.0;
  options.detector.slack = 0.1;
  options.detector.min_samples = 100;
  options.delta_dir = ::testing::TempDir();  // publish refresh deltas
  std::unique_ptr<FairnessMonitor> monitor =
      FairnessMonitor::Attach(&engine, options).value();

  Replay replay{&engine, monitor.get(), &pool, width, s.test.num_rows(), 0};

  // Phase 1: 10k labeled samples with truth == prediction everywhere.
  // No cluster may alarm and no refresh may run.
  std::vector<MonitorPollResult> stable;
  ReplayChunks(&replay, 10000, 250, -1, &stable);
  for (const MonitorPollResult& poll : stable) {
    EXPECT_TRUE(poll.new_alarms.empty());
    EXPECT_TRUE(poll.refreshes.empty());
  }
  EXPECT_TRUE(monitor->detector().AlarmedClusters().empty());
  EXPECT_EQ(monitor->refresher_stats().attempts, 0u);
  EXPECT_GE(monitor->log().Stats().consumed, 10000u);

  // Phase 2: targeted label shift — ground truth flips against the
  // serving prediction inside the target cluster only.
  const uint64_t version_before = engine.snapshot_version();
  const ClassifyResponse before =
      engine.ClassifyBatch(probe_request).value();
  // A "replica" would be serving this exact snapshot when the primary's
  // refresher publishes a delta against it.
  std::ostringstream base_bytes;
  ASSERT_TRUE(engine.snapshot()->Save(&base_bytes).ok());

  std::vector<MonitorPollResult> drifted;
  ReplayChunks(&replay, 20000, 250, static_cast<int64_t>(target), &drifted);

  // The alarm fired on the target cluster and nowhere else.
  std::vector<size_t> alarms;
  std::vector<RefreshOutcome> refreshes;
  for (const MonitorPollResult& poll : drifted) {
    alarms.insert(alarms.end(), poll.new_alarms.begin(),
                  poll.new_alarms.end());
    refreshes.insert(refreshes.end(), poll.refreshes.begin(),
                     poll.refreshes.end());
  }
  ASSERT_EQ(alarms, (std::vector<size_t>{target}));

  // The refresh installed a strictly better combination for the target.
  ASSERT_EQ(refreshes.size(), 1u);
  const RefreshOutcome& outcome = refreshes[0];
  EXPECT_EQ(outcome.cluster, target);
  EXPECT_TRUE(outcome.installed);
  EXPECT_LT(outcome.best_loss, outcome.current_loss);
  EXPECT_EQ(monitor->refresher_stats().installed, 1u);
  EXPECT_EQ(engine.snapshot_version(), version_before + 1);
  EXPECT_FALSE(monitor->detector().Alarmed(target));  // reset post-refresh

  // The install also published a delta artifact: O(one combo section),
  // named after the base snapshot it applies to.
  EXPECT_EQ(monitor->refresher_stats().delta_published, 1u);
  EXPECT_EQ(monitor->refresher_stats().delta_failures, 0u);
  ASSERT_FALSE(outcome.delta_path.empty());
  EXPECT_GT(outcome.delta_bytes, 0u);
  EXPECT_LT(outcome.delta_bytes, base_bytes.str().size() / 4);
  std::ifstream delta_in(outcome.delta_path, std::ios::binary);
  ASSERT_TRUE(delta_in.good()) << outcome.delta_path;
  std::ostringstream delta_bytes;
  delta_bytes << delta_in.rdbuf();
  ASSERT_EQ(delta_bytes.str().size(), outcome.delta_bytes);

  // A replica serving the base snapshot applies the delta and converges
  // on the primary's refreshed snapshot without a full reload.
  serve::FalccEngine replica(engine_options);
  std::istringstream base_in(base_bytes.str());
  replica.Install(FalccModel::Load(&base_in).value());
  ASSERT_TRUE(replica.ApplyDeltaBytes(delta_bytes.str()).ok());

  // Decisions on every unshifted cluster are bit-identical before and
  // after the hot-swap refresh.
  const ClassifyResponse after = engine.ClassifyBatch(probe_request).value();
  ASSERT_EQ(after.decisions.size(), before.decisions.size());
  size_t target_changed = 0;
  for (size_t i = 0; i < before.decisions.size(); ++i) {
    const SampleDecision& b = before.decisions[i];
    const SampleDecision& a = after.decisions[i];
    EXPECT_EQ(a.cluster, b.cluster) << i;
    EXPECT_EQ(a.group, b.group) << i;
    if (b.cluster != target) {
      EXPECT_EQ(a.label, b.label) << i;
      EXPECT_EQ(a.probability, b.probability) << i;
      EXPECT_EQ(a.model, b.model) << i;
    } else if (a.model != b.model) {
      ++target_changed;
    }
  }
  EXPECT_GT(target_changed, 0u);  // the target really serves new models

  // The replica's post-delta decisions match the primary bit for bit.
  const ClassifyResponse replica_after =
      replica.ClassifyBatch(probe_request).value();
  ASSERT_EQ(replica_after.decisions.size(), after.decisions.size());
  for (size_t i = 0; i < after.decisions.size(); ++i) {
    const SampleDecision& p = after.decisions[i];
    const SampleDecision& r = replica_after.decisions[i];
    EXPECT_TRUE(p.label == r.label && p.probability == r.probability &&
                p.cluster == r.cluster && p.group == r.group &&
                p.model == r.model)
        << "sample " << i;
  }
  std::remove(outcome.delta_path.c_str());

  // The summary reflects the episode.
  const monitor::MonitorSummary summary = monitor->Summary();
  EXPECT_EQ(summary.num_clusters, num_clusters);
  EXPECT_EQ(summary.refresh.installed, 1u);
  const std::string json = summary.ToJson();
  EXPECT_NE(json.find("\"refresh\""), std::string::npos);
  EXPECT_NE(json.find("\"clusters\""), std::string::npos);
}

// --- Monitor over a sharded fleet --------------------------------------

// The same drift → alarm → refresh loop, but decisions fan in from a
// ShardedEngine's flush workers through SetDecisionObserver and the
// refresh installs through the fleet's snapshot store — every shard
// serves the refreshed combination on its next flush.
TEST(MonitorShardedTest, ObserverFanInDrivesRefreshAcrossShards) {
  const TrainValTest s = MakeSplits(11, 3000);
  FalccModel model =
      FalccModel::Train(s.train, s.validation, FastOptions()).value();
  const size_t num_clusters = model.num_clusters();

  // Drift target: the replay pool's most populated cluster.
  const std::vector<double> pool = Flatten(s.test);
  const size_t width = s.test.num_features();
  const size_t num_rows = s.test.num_rows();
  const ClassifyRequest probe_request{pool, width};
  const ClassifyResponse probe = model.ClassifyBatch(probe_request).value();
  std::vector<size_t> per_cluster(num_clusters, 0);
  for (const SampleDecision& d : probe.decisions) ++per_cluster[d.cluster];
  const size_t target = static_cast<size_t>(
      std::max_element(per_cluster.begin(), per_cluster.end()) -
      per_cluster.begin());

  serve::ShardedEngineOptions engine_options;
  engine_options.num_shards = 4;
  serve::ShardedEngine engine(engine_options);
  engine.Install(std::move(model));

  MonitorOptions options;
  options.log_capacity = 1 << 12;
  options.window = 256;
  options.detector.threshold = 1.0;
  options.detector.slack = 0.1;
  options.detector.min_samples = 100;
  std::unique_ptr<FairnessMonitor> monitor =
      FairnessMonitor::Attach(&engine, options).value();
  const uint64_t version_before = engine.snapshot_version();

  // Stream through the shards. Classify is Submit + Wait, and the shard
  // flush runs the observer before completing the ticket, so sequential
  // calls produce sequential log ids — the id grabbed before the call is
  // the decision's.
  std::vector<RefreshOutcome> refreshes;
  size_t streamed = 0;
  for (size_t iter = 0; iter < 20000 && refreshes.empty(); ++iter) {
    const size_t row = iter % num_rows;
    const uint64_t id = monitor->log().next_id();
    const SampleDecision decision =
        engine.Classify(std::span<const double>(pool.data() + row * width,
                                                width))
            .value();
    const bool flip = decision.cluster == target;
    ASSERT_TRUE(monitor->AddFeedback(id, flip ? 1 - decision.label
                                              : decision.label));
    ++streamed;
    if ((iter + 1) % 250 == 0) {
      const MonitorPollResult poll = monitor->Poll().value();
      refreshes.insert(refreshes.end(), poll.refreshes.begin(),
                       poll.refreshes.end());
    }
  }

  // The flipped cluster alarmed and its refresh hot-swapped the fleet.
  ASSERT_EQ(refreshes.size(), 1u);
  EXPECT_EQ(refreshes[0].cluster, target);
  EXPECT_TRUE(refreshes[0].installed);
  EXPECT_EQ(engine.snapshot_version(), version_before + 1);

  // Every streamed decision reached the log through the fleet observer,
  // and the fleet's own observation counter agrees.
  EXPECT_EQ(monitor->log().Stats().appended, streamed);
  EXPECT_EQ(engine.GetMetrics().observed, streamed);

  // Shards serve the refreshed snapshot: their decisions match the
  // snapshot store's bit for bit.
  const std::shared_ptr<const FalccModel> refreshed = engine.snapshot();
  for (size_t row = 0; row < std::min<size_t>(num_rows, 64); ++row) {
    const std::span<const double> features(pool.data() + row * width, width);
    const SampleDecision via_shard = engine.Classify(features).value();
    EXPECT_EQ(via_shard.label, refreshed->Classify(features)) << row;
  }
  engine.Shutdown();
}

// --- Concurrency (ThreadSanitizer coverage) ----------------------------

// Concurrent decision logging (direct + micro-batched paths), feedback
// ingestion, polling with auto-refresh, and snapshot hot-swaps — the
// full monitor surface under race detection.
TEST(MonitorConcurrencyTest, LoggingFeedbackPollAndHotSwapRace) {
  const TrainValTest s = MakeSplits(11, 1200);
  FalccModel model =
      FalccModel::Train(s.train, s.validation, FastOptions()).value();

  serve::FalccEngine engine;  // flusher running
  engine.Install(std::move(model));

  MonitorOptions options;
  options.log_capacity = 1 << 10;
  options.window = 64;
  options.detector.threshold = 0.2;  // alarm (and refresh) eagerly
  options.detector.slack = 0.0;
  options.detector.min_samples = 8;
  std::unique_ptr<FairnessMonitor> monitor =
      FairnessMonitor::Attach(&engine, options).value();

  const std::vector<double> pool = Flatten(s.test);
  const size_t width = s.test.num_features();
  const size_t num_rows = s.test.num_rows();
  std::atomic<bool> done{false};

  // Two classifier threads: one direct-batch, one through the queue.
  std::thread batcher([&] {
    for (size_t iter = 0; iter < 40; ++iter) {
      const size_t start = (iter * 16) % (num_rows - 16);
      const ClassifyRequest request{
          std::span<const double>(pool.data() + start * width, 16 * width),
          width};
      ASSERT_TRUE(engine.ClassifyBatch(request).ok());
    }
  });
  std::thread submitter([&] {
    for (size_t iter = 0; iter < 200; ++iter) {
      const size_t row = iter % num_rows;
      const Result<SampleDecision> decision = engine.Classify(
          std::span<const double>(pool.data() + row * width, width));
      ASSERT_TRUE(decision.ok());
    }
  });
  // Feedback thread: labels whatever ids exist so far, repeatedly (the
  // misses on already-labeled ids exercise the CAS failure path).
  std::thread feedback([&] {
    while (!done.load(std::memory_order_acquire)) {
      const uint64_t n = monitor->log().next_id();
      for (uint64_t id = 0; id < n; ++id) {
        monitor->AddFeedback(id, static_cast<int>(id & 1));
      }
      std::this_thread::yield();
    }
  });
  // Poller thread: drains, detects, and auto-refreshes (hot-swapping
  // snapshots under the classifiers' feet).
  std::thread poller([&] {
    while (!done.load(std::memory_order_acquire)) {
      ASSERT_TRUE(monitor->Poll().ok());
      std::this_thread::yield();
    }
  });

  batcher.join();
  submitter.join();
  done.store(true, std::memory_order_release);
  feedback.join();
  poller.join();
  engine.Shutdown();

  ASSERT_TRUE(monitor->Poll().ok());
  const DecisionLogStats stats = monitor->log().Stats();
  EXPECT_EQ(stats.appended, 40u * 16u + 200u);
  EXPECT_GT(stats.labeled, 0u);
  EXPECT_EQ(engine.GetMetrics().observed, stats.appended);
}

}  // namespace
}  // namespace falcc
