#include "baselines/fair_ensembles.h"

#include <gtest/gtest.h>

#include "datagen/synthetic.h"
#include "fairness/metrics.h"

namespace falcc {
namespace {

Dataset MakeBiased(size_t n = 1200, double bias = 0.4, uint64_t seed = 61) {
  SyntheticConfig cfg;
  cfg.num_samples = n;
  cfg.bias = bias;
  cfg.seed = seed;
  return GenerateSocialBias(cfg).value();
}

double DpBias(const Classifier& model, const Dataset& d) {
  const GroupIndex index = GroupIndex::Build(d).value();
  const std::vector<size_t> groups = index.GroupsOf(d).value();
  const std::vector<int> preds = PredictAll(model, d);
  GroupedPredictions in;
  in.labels = d.labels();
  in.predictions = preds;
  in.groups = groups;
  in.num_groups = index.num_groups();
  return DemographicParity(in).value();
}

// ------------------------- TwoNaiveBayes -------------------------

TEST(TwoNaiveBayesTest, TrainsAndBeatsChance) {
  const Dataset d = MakeBiased();
  TwoNaiveBayes model;
  ASSERT_TRUE(model.Fit(d).ok());
  EXPECT_GT(Accuracy(model, d), 0.6);
}

TEST(TwoNaiveBayesTest, BalancingReducesDpVersusPlainNb) {
  const Dataset d = MakeBiased(2000, 0.5);
  GaussianNaiveBayes plain;
  ASSERT_TRUE(plain.Fit(d).ok());
  TwoNaiveBayes balanced;
  ASSERT_TRUE(balanced.Fit(d).ok());
  EXPECT_LT(DpBias(balanced, d), DpBias(plain, d));
}

TEST(TwoNaiveBayesTest, OffsetsMoveInOppositeDirections) {
  const Dataset d = MakeBiased(2000, 0.5);
  TwoNaiveBayes model;
  ASSERT_TRUE(model.Fit(d).ok());
  ASSERT_EQ(model.prior_offsets().size(), 2u);
  // One group is pushed up, the other down (or at least not both the
  // same direction with a large bias).
  EXPECT_LT(model.prior_offsets()[0] * model.prior_offsets()[1], 1e-12);
}

TEST(TwoNaiveBayesTest, RejectsWeightsAndTinyGroups) {
  const Dataset d = MakeBiased(200);
  TwoNaiveBayes model;
  std::vector<double> w(d.num_rows(), 1.0);
  EXPECT_FALSE(model.Fit(d, w).ok());
}

TEST(TwoNaiveBayesTest, CloneKeepsState) {
  const Dataset d = MakeBiased(500);
  TwoNaiveBayes model;
  ASSERT_TRUE(model.Fit(d).ok());
  const std::unique_ptr<Classifier> clone = model.Clone();
  EXPECT_DOUBLE_EQ(model.PredictProba(d.Row(0)),
                   clone->PredictProba(d.Row(0)));
}

// ------------------------- AdaFair -------------------------

TEST(AdaFairTest, TrainsAndBeatsChance) {
  const Dataset d = MakeBiased();
  AdaFair model;
  ASSERT_TRUE(model.Fit(d).ok());
  EXPECT_GT(Accuracy(model, d), 0.6);
}

TEST(AdaFairTest, FairnessTermReducesDp) {
  const Dataset d = MakeBiased(2000, 0.5);
  AdaFairOptions plain_opt;
  plain_opt.fairness_epsilon = 0.0;  // plain AdaBoost
  AdaFair plain(plain_opt);
  ASSERT_TRUE(plain.Fit(d).ok());
  AdaFairOptions fair_opt;
  fair_opt.fairness_epsilon = 3.0;
  AdaFair fair(fair_opt);
  ASSERT_TRUE(fair.Fit(d).ok());
  EXPECT_LE(DpBias(fair, d), DpBias(plain, d) + 0.02);
}

TEST(AdaFairTest, ProbaBounded) {
  const Dataset d = MakeBiased(400);
  AdaFair model;
  ASSERT_TRUE(model.Fit(d).ok());
  for (size_t i = 0; i < 50; ++i) {
    const double p = model.PredictProba(d.Row(i));
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(AdaFairTest, Deterministic) {
  const Dataset d = MakeBiased(500);
  AdaFair a, b;
  ASSERT_TRUE(a.Fit(d).ok());
  ASSERT_TRUE(b.Fit(d).ok());
  for (size_t i = 0; i < 30; ++i) {
    EXPECT_DOUBLE_EQ(a.PredictProba(d.Row(i)), b.PredictProba(d.Row(i)));
  }
}

TEST(AdaFairTest, RejectsBadConfig) {
  const Dataset d = MakeBiased(200);
  AdaFairOptions opt;
  opt.num_estimators = 0;
  AdaFair model(opt);
  EXPECT_FALSE(model.Fit(d).ok());
}

// ------------------------- Reweighing -------------------------

TEST(ReweighingTest, WeightsEqualizeCells) {
  const Dataset d = MakeBiased(3000, 0.5);
  const std::vector<double> w = ReweighingWeights(d).value();
  ASSERT_EQ(w.size(), d.num_rows());
  // Under the weighted distribution, P_w(y=1 | g) must match across
  // groups.
  const GroupIndex index = GroupIndex::Build(d).value();
  const std::vector<size_t> groups = index.GroupsOf(d).value();
  double pos[2] = {0, 0}, total[2] = {0, 0};
  for (size_t i = 0; i < d.num_rows(); ++i) {
    total[groups[i]] += w[i];
    if (d.Label(i) == 1) pos[groups[i]] += w[i];
  }
  EXPECT_NEAR(pos[0] / total[0], pos[1] / total[1], 1e-9);
}

TEST(ReweighingTest, DisadvantagedPositivesUpweighted) {
  const Dataset d = MakeBiased(3000, 0.5);
  const std::vector<double> w = ReweighingWeights(d).value();
  const size_t sens = d.sensitive_features()[0];
  // For the discriminated group (s=1), positives are rarer than
  // independence predicts, so their weight exceeds 1.
  for (size_t i = 0; i < d.num_rows(); ++i) {
    if (d.Feature(i, sens) >= 0.5 && d.Label(i) == 1) {
      EXPECT_GT(w[i], 1.0);
      break;
    }
  }
}

TEST(ReweighingTest, ClassifierReducesDpVersusPlainTree) {
  const Dataset d = MakeBiased(3000, 0.5);
  DecisionTree plain;
  ASSERT_TRUE(plain.Fit(d).ok());
  ReweighingClassifier reweighed;
  ASSERT_TRUE(reweighed.Fit(d).ok());
  EXPECT_LT(DpBias(reweighed, d), DpBias(plain, d) + 0.02);
}

TEST(ReweighingTest, RejectsExternalWeights) {
  const Dataset d = MakeBiased(200);
  ReweighingClassifier model;
  std::vector<double> w(d.num_rows(), 1.0);
  EXPECT_FALSE(model.Fit(d, w).ok());
}

TEST(ReweighingTest, CloneKeepsState) {
  const Dataset d = MakeBiased(500);
  ReweighingClassifier model;
  ASSERT_TRUE(model.Fit(d).ok());
  const std::unique_ptr<Classifier> clone = model.Clone();
  EXPECT_DOUBLE_EQ(model.PredictProba(d.Row(0)),
                   clone->PredictProba(d.Row(0)));
}

}  // namespace
}  // namespace falcc
