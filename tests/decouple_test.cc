#include "baselines/decouple.h"

#include <gtest/gtest.h>

#include "data/split.h"
#include "datagen/synthetic.h"
#include "ml/decision_tree.h"

namespace falcc {
namespace {

TrainValTest MakeSplits() {
  SyntheticConfig cfg;
  cfg.num_samples = 1500;
  cfg.seed = 9;
  const Dataset d = GenerateSocialBias(cfg).value();
  return SplitDatasetDefault(d, 17).value();
}

TEST(DecoupleTest, TrainsAndClassifies) {
  const TrainValTest s = MakeSplits();
  const DecoupleModel model =
      DecoupleModel::Train(s.train, s.validation, {}).value();
  EXPECT_EQ(model.num_groups(), 2u);
  const std::vector<int> preds = model.ClassifyAll(s.test);
  size_t correct = 0;
  for (size_t i = 0; i < preds.size(); ++i) {
    correct += preds[i] == s.test.Label(i);
  }
  EXPECT_GT(static_cast<double>(correct) / preds.size(), 0.6);
}

TEST(DecoupleTest, SelectedCombinationHasOneModelPerGroup) {
  const TrainValTest s = MakeSplits();
  const DecoupleModel model =
      DecoupleModel::Train(s.train, s.validation, {}).value();
  EXPECT_EQ(model.selected_combination().size(), 2u);
}

TEST(DecoupleTest, SameGroupSameModelEverywhere) {
  // Decouple is a global method: two samples of the same group with very
  // different features use the same model, so equal features => equal
  // prediction regardless of position.
  const TrainValTest s = MakeSplits();
  const DecoupleModel model =
      DecoupleModel::Train(s.train, s.validation, {}).value();
  const std::vector<int> a = model.ClassifyAll(s.test);
  const std::vector<int> b = model.ClassifyAll(s.test);
  EXPECT_EQ(a, b);
}

TEST(DecoupleTest, WithoutPerGroupModels) {
  const TrainValTest s = MakeSplits();
  DecoupleOptions opt;
  opt.per_group_models = false;
  Result<DecoupleModel> model =
      DecoupleModel::Train(s.train, s.validation, opt);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model.value().ClassifyAll(s.test).size(), s.test.num_rows());
}

TEST(DecoupleTest, ExternalPool) {
  const TrainValTest s = MakeSplits();
  ModelPool pool;
  for (uint64_t i = 0; i < 2; ++i) {
    DecisionTreeOptions dt;
    dt.max_depth = 3 + i;
    dt.seed = i;
    auto tree = std::make_unique<DecisionTree>(dt);
    ASSERT_TRUE(tree->Fit(s.train).ok());
    pool.Add(std::move(tree));
  }
  Result<DecoupleModel> model =
      DecoupleModel::TrainWithPool(std::move(pool), s.validation, {});
  ASSERT_TRUE(model.ok());
}

TEST(DecoupleTest, MetricVariantsAllTrain) {
  const TrainValTest s = MakeSplits();
  for (FairnessMetric m :
       {FairnessMetric::kDemographicParity, FairnessMetric::kEqualizedOdds,
        FairnessMetric::kEqualOpportunity,
        FairnessMetric::kTreatmentEquality}) {
    DecoupleOptions opt;
    opt.metric = m;
    EXPECT_TRUE(DecoupleModel::Train(s.train, s.validation, opt).ok())
        << FairnessMetricName(m);
  }
}

TEST(DecoupleTest, RejectsEmptyPool) {
  const TrainValTest s = MakeSplits();
  ModelPool empty;
  EXPECT_FALSE(
      DecoupleModel::TrainWithPool(std::move(empty), s.validation, {}).ok());
}

}  // namespace
}  // namespace falcc
