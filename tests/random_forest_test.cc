#include "ml/random_forest.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace falcc {
namespace {

Dataset MakeBlobs(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> features;
  std::vector<int> labels;
  for (size_t i = 0; i < n; ++i) {
    const int y = rng.Bernoulli(0.5) ? 1 : 0;
    const double shift = y == 1 ? 1.0 : -1.0;
    for (int j = 0; j < 4; ++j) features.push_back(rng.Normal(shift, 1.0));
    labels.push_back(y);
  }
  return Dataset::Create({"a", "b", "c", "d"}, std::move(features), 4,
                         std::move(labels), {})
      .value();
}

TEST(RandomForestTest, LearnsBlobs) {
  const Dataset train = MakeBlobs(1000, 1);
  const Dataset test = MakeBlobs(500, 2);
  RandomForest model;
  ASSERT_TRUE(model.Fit(train).ok());
  EXPECT_GT(Accuracy(model, test), 0.9);
}

TEST(RandomForestTest, ProbaIsVoteFraction) {
  const Dataset d = MakeBlobs(200, 3);
  RandomForestOptions opt;
  opt.num_trees = 10;
  RandomForest model(opt);
  ASSERT_TRUE(model.Fit(d).ok());
  for (size_t i = 0; i < 20; ++i) {
    const double p = model.PredictProba(d.Row(i));
    // With 10 trees the proba is a multiple of 0.1.
    EXPECT_NEAR(p * 10.0, std::round(p * 10.0), 1e-9);
  }
}

TEST(RandomForestTest, DeterministicForSeed) {
  const Dataset d = MakeBlobs(300, 4);
  RandomForestOptions opt;
  opt.seed = 99;
  RandomForest a(opt), b(opt);
  ASSERT_TRUE(a.Fit(d).ok());
  ASSERT_TRUE(b.Fit(d).ok());
  for (size_t i = 0; i < d.num_rows(); ++i) {
    EXPECT_DOUBLE_EQ(a.PredictProba(d.Row(i)), b.PredictProba(d.Row(i)));
  }
}

TEST(RandomForestTest, DifferentSeedsGiveDifferentForests) {
  const Dataset d = MakeBlobs(300, 5);
  RandomForestOptions opt_a;
  opt_a.seed = 1;
  RandomForestOptions opt_b;
  opt_b.seed = 2;
  RandomForest a(opt_a), b(opt_b);
  ASSERT_TRUE(a.Fit(d).ok());
  ASSERT_TRUE(b.Fit(d).ok());
  bool any_diff = false;
  for (size_t i = 0; i < d.num_rows() && !any_diff; ++i) {
    any_diff = a.PredictProba(d.Row(i)) != b.PredictProba(d.Row(i));
  }
  EXPECT_TRUE(any_diff);
}

TEST(RandomForestTest, ComposesWithSampleWeights) {
  Dataset d = Dataset::Create({"x"}, {1.0, 1.0}, 1, {0, 1}, {}).value();
  RandomForestOptions opt;
  opt.num_trees = 30;
  RandomForest model(opt);
  const std::vector<double> w = {0.05, 0.95};
  ASSERT_TRUE(model.Fit(d, w).ok());
  EXPECT_EQ(model.Predict(d.Row(0)), 1);
}

TEST(RandomForestTest, CloneKeepsFittedState) {
  const Dataset d = MakeBlobs(200, 6);
  RandomForest model;
  ASSERT_TRUE(model.Fit(d).ok());
  const std::unique_ptr<Classifier> clone = model.Clone();
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(model.PredictProba(d.Row(i)),
                     clone->PredictProba(d.Row(i)));
  }
}

TEST(RandomForestTest, RejectsBadConfig) {
  const Dataset d = MakeBlobs(50, 7);
  RandomForestOptions opt;
  opt.num_trees = 0;
  RandomForest model(opt);
  EXPECT_FALSE(model.Fit(d).ok());
}

TEST(RandomForestTest, NameReflectsOptions) {
  RandomForestOptions opt;
  opt.num_trees = 20;
  opt.base.max_depth = 7;
  EXPECT_EQ(RandomForest(opt).Name(), "RandomForest(B=20,depth=7,gini)");
}

}  // namespace
}  // namespace falcc
