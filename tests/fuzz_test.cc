// Deterministic fuzz harness over the snapshot loader and CSV parser.
//
// Two layers, matching how the corpus workflow runs:
//  * FuzzCorpusTest — replays every checked-in regression input from
//    tests/corpus/ through the target contracts. Always runs in plain
//    ctest, so a loader fix can never regress silently.
//  * FuzzSmokeTest — the seeded mutation loop (label `fuzz`). Default
//    budget keeps plain ctest fast; `tools/check.sh --fuzz-only` runs it
//    under ASan/UBSan with FALCC_FUZZ_ITERS=10000 per target.

#include "testing/fuzz.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/falcc.h"
#include "data/csv_dataset.h"
#include "data/split.h"
#include "datagen/synthetic.h"
#include "testing/invariants.h"
#include "util/csv.h"

namespace falcc {
namespace {

using testing::FuzzCsvParse;
using testing::FuzzIterationsFromEnv;
using testing::FuzzOptions;
using testing::FuzzSnapshotLoad;
using testing::FuzzStats;
using testing::LoadCorpus;
using testing::RunFuzz;

// A tiny trained model: the structure-aware seed every snapshot
// mutation starts from. Small on purpose — mutation cost is linear in
// the seed size and the interesting structure is all near the front.
const std::string& TinySnapshot() {
  static const std::string* bytes = [] {
    SyntheticConfig cfg;
    cfg.num_samples = 160;
    cfg.seed = 7;
    const Dataset d = GenerateImplicitBias(cfg).value();
    const TrainValTest s = SplitDatasetDefault(d, 11).value();
    FalccOptions opt;
    opt.seed = 42;
    opt.fixed_k = 2;
    opt.trainer.estimator_grid = {2};
    opt.trainer.depth_grid = {1};
    opt.trainer.pool_size = 2;
    const FalccModel model =
        FalccModel::Train(s.train, s.validation, opt).value();
    std::string out;
    EXPECT_TRUE(testing::SaveToString(model, &out).ok());
    return new std::string(out);
  }();
  return *bytes;
}

// The same artifact without the optional monitor section — the legacy
// layout, which exercises the end-of-stream path.
std::string LegacySnapshot() {
  const std::string& bytes = TinySnapshot();
  const size_t marker = bytes.find("falcc-monitor-v1");
  return marker == std::string::npos ? bytes : bytes.substr(0, marker);
}

std::string TinyCsv() {
  SyntheticConfig cfg;
  cfg.num_samples = 24;
  cfg.seed = 7;
  const Dataset d = GenerateImplicitBias(cfg).value();
  return ToCsv(DatasetToCsv(d, "label"));
}

std::vector<std::string> CorpusOrDie(const std::string& subdir) {
  Result<std::vector<std::string>> corpus =
      LoadCorpus(std::string(FALCC_CORPUS_DIR) + "/" + subdir);
  EXPECT_TRUE(corpus.ok()) << corpus.status().ToString();
  return corpus.ok() ? std::move(corpus).value() : std::vector<std::string>{};
}

TEST(FuzzCorpusTest, SnapshotCorpusReplaysClean) {
  const std::vector<std::string> corpus = CorpusOrDie("snapshot");
  ASSERT_FALSE(corpus.empty()) << "tests/corpus/snapshot is missing";
  for (size_t i = 0; i < corpus.size(); ++i) {
    const Status st = FuzzSnapshotLoad(corpus[i]);
    EXPECT_TRUE(st.ok()) << "corpus input " << i << ": " << st.ToString();
  }
}

TEST(FuzzCorpusTest, CsvCorpusReplaysClean) {
  const std::vector<std::string> corpus = CorpusOrDie("csv");
  ASSERT_FALSE(corpus.empty()) << "tests/corpus/csv is missing";
  for (size_t i = 0; i < corpus.size(); ++i) {
    const Status st = FuzzCsvParse(corpus[i]);
    EXPECT_TRUE(st.ok()) << "corpus input " << i << ": " << st.ToString();
  }
}

TEST(FuzzCorpusTest, ValidSeedsPassTheContracts) {
  // The unmutated seeds themselves must satisfy the accept-side checks;
  // otherwise every smoke finding would be noise.
  EXPECT_TRUE(FuzzSnapshotLoad(TinySnapshot()).ok());
  EXPECT_TRUE(FuzzSnapshotLoad(LegacySnapshot()).ok());
  EXPECT_TRUE(FuzzCsvParse(TinyCsv()).ok());
}

TEST(SnapshotRegressionTest, ZeroLengthSnapshotIsRejected) {
  const Result<FalccModel> r = testing::LoadFromString("");
  ASSERT_FALSE(r.ok());
  EXPECT_FALSE(r.status().message().empty());
}

TEST(SnapshotRegressionTest, GarbagePrefixIsRejected) {
  for (const std::string prefix :
       {std::string("garbage "), std::string("\x00\xff\x7f", 3),
        std::string("falcc-model-v2\n")}) {
    const Result<FalccModel> r =
        testing::LoadFromString(prefix + TinySnapshot());
    ASSERT_FALSE(r.ok()) << "prefix '" << prefix << "'";
    EXPECT_FALSE(r.status().message().empty());
  }
}

TEST(SnapshotRegressionTest, MidSectionTruncationsReturnDescriptiveErrors) {
  const std::string& bytes = TinySnapshot();
  // A cut anywhere strictly inside the mandatory sections must produce a
  // descriptive error, never an abort or a silently half-loaded model.
  for (const size_t denom : {16u, 8u, 4u, 3u, 2u}) {
    const std::string cut = bytes.substr(0, bytes.size() / denom);
    const Result<FalccModel> r = testing::LoadFromString(cut);
    ASSERT_FALSE(r.ok()) << "cut at " << cut.size();
    EXPECT_FALSE(r.status().message().empty()) << "cut at " << cut.size();
  }
}

TEST(SnapshotRegressionTest, LegacySnapshotRoundTripsByteIdentically) {
  // An artifact saved before the drift monitor existed has no
  // falcc-monitor-v1 section; Load → Save must reproduce it exactly
  // instead of growing a section the original never had.
  const std::string legacy = LegacySnapshot();
  ASSERT_NE(legacy, TinySnapshot());
  const Result<FalccModel> model = testing::LoadFromString(legacy);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  EXPECT_FALSE(model.value().has_baseline_losses());
  std::string saved;
  ASSERT_TRUE(testing::SaveToString(model.value(), &saved).ok());
  EXPECT_EQ(saved, legacy);
}

TEST(FuzzSmokeTest, SnapshotLoad) {
  std::vector<std::string> seeds = {TinySnapshot(), LegacySnapshot()};
  for (std::string& input : CorpusOrDie("snapshot")) {
    seeds.push_back(std::move(input));
  }
  FuzzOptions options;
  options.seed = 0x5eedf00d;
  options.iterations = FuzzIterationsFromEnv(2000);
  options.failure_dir = ::testing::TempDir() + "/falcc-fuzz-snapshot";
  FuzzStats stats;
  const Status st = RunFuzz(seeds, FuzzSnapshotLoad, options, &stats);
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(stats.iterations, options.iterations);
}

TEST(FuzzSmokeTest, CsvParse) {
  std::vector<std::string> seeds = {TinyCsv()};
  for (std::string& input : CorpusOrDie("csv")) {
    seeds.push_back(std::move(input));
  }
  FuzzOptions options;
  options.seed = 0xc57f00d;
  options.iterations = FuzzIterationsFromEnv(2000);
  options.failure_dir = ::testing::TempDir() + "/falcc-fuzz-csv";
  FuzzStats stats;
  const Status st = RunFuzz(seeds, FuzzCsvParse, options, &stats);
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(stats.iterations, options.iterations);
}

}  // namespace
}  // namespace falcc
