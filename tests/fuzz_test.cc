// Deterministic fuzz harness over the snapshot loader, CSV parser, and
// socket-feed wire codec.
//
// Two layers, matching how the corpus workflow runs:
//  * FuzzCorpusTest — replays every checked-in regression input from
//    tests/corpus/ through the target contracts. Always runs in plain
//    ctest, so a loader fix can never regress silently.
//  * FuzzSmokeTest — the seeded mutation loop (label `fuzz`). Default
//    budget keeps plain ctest fast; `tools/check.sh --fuzz-only` runs it
//    under ASan/UBSan with FALCC_FUZZ_ITERS=10000 per target.

#include "testing/fuzz.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/falcc.h"
#include "data/csv_dataset.h"
#include "data/split.h"
#include "datagen/synthetic.h"
#include "replicate/wire.h"
#include "testing/invariants.h"
#include "util/csv.h"

namespace falcc {
namespace {

using testing::FuzzCsvParse;
using testing::FuzzIterationsFromEnv;
using testing::FuzzOptions;
using testing::FuzzSnapshotLoad;
using testing::FuzzStats;
using testing::FuzzWireFrame;
using testing::LoadCorpus;
using testing::RunFuzz;

// A tiny trained model: the structure-aware seed every snapshot
// mutation starts from. Small on purpose — mutation cost is linear in
// the seed size and the interesting structure is all near the front.
const FalccModel& TinyModel() {
  static const FalccModel* model = [] {
    SyntheticConfig cfg;
    cfg.num_samples = 160;
    cfg.seed = 7;
    const Dataset d = GenerateImplicitBias(cfg).value();
    const TrainValTest s = SplitDatasetDefault(d, 11).value();
    FalccOptions opt;
    opt.seed = 42;
    opt.fixed_k = 2;
    opt.trainer.estimator_grid = {2};
    opt.trainer.depth_grid = {1};
    opt.trainer.pool_size = 2;
    return new FalccModel(
        FalccModel::Train(s.train, s.validation, opt).value());
  }();
  return *model;
}

// The model in the sectioned v2 container (the default save format for
// trained models).
const std::string& TinySnapshot() {
  static const std::string* bytes = [] {
    std::string out;
    EXPECT_TRUE(testing::SaveToString(TinyModel(), &out).ok());
    return new std::string(out);
  }();
  return *bytes;
}

// The same model in the legacy v1 text format.
const std::string& TinyV1Snapshot() {
  static const std::string* bytes = [] {
    std::ostringstream out;
    EXPECT_TRUE(TinyModel().Save(&out, SnapshotFormat::kV1).ok());
    return new std::string(out.str());
  }();
  return *bytes;
}

// The v1 artifact without the optional monitor section — the oldest
// layout, which exercises the end-of-stream path.
std::string LegacySnapshot() {
  const std::string& bytes = TinyV1Snapshot();
  const size_t marker = bytes.find("falcc-monitor-v1");
  return marker == std::string::npos ? bytes : bytes.substr(0, marker);
}

// A valid one-cluster delta against TinyModel's content hash: the
// structure-aware seed for delta mutation.
const std::string& TinyDelta() {
  static const std::string* bytes = [] {
    std::ostringstream out;
    const Result<uint64_t> hash = TinyModel().ContentHash();
    EXPECT_TRUE(hash.ok());
    const size_t clusters[] = {0};
    EXPECT_TRUE(
        TinyModel().SaveDelta(&out, clusters, hash.ValueOr(0)).ok());
    return new std::string(out.str());
  }();
  return *bytes;
}

// A valid frame stream covering every wire frame type: the structure-
// aware seed for wire mutation.
std::string WireSeedStream() {
  using replicate::ArtifactKind;
  using replicate::EncodeFrame;
  using replicate::FrameType;
  using replicate::WireFrame;
  std::string out;
  WireFrame hello;
  hello.type = FrameType::kHello;
  hello.sequence = 4;
  hello.payload = replicate::kWireGreeting;
  out += EncodeFrame(hello);
  WireFrame subscribe;
  subscribe.type = FrameType::kSubscribe;
  subscribe.sequence = 2;
  out += EncodeFrame(subscribe);
  WireFrame full;
  full.type = FrameType::kArtifact;
  full.kind = ArtifactKind::kFull;
  full.sequence = 2;
  full.payload = "full-snapshot-bytes";
  out += EncodeFrame(full);
  WireFrame delta;
  delta.type = FrameType::kArtifact;
  delta.kind = ArtifactKind::kDelta;
  delta.sequence = 3;
  delta.base_hash = 0x1234abcdull;
  delta.payload = "delta-bytes";
  out += EncodeFrame(delta);
  WireFrame heartbeat;
  heartbeat.type = FrameType::kHeartbeat;
  heartbeat.sequence = 3;
  out += EncodeFrame(heartbeat);
  WireFrame eof;
  eof.type = FrameType::kEof;
  out += EncodeFrame(eof);
  return out;
}

std::string TinyCsv() {
  SyntheticConfig cfg;
  cfg.num_samples = 24;
  cfg.seed = 7;
  const Dataset d = GenerateImplicitBias(cfg).value();
  return ToCsv(DatasetToCsv(d, "label"));
}

std::vector<std::string> CorpusOrDie(const std::string& subdir) {
  Result<std::vector<std::string>> corpus =
      LoadCorpus(std::string(FALCC_CORPUS_DIR) + "/" + subdir);
  EXPECT_TRUE(corpus.ok()) << corpus.status().ToString();
  return corpus.ok() ? std::move(corpus).value() : std::vector<std::string>{};
}

TEST(FuzzCorpusTest, SnapshotCorpusReplaysClean) {
  const std::vector<std::string> corpus = CorpusOrDie("snapshot");
  ASSERT_FALSE(corpus.empty()) << "tests/corpus/snapshot is missing";
  for (size_t i = 0; i < corpus.size(); ++i) {
    const Status st = FuzzSnapshotLoad(corpus[i]);
    EXPECT_TRUE(st.ok()) << "corpus input " << i << ": " << st.ToString();
  }
}

TEST(FuzzCorpusTest, DeltaCorpusReplaysClean) {
  // Delta findings replay against the deterministic tiny model. Entries
  // whose base hash no longer matches are still exercised — a clean
  // wrong-base rejection is inside the contract.
  const std::vector<std::string> corpus = CorpusOrDie("delta");
  ASSERT_FALSE(corpus.empty()) << "tests/corpus/delta is missing";
  for (size_t i = 0; i < corpus.size(); ++i) {
    const Status st = testing::FuzzDeltaApply(TinyModel(), corpus[i]);
    EXPECT_TRUE(st.ok()) << "corpus input " << i << ": " << st.ToString();
  }
}

TEST(FuzzCorpusTest, CsvCorpusReplaysClean) {
  const std::vector<std::string> corpus = CorpusOrDie("csv");
  ASSERT_FALSE(corpus.empty()) << "tests/corpus/csv is missing";
  for (size_t i = 0; i < corpus.size(); ++i) {
    const Status st = FuzzCsvParse(corpus[i]);
    EXPECT_TRUE(st.ok()) << "corpus input " << i << ": " << st.ToString();
  }
}

TEST(FuzzCorpusTest, WireCorpusReplaysClean) {
  const std::vector<std::string> corpus = CorpusOrDie("wire");
  ASSERT_FALSE(corpus.empty()) << "tests/corpus/wire is missing";
  for (size_t i = 0; i < corpus.size(); ++i) {
    const Status st = FuzzWireFrame(corpus[i]);
    EXPECT_TRUE(st.ok()) << "corpus input " << i << ": " << st.ToString();
  }
}

TEST(FuzzCorpusTest, ValidSeedsPassTheContracts) {
  // The unmutated seeds themselves must satisfy the accept-side checks;
  // otherwise every smoke finding would be noise.
  EXPECT_TRUE(FuzzSnapshotLoad(TinySnapshot()).ok());
  EXPECT_TRUE(FuzzSnapshotLoad(TinyV1Snapshot()).ok());
  EXPECT_TRUE(FuzzSnapshotLoad(LegacySnapshot()).ok());
  EXPECT_TRUE(testing::FuzzDeltaApply(TinyModel(), TinyDelta()).ok());
  EXPECT_TRUE(FuzzCsvParse(TinyCsv()).ok());
  EXPECT_TRUE(FuzzWireFrame(WireSeedStream()).ok());
}

TEST(SnapshotRegressionTest, ZeroLengthSnapshotIsRejected) {
  const Result<FalccModel> r = testing::LoadFromString("");
  ASSERT_FALSE(r.ok());
  EXPECT_FALSE(r.status().message().empty());
}

TEST(SnapshotRegressionTest, GarbagePrefixIsRejected) {
  for (const std::string prefix :
       {std::string("garbage "), std::string("\x00\xff\x7f", 3),
        std::string("falcc-model-v2\n")}) {
    const Result<FalccModel> r =
        testing::LoadFromString(prefix + TinySnapshot());
    ASSERT_FALSE(r.ok()) << "prefix '" << prefix << "'";
    EXPECT_FALSE(r.status().message().empty());
  }
}

TEST(SnapshotRegressionTest, MidSectionTruncationsReturnDescriptiveErrors) {
  const std::string& bytes = TinySnapshot();
  // A cut anywhere strictly inside the mandatory sections must produce a
  // descriptive error, never an abort or a silently half-loaded model.
  for (const size_t denom : {16u, 8u, 4u, 3u, 2u}) {
    const std::string cut = bytes.substr(0, bytes.size() / denom);
    const Result<FalccModel> r = testing::LoadFromString(cut);
    ASSERT_FALSE(r.ok()) << "cut at " << cut.size();
    EXPECT_FALSE(r.status().message().empty()) << "cut at " << cut.size();
  }
}

TEST(SnapshotRegressionTest, LegacySnapshotRoundTripsByteIdentically) {
  // An artifact saved before the drift monitor existed has no
  // falcc-monitor-v1 section; Load → Save must reproduce it exactly
  // instead of growing a section the original never had — or silently
  // migrating it to the v2 container.
  const std::string legacy = LegacySnapshot();
  ASSERT_NE(legacy, TinyV1Snapshot());
  const Result<FalccModel> model = testing::LoadFromString(legacy);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  EXPECT_FALSE(model.value().has_baseline_losses());
  std::string saved;
  ASSERT_TRUE(testing::SaveToString(model.value(), &saved).ok());
  EXPECT_EQ(saved, legacy);
}

TEST(SnapshotRegressionTest, V1SnapshotRoundTripsByteIdentically) {
  // Save format is sticky: a model loaded from a v1 artifact saves v1
  // again by default, so pre-v2 pipelines keep producing the bytes their
  // golden files expect.
  const std::string& v1 = TinyV1Snapshot();
  const Result<FalccModel> model = testing::LoadFromString(v1);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  EXPECT_EQ(model.value().save_format(), SnapshotFormat::kV1);
  std::string saved;
  ASSERT_TRUE(testing::SaveToString(model.value(), &saved).ok());
  EXPECT_EQ(saved, v1);
}

TEST(SnapshotRegressionTest, CorruptedSectionIsNamedInTheError) {
  // Flipping one payload byte inside a v2 section must fail checksum
  // verification with the section's name and offset in the message —
  // incremental validation is the operator's first triage tool.
  const std::string& bytes = TinySnapshot();
  const size_t pool_payload = bytes.find("\nadaboost");
  ASSERT_NE(pool_payload, std::string::npos);
  std::string corrupt = bytes;
  corrupt[pool_payload + 1] ^= 0x20;
  const Result<FalccModel> r = testing::LoadFromString(corrupt);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("'pool'"), std::string::npos)
      << r.status().message();
  EXPECT_NE(r.status().message().find("checksum"), std::string::npos)
      << r.status().message();
}

TEST(SnapshotRegressionTest, DeltaOnWrongBaseIsRejected) {
  // A delta names its base by content hash; applying it to any other
  // snapshot must fail cleanly, citing both hashes.
  const std::string& delta = TinyDelta();
  const Result<FalccModel> other = testing::LoadFromString(LegacySnapshot());
  ASSERT_TRUE(other.ok());
  const Result<FalccModel> applied = other.value().ApplyDeltaBytes(delta);
  ASSERT_FALSE(applied.ok());
  EXPECT_EQ(applied.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(applied.status().message().find("content hash"),
            std::string::npos)
      << applied.status().message();
}

TEST(SnapshotRegressionTest, DeltaFedToLoadIsRedirected) {
  // Load on a delta artifact cannot succeed (there is no base), but the
  // error must say what the input was and where it goes instead.
  const Result<FalccModel> r = testing::LoadFromString(TinyDelta());
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("delta"), std::string::npos)
      << r.status().message();
}

TEST(FuzzSmokeTest, SnapshotLoad) {
  std::vector<std::string> seeds = {TinySnapshot(), TinyV1Snapshot(),
                                    LegacySnapshot()};
  for (std::string& input : CorpusOrDie("snapshot")) {
    seeds.push_back(std::move(input));
  }
  FuzzOptions options;
  options.seed = 0x5eedf00d;
  options.iterations = FuzzIterationsFromEnv(2000);
  options.failure_dir = ::testing::TempDir() + "/falcc-fuzz-snapshot";
  FuzzStats stats;
  const Status st = RunFuzz(seeds, FuzzSnapshotLoad, options, &stats);
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(stats.iterations, options.iterations);
}

TEST(FuzzSmokeTest, DeltaApply) {
  std::vector<std::string> seeds = {TinyDelta()};
  for (std::string& input : CorpusOrDie("delta")) {
    seeds.push_back(std::move(input));
  }
  FuzzOptions options;
  options.seed = 0xde17af00d;
  options.iterations = FuzzIterationsFromEnv(500);
  options.failure_dir = ::testing::TempDir() + "/falcc-fuzz-delta";
  FuzzStats stats;
  const FalccModel& base = TinyModel();
  const Status st = RunFuzz(
      seeds,
      [&base](const std::string& data) {
        return testing::FuzzDeltaApply(base, data);
      },
      options, &stats);
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(stats.iterations, options.iterations);
}

TEST(FuzzSmokeTest, WireFrame) {
  std::vector<std::string> seeds = {WireSeedStream()};
  for (std::string& input : CorpusOrDie("wire")) {
    seeds.push_back(std::move(input));
  }
  FuzzOptions options;
  options.seed = 0x3142f00d;
  options.iterations = FuzzIterationsFromEnv(2000);
  options.failure_dir = ::testing::TempDir() + "/falcc-fuzz-wire";
  FuzzStats stats;
  const Status st = RunFuzz(seeds, FuzzWireFrame, options, &stats);
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(stats.iterations, options.iterations);
}

TEST(FuzzSmokeTest, CsvParse) {
  std::vector<std::string> seeds = {TinyCsv()};
  for (std::string& input : CorpusOrDie("csv")) {
    seeds.push_back(std::move(input));
  }
  FuzzOptions options;
  options.seed = 0xc57f00d;
  options.iterations = FuzzIterationsFromEnv(2000);
  options.failure_dir = ::testing::TempDir() + "/falcc-fuzz-csv";
  FuzzStats stats;
  const Status st = RunFuzz(seeds, FuzzCsvParse, options, &stats);
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(stats.iterations, options.iterations);
}

}  // namespace
}  // namespace falcc
