#include "data/groups.h"

#include <gtest/gtest.h>

namespace falcc {
namespace {

// Two sensitive attributes (cols 1, 2) with 2 x 2 observed combinations.
Dataset MakeMultiAttr() {
  std::vector<double> features = {
      0.1, 0.0, 0.0,  //
      0.2, 0.0, 1.0,  //
      0.3, 1.0, 0.0,  //
      0.4, 1.0, 1.0,  //
      0.5, 0.0, 0.0,  //
  };
  return Dataset::Create({"f", "sex", "race"}, std::move(features), 3,
                         {0, 1, 0, 1, 1}, {1, 2})
      .value();
}

TEST(GroupIndexTest, DiscoversAllCombinations) {
  const Dataset d = MakeMultiAttr();
  Result<GroupIndex> index = GroupIndex::Build(d);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index.value().num_groups(), 4u);
}

TEST(GroupIndexTest, GroupOfMapsRows) {
  const Dataset d = MakeMultiAttr();
  const GroupIndex index = GroupIndex::Build(d).value();
  // Rows 0 and 4 share (0,0) so share a group id.
  EXPECT_EQ(index.GroupOf(d.Row(0)).value(), index.GroupOf(d.Row(4)).value());
  EXPECT_NE(index.GroupOf(d.Row(0)).value(), index.GroupOf(d.Row(1)).value());
}

TEST(GroupIndexTest, GroupOfUnseenFails) {
  const Dataset d = MakeMultiAttr();
  const GroupIndex index = GroupIndex::Build(d).value();
  const std::vector<double> unseen = {0.0, 2.0, 7.0};
  EXPECT_FALSE(index.GroupOf(unseen).ok());
}

TEST(GroupIndexTest, GroupOfOrNearestFallsBack) {
  const Dataset d = MakeMultiAttr();
  const GroupIndex index = GroupIndex::Build(d).value();
  // (0.9, 0.1) is nearest to key (1, 0) = row 2's group.
  const std::vector<double> sample = {0.0, 0.9, 0.1};
  EXPECT_EQ(index.GroupOfOrNearest(sample),
            index.GroupOf(d.Row(2)).value());
}

TEST(GroupIndexTest, GroupOfOrNearestExactMatch) {
  const Dataset d = MakeMultiAttr();
  const GroupIndex index = GroupIndex::Build(d).value();
  EXPECT_EQ(index.GroupOfOrNearest(d.Row(3)),
            index.GroupOf(d.Row(3)).value());
}

TEST(GroupIndexTest, GroupsOfWholeDataset) {
  const Dataset d = MakeMultiAttr();
  const GroupIndex index = GroupIndex::Build(d).value();
  Result<std::vector<size_t>> groups = index.GroupsOf(d);
  ASSERT_TRUE(groups.ok());
  EXPECT_EQ(groups.value().size(), d.num_rows());
  EXPECT_EQ(groups.value()[0], groups.value()[4]);
}

TEST(GroupIndexTest, GroupNameContainsAttributes) {
  const Dataset d = MakeMultiAttr();
  const GroupIndex index = GroupIndex::Build(d).value();
  const size_t g = index.GroupOf(d.Row(0)).value();
  const std::string name = index.GroupName(g, d);
  EXPECT_NE(name.find("sex="), std::string::npos);
  EXPECT_NE(name.find("race="), std::string::npos);
}

TEST(GroupIndexTest, BuildRequiresSensitiveFeatures) {
  const Dataset d =
      Dataset::Create({"f"}, {1.0, 2.0}, 1, {0, 1}, {}).value();
  EXPECT_FALSE(GroupIndex::Build(d).ok());
}

TEST(RowsByGroupTest, PartitionsRows) {
  const Dataset d = MakeMultiAttr();
  const GroupIndex index = GroupIndex::Build(d).value();
  Result<std::vector<std::vector<size_t>>> buckets = RowsByGroup(index, d);
  ASSERT_TRUE(buckets.ok());
  ASSERT_EQ(buckets.value().size(), 4u);
  size_t total = 0;
  for (const auto& b : buckets.value()) total += b.size();
  EXPECT_EQ(total, d.num_rows());
  // Group of rows 0 and 4 has exactly those two rows.
  const size_t g = index.GroupOf(d.Row(0)).value();
  EXPECT_EQ(buckets.value()[g], (std::vector<size_t>{0, 4}));
}

TEST(GroupIndexTest, GroupOfOrNearestScratchOverloadMatchesAllocating) {
  const Dataset d = MakeMultiAttr();
  const GroupIndex index = GroupIndex::Build(d).value();
  // Seen keys, unseen combinations, and off-grid values; reuse one dirty
  // scratch vector across all of them — each call must fully overwrite
  // whatever the previous call (or the garbage seed) left behind.
  const std::vector<std::vector<double>> samples = {
      {0.1, 0.0, 0.0},    // exact key (0,0)
      {0.2, 1.0, 1.0},    // exact key (1,1)
      {0.0, 2.0, 7.0},    // unseen, nearest (1,1)
      {0.0, 0.9, 0.1},    // unseen, nearest (1,0)
      {0.0, -3.0, 0.4},   // unseen, nearest (0,0)
      {0.0, 0.49, 0.51},  // near the decision boundary between keys
  };
  std::vector<double> scratch = {1e9, -1e9, 42.0, 7.0};  // deliberately dirty
  for (const auto& sample : samples) {
    EXPECT_EQ(index.GroupOfOrNearest(sample, &scratch),
              index.GroupOfOrNearest(sample))
        << "sample starting " << sample[1] << "," << sample[2];
  }
}

}  // namespace
}  // namespace falcc
