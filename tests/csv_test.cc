#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace falcc {
namespace {

TEST(CsvTest, ParseSimple) {
  Result<CsvTable> r = ParseCsv("a,b\n1,2\n3,4\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().header, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(r.value().num_rows(), 2u);
  EXPECT_DOUBLE_EQ(r.value().rows[0][0], 1.0);
  EXPECT_DOUBLE_EQ(r.value().rows[1][1], 4.0);
}

TEST(CsvTest, ParseHandlesCrLf) {
  Result<CsvTable> r = ParseCsv("a,b\r\n1.5,-2e3\r\n");
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value().rows[0][0], 1.5);
  EXPECT_DOUBLE_EQ(r.value().rows[0][1], -2000.0);
}

TEST(CsvTest, ParseQuotedHeader) {
  Result<CsvTable> r = ParseCsv("\"first, col\",b\n1,2\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().header[0], "first, col");
}

TEST(CsvTest, ParseSkipsBlankLines) {
  Result<CsvTable> r = ParseCsv("a\n\n1\n\n2\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().num_rows(), 2u);
}

TEST(CsvTest, RejectsRaggedRow) {
  Result<CsvTable> r = ParseCsv("a,b\n1\n");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, RejectsNonNumeric) {
  Result<CsvTable> r = ParseCsv("a\nhello\n");
  EXPECT_FALSE(r.ok());
}

TEST(CsvTest, RejectsEmpty) {
  EXPECT_FALSE(ParseCsv("").ok());
}

TEST(CsvTest, RoundTrip) {
  CsvTable table;
  table.header = {"x", "y"};
  table.rows = {{1.5, 2.0}, {-3.0, 0.25}};
  Result<CsvTable> parsed = ParseCsv(ToCsv(table));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().header, table.header);
  EXPECT_EQ(parsed.value().rows, table.rows);
}

TEST(CsvTest, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "falcc_csv_test.csv")
          .string();
  CsvTable table;
  table.header = {"a"};
  table.rows = {{7.0}};
  ASSERT_TRUE(WriteCsvFile(path, table).ok());
  Result<CsvTable> readback = ReadCsvFile(path);
  ASSERT_TRUE(readback.ok());
  EXPECT_DOUBLE_EQ(readback.value().rows[0][0], 7.0);
  std::remove(path.c_str());
}

TEST(CsvTest, ReadMissingFileFails) {
  Result<CsvTable> r = ReadCsvFile("/nonexistent/falcc.csv");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace falcc
