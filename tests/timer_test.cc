#include "util/timer.h"

#include <gtest/gtest.h>

#include <thread>

namespace falcc {
namespace {

TEST(TimerTest, MeasuresElapsedTime) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(timer.ElapsedSeconds(), 0.015);
  EXPECT_GE(timer.ElapsedMicros(), 15000);
}

TEST(TimerTest, RestartResets) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  timer.Restart();
  EXPECT_LT(timer.ElapsedSeconds(), 0.015);
}

TEST(TimerTest, MonotonicallyIncreases) {
  Timer timer;
  const double a = timer.ElapsedSeconds();
  const double b = timer.ElapsedSeconds();
  EXPECT_LE(a, b);
}

}  // namespace
}  // namespace falcc
