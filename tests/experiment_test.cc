#include "eval/experiment.h"

#include <gtest/gtest.h>

#include "datagen/synthetic.h"

namespace falcc {
namespace {

Dataset MakeData() {
  SyntheticConfig cfg;
  cfg.num_samples = 1200;
  cfg.seed = 2;
  return GenerateImplicitBias(cfg).value();
}

TEST(ExperimentTest, CreateBuildsSharedGeometry) {
  ExperimentOptions opt;
  opt.seed = 5;
  const Experiment exp = Experiment::Create(MakeData(), opt).value();
  EXPECT_GE(exp.num_eval_regions(), 1u);
  EXPECT_EQ(exp.splits().test.num_rows(), 180u);
}

TEST(ExperimentTest, MeasurePerfectPredictions) {
  ExperimentOptions opt;
  opt.seed = 5;
  const Experiment exp = Experiment::Create(MakeData(), opt).value();
  const std::vector<int> perfect = exp.splits().test.labels();
  const EvalMeasurement m = exp.Measure(perfect, 0.18).value();
  EXPECT_DOUBLE_EQ(m.accuracy, 1.0);
  // 180 test rows, 0.18s -> 1000 us/sample.
  EXPECT_NEAR(m.online_micros_per_sample, 1000.0, 1e-6);
  EXPECT_GE(m.global_bias, 0.0);
}

TEST(ExperimentTest, MeasureConstantPredictionsHaveZeroDpBias) {
  ExperimentOptions opt;
  opt.seed = 5;
  const Experiment exp = Experiment::Create(MakeData(), opt).value();
  const std::vector<int> ones(exp.splits().test.num_rows(), 1);
  const EvalMeasurement m = exp.Measure(ones, 0.0).value();
  EXPECT_DOUBLE_EQ(m.global_bias, 0.0);
  EXPECT_DOUBLE_EQ(m.individual_bias, 0.0);
}

TEST(ExperimentTest, MeasureRejectsWrongLength) {
  ExperimentOptions opt;
  opt.seed = 5;
  const Experiment exp = Experiment::Create(MakeData(), opt).value();
  const std::vector<int> too_short = {1, 0};
  EXPECT_FALSE(exp.Measure(too_short, 0.0).ok());
}

TEST(ExperimentTest, RunFastAlgorithms) {
  ExperimentOptions opt;
  opt.seed = 7;
  opt.eval_clusters = 4;
  const Experiment exp = Experiment::Create(MakeData(), opt).value();
  for (Algorithm a : {Algorithm::kFaX, Algorithm::kFairSmote,
                      Algorithm::kDecouple, Algorithm::kFalcc}) {
    Result<EvalMeasurement> m = exp.Run(a);
    ASSERT_TRUE(m.ok()) << AlgorithmName(a);
    EXPECT_GT(m.value().accuracy, 0.5) << AlgorithmName(a);
    EXPECT_GE(m.value().global_bias, 0.0);
    EXPECT_LE(m.value().global_bias, 1.0);
    EXPECT_GE(m.value().local_bias, 0.0);
    EXPECT_GE(m.value().individual_bias, 0.0);
    EXPECT_LE(m.value().individual_bias, 1.0);
  }
}

TEST(ExperimentTest, AlgorithmNamesMatchPaper) {
  EXPECT_EQ(AlgorithmName(Algorithm::kFalcc), "FALCC");
  EXPECT_EQ(AlgorithmName(Algorithm::kFalcesBest), "FALCES-BEST");
  EXPECT_EQ(AlgorithmName(Algorithm::kDecoupleFair), "Decouple-FAIR");
  EXPECT_EQ(AlgorithmName(Algorithm::kFalccFair), "FALCC-FAIR");
  EXPECT_EQ(AlgorithmName(Algorithm::kLfr), "LFR");
}

TEST(ExperimentTest, AlgorithmListsMatchTable5) {
  EXPECT_EQ(DefaultAlgorithms().size(), 8u);
  EXPECT_EQ(FairInputAlgorithms().size(), 3u);
}

TEST(ExperimentTest, DeterministicForSeed) {
  ExperimentOptions opt;
  opt.seed = 9;
  opt.eval_clusters = 3;
  const Dataset d = MakeData();
  const Experiment a = Experiment::Create(d, opt).value();
  const Experiment b = Experiment::Create(d, opt).value();
  const EvalMeasurement ma = a.Run(Algorithm::kFalcc).value();
  const EvalMeasurement mb = b.Run(Algorithm::kFalcc).value();
  EXPECT_DOUBLE_EQ(ma.accuracy, mb.accuracy);
  EXPECT_DOUBLE_EQ(ma.global_bias, mb.global_bias);
  EXPECT_DOUBLE_EQ(ma.local_bias, mb.local_bias);
}

}  // namespace
}  // namespace falcc
