#include "eval/report.h"

#include <gtest/gtest.h>

namespace falcc {
namespace {

TEST(TextTableTest, RendersHeaderAndRows) {
  TextTable table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  // Separator line of dashes after the header.
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TextTableTest, ColumnsAligned) {
  TextTable table({"a", "b"});
  table.AddRow({"xxxxx", "1"});
  const std::string out = table.ToString();
  // Header line pads "a" to the width of "xxxxx".
  const size_t first_newline = out.find('\n');
  const std::string header = out.substr(0, first_newline);
  EXPECT_EQ(header.find('b'), 7u);  // "a" + 4 pad + 2 gap
}

TEST(TextTableTest, HeaderOnly) {
  TextTable table({"solo"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("solo"), std::string::npos);
}

TEST(FormatTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
}

TEST(FormatTest, FormatPercent) {
  EXPECT_EQ(FormatPercent(0.123, 1), "12.3");
  EXPECT_EQ(FormatPercent(1.0, 0), "100");
  EXPECT_EQ(FormatPercent(0.005, 1), "0.5");
}

}  // namespace
}  // namespace falcc
