// Parameterized sweeps: every algorithm of the evaluation on every
// benchmark dataset stand-in, checking that training succeeds and every
// reported quantity is within its domain. This is the coverage layer
// that catches "works on the dataset I tried" bugs.

#include <gtest/gtest.h>

#include "datagen/benchmark_data.h"
#include "datagen/synthetic.h"
#include "eval/experiment.h"

namespace falcc {
namespace {

struct SweepCase {
  std::string dataset;
  Algorithm algorithm;
};

std::string CaseName(const ::testing::TestParamInfo<SweepCase>& info) {
  std::string name =
      info.param.dataset + "_" + AlgorithmName(info.param.algorithm);
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

Dataset MakeDataset(const std::string& name) {
  if (name == "implicit") {
    SyntheticConfig cfg;
    cfg.num_samples = 900;
    cfg.seed = 51;
    return GenerateImplicitBias(cfg).value();
  }
  if (name == "social") {
    SyntheticConfig cfg;
    cfg.num_samples = 900;
    cfg.seed = 52;
    return GenerateSocialBias(cfg).value();
  }
  for (const BenchmarkDataSpec& spec : AllBenchmarkSpecs()) {
    if (spec.name == name) {
      const double scale =
          900.0 / static_cast<double>(spec.num_samples);
      return GenerateBenchmarkDataset(spec, 51, scale).value();
    }
  }
  ADD_FAILURE() << "unknown dataset " << name;
  return {};
}

class AlgorithmDatasetSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(AlgorithmDatasetSweep, TrainsAndMeasuresInDomain) {
  const SweepCase& param = GetParam();
  const Dataset data = MakeDataset(param.dataset);
  ExperimentOptions opt;
  opt.seed = 51;
  opt.eval_clusters = 4;
  const Experiment exp = Experiment::Create(data, opt).value();
  Result<EvalMeasurement> m = exp.Run(param.algorithm);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_GE(m.value().accuracy, 0.0);
  EXPECT_LE(m.value().accuracy, 1.0);
  EXPECT_GE(m.value().global_bias, 0.0);
  EXPECT_LE(m.value().global_bias, 1.0);
  EXPECT_GE(m.value().local_bias, 0.0);
  EXPECT_LE(m.value().local_bias, 1.0);
  EXPECT_GE(m.value().individual_bias, 0.0);
  EXPECT_LE(m.value().individual_bias, 1.0);
  EXPECT_GE(m.value().online_micros_per_sample, 0.0);
  // Better than always guessing the minority class.
  EXPECT_GT(m.value().accuracy, 0.35) << AlgorithmName(param.algorithm);
}

std::vector<SweepCase> AllCases() {
  // Fast-to-train algorithms sweep every dataset; the expensive ones
  // (FALCES-BEST trains four variants, iFair runs pairwise descent)
  // sweep a representative subset.
  const std::vector<std::string> all_datasets = {
      "implicit",  "social",     "ACS2017",  "AdultSex", "AdultRace",
      "AdultSexRace", "Communities", "COMPAS",   "CreditCard"};
  const std::vector<std::string> small_datasets = {"implicit", "COMPAS",
                                                   "AdultSexRace"};
  std::vector<SweepCase> cases;
  for (Algorithm a : {Algorithm::kFaX, Algorithm::kFairSmote,
                      Algorithm::kDecouple, Algorithm::kFalcc}) {
    for (const std::string& d : all_datasets) cases.push_back({d, a});
  }
  for (Algorithm a : {Algorithm::kFairBoost, Algorithm::kLfr,
                      Algorithm::kIFair, Algorithm::kFalcesBest,
                      Algorithm::kFalccFair}) {
    for (const std::string& d : small_datasets) cases.push_back({d, a});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, AlgorithmDatasetSweep,
                         ::testing::ValuesIn(AllCases()), CaseName);

}  // namespace
}  // namespace falcc
