#include "core/falcc.h"

#include <gtest/gtest.h>

#include <sstream>

#include "data/split.h"
#include "datagen/synthetic.h"
#include "fairness/loss.h"
#include "util/parallel.h"

namespace falcc {
namespace {

TrainValTest MakeSplits(uint64_t seed = 11, size_t n = 2000) {
  SyntheticConfig cfg;
  cfg.num_samples = n;
  cfg.seed = 7;
  const Dataset d = GenerateImplicitBias(cfg).value();
  return SplitDatasetDefault(d, seed).value();
}

FalccOptions FastOptions() {
  FalccOptions opt;
  opt.seed = 42;
  opt.trainer.estimator_grid = {5};
  opt.trainer.depth_grid = {1, 4};
  opt.trainer.pool_size = 3;
  return opt;
}

TEST(FalccTest, TrainsAndClassifies) {
  const TrainValTest s = MakeSplits();
  const FalccModel model =
      FalccModel::Train(s.train, s.validation, FastOptions()).value();
  EXPECT_GE(model.num_clusters(), 1u);
  EXPECT_EQ(model.num_groups(), 2u);
  // Pool size is an upper bound: the accuracy-tolerance pruning may keep
  // fewer (but competent) models.
  EXPECT_GE(model.pool().size(), 1u);
  EXPECT_LE(model.pool().size(), 3u);
  const std::vector<int> preds = model.ClassifyAll(s.test);
  ASSERT_EQ(preds.size(), s.test.num_rows());
  size_t correct = 0;
  for (size_t i = 0; i < preds.size(); ++i) {
    correct += preds[i] == s.test.Label(i);
  }
  EXPECT_GT(static_cast<double>(correct) / preds.size(), 0.6);
}

TEST(FalccTest, SelectedCombinationPerCluster) {
  const TrainValTest s = MakeSplits();
  const FalccModel model =
      FalccModel::Train(s.train, s.validation, FastOptions()).value();
  ASSERT_EQ(model.selected_combinations().size(), model.num_clusters());
  for (const auto& combo : model.selected_combinations()) {
    ASSERT_EQ(combo.size(), model.num_groups());
    for (size_t m : combo) EXPECT_LT(m, model.pool().size());
  }
}

TEST(FalccTest, FixedKIsRespected) {
  const TrainValTest s = MakeSplits();
  FalccOptions opt = FastOptions();
  opt.fixed_k = 4;
  const FalccModel model =
      FalccModel::Train(s.train, s.validation, opt).value();
  EXPECT_EQ(model.num_clusters(), 4u);
}

TEST(FalccTest, KOneRecoversGlobalFairnessMode) {
  // The paper's unification claim (§3.1): k = 1 makes the local region
  // the whole dataset; every sample of a group uses the same model.
  const TrainValTest s = MakeSplits();
  FalccOptions opt = FastOptions();
  opt.fixed_k = 1;
  const FalccModel model =
      FalccModel::Train(s.train, s.validation, opt).value();
  EXPECT_EQ(model.num_clusters(), 1u);
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(model.MatchCluster(s.test.Row(i)), 0u);
  }
}

TEST(FalccTest, ClassificationIsDeterministic) {
  const TrainValTest s = MakeSplits();
  const FalccModel a =
      FalccModel::Train(s.train, s.validation, FastOptions()).value();
  const FalccModel b =
      FalccModel::Train(s.train, s.validation, FastOptions()).value();
  EXPECT_EQ(a.ClassifyAll(s.test), b.ClassifyAll(s.test));
}

// Thread-count determinism of training now lives in invariants_test
// (InvariantsTest.TrainingThreadCountInvariance) via the shared
// CheckTrainingThreadInvariance helper.

TEST(FalccTest, ValidationRowsCoverAllClusters) {
  const TrainValTest s = MakeSplits();
  const FalccModel model =
      FalccModel::Train(s.train, s.validation, FastOptions()).value();
  const auto& assignment = model.validation_assignment();
  EXPECT_EQ(assignment.size(), s.validation.num_rows());
  for (size_t c : assignment) EXPECT_LT(c, model.num_clusters());
}

TEST(FalccTest, ExternalPoolIsUsed) {
  const TrainValTest s = MakeSplits();
  DiverseTrainerOptions trainer;
  trainer.estimator_grid = {5};
  trainer.depth_grid = {2};
  trainer.pool_size = 2;
  trainer.accuracy_tolerance = 1.0;  // keep both grid candidates
  DiversePool diverse =
      TrainDiversePool(s.train, s.validation, trainer).value();
  ModelPool pool;
  for (auto& m : diverse.models) pool.Add(std::move(m));

  FalccOptions opt = FastOptions();
  const FalccModel model =
      FalccModel::TrainWithPool(std::move(pool), s.validation, opt, 0.77)
          .value();
  EXPECT_EQ(model.pool().size(), 2u);
  EXPECT_DOUBLE_EQ(model.pool_entropy(), 0.77);
}

TEST(FalccTest, ImprovesLocalFairnessOverWorstPoolMember) {
  // FALCC's per-cluster selection should never be drastically worse in
  // local loss than the single worst model applied uniformly.
  const TrainValTest s = MakeSplits(13, 3000);
  FalccOptions opt = FastOptions();
  opt.fixed_k = 5;
  const FalccModel model =
      FalccModel::Train(s.train, s.validation, opt).value();

  const GroupIndex index = GroupIndex::Build(s.test).value();
  const std::vector<size_t> groups = index.GroupsOf(s.test).value();
  std::vector<size_t> regions(s.test.num_rows());
  for (size_t i = 0; i < s.test.num_rows(); ++i) {
    regions[i] = model.MatchCluster(s.test.Row(i));
  }

  auto local_loss = [&](const std::vector<int>& preds) {
    GroupedPredictions in;
    in.labels = s.test.labels();
    in.predictions = preds;
    in.groups = groups;
    in.num_groups = index.num_groups();
    return LocalLoss(in, regions, model.num_clusters(),
                     FairnessMetric::kDemographicParity, 0.5)
        .value()
        .combined;
  };

  const double falcc_loss = local_loss(model.ClassifyAll(s.test));
  double worst_single = 0.0;
  for (size_t m = 0; m < model.pool().size(); ++m) {
    worst_single = std::max(
        worst_single, local_loss(PredictAll(model.pool().model(m), s.test)));
  }
  EXPECT_LE(falcc_loss, worst_single + 0.05);
}

TEST(FalccTest, ProxyStrategiesAllTrain) {
  const TrainValTest s = MakeSplits();
  for (ProxyMitigation strategy :
       {ProxyMitigation::kNone, ProxyMitigation::kReweigh,
        ProxyMitigation::kRemove}) {
    FalccOptions opt = FastOptions();
    opt.proxy.strategy = strategy;
    opt.proxy.removal_threshold = 0.2;
    Result<FalccModel> model =
        FalccModel::Train(s.train, s.validation, opt);
    ASSERT_TRUE(model.ok()) << static_cast<int>(strategy);
    const std::vector<int> preds = model.value().ClassifyAll(s.test);
    EXPECT_EQ(preds.size(), s.test.num_rows());
  }
}

TEST(FalccTest, SplitTrainingAddsRestrictedModels) {
  const TrainValTest s = MakeSplits();
  FalccOptions opt = FastOptions();
  opt.trainer.split_by_group = true;
  const FalccModel model =
      FalccModel::Train(s.train, s.validation, opt).value();
  // The pool contains the shared models plus one per group (2 groups),
  // and the per-group models are not applicable everywhere.
  FalccOptions shared_only = FastOptions();
  const FalccModel baseline =
      FalccModel::Train(s.train, s.validation, shared_only).value();
  EXPECT_EQ(model.pool().size(), baseline.pool().size() + 2);
  bool any_restricted = false;
  for (size_t m = 0; m < model.pool().size(); ++m) {
    if (!model.pool().Applicable(m, 0) || !model.pool().Applicable(m, 1)) {
      any_restricted = true;
    }
  }
  EXPECT_TRUE(any_restricted);
  // And classification still works end-to-end.
  const std::vector<int> preds = model.ClassifyAll(s.test);
  EXPECT_EQ(preds.size(), s.test.num_rows());
}

TEST(FalccTest, ConsistencyAssessmentModeTrains) {
  // §3.6: individual-fairness (consistency) assessment using clusters as
  // kNN substitutes.
  const TrainValTest s = MakeSplits();
  FalccOptions opt = FastOptions();
  opt.assessment_mode = AssessmentMode::kConsistency;
  opt.fixed_k = 4;
  Result<FalccModel> model = FalccModel::Train(s.train, s.validation, opt);
  ASSERT_TRUE(model.ok());
  const std::vector<int> preds = model.value().ClassifyAll(s.test);
  size_t correct = 0;
  for (size_t i = 0; i < preds.size(); ++i) {
    correct += preds[i] == s.test.Label(i);
  }
  EXPECT_GT(static_cast<double>(correct) / preds.size(), 0.55);
}

TEST(FalccTest, ConsistencyModeYieldsMoreUniformRegionPredictions) {
  // Under the consistency objective, the chosen combinations should give
  // validation regions more uniform predictions than under the
  // group-fairness objective (that is exactly what they optimize).
  const TrainValTest s = MakeSplits(19, 3000);
  auto mean_region_inconsistency = [&](AssessmentMode mode) {
    FalccOptions opt = FastOptions();
    opt.assessment_mode = mode;
    opt.fixed_k = 6;
    const FalccModel model =
        FalccModel::Train(s.train, s.validation, opt).value();
    const std::vector<int> preds = model.ClassifyAll(s.test);
    // Per-region inconsistency of the test predictions.
    std::vector<double> pos(model.num_clusters(), 0.0);
    std::vector<double> count(model.num_clusters(), 0.0);
    std::vector<size_t> region(s.test.num_rows());
    for (size_t i = 0; i < s.test.num_rows(); ++i) {
      region[i] = model.MatchCluster(s.test.Row(i));
      pos[region[i]] += preds[i];
      count[region[i]] += 1.0;
    }
    double total = 0.0;
    for (size_t i = 0; i < s.test.num_rows(); ++i) {
      const double mean = pos[region[i]] / count[region[i]];
      total += std::abs(static_cast<double>(preds[i]) - mean);
    }
    return total / static_cast<double>(s.test.num_rows());
  };
  EXPECT_LE(mean_region_inconsistency(AssessmentMode::kConsistency),
            mean_region_inconsistency(AssessmentMode::kGroupFairness) + 0.02);
}

TEST(FalccTest, AllKSelectionStrategiesTrain) {
  const TrainValTest s = MakeSplits();
  for (FalccOptions::KSelection selection :
       {FalccOptions::KSelection::kLogMeans,
        FalccOptions::KSelection::kElbow,
        FalccOptions::KSelection::kXMeans}) {
    FalccOptions opt = FastOptions();
    opt.k_selection = selection;
    opt.k_estimation.k_max = 16;
    Result<FalccModel> model =
        FalccModel::Train(s.train, s.validation, opt);
    ASSERT_TRUE(model.ok()) << static_cast<int>(selection);
    EXPECT_GE(model.value().num_clusters(), 1u);
    EXPECT_LE(model.value().num_clusters(), 16u);
  }
}

TEST(FalccTest, RejectsBadOptions) {
  const TrainValTest s = MakeSplits();
  FalccOptions opt = FastOptions();
  opt.lambda = 2.0;
  EXPECT_FALSE(FalccModel::Train(s.train, s.validation, opt).ok());

  ModelPool empty_pool;
  EXPECT_FALSE(
      FalccModel::TrainWithPool(std::move(empty_pool), s.validation, {})
          .ok());
}

TEST(FalccTest, ClassifyProbaConsistentWithClassify) {
  const TrainValTest s = MakeSplits();
  const FalccModel model =
      FalccModel::Train(s.train, s.validation, FastOptions()).value();
  for (size_t i = 0; i < 50; ++i) {
    const double p = model.ClassifyProba(s.test.Row(i));
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    EXPECT_EQ(model.Classify(s.test.Row(i)), p >= 0.5 ? 1 : 0);
  }
}

TEST(FalccTest, OnlineStepsAreExposed) {
  const TrainValTest s = MakeSplits();
  const FalccModel model =
      FalccModel::Train(s.train, s.validation, FastOptions()).value();
  const auto row = s.test.Row(0);
  const size_t cluster = model.MatchCluster(row);
  EXPECT_LT(cluster, model.num_clusters());
  const Result<size_t> group = model.GroupOf(row);
  ASSERT_TRUE(group.ok());
  EXPECT_LT(group.value(), model.num_groups());
  // Classify is exactly: lookup + predict with the selected model.
  const size_t m = model.selected_combinations()[cluster][group.value()];
  EXPECT_EQ(model.Classify(row), model.pool().model(m).Predict(row));
}

}  // namespace
}  // namespace falcc
