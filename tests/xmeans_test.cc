#include "cluster/xmeans.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace falcc {
namespace {

std::vector<std::vector<double>> MakeBlobs(size_t k, size_t per_blob,
                                           uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> points;
  for (size_t b = 0; b < k; ++b) {
    const double cx = static_cast<double>(b % 3) * 25.0;
    const double cy = static_cast<double>(b / 3) * 25.0;
    for (size_t i = 0; i < per_blob; ++i) {
      points.push_back({rng.Normal(cx, 0.5), rng.Normal(cy, 0.5)});
    }
  }
  return points;
}

TEST(XMeansTest, FindsFourBlobs) {
  const auto points = MakeBlobs(4, 80, 1);
  const KMeansResult r = RunXMeans(points).value();
  EXPECT_GE(r.centroids.size(), 3u);
  EXPECT_LE(r.centroids.size(), 6u);
}

TEST(XMeansTest, StopsAtTwoBlobs) {
  const auto points = MakeBlobs(2, 100, 2);
  const KMeansResult r = RunXMeans(points).value();
  EXPECT_EQ(r.centroids.size(), 2u);
}

TEST(XMeansTest, RespectsKMax) {
  const auto points = MakeBlobs(6, 50, 3);
  XMeansOptions opt;
  opt.k_max = 3;
  const KMeansResult r = RunXMeans(points, opt).value();
  EXPECT_LE(r.centroids.size(), 3u);
}

TEST(XMeansTest, AssignmentConsistent) {
  const auto points = MakeBlobs(3, 60, 4);
  const KMeansResult r = RunXMeans(points).value();
  EXPECT_EQ(r.assignment.size(), points.size());
  for (size_t c : r.assignment) EXPECT_LT(c, r.centroids.size());
}

TEST(XMeansTest, DeterministicForSeed) {
  const auto points = MakeBlobs(3, 60, 5);
  XMeansOptions opt;
  opt.kmeans.seed = 17;
  const KMeansResult a = RunXMeans(points, opt).value();
  const KMeansResult b = RunXMeans(points, opt).value();
  EXPECT_EQ(a.assignment, b.assignment);
}

TEST(XMeansTest, RejectsBadInputs) {
  EXPECT_FALSE(RunXMeans({}).ok());
  const auto points = MakeBlobs(2, 10, 6);
  XMeansOptions opt;
  opt.k_min = 10;
  opt.k_max = 2;
  EXPECT_FALSE(RunXMeans(points, opt).ok());
}

TEST(KMeansBicTest, PrefersTrueStructure) {
  // BIC at the true k must beat both a merged and a heavily over-split
  // clustering on well-separated blobs.
  const auto points = MakeBlobs(3, 100, 7);
  const KMeansResult k3 = RunKMeans(points, 3).value();
  const KMeansResult k1 = RunKMeans(points, 1).value();
  const KMeansResult k30 = RunKMeans(points, 30).value();
  EXPECT_GT(KMeansBic(points, k3), KMeansBic(points, k1));
  EXPECT_GT(KMeansBic(points, k3), KMeansBic(points, k30));
}

TEST(KMeansBicTest, PenalizesParameterCount) {
  // On structureless data, more clusters should not raise the BIC much;
  // the parameter penalty must keep growth in check.
  Rng rng(8);
  std::vector<std::vector<double>> noise(300, std::vector<double>(2));
  for (auto& p : noise) {
    p[0] = rng.Normal();
    p[1] = rng.Normal();
  }
  const KMeansResult r = RunXMeans(noise).value();
  EXPECT_LE(r.centroids.size(), 12u);
}

}  // namespace
}  // namespace falcc
