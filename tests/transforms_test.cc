#include "data/transforms.h"

#include <gtest/gtest.h>

#include "util/math.h"

namespace falcc {
namespace {

Dataset MakeData() {
  // Column 0: mean 2, sd > 0; column 1: constant; column 2: sensitive.
  std::vector<double> features = {
      1.0, 5.0, 0.0,  //
      2.0, 5.0, 1.0,  //
      3.0, 5.0, 0.0,  //
  };
  return Dataset::Create({"a", "c", "s"}, std::move(features), 3, {0, 1, 0},
                         {2})
      .value();
}

TEST(ColumnTransformTest, IdentityKeepsValues) {
  const Dataset d = MakeData();
  const ColumnTransform t = ColumnTransform::Identity(3);
  const std::vector<double> out = t.Apply(d.Row(1));
  EXPECT_EQ(out, (std::vector<double>{2.0, 5.0, 1.0}));
}

TEST(ColumnTransformTest, StandardizeCentersAndScales) {
  const Dataset d = MakeData();
  const ColumnTransform t = ColumnTransform::Standardize(d);
  const auto all = t.ApplyAll(d);
  std::vector<double> col0 = {all[0][0], all[1][0], all[2][0]};
  EXPECT_NEAR(Mean(col0), 0.0, 1e-12);
  EXPECT_NEAR(StdDev(col0), 1.0, 1e-12);
}

TEST(ColumnTransformTest, StandardizeConstantColumnCenteredOnly) {
  const Dataset d = MakeData();
  const ColumnTransform t = ColumnTransform::Standardize(d);
  const std::vector<double> out = t.Apply(d.Row(0));
  EXPECT_DOUBLE_EQ(out[1], 0.0);  // 5 - 5, unscaled
}

TEST(ColumnTransformTest, ScaleColumn) {
  ColumnTransform t = ColumnTransform::Identity(3);
  t.ScaleColumn(0, 0.5);
  const std::vector<double> in = {4.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(t.Apply(in)[0], 2.0);
}

TEST(ColumnTransformTest, ScaleComposes) {
  ColumnTransform t = ColumnTransform::Identity(1);
  t.ScaleColumn(0, 0.5);
  t.ScaleColumn(0, 0.5);
  const std::vector<double> in = {8.0};
  EXPECT_DOUBLE_EQ(t.Apply(in)[0], 2.0);
}

TEST(ColumnTransformTest, DropColumnShrinksOutput) {
  ColumnTransform t = ColumnTransform::Identity(3);
  t.DropColumn(1);
  EXPECT_EQ(t.num_output_features(), 2u);
  const std::vector<double> in = {1.0, 2.0, 3.0};
  EXPECT_EQ(t.Apply(in), (std::vector<double>{1.0, 3.0}));
}

TEST(ColumnTransformTest, DropColumnTwiceIsNoop) {
  ColumnTransform t = ColumnTransform::Identity(3);
  t.DropColumn(1);
  t.DropColumn(1);
  EXPECT_EQ(t.num_output_features(), 2u);
}

TEST(ColumnTransformTest, DropColumns) {
  ColumnTransform t = ColumnTransform::Identity(4);
  const std::vector<size_t> cols = {0, 2};
  t.DropColumns(cols);
  const std::vector<double> in = {1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(t.Apply(in), (std::vector<double>{2.0, 4.0}));
  EXPECT_EQ(t.kept_columns(), (std::vector<size_t>{1, 3}));
}

TEST(ColumnTransformTest, ApplyAllMatchesApply) {
  const Dataset d = MakeData();
  ColumnTransform t = ColumnTransform::Standardize(d);
  t.DropColumn(2);
  const auto all = t.ApplyAll(d);
  ASSERT_EQ(all.size(), d.num_rows());
  for (size_t i = 0; i < d.num_rows(); ++i) {
    EXPECT_EQ(all[i], t.Apply(d.Row(i)));
  }
}

}  // namespace
}  // namespace falcc
