#include "core/assessment.h"

#include <gtest/gtest.h>

namespace falcc {
namespace {

// Hand-built context: 2 models, 6 validation rows, 2 groups.
// Model 0 predicts everything 1; model 1 predicts the true labels.
struct Fixture {
  std::vector<std::vector<int>> votes = {
      {1, 1, 1, 1, 1, 1},  // model 0
      {1, 0, 1, 0, 1, 0},  // model 1 == labels
  };
  std::vector<int> labels = {1, 0, 1, 0, 1, 0};
  std::vector<size_t> groups = {0, 0, 0, 1, 1, 1};

  AssessmentContext Context(FairnessMetric metric, double lambda) {
    AssessmentContext ctx;
    ctx.votes = &votes;
    ctx.labels = labels;
    ctx.groups = groups;
    ctx.num_groups = 2;
    ctx.metric = metric;
    ctx.lambda = lambda;
    return ctx;
  }
};

TEST(AssessCombinationTest, PerfectCombinationZeroLoss) {
  Fixture f;
  const AssessmentContext ctx =
      f.Context(FairnessMetric::kDemographicParity, 0.5);
  const std::vector<size_t> rows = {0, 1, 2, 3, 4, 5};
  const ModelCombination perfect = {1, 1};
  EXPECT_NEAR(AssessCombination(ctx, perfect, rows).value(),
              0.5 * (1.0 / 6.0),  // dp of the true labels (2/3 vs 1/3)
              1e-12);
}

TEST(AssessCombinationTest, AllPositiveCombination) {
  Fixture f;
  const AssessmentContext ctx =
      f.Context(FairnessMetric::kDemographicParity, 0.5);
  const std::vector<size_t> rows = {0, 1, 2, 3, 4, 5};
  const ModelCombination all_one = {0, 0};
  // Inaccuracy 0.5 (3 of 6 wrong), dp bias 0 (everyone positive).
  EXPECT_NEAR(AssessCombination(ctx, all_one, rows).value(), 0.25, 1e-12);
}

TEST(AssessCombinationTest, MixedCombinationUsesGroupModel) {
  Fixture f;
  const AssessmentContext ctx = f.Context(FairnessMetric::kDemographicParity,
                                          1.0);  // pure accuracy
  const std::vector<size_t> rows = {0, 1, 2, 3, 4, 5};
  // Group 0 uses the perfect model, group 1 the all-ones model: group 1
  // contributes 1 error (row 3 and 5 are 0... both wrong) -> 2/6.
  const ModelCombination mixed = {1, 0};
  EXPECT_NEAR(AssessCombination(ctx, mixed, rows).value(), 2.0 / 6.0, 1e-12);
}

TEST(AssessCombinationTest, SubsetOfRows) {
  Fixture f;
  const AssessmentContext ctx =
      f.Context(FairnessMetric::kDemographicParity, 1.0);
  const std::vector<size_t> rows = {3, 5};  // group-1 rows labeled 0
  const ModelCombination all_one = {0, 0};
  EXPECT_NEAR(AssessCombination(ctx, all_one, rows).value(), 1.0, 1e-12);
}

TEST(AssessCombinationTest, ValidationErrors) {
  Fixture f;
  const AssessmentContext ctx =
      f.Context(FairnessMetric::kDemographicParity, 0.5);
  const std::vector<size_t> rows = {0};
  EXPECT_FALSE(AssessCombination(ctx, {1}, rows).ok());  // wrong combo size
  const std::vector<size_t> empty;
  EXPECT_FALSE(AssessCombination(ctx, {1, 1}, empty).ok());
  const std::vector<size_t> out_of_range = {99};
  EXPECT_FALSE(AssessCombination(ctx, {1, 1}, out_of_range).ok());
  const ModelCombination bad_model = {7, 1};
  EXPECT_FALSE(AssessCombination(ctx, bad_model, rows).ok());
}

TEST(AssessCombinationTest, ConsistencyModeUnanimousRegionIsPureAccuracy) {
  Fixture f;
  AssessmentContext ctx = f.Context(FairnessMetric::kDemographicParity, 0.5);
  ctx.mode = AssessmentMode::kConsistency;
  const std::vector<size_t> rows = {0, 1, 2, 3, 4, 5};
  // Model 0 predicts all 1: fully consistent, 3/6 wrong -> L = 0.25.
  EXPECT_NEAR(AssessCombination(ctx, {0, 0}, rows).value(), 0.25, 1e-12);
}

TEST(AssessCombinationTest, ConsistencyModePenalizesDisagreement) {
  Fixture f;
  AssessmentContext ctx = f.Context(FairnessMetric::kDemographicParity, 0.0);
  ctx.mode = AssessmentMode::kConsistency;
  const std::vector<size_t> rows = {0, 1, 2, 3, 4, 5};
  // Model 1's predictions alternate (1,0,1,0,1,0): each sample deviates
  // from the others' mean, so inconsistency is high while the all-ones
  // model scores 0.
  const double alternating = AssessCombination(ctx, {1, 1}, rows).value();
  const double constant = AssessCombination(ctx, {0, 0}, rows).value();
  EXPECT_DOUBLE_EQ(constant, 0.0);
  EXPECT_GT(alternating, 0.3);
}

TEST(AssessCombinationTest, ConsistencyModeSingleRowRegionIsConsistent) {
  Fixture f;
  AssessmentContext ctx = f.Context(FairnessMetric::kDemographicParity, 0.0);
  ctx.mode = AssessmentMode::kConsistency;
  const std::vector<size_t> one = {0};
  EXPECT_DOUBLE_EQ(AssessCombination(ctx, {1, 1}, one).value(), 0.0);
}

TEST(SelectBestCombinationsTest, PicksPerRegionBest) {
  Fixture f;
  const AssessmentContext ctx =
      f.Context(FairnessMetric::kDemographicParity, 1.0);
  const std::vector<ModelCombination> combos = {{0, 0}, {1, 1}};
  const std::vector<std::vector<size_t>> regions = {{0, 1, 2}, {3, 4, 5}};
  const std::vector<size_t> best =
      SelectBestCombinations(ctx, combos, regions).value();
  ASSERT_EQ(best.size(), 2u);
  EXPECT_EQ(best[0], 1u);
  EXPECT_EQ(best[1], 1u);
}

TEST(SelectBestCombinationsTest, TieBreaksToLowerIndex) {
  Fixture f;
  f.votes[1] = f.votes[0];  // both models identical now
  const AssessmentContext ctx =
      f.Context(FairnessMetric::kDemographicParity, 0.5);
  const std::vector<ModelCombination> combos = {{0, 0}, {1, 1}};
  const std::vector<std::vector<size_t>> regions = {{0, 1, 2, 3, 4, 5}};
  EXPECT_EQ(SelectBestCombinations(ctx, combos, regions).value()[0], 0u);
}

TEST(SelectBestCombinationsTest, RejectsEmptyRegion) {
  Fixture f;
  const AssessmentContext ctx =
      f.Context(FairnessMetric::kDemographicParity, 0.5);
  const std::vector<ModelCombination> combos = {{0, 0}};
  const std::vector<std::vector<size_t>> regions = {{}};
  EXPECT_FALSE(SelectBestCombinations(ctx, combos, regions).ok());
}

TEST(SelectGlobalBestTest, FindsBestOverall) {
  Fixture f;
  const AssessmentContext ctx =
      f.Context(FairnessMetric::kDemographicParity, 1.0);
  const std::vector<ModelCombination> combos = {{0, 0}, {0, 1}, {1, 0},
                                                {1, 1}};
  EXPECT_EQ(SelectGlobalBest(ctx, combos).value(), 3u);
}

TEST(FilterTopCombinationsTest, KeepsBestAscending) {
  Fixture f;
  const AssessmentContext ctx =
      f.Context(FairnessMetric::kDemographicParity, 1.0);
  const std::vector<ModelCombination> combos = {{0, 0}, {1, 1}, {1, 0}};
  const std::vector<size_t> kept =
      FilterTopCombinations(ctx, combos, 2).value();
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0], 1u);  // perfect combination first
}

TEST(FilterTopCombinationsTest, KeepLargerThanSetKeepsAll) {
  Fixture f;
  const AssessmentContext ctx =
      f.Context(FairnessMetric::kDemographicParity, 0.5);
  const std::vector<ModelCombination> combos = {{0, 0}, {1, 1}};
  EXPECT_EQ(FilterTopCombinations(ctx, combos, 10).value().size(), 2u);
}

TEST(FilterTopCombinationsTest, RejectsZeroKeep) {
  Fixture f;
  const AssessmentContext ctx =
      f.Context(FairnessMetric::kDemographicParity, 0.5);
  EXPECT_FALSE(FilterTopCombinations(ctx, {{0, 0}}, 0).ok());
}

}  // namespace
}  // namespace falcc
