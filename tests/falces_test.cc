#include "baselines/falces.h"

#include <gtest/gtest.h>

#include "data/split.h"
#include "datagen/synthetic.h"
#include "ml/decision_tree.h"
#include "util/timer.h"

namespace falcc {
namespace {

TrainValTest MakeSplits(size_t n = 1500) {
  SyntheticConfig cfg;
  cfg.num_samples = n;
  cfg.seed = 10;
  const Dataset d = GenerateImplicitBias(cfg).value();
  return SplitDatasetDefault(d, 23).value();
}

TEST(FalcesTest, TrainsAndClassifies) {
  const TrainValTest s = MakeSplits();
  const FalcesModel model =
      FalcesModel::Train(s.train, s.validation, {}).value();
  EXPECT_EQ(model.num_groups(), 2u);
  const std::vector<int> preds = model.ClassifyAll(s.test);
  size_t correct = 0;
  for (size_t i = 0; i < preds.size(); ++i) {
    correct += preds[i] == s.test.Label(i);
  }
  EXPECT_GT(static_cast<double>(correct) / preds.size(), 0.6);
}

TEST(FalcesTest, PrefilterReducesCombinations) {
  const TrainValTest s = MakeSplits();
  FalcesOptions plain;
  const FalcesModel full =
      FalcesModel::Train(s.train, s.validation, plain).value();
  FalcesOptions filtered;
  filtered.prefilter = true;
  filtered.prefilter_keep = 10;
  const FalcesModel fast =
      FalcesModel::Train(s.train, s.validation, filtered).value();
  EXPECT_EQ(full.num_retained_combinations(), 25u);  // 5 models, 2 groups
  EXPECT_EQ(fast.num_retained_combinations(), 10u);
}

TEST(FalcesTest, SplitTrainingAddsPerGroupModels) {
  const TrainValTest s = MakeSplits();
  FalcesOptions opt;
  opt.split_training = true;
  const FalcesModel model =
      FalcesModel::Train(s.train, s.validation, opt).value();
  // 5 shared models + up to 2 per-group trees; per-group trees apply to
  // one group only, so combos = (5+1)*(5+1) at most, more than 25.
  EXPECT_GT(model.num_retained_combinations(), 25u);
}

TEST(FalcesTest, PrefilteredIsFasterOnline) {
  const TrainValTest s = MakeSplits(2500);
  FalcesOptions plain;
  const FalcesModel full =
      FalcesModel::Train(s.train, s.validation, plain).value();
  FalcesOptions filtered;
  filtered.prefilter = true;
  filtered.prefilter_keep = 5;
  const FalcesModel fast =
      FalcesModel::Train(s.train, s.validation, filtered).value();

  // Warm up both paths, then time interleaved batches; the prefiltered
  // variant assesses 5 combinations per sample instead of 25, so it must
  // be faster even under scheduler noise (tolerant 1.2x bound).
  const size_t n = std::min<size_t>(300, s.test.num_rows());
  for (size_t i = 0; i < 10; ++i) {
    full.Classify(s.test.Row(i));
    fast.Classify(s.test.Row(i));
  }
  double full_time = 0.0, fast_time = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    Timer t1;
    for (size_t i = 0; i < n; ++i) full.Classify(s.test.Row(i));
    full_time += t1.ElapsedSeconds();
    Timer t2;
    for (size_t i = 0; i < n; ++i) fast.Classify(s.test.Row(i));
    fast_time += t2.ElapsedSeconds();
  }
  EXPECT_LT(fast_time, full_time * 1.2);
}

TEST(FalcesTest, DeterministicOnlinePhase) {
  const TrainValTest s = MakeSplits();
  const FalcesModel model =
      FalcesModel::Train(s.train, s.validation, {}).value();
  EXPECT_EQ(model.Classify(s.test.Row(0)), model.Classify(s.test.Row(0)));
}

TEST(FalcesTest, ExternalPoolVariant) {
  const TrainValTest s = MakeSplits();
  ModelPool pool;
  DecisionTreeOptions dt;
  dt.max_depth = 4;
  auto tree = std::make_unique<DecisionTree>(dt);
  ASSERT_TRUE(tree->Fit(s.train).ok());
  pool.Add(std::move(tree));
  Result<FalcesModel> model =
      FalcesModel::TrainWithPool(std::move(pool), s.validation, {});
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model.value().num_retained_combinations(), 1u);
}

TEST(FalcesTest, RejectsBadOptions) {
  const TrainValTest s = MakeSplits();
  FalcesOptions opt;
  opt.k = 0;
  EXPECT_FALSE(FalcesModel::Train(s.train, s.validation, opt).ok());
  ModelPool empty;
  EXPECT_FALSE(
      FalcesModel::TrainWithPool(std::move(empty), s.validation, {}).ok());
}

}  // namespace
}  // namespace falcc
