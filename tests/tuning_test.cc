#include "core/tuning.h"

#include <gtest/gtest.h>

#include "data/split.h"
#include "datagen/synthetic.h"

namespace falcc {
namespace {

TrainValTest MakeSplits() {
  SyntheticConfig cfg;
  cfg.num_samples = 2000;
  cfg.seed = 14;
  const Dataset d = GenerateImplicitBias(cfg).value();
  return SplitDatasetDefault(d, 14).value();
}

TuneOptions FastOptions() {
  TuneOptions opt;
  opt.lambdas = {0.5};
  opt.proxy_strategies = {ProxyMitigation::kNone, ProxyMitigation::kReweigh};
  opt.cluster_counts = {2, 4};
  opt.seed = 14;
  return opt;
}

TEST(TuneFalccTest, EvaluatesFullGridAndReturnsModel) {
  const TrainValTest s = MakeSplits();
  const TuneResult result =
      TuneFalcc(s.train, s.validation, FastOptions()).value();
  EXPECT_EQ(result.num_evaluated, 4u);  // 1 lambda x 2 strategies x 2 ks
  EXPECT_GE(result.best_score, 0.0);
  EXPECT_LE(result.best_score, 1.0);
  // The returned model is trained and classifies.
  const std::vector<int> preds = result.model.ClassifyAll(s.test);
  EXPECT_EQ(preds.size(), s.test.num_rows());
}

TEST(TuneFalccTest, BestOptionsAreFromSearchSpace) {
  const TrainValTest s = MakeSplits();
  const TuneOptions opt = FastOptions();
  const TuneResult result = TuneFalcc(s.train, s.validation, opt).value();
  EXPECT_EQ(result.best_options.lambda, 0.5);
  EXPECT_TRUE(result.best_options.fixed_k == 2 ||
              result.best_options.fixed_k == 4);
  EXPECT_TRUE(result.best_options.proxy.strategy == ProxyMitigation::kNone ||
              result.best_options.proxy.strategy ==
                  ProxyMitigation::kReweigh);
}

TEST(TuneFalccTest, DeterministicForSeed) {
  const TrainValTest s = MakeSplits();
  const TuneResult a =
      TuneFalcc(s.train, s.validation, FastOptions()).value();
  const TuneResult b =
      TuneFalcc(s.train, s.validation, FastOptions()).value();
  EXPECT_DOUBLE_EQ(a.best_score, b.best_score);
  EXPECT_EQ(a.best_options.fixed_k, b.best_options.fixed_k);
}

TEST(TuneFalccTest, RejectsBadOptions) {
  const TrainValTest s = MakeSplits();
  TuneOptions opt = FastOptions();
  opt.lambdas.clear();
  EXPECT_FALSE(TuneFalcc(s.train, s.validation, opt).ok());

  opt = FastOptions();
  opt.tune_fraction = 0.0;
  EXPECT_FALSE(TuneFalcc(s.train, s.validation, opt).ok());

  opt = FastOptions();
  opt.tune_fraction = 0.999;  // assess partition would be ~empty
  EXPECT_FALSE(TuneFalcc(s.train, s.validation, opt).ok());
}

TEST(TuneFalccTest, WinnerIsAtLeastAsGoodAsWorstCandidate) {
  // Sanity: the tuner's chosen configuration, retrained and evaluated on
  // the test set, should not be drastically worse than an arbitrary
  // fixed configuration (it was chosen to minimize held-out loss).
  const TrainValTest s = MakeSplits();
  const TuneResult tuned =
      TuneFalcc(s.train, s.validation, FastOptions()).value();

  FalccOptions fixed;
  fixed.seed = 14;
  fixed.fixed_k = 4;
  const FalccModel baseline =
      FalccModel::Train(s.train, s.validation, fixed).value();

  auto accuracy = [&](const std::vector<int>& preds) {
    size_t correct = 0;
    for (size_t i = 0; i < preds.size(); ++i) {
      correct += preds[i] == s.test.Label(i);
    }
    return static_cast<double>(correct) / preds.size();
  };
  EXPECT_GT(accuracy(tuned.model.ClassifyAll(s.test)),
            accuracy(baseline.ClassifyAll(s.test)) - 0.1);
}

}  // namespace
}  // namespace falcc
