#include "baselines/fairboost.h"

#include <gtest/gtest.h>

#include "datagen/synthetic.h"
#include "fairness/metrics.h"
#include "data/groups.h"

namespace falcc {
namespace {

Dataset MakeData(size_t n = 1500, uint64_t seed = 4) {
  SyntheticConfig cfg;
  cfg.num_samples = n;
  cfg.seed = seed;
  return GenerateSocialBias(cfg).value();
}

TEST(FairBoostTest, TrainsAndBeatsChance) {
  const Dataset d = MakeData();
  FairBoost model;
  ASSERT_TRUE(model.Fit(d).ok());
  EXPECT_GT(Accuracy(model, d), 0.6);
}

TEST(FairBoostTest, ProbaBounded) {
  const Dataset d = MakeData(500);
  FairBoost model;
  ASSERT_TRUE(model.Fit(d).ok());
  for (size_t i = 0; i < 50; ++i) {
    const double p = model.PredictProba(d.Row(i));
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(FairBoostTest, Deterministic) {
  const Dataset d = MakeData(500);
  FairBoost a, b;
  ASSERT_TRUE(a.Fit(d).ok());
  ASSERT_TRUE(b.Fit(d).ok());
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(a.PredictProba(d.Row(i)), b.PredictProba(d.Row(i)));
  }
}

TEST(FairBoostTest, CloneKeepsState) {
  const Dataset d = MakeData(500);
  FairBoost model;
  ASSERT_TRUE(model.Fit(d).ok());
  const std::unique_ptr<Classifier> clone = model.Clone();
  EXPECT_DOUBLE_EQ(model.PredictProba(d.Row(0)),
                   clone->PredictProba(d.Row(0)));
}

TEST(FairBoostTest, RejectsBadConfig) {
  const Dataset d = MakeData(200);
  FairBoostOptions opt;
  opt.num_estimators = 0;
  FairBoost model(opt);
  EXPECT_FALSE(model.Fit(d).ok());
  opt = {};
  opt.k = 0;
  FairBoost model2(opt);
  EXPECT_FALSE(model2.Fit(d).ok());
}

TEST(FairBoostTest, FairnessBoostChangesModel) {
  // With a strong fairness boost the learned ensemble differs from the
  // pure-AdaBoost configuration (boost factor 0 keeps only the
  // misclassification update).
  const Dataset d = MakeData(800, 6);
  FairBoostOptions plain;
  plain.fairness_boost = 0.0;
  FairBoostOptions boosted;
  boosted.fairness_boost = 3.0;
  boosted.unfairness_threshold = 0.3;
  FairBoost a(plain), b(boosted);
  ASSERT_TRUE(a.Fit(d).ok());
  ASSERT_TRUE(b.Fit(d).ok());
  bool any_diff = false;
  for (size_t i = 0; i < d.num_rows() && !any_diff; ++i) {
    any_diff = a.PredictProba(d.Row(i)) != b.PredictProba(d.Row(i));
  }
  EXPECT_TRUE(any_diff);
}

TEST(FairBoostTest, SampleWeightsAccepted) {
  const Dataset d = MakeData(300, 7);
  std::vector<double> w(d.num_rows(), 1.0);
  w[0] = 5.0;
  FairBoost model;
  EXPECT_TRUE(model.Fit(d, w).ok());
}

}  // namespace
}  // namespace falcc
