#include "fairness/audit.h"

#include <gtest/gtest.h>

#include "datagen/synthetic.h"
#include "ml/decision_tree.h"

namespace falcc {
namespace {

Dataset MakeData(size_t n = 600, uint64_t seed = 12) {
  SyntheticConfig cfg;
  cfg.num_samples = n;
  cfg.seed = seed;
  return GenerateSocialBias(cfg).value();
}

TEST(AuditTest, PerfectPredictionsAudit) {
  const Dataset d = MakeData();
  const FairnessAudit audit =
      AuditPredictions(d, d.labels()).value();
  EXPECT_DOUBLE_EQ(audit.accuracy, 1.0);
  EXPECT_DOUBLE_EQ(audit.equalized_odds, 0.0);
  EXPECT_DOUBLE_EQ(audit.treatment_equality, 0.0);
  // Demographic parity of the *labels* is nonzero: the data is biased.
  EXPECT_GT(audit.demographic_parity, 0.05);
  ASSERT_EQ(audit.groups.size(), 2u);
  for (const GroupAudit& g : audit.groups) {
    EXPECT_DOUBLE_EQ(g.accuracy, 1.0);
    EXPECT_DOUBLE_EQ(g.tpr, 1.0);
    EXPECT_DOUBLE_EQ(g.fpr, 0.0);
    EXPECT_DOUBLE_EQ(g.base_rate, g.positive_rate);
  }
}

TEST(AuditTest, ConstantPredictionsAudit) {
  const Dataset d = MakeData();
  const std::vector<int> ones(d.num_rows(), 1);
  const FairnessAudit audit = AuditPredictions(d, ones).value();
  EXPECT_DOUBLE_EQ(audit.demographic_parity, 0.0);
  EXPECT_DOUBLE_EQ(audit.consistency, 1.0);
  for (const GroupAudit& g : audit.groups) {
    EXPECT_DOUBLE_EQ(g.positive_rate, 1.0);
    EXPECT_DOUBLE_EQ(g.tpr, 1.0);
    EXPECT_DOUBLE_EQ(g.fpr, 1.0);
  }
}

TEST(AuditTest, GroupSizesSumToDatasetSize) {
  const Dataset d = MakeData();
  const FairnessAudit audit = AuditPredictions(d, d.labels()).value();
  size_t total = 0;
  for (const GroupAudit& g : audit.groups) total += g.size;
  EXPECT_EQ(total, d.num_rows());
}

TEST(AuditTest, ModelPredictionsAuditBounded) {
  const Dataset d = MakeData();
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(d).ok());
  const FairnessAudit audit =
      AuditPredictions(d, PredictAll(tree, d)).value();
  EXPECT_GT(audit.accuracy, 0.5);
  EXPECT_GE(audit.consistency, 0.0);
  EXPECT_LE(audit.consistency, 1.0);
  for (double v : {audit.demographic_parity, audit.equalized_odds,
                   audit.equal_opportunity, audit.treatment_equality}) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(AuditTest, FormatContainsAllSections) {
  const Dataset d = MakeData(200);
  const FairnessAudit audit = AuditPredictions(d, d.labels()).value();
  const std::string report = FormatAudit(audit);
  EXPECT_NE(report.find("demographic parity"), std::string::npos);
  EXPECT_NE(report.find("consistency"), std::string::npos);
  EXPECT_NE(report.find("TPR%"), std::string::npos);
  EXPECT_NE(report.find("sens="), std::string::npos);
}

TEST(AuditTest, RejectsBadInputs) {
  const Dataset d = MakeData(100);
  const std::vector<int> too_short = {1};
  EXPECT_FALSE(AuditPredictions(d, too_short).ok());
}

}  // namespace
}  // namespace falcc
