#include "cluster/kmeans.h"

#include <gtest/gtest.h>

#include <set>

#include "util/math.h"
#include "util/rng.h"

namespace falcc {
namespace {

// Three well-separated blobs in 2D.
std::vector<std::vector<double>> MakeBlobs(size_t per_blob, uint64_t seed) {
  Rng rng(seed);
  const double centers[3][2] = {{0, 0}, {10, 10}, {-10, 10}};
  std::vector<std::vector<double>> points;
  for (int b = 0; b < 3; ++b) {
    for (size_t i = 0; i < per_blob; ++i) {
      points.push_back({rng.Normal(centers[b][0], 0.5),
                        rng.Normal(centers[b][1], 0.5)});
    }
  }
  return points;
}

TEST(KMeansTest, RecoversBlobs) {
  const auto points = MakeBlobs(100, 1);
  const KMeansResult result = RunKMeans(points, 3).value();
  // Every blob maps to a single cluster.
  for (int b = 0; b < 3; ++b) {
    std::set<size_t> ids;
    for (size_t i = 0; i < 100; ++i) ids.insert(result.assignment[b * 100 + i]);
    EXPECT_EQ(ids.size(), 1u) << "blob " << b;
  }
  // And the three blobs map to three distinct clusters.
  std::set<size_t> reps = {result.assignment[0], result.assignment[100],
                           result.assignment[200]};
  EXPECT_EQ(reps.size(), 3u);
}

TEST(KMeansTest, SseDecreasesWithK) {
  const auto points = MakeBlobs(50, 2);
  double prev = 1e300;
  for (size_t k : {1, 2, 3, 6}) {
    const KMeansResult r = RunKMeans(points, k).value();
    EXPECT_LE(r.sse, prev + 1e-9) << "k=" << k;
    prev = r.sse;
  }
}

TEST(KMeansTest, KOneIsCentroidOfAll) {
  const auto points = MakeBlobs(20, 3);
  const KMeansResult r = RunKMeans(points, 1).value();
  ASSERT_EQ(r.centroids.size(), 1u);
  double mean0 = 0.0;
  for (const auto& p : points) mean0 += p[0];
  mean0 /= static_cast<double>(points.size());
  EXPECT_NEAR(r.centroids[0][0], mean0, 1e-9);
}

TEST(KMeansTest, AssignmentIsNearestCentroid) {
  const auto points = MakeBlobs(40, 4);
  const KMeansResult r = RunKMeans(points, 3).value();
  for (size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(r.assignment[i], NearestCentroid(r.centroids, points[i]));
  }
}

TEST(KMeansTest, SseMatchesAssignment) {
  const auto points = MakeBlobs(30, 5);
  const KMeansResult r = RunKMeans(points, 2).value();
  double sse = 0.0;
  for (size_t i = 0; i < points.size(); ++i) {
    sse += SquaredDistance(points[i], r.centroids[r.assignment[i]]);
  }
  EXPECT_NEAR(r.sse, sse, 1e-9);
}

TEST(KMeansTest, DeterministicForSeed) {
  const auto points = MakeBlobs(50, 6);
  KMeansOptions opt;
  opt.seed = 77;
  const KMeansResult a = RunKMeans(points, 3, opt).value();
  const KMeansResult b = RunKMeans(points, 3, opt).value();
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_DOUBLE_EQ(a.sse, b.sse);
}

TEST(KMeansTest, KEqualsNIsZeroSse) {
  const auto points = MakeBlobs(5, 7);  // 15 distinct points
  const KMeansResult r = RunKMeans(points, points.size()).value();
  EXPECT_NEAR(r.sse, 0.0, 1e-9);
}

TEST(KMeansTest, HandlesDuplicatePoints) {
  std::vector<std::vector<double>> points(20, {1.0, 1.0});
  const KMeansResult r = RunKMeans(points, 3).value();
  EXPECT_NEAR(r.sse, 0.0, 1e-12);
}

TEST(KMeansTest, RejectsBadInputs) {
  const auto points = MakeBlobs(10, 8);
  EXPECT_FALSE(RunKMeans(points, 0).ok());
  EXPECT_FALSE(RunKMeans(points, points.size() + 1).ok());
  EXPECT_FALSE(RunKMeans({}, 1).ok());
  EXPECT_FALSE(RunKMeans({{1.0}, {1.0, 2.0}}, 1).ok());
}

TEST(NearestCentroidTest, PicksClosest) {
  const std::vector<std::vector<double>> centroids = {{0, 0}, {10, 0}};
  const std::vector<double> near_first = {1.0, 0.0};
  const std::vector<double> near_second = {9.0, 0.0};
  EXPECT_EQ(NearestCentroid(centroids, near_first), 0u);
  EXPECT_EQ(NearestCentroid(centroids, near_second), 1u);
}

TEST(NearestCentroidTest, TieGoesToLowerIndex) {
  const std::vector<std::vector<double>> centroids = {{-1, 0}, {1, 0}};
  const std::vector<double> middle = {0.0, 0.0};
  EXPECT_EQ(NearestCentroid(centroids, middle), 0u);
}

}  // namespace
}  // namespace falcc
