#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace falcc {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.UniformInt(17), 17u);
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  constexpr int kN = 100000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sum2 / kN, 1.0, 0.03);
}

TEST(RngTest, NormalShiftScale) {
  Rng rng(17);
  constexpr int kN = 50000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) sum += rng.Normal(3.0, 2.0);
  EXPECT_NEAR(sum / kN, 3.0, 0.05);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(19);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(23);
  const std::vector<size_t> perm = rng.Permutation(100);
  ASSERT_EQ(perm.size(), 100u);
  std::vector<size_t> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v = {1, 2, 3, 4, 5};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ForkIsIndependent) {
  Rng a(31);
  Rng child = a.Fork();
  // The child stream should not replicate the parent stream.
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.Next() == child.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

}  // namespace
}  // namespace falcc
