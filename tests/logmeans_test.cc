#include "cluster/logmeans.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace falcc {
namespace {

// `k` well-separated blobs in 2D.
std::vector<std::vector<double>> MakeBlobs(size_t k, size_t per_blob,
                                           uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> points;
  for (size_t b = 0; b < k; ++b) {
    const double cx = static_cast<double>(b % 4) * 20.0;
    const double cy = static_cast<double>(b / 4) * 20.0;
    for (size_t i = 0; i < per_blob; ++i) {
      points.push_back({rng.Normal(cx, 0.4), rng.Normal(cy, 0.4)});
    }
  }
  return points;
}

TEST(LogMeansTest, FindsFourBlobs) {
  const auto points = MakeBlobs(4, 80, 1);
  const KEstimate est = EstimateKLogMeans(points).value();
  EXPECT_GE(est.k, 3u);
  EXPECT_LE(est.k, 6u);
}

TEST(LogMeansTest, FindsTwoBlobs) {
  const auto points = MakeBlobs(2, 100, 2);
  const KEstimate est = EstimateKLogMeans(points).value();
  EXPECT_EQ(est.k, 2u);
}

TEST(LogMeansTest, EvaluatesFarFewerThanElbow) {
  const auto points = MakeBlobs(4, 60, 3);
  KEstimationOptions opt;
  opt.k_max = 32;
  const KEstimate log_est = EstimateKLogMeans(points, opt).value();
  const KEstimate elbow_est = EstimateKElbow(points, opt).value();
  EXPECT_LT(log_est.evaluated.size(), elbow_est.evaluated.size());
}

TEST(LogMeansTest, RespectsKMaxSmallerThanData) {
  const auto points = MakeBlobs(2, 5, 4);  // 10 points
  KEstimationOptions opt;
  opt.k_max = 64;  // larger than the point count
  const KEstimate est = EstimateKLogMeans(points, opt).value();
  EXPECT_LE(est.k, 10u);
}

TEST(LogMeansTest, DeterministicForSeed) {
  const auto points = MakeBlobs(3, 50, 5);
  KEstimationOptions opt;
  opt.kmeans.seed = 9;
  const KEstimate a = EstimateKLogMeans(points, opt).value();
  const KEstimate b = EstimateKLogMeans(points, opt).value();
  EXPECT_EQ(a.k, b.k);
}

TEST(LogMeansTest, RejectsBadOptions) {
  const auto points = MakeBlobs(2, 10, 6);
  KEstimationOptions opt;
  opt.k_min = 10;
  opt.k_max = 2;
  EXPECT_FALSE(EstimateKLogMeans(points, opt).ok());
  EXPECT_FALSE(EstimateKLogMeans({}, {}).ok());
}

TEST(ElbowTest, FindsThreeBlobs) {
  const auto points = MakeBlobs(3, 80, 7);
  KEstimationOptions opt;
  opt.k_max = 10;
  const KEstimate est = EstimateKElbow(points, opt).value();
  EXPECT_GE(est.k, 2u);
  EXPECT_LE(est.k, 5u);
}

TEST(ElbowTest, EvaluatesFullRange) {
  const auto points = MakeBlobs(2, 30, 8);
  KEstimationOptions opt;
  opt.k_min = 2;
  opt.k_max = 8;
  const KEstimate est = EstimateKElbow(points, opt).value();
  EXPECT_EQ(est.evaluated.size(), 7u);
}

}  // namespace
}  // namespace falcc
