#include "ml/adaboost.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace falcc {
namespace {

// XOR-style data a depth-1 stump cannot solve alone but boosted deeper
// trees can: y = 1 iff x0 * x1 > 0.
Dataset MakeXor(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> features;
  std::vector<int> labels;
  for (size_t i = 0; i < n; ++i) {
    const double x0 = rng.Uniform(-1.0, 1.0);
    const double x1 = rng.Uniform(-1.0, 1.0);
    features.push_back(x0);
    features.push_back(x1);
    labels.push_back(x0 * x1 > 0.0 ? 1 : 0);
  }
  return Dataset::Create({"x0", "x1"}, std::move(features), 2,
                         std::move(labels), {})
      .value();
}

TEST(AdaBoostTest, LearnsXorWithDepthTwoTrees) {
  const Dataset d = MakeXor(1000, 1);
  AdaBoostOptions opt;
  opt.num_estimators = 20;
  opt.base.max_depth = 2;
  AdaBoost model(opt);
  ASSERT_TRUE(model.Fit(d).ok());
  EXPECT_GT(Accuracy(model, d), 0.95);
}

TEST(AdaBoostTest, BoostingBeatsSingleStump) {
  const Dataset d = MakeXor(1000, 2);
  AdaBoostOptions stump_opt;
  stump_opt.num_estimators = 1;
  stump_opt.base.max_depth = 1;
  AdaBoost single(stump_opt);
  ASSERT_TRUE(single.Fit(d).ok());

  AdaBoostOptions boost_opt;
  boost_opt.num_estimators = 50;
  boost_opt.base.max_depth = 2;
  AdaBoost boosted(boost_opt);
  ASSERT_TRUE(boosted.Fit(d).ok());
  EXPECT_GT(Accuracy(boosted, d), Accuracy(single, d) + 0.2);
}

TEST(AdaBoostTest, StopsEarlyOnPerfectFit) {
  // Trivially separable data: the first depth-7 tree is perfect.
  Dataset d = Dataset::Create({"x"}, {1, 2, 3, 4, 10, 11, 12, 13}, 1,
                              {0, 0, 0, 0, 1, 1, 1, 1}, {})
                  .value();
  AdaBoostOptions opt;
  opt.num_estimators = 20;
  AdaBoost model(opt);
  ASSERT_TRUE(model.Fit(d).ok());
  EXPECT_EQ(model.num_fitted(), 1u);
  EXPECT_DOUBLE_EQ(Accuracy(model, d), 1.0);
}

TEST(AdaBoostTest, ProbaWithinUnitInterval) {
  const Dataset d = MakeXor(300, 3);
  AdaBoost model;
  ASSERT_TRUE(model.Fit(d).ok());
  for (size_t i = 0; i < d.num_rows(); ++i) {
    const double p = model.PredictProba(d.Row(i));
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(AdaBoostTest, PredictConsistentWithProba) {
  const Dataset d = MakeXor(300, 4);
  AdaBoost model;
  ASSERT_TRUE(model.Fit(d).ok());
  for (size_t i = 0; i < d.num_rows(); ++i) {
    EXPECT_EQ(model.Predict(d.Row(i)),
              model.PredictProba(d.Row(i)) >= 0.5 ? 1 : 0);
  }
}

TEST(AdaBoostTest, RespectsSampleWeights) {
  // Conflicting labels at identical points decided by weights.
  Dataset d = Dataset::Create({"x"}, {1.0, 1.0}, 1, {0, 1}, {}).value();
  AdaBoost model;
  const std::vector<double> w = {0.1, 0.9};
  ASSERT_TRUE(model.Fit(d, w).ok());
  EXPECT_EQ(model.Predict(d.Row(0)), 1);
}

TEST(AdaBoostTest, DeterministicForConfig) {
  const Dataset d = MakeXor(500, 5);
  AdaBoost a, b;
  ASSERT_TRUE(a.Fit(d).ok());
  ASSERT_TRUE(b.Fit(d).ok());
  for (size_t i = 0; i < d.num_rows(); ++i) {
    EXPECT_DOUBLE_EQ(a.PredictProba(d.Row(i)), b.PredictProba(d.Row(i)));
  }
}

TEST(AdaBoostTest, CloneKeepsFittedState) {
  const Dataset d = MakeXor(300, 6);
  AdaBoost model;
  ASSERT_TRUE(model.Fit(d).ok());
  const std::unique_ptr<Classifier> clone = model.Clone();
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(model.PredictProba(d.Row(i)),
                     clone->PredictProba(d.Row(i)));
  }
}

TEST(AdaBoostTest, RejectsBadConfig) {
  const Dataset d = MakeXor(50, 7);
  AdaBoostOptions opt;
  opt.num_estimators = 0;
  AdaBoost model(opt);
  EXPECT_FALSE(model.Fit(d).ok());
  Dataset empty;
  AdaBoost model2;
  EXPECT_FALSE(model2.Fit(empty).ok());
}

TEST(AdaBoostTest, NameReflectsOptions) {
  AdaBoostOptions opt;
  opt.num_estimators = 5;
  opt.base.max_depth = 1;
  EXPECT_EQ(AdaBoost(opt).Name(), "AdaBoost(T=5,depth=1,gini)");
}

class AdaBoostGridSweep
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(AdaBoostGridSweep, AllPaperGridConfigsTrainAndPredict) {
  const auto [estimators, depth] = GetParam();
  const Dataset d = MakeXor(400, 8);
  AdaBoostOptions opt;
  opt.num_estimators = estimators;
  opt.base.max_depth = depth;
  AdaBoost model(opt);
  ASSERT_TRUE(model.Fit(d).ok());
  EXPECT_GE(Accuracy(model, d), 0.45);  // never worse than chance-ish
}

INSTANTIATE_TEST_SUITE_P(PaperGrid, AdaBoostGridSweep,
                         ::testing::Combine(::testing::Values(5, 20),
                                            ::testing::Values(1, 7)));

}  // namespace
}  // namespace falcc
