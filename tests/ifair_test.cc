#include "baselines/ifair.h"

#include <gtest/gtest.h>

#include "datagen/synthetic.h"
#include "fairness/metrics.h"
#include "data/transforms.h"

namespace falcc {
namespace {

Dataset MakeData(size_t n = 800, uint64_t seed = 6) {
  SyntheticConfig cfg;
  cfg.num_samples = n;
  cfg.seed = seed;
  return GenerateImplicitBias(cfg).value();
}

TEST(IFairTest, TrainsAndBeatsChance) {
  const Dataset d = MakeData();
  IFairOptions opt;
  opt.max_iterations = 40;
  IFairClassifier model(opt);
  ASSERT_TRUE(model.Fit(d).ok());
  EXPECT_GT(Accuracy(model, d), 0.6);
}

TEST(IFairTest, RepresentationHasProtectedFreeWidth) {
  const Dataset d = MakeData(300);
  IFairOptions opt;
  opt.max_iterations = 10;
  IFairClassifier model(opt);
  ASSERT_TRUE(model.Fit(d).ok());
  // 9 features minus 1 sensitive.
  EXPECT_EQ(model.Representation(d.Row(0)).size(), 8u);
}

TEST(IFairTest, RepresentationImprovesConsistencyOfDownstreamModel) {
  // Predictions through the quantized representation are at least as
  // consistent as the features are individually smooth — we check the
  // classifier's predictions respect neighborhoods reasonably.
  const Dataset d = MakeData(600, 8);
  IFairOptions opt;
  opt.max_iterations = 30;
  IFairClassifier model(opt);
  ASSERT_TRUE(model.Fit(d).ok());
  const std::vector<int> preds = PredictAll(model, d);
  ColumnTransform t = ColumnTransform::Standardize(d);
  t.DropColumns(d.sensitive_features());
  const double consistency =
      ConsistencyKnn(preds, t.ApplyAll(d), 10).value();
  EXPECT_GT(consistency, 0.65);
}

TEST(IFairTest, DeterministicForSeed) {
  const Dataset d = MakeData(300);
  IFairOptions opt;
  opt.seed = 4;
  opt.max_iterations = 15;
  IFairClassifier a(opt), b(opt);
  ASSERT_TRUE(a.Fit(d).ok());
  ASSERT_TRUE(b.Fit(d).ok());
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(a.PredictProba(d.Row(i)), b.PredictProba(d.Row(i)));
  }
}

TEST(IFairTest, RejectsBadInputs) {
  const Dataset d = MakeData(100);
  IFairOptions opt;
  opt.num_prototypes = 1;
  IFairClassifier model(opt);
  EXPECT_FALSE(model.Fit(d).ok());

  IFairClassifier model2;
  std::vector<double> weights(d.num_rows(), 1.0);
  EXPECT_FALSE(model2.Fit(d, weights).ok());
}

TEST(IFairTest, CloneKeepsState) {
  const Dataset d = MakeData(300);
  IFairOptions opt;
  opt.max_iterations = 10;
  IFairClassifier model(opt);
  ASSERT_TRUE(model.Fit(d).ok());
  const std::unique_ptr<Classifier> clone = model.Clone();
  EXPECT_DOUBLE_EQ(model.PredictProba(d.Row(0)),
                   clone->PredictProba(d.Row(0)));
}

}  // namespace
}  // namespace falcc
