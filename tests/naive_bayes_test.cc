#include "ml/naive_bayes.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace falcc {
namespace {

Dataset MakeGaussians(size_t n, uint64_t seed, double separation = 2.0) {
  Rng rng(seed);
  std::vector<double> features;
  std::vector<int> labels;
  for (size_t i = 0; i < n; ++i) {
    const int y = rng.Bernoulli(0.5) ? 1 : 0;
    const double mu = y == 1 ? separation / 2.0 : -separation / 2.0;
    features.push_back(rng.Normal(mu, 1.0));
    features.push_back(rng.Normal(mu, 1.0));
    labels.push_back(y);
  }
  return Dataset::Create({"x0", "x1"}, std::move(features), 2,
                         std::move(labels), {})
      .value();
}

TEST(GaussianNBTest, LearnsGaussianBlobs) {
  const Dataset train = MakeGaussians(2000, 1);
  const Dataset test = MakeGaussians(500, 2);
  GaussianNaiveBayes model;
  ASSERT_TRUE(model.Fit(train).ok());
  EXPECT_GT(Accuracy(model, test), 0.9);
}

TEST(GaussianNBTest, ProbaNearHalfAtBoundary) {
  const Dataset d = MakeGaussians(5000, 3);
  GaussianNaiveBayes model;
  ASSERT_TRUE(model.Fit(d).ok());
  const std::vector<double> boundary = {0.0, 0.0};
  EXPECT_NEAR(model.PredictProba(boundary), 0.5, 0.1);
}

TEST(GaussianNBTest, SkewedPriorShiftsPrediction) {
  // 90% negative class: ambiguous points lean negative.
  Rng rng(4);
  std::vector<double> features;
  std::vector<int> labels;
  for (size_t i = 0; i < 2000; ++i) {
    const int y = rng.Bernoulli(0.1) ? 1 : 0;
    const double mu = y == 1 ? 0.5 : -0.5;
    features.push_back(rng.Normal(mu, 2.0));
    labels.push_back(y);
  }
  Dataset d =
      Dataset::Create({"x"}, std::move(features), 1, std::move(labels), {})
          .value();
  GaussianNaiveBayes model;
  ASSERT_TRUE(model.Fit(d).ok());
  const std::vector<double> ambiguous = {0.0};
  EXPECT_LT(model.PredictProba(ambiguous), 0.5);
}

TEST(GaussianNBTest, HandlesSingleClassGracefully) {
  Dataset d =
      Dataset::Create({"x"}, {1.0, 2.0, 3.0}, 1, {1, 1, 1}, {}).value();
  GaussianNaiveBayes model;
  ASSERT_TRUE(model.Fit(d).ok());
  EXPECT_EQ(model.Predict(d.Row(0)), 1);
}

TEST(GaussianNBTest, WeightedFitRespectsWeights) {
  // Same x, conflicting y: heavier class wins.
  Dataset d = Dataset::Create({"x"}, {0.0, 0.0}, 1, {0, 1}, {}).value();
  GaussianNaiveBayes model;
  const std::vector<double> w = {0.1, 0.9};
  ASSERT_TRUE(model.Fit(d, w).ok());
  EXPECT_EQ(model.Predict(d.Row(0)), 1);
}

TEST(GaussianNBTest, CloneKeepsState) {
  const Dataset d = MakeGaussians(500, 5);
  GaussianNaiveBayes model;
  ASSERT_TRUE(model.Fit(d).ok());
  const std::unique_ptr<Classifier> clone = model.Clone();
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(model.PredictProba(d.Row(i)),
                     clone->PredictProba(d.Row(i)));
  }
}

TEST(GaussianNBTest, RejectsEmptyData) {
  Dataset empty;
  GaussianNaiveBayes model;
  EXPECT_FALSE(model.Fit(empty).ok());
}

}  // namespace
}  // namespace falcc
