#include "fairness/diversity.h"

#include <gtest/gtest.h>

namespace falcc {
namespace {

TEST(EnsembleEntropyTest, UnanimousIsZero) {
  const std::vector<std::vector<int>> votes = {{1, 0, 1}, {1, 0, 1}, {1, 0, 1}};
  EXPECT_DOUBLE_EQ(EnsembleEntropy(votes).value(), 0.0);
}

TEST(EnsembleEntropyTest, EvenSplitIsOne) {
  const std::vector<std::vector<int>> votes = {{1, 1}, {0, 0}};
  EXPECT_DOUBLE_EQ(EnsembleEntropy(votes).value(), 1.0);
}

TEST(EnsembleEntropyTest, HandValue) {
  // 4 models, one sample, 3 vote 1: H(0.75) = 0.8113.
  const std::vector<std::vector<int>> votes = {{1}, {1}, {1}, {0}};
  EXPECT_NEAR(EnsembleEntropy(votes).value(), 0.811278, 1e-5);
}

TEST(EnsembleEntropyTest, AveragesOverSamples) {
  // Sample 0 unanimous (H=0), sample 1 split (H=1): mean 0.5.
  const std::vector<std::vector<int>> votes = {{1, 1}, {1, 0}};
  EXPECT_DOUBLE_EQ(EnsembleEntropy(votes).value(), 0.5);
}

TEST(EnsembleEntropyTest, SingleModelIsZero) {
  const std::vector<std::vector<int>> votes = {{1, 0, 1, 0}};
  EXPECT_DOUBLE_EQ(EnsembleEntropy(votes).value(), 0.0);
}

TEST(EnsembleEntropyTest, BoundedZeroOne) {
  const std::vector<std::vector<int>> votes = {
      {1, 0, 1, 1}, {0, 0, 1, 0}, {1, 1, 1, 0}};
  const double e = EnsembleEntropy(votes).value();
  EXPECT_GE(e, 0.0);
  EXPECT_LE(e, 1.0);
}

TEST(EnsembleEntropyTest, RejectsBadInput) {
  EXPECT_FALSE(EnsembleEntropy({}).ok());
  EXPECT_FALSE(EnsembleEntropy({{}}).ok());
  EXPECT_FALSE(EnsembleEntropy({{1, 0}, {1}}).ok());
}

}  // namespace
}  // namespace falcc
