// Bounded lock-free decision log: the bridge between the serving hot
// path and the drift monitor.
//
// Producers are the engine's classification threads (via the
// serve::DecisionObserver hook) and feedback threads reporting delayed
// ground truth by decision id; the single consumer is the monitor's
// Poll loop. The log is a power-of-two ring indexed by a monotonically
// increasing decision id, so it never blocks a producer: when the
// stream outruns the consumer, the oldest entries are overwritten (and
// counted) rather than stalling classification.
//
// Concurrency protocol (one atomic word per slot):
//
//   meta = (id + 1) << 4 | flags      meta == 0 means "never written"
//   flags: kWriting  — payload store in progress, entry unreadable
//          kConsumed — drained by the consumer, slot reusable
//          kLabeled  — ground truth arrived (label in kLabelOne)
//          kLabelOne — the truth label bit (binary labels)
//
// Append publishes with two meta stores around the payload write
// (seqlock-style); AddFeedback is a single CAS that only succeeds on a
// write-complete, unconsumed entry of exactly the expected id — stale
// feedback for an overwritten id fails harmlessly. The consumer copies
// the payload first and then validates with a CAS that sets kConsumed;
// a racing overwrite makes the CAS fail and the torn copy is
// discarded. Payload fields (including the feature vector) are relaxed
// atomics, so a discarded racing copy is defined behavior — the whole
// protocol is clean under ThreadSanitizer.
//
// Monotonic ids make ABA impossible: a slot reused for a newer decision
// carries a different id in its meta word, so every CAS against the old
// id fails.

#ifndef FALCC_MONITOR_DECISION_LOG_H_
#define FALCC_MONITOR_DECISION_LOG_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "serve/engine.h"

namespace falcc::monitor {

/// One drained entry: the decision's audit trail plus the ground truth
/// that arrived for it. `features` points into the drain scratch buffer
/// and is only valid for the duration of the visitor call.
struct LoggedDecision {
  uint64_t id = 0;
  uint64_t snapshot_version = 0;
  size_t cluster = 0;
  size_t group = 0;
  size_t model = 0;
  int predicted = 0;  ///< the engine's decision
  int truth = 0;      ///< the delayed ground-truth label
  std::span<const double> features;
};

/// Monotonic counters (relaxed reads; may trail concurrent activity).
struct DecisionLogStats {
  uint64_t appended = 0;         ///< decisions logged
  uint64_t labeled = 0;          ///< feedback accepted
  uint64_t consumed = 0;         ///< labeled entries drained
  uint64_t feedback_missed = 0;  ///< feedback for overwritten/consumed ids
  uint64_t overwritten = 0;      ///< unconsumed entries lost to ring wrap
};

/// The ring. Any number of producers (decision + feedback threads); at
/// most one thread may call DrainLabeled at a time.
class DecisionLog final : public serve::DecisionObserver {
 public:
  /// `capacity` is rounded up to a power of two. It bounds how many
  /// decisions can await feedback: feedback older than `capacity`
  /// decisions is dropped (counted in feedback_missed/overwritten).
  DecisionLog(size_t capacity, size_t num_features);

  /// serve::DecisionObserver: logs every decision the engine produces.
  /// Ids are assigned in append order starting at 0, so a single-driver
  /// replay can correlate feedback positionally.
  void OnDecision(const SampleDecision& decision,
                  std::span<const double> features,
                  uint64_t snapshot_version) override;

  /// Logs one decision, returns its id.
  uint64_t Append(const SampleDecision& decision,
                  std::span<const double> features,
                  uint64_t snapshot_version);

  /// Attaches ground truth (0/1) to decision `id`. Returns false — and
  /// counts a miss — if the entry was already overwritten, consumed, or
  /// labeled.
  bool AddFeedback(uint64_t id, int truth_label);

  /// Drains every labeled, not-yet-consumed entry in id order, invoking
  /// `visit` once per entry. Single-consumer. Returns the entry count.
  /// Cost is O(drained) amortized, not O(capacity): a pending-label
  /// counter bounds the scan and a consumer cursor starts it where the
  /// previous drain left off.
  size_t DrainLabeled(const std::function<void(const LoggedDecision&)>& visit);

  size_t capacity() const { return capacity_; }
  size_t num_features() const { return num_features_; }
  /// Next id Append will assign (== total appended so far).
  uint64_t next_id() const { return next_.load(std::memory_order_relaxed); }

  DecisionLogStats Stats() const;

 private:
  static constexpr uint64_t kWriting = 1;
  static constexpr uint64_t kConsumed = 2;
  static constexpr uint64_t kLabeled = 4;
  static constexpr uint64_t kLabelOne = 8;

  struct Slot {
    std::atomic<uint64_t> meta{0};
    std::atomic<uint64_t> version{0};
    std::atomic<uint32_t> cluster{0};
    std::atomic<uint32_t> group{0};
    std::atomic<uint32_t> model{0};
    std::atomic<int32_t> predicted{0};
  };

  size_t SlotOf(uint64_t id) const { return id & (capacity_ - 1); }

  size_t capacity_;
  size_t num_features_;
  std::vector<Slot> slots_;
  /// Feature payloads, capacity_ * num_features_, slot-major. Relaxed
  /// atomics: torn reads are possible but always discarded (see the
  /// protocol note above).
  std::vector<std::atomic<double>> features_;
  std::atomic<uint64_t> next_{0};

  /// Labeled-but-unconsumed entries currently in the ring: incremented
  /// by AddFeedback, decremented when such an entry is consumed or
  /// overwritten. Lets DrainLabeled stop scanning once every pending
  /// entry has been found.
  std::atomic<uint64_t> pending_{0};
  /// Ring position where the next drain starts scanning. Consumer-side
  /// state, touched only under DrainLabeled's single-consumer contract.
  size_t drain_cursor_ = 0;

  std::atomic<uint64_t> appended_{0};
  std::atomic<uint64_t> labeled_{0};
  std::atomic<uint64_t> consumed_{0};
  std::atomic<uint64_t> feedback_missed_{0};
  std::atomic<uint64_t> overwritten_{0};
};

}  // namespace falcc::monitor

#endif  // FALCC_MONITOR_DECISION_LOG_H_
