#include "monitor/refresher.h"

#include <fstream>
#include <numeric>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "io/snapshot.h"
#include "util/timer.h"

namespace falcc::monitor {

Refresher::Refresher(serve::FalccEngine* engine, RefresherOptions options)
    : engine_(engine), options_(std::move(options)) {
  FALCC_CHECK(engine_ != nullptr, "Refresher: null engine");
}

Result<RefreshOutcome> Refresher::RefreshCluster(const ClusterWindow& window,
                                                 size_t cluster) {
  Timer timer;
  attempts_.fetch_add(1, std::memory_order_relaxed);

  const std::shared_ptr<const FalccModel> snapshot = engine_->snapshot();
  if (snapshot == nullptr) {
    return Status::FailedPrecondition("Refresher: no snapshot installed");
  }
  if (cluster >= snapshot->num_clusters()) {
    return Status::InvalidArgument("Refresher: cluster out of range");
  }
  const size_t n = window.labels.size();
  if (n == 0) {
    return Status::InvalidArgument("Refresher: empty window");
  }
  const size_t width = snapshot->num_features();
  if (window.features.size() != n * width || window.groups.size() != n) {
    return Status::InvalidArgument("Refresher: window shape mismatch");
  }

  // The window as a Dataset: PredictMatrix only reads feature rows, so
  // synthetic column names and no sensitive markers suffice.
  std::vector<std::string> names(width);
  for (size_t j = 0; j < width; ++j) names[j] = "f" + std::to_string(j);
  Result<Dataset> data = Dataset::Create(std::move(names), window.features,
                                         width, window.labels, {});
  if (!data.ok()) return data.status();

  const std::vector<std::vector<int>> votes =
      snapshot->pool().PredictMatrix(data.value());
  Result<std::vector<ModelCombination>> combos =
      EnumerateCombinations(snapshot->pool(), snapshot->num_groups());
  if (!combos.ok()) return combos.status();

  AssessmentContext ctx;
  ctx.votes = &votes;
  ctx.labels = data.value().labels();
  ctx.groups = window.groups;
  ctx.num_groups = snapshot->num_groups();
  ctx.mode = snapshot->assess_mode();
  ctx.metric = snapshot->assess_metric();
  ctx.lambda = snapshot->assess_lambda();
  std::vector<size_t> rows(n);
  std::iota(rows.begin(), rows.end(), 0);

  Result<double> current = AssessCombination(
      ctx, snapshot->selected_combinations()[cluster], rows);
  if (!current.ok()) return current.status();
  Result<RegionBest> best = ReassessRegion(ctx, combos.value(), rows);
  if (!best.ok()) return best.status();

  RefreshOutcome outcome;
  outcome.cluster = cluster;
  outcome.current_loss = current.value();
  outcome.best_loss = best.value().loss;
  outcome.installed = best.value().loss < current.value();

  if (outcome.installed) {
    ClusterRefresh refresh;
    refresh.cluster = cluster;
    refresh.combination = combos.value()[best.value().index];
    refresh.baseline_loss = best.value().loss;
    Result<FalccModel> clone =
        snapshot->CloneWithRefreshes({&refresh, 1});
    if (!clone.ok()) return clone.status();
    // Delta publication targets replicas still serving the pre-refresh
    // snapshot, so the base hash is computed from it before the swap.
    uint64_t base_hash = 0;
    bool have_base = false;
    if (!options_.delta_dir.empty()) {
      const Result<uint64_t> hash = snapshot->ContentHash();
      have_base = hash.ok();
      base_hash = hash.ValueOr(0);
      if (!have_base) delta_failures_.fetch_add(1, std::memory_order_relaxed);
    }
    if (have_base) {
      PublishDelta(clone.value(), cluster, base_hash, &outcome);
    }
    engine_->Install(std::move(clone).value());
    installed_.fetch_add(1, std::memory_order_relaxed);
  } else {
    rejected_.fetch_add(1, std::memory_order_relaxed);
  }
  outcome.seconds = timer.ElapsedSeconds();
  return outcome;
}

void Refresher::PublishDelta(const FalccModel& next, size_t cluster,
                             uint64_t base_hash, RefreshOutcome* outcome) {
  std::ostringstream bytes;
  const size_t clusters[] = {cluster};
  if (!next.SaveDelta(&bytes, clusters, base_hash).ok()) {
    delta_failures_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Versioned by the install this delta reproduces: the engine's next
  // publish. Named uniquely enough that re-refreshes never clobber an
  // artifact a replica may be mid-read on.
  const std::string path = options_.delta_dir + "/delta-v" +
                           std::to_string(engine_->snapshot_version() + 1) +
                           "-c" + std::to_string(cluster) + "-" +
                           io::HashHex(base_hash) + ".falcc";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes.str();
  out.flush();
  if (!out) {
    delta_failures_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  delta_published_.fetch_add(1, std::memory_order_relaxed);
  outcome->delta_path = path;
  outcome->delta_bytes = bytes.str().size();
}

RefresherStats Refresher::Stats() const {
  RefresherStats stats;
  stats.attempts = attempts_.load(std::memory_order_relaxed);
  stats.installed = installed_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  stats.delta_published = delta_published_.load(std::memory_order_relaxed);
  stats.delta_failures = delta_failures_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace falcc::monitor
