#include "monitor/refresher.h"

#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "replicate/publisher.h"
#include "replicate/socket_feed.h"
#include "util/timer.h"

namespace falcc::monitor {

Refresher::Refresher(serve::FalccEngine* engine, RefresherOptions options)
    : engine_(engine), options_(std::move(options)) {
  FALCC_CHECK(engine_ != nullptr, "Refresher: null engine");
}

Refresher::~Refresher() = default;

Result<RefreshOutcome> Refresher::RefreshCluster(const ClusterWindow& window,
                                                 size_t cluster) {
  Timer timer;
  attempts_.fetch_add(1, std::memory_order_relaxed);

  const std::shared_ptr<const FalccModel> snapshot = engine_->snapshot();
  if (snapshot == nullptr) {
    return Status::FailedPrecondition("Refresher: no snapshot installed");
  }
  if (cluster >= snapshot->num_clusters()) {
    return Status::InvalidArgument("Refresher: cluster out of range");
  }
  const size_t n = window.labels.size();
  if (n == 0) {
    return Status::InvalidArgument("Refresher: empty window");
  }
  const size_t width = snapshot->num_features();
  if (window.features.size() != n * width || window.groups.size() != n) {
    return Status::InvalidArgument("Refresher: window shape mismatch");
  }

  // The window as a Dataset: PredictMatrix only reads feature rows, so
  // synthetic column names and no sensitive markers suffice.
  std::vector<std::string> names(width);
  for (size_t j = 0; j < width; ++j) names[j] = "f" + std::to_string(j);
  Result<Dataset> data = Dataset::Create(std::move(names), window.features,
                                         width, window.labels, {});
  if (!data.ok()) return data.status();

  const std::vector<std::vector<int>> votes =
      snapshot->pool().PredictMatrix(data.value());
  Result<std::vector<ModelCombination>> combos =
      EnumerateCombinations(snapshot->pool(), snapshot->num_groups());
  if (!combos.ok()) return combos.status();

  AssessmentContext ctx;
  ctx.votes = &votes;
  ctx.labels = data.value().labels();
  ctx.groups = window.groups;
  ctx.num_groups = snapshot->num_groups();
  ctx.mode = snapshot->assess_mode();
  ctx.metric = snapshot->assess_metric();
  ctx.lambda = snapshot->assess_lambda();
  std::vector<size_t> rows(n);
  std::iota(rows.begin(), rows.end(), 0);

  Result<double> current = AssessCombination(
      ctx, snapshot->selected_combinations()[cluster], rows);
  if (!current.ok()) return current.status();
  Result<RegionBest> best = ReassessRegion(ctx, combos.value(), rows);
  if (!best.ok()) return best.status();

  RefreshOutcome outcome;
  outcome.cluster = cluster;
  outcome.current_loss = current.value();
  outcome.best_loss = best.value().loss;
  outcome.installed = best.value().loss < current.value();

  if (outcome.installed) {
    ClusterRefresh refresh;
    refresh.cluster = cluster;
    refresh.combination = combos.value()[best.value().index];
    refresh.baseline_loss = best.value().loss;
    Result<FalccModel> clone =
        snapshot->CloneWithRefreshes({&refresh, 1});
    if (!clone.ok()) return clone.status();
    // Delta publication targets replicas still serving the pre-refresh
    // snapshot, so the base hash is computed from it before the swap.
    uint64_t base_hash = 0;
    bool have_base = false;
    if (!options_.delta_dir.empty()) {
      const Result<uint64_t> hash = snapshot->ContentHash();
      have_base = hash.ok();
      base_hash = hash.ValueOr(0);
      if (!have_base) delta_failures_.fetch_add(1, std::memory_order_relaxed);
    }
    if (have_base) {
      PublishDelta(clone.value(), cluster, base_hash, &outcome);
    }
    engine_->Install(std::move(clone).value());
    installed_.fetch_add(1, std::memory_order_relaxed);
  } else {
    rejected_.fetch_add(1, std::memory_order_relaxed);
  }
  outcome.seconds = timer.ElapsedSeconds();
  return outcome;
}

void Refresher::PublishDelta(const FalccModel& next, size_t cluster,
                             uint64_t base_hash, RefreshOutcome* outcome) {
  if (publisher_ == nullptr && socket_publisher_ == nullptr) {
    replicate::DeltaPublisherOptions publisher_options;
    publisher_options.dir = options_.delta_dir;
    publisher_options.checkpoint_every = options_.checkpoint_every;
    if (!options_.feed_listen.empty()) {
      // Socket mode: the SocketPublisher owns the directory publisher,
      // so every artifact is still written to delta_dir (durable store,
      // catch-up source) before being pushed to subscribers.
      replicate::SocketPublisherOptions socket_options;
      socket_options.listen = options_.feed_listen;
      socket_options.publisher = publisher_options;
      Result<std::unique_ptr<replicate::SocketPublisher>> opened =
          replicate::SocketPublisher::Open(std::move(socket_options));
      if (!opened.ok()) {
        delta_failures_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      socket_publisher_ = std::move(opened).value();
    } else {
      Result<replicate::DeltaPublisher> opened =
          replicate::DeltaPublisher::Open(publisher_options);
      if (!opened.ok()) {
        delta_failures_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      publisher_ = std::make_unique<replicate::DeltaPublisher>(
          std::move(opened).value());
    }
  }
  const size_t clusters[] = {cluster};
  Result<replicate::PublishReport> report =
      socket_publisher_ != nullptr
          ? socket_publisher_->PublishDelta(next, clusters, base_hash)
          : publisher_->PublishDelta(next, clusters, base_hash);
  if (!report.ok()) {
    delta_failures_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  delta_published_.fetch_add(1, std::memory_order_relaxed);
  // The delta is always the first artifact; a cadence checkpoint (and
  // its GC) may ride along in the same report.
  outcome->delta_path = report.value().artifacts.front().path;
  outcome->delta_bytes = report.value().artifacts.front().bytes;
  for (const replicate::PublishedArtifact& artifact :
       report.value().artifacts) {
    if (artifact.kind == replicate::ArtifactKind::kFull) {
      checkpoints_published_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

RefresherStats Refresher::Stats() const {
  RefresherStats stats;
  stats.attempts = attempts_.load(std::memory_order_relaxed);
  stats.installed = installed_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  stats.delta_published = delta_published_.load(std::memory_order_relaxed);
  stats.delta_failures = delta_failures_.load(std::memory_order_relaxed);
  stats.checkpoints_published =
      checkpoints_published_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace falcc::monitor
