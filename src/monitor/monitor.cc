#include "monitor/monitor.h"

#include <sstream>
#include <utility>

#include "serve/sharded_engine.h"

namespace falcc::monitor {

namespace {

/// Shared by both Attach overloads: validates the serving snapshot and
/// derives the monitor's window/log configuration from it.
struct AttachParts {
  WindowStatsOptions window_options;
  std::shared_ptr<DecisionLog> log;
  std::vector<double> baselines;
};

Result<AttachParts> PrepareAttach(
    const std::shared_ptr<const FalccModel>& snapshot,
    const MonitorOptions& options) {
  if (snapshot == nullptr) {
    return Status::FailedPrecondition(
        "FairnessMonitor: attach after the first Install/Reload");
  }
  if (!snapshot->has_baseline_losses()) {
    return Status::FailedPrecondition(
        "FairnessMonitor: snapshot lacks per-cluster baseline losses "
        "(legacy artifact — retrain or re-save the model)");
  }
  AttachParts parts;
  parts.window_options.window = options.window;
  parts.window_options.num_clusters = snapshot->num_clusters();
  parts.window_options.num_groups = snapshot->num_groups();
  parts.window_options.num_features = snapshot->num_features();
  parts.window_options.lambda = snapshot->assess_lambda();
  parts.window_options.metric = snapshot->assess_metric();
  parts.window_options.mode = snapshot->assess_mode();
  parts.log = std::make_shared<DecisionLog>(options.log_capacity,
                                            snapshot->num_features());
  parts.baselines = snapshot->baseline_losses();
  return parts;
}

}  // namespace

FairnessMonitor::FairnessMonitor(serve::FalccEngine* engine,
                                 MonitorOptions options,
                                 std::shared_ptr<DecisionLog> log,
                                 WindowStatsOptions window_options,
                                 std::vector<double> baselines)
    : engine_(engine),
      options_(options),
      log_(std::move(log)),
      windows_(window_options),
      detector_(options.detector, std::move(baselines)),
      refresher_(engine, RefresherOptions{options.delta_dir,
                                          options.checkpoint_every,
                                          options.feed_listen}) {}

Result<std::unique_ptr<FairnessMonitor>> FairnessMonitor::Attach(
    serve::FalccEngine* engine, MonitorOptions options) {
  if (engine == nullptr) {
    return Status::InvalidArgument("FairnessMonitor: null engine");
  }
  Result<AttachParts> parts = PrepareAttach(engine->snapshot(), options);
  if (!parts.ok()) return parts.status();
  std::unique_ptr<FairnessMonitor> monitor(new FairnessMonitor(
      engine, options, parts.value().log, parts.value().window_options,
      std::move(parts.value().baselines)));
  engine->SetObserver(std::move(parts.value().log));
  return monitor;
}

Result<std::unique_ptr<FairnessMonitor>> FairnessMonitor::Attach(
    serve::ShardedEngine* engine, MonitorOptions options) {
  if (engine == nullptr) {
    return Status::InvalidArgument("FairnessMonitor: null engine");
  }
  Result<AttachParts> parts = PrepareAttach(engine->snapshot(), options);
  if (!parts.ok()) return parts.status();
  // The monitor (and its Refresher) works against the fleet's snapshot
  // store: an installed refresh is the snapshot every shard serves on
  // its next flush. Decisions fan in from all shards through the
  // fleet-wide observer hook.
  std::unique_ptr<FairnessMonitor> monitor(new FairnessMonitor(
      engine->snapshot_store(), options, parts.value().log,
      parts.value().window_options, std::move(parts.value().baselines)));
  engine->SetDecisionObserver(std::move(parts.value().log));
  return monitor;
}

bool FairnessMonitor::AddFeedback(uint64_t id, int truth_label) {
  return log_->AddFeedback(id, truth_label);
}

Result<MonitorPollResult> FairnessMonitor::Poll() {
  MonitorPollResult result;
  const size_t num_clusters = detector_.num_clusters();
  std::vector<size_t> fresh(num_clusters, 0);
  result.drained = log_->DrainLabeled([&](const LoggedDecision& d) {
    // Engine decisions always carry a valid (cluster, group); the
    // checks live in WindowStats::Add.
    windows_.Add(d.cluster, d.group, d.truth, d.predicted, d.features);
    ++fresh[d.cluster];
  });

  // One CUSUM step per cluster that received new evidence this poll.
  for (size_t c = 0; c < num_clusters; ++c) {
    if (fresh[c] == 0) continue;
    Result<WindowLoss> loss = windows_.Loss(c);
    if (!loss.ok()) return loss.status();
    if (detector_.Update(c, loss.value().combined, loss.value().count)) {
      result.new_alarms.push_back(c);
    }
  }

  if (options_.auto_refresh) {
    for (size_t c : detector_.AlarmedClusters()) {
      Result<RefreshOutcome> outcome =
          refresher_.RefreshCluster(windows_.Window(c), c);
      if (!outcome.ok()) return outcome.status();
      if (outcome.value().installed) {
        // Restart detection against the refreshed combination; the
        // retained window predictions came from the replaced one.
        detector_.Reset(c, outcome.value().best_loss);
        windows_.Clear(c);
      } else {
        // No strictly better candidate on this window. Unlatch and zero
        // the score so a retry requires the excess to re-accumulate
        // instead of re-attempting every poll.
        detector_.Reset(c, detector_.State(c).baseline);
      }
      result.refreshes.push_back(outcome.value());
    }
  }
  return result;
}

MonitorSummary FairnessMonitor::Summary() const {
  MonitorSummary summary;
  summary.log = log_->Stats();
  summary.refresh = refresher_.Stats();
  summary.num_clusters = detector_.num_clusters();
  summary.clusters.reserve(summary.num_clusters);
  for (size_t c = 0; c < summary.num_clusters; ++c) {
    ClusterMonitorState state;
    state.cluster = c;
    state.window_count = windows_.Count(c);
    if (state.window_count > 0) {
      Result<WindowLoss> loss = windows_.Loss(c);
      if (loss.ok()) state.windowed_loss = loss.value().combined;
    }
    const ClusterDriftState& drift = detector_.State(c);
    state.baseline = drift.baseline;
    state.score = drift.score;
    state.alarmed = drift.alarmed;
    if (state.alarmed) ++summary.num_alarmed;
    summary.clusters.push_back(state);
  }
  return summary;
}

std::string MonitorSummary::ToJson() const {
  std::ostringstream out;
  out << "{\n"
      << "  \"log\": {\"appended\": " << log.appended
      << ", \"labeled\": " << log.labeled << ", \"consumed\": " << log.consumed
      << ", \"feedback_missed\": " << log.feedback_missed
      << ", \"overwritten\": " << log.overwritten << "},\n"
      << "  \"refresh\": {\"attempts\": " << refresh.attempts
      << ", \"installed\": " << refresh.installed
      << ", \"rejected\": " << refresh.rejected << "},\n"
      << "  \"num_clusters\": " << num_clusters << ",\n"
      << "  \"num_alarmed\": " << num_alarmed << ",\n"
      << "  \"clusters\": [";
  for (size_t i = 0; i < clusters.size(); ++i) {
    const ClusterMonitorState& c = clusters[i];
    out << (i == 0 ? "\n" : ",\n")
        << "    {\"cluster\": " << c.cluster
        << ", \"window_count\": " << c.window_count
        << ", \"windowed_loss\": " << c.windowed_loss
        << ", \"baseline\": " << c.baseline << ", \"score\": " << c.score
        << ", \"alarmed\": " << (c.alarmed ? "true" : "false") << "}";
  }
  out << "\n  ]\n}\n";
  return out.str();
}

}  // namespace falcc::monitor
