#include "monitor/decision_log.h"

#include <algorithm>

namespace falcc::monitor {

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

DecisionLog::DecisionLog(size_t capacity, size_t num_features)
    : capacity_(RoundUpPow2(std::max<size_t>(capacity, 2))),
      num_features_(num_features),
      slots_(capacity_),
      features_(capacity_ * num_features_) {
  FALCC_CHECK(num_features > 0, "DecisionLog: num_features must be positive");
}

void DecisionLog::OnDecision(const SampleDecision& decision,
                             std::span<const double> features,
                             uint64_t snapshot_version) {
  Append(decision, features, snapshot_version);
}

uint64_t DecisionLog::Append(const SampleDecision& decision,
                             std::span<const double> features,
                             uint64_t snapshot_version) {
  FALCC_CHECK(features.size() == num_features_,
              "DecisionLog::Append: feature width mismatch");
  const uint64_t id = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[SlotOf(id)];

  // Claim the slot: publish "id, write in progress". The exchange tells
  // us what we displaced — an unconsumed previous entry is data loss.
  const uint64_t claimed = ((id + 1) << 4) | kWriting;
  const uint64_t old = slot.meta.exchange(claimed, std::memory_order_acq_rel);
  if (old != 0 && (old & kConsumed) == 0) {
    overwritten_.fetch_add(1, std::memory_order_relaxed);
    // A labeled entry the consumer never drained: it no longer counts
    // toward the drain's pending total.
    if ((old & kLabeled) != 0) {
      pending_.fetch_sub(1, std::memory_order_relaxed);
    }
  }

  slot.version.store(snapshot_version, std::memory_order_relaxed);
  slot.cluster.store(static_cast<uint32_t>(decision.cluster),
                     std::memory_order_relaxed);
  slot.group.store(static_cast<uint32_t>(decision.group),
                   std::memory_order_relaxed);
  slot.model.store(static_cast<uint32_t>(decision.model),
                   std::memory_order_relaxed);
  slot.predicted.store(decision.label, std::memory_order_relaxed);
  std::atomic<double>* dst = features_.data() + SlotOf(id) * num_features_;
  for (size_t j = 0; j < num_features_; ++j) {
    dst[j].store(features[j], std::memory_order_relaxed);
  }

  // Write complete: clear kWriting. Release orders the payload stores
  // before the flag for feedback/drain threads that acquire-load meta.
  slot.meta.store((id + 1) << 4, std::memory_order_release);
  appended_.fetch_add(1, std::memory_order_relaxed);
  return id;
}

bool DecisionLog::AddFeedback(uint64_t id, int truth_label) {
  FALCC_CHECK(truth_label == 0 || truth_label == 1,
              "DecisionLog::AddFeedback: labels are binary");
  Slot& slot = slots_[SlotOf(id)];
  // Only a write-complete, unlabeled, unconsumed entry of exactly this
  // id accepts feedback; anything else (overwritten, consumed, double
  // feedback, still being written) fails the CAS.
  uint64_t expected = (id + 1) << 4;
  const uint64_t desired =
      expected | kLabeled | (truth_label == 1 ? kLabelOne : 0);
  if (slot.meta.compare_exchange_strong(expected, desired,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
    labeled_.fetch_add(1, std::memory_order_relaxed);
    pending_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  feedback_missed_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

size_t DecisionLog::DrainLabeled(
    const std::function<void(const LoggedDecision&)>& visit) {
  // Pass 1: find labeled, unconsumed entries. The scan starts where the
  // previous drain stopped and ends as soon as it has seen every entry
  // that was pending when it began (labels arriving mid-scan are picked
  // up next drain; a full lap is the worst case, e.g. after a racing
  // overwrite shrank the pending count). Sorting by id gives the
  // visitor append order regardless of slot layout.
  // Clamped: a racing overwrite can transiently underflow the counter
  // (AddFeedback's CAS and its increment are two operations), which
  // must at worst cost a full lap, never a giant reserve.
  const uint64_t want =
      std::min<uint64_t>(pending_.load(std::memory_order_acquire), capacity_);
  if (want == 0) return 0;
  struct Candidate {
    uint64_t id;
    uint64_t meta;
    size_t slot;
  };
  std::vector<Candidate> pending;
  pending.reserve(want);
  for (size_t i = 0; i < capacity_ && pending.size() < want; ++i) {
    const size_t s = (drain_cursor_ + i) & (capacity_ - 1);
    const uint64_t m = slots_[s].meta.load(std::memory_order_acquire);
    if (m == 0 || (m & kWriting) != 0 || (m & kConsumed) != 0 ||
        (m & kLabeled) == 0) {
      continue;
    }
    pending.push_back({(m >> 4) - 1, m, s});
  }
  if (!pending.empty()) {
    // Resume just past the last candidate in scan order (pre-sort).
    drain_cursor_ = (pending.back().slot + 1) & (capacity_ - 1);
  }
  std::sort(pending.begin(), pending.end(),
            [](const Candidate& a, const Candidate& b) { return a.id < b.id; });

  std::vector<double> scratch(num_features_);
  size_t drained = 0;
  for (const Candidate& c : pending) {
    Slot& slot = slots_[c.slot];
    // Copy first, then validate: if a producer overwrote the slot since
    // our scan, the CAS below fails and the (possibly torn) copy is
    // discarded.
    LoggedDecision d;
    d.id = c.id;
    d.snapshot_version = slot.version.load(std::memory_order_relaxed);
    d.cluster = slot.cluster.load(std::memory_order_relaxed);
    d.group = slot.group.load(std::memory_order_relaxed);
    d.model = slot.model.load(std::memory_order_relaxed);
    d.predicted = slot.predicted.load(std::memory_order_relaxed);
    d.truth = (c.meta & kLabelOne) != 0 ? 1 : 0;
    const std::atomic<double>* src = features_.data() + c.slot * num_features_;
    for (size_t j = 0; j < num_features_; ++j) {
      scratch[j] = src[j].load(std::memory_order_relaxed);
    }
    uint64_t expected = c.meta;
    if (!slot.meta.compare_exchange_strong(expected, c.meta | kConsumed,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
      continue;  // overwritten mid-copy; entry already counted as lost
    }
    d.features = scratch;
    visit(d);
    ++drained;
  }
  consumed_.fetch_add(drained, std::memory_order_relaxed);
  pending_.fetch_sub(drained, std::memory_order_relaxed);
  return drained;
}

DecisionLogStats DecisionLog::Stats() const {
  DecisionLogStats stats;
  stats.appended = appended_.load(std::memory_order_relaxed);
  stats.labeled = labeled_.load(std::memory_order_relaxed);
  stats.consumed = consumed_.load(std::memory_order_relaxed);
  stats.feedback_missed = feedback_missed_.load(std::memory_order_relaxed);
  stats.overwritten = overwritten_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace falcc::monitor
