// FairnessMonitor: the online drift-monitoring + refresh subsystem.
//
// Wiring (DESIGN.md §11):
//
//   FalccEngine ──OnDecision──▶ DecisionLog ◀──AddFeedback── truth source
//                                   │ DrainLabeled (Poll)
//                                   ▼
//                              WindowStats ──L̂_window──▶ DriftDetector
//                                   │ Window(c)               │ alarm
//                                   ▼                         ▼
//                               Refresher ◀───────── alarmed clusters
//                                   │ CloneWithRefreshes + Install
//                                   ▼
//                             FalccEngine (hot-swap)
//
// The serving hot path only ever touches the lock-free DecisionLog;
// everything downstream runs on whichever thread calls Poll() —
// typically a background loop or the replay driver between chunks.
// Attach requires a snapshot that carries the offline per-cluster
// baseline losses (models saved before monitoring existed load without
// them; retrain or re-save to monitor those).

#ifndef FALCC_MONITOR_MONITOR_H_
#define FALCC_MONITOR_MONITOR_H_

#include <memory>
#include <string>
#include <vector>

#include "monitor/decision_log.h"
#include "monitor/drift_detector.h"
#include "monitor/refresher.h"
#include "monitor/window_stats.h"
#include "serve/engine.h"

namespace falcc::serve {
class ShardedEngine;
}  // namespace falcc::serve

namespace falcc::monitor {

struct MonitorOptions {
  /// Decision-log ring capacity (rounded up to a power of two). Bounds
  /// how many decisions can await delayed feedback.
  size_t log_capacity = 1 << 14;
  /// Labeled samples retained per cluster (WindowStats W).
  size_t window = 512;
  DriftDetectorOptions detector;
  /// Attempt a refresh automatically inside Poll() for every latched
  /// alarm. Disable to observe alarms and refresh manually.
  bool auto_refresh = true;
  /// Forwarded to RefresherOptions::delta_dir: when non-empty, every
  /// installed refresh also publishes a delta artifact there (through a
  /// replicate::DeltaPublisher — sequence-numbered, temp+rename) for
  /// replicas to apply incrementally.
  std::string delta_dir;
  /// Forwarded to RefresherOptions::checkpoint_every: a full-snapshot
  /// checkpoint is published to delta_dir after this many deltas so
  /// late-joining replicas bootstrap without replaying history (0 =
  /// never).
  size_t checkpoint_every = 8;
  /// Forwarded to RefresherOptions::feed_listen: when non-empty (with
  /// delta_dir set), published artifacts are also pushed to socket
  /// subscribers on this endpoint (`tcp://host:port` or `unix://path`)
  /// so replicas see refreshes without polling the directory.
  std::string feed_listen;
};

/// What one Poll() did.
struct MonitorPollResult {
  size_t drained = 0;               ///< labeled decisions ingested
  std::vector<size_t> new_alarms;   ///< clusters latched this poll
  std::vector<RefreshOutcome> refreshes;  ///< refresh attempts this poll
};

/// Per-cluster monitoring state for summaries.
struct ClusterMonitorState {
  size_t cluster = 0;
  size_t window_count = 0;
  double windowed_loss = 0.0;  ///< 0 when the window is empty
  double baseline = 0.0;
  double score = 0.0;  ///< CUSUM statistic
  bool alarmed = false;
};

struct MonitorSummary {
  DecisionLogStats log;
  RefresherStats refresh;
  size_t num_clusters = 0;
  size_t num_alarmed = 0;
  std::vector<ClusterMonitorState> clusters;

  /// Single JSON object (counters + per-cluster array).
  std::string ToJson() const;
};

class FairnessMonitor {
 public:
  /// Subscribes a monitor to `engine`'s decision stream. Requires an
  /// installed snapshot with baseline losses (has_baseline_losses());
  /// claims the engine's (set-once) observer slot. The engine must
  /// outlive the monitor.
  static Result<std::unique_ptr<FairnessMonitor>> Attach(
      serve::FalccEngine* engine, MonitorOptions options = {});

  /// Sharded variant: one monitor watches the whole fleet. Decisions fan
  /// in from every shard via ShardedEngine::SetDecisionObserver (the
  /// DecisionLog ring is multi-writer safe), and refreshes hot-swap
  /// through the fleet's snapshot store, so every shard serves the
  /// refreshed snapshot on its next flush. Same preconditions and
  /// set-once observer discipline as the single-engine overload.
  static Result<std::unique_ptr<FairnessMonitor>> Attach(
      serve::ShardedEngine* engine, MonitorOptions options = {});

  /// Reports ground truth for decision `id` (ids are assigned in
  /// append order; see DecisionLog). Thread-safe, wait-free. Returns
  /// false if the decision already aged out of the log.
  bool AddFeedback(uint64_t id, int truth_label);

  /// Drains labeled decisions into the windows, steps the drift
  /// detector for every cluster that received samples, and (with
  /// auto_refresh) rebuilds alarmed clusters. Single-threaded: at most
  /// one concurrent caller.
  Result<MonitorPollResult> Poll();

  const DecisionLog& log() const { return *log_; }
  const WindowStats& windows() const { return windows_; }
  const DriftDetector& detector() const { return detector_; }
  RefresherStats refresher_stats() const { return refresher_.Stats(); }

  MonitorSummary Summary() const;

 private:
  FairnessMonitor(serve::FalccEngine* engine, MonitorOptions options,
                  std::shared_ptr<DecisionLog> log,
                  WindowStatsOptions window_options,
                  std::vector<double> baselines);

  serve::FalccEngine* engine_;
  MonitorOptions options_;
  std::shared_ptr<DecisionLog> log_;  // shared with the engine's observer slot
  WindowStats windows_;
  DriftDetector detector_;
  Refresher refresher_;
};

}  // namespace falcc::monitor

#endif  // FALCC_MONITOR_MONITOR_H_
