#include "monitor/drift_detector.h"

#include <algorithm>
#include <cmath>

namespace falcc::monitor {

DriftDetector::DriftDetector(DriftDetectorOptions options,
                             std::vector<double> baselines)
    : options_(options) {
  FALCC_CHECK(!baselines.empty(), "DriftDetector: no baselines");
  FALCC_CHECK(options_.threshold > 0.0,
              "DriftDetector: threshold must be positive");
  FALCC_CHECK(options_.slack >= 0.0, "DriftDetector: negative slack");
  states_.resize(baselines.size());
  for (size_t c = 0; c < baselines.size(); ++c) {
    FALCC_CHECK(std::isfinite(baselines[c]),
                "DriftDetector: non-finite baseline");
    states_[c].baseline = baselines[c];
  }
}

bool DriftDetector::Update(size_t cluster, double windowed_loss,
                           size_t window_count) {
  FALCC_CHECK(cluster < states_.size(), "DriftDetector::Update: range");
  FALCC_CHECK(std::isfinite(windowed_loss),
              "DriftDetector::Update: non-finite loss");
  if (window_count < options_.min_samples) return false;
  ClusterDriftState& s = states_[cluster];
  ++s.updates;
  s.score = std::max(
      0.0, s.score + (windowed_loss - s.baseline - options_.slack));
  if (!s.alarmed && s.score >= options_.threshold) {
    s.alarmed = true;
    return true;
  }
  return false;
}

bool DriftDetector::Alarmed(size_t cluster) const {
  FALCC_CHECK(cluster < states_.size(), "DriftDetector::Alarmed: range");
  return states_[cluster].alarmed;
}

std::vector<size_t> DriftDetector::AlarmedClusters() const {
  std::vector<size_t> alarmed;
  for (size_t c = 0; c < states_.size(); ++c) {
    if (states_[c].alarmed) alarmed.push_back(c);
  }
  return alarmed;
}

void DriftDetector::Reset(size_t cluster, double new_baseline) {
  FALCC_CHECK(cluster < states_.size(), "DriftDetector::Reset: range");
  FALCC_CHECK(std::isfinite(new_baseline),
              "DriftDetector::Reset: non-finite baseline");
  ClusterDriftState& s = states_[cluster];
  s.baseline = new_baseline;
  s.score = 0.0;
  s.alarmed = false;
}

const ClusterDriftState& DriftDetector::State(size_t cluster) const {
  FALCC_CHECK(cluster < states_.size(), "DriftDetector::State: range");
  return states_[cluster];
}

}  // namespace falcc::monitor
