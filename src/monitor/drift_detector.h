// Per-cluster CUSUM drift detection on the windowed combined loss.
//
// The offline phase freezes each cluster's model combination because it
// minimized L̂ on the validation split; that loss is stored in the
// snapshot as the cluster's baseline. Online, the detector accumulates
// the one-sided CUSUM statistic
//
//   S_c ← max(0, S_c + (L̂_window(c) − baseline_c − slack))
//
// one step per monitor poll in which cluster c received new labeled
// samples. Sustained excess loss beyond the slack dead-zone drives S_c
// up linearly; sampling noise around the baseline decays back to 0. An
// alarm latches when S_c crosses `threshold` (and the window holds at
// least `min_samples` samples, so a handful of early mistakes cannot
// trip it) and stays latched until Reset — the refresher resets with
// the post-refresh loss as the new baseline.

#ifndef FALCC_MONITOR_DRIFT_DETECTOR_H_
#define FALCC_MONITOR_DRIFT_DETECTOR_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace falcc::monitor {

struct DriftDetectorOptions {
  /// Alarm when the CUSUM statistic reaches this value. With slack s and
  /// a per-poll excess e, detection takes ~threshold / (e − s) polls.
  double threshold = 1.0;
  /// Dead zone: loss excess below this is treated as noise.
  double slack = 0.05;
  /// Minimum window samples before a cluster's updates count.
  size_t min_samples = 100;
};

/// Detector state of one cluster (diagnostics / summaries).
struct ClusterDriftState {
  double baseline = 0.0;
  double score = 0.0;     ///< current CUSUM statistic S_c
  uint64_t updates = 0;   ///< accepted CUSUM steps
  bool alarmed = false;   ///< latched until Reset
};

class DriftDetector {
 public:
  /// One baseline per cluster (the snapshot's stored offline L̂).
  DriftDetector(DriftDetectorOptions options, std::vector<double> baselines);

  size_t num_clusters() const { return states_.size(); }

  /// One CUSUM step. Returns true if this step latched a new alarm.
  /// Steps with window_count < min_samples are ignored.
  bool Update(size_t cluster, double windowed_loss, size_t window_count);

  bool Alarmed(size_t cluster) const;
  /// Clusters currently latched, ascending.
  std::vector<size_t> AlarmedClusters() const;

  /// Clears the alarm and score and installs a new reference level.
  void Reset(size_t cluster, double new_baseline);

  const ClusterDriftState& State(size_t cluster) const;
  const DriftDetectorOptions& options() const { return options_; }

 private:
  DriftDetectorOptions options_;
  std::vector<ClusterDriftState> states_;
};

}  // namespace falcc::monitor

#endif  // FALCC_MONITOR_DRIFT_DETECTOR_H_
