// Sliding-window estimators of the per-cluster serving loss.
//
// For every cluster the monitor keeps the last W labeled decisions
// (ground truth, prediction, sensitive group, and the raw feature
// vector, which the refresher needs to re-run assessment). Alongside
// the ring, per-(group, truth, prediction) counts are maintained
// incrementally — O(1) per add/evict — and the windowed L̂
// (λ·inaccuracy + (1−λ)·bias, Eq. 2) is computed from those counts
// with arithmetic that mirrors fairness/metrics.cc exactly: for the
// group-fairness metrics the counts determine the same group rates in
// the same summation order, so the windowed loss is bit-identical to
// re-running CombinedLoss over the window's samples.
//
// Single-threaded by design: only the monitor's Poll loop touches it
// (the cross-thread handoff happens in DecisionLog).

#ifndef FALCC_MONITOR_WINDOW_STATS_H_
#define FALCC_MONITOR_WINDOW_STATS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/assessment.h"

namespace falcc::monitor {

struct WindowStatsOptions {
  size_t window = 512;  ///< W: labeled samples retained per cluster
  size_t num_clusters = 0;
  size_t num_groups = 0;
  size_t num_features = 0;
  /// Assessment parameters the loss is measured under — must match the
  /// snapshot's, or the drift comparison against its baselines is
  /// meaningless.
  double lambda = 0.5;
  FairnessMetric metric = FairnessMetric::kDemographicParity;
  AssessmentMode mode = AssessmentMode::kGroupFairness;
};

/// Windowed Eq. 2 breakdown of one cluster.
struct WindowLoss {
  double inaccuracy = 0.0;
  double bias = 0.0;
  double combined = 0.0;
  size_t count = 0;  ///< samples in the window
};

/// One cluster's window contents, oldest to newest — the refresher's
/// working set. `features` is row-major with num_features columns.
struct ClusterWindow {
  std::vector<double> features;
  std::vector<int> labels;  ///< ground truth
  std::vector<int> predictions;
  std::vector<size_t> groups;
};

class WindowStats {
 public:
  explicit WindowStats(WindowStatsOptions options);

  /// Appends one labeled decision to `cluster`'s window, evicting the
  /// oldest entry when full. O(1) count updates + one feature copy.
  void Add(size_t cluster, size_t group, int truth, int predicted,
           std::span<const double> features);

  /// Current window size of `cluster`.
  size_t Count(size_t cluster) const;
  /// Total samples ever added to `cluster` (not reset by eviction).
  uint64_t Seen(size_t cluster) const;
  /// Window count of (group, truth, predicted) in `cluster`.
  uint64_t GroupCount(size_t cluster, size_t group, int truth,
                      int predicted) const;

  /// Windowed L̂ of `cluster`; InvalidArgument on an empty window.
  Result<WindowLoss> Loss(size_t cluster) const;

  /// Copies out the window contents (oldest → newest).
  ClusterWindow Window(size_t cluster) const;

  /// Empties `cluster`'s window (after a refresh: the retained
  /// predictions came from the replaced combination). Seen() keeps
  /// counting.
  void Clear(size_t cluster);

  const WindowStatsOptions& options() const { return options_; }

 private:
  struct Ring {
    std::vector<double> features;  // window * num_features, row-major
    std::vector<int> labels;
    std::vector<int> predictions;
    std::vector<size_t> groups;
    std::vector<uint64_t> counts;  // num_groups * 4: ((g * 2 + y) * 2 + z)
    size_t size = 0;
    size_t head = 0;  // next write position
    uint64_t seen = 0;
  };

  static size_t CountIndex(size_t group, int truth, int predicted) {
    return (group * 2 + static_cast<size_t>(truth)) * 2 +
           static_cast<size_t>(predicted);
  }

  WindowStatsOptions options_;
  std::vector<Ring> rings_;
};

}  // namespace falcc::monitor

#endif  // FALCC_MONITOR_WINDOW_STATS_H_
