// Per-cluster ensemble refresh: the monitor's response to a drift alarm.
//
// A refresh re-runs the offline phase's assessment step (§3.6) for ONE
// cluster over the cluster's windowed stream samples: the existing pool
// is re-evaluated — no model is retrained — and the combination
// minimizing the windowed L̂ replaces the serving one. Because the
// serving combination is itself in the candidate set, the rebuilt loss
// can never exceed the serving loss on the same window; a refresh is
// installed only on STRICT improvement, so a no-better-alternative
// alarm is rejected (and counted) instead of churning snapshots. The
// install goes through FalccModel::CloneWithRefreshes + the engine's
// lock-free hot-swap, which leaves every other cluster's decisions
// bit-identical.

#ifndef FALCC_MONITOR_REFRESHER_H_
#define FALCC_MONITOR_REFRESHER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "monitor/window_stats.h"
#include "serve/engine.h"

namespace falcc::replicate {
class DeltaPublisher;
class SocketPublisher;
}  // namespace falcc::replicate

namespace falcc::monitor {

struct RefresherOptions {
  /// When non-empty, every installed refresh also publishes a delta
  /// artifact into this directory through a replicate::DeltaPublisher:
  /// `<seq>-delta-c<cluster>-<basehash>.falcc`, where <seq> is a
  /// zero-padded monotonic sequence so directory order equals apply
  /// order (plain version numbers sort wrong past 9), written via
  /// temp+rename so a replica never reads a partial artifact. The delta
  /// is the refreshed cluster's combination section plus a manifest
  /// referencing the pre-refresh snapshot by content hash; replicas
  /// serving that base apply it via SnapshotSource::ApplyDelta without
  /// revalidating (or recompiling) any untouched section. Publication
  /// failures never block the local install.
  std::string delta_dir;
  /// Checkpoint cadence: after this many published deltas the publisher
  /// also writes a full-snapshot checkpoint and garbage-collects
  /// superseded artifacts, so late-joining replicas bootstrap without
  /// replaying history. 0 = never checkpoint.
  size_t checkpoint_every = 8;
  /// When non-empty (requires delta_dir), artifacts are published
  /// through a replicate::SocketPublisher listening on this endpoint
  /// (`tcp://host:port` or `unix://path`): the directory stays the
  /// durable store and catch-up source, and every write is also pushed
  /// to connected subscribers, cutting propagation lag below any poll
  /// interval. Like the directory publisher, the listener is opened
  /// lazily on the first install — subscribers reconnect with backoff,
  /// so starting them early is fine.
  std::string feed_listen;
};

/// Result of one refresh attempt.
struct RefreshOutcome {
  size_t cluster = 0;
  bool installed = false;    ///< strict improvement found and hot-swapped
  double current_loss = 0.0; ///< windowed L̂ of the serving combination
  double best_loss = 0.0;    ///< windowed L̂ of the best candidate
  double seconds = 0.0;      ///< wall clock of the rebuild (+install)
  std::string delta_path;    ///< published delta artifact, if any
  size_t delta_bytes = 0;    ///< size of the delta artifact
};

struct RefresherStats {
  uint64_t attempts = 0;
  uint64_t installed = 0;
  uint64_t rejected = 0;  ///< no candidate strictly beat the serving one
  uint64_t delta_published = 0;
  uint64_t delta_failures = 0;  ///< non-fatal: install succeeded anyway
  uint64_t checkpoints_published = 0;  ///< cadence checkpoints written
};

class Refresher {
 public:
  /// The engine whose snapshot is read and (on improvement) replaced.
  /// Must outlive the refresher.
  explicit Refresher(serve::FalccEngine* engine,
                     RefresherOptions options = {});
  ~Refresher();

  /// Rebuilds `cluster`'s combination over `window` (its labeled stream
  /// samples, see WindowStats::Window) and installs the result if it
  /// strictly improves the windowed L̂. Pure pool re-assessment:
  /// PredictMatrix + EnumerateCombinations + ReassessRegion, evaluated
  /// under the snapshot's stored assessment parameters.
  Result<RefreshOutcome> RefreshCluster(const ClusterWindow& window,
                                        size_t cluster);

  RefresherStats Stats() const;

 private:
  /// Serializes and writes the delta artifact for an installed refresh.
  /// Best-effort: errors are counted, never propagated.
  void PublishDelta(const FalccModel& next, size_t cluster,
                    uint64_t base_hash, RefreshOutcome* outcome);

  serve::FalccEngine* engine_;
  RefresherOptions options_;
  /// Lazily opened on the first publish (creating the directory then);
  /// sequencing, temp+rename writes, checkpoint cadence, and GC all
  /// live in the publisher. Exactly one of the two is ever open:
  /// socket_publisher_ (which wraps its own directory publisher) when
  /// feed_listen is set, publisher_ otherwise.
  std::unique_ptr<replicate::DeltaPublisher> publisher_;
  std::unique_ptr<replicate::SocketPublisher> socket_publisher_;
  std::atomic<uint64_t> attempts_{0};
  std::atomic<uint64_t> installed_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> delta_published_{0};
  std::atomic<uint64_t> delta_failures_{0};
  std::atomic<uint64_t> checkpoints_published_{0};
};

}  // namespace falcc::monitor

#endif  // FALCC_MONITOR_REFRESHER_H_
