#include "monitor/window_stats.h"

#include <algorithm>
#include <cmath>

namespace falcc::monitor {

WindowStats::WindowStats(WindowStatsOptions options) : options_(options) {
  FALCC_CHECK(options_.window > 0, "WindowStats: window must be positive");
  FALCC_CHECK(options_.num_clusters > 0, "WindowStats: no clusters");
  FALCC_CHECK(options_.num_groups > 0, "WindowStats: no groups");
  FALCC_CHECK(options_.num_features > 0, "WindowStats: no features");
  rings_.resize(options_.num_clusters);
  for (Ring& ring : rings_) {
    ring.features.resize(options_.window * options_.num_features);
    ring.labels.resize(options_.window);
    ring.predictions.resize(options_.window);
    ring.groups.resize(options_.window);
    ring.counts.assign(options_.num_groups * 4, 0);
  }
}

void WindowStats::Add(size_t cluster, size_t group, int truth, int predicted,
                      std::span<const double> features) {
  FALCC_CHECK(cluster < rings_.size(), "WindowStats::Add: cluster range");
  FALCC_CHECK(group < options_.num_groups, "WindowStats::Add: group range");
  FALCC_CHECK(truth == 0 || truth == 1, "WindowStats::Add: binary truth");
  FALCC_CHECK(predicted == 0 || predicted == 1,
              "WindowStats::Add: binary prediction");
  FALCC_CHECK(features.size() == options_.num_features,
              "WindowStats::Add: feature width mismatch");
  Ring& ring = rings_[cluster];
  const size_t pos = ring.head;
  if (ring.size == options_.window) {
    // Evict the entry being overwritten from the counts.
    --ring.counts[CountIndex(ring.groups[pos], ring.labels[pos],
                             ring.predictions[pos])];
  } else {
    ++ring.size;
  }
  ring.labels[pos] = truth;
  ring.predictions[pos] = predicted;
  ring.groups[pos] = group;
  std::copy(features.begin(), features.end(),
            ring.features.begin() + pos * options_.num_features);
  ++ring.counts[CountIndex(group, truth, predicted)];
  ring.head = (pos + 1) % options_.window;
  ++ring.seen;
}

size_t WindowStats::Count(size_t cluster) const {
  FALCC_CHECK(cluster < rings_.size(), "WindowStats::Count: cluster range");
  return rings_[cluster].size;
}

uint64_t WindowStats::Seen(size_t cluster) const {
  FALCC_CHECK(cluster < rings_.size(), "WindowStats::Seen: cluster range");
  return rings_[cluster].seen;
}

uint64_t WindowStats::GroupCount(size_t cluster, size_t group, int truth,
                                 int predicted) const {
  FALCC_CHECK(cluster < rings_.size(),
              "WindowStats::GroupCount: cluster range");
  FALCC_CHECK(group < options_.num_groups,
              "WindowStats::GroupCount: group range");
  return rings_[cluster].counts[CountIndex(group, truth, predicted)];
}

namespace {

/// MeanRateDeviation of fairness/metrics.cc computed from (group, truth,
/// prediction) counts; `use_truth` < 0 means "all samples", otherwise
/// restrict to samples with that truth label. All intermediate values
/// are exact small integers, so the result matches the per-sample
/// implementation bit for bit.
double CountsRateDeviation(std::span<const uint64_t> counts, size_t num_groups,
                           int use_truth) {
  std::vector<double> group_pos(num_groups, 0.0);
  std::vector<double> group_count(num_groups, 0.0);
  double pos = 0.0, count = 0.0;
  for (size_t g = 0; g < num_groups; ++g) {
    for (int y = 0; y <= 1; ++y) {
      if (use_truth >= 0 && y != use_truth) continue;
      for (int z = 0; z <= 1; ++z) {
        const double c =
            static_cast<double>(counts[(g * 2 + static_cast<size_t>(y)) * 2 +
                                       static_cast<size_t>(z)]);
        count += c;
        group_count[g] += c;
        if (z == 1) {
          pos += c;
          group_pos[g] += c;
        }
      }
    }
  }
  if (count <= 0.0) return 0.0;
  const double overall = pos / count;
  double dev = 0.0;
  for (size_t g = 0; g < num_groups; ++g) {
    if (group_count[g] <= 0.0) continue;
    dev += std::fabs(group_pos[g] / group_count[g] - overall);
  }
  return dev / static_cast<double>(num_groups);
}

double CountsTreatmentEquality(std::span<const uint64_t> counts,
                               size_t num_groups) {
  std::vector<double> fp(num_groups, 0.0), fn(num_groups, 0.0);
  double fp_total = 0.0, fn_total = 0.0;
  for (size_t g = 0; g < num_groups; ++g) {
    fp[g] = static_cast<double>(counts[(g * 2 + 0) * 2 + 1]);  // y=0, z=1
    fn[g] = static_cast<double>(counts[(g * 2 + 1) * 2 + 0]);  // y=1, z=0
    fp_total += fp[g];
    fn_total += fn[g];
  }
  if (fp_total + fn_total <= 0.0) return 0.0;
  const double overall = fp_total / (fp_total + fn_total);
  double dev = 0.0;
  for (size_t g = 0; g < num_groups; ++g) {
    const double denom = fp[g] + fn[g];
    if (denom <= 0.0) continue;
    dev += std::fabs(fp[g] / denom - overall);
  }
  return dev / static_cast<double>(num_groups);
}

}  // namespace

Result<WindowLoss> WindowStats::Loss(size_t cluster) const {
  if (cluster >= rings_.size()) {
    return Status::InvalidArgument("WindowStats::Loss: cluster out of range");
  }
  const Ring& ring = rings_[cluster];
  if (ring.size == 0) {
    return Status::InvalidArgument("WindowStats::Loss: empty window");
  }
  const double n = static_cast<double>(ring.size);
  uint64_t wrong = 0, positive = 0;
  for (size_t g = 0; g < options_.num_groups; ++g) {
    wrong += ring.counts[CountIndex(g, 0, 1)] + ring.counts[CountIndex(g, 1, 0)];
    positive +=
        ring.counts[CountIndex(g, 0, 1)] + ring.counts[CountIndex(g, 1, 1)];
  }

  WindowLoss loss;
  loss.count = ring.size;
  loss.inaccuracy = static_cast<double>(wrong) / n;

  if (options_.mode == AssessmentMode::kConsistency) {
    // 1 − consistency with the window as its own neighborhood (the
    // cluster-as-kNN approximation of §3.6), in closed form: a sample's
    // term depends only on its own prediction.
    const double n1 = static_cast<double>(positive);
    const double n0 = n - n1;
    double inconsistency = 0.0;
    if (ring.size > 1) {
      const double term1 = std::fabs(1.0 - (n1 - 1.0) / (n - 1.0));
      const double term0 = n1 / (n - 1.0);
      inconsistency = (n1 * term1 + n0 * term0) / n;
    }
    loss.bias = inconsistency;
  } else {
    switch (options_.metric) {
      case FairnessMetric::kDemographicParity:
        loss.bias = CountsRateDeviation(ring.counts, options_.num_groups, -1);
        break;
      case FairnessMetric::kEqualizedOdds:
        loss.bias = (CountsRateDeviation(ring.counts, options_.num_groups, 0) +
                     CountsRateDeviation(ring.counts, options_.num_groups, 1)) /
                    2.0;
        break;
      case FairnessMetric::kEqualOpportunity:
        loss.bias = CountsRateDeviation(ring.counts, options_.num_groups, 1);
        break;
      case FairnessMetric::kTreatmentEquality:
        loss.bias = CountsTreatmentEquality(ring.counts, options_.num_groups);
        break;
    }
  }
  loss.combined =
      options_.lambda * loss.inaccuracy + (1.0 - options_.lambda) * loss.bias;
  return loss;
}

ClusterWindow WindowStats::Window(size_t cluster) const {
  FALCC_CHECK(cluster < rings_.size(), "WindowStats::Window: cluster range");
  const Ring& ring = rings_[cluster];
  ClusterWindow window;
  window.features.reserve(ring.size * options_.num_features);
  window.labels.reserve(ring.size);
  window.predictions.reserve(ring.size);
  window.groups.reserve(ring.size);
  // Oldest entry: `head` when full (the next overwrite target), else 0.
  const size_t start =
      ring.size == options_.window ? ring.head : 0;
  for (size_t i = 0; i < ring.size; ++i) {
    const size_t pos = (start + i) % options_.window;
    const auto row = ring.features.begin() + pos * options_.num_features;
    window.features.insert(window.features.end(), row,
                           row + options_.num_features);
    window.labels.push_back(ring.labels[pos]);
    window.predictions.push_back(ring.predictions[pos]);
    window.groups.push_back(ring.groups[pos]);
  }
  return window;
}

void WindowStats::Clear(size_t cluster) {
  FALCC_CHECK(cluster < rings_.size(), "WindowStats::Clear: cluster range");
  Ring& ring = rings_[cluster];
  ring.size = 0;
  ring.head = 0;
  ring.counts.assign(options_.num_groups * 4, 0);
}

}  // namespace falcc::monitor
