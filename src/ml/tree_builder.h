// Presorted column-cache split engine for CART training.
//
// Replaces the seed trainer's per-candidate-feature, per-node sort with a
// single presort per dataset (data/feature_columns.h): every node scans
// its rows in each feature's presorted order via contiguous per-node
// segments, accumulating weighted prefix sums to score thresholds, and
// partitions the presorted segments *stably* on the chosen split — so the
// value order survives recursion and no sort ever happens below the root.
//
// Determinism contract (DESIGN.md §8): the builder reproduces the seed
// trainer bit-for-bit — the same candidate-feature RNG stream, the same
// strictly-positive-gain rule with first-candidate-wins ties, the same
// midpoint thresholds, and the same std::partition bookkeeping order for
// node statistics — so models, Save() bytes, and predictions are
// identical to the pre-engine trainer at any thread count
// (tests/train_engine_golden_test.cc pins this against checked-in seed
// models).

#ifndef FALCC_ML_TREE_BUILDER_H_
#define FALCC_ML_TREE_BUILDER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "data/feature_columns.h"
#include "ml/decision_tree.h"

namespace falcc {

/// Reusable tree-building engine. One instance per thread; scratch
/// buffers (presorted working lists, masks, partition scratch) persist
/// across Build calls so repeated fits on the same dataset — AdaBoost
/// rounds, grid-search refits — skip reallocation.
class TreeBuilder {
 public:
  TreeBuilder() = default;

  /// Fits one tree over `columns` with per-row `weights` (never empty;
  /// one weight per dataset row) and writes the flat node array and depth
  /// of the result. Returns InvalidArgument for an empty dataset.
  Status Build(const FeatureColumns& columns, std::span<const double> weights,
               const DecisionTreeOptions& options,
               std::vector<TreeNode>* nodes, size_t* max_depth);

 private:
  int BuildNode(size_t begin, size_t end, size_t depth);

  // Per-Build state (set by Build, read by BuildNode).
  const FeatureColumns* columns_ = nullptr;
  const Dataset* data_ = nullptr;
  std::span<const double> weights_;
  const DecisionTreeOptions* options_ = nullptr;
  std::vector<TreeNode>* nodes_ = nullptr;
  size_t depth_ = 0;
  uint64_t rng_state_ = 0;
  size_t num_rows_ = 0;
  size_t num_features_ = 0;

  // Working copies of the presorted column lists, feature-major. Each
  // node owns segment [begin, end) of every feature's list; the segments
  // are partitioned stably in place as recursion descends.
  std::vector<uint32_t> lists_;
  std::vector<double> list_values_;
  // Seed-order bookkeeping: same contents and std::partition evolution as
  // the seed trainer's indices_, so node statistics accumulate weights in
  // the seed's exact floating-point order.
  std::vector<size_t> indices_;
  std::vector<uint8_t> goes_left_;  // per row, valid for the node being split
  std::vector<uint32_t> scratch_rows_;
  std::vector<double> scratch_values_;
  std::vector<size_t> candidates_;
};

}  // namespace falcc

#endif  // FALCC_ML_TREE_BUILDER_H_
