// AdaBoost (discrete SAMME) over decision-tree base estimators.
//
// The default trainer of FALCC's diverse-model-training component
// (paper §3.3): boosting is the paper's preferred way to induce a diverse
// pool of classifiers, with the grid search of ml/grid_search.h sweeping
// the number of estimators, tree depth, and split criterion.

#ifndef FALCC_ML_ADABOOST_H_
#define FALCC_ML_ADABOOST_H_

#include "ml/decision_tree.h"

namespace falcc {

/// AdaBoost hyperparameters. Paper grid: num_estimators ∈ {5, 20},
/// tree depth ∈ {1, 7}, criterion ∈ {gini, entropy}.
struct AdaBoostOptions {
  size_t num_estimators = 20;
  DecisionTreeOptions base;
  double learning_rate = 1.0;
};

/// Boosted ensemble of weighted decision trees (binary SAMME).
class AdaBoost final : public Classifier {
 public:
  explicit AdaBoost(const AdaBoostOptions& options = {})
      : options_(options) {}

  Status Fit(const Dataset& data,
             std::span<const double> sample_weights) override;
  using Classifier::Fit;

  /// Fits against a prebuilt presorted column cache (data/
  /// feature_columns.h): the per-dataset sort is paid once outside and
  /// one TreeBuilder's scratch is reused across all boosting rounds.
  /// Produces exactly the same ensemble as Fit(columns.data(), weights).
  Status Fit(const FeatureColumns& columns,
             std::span<const double> sample_weights);
  Status Fit(const FeatureColumns& columns) { return Fit(columns, {}); }

  double PredictProba(std::span<const double> features) const override;
  void PredictProbaBatch(const Dataset& data, std::span<const size_t> rows,
                         std::span<double> out) const override;
  Status ValidateForWidth(size_t num_features) const override;
  std::unique_ptr<Classifier> Clone() const override;
  std::string Name() const override;
  std::string TypeTag() const override { return "adaboost"; }
  Status SerializePayload(std::ostream* out) const override;
  static Result<AdaBoost> DeserializePayload(std::istream* in);
  bool LowerToFlat(FlatEnsembleBuilder* builder) const override;

  /// Number of estimators actually fitted (early stop on perfect fit).
  size_t num_fitted() const { return trees_.size(); }

  /// Assembles a fitted ensemble from externally built parts. Used by the
  /// frozen seed trainer (ml/reference_trainer.h) and by tests.
  static AdaBoost FromParts(const AdaBoostOptions& options,
                            std::vector<DecisionTree> trees,
                            std::vector<double> alphas);

 private:
  AdaBoostOptions options_;
  std::vector<DecisionTree> trees_;
  std::vector<double> alphas_;
};

}  // namespace falcc

#endif  // FALCC_ML_ADABOOST_H_
