// AdaBoost (discrete SAMME) over decision-tree base estimators.
//
// The default trainer of FALCC's diverse-model-training component
// (paper §3.3): boosting is the paper's preferred way to induce a diverse
// pool of classifiers, with the grid search of ml/grid_search.h sweeping
// the number of estimators, tree depth, and split criterion.

#ifndef FALCC_ML_ADABOOST_H_
#define FALCC_ML_ADABOOST_H_

#include "ml/decision_tree.h"

namespace falcc {

/// AdaBoost hyperparameters. Paper grid: num_estimators ∈ {5, 20},
/// tree depth ∈ {1, 7}, criterion ∈ {gini, entropy}.
struct AdaBoostOptions {
  size_t num_estimators = 20;
  DecisionTreeOptions base;
  double learning_rate = 1.0;
};

/// Boosted ensemble of weighted decision trees (binary SAMME).
class AdaBoost final : public Classifier {
 public:
  explicit AdaBoost(const AdaBoostOptions& options = {})
      : options_(options) {}

  Status Fit(const Dataset& data,
             std::span<const double> sample_weights) override;
  using Classifier::Fit;
  double PredictProba(std::span<const double> features) const override;
  std::unique_ptr<Classifier> Clone() const override;
  std::string Name() const override;
  std::string TypeTag() const override { return "adaboost"; }
  Status SerializePayload(std::ostream* out) const override;
  static Result<AdaBoost> DeserializePayload(std::istream* in);

  /// Number of estimators actually fitted (early stop on perfect fit).
  size_t num_fitted() const { return trees_.size(); }

 private:
  AdaBoostOptions options_;
  std::vector<DecisionTree> trees_;
  std::vector<double> alphas_;
};

}  // namespace falcc

#endif  // FALCC_ML_ADABOOST_H_
