#include "ml/naive_bayes.h"

#include <cmath>

#include "util/math.h"
#include "util/serialize.h"

namespace falcc {

Status GaussianNaiveBayes::Fit(const Dataset& data,
                               std::span<const double> sample_weights) {
  if (data.num_rows() == 0) {
    return Status::InvalidArgument("GaussianNB: empty training data");
  }
  FALCC_RETURN_IF_ERROR(ValidateWeights(data, sample_weights));

  const size_t n = data.num_rows();
  const size_t d = data.num_features();
  std::vector<double> w(n, 1.0);
  if (!sample_weights.empty()) w.assign(sample_weights.begin(),
                                        sample_weights.end());

  double class_weight[2] = {0.0, 0.0};
  for (int c = 0; c < 2; ++c) {
    means_[c].assign(d, 0.0);
    vars_[c].assign(d, 0.0);
  }
  for (size_t i = 0; i < n; ++i) {
    const int c = data.Label(i);
    class_weight[c] += w[i];
    const auto row = data.Row(i);
    for (size_t j = 0; j < d; ++j) means_[c][j] += w[i] * row[j];
  }
  const double total = class_weight[0] + class_weight[1];
  // Laplace-style prior smoothing so an absent class never has -inf prior.
  log_prior_[0] = std::log((class_weight[0] + 1.0) / (total + 2.0));
  log_prior_[1] = std::log((class_weight[1] + 1.0) / (total + 2.0));

  for (int c = 0; c < 2; ++c) {
    if (class_weight[c] <= 0.0) {
      // Class absent: neutral likelihood (prior dominates).
      means_[c].assign(d, 0.0);
      vars_[c].assign(d, 1.0);
      continue;
    }
    for (size_t j = 0; j < d; ++j) means_[c][j] /= class_weight[c];
  }
  for (size_t i = 0; i < n; ++i) {
    const int c = data.Label(i);
    if (class_weight[c] <= 0.0) continue;
    const auto row = data.Row(i);
    for (size_t j = 0; j < d; ++j) {
      const double diff = row[j] - means_[c][j];
      vars_[c][j] += w[i] * diff * diff;
    }
  }
  constexpr double kVarSmoothing = 1e-9;
  for (int c = 0; c < 2; ++c) {
    if (class_weight[c] <= 0.0) continue;
    for (size_t j = 0; j < d; ++j) {
      vars_[c][j] = vars_[c][j] / class_weight[c] + kVarSmoothing;
    }
  }
  return Status::OK();
}

double GaussianNaiveBayes::PredictProba(
    std::span<const double> features) const {
  FALCC_CHECK(!means_[0].empty(), "GaussianNB::PredictProba before Fit");
  FALCC_CHECK(features.size() == means_[0].size(),
              "GaussianNB: feature width mismatch");
  double log_like[2];
  for (int c = 0; c < 2; ++c) {
    double acc = log_prior_[c];
    for (size_t j = 0; j < features.size(); ++j) {
      const double diff = features[j] - means_[c][j];
      acc += -0.5 * std::log(2.0 * M_PI * vars_[c][j]) -
             diff * diff / (2.0 * vars_[c][j]);
    }
    log_like[c] = acc;
  }
  // P(1) = 1 / (1 + exp(ll0 - ll1)), computed stably.
  return Sigmoid(log_like[1] - log_like[0]);
}

std::unique_ptr<Classifier> GaussianNaiveBayes::Clone() const {
  return std::make_unique<GaussianNaiveBayes>(*this);
}

Status GaussianNaiveBayes::SerializePayload(std::ostream* out) const {
  io::PrepareStream(out);
  *out << log_prior_[0] << ' ' << log_prior_[1] << '\n';
  for (int c = 0; c < 2; ++c) {
    io::WriteVector(out, means_[c]);
    io::WriteVector(out, vars_[c]);
  }
  if (!*out) return Status::IOError("GaussianNB serialization failed");
  return Status::OK();
}

Result<GaussianNaiveBayes> GaussianNaiveBayes::DeserializePayload(
    std::istream* in) {
  GaussianNaiveBayes model;
  FALCC_RETURN_IF_ERROR(io::Read(in, &model.log_prior_[0]));
  FALCC_RETURN_IF_ERROR(io::Read(in, &model.log_prior_[1]));
  for (int c = 0; c < 2; ++c) {
    FALCC_RETURN_IF_ERROR(io::ReadVector(in, &model.means_[c]));
    FALCC_RETURN_IF_ERROR(io::ReadVector(in, &model.vars_[c]));
    if (model.vars_[c].size() != model.means_[c].size()) {
      return Status::InvalidArgument("GaussianNB: width mismatch");
    }
  }
  if (model.means_[0].size() != model.means_[1].size()) {
    return Status::InvalidArgument("GaussianNB: class width mismatch");
  }
  if (!std::isfinite(model.log_prior_[0]) ||
      !std::isfinite(model.log_prior_[1])) {
    return Status::InvalidArgument("GaussianNB: non-finite log prior");
  }
  for (int c = 0; c < 2; ++c) {
    for (size_t j = 0; j < model.means_[c].size(); ++j) {
      if (!std::isfinite(model.means_[c][j])) {
        return Status::InvalidArgument("GaussianNB: non-finite mean");
      }
      // Variances enter log() and divide likelihoods: anything that is not
      // strictly positive and finite produces NaN probabilities downstream.
      if (!std::isfinite(model.vars_[c][j]) || model.vars_[c][j] <= 0.0) {
        return Status::InvalidArgument("GaussianNB: non-positive variance");
      }
    }
  }
  return model;
}

Status GaussianNaiveBayes::ValidateForWidth(size_t num_features) const {
  if (means_[0].size() != num_features) {
    return Status::InvalidArgument(
        "GaussianNB: fitted for " + std::to_string(means_[0].size()) +
        " features but samples have " + std::to_string(num_features));
  }
  return Status::OK();
}

}  // namespace falcc
