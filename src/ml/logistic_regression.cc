#include "ml/logistic_regression.h"

#include <cmath>

#include "util/math.h"
#include "util/serialize.h"

namespace falcc {

Status LogisticRegression::Fit(const Dataset& data,
                               std::span<const double> sample_weights) {
  if (data.num_rows() == 0) {
    return Status::InvalidArgument("LogisticRegression: empty training data");
  }
  FALCC_RETURN_IF_ERROR(ValidateWeights(data, sample_weights));

  const size_t n = data.num_rows();
  const size_t d = data.num_features();

  // Standardize features for a scale-robust fixed step size.
  offsets_.assign(d, 0.0);
  scales_.assign(d, 1.0);
  for (size_t j = 0; j < d; ++j) {
    const std::vector<double> col = data.Column(j);
    offsets_[j] = Mean(col);
    const double sd = StdDev(col);
    scales_[j] = sd > 0.0 ? 1.0 / sd : 1.0;
  }

  std::vector<double> weights(n, 1.0);
  if (!sample_weights.empty()) {
    weights.assign(sample_weights.begin(), sample_weights.end());
  }
  double weight_sum = 0.0;
  for (double w : weights) weight_sum += w;

  // Pre-standardize the design matrix once.
  std::vector<double> x(n * d);
  for (size_t i = 0; i < n; ++i) {
    const auto row = data.Row(i);
    for (size_t j = 0; j < d; ++j) {
      x[i * d + j] = (row[j] - offsets_[j]) * scales_[j];
    }
  }

  weights_.assign(d, 0.0);
  bias_ = 0.0;
  std::vector<double> grad(d);
  double prev_loss = 1e300;

  for (size_t iter = 0; iter < options_.max_iterations; ++iter) {
    std::fill(grad.begin(), grad.end(), 0.0);
    double grad_b = 0.0;
    double loss = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double z = bias_;
      for (size_t j = 0; j < d; ++j) z += weights_[j] * x[i * d + j];
      const double p = Sigmoid(z);
      const double y = static_cast<double>(data.Label(i));
      const double err = (p - y) * weights[i] / weight_sum;
      for (size_t j = 0; j < d; ++j) grad[j] += err * x[i * d + j];
      grad_b += err;
      // Cross-entropy (clipped for numerical safety).
      const double pc = Clamp(p, 1e-12, 1.0 - 1e-12);
      loss -= weights[i] / weight_sum *
              (y * std::log(pc) + (1.0 - y) * std::log(1.0 - pc));
    }
    for (size_t j = 0; j < d; ++j) {
      grad[j] += options_.l2 * weights_[j];
      loss += 0.5 * options_.l2 * weights_[j] * weights_[j];
      weights_[j] -= options_.learning_rate * grad[j];
    }
    bias_ -= options_.learning_rate * grad_b;

    if (prev_loss - loss < options_.tolerance) break;
    prev_loss = loss;
  }
  return Status::OK();
}

double LogisticRegression::PredictProba(
    std::span<const double> features) const {
  FALCC_CHECK(!weights_.empty(), "LogisticRegression::PredictProba before Fit");
  FALCC_CHECK(features.size() == weights_.size(),
              "LogisticRegression: feature width mismatch");
  double z = bias_;
  for (size_t j = 0; j < weights_.size(); ++j) {
    z += weights_[j] * (features[j] - offsets_[j]) * scales_[j];
  }
  return Sigmoid(z);
}

std::unique_ptr<Classifier> LogisticRegression::Clone() const {
  return std::make_unique<LogisticRegression>(*this);
}

Status LogisticRegression::SerializePayload(std::ostream* out) const {
  io::PrepareStream(out);
  *out << bias_ << '\n';
  io::WriteVector(out, weights_);
  io::WriteVector(out, offsets_);
  io::WriteVector(out, scales_);
  if (!*out) {
    return Status::IOError("LogisticRegression serialization failed");
  }
  return Status::OK();
}

Result<LogisticRegression> LogisticRegression::DeserializePayload(
    std::istream* in) {
  LogisticRegression model;
  FALCC_RETURN_IF_ERROR(io::Read(in, &model.bias_));
  FALCC_RETURN_IF_ERROR(io::ReadVector(in, &model.weights_));
  FALCC_RETURN_IF_ERROR(io::ReadVector(in, &model.offsets_));
  FALCC_RETURN_IF_ERROR(io::ReadVector(in, &model.scales_));
  if (model.offsets_.size() != model.weights_.size() ||
      model.scales_.size() != model.weights_.size()) {
    return Status::InvalidArgument("LogisticRegression: width mismatch");
  }
  if (!std::isfinite(model.bias_)) {
    return Status::InvalidArgument("LogisticRegression: non-finite bias");
  }
  for (size_t j = 0; j < model.weights_.size(); ++j) {
    if (!std::isfinite(model.weights_[j]) || !std::isfinite(model.offsets_[j]) ||
        !std::isfinite(model.scales_[j])) {
      return Status::InvalidArgument(
          "LogisticRegression: non-finite parameters");
    }
  }
  return model;
}

Status LogisticRegression::ValidateForWidth(size_t num_features) const {
  if (weights_.size() != num_features) {
    return Status::InvalidArgument(
        "LogisticRegression: fitted for " + std::to_string(weights_.size()) +
        " features but samples have " + std::to_string(num_features));
  }
  return Status::OK();
}

}  // namespace falcc
