// Random Forest: bagged decision trees with per-split feature
// subsampling. The paper's alternative (bagging-based) trainer for
// diverse model pools (§3.3); the diversity experiment of Fig. 4 sweeps
// both AdaBoost and Random Forest hyperparameters.

#ifndef FALCC_ML_RANDOM_FOREST_H_
#define FALCC_ML_RANDOM_FOREST_H_

#include "ml/decision_tree.h"

namespace falcc {

/// Random Forest hyperparameters.
struct RandomForestOptions {
  size_t num_trees = 20;
  DecisionTreeOptions base;
  /// Features per split; 0 = floor(sqrt(num_features)).
  size_t max_features = 0;
  uint64_t seed = 1;
};

/// Bootstrap-aggregated decision trees; probability = mean tree vote.
class RandomForest final : public Classifier {
 public:
  explicit RandomForest(const RandomForestOptions& options = {})
      : options_(options) {}

  Status Fit(const Dataset& data,
             std::span<const double> sample_weights) override;
  using Classifier::Fit;

  /// Fits against a prebuilt presorted column cache (data/
  /// feature_columns.h): the per-dataset sort is paid once and shared by
  /// every bootstrap tree. Produces exactly the same forest as
  /// Fit(columns.data(), sample_weights).
  Status Fit(const FeatureColumns& columns,
             std::span<const double> sample_weights);
  Status Fit(const FeatureColumns& columns) { return Fit(columns, {}); }

  double PredictProba(std::span<const double> features) const override;
  void PredictProbaBatch(const Dataset& data, std::span<const size_t> rows,
                         std::span<double> out) const override;
  Status ValidateForWidth(size_t num_features) const override;
  std::unique_ptr<Classifier> Clone() const override;
  std::string Name() const override;
  std::string TypeTag() const override { return "random_forest"; }
  Status SerializePayload(std::ostream* out) const override;
  static Result<RandomForest> DeserializePayload(std::istream* in);
  bool LowerToFlat(FlatEnsembleBuilder* builder) const override;

  /// Assembles a fitted forest from externally built parts. Used by the
  /// frozen seed trainer (ml/reference_trainer.h) and by tests.
  static RandomForest FromParts(const RandomForestOptions& options,
                                std::vector<DecisionTree> trees);

 private:
  RandomForestOptions options_;
  std::vector<DecisionTree> trees_;
};

}  // namespace falcc

#endif  // FALCC_ML_RANDOM_FOREST_H_
