// CART-style decision tree for binary classification.
//
// The base estimator of the diverse-model-training component (paper §3.3,
// which boosts decision trees with AdaBoost) and of the Random Forest
// alternative. Supports weighted samples, gini/entropy split criteria,
// depth and leaf-size limits, and per-node random feature subsampling
// (used by Random Forest).

#ifndef FALCC_ML_DECISION_TREE_H_
#define FALCC_ML_DECISION_TREE_H_

#include <cstdint>

#include "ml/classifier.h"

namespace falcc {

/// Split quality criterion (the paper's grid searches over both).
enum class SplitCriterion { kGini, kEntropy };

/// Decision-tree hyperparameters.
struct DecisionTreeOptions {
  size_t max_depth = 7;
  size_t min_samples_split = 2;
  size_t min_samples_leaf = 1;
  SplitCriterion criterion = SplitCriterion::kGini;
  /// Features considered per split: 0 = all, otherwise a random subset of
  /// this size (Random Forest mode).
  size_t max_features = 0;
  uint64_t seed = 1;
};

/// Weighted CART decision tree.
class DecisionTree final : public Classifier {
 public:
  explicit DecisionTree(const DecisionTreeOptions& options = {})
      : options_(options) {}

  Status Fit(const Dataset& data,
             std::span<const double> sample_weights) override;
  using Classifier::Fit;
  double PredictProba(std::span<const double> features) const override;
  std::unique_ptr<Classifier> Clone() const override;
  std::string Name() const override;
  std::string TypeTag() const override { return "decision_tree"; }
  Status SerializePayload(std::ostream* out) const override;
  static Result<DecisionTree> DeserializePayload(std::istream* in);

  /// Number of nodes in the fitted tree (0 before Fit).
  size_t num_nodes() const { return nodes_.size(); }
  /// Depth of the fitted tree (0 = single leaf).
  size_t depth() const { return depth_; }

 private:
  struct Node {
    // Leaf iff feature < 0.
    int feature = -1;
    double threshold = 0.0;
    int left = -1, right = -1;
    double proba = 0.5;  // P(y=1) at this node (weighted)
  };

  // Builds the subtree over rows [begin, end) of indices_; returns node id.
  int BuildNode(const Dataset& data, std::span<const double> weights,
                size_t begin, size_t end, size_t depth);

  DecisionTreeOptions options_;
  std::vector<Node> nodes_;
  std::vector<size_t> indices_;  // scratch during build
  size_t depth_ = 0;
  uint64_t rng_state_ = 0;  // feature-subsampling stream during build
};

}  // namespace falcc

#endif  // FALCC_ML_DECISION_TREE_H_
