// CART-style decision tree for binary classification.
//
// The base estimator of the diverse-model-training component (paper §3.3,
// which boosts decision trees with AdaBoost) and of the Random Forest
// alternative. Supports weighted samples, gini/entropy split criteria,
// depth and leaf-size limits, and per-node random feature subsampling
// (used by Random Forest).

#ifndef FALCC_ML_DECISION_TREE_H_
#define FALCC_ML_DECISION_TREE_H_

#include <cstdint>

#include "ml/classifier.h"

namespace falcc {

class FeatureColumns;
class TreeBuilder;

/// Split quality criterion (the paper's grid searches over both).
enum class SplitCriterion { kGini, kEntropy };

/// One node of a fitted tree's flat array. Leaf iff feature < 0.
struct TreeNode {
  int feature = -1;
  double threshold = 0.0;
  int left = -1, right = -1;
  double proba = 0.5;  // P(y=1) at this node (weighted)
};

/// Decision-tree hyperparameters.
struct DecisionTreeOptions {
  size_t max_depth = 7;
  size_t min_samples_split = 2;
  size_t min_samples_leaf = 1;
  SplitCriterion criterion = SplitCriterion::kGini;
  /// Features considered per split: 0 = all, otherwise a random subset of
  /// this size (Random Forest mode).
  size_t max_features = 0;
  uint64_t seed = 1;
};

/// Weighted CART decision tree.
class DecisionTree final : public Classifier {
 public:
  explicit DecisionTree(const DecisionTreeOptions& options = {})
      : options_(options) {}

  Status Fit(const Dataset& data,
             std::span<const double> sample_weights) override;
  using Classifier::Fit;

  /// Fits against a prebuilt presorted column cache (data/
  /// feature_columns.h), sharing the per-dataset sort across fits. When
  /// `builder` is non-null its scratch buffers are reused (AdaBoost
  /// rounds); otherwise a local engine is used. Produces exactly the same
  /// tree as Fit(columns.data(), sample_weights).
  Status Fit(const FeatureColumns& columns,
             std::span<const double> sample_weights,
             TreeBuilder* builder = nullptr);
  Status Fit(const FeatureColumns& columns) { return Fit(columns, {}); }

  double PredictProba(std::span<const double> features) const override;
  void PredictProbaBatch(const Dataset& data, std::span<const size_t> rows,
                         std::span<double> out) const override;
  Status ValidateForWidth(size_t num_features) const override;
  std::unique_ptr<Classifier> Clone() const override;
  std::string Name() const override;
  std::string TypeTag() const override { return "decision_tree"; }
  Status SerializePayload(std::ostream* out) const override;
  static Result<DecisionTree> DeserializePayload(std::istream* in);

  bool LowerToFlat(FlatEnsembleBuilder* builder) const override;

  /// Number of nodes in the fitted tree (0 before Fit).
  size_t num_nodes() const { return nodes_.size(); }
  /// Depth of the fitted tree (0 = single leaf).
  size_t depth() const { return depth_; }
  /// Flat node array of the fitted tree (compiled-inference lowering).
  std::span<const TreeNode> nodes() const { return nodes_; }

  /// Assembles a fitted tree from externally built parts. Used by the
  /// frozen seed trainer (ml/reference_trainer.h) and by tests; normal
  /// training goes through Fit.
  static DecisionTree FromParts(const DecisionTreeOptions& options,
                                std::vector<TreeNode> nodes, size_t depth);

 private:
  using Node = TreeNode;

  DecisionTreeOptions options_;
  std::vector<Node> nodes_;
  size_t depth_ = 0;
};

}  // namespace falcc

#endif  // FALCC_ML_DECISION_TREE_H_
