// Polymorphic classifier serialization.
//
// Text format: the classifier's type tag on one line, followed by the
// type's payload. Supported types: decision_tree, adaboost,
// random_forest, logistic_regression, gaussian_nb, knn. Serialization
// preserves prediction behaviour exactly (doubles round-trip through 17
// significant digits); training-only state (RNG streams, scratch
// buffers) is not preserved.

#ifndef FALCC_ML_SERIALIZE_H_
#define FALCC_ML_SERIALIZE_H_

#include <iosfwd>
#include <memory>

#include "ml/classifier.h"

namespace falcc {

/// Writes `model` (tag + payload). Fails for unsupported types.
Status SerializeClassifier(const Classifier& model, std::ostream* out);

/// Reads one classifier written by SerializeClassifier.
Result<std::unique_ptr<Classifier>> DeserializeClassifier(std::istream* in);

}  // namespace falcc

#endif  // FALCC_ML_SERIALIZE_H_
