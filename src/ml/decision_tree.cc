#include "ml/decision_tree.h"

#include "ml/compiled_ensemble.h"

#include <algorithm>
#include <cmath>

#include "data/feature_columns.h"
#include "ml/tree_builder.h"
#include "util/serialize.h"

namespace falcc {

Status DecisionTree::Fit(const Dataset& data,
                         std::span<const double> sample_weights) {
  if (data.num_rows() == 0) {
    return Status::InvalidArgument("DecisionTree: empty training data");
  }
  FALCC_RETURN_IF_ERROR(ValidateWeights(data, sample_weights));
  const FeatureColumns columns(data);
  return Fit(columns, sample_weights);
}

Status DecisionTree::Fit(const FeatureColumns& columns,
                         std::span<const double> sample_weights,
                         TreeBuilder* builder) {
  const Dataset& data = columns.data();
  if (data.num_rows() == 0) {
    return Status::InvalidArgument("DecisionTree: empty training data");
  }
  FALCC_RETURN_IF_ERROR(ValidateWeights(data, sample_weights));

  std::vector<double> uniform;
  std::span<const double> weights = sample_weights;
  if (weights.empty()) {
    uniform.assign(data.num_rows(), 1.0);
    weights = uniform;
  }

  TreeBuilder local;
  TreeBuilder& engine = builder != nullptr ? *builder : local;
  return engine.Build(columns, weights, options_, &nodes_, &depth_);
}

DecisionTree DecisionTree::FromParts(const DecisionTreeOptions& options,
                                     std::vector<TreeNode> nodes,
                                     size_t depth) {
  DecisionTree tree(options);
  tree.nodes_ = std::move(nodes);
  tree.depth_ = depth;
  return tree;
}

double DecisionTree::PredictProba(std::span<const double> features) const {
  FALCC_CHECK(!nodes_.empty(), "DecisionTree::PredictProba before Fit");
  int node = 0;
  while (nodes_[node].feature >= 0) {
    const Node& n = nodes_[node];
    node = features[static_cast<size_t>(n.feature)] <= n.threshold ? n.left
                                                                   : n.right;
  }
  return nodes_[node].proba;
}

void DecisionTree::PredictProbaBatch(const Dataset& data,
                                     std::span<const size_t> rows,
                                     std::span<double> out) const {
  FALCC_CHECK(!nodes_.empty(), "DecisionTree::PredictProba before Fit");
  FALCC_CHECK(rows.size() == out.size(),
              "PredictProbaBatch: rows/out size mismatch");
  const Node* nodes = nodes_.data();
  for (size_t j = 0; j < rows.size(); ++j) {
    const std::span<const double> features = data.Row(rows[j]);
    int node = 0;
    while (nodes[node].feature >= 0) {
      const Node& n = nodes[node];
      node = features[static_cast<size_t>(n.feature)] <= n.threshold ? n.left
                                                                     : n.right;
    }
    out[j] = nodes[node].proba;
  }
}

bool DecisionTree::LowerToFlat(FlatEnsembleBuilder* builder) const {
  if (nodes_.empty()) return false;
  builder->SetKind(EnsembleKind::kTree);
  builder->AddTree(nodes_);
  return true;
}

std::unique_ptr<Classifier> DecisionTree::Clone() const {
  return std::make_unique<DecisionTree>(*this);
}

Status DecisionTree::SerializePayload(std::ostream* out) const {
  io::PrepareStream(out);
  *out << options_.max_depth << ' ' << options_.min_samples_split << ' '
       << options_.min_samples_leaf << ' '
       << (options_.criterion == SplitCriterion::kGini ? 0 : 1) << ' '
       << options_.max_features << ' ' << options_.seed << '\n';
  *out << depth_ << ' ' << nodes_.size() << '\n';
  for (const Node& n : nodes_) {
    *out << n.feature << ' ' << n.threshold << ' ' << n.left << ' '
         << n.right << ' ' << n.proba << '\n';
  }
  if (!*out) return Status::IOError("DecisionTree serialization failed");
  return Status::OK();
}

Result<DecisionTree> DecisionTree::DeserializePayload(std::istream* in) {
  DecisionTreeOptions opt;
  int criterion = 0;
  FALCC_RETURN_IF_ERROR(io::Read(in, &opt.max_depth));
  FALCC_RETURN_IF_ERROR(io::Read(in, &opt.min_samples_split));
  FALCC_RETURN_IF_ERROR(io::Read(in, &opt.min_samples_leaf));
  FALCC_RETURN_IF_ERROR(io::Read(in, &criterion));
  FALCC_RETURN_IF_ERROR(io::Read(in, &opt.max_features));
  FALCC_RETURN_IF_ERROR(io::Read(in, &opt.seed));
  opt.criterion =
      criterion == 0 ? SplitCriterion::kGini : SplitCriterion::kEntropy;

  DecisionTree tree(opt);
  size_t num_nodes = 0;
  FALCC_RETURN_IF_ERROR(io::Read(in, &tree.depth_));
  FALCC_RETURN_IF_ERROR(io::Read(in, &num_nodes));
  if (num_nodes == 0 || num_nodes > 100000000) {
    return Status::InvalidArgument("implausible node count");
  }
  // Incremental growth: a corrupted count over a truncated stream fails
  // at the first missing token instead of allocating num_nodes up front.
  tree.nodes_.reserve(std::min<size_t>(num_nodes, 4096));
  for (size_t i = 0; i < num_nodes; ++i) {
    Node n;
    FALCC_RETURN_IF_ERROR(io::Read(in, &n.feature));
    FALCC_RETURN_IF_ERROR(io::Read(in, &n.threshold));
    FALCC_RETURN_IF_ERROR(io::Read(in, &n.left));
    FALCC_RETURN_IF_ERROR(io::Read(in, &n.right));
    FALCC_RETURN_IF_ERROR(io::Read(in, &n.proba));
    const int limit = static_cast<int>(num_nodes);
    if (n.left >= limit || n.right >= limit ||
        (n.feature >= 0 && (n.left < 0 || n.right < 0))) {
      return Status::InvalidArgument("corrupt decision tree node");
    }
    // Both builders emit children strictly after their parent, so any
    // backward (or self) edge is corruption — and would make the
    // prediction loop cycle forever if admitted.
    const int self = static_cast<int>(i);
    if (n.feature >= 0 && (n.left <= self || n.right <= self)) {
      return Status::InvalidArgument("decision tree node cycle");
    }
    if (!std::isfinite(n.threshold) || !std::isfinite(n.proba) ||
        n.proba < 0.0 || n.proba > 1.0) {
      return Status::InvalidArgument("non-finite decision tree parameters");
    }
    tree.nodes_.push_back(n);
  }
  return tree;
}

Status DecisionTree::ValidateForWidth(size_t num_features) const {
  for (const Node& n : nodes_) {
    if (n.feature >= 0 && static_cast<size_t>(n.feature) >= num_features) {
      return Status::InvalidArgument(
          "DecisionTree: split on feature " + std::to_string(n.feature) +
          " but samples have " + std::to_string(num_features) + " features");
    }
  }
  return Status::OK();
}

std::string DecisionTree::Name() const {
  std::string name = "DecisionTree(depth=" + std::to_string(options_.max_depth);
  name += options_.criterion == SplitCriterion::kGini ? ",gini" : ",entropy";
  name += ")";
  return name;
}

}  // namespace falcc
