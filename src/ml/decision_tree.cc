#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/rng.h"
#include "util/serialize.h"

namespace falcc {

namespace {

// Impurity of a weighted binary class distribution (w1 positives out of
// total weight w).
double Impurity(double w1, double w, SplitCriterion criterion) {
  if (w <= 0.0) return 0.0;
  const double p = w1 / w;
  if (criterion == SplitCriterion::kGini) {
    return 2.0 * p * (1.0 - p);
  }
  double h = 0.0;
  if (p > 0.0) h -= p * std::log2(p);
  if (p < 1.0) h -= (1.0 - p) * std::log2(1.0 - p);
  return h;
}

}  // namespace

Status DecisionTree::Fit(const Dataset& data,
                         std::span<const double> sample_weights) {
  if (data.num_rows() == 0) {
    return Status::InvalidArgument("DecisionTree: empty training data");
  }
  FALCC_RETURN_IF_ERROR(ValidateWeights(data, sample_weights));

  std::vector<double> weights;
  if (sample_weights.empty()) {
    weights.assign(data.num_rows(), 1.0);
  } else {
    weights.assign(sample_weights.begin(), sample_weights.end());
  }

  nodes_.clear();
  depth_ = 0;
  indices_.resize(data.num_rows());
  for (size_t i = 0; i < indices_.size(); ++i) indices_[i] = i;
  rng_state_ = options_.seed;

  nodes_.reserve(64);
  BuildNode(data, weights, 0, indices_.size(), 0);
  indices_.clear();
  indices_.shrink_to_fit();
  return Status::OK();
}

int DecisionTree::BuildNode(const Dataset& data,
                            std::span<const double> weights, size_t begin,
                            size_t end, size_t depth) {
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  depth_ = std::max(depth_, depth);

  // Weighted class counts over this node's rows.
  double w_total = 0.0, w_pos = 0.0;
  for (size_t i = begin; i < end; ++i) {
    const size_t row = indices_[i];
    w_total += weights[row];
    if (data.Label(row) == 1) w_pos += weights[row];
  }
  nodes_[node_id].proba = w_total > 0.0 ? w_pos / w_total : 0.5;

  const size_t n = end - begin;
  const bool pure = w_pos <= 0.0 || w_pos >= w_total;
  if (depth >= options_.max_depth || n < options_.min_samples_split || pure ||
      w_total <= 0.0) {
    return node_id;
  }

  // Candidate features: all, or a random subset (Random Forest mode).
  std::vector<size_t> candidates(data.num_features());
  for (size_t f = 0; f < candidates.size(); ++f) candidates[f] = f;
  if (options_.max_features > 0 &&
      options_.max_features < candidates.size()) {
    Rng rng(rng_state_);
    rng.Shuffle(&candidates);
    rng_state_ = rng.Next();
    candidates.resize(options_.max_features);
  }

  const double parent_impurity = Impurity(w_pos, w_total, options_.criterion);
  double best_gain = 1e-12;  // require strictly positive gain
  int best_feature = -1;
  double best_threshold = 0.0;

  std::vector<size_t> sorted(indices_.begin() + begin, indices_.begin() + end);
  for (size_t f : candidates) {
    std::sort(sorted.begin(), sorted.end(), [&](size_t a, size_t b) {
      return data.Feature(a, f) < data.Feature(b, f);
    });
    double wl = 0.0, wl_pos = 0.0;
    for (size_t i = 0; i + 1 < sorted.size(); ++i) {
      const size_t row = sorted[i];
      wl += weights[row];
      if (data.Label(row) == 1) wl_pos += weights[row];
      const double v = data.Feature(row, f);
      const double v_next = data.Feature(sorted[i + 1], f);
      if (v_next <= v) continue;  // no valid threshold between equal values
      if (i + 1 < options_.min_samples_leaf ||
          sorted.size() - i - 1 < options_.min_samples_leaf) {
        continue;
      }
      const double wr = w_total - wl;
      const double wr_pos = w_pos - wl_pos;
      if (wl <= 0.0 || wr <= 0.0) continue;
      const double child_impurity =
          (wl * Impurity(wl_pos, wl, options_.criterion) +
           wr * Impurity(wr_pos, wr, options_.criterion)) /
          w_total;
      const double gain = parent_impurity - child_impurity;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = (v + v_next) / 2.0;
      }
    }
  }

  if (best_feature < 0) return node_id;  // no useful split found

  // Partition indices_ [begin, end) on the chosen split.
  const auto mid_it = std::partition(
      indices_.begin() + begin, indices_.begin() + end, [&](size_t row) {
        return data.Feature(row, static_cast<size_t>(best_feature)) <=
               best_threshold;
      });
  const size_t mid = static_cast<size_t>(mid_it - indices_.begin());
  if (mid == begin || mid == end) return node_id;  // degenerate partition

  // nodes_ may reallocate in recursion; write fields via node_id after.
  const int left = BuildNode(data, weights, begin, mid, depth + 1);
  const int right = BuildNode(data, weights, mid, end, depth + 1);
  nodes_[node_id].feature = best_feature;
  nodes_[node_id].threshold = best_threshold;
  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
  return node_id;
}

double DecisionTree::PredictProba(std::span<const double> features) const {
  FALCC_CHECK(!nodes_.empty(), "DecisionTree::PredictProba before Fit");
  int node = 0;
  while (nodes_[node].feature >= 0) {
    const Node& n = nodes_[node];
    node = features[static_cast<size_t>(n.feature)] <= n.threshold ? n.left
                                                                   : n.right;
  }
  return nodes_[node].proba;
}

std::unique_ptr<Classifier> DecisionTree::Clone() const {
  return std::make_unique<DecisionTree>(*this);
}

Status DecisionTree::SerializePayload(std::ostream* out) const {
  io::PrepareStream(out);
  *out << options_.max_depth << ' ' << options_.min_samples_split << ' '
       << options_.min_samples_leaf << ' '
       << (options_.criterion == SplitCriterion::kGini ? 0 : 1) << ' '
       << options_.max_features << ' ' << options_.seed << '\n';
  *out << depth_ << ' ' << nodes_.size() << '\n';
  for (const Node& n : nodes_) {
    *out << n.feature << ' ' << n.threshold << ' ' << n.left << ' '
         << n.right << ' ' << n.proba << '\n';
  }
  if (!*out) return Status::IOError("DecisionTree serialization failed");
  return Status::OK();
}

Result<DecisionTree> DecisionTree::DeserializePayload(std::istream* in) {
  DecisionTreeOptions opt;
  int criterion = 0;
  FALCC_RETURN_IF_ERROR(io::Read(in, &opt.max_depth));
  FALCC_RETURN_IF_ERROR(io::Read(in, &opt.min_samples_split));
  FALCC_RETURN_IF_ERROR(io::Read(in, &opt.min_samples_leaf));
  FALCC_RETURN_IF_ERROR(io::Read(in, &criterion));
  FALCC_RETURN_IF_ERROR(io::Read(in, &opt.max_features));
  FALCC_RETURN_IF_ERROR(io::Read(in, &opt.seed));
  opt.criterion =
      criterion == 0 ? SplitCriterion::kGini : SplitCriterion::kEntropy;

  DecisionTree tree(opt);
  size_t num_nodes = 0;
  FALCC_RETURN_IF_ERROR(io::Read(in, &tree.depth_));
  FALCC_RETURN_IF_ERROR(io::Read(in, &num_nodes));
  if (num_nodes > 100000000) {
    return Status::InvalidArgument("implausible node count");
  }
  tree.nodes_.resize(num_nodes);
  for (Node& n : tree.nodes_) {
    FALCC_RETURN_IF_ERROR(io::Read(in, &n.feature));
    FALCC_RETURN_IF_ERROR(io::Read(in, &n.threshold));
    FALCC_RETURN_IF_ERROR(io::Read(in, &n.left));
    FALCC_RETURN_IF_ERROR(io::Read(in, &n.right));
    FALCC_RETURN_IF_ERROR(io::Read(in, &n.proba));
    const int limit = static_cast<int>(num_nodes);
    if (n.left >= limit || n.right >= limit ||
        (n.feature >= 0 && (n.left < 0 || n.right < 0))) {
      return Status::InvalidArgument("corrupt decision tree node");
    }
  }
  return tree;
}

std::string DecisionTree::Name() const {
  std::string name = "DecisionTree(depth=" + std::to_string(options_.max_depth);
  name += options_.criterion == SplitCriterion::kGini ? ",gini" : ",entropy";
  name += ")";
  return name;
}

}  // namespace falcc
