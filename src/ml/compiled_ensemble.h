// Compiled flat-node inference kernels for tree ensembles.
//
// The interpreted prediction path walks each model's TreeNode array with
// a data-dependent branch per node and one virtual PredictProbaBatch
// dispatch per model. This layer lowers every CART / AdaBoost /
// RandomForest into a structure-of-arrays node table (feature indices,
// thresholds, child offsets, and leaf probabilities in separate
// contiguous arrays) and walks it branch-free, level-by-level, over
// blocks of rows — the VPred / QuickScorer family of layouts. Leaves are
// encoded as self-loops (both children point at the node itself), so a
// fixed `depth` steps from the root lands every row on its leaf and the
// inner loop needs no termination test.
//
// Two compiled artifacts exist:
//  * CompiledEnsemble — one classifier, lowered standalone. Used by the
//    inference microbenchmark and by model-level tests.
//  * CompiledCombo — one FALCC model combination (paper §3.6: one pool
//    model per sensitive group), with every group's ensemble stitched
//    into a single shared node table behind a group-indexed entry point.
//    This is what the online phase serves from: the per-(cluster, group)
//    row segment does one table walk instead of group routing plus
//    per-model virtual dispatch.
//
// Bit-identity contract: for every lowered model the compiled kernel
// reproduces the interpreted PredictProbaBatch output exactly — same
// traversal comparisons (`v <= threshold` goes left), same accumulation
// order (AdaBoost margins in boosting-round order, alpha_sum as the sum
// of |alpha_t| in the same order), same final arithmetic. Models that
// are not tree ensembles (logistic regression, naive Bayes, kNN) do not
// lower; a CompiledCombo records them as fallback entries and the caller
// keeps using the interpreted path for those groups.

#ifndef FALCC_ML_COMPILED_ENSEMBLE_H_
#define FALCC_ML_COMPILED_ENSEMBLE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/model_pool.h"
#include "ml/decision_tree.h"

namespace falcc {

/// How a lowered ensemble combines its trees' leaf probabilities.
enum class EnsembleKind {
  kTree,      ///< single tree: probability = leaf proba
  kAdaBoost,  ///< 0.5 * (Σ alpha_t sign(leaf_t) / Σ |alpha_t| + 1)
  kForest,    ///< mean of hard votes (leaf proba >= 0.5)
};

/// Structure-of-arrays node table shared by every tree of one compiled
/// artifact. Node i of a tree occupies global slot base + i; children are
/// global slots. Internal node: feature >= 0 index into the sample,
/// children[2i] = left (taken when value <= threshold), children[2i + 1]
/// = right. Leaf: feature = 0 (a harmless in-bounds column), threshold =
/// 0, both children = the node itself, and leaf_proba holds P(y = 1).
struct FlatTable {
  std::vector<int32_t> feature;
  std::vector<double> threshold;
  std::vector<uint32_t> children;  // 2 entries per node
  std::vector<double> leaf_proba;

  size_t num_nodes() const { return feature.size(); }
};

/// One lowered tree: its root slot in the shared table and the number of
/// traversal steps (= tree depth, recomputed from the node structure —
/// never trusted from a serialized depth field) that reach every leaf.
struct TreeRef {
  uint32_t root = 0;
  uint32_t steps = 0;
};

/// Receives one classifier's trees during lowering. Classifiers
/// implement Classifier::LowerToFlat against this interface; the
/// compiler (CompiledEnsemble / CompiledCombo) owns the storage and
/// checks `status()` once lowering finishes. Appending is append-only
/// into the shared table, so multiple models stitch naturally.
class FlatEnsembleBuilder {
 public:
  FlatEnsembleBuilder(FlatTable* table, std::vector<TreeRef>* trees,
                      std::vector<double>* alphas)
      : table_(table), trees_(trees), alphas_(alphas) {}

  /// Declares the combination rule. Must be called exactly once per
  /// lowered model, before any AddTree.
  void SetKind(EnsembleKind kind);

  /// Appends one fitted tree. `alpha` is its AdaBoost weight (ignored by
  /// the other kinds). Nodes must form a valid flat tree: every internal
  /// node's children strictly after it and in range — the same shape
  /// DecisionTree::DeserializePayload enforces. Violations (or an empty
  /// tree) poison the builder; the compiler reports them via status().
  void AddTree(std::span<const TreeNode> nodes, double alpha = 1.0);

  bool has_kind() const { return has_kind_; }
  EnsembleKind kind() const { return kind_; }
  const Status& status() const { return status_; }
  size_t num_trees_added() const { return num_trees_added_; }

 private:
  FlatTable* table_;
  std::vector<TreeRef>* trees_;
  std::vector<double>* alphas_;
  EnsembleKind kind_ = EnsembleKind::kTree;
  bool has_kind_ = false;
  Status status_;
  size_t num_trees_added_ = 0;
  std::vector<uint32_t> depth_scratch_;
};

/// One classifier lowered standalone. Compile fails with
/// FailedPrecondition for classifier types that do not lower.
class CompiledEnsemble {
 public:
  static Result<CompiledEnsemble> Compile(const Classifier& model);

  /// Exactly Classifier::PredictProbaBatch of the source model, bit for
  /// bit: P(y = 1) for `rows` of `data`, written to `out` (same length).
  void PredictProbaBatch(const Dataset& data, std::span<const size_t> rows,
                         std::span<double> out) const;

  EnsembleKind kind() const { return kind_; }
  size_t num_trees() const { return trees_.size(); }
  size_t num_nodes() const { return table_.num_nodes(); }

 private:
  CompiledEnsemble() = default;

  FlatTable table_;
  std::vector<TreeRef> trees_;
  std::vector<double> alphas_;
  EnsembleKind kind_ = EnsembleKind::kTree;
  double alpha_sum_ = 0.0;
};

/// One model combination fused into a single node table with a
/// group-indexed entry point. Immutable once compiled; FalccModel shares
/// instances across clusters that selected the same combination (and
/// across refresh clones), which is why Compile returns a shared_ptr.
///
/// The kernels read every array through spans. A combo built by Compile
/// owns its storage (the spans point at it); one built by FromParts over
/// a memory-mapped snapshot aliases the mapping directly — zero copy —
/// and keeps it alive through `backing`. Both serve bit-identically.
class CompiledCombo {
 public:
  /// Per-group dispatch record: the tree slice of the shared table plus
  /// the precomputed AdaBoost normalizer. Public because the snapshot
  /// layer serializes entries verbatim into the flat section.
  struct GroupEntry {
    EnsembleKind kind = EnsembleKind::kTree;
    uint32_t tree_begin = 0;
    uint32_t tree_end = 0;
    double alpha_sum = 0.0;
    uint32_t model = 0;  ///< pool index (also the fallback route)
    bool compiled = false;
  };

  /// The six arrays one fused kernel walks, as views.
  struct FlatParts {
    std::span<const int32_t> feature;
    std::span<const double> threshold;
    std::span<const uint32_t> children;
    std::span<const double> leaf_proba;
    std::span<const TreeRef> trees;
    std::span<const double> alphas;
  };

  /// Lowers `combo` (one pool model index per sensitive group) against
  /// `pool`. Groups whose model does not lower become fallback entries
  /// (GroupCompiled(g) == false); groups sharing a pool model share one
  /// lowered entry. Fails only on structurally invalid trees, which
  /// deserialization and training both rule out.
  static Result<std::shared_ptr<const CompiledCombo>> Compile(
      const ModelPool& pool, const ModelCombination& combo);

  /// Builds a combo whose kernels alias `parts` (kept alive by
  /// `backing`) after full structural validation: child links in range
  /// and strictly forward (leaves self-loop), features inside
  /// [0, num_features), finite thresholds/alphas, leaf probabilities in
  /// [0, 1], walk lengths bounded by the node count, entry tree slices
  /// in range with bit-exact recomputed alpha normalizers. An accepted
  /// table therefore cannot read out of bounds, loop, or produce an
  /// out-of-range probability — the mmap path's safety contract.
  static Result<std::shared_ptr<const CompiledCombo>> FromParts(
      const FlatParts& parts, std::vector<GroupEntry> groups,
      size_t num_features, size_t pool_size,
      std::shared_ptr<const void> backing);

  CompiledCombo(const CompiledCombo&) = delete;
  CompiledCombo& operator=(const CompiledCombo&) = delete;

  size_t num_groups() const { return groups_.size(); }
  /// Whether group g's model was lowered (false = caller must use the
  /// interpreted path via GroupModel).
  bool GroupCompiled(size_t g) const { return groups_[g].compiled; }
  /// Pool index of the model serving group g.
  size_t GroupModel(size_t g) const { return groups_[g].model; }

  /// Fused kernel for group g's row segment; requires GroupCompiled(g).
  /// Bit-identical to pool.model(GroupModel(g)).PredictProbaBatch.
  void PredictGroup(const Dataset& data, size_t g,
                    std::span<const size_t> rows, std::span<double> out) const;

  /// Bit-for-bit equality of the compiled artifact (tables, tree refs,
  /// alphas, entries) — what "a refresh recompile matches a from-scratch
  /// compile" means in tests.
  bool SameBits(const CompiledCombo& other) const;

  size_t num_nodes() const { return parts_.feature.size(); }
  size_t num_trees() const { return parts_.trees.size(); }
  size_t num_compiled_groups() const;

  /// The entry table (serialized verbatim by the snapshot layer).
  std::span<const GroupEntry> groups() const { return groups_; }
  /// The kernel arrays as views (aliasing owned storage or a mapping).
  const FlatParts& parts() const { return parts_; }

 private:
  CompiledCombo() = default;

  /// Points the span views at the owned storage. Called once the object
  /// sits at its final address (Compile heap-allocates, so members never
  /// move afterwards).
  void BindOwned();

  // Owned storage (empty when the combo aliases a mapping via backing_).
  FlatTable table_;
  std::vector<TreeRef> trees_;
  std::vector<double> alphas_;

  FlatParts parts_;
  std::vector<GroupEntry> groups_;
  std::shared_ptr<const void> backing_;
};

}  // namespace falcc

#endif  // FALCC_ML_COMPILED_ENSEMBLE_H_
