#include "ml/serialize.h"

#include <istream>
#include <ostream>

#include "ml/adaboost.h"
#include "ml/decision_tree.h"
#include "ml/knn_classifier.h"
#include "ml/logistic_regression.h"
#include "ml/naive_bayes.h"
#include "ml/random_forest.h"
#include "util/serialize.h"

namespace falcc {

Status SerializeClassifier(const Classifier& model, std::ostream* out) {
  const std::string tag = model.TypeTag();
  if (tag.empty()) {
    return Status::FailedPrecondition("serialization not supported for " +
                                      model.Name());
  }
  *out << tag << '\n';
  return model.SerializePayload(out);
}

namespace {

template <typename T>
Result<std::unique_ptr<Classifier>> Load(std::istream* in) {
  Result<T> model = T::DeserializePayload(in);
  if (!model.ok()) return model.status();
  return std::unique_ptr<Classifier>(
      std::make_unique<T>(std::move(model).value()));
}

}  // namespace

Result<std::unique_ptr<Classifier>> DeserializeClassifier(std::istream* in) {
  std::string tag;
  FALCC_RETURN_IF_ERROR(io::Read(in, &tag));
  if (tag == "decision_tree") return Load<DecisionTree>(in);
  if (tag == "adaboost") return Load<AdaBoost>(in);
  if (tag == "random_forest") return Load<RandomForest>(in);
  if (tag == "logistic_regression") return Load<LogisticRegression>(in);
  if (tag == "gaussian_nb") return Load<GaussianNaiveBayes>(in);
  if (tag == "knn") return Load<KnnClassifier>(in);
  return Status::InvalidArgument("unknown classifier type tag '" + tag +
                                 "'");
}

}  // namespace falcc
