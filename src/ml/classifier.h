// Abstract binary classifier interface.
//
// All learners in falcc (decision trees, boosted/bagged ensembles, linear
// and probabilistic models) implement this interface so the FALCC
// framework, the model pool, and every baseline can treat them uniformly.
// Training supports per-sample weights (needed by boosting and by
// fairness-driven reweighting baselines).

#ifndef FALCC_ML_CLASSIFIER_H_
#define FALCC_ML_CLASSIFIER_H_

#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "util/status.h"

namespace falcc {

class FlatEnsembleBuilder;

/// Interface of a trainable binary classifier.
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Trains on `data`. `sample_weights` is either empty (uniform) or one
  /// non-negative weight per row with a positive sum.
  virtual Status Fit(const Dataset& data,
                     std::span<const double> sample_weights) = 0;

  /// Convenience: uniform-weight training.
  Status Fit(const Dataset& data) { return Fit(data, {}); }

  /// Estimated P(y = 1 | features). Requires a prior successful Fit.
  virtual double PredictProba(std::span<const double> features) const = 0;

  /// Hard prediction; default thresholds PredictProba at 0.5.
  virtual int Predict(std::span<const double> features) const {
    return PredictProba(features) >= 0.5 ? 1 : 0;
  }

  /// Estimated P(y = 1) for `rows` of `data`, written to `out` (same
  /// length). The default calls PredictProba per row; tree-based models
  /// override it with an iterative traversal over their flat node arrays
  /// so batch inference pays one virtual dispatch per model, not per row.
  /// Must produce exactly PredictProba(data.Row(rows[j])) per row.
  virtual void PredictProbaBatch(const Dataset& data,
                                 std::span<const size_t> rows,
                                 std::span<double> out) const;

  /// Checks that a fitted model is safe to evaluate on samples with
  /// `num_features` columns: every feature index the model dereferences
  /// at prediction time must be < num_features, and fixed-width models
  /// must match the width exactly. Deserialized models are validated with
  /// this before they may serve traffic — an adversarial payload must be
  /// rejected with a Status here, never crash inside Predict. The default
  /// accepts any width (for models that index nothing directly).
  virtual Status ValidateForWidth(size_t num_features) const {
    (void)num_features;
    return Status::OK();
  }

  /// Lowers this fitted model into the compiled inference layer
  /// (ml/compiled_ensemble.h): declares the combination rule via
  /// `builder->SetKind`, then appends every tree in evaluation order.
  /// Returns false — the default, without touching the builder — for
  /// types that are not tree ensembles or are unfitted; those keep the
  /// interpreted PredictProbaBatch path.
  virtual bool LowerToFlat(FlatEnsembleBuilder* builder) const {
    (void)builder;
    return false;
  }

  /// Deep copy, including any fitted state.
  virtual std::unique_ptr<Classifier> Clone() const = 0;

  /// Short human-readable description, e.g. "AdaBoost(T=20,depth=7)".
  virtual std::string Name() const = 0;

  /// Stable type tag used by the serialization registry (ml/serialize.h),
  /// e.g. "decision_tree". Empty = type does not support serialization.
  virtual std::string TypeTag() const { return ""; }

  /// Writes the fitted model's payload (without the type tag) to `out`.
  /// The default fails; types listed in ml/serialize.h override it.
  virtual Status SerializePayload(std::ostream* out) const;
};

/// Hard predictions for every row of `data`.
std::vector<int> PredictAll(const Classifier& model, const Dataset& data);

/// Unweighted accuracy of `model` on `data`.
double Accuracy(const Classifier& model, const Dataset& data);

/// Validates sample weights against a dataset: empty is allowed
/// (uniform); otherwise size must match and weights must be non-negative
/// with a positive sum.
Status ValidateWeights(const Dataset& data, std::span<const double> weights);

}  // namespace falcc

#endif  // FALCC_ML_CLASSIFIER_H_
