#include "ml/reference_trainer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "util/parallel.h"
#include "util/rng.h"

namespace falcc {
namespace reference {

namespace {

// Verbatim seed DecisionTree fit state: nodes, row-index scratch, and the
// feature-subsampling RNG stream, recursing exactly as the seed
// implementation did.
struct SeedTreeFit {
  const Dataset& data;
  const DecisionTreeOptions& options;
  std::vector<double> weights;
  std::vector<TreeNode> nodes;
  std::vector<size_t> indices;
  size_t depth = 0;
  uint64_t rng_state = 0;

  // Impurity of a weighted binary class distribution (w1 positives out of
  // total weight w).
  static double Impurity(double w1, double w, SplitCriterion criterion) {
    if (w <= 0.0) return 0.0;
    const double p = w1 / w;
    if (criterion == SplitCriterion::kGini) {
      return 2.0 * p * (1.0 - p);
    }
    double h = 0.0;
    if (p > 0.0) h -= p * std::log2(p);
    if (p < 1.0) h -= (1.0 - p) * std::log2(1.0 - p);
    return h;
  }

  Status Run(std::span<const double> sample_weights) {
    if (data.num_rows() == 0) {
      return Status::InvalidArgument("DecisionTree: empty training data");
    }
    FALCC_RETURN_IF_ERROR(ValidateWeights(data, sample_weights));

    if (sample_weights.empty()) {
      weights.assign(data.num_rows(), 1.0);
    } else {
      weights.assign(sample_weights.begin(), sample_weights.end());
    }

    nodes.clear();
    depth = 0;
    indices.resize(data.num_rows());
    for (size_t i = 0; i < indices.size(); ++i) indices[i] = i;
    rng_state = options.seed;

    nodes.reserve(64);
    BuildNode(0, indices.size(), 0);
    return Status::OK();
  }

  int BuildNode(size_t begin, size_t end, size_t node_depth) {
    const int node_id = static_cast<int>(nodes.size());
    nodes.emplace_back();
    depth = std::max(depth, node_depth);

    // Weighted class counts over this node's rows.
    double w_total = 0.0, w_pos = 0.0;
    for (size_t i = begin; i < end; ++i) {
      const size_t row = indices[i];
      w_total += weights[row];
      if (data.Label(row) == 1) w_pos += weights[row];
    }
    nodes[node_id].proba = w_total > 0.0 ? w_pos / w_total : 0.5;

    const size_t n = end - begin;
    const bool pure = w_pos <= 0.0 || w_pos >= w_total;
    if (node_depth >= options.max_depth || n < options.min_samples_split ||
        pure || w_total <= 0.0) {
      return node_id;
    }

    // Candidate features: all, or a random subset (Random Forest mode).
    std::vector<size_t> candidates(data.num_features());
    for (size_t f = 0; f < candidates.size(); ++f) candidates[f] = f;
    if (options.max_features > 0 &&
        options.max_features < candidates.size()) {
      Rng rng(rng_state);
      rng.Shuffle(&candidates);
      rng_state = rng.Next();
      candidates.resize(options.max_features);
    }

    const double parent_impurity = Impurity(w_pos, w_total, options.criterion);
    double best_gain = 1e-12;  // require strictly positive gain
    int best_feature = -1;
    double best_threshold = 0.0;

    std::vector<size_t> sorted(indices.begin() + begin, indices.begin() + end);
    for (size_t f : candidates) {
      // One deliberate deviation from the seed: equal feature values are
      // tie-broken by row index. The seed's value-only comparator left
      // the order of equal values to std::sort's internals, so the
      // floating-point accumulation order across duplicate runs — and
      // with it the resolution of near-tied gains — depended on the
      // library's introsort. The row tie-break makes the comparator a
      // strict total order, pinning the exact sequence the presorted
      // engine scans; wherever gains are separated by more than ~1 ulp
      // (every golden case, verified against the pristine seed build)
      // the resulting model is unchanged.
      std::sort(sorted.begin(), sorted.end(), [&](size_t a, size_t b) {
        const double va = data.Feature(a, f);
        const double vb = data.Feature(b, f);
        return va != vb ? va < vb : a < b;
      });
      double wl = 0.0, wl_pos = 0.0;
      for (size_t i = 0; i + 1 < sorted.size(); ++i) {
        const size_t row = sorted[i];
        wl += weights[row];
        if (data.Label(row) == 1) wl_pos += weights[row];
        const double v = data.Feature(row, f);
        const double v_next = data.Feature(sorted[i + 1], f);
        if (v_next <= v) continue;  // no valid threshold between equal values
        if (i + 1 < options.min_samples_leaf ||
            sorted.size() - i - 1 < options.min_samples_leaf) {
          continue;
        }
        const double wr = w_total - wl;
        const double wr_pos = w_pos - wl_pos;
        if (wl <= 0.0 || wr <= 0.0) continue;
        const double child_impurity =
            (wl * Impurity(wl_pos, wl, options.criterion) +
             wr * Impurity(wr_pos, wr, options.criterion)) /
            w_total;
        const double gain = parent_impurity - child_impurity;
        if (gain > best_gain) {
          best_gain = gain;
          best_feature = static_cast<int>(f);
          best_threshold = (v + v_next) / 2.0;
        }
      }
    }

    if (best_feature < 0) return node_id;  // no useful split found

    // Partition indices [begin, end) on the chosen split.
    const auto mid_it = std::partition(
        indices.begin() + begin, indices.begin() + end, [&](size_t row) {
          return data.Feature(row, static_cast<size_t>(best_feature)) <=
                 best_threshold;
        });
    const size_t mid = static_cast<size_t>(mid_it - indices.begin());
    if (mid == begin || mid == end) return node_id;  // degenerate partition

    // nodes may reallocate in recursion; write fields via node_id after.
    const int left = BuildNode(begin, mid, node_depth + 1);
    const int right = BuildNode(mid, end, node_depth + 1);
    nodes[node_id].feature = best_feature;
    nodes[node_id].threshold = best_threshold;
    nodes[node_id].left = left;
    nodes[node_id].right = right;
    return node_id;
  }
};

}  // namespace

Result<DecisionTree> TrainTree(const Dataset& data,
                               std::span<const double> sample_weights,
                               const DecisionTreeOptions& options) {
  SeedTreeFit fit{data, options};
  FALCC_RETURN_IF_ERROR(fit.Run(sample_weights));
  return DecisionTree::FromParts(options, std::move(fit.nodes), fit.depth);
}

Result<AdaBoost> TrainAdaBoost(const Dataset& data,
                               std::span<const double> sample_weights,
                               const AdaBoostOptions& options) {
  if (data.num_rows() == 0) {
    return Status::InvalidArgument("AdaBoost: empty training data");
  }
  if (options.num_estimators == 0) {
    return Status::InvalidArgument("AdaBoost: num_estimators must be > 0");
  }
  FALCC_RETURN_IF_ERROR(ValidateWeights(data, sample_weights));

  const size_t n = data.num_rows();
  std::vector<double> weights;
  if (sample_weights.empty()) {
    weights.assign(n, 1.0 / static_cast<double>(n));
  } else {
    weights.assign(sample_weights.begin(), sample_weights.end());
    double sum = 0.0;
    for (double w : weights) sum += w;
    for (double& w : weights) w /= sum;
  }

  std::vector<DecisionTree> trees;
  std::vector<double> alphas;
  std::vector<int> predictions(n);

  for (size_t t = 0; t < options.num_estimators; ++t) {
    DecisionTreeOptions base = options.base;
    base.seed = options.base.seed + t;  // vary RF-style subsampling streams
    Result<DecisionTree> tree = TrainTree(data, weights, base);
    if (!tree.ok()) return tree.status();

    double err = 0.0;
    for (size_t i = 0; i < n; ++i) {
      predictions[i] = tree.value().Predict(data.Row(i));
      if (predictions[i] != data.Label(i)) err += weights[i];
    }

    if (err >= 0.5) {
      // Weak learner no better than chance: stop, but make sure the
      // ensemble is non-empty.
      if (trees.empty()) {
        trees.push_back(std::move(tree).value());
        alphas.push_back(1.0);
      }
      break;
    }

    // Cap near-zero error so alpha stays finite.
    const double eps = std::max(err, 1e-10);
    const double alpha = options.learning_rate * std::log((1.0 - eps) / eps);
    trees.push_back(std::move(tree).value());
    alphas.push_back(alpha);

    if (err <= 0.0) break;  // perfect fit: further rounds are no-ops

    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (predictions[i] != data.Label(i)) {
        weights[i] *= std::exp(alpha);
      }
      sum += weights[i];
    }
    for (double& w : weights) w /= sum;
  }

  return AdaBoost::FromParts(options, std::move(trees), std::move(alphas));
}

Result<RandomForest> TrainRandomForest(const Dataset& data,
                                       std::span<const double> sample_weights,
                                       const RandomForestOptions& options) {
  if (data.num_rows() == 0) {
    return Status::InvalidArgument("RandomForest: empty training data");
  }
  if (options.num_trees == 0) {
    return Status::InvalidArgument("RandomForest: num_trees must be > 0");
  }
  FALCC_RETURN_IF_ERROR(ValidateWeights(data, sample_weights));

  const size_t n = data.num_rows();
  Rng rng(options.seed);

  const size_t max_features =
      options.max_features > 0
          ? options.max_features
          : static_cast<size_t>(
                std::max(1.0, std::floor(std::sqrt(
                                  static_cast<double>(data.num_features())))));

  // Bootstrap resampling via multiplicity weights, drawn tree-by-tree on
  // the single forest-level stream, exactly as the seed did.
  std::vector<std::vector<double>> boot_weights(options.num_trees,
                                                std::vector<double>(n, 0.0));
  std::vector<DecisionTreeOptions> tree_options(options.num_trees);
  for (size_t t = 0; t < options.num_trees; ++t) {
    std::vector<double>& weights = boot_weights[t];
    for (size_t i = 0; i < n; ++i) {
      weights[rng.UniformInt(n)] += 1.0;
    }
    if (!sample_weights.empty()) {
      for (size_t i = 0; i < n; ++i) weights[i] *= sample_weights[i];
    }
    double sum = 0.0;
    for (double w : weights) sum += w;
    if (sum <= 0.0) {
      // Degenerate draw (possible with sparse caller weights): fall back
      // to the caller weights / uniform.
      for (size_t i = 0; i < n; ++i) {
        weights[i] = sample_weights.empty() ? 1.0 : sample_weights[i];
      }
    }

    DecisionTreeOptions base = options.base;
    base.max_features = max_features;
    base.seed = rng.Next();
    tree_options[t] = base;
  }

  // Tree fits are independent; each writes its own pre-constructed slot.
  std::vector<DecisionTree> trees(options.num_trees);
  std::vector<Status> fit_status(options.num_trees);
  ParallelFor(0, options.num_trees, 1,
              [&](size_t /*chunk*/, size_t lo, size_t hi) {
                for (size_t t = lo; t < hi; ++t) {
                  Result<DecisionTree> tree =
                      TrainTree(data, boot_weights[t], tree_options[t]);
                  if (!tree.ok()) {
                    fit_status[t] = tree.status();
                    continue;
                  }
                  trees[t] = std::move(tree).value();
                }
              });
  for (const Status& status : fit_status) {
    FALCC_RETURN_IF_ERROR(status);
  }
  return RandomForest::FromParts(options, std::move(trees));
}

}  // namespace reference
}  // namespace falcc
