// Frozen copy of the seed tree-training paths (pre column-cache engine).
//
// These functions reproduce, line for line, the trainers the repository
// shipped before the presorted split engine (ml/tree_builder.h) replaced
// them: the per-node, per-candidate-feature sorting DecisionTree::Fit,
// and the AdaBoost / Random-Forest loops driving it — with one
// deliberate deviation: the per-feature sort tie-breaks equal values by
// row index (see the comment in reference_trainer.cc). The seed's
// value-only comparator left the order of duplicates to std::sort's
// internals, which made the floating-point accumulation order — and
// hence the resolution of gain ties within ~1 ulp — an artifact of the
// standard library rather than of the algorithm. The tie-break pins a
// unique total order without changing any model whose gains are
// separated by more than rounding noise (every checked-in golden file
// was verified byte-identical against a pristine seed build).
//
// They exist for two purposes only:
//
//  * the golden-equivalence test (tests/train_engine_golden_test.cc)
//    proves the new engine reproduces the seed models byte-for-byte, and
//  * the training microbenchmark (bench/bench_train_engine.cc) measures
//    before-vs-after speedups against the genuine seed algorithm.
//
// Production code must never call into falcc::reference. Do not "fix" or
// optimize this file — its value is that it does not change.

#ifndef FALCC_ML_REFERENCE_TRAINER_H_
#define FALCC_ML_REFERENCE_TRAINER_H_

#include <span>

#include "ml/adaboost.h"
#include "ml/decision_tree.h"
#include "ml/random_forest.h"

namespace falcc {
namespace reference {

/// Seed DecisionTree::Fit: copies and re-sorts the node's rows per
/// candidate feature per node.
Result<DecisionTree> TrainTree(const Dataset& data,
                               std::span<const double> sample_weights,
                               const DecisionTreeOptions& options);

/// Seed AdaBoost::Fit over seed tree fits.
Result<AdaBoost> TrainAdaBoost(const Dataset& data,
                               std::span<const double> sample_weights,
                               const AdaBoostOptions& options);

/// Seed RandomForest::Fit over seed tree fits.
Result<RandomForest> TrainRandomForest(const Dataset& data,
                                       std::span<const double> sample_weights,
                                       const RandomForestOptions& options);

}  // namespace reference
}  // namespace falcc

#endif  // FALCC_ML_REFERENCE_TRAINER_H_
