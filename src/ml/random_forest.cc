#include "ml/random_forest.h"

#include "ml/compiled_ensemble.h"

#include <cmath>

#include "data/feature_columns.h"
#include "ml/tree_builder.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/serialize.h"

namespace falcc {

Status RandomForest::Fit(const Dataset& data,
                         std::span<const double> sample_weights) {
  if (data.num_rows() == 0) {
    return Status::InvalidArgument("RandomForest: empty training data");
  }
  FALCC_RETURN_IF_ERROR(ValidateWeights(data, sample_weights));
  const FeatureColumns columns(data);
  return Fit(columns, sample_weights);
}

Status RandomForest::Fit(const FeatureColumns& columns,
                         std::span<const double> sample_weights) {
  const Dataset& data = columns.data();
  if (data.num_rows() == 0) {
    return Status::InvalidArgument("RandomForest: empty training data");
  }
  if (options_.num_trees == 0) {
    return Status::InvalidArgument("RandomForest: num_trees must be > 0");
  }
  FALCC_RETURN_IF_ERROR(ValidateWeights(data, sample_weights));

  const size_t n = data.num_rows();
  Rng rng(options_.seed);
  trees_.clear();
  trees_.reserve(options_.num_trees);

  const size_t max_features =
      options_.max_features > 0
          ? options_.max_features
          : static_cast<size_t>(
                std::max(1.0, std::floor(std::sqrt(
                                  static_cast<double>(data.num_features())))));

  // Bootstrap resampling implemented via multiplicity weights, composed
  // with any caller-provided weights. All random draws happen here, on
  // the single forest-level stream and in tree order — exactly the
  // sequence the serial implementation produced — so the parallel fits
  // below consume fixed inputs and the ensemble is independent of the
  // thread count.
  std::vector<std::vector<double>> boot_weights(options_.num_trees,
                                                std::vector<double>(n, 0.0));
  for (size_t t = 0; t < options_.num_trees; ++t) {
    std::vector<double>& weights = boot_weights[t];
    for (size_t i = 0; i < n; ++i) {
      weights[rng.UniformInt(n)] += 1.0;
    }
    if (!sample_weights.empty()) {
      for (size_t i = 0; i < n; ++i) weights[i] *= sample_weights[i];
    }
    double sum = 0.0;
    for (double w : weights) sum += w;
    if (sum <= 0.0) {
      // Degenerate draw (possible with sparse caller weights): fall back
      // to the caller weights / uniform.
      for (size_t i = 0; i < n; ++i) {
        weights[i] = sample_weights.empty() ? 1.0 : sample_weights[i];
      }
    }

    DecisionTreeOptions base = options_.base;
    base.max_features = max_features;
    base.seed = rng.Next();
    trees_.emplace_back(base);
  }

  // Tree fits are independent; each writes its own pre-constructed slot.
  // All fits share the presorted columns; each chunk reuses one builder's
  // scratch for its trees.
  std::vector<Status> fit_status(options_.num_trees);
  ParallelFor(0, options_.num_trees, 1,
              [&](size_t /*chunk*/, size_t lo, size_t hi) {
                TreeBuilder builder;
                for (size_t t = lo; t < hi; ++t) {
                  fit_status[t] =
                      trees_[t].Fit(columns, boot_weights[t], &builder);
                }
              });
  for (const Status& status : fit_status) {
    if (!status.ok()) {
      trees_.clear();
      return status;
    }
  }
  return Status::OK();
}

double RandomForest::PredictProba(std::span<const double> features) const {
  FALCC_CHECK(!trees_.empty(), "RandomForest::PredictProba before Fit");
  double votes = 0.0;
  for (const DecisionTree& tree : trees_) {
    votes += tree.Predict(features);
  }
  return votes / static_cast<double>(trees_.size());
}

void RandomForest::PredictProbaBatch(const Dataset& data,
                                     std::span<const size_t> rows,
                                     std::span<double> out) const {
  FALCC_CHECK(!trees_.empty(), "RandomForest::PredictProba before Fit");
  FALCC_CHECK(rows.size() == out.size(),
              "PredictProbaBatch: rows/out size mismatch");
  // Tree-major: one flat-array traversal of each tree over the whole
  // batch. Vote counts are small integers, so the accumulation order
  // cannot change the result.
  std::vector<double> votes(rows.size(), 0.0);
  std::vector<double> proba(rows.size());
  for (const DecisionTree& tree : trees_) {
    tree.PredictProbaBatch(data, rows, proba);
    for (size_t j = 0; j < rows.size(); ++j) {
      if (proba[j] >= 0.5) votes[j] += 1.0;
    }
  }
  for (size_t j = 0; j < rows.size(); ++j) {
    out[j] = votes[j] / static_cast<double>(trees_.size());
  }
}

bool RandomForest::LowerToFlat(FlatEnsembleBuilder* builder) const {
  if (trees_.empty()) return false;
  builder->SetKind(EnsembleKind::kForest);
  for (const DecisionTree& tree : trees_) {
    builder->AddTree(tree.nodes());
  }
  return true;
}

RandomForest RandomForest::FromParts(const RandomForestOptions& options,
                                     std::vector<DecisionTree> trees) {
  RandomForest model(options);
  model.trees_ = std::move(trees);
  return model;
}

std::unique_ptr<Classifier> RandomForest::Clone() const {
  return std::make_unique<RandomForest>(*this);
}

Status RandomForest::SerializePayload(std::ostream* out) const {
  io::PrepareStream(out);
  *out << options_.num_trees << ' ' << options_.max_features << ' '
       << options_.seed << '\n';
  *out << trees_.size() << '\n';
  for (const DecisionTree& tree : trees_) {
    FALCC_RETURN_IF_ERROR(tree.SerializePayload(out));
  }
  if (!*out) return Status::IOError("RandomForest serialization failed");
  return Status::OK();
}

Result<RandomForest> RandomForest::DeserializePayload(std::istream* in) {
  RandomForestOptions opt;
  FALCC_RETURN_IF_ERROR(io::Read(in, &opt.num_trees));
  FALCC_RETURN_IF_ERROR(io::Read(in, &opt.max_features));
  FALCC_RETURN_IF_ERROR(io::Read(in, &opt.seed));
  RandomForest model(opt);
  size_t num_trees = 0;
  FALCC_RETURN_IF_ERROR(io::Read(in, &num_trees));
  if (num_trees == 0 || num_trees > 1000000) {
    return Status::InvalidArgument("RandomForest: implausible tree count");
  }
  model.trees_.reserve(num_trees);
  for (size_t t = 0; t < num_trees; ++t) {
    Result<DecisionTree> tree = DecisionTree::DeserializePayload(in);
    if (!tree.ok()) return tree.status();
    model.trees_.push_back(std::move(tree).value());
  }
  return model;
}

Status RandomForest::ValidateForWidth(size_t num_features) const {
  for (const DecisionTree& tree : trees_) {
    FALCC_RETURN_IF_ERROR(tree.ValidateForWidth(num_features));
  }
  return Status::OK();
}

std::string RandomForest::Name() const {
  std::string name = "RandomForest(B=" + std::to_string(options_.num_trees);
  name += ",depth=" + std::to_string(options_.base.max_depth);
  name +=
      options_.base.criterion == SplitCriterion::kGini ? ",gini" : ",entropy";
  name += ")";
  return name;
}

}  // namespace falcc
