#include "ml/adaboost.h"

#include "ml/compiled_ensemble.h"

#include <cmath>

#include "data/feature_columns.h"
#include "ml/tree_builder.h"
#include "util/math.h"
#include "util/serialize.h"

namespace falcc {

Status AdaBoost::Fit(const Dataset& data,
                     std::span<const double> sample_weights) {
  if (data.num_rows() == 0) {
    return Status::InvalidArgument("AdaBoost: empty training data");
  }
  FALCC_RETURN_IF_ERROR(ValidateWeights(data, sample_weights));
  const FeatureColumns columns(data);
  return Fit(columns, sample_weights);
}

Status AdaBoost::Fit(const FeatureColumns& columns,
                     std::span<const double> sample_weights) {
  const Dataset& data = columns.data();
  if (data.num_rows() == 0) {
    return Status::InvalidArgument("AdaBoost: empty training data");
  }
  if (options_.num_estimators == 0) {
    return Status::InvalidArgument("AdaBoost: num_estimators must be > 0");
  }
  FALCC_RETURN_IF_ERROR(ValidateWeights(data, sample_weights));

  const size_t n = data.num_rows();
  std::vector<double> weights;
  if (sample_weights.empty()) {
    weights.assign(n, 1.0 / static_cast<double>(n));
  } else {
    weights.assign(sample_weights.begin(), sample_weights.end());
    double sum = 0.0;
    for (double w : weights) sum += w;
    for (double& w : weights) w /= sum;
  }

  trees_.clear();
  alphas_.clear();
  std::vector<int> predictions(n);
  std::vector<double> round_proba(n);
  std::vector<size_t> all_rows(n);
  for (size_t i = 0; i < n; ++i) all_rows[i] = i;
  TreeBuilder builder;  // scratch shared across all boosting rounds

  for (size_t t = 0; t < options_.num_estimators; ++t) {
    DecisionTreeOptions base = options_.base;
    base.seed = options_.base.seed + t;  // vary RF-style subsampling streams
    DecisionTree tree(base);
    FALCC_RETURN_IF_ERROR(tree.Fit(columns, weights, &builder));

    tree.PredictProbaBatch(data, all_rows, round_proba);
    double err = 0.0;
    for (size_t i = 0; i < n; ++i) {
      predictions[i] = round_proba[i] >= 0.5 ? 1 : 0;
      if (predictions[i] != data.Label(i)) err += weights[i];
    }

    if (err >= 0.5) {
      // Weak learner no better than chance: stop, but make sure the
      // ensemble is non-empty.
      if (trees_.empty()) {
        trees_.push_back(std::move(tree));
        alphas_.push_back(1.0);
      }
      break;
    }

    // Cap near-zero error so alpha stays finite.
    const double eps = std::max(err, 1e-10);
    const double alpha =
        options_.learning_rate * std::log((1.0 - eps) / eps);
    trees_.push_back(std::move(tree));
    alphas_.push_back(alpha);

    if (err <= 0.0) break;  // perfect fit: further rounds are no-ops

    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (predictions[i] != data.Label(i)) {
        weights[i] *= std::exp(alpha);
      }
      sum += weights[i];
    }
    for (double& w : weights) w /= sum;
  }

  return Status::OK();
}

double AdaBoost::PredictProba(std::span<const double> features) const {
  FALCC_CHECK(!trees_.empty(), "AdaBoost::PredictProba before Fit");
  double margin = 0.0;  // Σ alpha_t * (2 h_t - 1), normalized below
  double alpha_sum = 0.0;
  for (size_t t = 0; t < trees_.size(); ++t) {
    const int h = trees_[t].Predict(features);
    margin += alphas_[t] * (h == 1 ? 1.0 : -1.0);
    alpha_sum += std::fabs(alphas_[t]);
  }
  if (alpha_sum <= 0.0) return 0.5;
  // Map the normalized margin in [-1, 1] to a probability in [0, 1].
  return 0.5 * (margin / alpha_sum + 1.0);
}

void AdaBoost::PredictProbaBatch(const Dataset& data,
                                 std::span<const size_t> rows,
                                 std::span<double> out) const {
  FALCC_CHECK(!trees_.empty(), "AdaBoost::PredictProba before Fit");
  FALCC_CHECK(rows.size() == out.size(),
              "PredictProbaBatch: rows/out size mismatch");
  // Tree-major traversal: each tree's flat array is walked for the whole
  // batch while it is hot, and every row still accumulates its margin in
  // t-ascending order — the same floating-point order as the per-row
  // PredictProba loop, so results are bit-identical.
  std::vector<double> margins(rows.size(), 0.0);
  std::vector<double> proba(rows.size());
  double alpha_sum = 0.0;
  for (size_t t = 0; t < trees_.size(); ++t) {
    trees_[t].PredictProbaBatch(data, rows, proba);
    const double alpha = alphas_[t];
    for (size_t j = 0; j < rows.size(); ++j) {
      margins[j] += alpha * (proba[j] >= 0.5 ? 1.0 : -1.0);
    }
    alpha_sum += std::fabs(alpha);
  }
  if (alpha_sum <= 0.0) {
    for (size_t j = 0; j < rows.size(); ++j) out[j] = 0.5;
    return;
  }
  for (size_t j = 0; j < rows.size(); ++j) {
    out[j] = 0.5 * (margins[j] / alpha_sum + 1.0);
  }
}

bool AdaBoost::LowerToFlat(FlatEnsembleBuilder* builder) const {
  if (trees_.empty()) return false;
  builder->SetKind(EnsembleKind::kAdaBoost);
  // Boosting-round order: the compiled kernel accumulates margins (and
  // the precomputed alpha_sum) in exactly this sequence.
  for (size_t t = 0; t < trees_.size(); ++t) {
    builder->AddTree(trees_[t].nodes(), alphas_[t]);
  }
  return true;
}

AdaBoost AdaBoost::FromParts(const AdaBoostOptions& options,
                             std::vector<DecisionTree> trees,
                             std::vector<double> alphas) {
  AdaBoost model(options);
  model.trees_ = std::move(trees);
  model.alphas_ = std::move(alphas);
  return model;
}

std::unique_ptr<Classifier> AdaBoost::Clone() const {
  return std::make_unique<AdaBoost>(*this);
}

Status AdaBoost::SerializePayload(std::ostream* out) const {
  io::PrepareStream(out);
  *out << options_.num_estimators << ' ' << options_.learning_rate << '\n';
  io::WriteVector(out, alphas_);
  *out << trees_.size() << '\n';
  for (const DecisionTree& tree : trees_) {
    FALCC_RETURN_IF_ERROR(tree.SerializePayload(out));
  }
  if (!*out) return Status::IOError("AdaBoost serialization failed");
  return Status::OK();
}

Result<AdaBoost> AdaBoost::DeserializePayload(std::istream* in) {
  AdaBoostOptions opt;
  FALCC_RETURN_IF_ERROR(io::Read(in, &opt.num_estimators));
  FALCC_RETURN_IF_ERROR(io::Read(in, &opt.learning_rate));
  AdaBoost model(opt);
  FALCC_RETURN_IF_ERROR(io::ReadVector(in, &model.alphas_));
  for (const double alpha : model.alphas_) {
    if (!std::isfinite(alpha)) {
      return Status::InvalidArgument("AdaBoost: non-finite alpha");
    }
  }
  size_t num_trees = 0;
  FALCC_RETURN_IF_ERROR(io::Read(in, &num_trees));
  if (num_trees != model.alphas_.size()) {
    return Status::InvalidArgument("AdaBoost: alpha/tree count mismatch");
  }
  model.trees_.reserve(num_trees);
  for (size_t t = 0; t < num_trees; ++t) {
    Result<DecisionTree> tree = DecisionTree::DeserializePayload(in);
    if (!tree.ok()) return tree.status();
    model.trees_.push_back(std::move(tree).value());
  }
  return model;
}

Status AdaBoost::ValidateForWidth(size_t num_features) const {
  for (const DecisionTree& tree : trees_) {
    FALCC_RETURN_IF_ERROR(tree.ValidateForWidth(num_features));
  }
  return Status::OK();
}

std::string AdaBoost::Name() const {
  std::string name = "AdaBoost(T=" + std::to_string(options_.num_estimators);
  name += ",depth=" + std::to_string(options_.base.max_depth);
  name +=
      options_.base.criterion == SplitCriterion::kGini ? ",gini" : ",entropy";
  name += ")";
  return name;
}

}  // namespace falcc
