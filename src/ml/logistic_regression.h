// L2-regularized logistic regression trained by gradient descent.
//
// One of the "standard classifiers" used by the Decouple and FALCES
// baselines (the paper trains five off-the-shelf scikit-learn models for
// them), and the downstream learner applied on top of the representation
// baselines (LFR, iFair, Fair-SMOTE).

#ifndef FALCC_ML_LOGISTIC_REGRESSION_H_
#define FALCC_ML_LOGISTIC_REGRESSION_H_

#include "ml/classifier.h"

namespace falcc {

/// Logistic-regression hyperparameters.
struct LogisticRegressionOptions {
  size_t max_iterations = 200;
  double learning_rate = 0.5;
  double l2 = 1e-4;
  double tolerance = 1e-7;  ///< stop when the loss improves less than this
};

/// Linear model P(y=1|x) = sigmoid(w·x̃ + b) over internally standardized
/// features (standardization makes the fixed learning rate robust across
/// datasets with very different scales).
class LogisticRegression final : public Classifier {
 public:
  explicit LogisticRegression(const LogisticRegressionOptions& options = {})
      : options_(options) {}

  Status Fit(const Dataset& data,
             std::span<const double> sample_weights) override;
  using Classifier::Fit;
  double PredictProba(std::span<const double> features) const override;
  Status ValidateForWidth(size_t num_features) const override;
  std::unique_ptr<Classifier> Clone() const override;
  std::string Name() const override { return "LogisticRegression"; }
  std::string TypeTag() const override { return "logistic_regression"; }
  Status SerializePayload(std::ostream* out) const override;
  static Result<LogisticRegression> DeserializePayload(std::istream* in);

  /// Fitted coefficients in the standardized space (empty before Fit).
  const std::vector<double>& coefficients() const { return weights_; }

 private:
  LogisticRegressionOptions options_;
  std::vector<double> weights_;
  double bias_ = 0.0;
  std::vector<double> offsets_;  // per-feature standardization
  std::vector<double> scales_;
};

}  // namespace falcc

#endif  // FALCC_ML_LOGISTIC_REGRESSION_H_
