// Diverse model training (paper §3.3).
//
// Trains candidate ensembles over the paper's hyperparameter grid
// (number of estimators ∈ {5, 20}, tree depth ∈ {1, 7}, split criterion ∈
// {gini, entropy}; AdaBoost by default, Random Forest as the bagging
// alternative) and selects a pool of the requested size that maximizes
// non-pairwise entropy diversity on held-out data, greedily, starting
// from the most accurate candidate.

#ifndef FALCC_ML_GRID_SEARCH_H_
#define FALCC_ML_GRID_SEARCH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "ml/classifier.h"

namespace falcc {

/// Which ensemble family the grid instantiates.
enum class TrainerFamily { kAdaBoost, kRandomForest };

/// Options of the diverse trainer. Defaults are the paper's grid.
struct DiverseTrainerOptions {
  TrainerFamily family = TrainerFamily::kAdaBoost;
  size_t pool_size = 5;
  std::vector<size_t> estimator_grid = {5, 20};
  std::vector<size_t> depth_grid = {1, 7};
  bool try_gini = true;
  bool try_entropy = true;
  /// Candidates whose validation accuracy trails the best candidate by
  /// more than this are excluded before the diversity selection —
  /// diversity should come from competent models disagreeing, not from
  /// adding weak ones.
  double accuracy_tolerance = 0.04;
  /// Additionally train one ensemble per sensitive group on that group's
  /// partition of the training data (paper §3.1: split training "may
  /// improve accuracy and/or fairness"). Those models only apply to
  /// their group; see TrainDiverseSplitPool.
  bool split_by_group = false;
  /// Minimum partition size for a per-group model to be trained.
  size_t min_group_rows = 30;
  uint64_t seed = 1;
};

/// A trained pool plus its measured diversity.
struct DiversePool {
  std::vector<std::unique_ptr<Classifier>> models;
  double entropy = 0.0;  ///< non-pairwise entropy of the selected pool
};

/// Trains the grid on `train`, evaluates votes on `validation`, and
/// greedily selects `pool_size` models maximizing ensemble entropy.
/// Fails if the grid is empty or training data is unusable.
Result<DiversePool> TrainDiversePool(const Dataset& train,
                                     const Dataset& validation,
                                     const DiverseTrainerOptions& options = {});

/// The five "standard classifiers" the paper hands to Decouple/FALCES:
/// a depth-7 gini decision tree, a depth-4 entropy decision tree,
/// logistic regression, Gaussian naive Bayes, and 15-NN. All are trained
/// on `train`.
Result<std::vector<std::unique_ptr<Classifier>>> TrainStandardPool(
    const Dataset& train, uint64_t seed);

}  // namespace falcc

#endif  // FALCC_ML_GRID_SEARCH_H_
