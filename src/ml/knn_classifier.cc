#include "ml/knn_classifier.h"

#include <algorithm>
#include <cmath>

#include "util/math.h"
#include "util/serialize.h"

namespace falcc {

KnnClassifier::KnnClassifier(const KnnClassifier& other) = default;
KnnClassifier& KnnClassifier::operator=(const KnnClassifier& other) = default;

Status KnnClassifier::Fit(const Dataset& data,
                          std::span<const double> sample_weights) {
  if (data.num_rows() == 0) {
    return Status::InvalidArgument("kNN: empty training data");
  }
  if (options_.k == 0) {
    return Status::InvalidArgument("kNN: k must be positive");
  }
  FALCC_RETURN_IF_ERROR(ValidateWeights(data, sample_weights));

  const size_t d = data.num_features();
  offsets_.assign(d, 0.0);
  scales_.assign(d, 1.0);
  for (size_t j = 0; j < d; ++j) {
    const std::vector<double> col = data.Column(j);
    offsets_[j] = Mean(col);
    const double sd = StdDev(col);
    scales_[j] = sd > 0.0 ? 1.0 / sd : 1.0;
  }

  std::vector<std::vector<double>> points;
  points.reserve(data.num_rows());
  for (size_t i = 0; i < data.num_rows(); ++i) {
    points.push_back(Standardize(data.Row(i)));
  }
  Result<KdTree> tree = KdTree::Build(std::move(points));
  if (!tree.ok()) return tree.status();
  tree_ = std::move(tree).value();

  labels_ = data.labels();
  if (sample_weights.empty()) {
    vote_weights_.assign(data.num_rows(), 1.0);
  } else {
    vote_weights_.assign(sample_weights.begin(), sample_weights.end());
  }
  return Status::OK();
}

std::vector<double> KnnClassifier::Standardize(
    std::span<const double> features) const {
  std::vector<double> out(features.size());
  for (size_t j = 0; j < features.size(); ++j) {
    out[j] = (features[j] - offsets_[j]) * scales_[j];
  }
  return out;
}

double KnnClassifier::PredictProba(std::span<const double> features) const {
  FALCC_CHECK(tree_.has_value(), "kNN::PredictProba before Fit");
  const std::vector<double> q = Standardize(features);
  const std::vector<size_t> nn = tree_->Nearest(q, options_.k);
  double pos = 0.0, total = 0.0;
  for (size_t idx : nn) {
    total += vote_weights_[idx];
    if (labels_[idx] == 1) pos += vote_weights_[idx];
  }
  return total > 0.0 ? pos / total : 0.5;
}

std::unique_ptr<Classifier> KnnClassifier::Clone() const {
  return std::make_unique<KnnClassifier>(*this);
}

Status KnnClassifier::SerializePayload(std::ostream* out) const {
  if (!tree_.has_value()) {
    return Status::FailedPrecondition("kNN: serialize before Fit");
  }
  io::PrepareStream(out);
  *out << options_.k << '\n';
  io::WriteVector(out, offsets_);
  io::WriteVector(out, scales_);
  io::WriteVector(out, labels_);
  io::WriteVector(out, vote_weights_);
  const auto& points = tree_->points();
  *out << points.size() << ' ' << tree_->dimensions() << '\n';
  for (const auto& p : points) {
    for (size_t j = 0; j < p.size(); ++j) {
      *out << (j > 0 ? " " : "") << p[j];
    }
    *out << '\n';
  }
  if (!*out) return Status::IOError("kNN serialization failed");
  return Status::OK();
}

Result<KnnClassifier> KnnClassifier::DeserializePayload(std::istream* in) {
  KnnClassifierOptions opt;
  FALCC_RETURN_IF_ERROR(io::Read(in, &opt.k));
  KnnClassifier model(opt);
  FALCC_RETURN_IF_ERROR(io::ReadVector(in, &model.offsets_));
  FALCC_RETURN_IF_ERROR(io::ReadVector(in, &model.scales_));
  FALCC_RETURN_IF_ERROR(io::ReadVector(in, &model.labels_));
  FALCC_RETURN_IF_ERROR(io::ReadVector(in, &model.vote_weights_));
  size_t n = 0, d = 0;
  FALCC_RETURN_IF_ERROR(io::Read(in, &n));
  FALCC_RETURN_IF_ERROR(io::Read(in, &d));
  if (n != model.labels_.size() || n != model.vote_weights_.size() ||
      d != model.offsets_.size() || n > 100000000) {
    return Status::InvalidArgument("kNN: inconsistent serialized sizes");
  }
  if (n == 0 || d == 0) {
    return Status::InvalidArgument("kNN: empty serialized model");
  }
  if (model.scales_.size() != model.offsets_.size()) {
    return Status::InvalidArgument("kNN: offset/scale width mismatch");
  }
  for (size_t j = 0; j < d; ++j) {
    if (!std::isfinite(model.offsets_[j]) || !std::isfinite(model.scales_[j])) {
      return Status::InvalidArgument("kNN: non-finite standardization");
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (model.labels_[i] != 0 && model.labels_[i] != 1) {
      return Status::InvalidArgument("kNN: non-binary label");
    }
    if (!std::isfinite(model.vote_weights_[i]) ||
        model.vote_weights_[i] < 0.0) {
      return Status::InvalidArgument("kNN: invalid vote weight");
    }
  }
  // Grow row by row so a corrupted point count over a truncated stream
  // fails at the first missing token instead of allocating n*d up front.
  std::vector<std::vector<double>> points;
  points.reserve(std::min<size_t>(n, 4096));
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> p(d);
    for (double& v : p) {
      FALCC_RETURN_IF_ERROR(io::Read(in, &v));
      if (!std::isfinite(v)) {
        return Status::InvalidArgument("kNN: non-finite point");
      }
    }
    points.push_back(std::move(p));
  }
  Result<KdTree> tree = KdTree::Build(std::move(points));
  if (!tree.ok()) return tree.status();
  model.tree_ = std::move(tree).value();
  return model;
}

Status KnnClassifier::ValidateForWidth(size_t num_features) const {
  if (offsets_.size() != num_features) {
    return Status::InvalidArgument(
        "kNN: fitted for " + std::to_string(offsets_.size()) +
        " features but samples have " + std::to_string(num_features));
  }
  return Status::OK();
}

}  // namespace falcc
