#include "ml/classifier.h"

#include <ostream>

#include "util/parallel.h"

namespace falcc {

namespace {
// Rows per batch-inference task: predictions are cheap, so chunks are
// sizable to keep scheduling overhead negligible.
constexpr size_t kPredictGrain = 256;
}  // namespace

Status Classifier::SerializePayload(std::ostream* /*out*/) const {
  return Status::FailedPrecondition("serialization not supported for " +
                                    Name());
}

std::vector<int> PredictAll(const Classifier& model, const Dataset& data) {
  std::vector<int> out(data.num_rows());
  ParallelFor(0, data.num_rows(), kPredictGrain,
              [&](size_t /*chunk*/, size_t lo, size_t hi) {
                for (size_t i = lo; i < hi; ++i) {
                  out[i] = model.Predict(data.Row(i));
                }
              });
  return out;
}

double Accuracy(const Classifier& model, const Dataset& data) {
  if (data.num_rows() == 0) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < data.num_rows(); ++i) {
    if (model.Predict(data.Row(i)) == data.Label(i)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.num_rows());
}

Status ValidateWeights(const Dataset& data, std::span<const double> weights) {
  if (weights.empty()) return Status::OK();
  if (weights.size() != data.num_rows()) {
    return Status::InvalidArgument("sample_weights size != num_rows");
  }
  double sum = 0.0;
  for (double w : weights) {
    if (w < 0.0) return Status::InvalidArgument("negative sample weight");
    sum += w;
  }
  if (sum <= 0.0) {
    return Status::InvalidArgument("sample weights sum to zero");
  }
  return Status::OK();
}

}  // namespace falcc
