#include "ml/classifier.h"

#include <ostream>

namespace falcc {

Status Classifier::SerializePayload(std::ostream* /*out*/) const {
  return Status::FailedPrecondition("serialization not supported for " +
                                    Name());
}

std::vector<int> PredictAll(const Classifier& model, const Dataset& data) {
  std::vector<int> out(data.num_rows());
  for (size_t i = 0; i < data.num_rows(); ++i) {
    out[i] = model.Predict(data.Row(i));
  }
  return out;
}

double Accuracy(const Classifier& model, const Dataset& data) {
  if (data.num_rows() == 0) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < data.num_rows(); ++i) {
    if (model.Predict(data.Row(i)) == data.Label(i)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.num_rows());
}

Status ValidateWeights(const Dataset& data, std::span<const double> weights) {
  if (weights.empty()) return Status::OK();
  if (weights.size() != data.num_rows()) {
    return Status::InvalidArgument("sample_weights size != num_rows");
  }
  double sum = 0.0;
  for (double w : weights) {
    if (w < 0.0) return Status::InvalidArgument("negative sample weight");
    sum += w;
  }
  if (sum <= 0.0) {
    return Status::InvalidArgument("sample weights sum to zero");
  }
  return Status::OK();
}

}  // namespace falcc
