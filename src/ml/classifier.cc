#include "ml/classifier.h"

#include <ostream>

#include "util/parallel.h"

namespace falcc {

namespace {
// Rows per batch-inference task: predictions are cheap, so chunks are
// sizable to keep scheduling overhead negligible.
constexpr size_t kPredictGrain = 256;
}  // namespace

Status Classifier::SerializePayload(std::ostream* /*out*/) const {
  return Status::FailedPrecondition("serialization not supported for " +
                                    Name());
}

void Classifier::PredictProbaBatch(const Dataset& data,
                                   std::span<const size_t> rows,
                                   std::span<double> out) const {
  FALCC_CHECK(rows.size() == out.size(),
              "PredictProbaBatch: rows/out size mismatch");
  for (size_t j = 0; j < rows.size(); ++j) {
    out[j] = PredictProba(data.Row(rows[j]));
  }
}

std::vector<int> PredictAll(const Classifier& model, const Dataset& data) {
  const size_t n = data.num_rows();
  std::vector<int> out(n);
  std::vector<size_t> rows(n);
  for (size_t i = 0; i < n; ++i) rows[i] = i;
  ParallelFor(0, n, kPredictGrain,
              [&](size_t /*chunk*/, size_t lo, size_t hi) {
                double proba[kPredictGrain];
                const std::span<double> chunk_out(proba, hi - lo);
                model.PredictProbaBatch(
                    data, std::span<const size_t>(rows).subspan(lo, hi - lo),
                    chunk_out);
                for (size_t i = lo; i < hi; ++i) {
                  out[i] = chunk_out[i - lo] >= 0.5 ? 1 : 0;
                }
              });
  return out;
}

double Accuracy(const Classifier& model, const Dataset& data) {
  if (data.num_rows() == 0) return 0.0;
  const std::vector<int> predictions = PredictAll(model, data);
  size_t correct = 0;
  for (size_t i = 0; i < data.num_rows(); ++i) {
    if (predictions[i] == data.Label(i)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.num_rows());
}

Status ValidateWeights(const Dataset& data, std::span<const double> weights) {
  if (weights.empty()) return Status::OK();
  if (weights.size() != data.num_rows()) {
    return Status::InvalidArgument("sample_weights size != num_rows");
  }
  double sum = 0.0;
  for (double w : weights) {
    if (w < 0.0) return Status::InvalidArgument("negative sample weight");
    sum += w;
  }
  if (sum <= 0.0) {
    return Status::InvalidArgument("sample weights sum to zero");
  }
  return Status::OK();
}

}  // namespace falcc
