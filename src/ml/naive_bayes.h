// Gaussian naive Bayes. Another of the standard classifiers for the
// Decouple/FALCES pools; also the model family of Calders & Verwer's
// classic fair-ensemble work the paper discusses.

#ifndef FALCC_ML_NAIVE_BAYES_H_
#define FALCC_ML_NAIVE_BAYES_H_

#include "ml/classifier.h"

namespace falcc {

/// Gaussian naive Bayes with weighted sufficient statistics and variance
/// smoothing.
class GaussianNaiveBayes final : public Classifier {
 public:
  GaussianNaiveBayes() = default;

  Status Fit(const Dataset& data,
             std::span<const double> sample_weights) override;
  using Classifier::Fit;
  double PredictProba(std::span<const double> features) const override;
  Status ValidateForWidth(size_t num_features) const override;
  std::unique_ptr<Classifier> Clone() const override;
  std::string Name() const override { return "GaussianNB"; }
  std::string TypeTag() const override { return "gaussian_nb"; }
  Status SerializePayload(std::ostream* out) const override;
  static Result<GaussianNaiveBayes> DeserializePayload(std::istream* in);

 private:
  // Per class c in {0,1}: log prior and per-feature mean/variance.
  double log_prior_[2] = {0.0, 0.0};
  std::vector<double> means_[2];
  std::vector<double> vars_[2];
};

}  // namespace falcc

#endif  // FALCC_ML_NAIVE_BAYES_H_
