#include "ml/grid_search.h"

#include <algorithm>

#include "data/feature_columns.h"
#include "fairness/diversity.h"
#include "ml/adaboost.h"
#include "ml/decision_tree.h"
#include "ml/knn_classifier.h"
#include "ml/logistic_regression.h"
#include "ml/naive_bayes.h"
#include "ml/random_forest.h"
#include "util/parallel.h"

namespace falcc {

namespace {

// Builds and fits one grid cell against the shared presorted column
// cache: the per-dataset feature sort is paid once for the whole grid,
// not once per cell (or worse, once per boosting round).
Result<std::unique_ptr<Classifier>> TrainCandidate(
    const FeatureColumns& columns, TrainerFamily family, size_t estimators,
    size_t depth, SplitCriterion criterion, uint64_t seed) {
  DecisionTreeOptions base;
  base.max_depth = depth;
  base.criterion = criterion;
  base.seed = seed;
  if (family == TrainerFamily::kAdaBoost) {
    AdaBoostOptions opt;
    opt.num_estimators = estimators;
    opt.base = base;
    auto model = std::make_unique<AdaBoost>(opt);
    FALCC_RETURN_IF_ERROR(model->Fit(columns));
    return std::unique_ptr<Classifier>(std::move(model));
  }
  RandomForestOptions opt;
  opt.num_trees = estimators;
  opt.base = base;
  opt.seed = seed;
  auto model = std::make_unique<RandomForest>(opt);
  FALCC_RETURN_IF_ERROR(model->Fit(columns));
  return std::unique_ptr<Classifier>(std::move(model));
}

}  // namespace

Result<DiversePool> TrainDiversePool(const Dataset& train,
                                     const Dataset& validation,
                                     const DiverseTrainerOptions& options) {
  if (options.pool_size == 0) {
    return Status::InvalidArgument("pool_size must be positive");
  }
  std::vector<SplitCriterion> criteria;
  if (options.try_gini) criteria.push_back(SplitCriterion::kGini);
  if (options.try_entropy) criteria.push_back(SplitCriterion::kEntropy);
  if (criteria.empty() || options.estimator_grid.empty() ||
      options.depth_grid.empty()) {
    return Status::InvalidArgument("hyperparameter grid is empty");
  }
  if (validation.num_rows() == 0) {
    return Status::InvalidArgument("validation data is empty");
  }

  // Enumerate the grid up front: every candidate gets a seed derived from
  // its grid position (options.seed + flat index), so training order —
  // and thus thread count — cannot affect any candidate's randomness.
  struct GridPoint {
    size_t estimators;
    size_t depth;
    SplitCriterion criterion;
    uint64_t seed;
  };
  std::vector<GridPoint> grid;
  uint64_t seed = options.seed;
  for (size_t estimators : options.estimator_grid) {
    for (size_t depth : options.depth_grid) {
      for (SplitCriterion criterion : criteria) {
        grid.push_back({estimators, depth, criterion, seed++});
      }
    }
  }

  // Train every grid configuration and collect validation votes. Fits are
  // independent; results land in slots indexed by grid position. All
  // cells share one presorted column cache of the training data.
  const FeatureColumns columns(train);
  std::vector<std::unique_ptr<Classifier>> candidates(grid.size());
  std::vector<std::vector<int>> votes(grid.size());
  std::vector<double> accuracies(grid.size(), 0.0);
  std::vector<Status> fit_status(grid.size());
  ParallelFor(0, grid.size(), 1,
              [&](size_t /*chunk*/, size_t lo, size_t hi) {
                for (size_t i = lo; i < hi; ++i) {
                  const GridPoint& p = grid[i];
                  Result<std::unique_ptr<Classifier>> model = TrainCandidate(
                      columns, options.family, p.estimators, p.depth,
                      p.criterion, p.seed);
                  fit_status[i] = model.status();
                  if (!fit_status[i].ok()) continue;
                  candidates[i] = std::move(model).value();
                  votes[i] = PredictAll(*candidates[i], validation);
                  accuracies[i] = Accuracy(*candidates[i], validation);
                }
              });
  for (const Status& status : fit_status) {
    FALCC_RETURN_IF_ERROR(status);
  }

  // Greedy forward selection maximizing pool entropy, seeded with the
  // most accurate candidate (quality anchor, then diversify around it).
  // Candidates far below the anchor's accuracy are excluded up front.
  const size_t target =
      std::min(options.pool_size, candidates.size());
  std::vector<size_t> selected;
  std::vector<bool> used(candidates.size(), false);
  {
    size_t best = 0;
    for (size_t i = 1; i < candidates.size(); ++i) {
      if (accuracies[i] > accuracies[best]) best = i;
    }
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (accuracies[i] + options.accuracy_tolerance < accuracies[best]) {
        used[i] = true;  // pruned: never selected
      }
    }
    selected.push_back(best);
    used[best] = true;
  }
  while (selected.size() < target) {
    double best_entropy = -1.0;
    size_t best_idx = candidates.size();
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (used[i]) continue;
      std::vector<std::vector<int>> trial;
      trial.reserve(selected.size() + 1);
      for (size_t s : selected) trial.push_back(votes[s]);
      trial.push_back(votes[i]);
      Result<double> entropy = EnsembleEntropy(trial);
      if (!entropy.ok()) return entropy.status();
      // Ties broken toward higher accuracy.
      if (entropy.value() > best_entropy + 1e-12 ||
          (entropy.value() > best_entropy - 1e-12 &&
           best_idx < candidates.size() &&
           accuracies[i] > accuracies[best_idx])) {
        best_entropy = entropy.value();
        best_idx = i;
      }
    }
    if (best_idx >= candidates.size()) break;
    selected.push_back(best_idx);
    used[best_idx] = true;
  }

  // Pruned candidates are never backfilled: a pool smaller than
  // pool_size made of competent models beats a full pool padded with
  // weak ones (the per-cluster assessment would otherwise trade real
  // accuracy for validation-noise fairness).

  DiversePool pool;
  std::vector<std::vector<int>> selected_votes;
  for (size_t s : selected) {
    pool.models.push_back(std::move(candidates[s]));
    selected_votes.push_back(std::move(votes[s]));
  }
  Result<double> entropy = EnsembleEntropy(selected_votes);
  if (!entropy.ok()) return entropy.status();
  pool.entropy = entropy.value();
  return pool;
}

Result<std::vector<std::unique_ptr<Classifier>>> TrainStandardPool(
    const Dataset& train, uint64_t seed) {
  std::vector<std::unique_ptr<Classifier>> pool;

  // The two trees share one presorted column cache; the remaining
  // classifiers do not sort and fit on the dataset directly.
  const FeatureColumns columns(train);

  DecisionTreeOptions dt1;
  dt1.max_depth = 7;
  dt1.criterion = SplitCriterion::kGini;
  dt1.seed = seed;
  auto tree1 = std::make_unique<DecisionTree>(dt1);
  FALCC_RETURN_IF_ERROR(tree1->Fit(columns));
  pool.push_back(std::move(tree1));

  DecisionTreeOptions dt2;
  dt2.max_depth = 4;
  dt2.criterion = SplitCriterion::kEntropy;
  dt2.seed = seed + 1;
  auto tree2 = std::make_unique<DecisionTree>(dt2);
  FALCC_RETURN_IF_ERROR(tree2->Fit(columns));
  pool.push_back(std::move(tree2));

  pool.push_back(std::make_unique<LogisticRegression>());
  pool.push_back(std::make_unique<GaussianNaiveBayes>());
  pool.push_back(std::make_unique<KnnClassifier>());

  for (size_t m = 2; m < pool.size(); ++m) {
    FALCC_RETURN_IF_ERROR(pool[m]->Fit(train));
  }
  return pool;
}

}  // namespace falcc
