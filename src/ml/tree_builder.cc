#include "ml/tree_builder.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace falcc {

namespace {

// Impurity of a weighted binary class distribution (w1 positives out of
// total weight w). Identical to the seed trainer's.
double Impurity(double w1, double w, SplitCriterion criterion) {
  if (w <= 0.0) return 0.0;
  const double p = w1 / w;
  if (criterion == SplitCriterion::kGini) {
    return 2.0 * p * (1.0 - p);
  }
  double h = 0.0;
  if (p > 0.0) h -= p * std::log2(p);
  if (p < 1.0) h -= (1.0 - p) * std::log2(1.0 - p);
  return h;
}

}  // namespace

Status TreeBuilder::Build(const FeatureColumns& columns,
                          std::span<const double> weights,
                          const DecisionTreeOptions& options,
                          std::vector<TreeNode>* nodes, size_t* max_depth) {
  const Dataset& data = columns.data();
  if (data.num_rows() == 0) {
    return Status::InvalidArgument("DecisionTree: empty training data");
  }
  FALCC_CHECK(weights.size() == data.num_rows(),
              "TreeBuilder: one weight per row required");

  columns_ = &columns;
  data_ = &data;
  weights_ = weights;
  options_ = &options;
  nodes_ = nodes;
  depth_ = 0;
  rng_state_ = options.seed;
  num_rows_ = data.num_rows();
  num_features_ = data.num_features();

  // Working copies of the presorted lists — the only O(d·n) copy per fit;
  // recursion partitions them in place.
  lists_.resize(num_features_ * num_rows_);
  list_values_.resize(num_features_ * num_rows_);
  for (size_t f = 0; f < num_features_; ++f) {
    const auto rows = columns.SortedRows(f);
    const auto values = columns.SortedValues(f);
    std::copy(rows.begin(), rows.end(), lists_.begin() + f * num_rows_);
    std::copy(values.begin(), values.end(),
              list_values_.begin() + f * num_rows_);
  }
  indices_.resize(num_rows_);
  for (size_t i = 0; i < num_rows_; ++i) indices_[i] = i;
  goes_left_.resize(num_rows_);
  scratch_rows_.reserve(num_rows_);
  scratch_values_.reserve(num_rows_);

  nodes_->clear();
  nodes_->reserve(64);
  BuildNode(0, num_rows_, 0);
  *max_depth = depth_;
  return Status::OK();
}

int TreeBuilder::BuildNode(size_t begin, size_t end, size_t depth) {
  const int node_id = static_cast<int>(nodes_->size());
  nodes_->emplace_back();
  depth_ = std::max(depth_, depth);

  const Dataset& data = *data_;
  const DecisionTreeOptions& options = *options_;

  // Weighted class counts over this node's rows, accumulated over the
  // seed-order bookkeeping array so the sums round identically to the
  // seed trainer's.
  double w_total = 0.0, w_pos = 0.0;
  for (size_t i = begin; i < end; ++i) {
    const size_t row = indices_[i];
    w_total += weights_[row];
    if (data.Label(row) == 1) w_pos += weights_[row];
  }
  (*nodes_)[node_id].proba = w_total > 0.0 ? w_pos / w_total : 0.5;

  const size_t n = end - begin;
  const bool pure = w_pos <= 0.0 || w_pos >= w_total;
  if (depth >= options.max_depth || n < options.min_samples_split || pure ||
      w_total <= 0.0) {
    return node_id;
  }

  // Candidate features: all, or a random subset (Random Forest mode).
  // Same RNG stream as the seed trainer: one Rng per splitting node,
  // advanced in preorder.
  candidates_.resize(num_features_);
  for (size_t f = 0; f < num_features_; ++f) candidates_[f] = f;
  if (options.max_features > 0 && options.max_features < num_features_) {
    Rng rng(rng_state_);
    rng.Shuffle(&candidates_);
    rng_state_ = rng.Next();
    candidates_.resize(options.max_features);
  }

  const double parent_impurity = Impurity(w_pos, w_total, options.criterion);
  double best_gain = 1e-12;  // require strictly positive gain
  int best_feature = -1;
  double best_threshold = 0.0;

  // Threshold scan per candidate: the node's segment of each presorted
  // column replaces the seed's per-feature sort. The prefix sums, the
  // equal-value skip, the leaf-size guards, and the strictly-positive
  // first-candidate-wins gain rule are the seed's, term for term.
  for (const size_t f : candidates_) {
    const uint32_t* rows = lists_.data() + f * num_rows_ + begin;
    const double* values = list_values_.data() + f * num_rows_ + begin;
    double wl = 0.0, wl_pos = 0.0;
    for (size_t i = 0; i + 1 < n; ++i) {
      const uint32_t row = rows[i];
      const double w = weights_[row];
      wl += w;
      if (data.Label(row) == 1) wl_pos += w;
      const double v = values[i];
      const double v_next = values[i + 1];
      if (v_next <= v) continue;  // no valid threshold between equal values
      if (i + 1 < options.min_samples_leaf ||
          n - i - 1 < options.min_samples_leaf) {
        continue;
      }
      const double wr = w_total - wl;
      const double wr_pos = w_pos - wl_pos;
      if (wl <= 0.0 || wr <= 0.0) continue;
      const double child_impurity =
          (wl * Impurity(wl_pos, wl, options.criterion) +
           wr * Impurity(wr_pos, wr, options.criterion)) /
          w_total;
      const double gain = parent_impurity - child_impurity;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = (v + v_next) / 2.0;
      }
    }
  }

  if (best_feature < 0) return node_id;  // no useful split found

  // Partition the bookkeeping array exactly as the seed did. This also
  // decides each row's side once — a midpoint between adjacent doubles
  // can round onto one of them, so the predicate, not the scan position,
  // is authoritative.
  const size_t best_f = static_cast<size_t>(best_feature);
  const double threshold = best_threshold;
  const auto mid_it = std::partition(
      indices_.begin() + begin, indices_.begin() + end, [&](size_t row) {
        return data.Feature(row, best_f) <= threshold;
      });
  const size_t mid = static_cast<size_t>(mid_it - indices_.begin());
  if (mid == begin || mid == end) return node_id;  // degenerate partition

  // Stable-partition every feature's presorted segment on the chosen
  // split: value order survives into the children, so no sort ever
  // happens below the root.
  for (size_t i = begin; i < mid; ++i) goes_left_[indices_[i]] = 1;
  for (size_t i = mid; i < end; ++i) goes_left_[indices_[i]] = 0;
  for (size_t f = 0; f < num_features_; ++f) {
    uint32_t* rows = lists_.data() + f * num_rows_;
    double* values = list_values_.data() + f * num_rows_;
    scratch_rows_.clear();
    scratch_values_.clear();
    size_t out = begin;
    for (size_t i = begin; i < end; ++i) {
      const uint32_t row = rows[i];
      if (goes_left_[row]) {
        rows[out] = row;
        values[out] = values[i];
        ++out;
      } else {
        scratch_rows_.push_back(row);
        scratch_values_.push_back(values[i]);
      }
    }
    std::copy(scratch_rows_.begin(), scratch_rows_.end(), rows + out);
    std::copy(scratch_values_.begin(), scratch_values_.end(), values + out);
  }

  // nodes_ may reallocate in recursion; write fields via node_id after.
  const int left = BuildNode(begin, mid, depth + 1);
  const int right = BuildNode(mid, end, depth + 1);
  (*nodes_)[node_id].feature = best_feature;
  (*nodes_)[node_id].threshold = best_threshold;
  (*nodes_)[node_id].left = left;
  (*nodes_)[node_id].right = right;
  return node_id;
}

}  // namespace falcc
