#include "ml/compiled_ensemble.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace falcc {

namespace {

// Rows per traversal block: enough independent walks to hide the
// dependent-load latency of `children[2i + b]`, small enough that the
// row pointers, node cursors, and accumulators stay in registers / L1.
constexpr size_t kRowBlock = 32;

using FlatParts = CompiledCombo::FlatParts;

bool SameDoubleBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

template <typename T>
bool SameSpanBits(std::span<const T> a, std::span<const T> b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) == 0);
}

// Advances every row's node cursor until it rests on a leaf (at most
// `tree.steps` levels). Each step is one gather plus a branchless child
// select — `v > threshold` indexes the children pair, which decides
// exactly like the interpreted `v <= threshold ? left : right`. Leaves
// self-loop, so a converged row spins in place; children sit strictly
// after their parent, so `next != i` iff some row is still descending,
// and the level loop stops as soon as the whole block has converged
// (real trees are unbalanced — most blocks finish well before the
// worst-case depth). The exit cannot change where any cursor lands.
inline void WalkTree(const FlatParts& parts, const TreeRef& tree,
                     const double* const* row, size_t n, uint32_t* node) {
  const int32_t* feature = parts.feature.data();
  const double* threshold = parts.threshold.data();
  const uint32_t* children = parts.children.data();
  for (size_t r = 0; r < n; ++r) node[r] = tree.root;
  for (uint32_t step = 0; step < tree.steps; ++step) {
    uint32_t moved = 0;
    for (size_t r = 0; r < n; ++r) {
      const uint32_t i = node[r];
      const double v = row[r][feature[i]];
      const uint32_t next =
          children[2 * i + static_cast<uint32_t>(v > threshold[i])];
      moved |= next ^ i;
      node[r] = next;
    }
    if (moved == 0) break;
  }
}

// The shared fused kernel: walks every tree of one entry over `rows` in
// blocks and combines leaves per `kind`. Accumulation mirrors the
// interpreted batch paths operation for operation (margins in boosting-
// round order against a precomputed alpha_sum; forest votes divided by
// the tree count), so the output is bit-identical to PredictProbaBatch.
void PredictFlat(const FlatParts& parts, std::span<const TreeRef> trees,
                 std::span<const double> alphas, EnsembleKind kind,
                 double alpha_sum, const Dataset& data,
                 std::span<const size_t> rows, std::span<double> out) {
  const double* leaf = parts.leaf_proba.data();
  const double num_trees = static_cast<double>(trees.size());
  for (size_t begin = 0; begin < rows.size(); begin += kRowBlock) {
    const size_t n = std::min(kRowBlock, rows.size() - begin);
    const double* row[kRowBlock];
    double acc[kRowBlock];
    uint32_t node[kRowBlock];
    for (size_t r = 0; r < n; ++r) {
      row[r] = data.Row(rows[begin + r]).data();
      acc[r] = 0.0;
    }
    for (size_t t = 0; t < trees.size(); ++t) {
      WalkTree(parts, trees[t], row, n, node);
      switch (kind) {
        case EnsembleKind::kTree:
          for (size_t r = 0; r < n; ++r) acc[r] = leaf[node[r]];
          break;
        case EnsembleKind::kAdaBoost: {
          const double alpha = alphas[t];
          for (size_t r = 0; r < n; ++r) {
            acc[r] += alpha * (leaf[node[r]] >= 0.5 ? 1.0 : -1.0);
          }
          break;
        }
        case EnsembleKind::kForest:
          for (size_t r = 0; r < n; ++r) {
            if (leaf[node[r]] >= 0.5) acc[r] += 1.0;
          }
          break;
      }
    }
    switch (kind) {
      case EnsembleKind::kTree:
        for (size_t r = 0; r < n; ++r) out[begin + r] = acc[r];
        break;
      case EnsembleKind::kAdaBoost:
        if (alpha_sum <= 0.0) {
          for (size_t r = 0; r < n; ++r) out[begin + r] = 0.5;
        } else {
          for (size_t r = 0; r < n; ++r) {
            out[begin + r] = 0.5 * (acc[r] / alpha_sum + 1.0);
          }
        }
        break;
      case EnsembleKind::kForest:
        for (size_t r = 0; r < n; ++r) out[begin + r] = acc[r] / num_trees;
        break;
    }
  }
}

// |alpha| sum over one entry's trees, in round order — the same
// floating-point sequence the interpreted AdaBoost batch accumulates, so
// precomputing it at compile time cannot change a probability bit.
double AlphaSum(std::span<const double> alphas) {
  double sum = 0.0;
  for (double alpha : alphas) sum += std::fabs(alpha);
  return sum;
}

}  // namespace

void FlatEnsembleBuilder::SetKind(EnsembleKind kind) {
  if (!status_.ok()) return;
  if (has_kind_) {
    status_ = Status::Internal("FlatEnsembleBuilder: SetKind called twice");
    return;
  }
  kind_ = kind;
  has_kind_ = true;
}

void FlatEnsembleBuilder::AddTree(std::span<const TreeNode> nodes,
                                  double alpha) {
  if (!status_.ok()) return;
  if (!has_kind_) {
    status_ = Status::Internal("FlatEnsembleBuilder: AddTree before SetKind");
    return;
  }
  if (nodes.empty()) {
    status_ = Status::Internal("FlatEnsembleBuilder: empty tree");
    return;
  }
  const size_t base = table_->num_nodes();
  if (base + nodes.size() > (1u << 30)) {
    status_ = Status::Internal("FlatEnsembleBuilder: node table overflow");
    return;
  }

  // Recompute the walk length from the node structure — a serialized
  // depth field is never trusted. Children sit strictly after their
  // parent (the shape deserialization enforces), so one forward pass
  // sees every parent before its children; taking the max over incoming
  // edges makes the walk long enough for every root-to-leaf path even if
  // a corrupt-but-accepted artifact shares subtrees.
  depth_scratch_.assign(nodes.size(), 0);
  uint32_t steps = 0;
  const int n = static_cast<int>(nodes.size());
  for (int i = 0; i < n; ++i) {
    const TreeNode& node = nodes[static_cast<size_t>(i)];
    if (node.feature >= 0) {
      if (node.left <= i || node.left >= n || node.right <= i ||
          node.right >= n) {
        status_ = Status::Internal(
            "FlatEnsembleBuilder: tree children not strictly forward");
        return;
      }
      const uint32_t child_depth = depth_scratch_[static_cast<size_t>(i)] + 1;
      auto& left = depth_scratch_[static_cast<size_t>(node.left)];
      auto& right = depth_scratch_[static_cast<size_t>(node.right)];
      left = std::max(left, child_depth);
      right = std::max(right, child_depth);
    } else {
      steps = std::max(steps, depth_scratch_[static_cast<size_t>(i)]);
    }
  }

  table_->feature.reserve(base + nodes.size());
  table_->threshold.reserve(base + nodes.size());
  table_->children.reserve(2 * (base + nodes.size()));
  table_->leaf_proba.reserve(base + nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    const TreeNode& node = nodes[i];
    const uint32_t self = static_cast<uint32_t>(base + i);
    if (node.feature >= 0) {
      table_->feature.push_back(node.feature);
      table_->threshold.push_back(node.threshold);
      table_->children.push_back(static_cast<uint32_t>(base) +
                                 static_cast<uint32_t>(node.left));
      table_->children.push_back(static_cast<uint32_t>(base) +
                                 static_cast<uint32_t>(node.right));
      table_->leaf_proba.push_back(0.0);
    } else {
      // Leaf: feature 0 keeps the gather in bounds, the self-loop makes
      // the fixed-length walk idempotent once the leaf is reached.
      table_->feature.push_back(0);
      table_->threshold.push_back(0.0);
      table_->children.push_back(self);
      table_->children.push_back(self);
      table_->leaf_proba.push_back(node.proba);
    }
  }
  trees_->push_back(TreeRef{static_cast<uint32_t>(base), steps});
  alphas_->push_back(alpha);
  ++num_trees_added_;
}

Result<CompiledEnsemble> CompiledEnsemble::Compile(const Classifier& model) {
  CompiledEnsemble compiled;
  FlatEnsembleBuilder builder(&compiled.table_, &compiled.trees_,
                              &compiled.alphas_);
  if (!model.LowerToFlat(&builder)) {
    return Status::FailedPrecondition("CompiledEnsemble: " + model.Name() +
                                      " does not lower to a flat ensemble");
  }
  FALCC_RETURN_IF_ERROR(builder.status());
  if (!builder.has_kind() || compiled.trees_.empty()) {
    return Status::Internal("CompiledEnsemble: lowering produced no trees");
  }
  compiled.kind_ = builder.kind();
  compiled.alpha_sum_ = AlphaSum(compiled.alphas_);
  return compiled;
}

void CompiledEnsemble::PredictProbaBatch(const Dataset& data,
                                         std::span<const size_t> rows,
                                         std::span<double> out) const {
  FALCC_CHECK(rows.size() == out.size(),
              "CompiledEnsemble: rows/out size mismatch");
  FlatParts parts;
  parts.feature = table_.feature;
  parts.threshold = table_.threshold;
  parts.children = table_.children;
  parts.leaf_proba = table_.leaf_proba;
  parts.trees = trees_;
  parts.alphas = alphas_;
  PredictFlat(parts, trees_, alphas_, kind_, alpha_sum_, data, rows, out);
}

void CompiledCombo::BindOwned() {
  parts_.feature = table_.feature;
  parts_.threshold = table_.threshold;
  parts_.children = table_.children;
  parts_.leaf_proba = table_.leaf_proba;
  parts_.trees = trees_;
  parts_.alphas = alphas_;
}

Result<std::shared_ptr<const CompiledCombo>> CompiledCombo::Compile(
    const ModelPool& pool, const ModelCombination& combo) {
  std::shared_ptr<CompiledCombo> compiled(new CompiledCombo());
  compiled->groups_.resize(combo.size());
  // Groups served by the same pool model share one lowered entry — the
  // common case when a cluster's best combination repeats a model.
  std::vector<int> entry_of_model(pool.size(), -1);
  for (size_t g = 0; g < combo.size(); ++g) {
    const size_t m = combo[g];
    if (m >= pool.size()) {
      return Status::InvalidArgument("CompiledCombo: model index " +
                                     std::to_string(m) + " out of range");
    }
    GroupEntry& entry = compiled->groups_[g];
    entry.model = static_cast<uint32_t>(m);
    if (entry_of_model[m] >= 0) {
      entry = compiled->groups_[static_cast<size_t>(entry_of_model[m])];
      continue;
    }
    const uint32_t tree_begin = static_cast<uint32_t>(compiled->trees_.size());
    FlatEnsembleBuilder builder(&compiled->table_, &compiled->trees_,
                                &compiled->alphas_);
    if (!pool.model(m).LowerToFlat(&builder)) {
      // Not a tree ensemble: the group keeps the interpreted path.
      entry_of_model[m] = static_cast<int>(g);
      continue;
    }
    FALCC_RETURN_IF_ERROR(builder.status());
    if (builder.num_trees_added() == 0) {
      return Status::Internal("CompiledCombo: model lowered zero trees");
    }
    entry.kind = builder.kind();
    entry.tree_begin = tree_begin;
    entry.tree_end = static_cast<uint32_t>(compiled->trees_.size());
    entry.alpha_sum = AlphaSum(std::span<const double>(compiled->alphas_)
                                   .subspan(tree_begin));
    entry.compiled = true;
    entry_of_model[m] = static_cast<int>(g);
  }
  compiled->BindOwned();
  return std::shared_ptr<const CompiledCombo>(std::move(compiled));
}

Result<std::shared_ptr<const CompiledCombo>> CompiledCombo::FromParts(
    const FlatParts& parts, std::vector<GroupEntry> groups,
    size_t num_features, size_t pool_size,
    std::shared_ptr<const void> backing) {
  auto invalid = [](const std::string& what) {
    return Status::InvalidArgument("CompiledCombo: flat " + what);
  };
  const size_t n = parts.feature.size();
  if (parts.threshold.size() != n || parts.leaf_proba.size() != n ||
      parts.children.size() != 2 * n) {
    return invalid("node array sizes disagree");
  }
  if (n > (1u << 30)) return invalid("node table overflow");
  if (parts.alphas.size() != parts.trees.size()) {
    return invalid("tree/alpha count mismatch");
  }
  const uint32_t node_count = static_cast<uint32_t>(n);
  for (size_t i = 0; i < n; ++i) {
    const uint32_t self = static_cast<uint32_t>(i);
    const uint32_t left = parts.children[2 * i];
    const uint32_t right = parts.children[2 * i + 1];
    if (left == self && right == self) {
      // Leaf: the canonical encoding is fully pinned so a flat section is
      // a pure function of the model (and corruption cannot hide in
      // ignored fields).
      if (parts.feature[i] != 0) return invalid("leaf with nonzero feature");
      if (!SameDoubleBits(parts.threshold[i], 0.0)) {
        return invalid("leaf with nonzero threshold");
      }
      const double p = parts.leaf_proba[i];
      if (!std::isfinite(p) || p < 0.0 || p > 1.0) {
        return invalid("leaf probability outside [0, 1]");
      }
    } else {
      if (left <= self || left >= node_count || right <= self ||
          right >= node_count) {
        return invalid("children not strictly forward");
      }
      if (parts.feature[i] < 0 ||
          static_cast<size_t>(parts.feature[i]) >= num_features) {
        return invalid("feature index out of range");
      }
      if (!std::isfinite(parts.threshold[i])) {
        return invalid("non-finite threshold");
      }
      if (!SameDoubleBits(parts.leaf_proba[i], 0.0)) {
        return invalid("interior node with nonzero leaf probability");
      }
    }
  }
  for (const TreeRef& tree : parts.trees) {
    if (tree.root >= node_count) return invalid("tree root out of range");
    if (tree.steps > node_count) return invalid("tree walk length too long");
  }
  for (double alpha : parts.alphas) {
    if (!std::isfinite(alpha)) return invalid("non-finite alpha");
  }
  for (const GroupEntry& entry : groups) {
    switch (entry.kind) {
      case EnsembleKind::kTree:
      case EnsembleKind::kAdaBoost:
      case EnsembleKind::kForest:
        break;
      default:
        return invalid("unknown ensemble kind");
    }
    if (entry.model >= pool_size) return invalid("entry model out of range");
    if (entry.compiled) {
      if (entry.tree_begin >= entry.tree_end ||
          entry.tree_end > parts.trees.size()) {
        return invalid("entry tree slice out of range");
      }
      const double recomputed = AlphaSum(parts.alphas.subspan(
          entry.tree_begin, entry.tree_end - entry.tree_begin));
      if (!SameDoubleBits(entry.alpha_sum, recomputed)) {
        return invalid("entry alpha normalizer does not match its trees");
      }
    } else if (entry.tree_begin != 0 || entry.tree_end != 0 ||
               !SameDoubleBits(entry.alpha_sum, 0.0)) {
      return invalid("fallback entry with kernel state");
    }
  }
  std::shared_ptr<CompiledCombo> compiled(new CompiledCombo());
  compiled->parts_ = parts;
  compiled->groups_ = std::move(groups);
  compiled->backing_ = std::move(backing);
  return std::shared_ptr<const CompiledCombo>(std::move(compiled));
}

void CompiledCombo::PredictGroup(const Dataset& data, size_t g,
                                 std::span<const size_t> rows,
                                 std::span<double> out) const {
  FALCC_CHECK(g < groups_.size(), "CompiledCombo: group out of range");
  FALCC_CHECK(rows.size() == out.size(),
              "CompiledCombo: rows/out size mismatch");
  const GroupEntry& entry = groups_[g];
  FALCC_CHECK(entry.compiled, "CompiledCombo: PredictGroup on fallback group");
  const size_t count = entry.tree_end - entry.tree_begin;
  PredictFlat(parts_, parts_.trees.subspan(entry.tree_begin, count),
              parts_.alphas.subspan(entry.tree_begin, count), entry.kind,
              entry.alpha_sum, data, rows, out);
}

bool CompiledCombo::SameBits(const CompiledCombo& other) const {
  if (groups_.size() != other.groups_.size()) return false;
  for (size_t g = 0; g < groups_.size(); ++g) {
    const GroupEntry& a = groups_[g];
    const GroupEntry& b = other.groups_[g];
    if (a.kind != b.kind || a.tree_begin != b.tree_begin ||
        a.tree_end != b.tree_end || a.model != b.model ||
        a.compiled != b.compiled || !SameDoubleBits(a.alpha_sum, b.alpha_sum)) {
      return false;
    }
  }
  return SameSpanBits(parts_.trees, other.parts_.trees) &&
         SameSpanBits(parts_.alphas, other.parts_.alphas) &&
         SameSpanBits(parts_.feature, other.parts_.feature) &&
         SameSpanBits(parts_.threshold, other.parts_.threshold) &&
         SameSpanBits(parts_.children, other.parts_.children) &&
         SameSpanBits(parts_.leaf_proba, other.parts_.leaf_proba);
}

size_t CompiledCombo::num_compiled_groups() const {
  size_t count = 0;
  for (const GroupEntry& entry : groups_) {
    if (entry.compiled) ++count;
  }
  return count;
}

}  // namespace falcc
