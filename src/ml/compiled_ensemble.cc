#include "ml/compiled_ensemble.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace falcc {

namespace {

// Rows per traversal block: enough independent walks to hide the
// dependent-load latency of `children[2i + b]`, small enough that the
// row pointers, node cursors, and accumulators stay in registers / L1.
constexpr size_t kRowBlock = 32;

bool SameDoubleBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

template <typename T>
bool SameVectorBits(const std::vector<T>& a, const std::vector<T>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) == 0);
}

// Advances every row's node cursor until it rests on a leaf (at most
// `tree.steps` levels). Each step is one gather plus a branchless child
// select — `v > threshold` indexes the children pair, which decides
// exactly like the interpreted `v <= threshold ? left : right`. Leaves
// self-loop, so a converged row spins in place; children sit strictly
// after their parent, so `next != i` iff some row is still descending,
// and the level loop stops as soon as the whole block has converged
// (real trees are unbalanced — most blocks finish well before the
// worst-case depth). The exit cannot change where any cursor lands.
inline void WalkTree(const FlatTable& table, const TreeRef& tree,
                     const double* const* row, size_t n, uint32_t* node) {
  const int32_t* feature = table.feature.data();
  const double* threshold = table.threshold.data();
  const uint32_t* children = table.children.data();
  for (size_t r = 0; r < n; ++r) node[r] = tree.root;
  for (uint32_t step = 0; step < tree.steps; ++step) {
    uint32_t moved = 0;
    for (size_t r = 0; r < n; ++r) {
      const uint32_t i = node[r];
      const double v = row[r][feature[i]];
      const uint32_t next =
          children[2 * i + static_cast<uint32_t>(v > threshold[i])];
      moved |= next ^ i;
      node[r] = next;
    }
    if (moved == 0) break;
  }
}

// The shared fused kernel: walks every tree of one entry over `rows` in
// blocks and combines leaves per `kind`. Accumulation mirrors the
// interpreted batch paths operation for operation (margins in boosting-
// round order against a precomputed alpha_sum; forest votes divided by
// the tree count), so the output is bit-identical to PredictProbaBatch.
void PredictFlat(const FlatTable& table, std::span<const TreeRef> trees,
                 std::span<const double> alphas, EnsembleKind kind,
                 double alpha_sum, const Dataset& data,
                 std::span<const size_t> rows, std::span<double> out) {
  const double* leaf = table.leaf_proba.data();
  const double num_trees = static_cast<double>(trees.size());
  for (size_t begin = 0; begin < rows.size(); begin += kRowBlock) {
    const size_t n = std::min(kRowBlock, rows.size() - begin);
    const double* row[kRowBlock];
    double acc[kRowBlock];
    uint32_t node[kRowBlock];
    for (size_t r = 0; r < n; ++r) {
      row[r] = data.Row(rows[begin + r]).data();
      acc[r] = 0.0;
    }
    for (size_t t = 0; t < trees.size(); ++t) {
      WalkTree(table, trees[t], row, n, node);
      switch (kind) {
        case EnsembleKind::kTree:
          for (size_t r = 0; r < n; ++r) acc[r] = leaf[node[r]];
          break;
        case EnsembleKind::kAdaBoost: {
          const double alpha = alphas[t];
          for (size_t r = 0; r < n; ++r) {
            acc[r] += alpha * (leaf[node[r]] >= 0.5 ? 1.0 : -1.0);
          }
          break;
        }
        case EnsembleKind::kForest:
          for (size_t r = 0; r < n; ++r) {
            if (leaf[node[r]] >= 0.5) acc[r] += 1.0;
          }
          break;
      }
    }
    switch (kind) {
      case EnsembleKind::kTree:
        for (size_t r = 0; r < n; ++r) out[begin + r] = acc[r];
        break;
      case EnsembleKind::kAdaBoost:
        if (alpha_sum <= 0.0) {
          for (size_t r = 0; r < n; ++r) out[begin + r] = 0.5;
        } else {
          for (size_t r = 0; r < n; ++r) {
            out[begin + r] = 0.5 * (acc[r] / alpha_sum + 1.0);
          }
        }
        break;
      case EnsembleKind::kForest:
        for (size_t r = 0; r < n; ++r) out[begin + r] = acc[r] / num_trees;
        break;
    }
  }
}

// |alpha| sum over one entry's trees, in round order — the same
// floating-point sequence the interpreted AdaBoost batch accumulates, so
// precomputing it at compile time cannot change a probability bit.
double AlphaSum(std::span<const double> alphas) {
  double sum = 0.0;
  for (double alpha : alphas) sum += std::fabs(alpha);
  return sum;
}

}  // namespace

void FlatEnsembleBuilder::SetKind(EnsembleKind kind) {
  if (!status_.ok()) return;
  if (has_kind_) {
    status_ = Status::Internal("FlatEnsembleBuilder: SetKind called twice");
    return;
  }
  kind_ = kind;
  has_kind_ = true;
}

void FlatEnsembleBuilder::AddTree(std::span<const TreeNode> nodes,
                                  double alpha) {
  if (!status_.ok()) return;
  if (!has_kind_) {
    status_ = Status::Internal("FlatEnsembleBuilder: AddTree before SetKind");
    return;
  }
  if (nodes.empty()) {
    status_ = Status::Internal("FlatEnsembleBuilder: empty tree");
    return;
  }
  const size_t base = table_->num_nodes();
  if (base + nodes.size() > (1u << 30)) {
    status_ = Status::Internal("FlatEnsembleBuilder: node table overflow");
    return;
  }

  // Recompute the walk length from the node structure — a serialized
  // depth field is never trusted. Children sit strictly after their
  // parent (the shape deserialization enforces), so one forward pass
  // sees every parent before its children; taking the max over incoming
  // edges makes the walk long enough for every root-to-leaf path even if
  // a corrupt-but-accepted artifact shares subtrees.
  depth_scratch_.assign(nodes.size(), 0);
  uint32_t steps = 0;
  const int n = static_cast<int>(nodes.size());
  for (int i = 0; i < n; ++i) {
    const TreeNode& node = nodes[static_cast<size_t>(i)];
    if (node.feature >= 0) {
      if (node.left <= i || node.left >= n || node.right <= i ||
          node.right >= n) {
        status_ = Status::Internal(
            "FlatEnsembleBuilder: tree children not strictly forward");
        return;
      }
      const uint32_t child_depth = depth_scratch_[static_cast<size_t>(i)] + 1;
      auto& left = depth_scratch_[static_cast<size_t>(node.left)];
      auto& right = depth_scratch_[static_cast<size_t>(node.right)];
      left = std::max(left, child_depth);
      right = std::max(right, child_depth);
    } else {
      steps = std::max(steps, depth_scratch_[static_cast<size_t>(i)]);
    }
  }

  table_->feature.reserve(base + nodes.size());
  table_->threshold.reserve(base + nodes.size());
  table_->children.reserve(2 * (base + nodes.size()));
  table_->leaf_proba.reserve(base + nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    const TreeNode& node = nodes[i];
    const uint32_t self = static_cast<uint32_t>(base + i);
    if (node.feature >= 0) {
      table_->feature.push_back(node.feature);
      table_->threshold.push_back(node.threshold);
      table_->children.push_back(static_cast<uint32_t>(base) +
                                 static_cast<uint32_t>(node.left));
      table_->children.push_back(static_cast<uint32_t>(base) +
                                 static_cast<uint32_t>(node.right));
      table_->leaf_proba.push_back(0.0);
    } else {
      // Leaf: feature 0 keeps the gather in bounds, the self-loop makes
      // the fixed-length walk idempotent once the leaf is reached.
      table_->feature.push_back(0);
      table_->threshold.push_back(0.0);
      table_->children.push_back(self);
      table_->children.push_back(self);
      table_->leaf_proba.push_back(node.proba);
    }
  }
  trees_->push_back(TreeRef{static_cast<uint32_t>(base), steps});
  alphas_->push_back(alpha);
  ++num_trees_added_;
}

Result<CompiledEnsemble> CompiledEnsemble::Compile(const Classifier& model) {
  CompiledEnsemble compiled;
  FlatEnsembleBuilder builder(&compiled.table_, &compiled.trees_,
                              &compiled.alphas_);
  if (!model.LowerToFlat(&builder)) {
    return Status::FailedPrecondition("CompiledEnsemble: " + model.Name() +
                                      " does not lower to a flat ensemble");
  }
  FALCC_RETURN_IF_ERROR(builder.status());
  if (!builder.has_kind() || compiled.trees_.empty()) {
    return Status::Internal("CompiledEnsemble: lowering produced no trees");
  }
  compiled.kind_ = builder.kind();
  compiled.alpha_sum_ = AlphaSum(compiled.alphas_);
  return compiled;
}

void CompiledEnsemble::PredictProbaBatch(const Dataset& data,
                                         std::span<const size_t> rows,
                                         std::span<double> out) const {
  FALCC_CHECK(rows.size() == out.size(),
              "CompiledEnsemble: rows/out size mismatch");
  PredictFlat(table_, trees_, alphas_, kind_, alpha_sum_, data, rows, out);
}

Result<std::shared_ptr<const CompiledCombo>> CompiledCombo::Compile(
    const ModelPool& pool, const ModelCombination& combo) {
  std::shared_ptr<CompiledCombo> compiled(new CompiledCombo());
  compiled->groups_.resize(combo.size());
  // Groups served by the same pool model share one lowered entry — the
  // common case when a cluster's best combination repeats a model.
  std::vector<int> entry_of_model(pool.size(), -1);
  for (size_t g = 0; g < combo.size(); ++g) {
    const size_t m = combo[g];
    if (m >= pool.size()) {
      return Status::InvalidArgument("CompiledCombo: model index " +
                                     std::to_string(m) + " out of range");
    }
    GroupEntry& entry = compiled->groups_[g];
    entry.model = static_cast<uint32_t>(m);
    if (entry_of_model[m] >= 0) {
      entry = compiled->groups_[static_cast<size_t>(entry_of_model[m])];
      continue;
    }
    const uint32_t tree_begin = static_cast<uint32_t>(compiled->trees_.size());
    FlatEnsembleBuilder builder(&compiled->table_, &compiled->trees_,
                                &compiled->alphas_);
    if (!pool.model(m).LowerToFlat(&builder)) {
      // Not a tree ensemble: the group keeps the interpreted path.
      entry_of_model[m] = static_cast<int>(g);
      continue;
    }
    FALCC_RETURN_IF_ERROR(builder.status());
    if (builder.num_trees_added() == 0) {
      return Status::Internal("CompiledCombo: model lowered zero trees");
    }
    entry.kind = builder.kind();
    entry.tree_begin = tree_begin;
    entry.tree_end = static_cast<uint32_t>(compiled->trees_.size());
    entry.alpha_sum = AlphaSum(std::span<const double>(compiled->alphas_)
                                   .subspan(tree_begin));
    entry.compiled = true;
    entry_of_model[m] = static_cast<int>(g);
  }
  return std::shared_ptr<const CompiledCombo>(std::move(compiled));
}

void CompiledCombo::PredictGroup(const Dataset& data, size_t g,
                                 std::span<const size_t> rows,
                                 std::span<double> out) const {
  FALCC_CHECK(g < groups_.size(), "CompiledCombo: group out of range");
  FALCC_CHECK(rows.size() == out.size(),
              "CompiledCombo: rows/out size mismatch");
  const GroupEntry& entry = groups_[g];
  FALCC_CHECK(entry.compiled, "CompiledCombo: PredictGroup on fallback group");
  const size_t count = entry.tree_end - entry.tree_begin;
  PredictFlat(table_,
              std::span<const TreeRef>(trees_).subspan(entry.tree_begin, count),
              std::span<const double>(alphas_).subspan(entry.tree_begin, count),
              entry.kind, entry.alpha_sum, data, rows, out);
}

bool CompiledCombo::SameBits(const CompiledCombo& other) const {
  if (groups_.size() != other.groups_.size()) return false;
  for (size_t g = 0; g < groups_.size(); ++g) {
    const GroupEntry& a = groups_[g];
    const GroupEntry& b = other.groups_[g];
    if (a.kind != b.kind || a.tree_begin != b.tree_begin ||
        a.tree_end != b.tree_end || a.model != b.model ||
        a.compiled != b.compiled || !SameDoubleBits(a.alpha_sum, b.alpha_sum)) {
      return false;
    }
  }
  return SameVectorBits(trees_, other.trees_) &&
         SameVectorBits(alphas_, other.alphas_) &&
         SameVectorBits(table_.feature, other.table_.feature) &&
         SameVectorBits(table_.threshold, other.table_.threshold) &&
         SameVectorBits(table_.children, other.table_.children) &&
         SameVectorBits(table_.leaf_proba, other.table_.leaf_proba);
}

size_t CompiledCombo::num_compiled_groups() const {
  size_t count = 0;
  for (const GroupEntry& entry : groups_) {
    if (entry.compiled) ++count;
  }
  return count;
}

}  // namespace falcc
