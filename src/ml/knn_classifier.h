// k-nearest-neighbor classifier backed by the kd-tree index.
// Completes the pool of standard classifiers for Decouple/FALCES.
// Sample weights enter as vote weights of the retrieved neighbors.

#ifndef FALCC_ML_KNN_CLASSIFIER_H_
#define FALCC_ML_KNN_CLASSIFIER_H_

#include <optional>

#include "cluster/kdtree.h"
#include "ml/classifier.h"

namespace falcc {

/// kNN hyperparameters.
struct KnnClassifierOptions {
  size_t k = 15;
};

/// Majority vote over the k nearest training samples (standardized
/// feature space).
class KnnClassifier final : public Classifier {
 public:
  explicit KnnClassifier(const KnnClassifierOptions& options = {})
      : options_(options) {}

  KnnClassifier(const KnnClassifier& other);
  KnnClassifier& operator=(const KnnClassifier& other);

  Status Fit(const Dataset& data,
             std::span<const double> sample_weights) override;
  using Classifier::Fit;
  double PredictProba(std::span<const double> features) const override;
  Status ValidateForWidth(size_t num_features) const override;
  std::unique_ptr<Classifier> Clone() const override;
  std::string Name() const override {
    return "kNN(k=" + std::to_string(options_.k) + ")";
  }
  std::string TypeTag() const override { return "knn"; }
  Status SerializePayload(std::ostream* out) const override;
  static Result<KnnClassifier> DeserializePayload(std::istream* in);

 private:
  std::vector<double> Standardize(std::span<const double> features) const;

  KnnClassifierOptions options_;
  std::optional<KdTree> tree_;
  std::vector<int> labels_;
  std::vector<double> vote_weights_;
  std::vector<double> offsets_;
  std::vector<double> scales_;
};

}  // namespace falcc

#endif  // FALCC_ML_KNN_CLASSIFIER_H_
