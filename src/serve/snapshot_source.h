// SnapshotSource: the one reload entry point in front of a serving
// engine. Before this existed, FalccEngine::ReloadFromFile, the
// ShardedEngine install path, and the CLI's model loading each sniffed
// and loaded artifacts their own way; SnapshotSource unifies them.
//
// Dispatch is by artifact header:
//  * `falcc-snapshot-v2` / `falcc-model-v1` → LoadFull (full snapshot
//    swap; mmap-backed zero-copy load for v2 when prefer_mmap is set).
//  * `falcc-delta-v2` → ApplyDelta (incremental hot-swap: only the
//    delta's clusters are validated and recompiled; every untouched
//    cluster's compiled kernel is shared pointer-identically with the
//    previous snapshot).
//
// A failed load or delta never touches the installed snapshot — the
// engine keeps serving. Not internally synchronized beyond what the
// engine provides: concurrent Load calls race benignly (last install
// wins), same as concurrent ReloadFromFile always did.

#ifndef FALCC_SERVE_SNAPSHOT_SOURCE_H_
#define FALCC_SERVE_SNAPSHOT_SOURCE_H_

#include <string>
#include <string_view>

#include "serve/engine.h"
#include "serve/sharded_engine.h"
#include "util/status.h"

namespace falcc::serve {

struct SnapshotSourceOptions {
  /// Serve v2 snapshots' compiled kernels directly out of a read-only
  /// file mapping instead of copying them onto the heap. Decisions are
  /// bit-identical either way. v1 artifacts always take the copying
  /// path. The mapped file must not be modified in place while the
  /// snapshot serves — publish new artifacts via write-new + rename.
  bool prefer_mmap = false;
};

/// What a Load call did, for callers that log or assert on it.
enum class SnapshotLoadKind {
  kFull,   ///< full snapshot install (copying load)
  kMapped, ///< full snapshot install served from a file mapping
  kDelta,  ///< incremental install: delta applied to the base snapshot
};

/// Feeds snapshot and delta artifacts into one serving engine. Holds a
/// non-owning pointer to the engine, which must outlive the source.
class SnapshotSource {
 public:
  explicit SnapshotSource(FalccEngine* engine,
                          SnapshotSourceOptions options = {});
  explicit SnapshotSource(ShardedEngine* engine,
                          SnapshotSourceOptions options = {});

  /// Loads `path` as a full snapshot (v1 or v2) and installs it.
  Status LoadFull(const std::string& path);

  /// Reads a delta artifact from `path` and applies it to the installed
  /// snapshot.
  Status ApplyDelta(const std::string& path);

  /// Applies an in-memory delta artifact.
  Status ApplyDeltaBytes(std::string_view bytes);

  /// Sniffs the artifact header and dispatches to LoadFull or
  /// ApplyDelta. Returns what it did; unknown headers fail without
  /// touching the engine.
  Result<SnapshotLoadKind> Load(const std::string& path);

 private:
  FalccEngine* engine_ = nullptr;        ///< exactly one of these is set
  ShardedEngine* sharded_ = nullptr;
  SnapshotSourceOptions options_;
};

}  // namespace falcc::serve

#endif  // FALCC_SERVE_SNAPSHOT_SOURCE_H_
