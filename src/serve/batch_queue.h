// Micro-batching queue of the serving engine.
//
// Client threads submit single samples; the engine's flusher thread
// collects them into micro-batches and classifies each batch in one
// ClassifyBatch call, amortizing transform, centroid match, and tree
// traversal across requests. A batch is flushed when it reaches
// `max_batch` samples or when the oldest queued sample has waited
// `max_delay_seconds` — the classic throughput/latency trade-off knobs.
//
// Completion is batch-granular: each submitted sample holds a Ticket
// onto its batch; the flusher completes the whole batch at once
// (decisions or a single error Status) and wakes all waiters.

#ifndef FALCC_SERVE_BATCH_QUEUE_H_
#define FALCC_SERVE_BATCH_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/falcc.h"
#include "util/status.h"

namespace falcc::serve {

struct BatchQueueOptions {
  /// Flush as soon as a batch holds this many samples.
  size_t max_batch = 256;
  /// Flush a partial batch once its oldest sample has waited this long.
  /// Ignored when slo_seconds > 0 (deadline-driven flush below).
  double max_delay_seconds = 200e-6;
  /// Backpressure: Submit fails with kUnavailable once this many samples
  /// are queued and not yet handed to the flusher.
  size_t max_pending = 1 << 16;
  /// When > 0, replaces the fixed max_delay flush with a deadline-driven
  /// one: the open batch is flushed as soon as the oldest sample's
  /// predicted completion — now + the EWMA service estimate for the
  /// batch, fed back via ReportServiceTime — would breach its
  /// submit-time + slo_seconds deadline. Batches grow while there is
  /// SLO slack and collapse toward 1 when a lone sample is close to its
  /// deadline.
  double slo_seconds = 0.0;
};

/// Online linear model of batch service time: Predict(n) = overhead +
/// n · per_row, both terms exponentially-weighted moving averages fed by
/// Update after every classified batch. Seeds come from the compiled-
/// kernel benchmark numbers so the very first flush decisions are sane;
/// the estimate then tracks the deployed model and hardware. Not
/// thread-safe — owned by whichever single thread runs the flush loop.
class ServiceTimeModel {
 public:
  ServiceTimeModel(double seed_row_seconds, double seed_overhead_seconds,
                   double alpha)
      : per_row_(seed_row_seconds), overhead_(seed_overhead_seconds),
        alpha_(alpha) {}

  /// Predicted wall-clock seconds to classify a batch of `rows`.
  double Predict(size_t rows) const {
    return overhead_ + static_cast<double>(rows) * per_row_;
  }

  /// Folds one observed (rows, seconds) batch into the estimate.
  void Update(size_t rows, double seconds);

  double per_row_seconds() const { return per_row_; }
  double overhead_seconds() const { return overhead_; }

 private:
  double per_row_;
  double overhead_;
  double alpha_;
};

/// One micro-batch: filled under the queue lock by submitters, then
/// owned by the flusher thread, which completes it exactly once.
struct MicroBatch {
  using TimePoint = std::chrono::steady_clock::time_point;

  std::vector<double> features;       ///< row-major, filled by Submit
  std::vector<TimePoint> submitted;   ///< per-sample submit time
  size_t num_samples = 0;

  /// Completion state, owned by `mu` (separate from the queue lock so
  /// waiters never contend with submitters).
  std::mutex mu;
  std::condition_variable done_cv;
  bool done = false;
  Status status;                          ///< batch-level failure, if any
  std::vector<SampleDecision> decisions;  ///< per sample, submit order

  /// Called by the flusher exactly once: publishes the outcome and
  /// wakes every Ticket::Wait.
  void Complete(Status batch_status, std::vector<SampleDecision> results);
};

/// A claim on one sample of a pending micro-batch.
class Ticket {
 public:
  Ticket() = default;
  Ticket(std::shared_ptr<MicroBatch> batch, size_t index)
      : batch_(std::move(batch)), index_(index) {}

  bool valid() const { return batch_ != nullptr; }

  /// Blocks until the batch completes; returns this sample's decision or
  /// the batch-level error.
  Result<SampleDecision> Wait() const;

 private:
  std::shared_ptr<MicroBatch> batch_;
  size_t index_ = 0;
};

/// MPSC queue: many submitters, one flusher draining via NextBatch.
class BatchQueue {
 public:
  explicit BatchQueue(BatchQueueOptions options);

  /// Copies one sample into the open batch and returns a Ticket for it.
  /// Fails with kUnavailable after Stop() or when max_pending is hit.
  /// The caller is responsible for validating the sample first.
  Result<Ticket> Submit(std::span<const double> features);

  /// Flusher side: blocks until a batch is ready (full, or non-empty and
  /// past max_delay, or the queue is stopped and draining). Returns
  /// nullptr once stopped and fully drained.
  std::shared_ptr<MicroBatch> NextBatch();

  /// Rejects new submissions; NextBatch keeps returning queued batches
  /// until drained, then returns nullptr.
  void Stop();

  /// Flusher side: feeds one observed batch-classify time back into the
  /// service-time model that drives the deadline flush (slo_seconds).
  void ReportServiceTime(size_t rows, double seconds);

 private:
  const BatchQueueOptions options_;
  /// EWMA of batch service time; guarded by mu_ (written via
  /// ReportServiceTime, read by NextBatch's deadline computation).
  ServiceTimeModel service_model_;
  std::mutex mu_;
  std::condition_variable flusher_cv_;
  std::shared_ptr<MicroBatch> open_;               // being filled
  std::deque<std::shared_ptr<MicroBatch>> ready_;  // full, awaiting flusher
  size_t pending_samples_ = 0;
  bool stopped_ = false;
};

}  // namespace falcc::serve

#endif  // FALCC_SERVE_BATCH_QUEUE_H_
