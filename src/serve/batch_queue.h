// Micro-batching queue of the serving engine.
//
// Client threads submit single samples; the engine's flusher thread
// collects them into micro-batches and classifies each batch in one
// ClassifyBatch call, amortizing transform, centroid match, and tree
// traversal across requests. A batch is flushed when it reaches
// `max_batch` samples or when the oldest queued sample has waited
// `max_delay_seconds` — the classic throughput/latency trade-off knobs.
//
// Completion is batch-granular: each submitted sample holds a Ticket
// onto its batch; the flusher completes the whole batch at once
// (decisions or a single error Status) and wakes all waiters.

#ifndef FALCC_SERVE_BATCH_QUEUE_H_
#define FALCC_SERVE_BATCH_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/falcc.h"
#include "util/status.h"

namespace falcc::serve {

struct BatchQueueOptions {
  /// Flush as soon as a batch holds this many samples.
  size_t max_batch = 256;
  /// Flush a partial batch once its oldest sample has waited this long.
  double max_delay_seconds = 200e-6;
  /// Backpressure: Submit fails with kUnavailable once this many samples
  /// are queued and not yet handed to the flusher.
  size_t max_pending = 1 << 16;
};

/// One micro-batch: filled under the queue lock by submitters, then
/// owned by the flusher thread, which completes it exactly once.
struct MicroBatch {
  using TimePoint = std::chrono::steady_clock::time_point;

  std::vector<double> features;       ///< row-major, filled by Submit
  std::vector<TimePoint> submitted;   ///< per-sample submit time
  size_t num_samples = 0;

  /// Completion state, owned by `mu` (separate from the queue lock so
  /// waiters never contend with submitters).
  std::mutex mu;
  std::condition_variable done_cv;
  bool done = false;
  Status status;                          ///< batch-level failure, if any
  std::vector<SampleDecision> decisions;  ///< per sample, submit order

  /// Called by the flusher exactly once: publishes the outcome and
  /// wakes every Ticket::Wait.
  void Complete(Status batch_status, std::vector<SampleDecision> results);
};

/// A claim on one sample of a pending micro-batch.
class Ticket {
 public:
  Ticket() = default;
  Ticket(std::shared_ptr<MicroBatch> batch, size_t index)
      : batch_(std::move(batch)), index_(index) {}

  bool valid() const { return batch_ != nullptr; }

  /// Blocks until the batch completes; returns this sample's decision or
  /// the batch-level error.
  Result<SampleDecision> Wait() const;

 private:
  std::shared_ptr<MicroBatch> batch_;
  size_t index_ = 0;
};

/// MPSC queue: many submitters, one flusher draining via NextBatch.
class BatchQueue {
 public:
  explicit BatchQueue(BatchQueueOptions options);

  /// Copies one sample into the open batch and returns a Ticket for it.
  /// Fails with kUnavailable after Stop() or when max_pending is hit.
  /// The caller is responsible for validating the sample first.
  Result<Ticket> Submit(std::span<const double> features);

  /// Flusher side: blocks until a batch is ready (full, or non-empty and
  /// past max_delay, or the queue is stopped and draining). Returns
  /// nullptr once stopped and fully drained.
  std::shared_ptr<MicroBatch> NextBatch();

  /// Rejects new submissions; NextBatch keeps returning queued batches
  /// until drained, then returns nullptr.
  void Stop();

 private:
  const BatchQueueOptions options_;
  std::mutex mu_;
  std::condition_variable flusher_cv_;
  std::shared_ptr<MicroBatch> open_;               // being filled
  std::deque<std::shared_ptr<MicroBatch>> ready_;  // full, awaiting flusher
  size_t pending_samples_ = 0;
  bool stopped_ = false;
};

}  // namespace falcc::serve

#endif  // FALCC_SERVE_BATCH_QUEUE_H_
