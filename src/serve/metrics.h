// Serving-layer observability: request/error counters and fixed-bucket
// latency histograms, written lock-free from the hot path and read as a
// consistent-enough snapshot by benchmarks, tests, and the CLI.
//
// Histograms use log-linear microsecond buckets: each power-of-two
// decade [2^e, 2^(e+1)) µs is split into kSubBuckets equal-width linear
// sub-buckets (bucket 0 collects < 1 µs). A reported quantile is the
// upper bound of the sub-bucket containing it, so the relative error is
// at most 1/kSubBuckets ≈ 1.6% — tight enough that an SLO check against
// the histogram means what it says, unlike the previous pure
// power-of-two buckets whose quantiles were only exact to 2×.
// Recording stays a single relaxed atomic increment (exponent via
// ilogb, sub-bucket via one multiply), cheap enough for per-ticket
// accounting in the flush path.

#ifndef FALCC_SERVE_METRICS_H_
#define FALCC_SERVE_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace falcc::serve {

/// Point-in-time view of one histogram.
struct LatencySummary {
  uint64_t count = 0;
  double p50_seconds = 0.0;
  double p95_seconds = 0.0;
  double p99_seconds = 0.0;
};

/// Fixed-bucket log-linear latency histogram; thread-safe, no locks.
class LatencyHistogram {
 public:
  /// Linear sub-buckets per power-of-two decade; bounds the relative
  /// error of a reported quantile to 1/kSubBuckets.
  static constexpr size_t kSubBuckets = 64;
  /// Decades cover 1 µs up to 2^kNumExponents µs (~67 s); the last
  /// sub-bucket absorbs everything beyond.
  static constexpr size_t kNumExponents = 26;
  /// Bucket 0 is < 1 µs; then kNumExponents × kSubBuckets log-linear
  /// buckets.
  static constexpr size_t kNumBuckets = 1 + kNumExponents * kSubBuckets;

  void Record(double seconds);

  /// Approximate quantiles over everything recorded so far. Concurrent
  /// Record calls may or may not be included (relaxed reads).
  LatencySummary Summarize() const;

  /// Adds every count recorded in `other` into this histogram — the
  /// aggregation primitive behind fleet-level (per-shard) summaries.
  /// Relaxed reads of `other`: counts recorded concurrently with the
  /// merge may or may not be included.
  void MergeFrom(const LatencyHistogram& other);

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
};

/// Counters + per-stage histograms of one FalccEngine.
struct MetricsSnapshot {
  uint64_t requests = 0;  ///< submissions + direct batch calls
  uint64_t samples = 0;   ///< samples successfully classified
  uint64_t errors = 0;    ///< rejected or failed requests
  uint64_t flushes = 0;   ///< micro-batches processed
  uint64_t reloads = 0;   ///< snapshot installs/hot-swaps
  uint64_t observed = 0;  ///< decisions fanned out to the observer
  LatencySummary total;       ///< per sample, submit → decision available
  LatencySummary queue_wait;  ///< per sample, submit → flush start
  LatencySummary validate;    ///< per batch-classify call, by stage
  LatencySummary transform;
  LatencySummary match;
  LatencySummary predict;
  LatencySummary compile;     ///< per Install, kernel compilation time

  /// Multi-line human-readable rendering (CLI diagnostics).
  std::string ToString() const;

  /// Single JSON object: counters plus {count, p50_us, p95_us, p99_us}
  /// per stage — what `falcc_cli classify --metrics-out=FILE` dumps so
  /// serving histograms survive the process.
  std::string ToJson() const;
};

/// Lock-free metrics sink shared by the engine's hot paths.
class Metrics {
 public:
  void AddRequests(uint64_t n) { Add(&requests_, n); }
  void AddSamples(uint64_t n) { Add(&samples_, n); }
  void AddErrors(uint64_t n) { Add(&errors_, n); }
  void AddFlushes(uint64_t n) { Add(&flushes_, n); }
  void AddReloads(uint64_t n) { Add(&reloads_, n); }
  void AddObserved(uint64_t n) { Add(&observed_, n); }

  LatencyHistogram& total() { return total_; }
  LatencyHistogram& queue_wait() { return queue_wait_; }
  LatencyHistogram& validate() { return validate_; }
  LatencyHistogram& transform() { return transform_; }
  LatencyHistogram& match() { return match_; }
  LatencyHistogram& predict() { return predict_; }
  LatencyHistogram& compile() { return compile_; }

  MetricsSnapshot Snapshot() const;
  /// Convenience: Snapshot().ToJson().
  std::string ToJson() const { return Snapshot().ToJson(); }

  /// Adds `other`'s counters and histogram counts into this sink —
  /// how a sharded engine folds its per-shard metrics into one
  /// fleet-level view. Relaxed reads; see LatencyHistogram::MergeFrom.
  void MergeFrom(const Metrics& other);

 private:
  static void Add(std::atomic<uint64_t>* counter, uint64_t n) {
    counter->fetch_add(n, std::memory_order_relaxed);
  }

  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> samples_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> flushes_{0};
  std::atomic<uint64_t> reloads_{0};
  std::atomic<uint64_t> observed_{0};
  LatencyHistogram total_;
  LatencyHistogram queue_wait_;
  LatencyHistogram validate_;
  LatencyHistogram transform_;
  LatencyHistogram match_;
  LatencyHistogram predict_;
  LatencyHistogram compile_;
};

}  // namespace falcc::serve

#endif  // FALCC_SERVE_METRICS_H_
