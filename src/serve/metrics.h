// Serving-layer observability: request/error counters and fixed-bucket
// latency histograms, written lock-free from the hot path and read as a
// consistent-enough snapshot by benchmarks, tests, and the CLI.
//
// Histograms use power-of-two microsecond buckets (bucket b counts
// latencies in [2^(b-1), 2^b) µs; bucket 0 is < 1 µs). Percentiles are
// therefore approximate: a reported quantile is the upper bound of the
// bucket containing it, i.e. exact to within a factor of two. That
// resolution is intentional — recording is a single relaxed atomic
// increment, cheap enough for per-sample accounting in the flush path.

#ifndef FALCC_SERVE_METRICS_H_
#define FALCC_SERVE_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace falcc::serve {

/// Point-in-time view of one histogram.
struct LatencySummary {
  uint64_t count = 0;
  double p50_seconds = 0.0;
  double p95_seconds = 0.0;
  double p99_seconds = 0.0;
};

/// Fixed-bucket latency histogram; thread-safe, no locks.
class LatencyHistogram {
 public:
  /// Buckets 0..kNumBuckets-1 cover < 1 µs up to ~2097 s; the last
  /// bucket absorbs everything beyond.
  static constexpr size_t kNumBuckets = 32;

  void Record(double seconds);

  /// Approximate quantiles over everything recorded so far. Concurrent
  /// Record calls may or may not be included (relaxed reads).
  LatencySummary Summarize() const;

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
};

/// Counters + per-stage histograms of one FalccEngine.
struct MetricsSnapshot {
  uint64_t requests = 0;  ///< submissions + direct batch calls
  uint64_t samples = 0;   ///< samples successfully classified
  uint64_t errors = 0;    ///< rejected or failed requests
  uint64_t flushes = 0;   ///< micro-batches processed
  uint64_t reloads = 0;   ///< snapshot installs/hot-swaps
  uint64_t observed = 0;  ///< decisions fanned out to the observer
  LatencySummary total;       ///< per sample, submit → decision available
  LatencySummary queue_wait;  ///< per sample, submit → flush start
  LatencySummary validate;    ///< per batch-classify call, by stage
  LatencySummary transform;
  LatencySummary match;
  LatencySummary predict;
  LatencySummary compile;     ///< per Install, kernel compilation time

  /// Multi-line human-readable rendering (CLI diagnostics).
  std::string ToString() const;

  /// Single JSON object: counters plus {count, p50_us, p95_us, p99_us}
  /// per stage — what `falcc_cli classify --metrics-out=FILE` dumps so
  /// serving histograms survive the process.
  std::string ToJson() const;
};

/// Lock-free metrics sink shared by the engine's hot paths.
class Metrics {
 public:
  void AddRequests(uint64_t n) { Add(&requests_, n); }
  void AddSamples(uint64_t n) { Add(&samples_, n); }
  void AddErrors(uint64_t n) { Add(&errors_, n); }
  void AddFlushes(uint64_t n) { Add(&flushes_, n); }
  void AddReloads(uint64_t n) { Add(&reloads_, n); }
  void AddObserved(uint64_t n) { Add(&observed_, n); }

  LatencyHistogram& total() { return total_; }
  LatencyHistogram& queue_wait() { return queue_wait_; }
  LatencyHistogram& validate() { return validate_; }
  LatencyHistogram& transform() { return transform_; }
  LatencyHistogram& match() { return match_; }
  LatencyHistogram& predict() { return predict_; }
  LatencyHistogram& compile() { return compile_; }

  MetricsSnapshot Snapshot() const;
  /// Convenience: Snapshot().ToJson().
  std::string ToJson() const { return Snapshot().ToJson(); }

 private:
  static void Add(std::atomic<uint64_t>* counter, uint64_t n) {
    counter->fetch_add(n, std::memory_order_relaxed);
  }

  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> samples_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> flushes_{0};
  std::atomic<uint64_t> reloads_{0};
  std::atomic<uint64_t> observed_{0};
  LatencyHistogram total_;
  LatencyHistogram queue_wait_;
  LatencyHistogram validate_;
  LatencyHistogram transform_;
  LatencyHistogram match_;
  LatencyHistogram predict_;
  LatencyHistogram compile_;
};

}  // namespace falcc::serve

#endif  // FALCC_SERVE_METRICS_H_
