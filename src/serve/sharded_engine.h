// Sharded serving fleet: N independent shards in front of one snapshot
// store, each owning a lock-free MPSC submit ring drained by a dedicated
// worker into the caller-scratch ClassifyBatch path, with SLO-driven
// adaptive batch sizing.
//
// Why shards: the single-queue micro-batcher (FalccEngine's BatchQueue)
// funnels every client through one mutex and one flusher thread, and its
// fixed max_delay flush trades ~65 ms closed-loop p50 for throughput.
// FALCC inherits the decoupled per-(cluster, group) structure of
// decoupled classifiers, so serving partitions perfectly: shards share
// nothing but the immutable model snapshot, scale linearly with cores,
// and routing can never change a decision — only where it is computed.
// Decisions are bit-identical to the single-sample loop at any shard
// count (CheckShardedMatchesSingleLoop is part of the invariant suite
// and the fuzz harness).
//
// Adaptive batching: each shard worker drains whatever its ring holds —
// so batch size tracks the backlog, collapsing to 1 under idle traffic
// (µs-scale latency, no artificial delay) and growing under load — but
// caps the batch the moment the *oldest* gathered ticket's predicted
// completion (per-shard EWMA service model, seeded from the
// compiled-kernel bench numbers) would breach its submit-time + SLO
// deadline. Under overload, when the deadline is already unmeetable, the
// cap degrades to "one SLO's worth of service per flush" so throughput
// is preserved instead of collapsing into tiny late batches.
//
// Oversubscription guard: each worker pins ParallelFor to
// `worker_parallelism` (default 1) via ScopedParallelismCap — N shard
// workers never fan out N × pool-size threads. Every worker owns one
// ClassifyScratch, so steady-state flushes allocate nothing in the
// kernel.

#ifndef FALCC_SERVE_SHARDED_ENGINE_H_
#define FALCC_SERVE_SHARDED_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/falcc.h"
#include "serve/batch_queue.h"
#include "serve/engine.h"
#include "serve/metrics.h"
#include "serve/shard_router.h"
#include "util/status.h"

namespace falcc::serve {

struct ShardedEngineOptions {
  /// Number of shards; 0 = hardware_concurrency (min 1).
  size_t num_shards = 0;
  /// Per-shard submit-ring capacity (rounded up to a power of two).
  /// A full ring rejects Submit with kUnavailable — the backpressure
  /// contract, mirroring BatchQueue's max_pending.
  size_t ring_capacity = 1 << 14;
  /// Hard upper bound on one flush, whatever the SLO math allows.
  size_t max_batch = 8192;
  /// Per-ticket latency objective, submit → decision available. The
  /// adaptive flush sizes batches so the oldest ticket's predicted
  /// completion stays inside this budget.
  double slo_seconds = 1e-3;
  /// EWMA blend factor of the per-shard service-time model.
  double ewma_alpha = 0.125;
  /// Service-model seeds: per-row cost and fixed per-flush overhead.
  /// Defaults come from BENCH_infer's compiled-kernel end-to-end numbers
  /// so the first flushes are sized sanely before feedback kicks in.
  double seed_row_seconds = 2e-6;
  double seed_overhead_seconds = 20e-6;
  /// ParallelFor cap inside shard workers (ScopedParallelismCap).
  /// Default 1: shard parallelism comes from the fleet, not from nested
  /// kernel fan-out.
  size_t worker_parallelism = 1;
  /// Start the shard worker threads. Tests disable this to exercise
  /// ring backpressure and drain logic deterministically.
  bool start_workers = true;
};

/// Point-in-time view of one shard's adaptive state (diagnostics).
struct ShardStatus {
  size_t shard = 0;
  double ewma_row_seconds = 0.0;
  double ewma_overhead_seconds = 0.0;
  uint64_t flushes = 0;
  uint64_t samples = 0;
};

/// N-shard serving front end over immutable FalccModel snapshots.
/// Thread-safe: any number of threads may submit, classify, and reload
/// concurrently. Snapshot management (install, validated reload,
/// compile-before-publish, versioning) is delegated to an inner
/// FalccEngine whose single-queue flusher is disabled.
class ShardedEngine {
 public:
  explicit ShardedEngine(ShardedEngineOptions options = {});
  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  // --- Snapshot management ---------------------------------------------

  /// Publishes `model` as the new immutable snapshot (all shards see it
  /// on their next flush).
  void Install(FalccModel model);

  /// Loads, validates, and swaps in a serialized model; a failed load
  /// keeps every shard serving the current snapshot.
  Status ReloadFromFile(const std::string& path);

  /// Zero-copy variant: serves v2 compiled kernels straight out of a
  /// read-only file mapping (see FalccEngine::ReloadMapped).
  Status ReloadMapped(const std::string& path) {
    return engine_.ReloadMapped(path);
  }

  /// Applies a delta artifact to the installed snapshot; untouched
  /// clusters keep their compiled kernels pointer-identically across the
  /// swap (see FalccEngine::ApplyDeltaBytes). Shards pick up the new
  /// snapshot on their next flush.
  Status ApplyDeltaBytes(std::string_view bytes) {
    return engine_.ApplyDeltaBytes(bytes);
  }

  std::shared_ptr<const FalccModel> snapshot() const {
    return engine_.snapshot();
  }
  uint64_t snapshot_version() const { return engine_.snapshot_version(); }

  /// The inner snapshot store. Installs and reloads through it are what
  /// every shard serves (shards read its snapshot per flush), which is
  /// how the monitor's Refresher hot-swaps the whole fleet at once.
  /// Classifying through it directly bypasses the shards.
  FalccEngine* snapshot_store() { return &engine_; }

  // --- Decision subscription -------------------------------------------

  /// Fleet-wide decision fan-in: subscribes `observer` to every decision
  /// any shard flushes, plus direct classifications through the snapshot
  /// store. Set-once, before serving traffic — the same discipline as
  /// FalccEngine::SetObserver (which keeps ownership). One thread-safe
  /// observer (e.g. the monitor's DecisionLog, a multi-writer ring)
  /// watches the whole fleet.
  void SetDecisionObserver(std::shared_ptr<DecisionObserver> observer);

  // --- Classification ---------------------------------------------------

  /// Enqueues one sample on the round-robin shard. Validates against the
  /// current snapshot on the submitting thread; fails with kUnavailable
  /// when no snapshot is installed, after Shutdown, or when the target
  /// shard's ring is full (backpressure).
  Result<ShardTicket> Submit(std::span<const double> features);

  /// Same, with deterministic affinity: samples sharing `routing_key`
  /// always land on the same shard (stable batching for per-entity
  /// streams). Routing never affects the decision, only the shard.
  Result<ShardTicket> SubmitWithKey(uint64_t routing_key,
                                    std::span<const double> features);

  /// Synchronous convenience: Submit + Wait.
  Result<SampleDecision> Classify(std::span<const double> features);

  /// Stops intake, drains every shard's ring (already-submitted tickets
  /// still complete), and joins the workers. Idempotent; also run by the
  /// destructor.
  void Shutdown();

  // --- Introspection ----------------------------------------------------

  size_t num_shards() const { return shards_.size(); }

  /// Fleet-level metrics: all shards merged, plus the inner engine's
  /// install/compile accounting. Per-ticket `total` latencies here are
  /// true submit-to-completion times.
  MetricsSnapshot GetMetrics() const;

  /// One shard's own metrics.
  MetricsSnapshot GetShardMetrics(size_t shard) const;

  /// One shard's adaptive-batching state.
  ShardStatus GetShardStatus(size_t shard) const;

  /// Deterministic key → shard mapping (exposed for tests and for
  /// clients that co-locate their own per-shard state).
  size_t RouteKey(uint64_t key) const { return router_.RouteKey(key); }

 private:
  struct Shard {
    explicit Shard(size_t ring_capacity, const ShardedEngineOptions& options)
        : ring(ring_capacity),
          service_model(options.seed_row_seconds,
                        options.seed_overhead_seconds, options.ewma_alpha) {}

    SubmitRing ring;
    /// Approximate ring occupancy; drives the empty→non-empty wakeup.
    std::atomic<size_t> occupancy{0};
    std::mutex wake_mu;
    std::condition_variable wake_cv;
    std::thread worker;
    Metrics metrics;
    /// Owned by the worker thread; snapshotted under status_mu for
    /// GetShardStatus.
    ServiceTimeModel service_model;
    mutable std::mutex status_mu;
  };

  Result<ShardTicket> SubmitToShard(size_t shard,
                                    std::span<const double> features);
  void WorkerLoop(size_t shard_index);
  /// Classifies `batch` (all tasks same width) on the current snapshot
  /// and completes every ticket. Returns the observed service seconds.
  void FlushBatch(Shard* shard, std::vector<ShardTask*>* batch,
                  std::vector<double>* features, ClassifyScratch* scratch,
                  std::vector<std::shared_ptr<ShardTask>>* owned);

  ShardedEngineOptions options_;
  FalccEngine engine_;  ///< snapshot store + validation; flusher disabled
  /// Raw fan-in pointer for the shard flush path; owned by engine_ (set
  /// through SetDecisionObserver, which forwards ownership there).
  std::atomic<DecisionObserver*> observer_raw_{nullptr};
  ShardRouter router_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> shutdown_done_{false};
  /// Submissions between the stop check and their ring push; Shutdown
  /// waits for this to reach zero so no task is stranded unseen.
  std::atomic<size_t> in_flight_submits_{0};
};

}  // namespace falcc::serve

#endif  // FALCC_SERVE_SHARDED_ENGINE_H_
