#include "serve/engine.h"

#include <chrono>
#include <utility>
#include <vector>

#include "util/timer.h"

namespace falcc::serve {

namespace {

/// Seconds between two steady_clock points.
double Seconds(std::chrono::steady_clock::time_point from,
               std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

FalccEngine::FalccEngine(FalccEngineOptions options)
    : options_(options), queue_(options.queue) {
  if (options_.start_flusher) {
    flusher_ = std::thread([this] { FlusherLoop(); });
  }
}

FalccEngine::~FalccEngine() { Shutdown(); }

void FalccEngine::Install(FalccModel model) {
  // Compile the flat-node inference kernels before the snapshot is
  // published, so the serving path never pays compilation latency and
  // never observes a half-compiled model. Models arriving from Load
  // already carry kernels; this covers hand-assembled or clone-derived
  // models. Compilation failure is not fatal — the snapshot serves
  // through the interpreted path instead.
  if (model.use_compiled() && !model.has_compiled_kernels()) {
    Timer compile_timer;
    const Status compiled = model.CompileKernels();
    if (compiled.ok()) {
      metrics_.compile().Record(compile_timer.ElapsedSeconds());
    } else {
      model.set_use_compiled(false);
    }
  }
  // Cache the v2 manifest (and with it the content hash) while the model
  // is still mutable, so delta application against the frozen snapshot
  // is O(1) and never races on lazily computed state. Failure is benign:
  // ApplyDeltaBytes recomputes the hash on demand.
  (void)model.EnsureManifest();
  auto snapshot = std::make_shared<const FalccModel>(std::move(model));
  snapshot_.store(std::move(snapshot));
  version_.fetch_add(1, std::memory_order_acq_rel);
  metrics_.AddReloads(1);
}

void FalccEngine::SetObserver(std::shared_ptr<DecisionObserver> observer) {
  FALCC_CHECK(observer_ == nullptr,
              "FalccEngine::SetObserver: observer already set");
  FALCC_CHECK(observer != nullptr,
              "FalccEngine::SetObserver: null observer");
  observer_ = std::move(observer);
  observer_raw_.store(observer_.get(), std::memory_order_release);
}

void FalccEngine::NotifyObserver(const ClassifyResponse& response,
                                 std::span<const double> features) const {
  DecisionObserver* observer =
      observer_raw_.load(std::memory_order_acquire);
  if (observer == nullptr || response.decisions.empty()) return;
  const uint64_t version = version_.load(std::memory_order_acquire);
  const size_t width = features.size() / response.decisions.size();
  for (size_t i = 0; i < response.decisions.size(); ++i) {
    observer->OnDecision(response.decisions[i],
                         features.subspan(i * width, width), version);
  }
  metrics_.AddObserved(response.decisions.size());
}

Status FalccEngine::ReloadFromFile(const std::string& path) {
  // Load + validate entirely off the serving path; a failed load leaves
  // the current snapshot serving.
  Result<FalccModel> loaded = FalccModel::LoadFromFile(path);
  if (!loaded.ok()) {
    metrics_.AddErrors(1);
    return loaded.status();
  }
  Install(std::move(loaded).value());
  return Status::OK();
}

Status FalccEngine::ReloadMapped(const std::string& path) {
  Result<FalccModel> loaded = FalccModel::LoadMapped(path);
  if (!loaded.ok()) {
    metrics_.AddErrors(1);
    return loaded.status();
  }
  Install(std::move(loaded).value());
  return Status::OK();
}

Status FalccEngine::ApplyDeltaBytes(std::string_view bytes) {
  const std::shared_ptr<const FalccModel> base = snapshot_.load();
  if (base == nullptr) {
    metrics_.AddErrors(1);
    return Status::Unavailable(
        "FalccEngine: no model snapshot installed to apply a delta to");
  }
  // Validation and the per-cluster recompile happen off the serving
  // path, against the immutable base; a failed delta leaves the current
  // snapshot serving. Untouched clusters share the base's compiled
  // kernels pointer-identically.
  Result<FalccModel> next = base->ApplyDeltaBytes(bytes);
  if (!next.ok()) {
    metrics_.AddErrors(1);
    return next.status();
  }
  // Idempotent redelivery (or a delta that re-selects the serving
  // combination): the result hashes identically to what is serving, so
  // skip the install — no version churn, no needless snapshot swap.
  const Result<uint64_t> base_hash = base->ContentHash();
  const Result<uint64_t> next_hash = next.value().ContentHash();
  if (base_hash.ok() && next_hash.ok() &&
      base_hash.value() == next_hash.value()) {
    return Status::OK();
  }
  Install(std::move(next).value());
  return Status::OK();
}

Result<ClassifyResponse> FalccEngine::ClassifyBatch(
    const ClassifyRequest& request) const {
  metrics_.AddRequests(1);
  const std::shared_ptr<const FalccModel> snapshot =
      snapshot_.load();
  if (snapshot == nullptr) {
    metrics_.AddErrors(1);
    return Status::Unavailable("FalccEngine: no model snapshot installed");
  }
  Timer timer;
  Result<ClassifyResponse> response = snapshot->ClassifyBatch(request);
  if (!response.ok()) {
    metrics_.AddErrors(1);
    return response;
  }
  const ClassifyStageSeconds& stages = response.value().stages;
  metrics_.validate().Record(stages.validate);
  metrics_.transform().Record(stages.transform);
  metrics_.match().Record(stages.match);
  metrics_.predict().Record(stages.predict);
  metrics_.total().Record(timer.ElapsedSeconds());
  metrics_.AddSamples(response.value().decisions.size());
  NotifyObserver(response.value(), request.features);
  return response;
}

Result<Ticket> FalccEngine::Submit(std::span<const double> features) {
  metrics_.AddRequests(1);
  const std::shared_ptr<const FalccModel> snapshot =
      snapshot_.load();
  if (snapshot == nullptr) {
    metrics_.AddErrors(1);
    return Status::Unavailable("FalccEngine: no model snapshot installed");
  }
  // Validate on the submitting thread: rejects never reach the queue,
  // and validation cost parallelizes across client threads.
  const Status valid = snapshot->ValidateSample(features);
  if (!valid.ok()) {
    metrics_.AddErrors(1);
    return valid;
  }
  Result<Ticket> ticket = queue_.Submit(features);
  if (!ticket.ok()) metrics_.AddErrors(1);
  return ticket;
}

Result<SampleDecision> FalccEngine::Classify(std::span<const double> features) {
  Result<Ticket> ticket = Submit(features);
  if (!ticket.ok()) return ticket.status();
  return ticket.value().Wait();
}

void FalccEngine::FlusherLoop() {
  while (std::shared_ptr<MicroBatch> batch = queue_.NextBatch()) {
    const auto flush_start = std::chrono::steady_clock::now();
    for (const auto& submitted : batch->submitted) {
      metrics_.queue_wait().Record(Seconds(submitted, flush_start));
    }
    const std::shared_ptr<const FalccModel> snapshot =
        snapshot_.load();
    if (snapshot == nullptr) {
      metrics_.AddErrors(1);
      batch->Complete(
          Status::Unavailable("FalccEngine: no model snapshot installed"), {});
      continue;
    }
    // Samples were validated at submit time, but a hot-swap in between
    // may have changed the schema — ClassifyBatch re-checks and the
    // whole batch fails gracefully in that case.
    ClassifyRequest request;
    request.features = batch->features;
    request.num_features = snapshot->num_features();
    Result<ClassifyResponse> response = snapshot->ClassifyBatch(request);
    if (!response.ok()) {
      metrics_.AddErrors(1);
      batch->Complete(response.status(), {});
      continue;
    }
    const size_t batch_rows = response.value().decisions.size();
    metrics_.AddFlushes(1);
    metrics_.AddSamples(batch_rows);
    const ClassifyStageSeconds& stages = response.value().stages;
    metrics_.validate().Record(stages.validate);
    metrics_.transform().Record(stages.transform);
    metrics_.match().Record(stages.match);
    metrics_.predict().Record(stages.predict);
    // Feed the observed service time back into the queue's deadline
    // model before waking anyone, so the very next flush decision sees
    // this batch.
    queue_.ReportServiceTime(
        batch_rows, Seconds(flush_start, std::chrono::steady_clock::now()));
    NotifyObserver(response.value(), batch->features);
    batch->Complete(Status::OK(),
                    std::move(response.value().decisions));
    // True submit-to-completion latency: stamped after Complete has
    // published the decisions, when a Ticket::Wait can actually observe
    // them — not the batch-granular pre-completion time used before.
    const auto completed = std::chrono::steady_clock::now();
    for (const auto& submitted : batch->submitted) {
      metrics_.total().Record(Seconds(submitted, completed));
    }
  }
}

void FalccEngine::Shutdown() {
  if (shutdown_.exchange(true)) return;  // idempotent
  queue_.Stop();
  if (flusher_.joinable()) flusher_.join();
}

}  // namespace falcc::serve
