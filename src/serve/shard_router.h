// Shard-routing substrate of the sharded serving fleet: a deterministic
// affinity router, a lock-free bounded MPSC submit ring, and the
// per-sample task/ticket pair the rings carry.
//
// FALCC's online phase is embarrassingly partitionable — every sample is
// classified independently (batch ≡ sequential and row-permutation
// invariance are tested contracts), so *which* shard classifies a sample
// can never change the decision, only where the work lands. Routing is
// therefore free to optimize for affinity: samples submitted with the
// same routing key always reach the same shard (stable batching, warm
// per-worker scratch), while keyless traffic spreads round-robin.
//
// The ring is a bounded Vyukov-style MPMC queue used MPSC: any number of
// client threads Push, exactly one shard worker Pops. Each cell carries a
// sequence number; producers claim a slot with one CAS and publish with
// one release store, the consumer reclaims with one release store — no
// locks anywhere on the submit path. A full ring fails Push immediately
// (backpressure surfaces as kUnavailable at Submit, same contract as the
// single-queue BatchQueue's max_pending).

#ifndef FALCC_SERVE_SHARD_ROUTER_H_
#define FALCC_SERVE_SHARD_ROUTER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/falcc.h"
#include "util/status.h"

namespace falcc::serve {

/// One queued sample: the copied feature vector, its submit timestamp,
/// and the completion state its ShardTicket waits on. The submitting
/// thread owns one reference (inside the ticket); the ring carries a
/// second (`self`), adopted and dropped by the shard worker after
/// completion — so a caller may drop its ticket without waiting and the
/// task still outlives the worker's use of it.
struct ShardTask {
  std::vector<double> features;
  std::chrono::steady_clock::time_point submitted;

  /// Ring's owning reference; written by Submit before Push (the ring's
  /// release/acquire pair publishes it), moved out by the worker.
  std::shared_ptr<ShardTask> self;

  /// Completion state, owned by `mu`.
  std::mutex mu;
  std::condition_variable done_cv;
  bool done = false;
  Status status;
  SampleDecision decision;

  /// Called by the shard worker exactly once: publishes the outcome and
  /// wakes the waiter.
  void Complete(Status task_status, const SampleDecision& result);
};

/// A claim on one submitted sample of a sharded engine.
class ShardTicket {
 public:
  ShardTicket() = default;
  explicit ShardTicket(std::shared_ptr<ShardTask> task)
      : task_(std::move(task)) {}

  bool valid() const { return task_ != nullptr; }

  /// Blocks until the sample's batch was classified; returns its
  /// decision or the flush-level error.
  Result<SampleDecision> Wait() const;

 private:
  std::shared_ptr<ShardTask> task_;
};

/// Bounded lock-free MPSC ring of ShardTask pointers (Vyukov bounded
/// queue, single consumer). Capacity is rounded up to a power of two.
class SubmitRing {
 public:
  explicit SubmitRing(size_t min_capacity);

  SubmitRing(const SubmitRing&) = delete;
  SubmitRing& operator=(const SubmitRing&) = delete;

  /// Multi-producer enqueue; returns false when the ring is full.
  bool Push(ShardTask* task);

  /// Single-consumer dequeue; returns nullptr when the ring is empty.
  ShardTask* Pop();

  size_t capacity() const { return cells_.size(); }

 private:
  struct Cell {
    std::atomic<size_t> sequence;
    ShardTask* task = nullptr;
  };

  std::vector<Cell> cells_;
  size_t mask_ = 0;
  alignas(64) std::atomic<size_t> enqueue_pos_{0};
  alignas(64) std::atomic<size_t> dequeue_pos_{0};
};

/// Deterministic shard selection. A routing key maps to a shard via a
/// splitmix64-finalized hash — the same key always lands on the same
/// shard of an N-shard fleet, across engine instances and processes.
/// Keyless submissions rotate round-robin (a single relaxed counter; the
/// only nondeterministic choice, and one that cannot affect decisions).
class ShardRouter {
 public:
  explicit ShardRouter(size_t num_shards);

  size_t num_shards() const { return num_shards_; }

  /// Shard for an explicit affinity key (pure function of key and
  /// shard count).
  size_t RouteKey(uint64_t key) const;

  /// Shard for keyless traffic: round-robin.
  size_t RouteNext();

 private:
  size_t num_shards_;
  std::atomic<uint64_t> round_robin_{0};
};

}  // namespace falcc::serve

#endif  // FALCC_SERVE_SHARD_ROUTER_H_
