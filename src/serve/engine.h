// Online serving engine: immutable model snapshots with atomic hot-swap
// plus a micro-batching classification front end.
//
// Concurrency model:
//  * The current model lives in a SnapshotPtr (an atomic<shared_ptr>
//    equivalent, see below). Readers take a reference-counted snapshot
//    in a handful of instructions — no blocking mutex on the
//    classification path — and keep classifying on it even if a reload
//    swaps the pointer mid-request; the old model is freed when its
//    last in-flight request drops the reference.
//  * ReloadFromFile/Install build and validate the new model entirely
//    off the serving path (on the calling thread), then publish it with
//    a single atomic store.
//  * Micro-batching: Submit/Classify enqueue single samples into a
//    BatchQueue; a dedicated flusher thread drains micro-batches through
//    FalccModel::ClassifyBatch, which amortizes transform, centroid
//    match, and per-model tree traversal across the batch.
//
// Every entry point reports failures as Status (kUnavailable when no
// snapshot is installed or the engine is shut down); nothing throws.

#ifndef FALCC_SERVE_ENGINE_H_
#define FALCC_SERVE_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <thread>

#include "core/falcc.h"
#include "serve/batch_queue.h"
#include "serve/metrics.h"
#include "util/status.h"

namespace falcc::serve {

struct FalccEngineOptions {
  BatchQueueOptions queue;
  /// Start the micro-batching flusher thread. Disable for engines used
  /// only via the direct ClassifyBatch path.
  bool start_flusher = true;
};

/// Subscriber to the engine's decision stream (the monitoring hook).
/// OnDecision is invoked once per successfully classified sample, on
/// whatever thread produced the decision — direct ClassifyBatch callers
/// and the flusher thread concurrently — so implementations must be
/// thread-safe and cheap: the call sits on the serving hot path.
/// `features` is the sample's original feature vector and is only valid
/// for the duration of the call.
class DecisionObserver {
 public:
  virtual ~DecisionObserver() = default;
  virtual void OnDecision(const SampleDecision& decision,
                          std::span<const double> features,
                          uint64_t snapshot_version) = 0;
};

/// Atomically swappable shared_ptr<const FalccModel>: the pointer is
/// guarded by a one-bit spinlock held only for a reference-count bump
/// (load) or two pointer swaps (store) — the same technique libstdc++
/// uses for std::atomic<std::shared_ptr>. We spell it out instead
/// because libstdc++'s reader path (GCC 12) unlocks with relaxed
/// ordering, which is mutually exclusive in practice but leaves no
/// happens-before edge ThreadSanitizer can verify; acquire/release on
/// both sides makes the hot-swap provably race-free.
class SnapshotPtr {
 public:
  std::shared_ptr<const FalccModel> load() const {
    Lock();
    std::shared_ptr<const FalccModel> copy = ptr_;
    Unlock();
    return copy;
  }

  void store(std::shared_ptr<const FalccModel> next) {
    Lock();
    ptr_.swap(next);
    Unlock();
    // `next` now holds the superseded snapshot; it is released here,
    // outside the critical section (destruction can be expensive).
  }

 private:
  void Lock() const {
    while (locked_.exchange(true, std::memory_order_acquire)) {
      // One physical core may be all we have: let the lock holder run.
      std::this_thread::yield();
    }
  }
  void Unlock() const { locked_.store(false, std::memory_order_release); }

  mutable std::atomic<bool> locked_{false};
  std::shared_ptr<const FalccModel> ptr_;
};

/// A serving wrapper around FalccModel snapshots. Thread-safe: any
/// number of threads may classify, submit, and reload concurrently.
class FalccEngine {
 public:
  explicit FalccEngine(FalccEngineOptions options = {});
  ~FalccEngine();

  FalccEngine(const FalccEngine&) = delete;
  FalccEngine& operator=(const FalccEngine&) = delete;

  // --- Snapshot management ---------------------------------------------

  /// Publishes `model` as the new immutable snapshot.
  void Install(FalccModel model);

  /// Loads and validates a serialized model, then atomically swaps it
  /// in. On failure the current snapshot stays untouched and serving
  /// continues uninterrupted.
  Status ReloadFromFile(const std::string& path);

  /// Like ReloadFromFile, but serves v2 snapshots' compiled kernels
  /// directly out of a read-only file mapping — no deserialize copy of
  /// the hot tables. Decisions are bit-identical to the copying path.
  /// Falls back to the regular loader for v1 artifacts.
  Status ReloadMapped(const std::string& path);

  /// Applies a delta artifact (SaveDelta output) to the installed
  /// snapshot: only the clusters named in the delta are re-validated and
  /// recompiled; every untouched cluster's compiled kernel is shared
  /// pointer-identically with the previous snapshot. Fails without
  /// touching the snapshot when no model is installed, when the delta's
  /// base hash does not match the installed snapshot, or when any delta
  /// section is invalid. Idempotent under at-least-once delivery: a
  /// delta whose result hashes identically to the serving snapshot
  /// succeeds without reinstalling (no version churn).
  Status ApplyDeltaBytes(std::string_view bytes);

  /// Current snapshot (nullptr before the first Install/Reload).
  std::shared_ptr<const FalccModel> snapshot() const {
    return snapshot_.load();
  }

  /// Monotonic counter, incremented on every successful install.
  uint64_t snapshot_version() const {
    return version_.load(std::memory_order_acquire);
  }

  // --- Decision subscription -------------------------------------------

  /// Subscribes `observer` to every decision the engine produces from
  /// now on. Set-once: call before serving traffic (typically right
  /// after the first Install); the engine keeps shared ownership. The
  /// serving paths read the observer with a single acquire load per
  /// batch, so a subscription installed before traffic is race-free.
  void SetObserver(std::shared_ptr<DecisionObserver> observer);

  // --- Classification ---------------------------------------------------

  /// Direct, caller-thread batch classification on the current
  /// snapshot. kUnavailable when no snapshot is installed.
  Result<ClassifyResponse> ClassifyBatch(const ClassifyRequest& request) const;

  /// Enqueues one sample for micro-batched classification. Validates
  /// against the current snapshot before queuing; the Ticket resolves
  /// when the sample's micro-batch is flushed.
  Result<Ticket> Submit(std::span<const double> features);

  /// Synchronous convenience: Submit + Wait.
  Result<SampleDecision> Classify(std::span<const double> features);

  /// Stops the queue, drains already-submitted batches, and joins the
  /// flusher. Subsequent submissions fail with kUnavailable. Idempotent;
  /// also run by the destructor.
  void Shutdown();

  const Metrics& metrics() const { return metrics_; }
  MetricsSnapshot GetMetrics() const { return metrics_.Snapshot(); }

 private:
  void FlusherLoop();

  /// Fans one successful batch out to the observer, if any.
  void NotifyObserver(const ClassifyResponse& response,
                      std::span<const double> features) const;

  FalccEngineOptions options_;
  SnapshotPtr snapshot_;
  std::atomic<uint64_t> version_{0};
  /// Owner + raw publication pointer: hot paths load the raw pointer
  /// (acquire) once per batch instead of taking a shared_ptr reference.
  std::shared_ptr<DecisionObserver> observer_;
  std::atomic<DecisionObserver*> observer_raw_{nullptr};
  /// mutable: recording observability from const classification paths
  /// does not change the engine's logical state. Metrics is internally
  /// thread-safe (relaxed atomics only).
  mutable Metrics metrics_;
  BatchQueue queue_;
  std::thread flusher_;
  std::atomic<bool> shutdown_{false};
};

}  // namespace falcc::serve

#endif  // FALCC_SERVE_ENGINE_H_
