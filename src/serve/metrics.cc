#include "serve/metrics.h"

#include <cmath>
#include <sstream>

namespace falcc::serve {

namespace {

/// Upper bound of bucket b in seconds: 2^b µs (bucket 0 is < 1 µs).
double BucketUpperSeconds(size_t bucket) {
  return std::ldexp(1e-6, static_cast<int>(bucket));
}

double Quantile(const std::array<uint64_t, LatencyHistogram::kNumBuckets>&
                    counts,
                uint64_t total, double q) {
  if (total == 0) return 0.0;
  const uint64_t rank =
      static_cast<uint64_t>(std::ceil(q * static_cast<double>(total)));
  uint64_t seen = 0;
  for (size_t b = 0; b < counts.size(); ++b) {
    seen += counts[b];
    if (seen >= rank) return BucketUpperSeconds(b);
  }
  return BucketUpperSeconds(counts.size() - 1);
}

void AppendSummary(std::ostringstream* out, const char* name,
                   const LatencySummary& s) {
  *out << "  " << name << ": count=" << s.count
       << " p50=" << s.p50_seconds * 1e6 << "us"
       << " p95=" << s.p95_seconds * 1e6 << "us"
       << " p99=" << s.p99_seconds * 1e6 << "us\n";
}

void AppendJsonSummary(std::ostringstream* out, const char* name,
                       const LatencySummary& s) {
  *out << "\"" << name << "\": {\"count\": " << s.count
       << ", \"p50_us\": " << s.p50_seconds * 1e6
       << ", \"p95_us\": " << s.p95_seconds * 1e6
       << ", \"p99_us\": " << s.p99_seconds * 1e6 << "}";
}

}  // namespace

void LatencyHistogram::Record(double seconds) {
  const double micros = seconds * 1e6;
  size_t bucket = 0;
  if (micros >= 1.0) {
    const int exp = std::ilogb(micros);
    bucket = static_cast<size_t>(exp) + 1;
    if (bucket >= kNumBuckets) bucket = kNumBuckets - 1;
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
}

LatencySummary LatencyHistogram::Summarize() const {
  std::array<uint64_t, kNumBuckets> counts{};
  uint64_t total = 0;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    counts[b] = buckets_[b].load(std::memory_order_relaxed);
    total += counts[b];
  }
  LatencySummary summary;
  summary.count = total;
  summary.p50_seconds = Quantile(counts, total, 0.50);
  summary.p95_seconds = Quantile(counts, total, 0.95);
  summary.p99_seconds = Quantile(counts, total, 0.99);
  return summary;
}

MetricsSnapshot Metrics::Snapshot() const {
  MetricsSnapshot snapshot;
  snapshot.requests = requests_.load(std::memory_order_relaxed);
  snapshot.samples = samples_.load(std::memory_order_relaxed);
  snapshot.errors = errors_.load(std::memory_order_relaxed);
  snapshot.flushes = flushes_.load(std::memory_order_relaxed);
  snapshot.reloads = reloads_.load(std::memory_order_relaxed);
  snapshot.observed = observed_.load(std::memory_order_relaxed);
  snapshot.total = total_.Summarize();
  snapshot.queue_wait = queue_wait_.Summarize();
  snapshot.validate = validate_.Summarize();
  snapshot.transform = transform_.Summarize();
  snapshot.match = match_.Summarize();
  snapshot.predict = predict_.Summarize();
  snapshot.compile = compile_.Summarize();
  return snapshot;
}

std::string MetricsSnapshot::ToString() const {
  std::ostringstream out;
  out << "serve metrics:\n"
      << "  requests=" << requests << " samples=" << samples
      << " errors=" << errors << " flushes=" << flushes
      << " reloads=" << reloads << " observed=" << observed << "\n";
  AppendSummary(&out, "total", total);
  AppendSummary(&out, "queue_wait", queue_wait);
  AppendSummary(&out, "validate", validate);
  AppendSummary(&out, "transform", transform);
  AppendSummary(&out, "match", match);
  AppendSummary(&out, "predict", predict);
  AppendSummary(&out, "compile", compile);
  return out.str();
}

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream out;
  out << "{\n"
      << "  \"requests\": " << requests << ",\n"
      << "  \"samples\": " << samples << ",\n"
      << "  \"errors\": " << errors << ",\n"
      << "  \"flushes\": " << flushes << ",\n"
      << "  \"reloads\": " << reloads << ",\n"
      << "  \"observed\": " << observed << ",\n  ";
  AppendJsonSummary(&out, "total", total);
  out << ",\n  ";
  AppendJsonSummary(&out, "queue_wait", queue_wait);
  out << ",\n  ";
  AppendJsonSummary(&out, "validate", validate);
  out << ",\n  ";
  AppendJsonSummary(&out, "transform", transform);
  out << ",\n  ";
  AppendJsonSummary(&out, "match", match);
  out << ",\n  ";
  AppendJsonSummary(&out, "predict", predict);
  out << ",\n  ";
  AppendJsonSummary(&out, "compile", compile);
  out << "\n}\n";
  return out.str();
}

}  // namespace falcc::serve
