#include "serve/metrics.h"

#include <cmath>
#include <sstream>

namespace falcc::serve {

namespace {

/// Upper bound of bucket b in seconds. Bucket 0 is < 1 µs; bucket
/// 1 + e*kSubBuckets + s covers
/// [2^e * (1 + s/kSubBuckets), 2^e * (1 + (s+1)/kSubBuckets)) µs.
double BucketUpperSeconds(size_t bucket) {
  if (bucket == 0) return 1e-6;
  const size_t e = (bucket - 1) / LatencyHistogram::kSubBuckets;
  const size_t sub = (bucket - 1) % LatencyHistogram::kSubBuckets;
  const double decade = std::ldexp(1e-6, static_cast<int>(e));
  return decade * (1.0 + static_cast<double>(sub + 1) /
                             LatencyHistogram::kSubBuckets);
}

double Quantile(const std::array<uint64_t, LatencyHistogram::kNumBuckets>&
                    counts,
                uint64_t total, double q) {
  if (total == 0) return 0.0;
  const uint64_t rank =
      static_cast<uint64_t>(std::ceil(q * static_cast<double>(total)));
  uint64_t seen = 0;
  for (size_t b = 0; b < counts.size(); ++b) {
    seen += counts[b];
    if (seen >= rank) return BucketUpperSeconds(b);
  }
  return BucketUpperSeconds(counts.size() - 1);
}

void AppendSummary(std::ostringstream* out, const char* name,
                   const LatencySummary& s) {
  *out << "  " << name << ": count=" << s.count
       << " p50=" << s.p50_seconds * 1e6 << "us"
       << " p95=" << s.p95_seconds * 1e6 << "us"
       << " p99=" << s.p99_seconds * 1e6 << "us\n";
}

void AppendJsonSummary(std::ostringstream* out, const char* name,
                       const LatencySummary& s) {
  *out << "\"" << name << "\": {\"count\": " << s.count
       << ", \"p50_us\": " << s.p50_seconds * 1e6
       << ", \"p95_us\": " << s.p95_seconds * 1e6
       << ", \"p99_us\": " << s.p99_seconds * 1e6 << "}";
}

}  // namespace

void LatencyHistogram::Record(double seconds) {
  const double micros = seconds * 1e6;
  size_t bucket = 0;
  if (micros >= 1.0) {
    size_t exp = static_cast<size_t>(std::ilogb(micros));
    if (exp >= kNumExponents) {
      bucket = kNumBuckets - 1;
    } else {
      // micros / 2^exp is in [1, 2): the fractional part picks the
      // linear sub-bucket inside the decade.
      const double frac = std::ldexp(micros, -static_cast<int>(exp)) - 1.0;
      size_t sub = static_cast<size_t>(frac * kSubBuckets);
      if (sub >= kSubBuckets) sub = kSubBuckets - 1;
      bucket = 1 + exp * kSubBuckets + sub;
    }
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
}

void LatencyHistogram::MergeFrom(const LatencyHistogram& other) {
  for (size_t b = 0; b < kNumBuckets; ++b) {
    const uint64_t n = other.buckets_[b].load(std::memory_order_relaxed);
    if (n > 0) buckets_[b].fetch_add(n, std::memory_order_relaxed);
  }
}

LatencySummary LatencyHistogram::Summarize() const {
  std::array<uint64_t, kNumBuckets> counts{};
  uint64_t total = 0;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    counts[b] = buckets_[b].load(std::memory_order_relaxed);
    total += counts[b];
  }
  LatencySummary summary;
  summary.count = total;
  summary.p50_seconds = Quantile(counts, total, 0.50);
  summary.p95_seconds = Quantile(counts, total, 0.95);
  summary.p99_seconds = Quantile(counts, total, 0.99);
  return summary;
}

void Metrics::MergeFrom(const Metrics& other) {
  AddRequests(other.requests_.load(std::memory_order_relaxed));
  AddSamples(other.samples_.load(std::memory_order_relaxed));
  AddErrors(other.errors_.load(std::memory_order_relaxed));
  AddFlushes(other.flushes_.load(std::memory_order_relaxed));
  AddReloads(other.reloads_.load(std::memory_order_relaxed));
  AddObserved(other.observed_.load(std::memory_order_relaxed));
  total_.MergeFrom(other.total_);
  queue_wait_.MergeFrom(other.queue_wait_);
  validate_.MergeFrom(other.validate_);
  transform_.MergeFrom(other.transform_);
  match_.MergeFrom(other.match_);
  predict_.MergeFrom(other.predict_);
  compile_.MergeFrom(other.compile_);
}

MetricsSnapshot Metrics::Snapshot() const {
  MetricsSnapshot snapshot;
  snapshot.requests = requests_.load(std::memory_order_relaxed);
  snapshot.samples = samples_.load(std::memory_order_relaxed);
  snapshot.errors = errors_.load(std::memory_order_relaxed);
  snapshot.flushes = flushes_.load(std::memory_order_relaxed);
  snapshot.reloads = reloads_.load(std::memory_order_relaxed);
  snapshot.observed = observed_.load(std::memory_order_relaxed);
  snapshot.total = total_.Summarize();
  snapshot.queue_wait = queue_wait_.Summarize();
  snapshot.validate = validate_.Summarize();
  snapshot.transform = transform_.Summarize();
  snapshot.match = match_.Summarize();
  snapshot.predict = predict_.Summarize();
  snapshot.compile = compile_.Summarize();
  return snapshot;
}

std::string MetricsSnapshot::ToString() const {
  std::ostringstream out;
  out << "serve metrics:\n"
      << "  requests=" << requests << " samples=" << samples
      << " errors=" << errors << " flushes=" << flushes
      << " reloads=" << reloads << " observed=" << observed << "\n";
  AppendSummary(&out, "total", total);
  AppendSummary(&out, "queue_wait", queue_wait);
  AppendSummary(&out, "validate", validate);
  AppendSummary(&out, "transform", transform);
  AppendSummary(&out, "match", match);
  AppendSummary(&out, "predict", predict);
  AppendSummary(&out, "compile", compile);
  return out.str();
}

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream out;
  out << "{\n"
      << "  \"requests\": " << requests << ",\n"
      << "  \"samples\": " << samples << ",\n"
      << "  \"errors\": " << errors << ",\n"
      << "  \"flushes\": " << flushes << ",\n"
      << "  \"reloads\": " << reloads << ",\n"
      << "  \"observed\": " << observed << ",\n  ";
  AppendJsonSummary(&out, "total", total);
  out << ",\n  ";
  AppendJsonSummary(&out, "queue_wait", queue_wait);
  out << ",\n  ";
  AppendJsonSummary(&out, "validate", validate);
  out << ",\n  ";
  AppendJsonSummary(&out, "transform", transform);
  out << ",\n  ";
  AppendJsonSummary(&out, "match", match);
  out << ",\n  ";
  AppendJsonSummary(&out, "predict", predict);
  out << ",\n  ";
  AppendJsonSummary(&out, "compile", compile);
  out << "\n}\n";
  return out.str();
}

}  // namespace falcc::serve
