#include "serve/sharded_engine.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "util/parallel.h"
#include "util/timer.h"

namespace falcc::serve {

namespace {

double Seconds(std::chrono::steady_clock::time_point from,
               std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

FalccEngineOptions SnapshotStoreOptions() {
  FalccEngineOptions options;
  // The inner engine is a snapshot store + validator only; micro-batching
  // is the shards' job.
  options.start_flusher = false;
  return options;
}

size_t DefaultNumShards() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<size_t>(hw) : 1;
}

}  // namespace

ShardedEngine::ShardedEngine(ShardedEngineOptions options)
    : options_(options),
      engine_(SnapshotStoreOptions()),
      router_(options.num_shards == 0 ? DefaultNumShards()
                                      : options.num_shards) {
  FALCC_CHECK(options_.slo_seconds > 0.0,
              "ShardedEngine: slo_seconds must be > 0");
  FALCC_CHECK(options_.max_batch > 0, "ShardedEngine: max_batch must be > 0");
  const size_t n = router_.num_shards();
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>(options_.ring_capacity,
                                              options_));
  }
  if (options_.start_workers) {
    for (size_t i = 0; i < n; ++i) {
      shards_[i]->worker = std::thread([this, i] { WorkerLoop(i); });
    }
  }
}

ShardedEngine::~ShardedEngine() { Shutdown(); }

void ShardedEngine::Install(FalccModel model) {
  engine_.Install(std::move(model));
}

Status ShardedEngine::ReloadFromFile(const std::string& path) {
  return engine_.ReloadFromFile(path);
}

void ShardedEngine::SetDecisionObserver(
    std::shared_ptr<DecisionObserver> observer) {
  FALCC_CHECK(observer != nullptr,
              "ShardedEngine::SetDecisionObserver: null observer");
  DecisionObserver* raw = observer.get();
  // The inner engine owns the observer (and enforces set-once); it also
  // notifies for any classification routed directly through the
  // snapshot store. Shard flushes bypass the inner engine's classify
  // path entirely, so they fan in through the raw pointer below.
  engine_.SetObserver(std::move(observer));
  observer_raw_.store(raw, std::memory_order_release);
}

Result<ShardTicket> ShardedEngine::Submit(std::span<const double> features) {
  return SubmitToShard(router_.RouteNext(), features);
}

Result<ShardTicket> ShardedEngine::SubmitWithKey(
    uint64_t routing_key, std::span<const double> features) {
  return SubmitToShard(router_.RouteKey(routing_key), features);
}

Result<SampleDecision> ShardedEngine::Classify(
    std::span<const double> features) {
  Result<ShardTicket> ticket = Submit(features);
  if (!ticket.ok()) return ticket.status();
  return ticket.value().Wait();
}

Result<ShardTicket> ShardedEngine::SubmitToShard(
    size_t shard_index, std::span<const double> features) {
  Shard& shard = *shards_[shard_index];
  shard.metrics.AddRequests(1);
  // Announce the in-flight submission *before* the stop check: Shutdown
  // stores `stopping_` and then waits for this counter to hit zero, so
  // every submission that passed the check below has pushed (and is
  // visible to the workers' final drain) by the time the drain starts.
  in_flight_submits_.fetch_add(1, std::memory_order_acq_rel);
  if (stopping_.load(std::memory_order_acquire)) {
    in_flight_submits_.fetch_sub(1, std::memory_order_release);
    shard.metrics.AddErrors(1);
    return Status::Unavailable("ShardedEngine: shut down, no new submissions");
  }
  const std::shared_ptr<const FalccModel> snapshot = engine_.snapshot();
  if (snapshot == nullptr) {
    in_flight_submits_.fetch_sub(1, std::memory_order_release);
    shard.metrics.AddErrors(1);
    return Status::Unavailable("ShardedEngine: no model snapshot installed");
  }
  // Validate on the submitting thread: rejects never occupy a ring slot,
  // and validation cost parallelizes across clients.
  const Status valid = snapshot->ValidateSample(features);
  if (!valid.ok()) {
    in_flight_submits_.fetch_sub(1, std::memory_order_release);
    shard.metrics.AddErrors(1);
    return valid;
  }
  auto task = std::make_shared<ShardTask>();
  task->features.assign(features.begin(), features.end());
  task->submitted = std::chrono::steady_clock::now();
  task->self = task;  // the ring's reference, dropped by the worker
  if (!shard.ring.Push(task.get())) {
    task->self.reset();
    in_flight_submits_.fetch_sub(1, std::memory_order_release);
    shard.metrics.AddErrors(1);
    return Status::Unavailable("ShardedEngine: shard " +
                               std::to_string(shard_index) +
                               " submit ring is full");
  }
  // Wake the worker only on the empty→non-empty edge. The empty critical
  // section orders this notify after the worker's predicate check, so
  // the wakeup cannot be lost.
  if (shard.occupancy.fetch_add(1, std::memory_order_acq_rel) == 0) {
    { std::lock_guard<std::mutex> lock(shard.wake_mu); }
    shard.wake_cv.notify_one();
  }
  in_flight_submits_.fetch_sub(1, std::memory_order_release);
  return ShardTicket(std::move(task));
}

void ShardedEngine::WorkerLoop(size_t shard_index) {
  Shard& shard = *shards_[shard_index];
  // Oversubscription guard: this worker is one lane of an N-shard fleet;
  // the batch kernel must not fan out over the global pool on top of it.
  ScopedParallelismCap cap(options_.worker_parallelism);
  // Worker-owned scratch: steady-state flushes reuse the transform
  // matrix, sort arrays, and wrapper Dataset with zero allocation.
  ClassifyScratch scratch;
  std::vector<ShardTask*> batch;
  std::vector<std::shared_ptr<ShardTask>> owned;
  std::vector<double> features;
  batch.reserve(options_.max_batch);
  owned.reserve(options_.max_batch);
  ShardTask* carry = nullptr;  // width-mismatched task, next flush's seed

  for (;;) {
    batch.clear();
    if (carry != nullptr) {
      batch.push_back(carry);
      carry = nullptr;
    }
    // Gather: drain the ring greedily — batch size tracks the backlog —
    // but stop the moment classifying one more row is predicted to push
    // the *oldest* gathered ticket past its SLO deadline. Under overload
    // (deadline already unmeetable) degrade to one SLO's worth of
    // predicted service per flush: throughput-preserving, instead of
    // collapsing into tiny, already-late batches.
    while (batch.size() < options_.max_batch) {
      if (!batch.empty()) {
        const double age = Seconds(batch.front()->submitted,
                                   std::chrono::steady_clock::now());
        const double budget = std::max(options_.slo_seconds - age,
                                       0.5 * options_.slo_seconds);
        if (shard.service_model.Predict(batch.size() + 1) > budget) break;
      }
      ShardTask* task = shard.ring.Pop();
      if (task == nullptr) break;
      shard.occupancy.fetch_sub(1, std::memory_order_relaxed);
      if (!batch.empty() &&
          task->features.size() != batch.front()->features.size()) {
        // A hot-swap changed the schema mid-stream: keep batches
        // width-uniform so each fails or succeeds as a unit.
        carry = task;
        break;
      }
      batch.push_back(task);
    }

    if (batch.empty()) {
      if (stopping_.load(std::memory_order_acquire) &&
          in_flight_submits_.load(std::memory_order_acquire) == 0) {
        // Stop is visible and no submission is mid-push; one more pop
        // after those loads is authoritative — every pre-stop push
        // happened-before the in-flight counter reached zero.
        ShardTask* last = shard.ring.Pop();
        if (last == nullptr) return;  // fully drained
        shard.occupancy.fetch_sub(1, std::memory_order_relaxed);
        batch.push_back(last);
      } else {
        std::unique_lock<std::mutex> lock(shard.wake_mu);
        shard.wake_cv.wait(lock, [&] {
          return shard.occupancy.load(std::memory_order_acquire) > 0 ||
                 stopping_.load(std::memory_order_acquire);
        });
        continue;
      }
    }
    FlushBatch(&shard, &batch, &features, &scratch, &owned);
  }
}

void ShardedEngine::FlushBatch(Shard* shard, std::vector<ShardTask*>* batch,
                               std::vector<double>* features,
                               ClassifyScratch* scratch,
                               std::vector<std::shared_ptr<ShardTask>>* owned) {
  const auto flush_start = std::chrono::steady_clock::now();
  const size_t n = batch->size();
  for (ShardTask* task : *batch) {
    shard->metrics.queue_wait().Record(Seconds(task->submitted, flush_start));
  }
  // Adopt the ring's references before completion: a submitter that
  // dropped its ticket must not free the task under us, and completed
  // tasks must not leak the ring's count.
  owned->clear();
  for (ShardTask* task : *batch) owned->push_back(std::move(task->self));

  const std::shared_ptr<const FalccModel> snapshot = engine_.snapshot();
  if (snapshot == nullptr) {
    shard->metrics.AddErrors(1);
    const Status unavailable =
        Status::Unavailable("ShardedEngine: no model snapshot installed");
    for (ShardTask* task : *batch) task->Complete(unavailable, {});
    owned->clear();
    return;
  }

  const size_t width = batch->front()->features.size();
  features->clear();
  for (ShardTask* task : *batch) {
    features->insert(features->end(), task->features.begin(),
                     task->features.end());
  }
  ClassifyRequest request;
  request.features = *features;
  request.num_features = width;

  Timer service;
  Result<ClassifyResponse> response =
      snapshot->ClassifyBatch(request, scratch);
  const double service_seconds = service.ElapsedSeconds();

  if (!response.ok()) {
    // E.g. a hot-swap changed the schema between validation and flush:
    // the whole width-uniform batch fails gracefully.
    shard->metrics.AddErrors(1);
    for (ShardTask* task : *batch) task->Complete(response.status(), {});
    owned->clear();
    return;
  }

  shard->metrics.AddFlushes(1);
  shard->metrics.AddSamples(n);
  const ClassifyStageSeconds& stages = response.value().stages;
  shard->metrics.validate().Record(stages.validate);
  shard->metrics.transform().Record(stages.transform);
  shard->metrics.match().Record(stages.match);
  shard->metrics.predict().Record(stages.predict);

  const std::vector<SampleDecision>& decisions = response.value().decisions;
  // Fleet-wide observer fan-in: every shard notifies the one observer
  // (multi-writer safe by contract) before completing tickets, matching
  // FalccEngine's notify-then-complete order.
  if (DecisionObserver* observer =
          observer_raw_.load(std::memory_order_acquire)) {
    const uint64_t version = engine_.snapshot_version();
    for (size_t i = 0; i < n; ++i) {
      observer->OnDecision(decisions[i], (*batch)[i]->features, version);
    }
    shard->metrics.AddObserved(n);
  }
  for (size_t i = 0; i < n; ++i) {
    (*batch)[i]->Complete(Status::OK(), decisions[i]);
  }
  // True per-ticket submit-to-completion latency, stamped after the
  // decision became observable to its waiter.
  const auto completed = std::chrono::steady_clock::now();
  for (ShardTask* task : *batch) {
    shard->metrics.total().Record(Seconds(task->submitted, completed));
  }
  {
    std::lock_guard<std::mutex> lock(shard->status_mu);
    shard->service_model.Update(n, service_seconds);
  }
  owned->clear();
}

void ShardedEngine::Shutdown() {
  if (shutdown_done_.exchange(true)) return;  // idempotent
  stopping_.store(true, std::memory_order_release);
  // Wait out submissions caught between their stop check and ring push,
  // so the workers' final drain provably sees everything.
  while (in_flight_submits_.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
  for (auto& shard : shards_) {
    { std::lock_guard<std::mutex> lock(shard->wake_mu); }
    shard->wake_cv.notify_all();
  }
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
  // With workers disabled (tests) or never started, complete whatever is
  // still queued so no ticket waits forever.
  for (auto& shard : shards_) {
    while (ShardTask* task = shard->ring.Pop()) {
      shard->occupancy.fetch_sub(1, std::memory_order_relaxed);
      std::shared_ptr<ShardTask> owned = std::move(task->self);
      task->Complete(
          Status::Unavailable("ShardedEngine: shut down before flush"), {});
    }
  }
}

MetricsSnapshot ShardedEngine::GetMetrics() const {
  Metrics aggregate;
  for (const auto& shard : shards_) aggregate.MergeFrom(shard->metrics);
  // Install/compile accounting (and any direct use of the inner engine)
  // lives in the snapshot store's metrics.
  aggregate.MergeFrom(engine_.metrics());
  return aggregate.Snapshot();
}

MetricsSnapshot ShardedEngine::GetShardMetrics(size_t shard) const {
  FALCC_CHECK(shard < shards_.size(), "GetShardMetrics: shard out of range");
  return shards_[shard]->metrics.Snapshot();
}

ShardStatus ShardedEngine::GetShardStatus(size_t shard) const {
  FALCC_CHECK(shard < shards_.size(), "GetShardStatus: shard out of range");
  const Shard& s = *shards_[shard];
  ShardStatus status;
  status.shard = shard;
  {
    std::lock_guard<std::mutex> lock(s.status_mu);
    status.ewma_row_seconds = s.service_model.per_row_seconds();
    status.ewma_overhead_seconds = s.service_model.overhead_seconds();
  }
  const MetricsSnapshot snapshot = s.metrics.Snapshot();
  status.flushes = snapshot.flushes;
  status.samples = snapshot.samples;
  return status;
}

}  // namespace falcc::serve
