#include "serve/batch_queue.h"

#include <algorithm>

namespace falcc::serve {

void MicroBatch::Complete(Status batch_status,
                          std::vector<SampleDecision> results) {
  {
    std::lock_guard<std::mutex> lock(mu);
    FALCC_CHECK(!done, "MicroBatch completed twice");
    status = std::move(batch_status);
    decisions = std::move(results);
    done = true;
  }
  done_cv.notify_all();
}

Result<SampleDecision> Ticket::Wait() const {
  FALCC_CHECK(batch_ != nullptr, "Ticket::Wait on an empty ticket");
  std::unique_lock<std::mutex> lock(batch_->mu);
  batch_->done_cv.wait(lock, [&] { return batch_->done; });
  if (!batch_->status.ok()) return batch_->status;
  FALCC_CHECK(index_ < batch_->decisions.size(),
              "completed batch is missing decisions");
  return batch_->decisions[index_];
}

namespace {
// Seed service estimates for a queue that has not observed a batch yet:
// per-row cost of the compiled fused kernels plus a fixed per-flush
// overhead, both from BENCH_infer/BENCH_serve on the reference box.
constexpr double kSeedRowSeconds = 2e-6;
constexpr double kSeedOverheadSeconds = 20e-6;
constexpr double kServiceEwmaAlpha = 0.125;
}  // namespace

void ServiceTimeModel::Update(size_t rows, double seconds) {
  if (rows == 0 || !(seconds > 0.0)) return;
  // Attribute the observation with the other term held at its current
  // estimate; alternating the two EWMAs keeps both identifiable without
  // a regression solve on the hot path.
  const double row_obs =
      std::max(0.0, seconds - overhead_) / static_cast<double>(rows);
  per_row_ += alpha_ * (row_obs - per_row_);
  if (per_row_ < 1e-9) per_row_ = 1e-9;
  const double overhead_obs =
      std::max(0.0, seconds - per_row_ * static_cast<double>(rows));
  overhead_ += alpha_ * (overhead_obs - overhead_);
}

BatchQueue::BatchQueue(BatchQueueOptions options)
    : options_(options),
      service_model_(kSeedRowSeconds, kSeedOverheadSeconds,
                     kServiceEwmaAlpha) {
  FALCC_CHECK(options_.max_batch > 0, "BatchQueue: max_batch must be > 0");
  FALCC_CHECK(options_.max_delay_seconds >= 0.0,
              "BatchQueue: max_delay_seconds must be >= 0");
  FALCC_CHECK(options_.slo_seconds >= 0.0,
              "BatchQueue: slo_seconds must be >= 0");
}

Result<Ticket> BatchQueue::Submit(std::span<const double> features) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopped_) {
    return Status::Unavailable("BatchQueue: stopped, no new submissions");
  }
  if (pending_samples_ >= options_.max_pending) {
    return Status::Unavailable("BatchQueue: max_pending reached");
  }
  if (open_ == nullptr) {
    open_ = std::make_shared<MicroBatch>();
    // A batch can never exceed max_pending samples either, so a huge
    // max_batch (e.g. "effectively unbounded") must not pre-allocate
    // for samples that can never arrive.
    const size_t cap = std::min(options_.max_batch, options_.max_pending);
    open_->features.reserve(cap * features.size());
    open_->submitted.reserve(cap);
  }
  const bool was_empty = open_->num_samples == 0;
  open_->features.insert(open_->features.end(), features.begin(),
                         features.end());
  open_->submitted.push_back(std::chrono::steady_clock::now());
  Ticket ticket(open_, open_->num_samples);
  ++open_->num_samples;
  ++pending_samples_;
  const bool full = open_->num_samples >= options_.max_batch;
  if (full) {
    ready_.push_back(std::move(open_));
    open_ = nullptr;
  }
  // The flusher only needs a wake-up when a deadline starts ticking (the
  // batch's first sample) or when a batch becomes ready.
  if (was_empty || full) flusher_cv_.notify_one();
  return ticket;
}

std::shared_ptr<MicroBatch> BatchQueue::NextBatch() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (!ready_.empty()) {
      std::shared_ptr<MicroBatch> batch = std::move(ready_.front());
      ready_.pop_front();
      pending_samples_ -= batch->num_samples;
      return batch;
    }
    if (open_ != nullptr && open_->num_samples > 0) {
      // Fixed-delay flush by default; with an SLO configured, flush when
      // classifying the batch *now* is predicted to land the oldest
      // sample right at its deadline — any later and the SLO is breached,
      // any earlier and batching headroom is left on the table.
      double wait_budget = options_.max_delay_seconds;
      if (options_.slo_seconds > 0.0) {
        wait_budget = std::max(
            0.0, options_.slo_seconds -
                     service_model_.Predict(open_->num_samples));
      }
      const auto deadline =
          open_->submitted.front() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(wait_budget));
      if (stopped_ || std::chrono::steady_clock::now() >= deadline) {
        std::shared_ptr<MicroBatch> batch = std::move(open_);
        open_ = nullptr;
        pending_samples_ -= batch->num_samples;
        return batch;
      }
      flusher_cv_.wait_until(lock, deadline);
      continue;
    }
    if (stopped_) return nullptr;
    flusher_cv_.wait(lock);
  }
}

void BatchQueue::ReportServiceTime(size_t rows, double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  service_model_.Update(rows, seconds);
}

void BatchQueue::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopped_ = true;
  }
  flusher_cv_.notify_all();
}

}  // namespace falcc::serve
