#include "serve/shard_router.h"

#include <utility>

namespace falcc::serve {

void ShardTask::Complete(Status task_status, const SampleDecision& result) {
  {
    std::lock_guard<std::mutex> lock(mu);
    FALCC_CHECK(!done, "ShardTask completed twice");
    status = std::move(task_status);
    decision = result;
    done = true;
  }
  done_cv.notify_all();
}

Result<SampleDecision> ShardTicket::Wait() const {
  FALCC_CHECK(task_ != nullptr, "ShardTicket::Wait on an empty ticket");
  std::unique_lock<std::mutex> lock(task_->mu);
  task_->done_cv.wait(lock, [&] { return task_->done; });
  if (!task_->status.ok()) return task_->status;
  return task_->decision;
}

namespace {

size_t RoundUpPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

SubmitRing::SubmitRing(size_t min_capacity) {
  const size_t capacity = RoundUpPowerOfTwo(min_capacity < 2 ? 2 : min_capacity);
  cells_ = std::vector<Cell>(capacity);
  mask_ = capacity - 1;
  for (size_t i = 0; i < capacity; ++i) {
    cells_[i].sequence.store(i, std::memory_order_relaxed);
  }
}

bool SubmitRing::Push(ShardTask* task) {
  size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
  for (;;) {
    Cell& cell = cells_[pos & mask_];
    const size_t seq = cell.sequence.load(std::memory_order_acquire);
    const intptr_t dif =
        static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
    if (dif == 0) {
      if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                             std::memory_order_relaxed)) {
        cell.task = task;
        cell.sequence.store(pos + 1, std::memory_order_release);
        return true;
      }
      // CAS refreshed `pos`; retry with the new claim point.
    } else if (dif < 0) {
      // The slot still holds an element from one lap ago: ring is full.
      return false;
    } else {
      pos = enqueue_pos_.load(std::memory_order_relaxed);
    }
  }
}

ShardTask* SubmitRing::Pop() {
  const size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
  Cell& cell = cells_[pos & mask_];
  const size_t seq = cell.sequence.load(std::memory_order_acquire);
  const intptr_t dif =
      static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1);
  if (dif < 0) return nullptr;  // producer has not published this slot yet
  ShardTask* task = cell.task;
  cell.sequence.store(pos + mask_ + 1, std::memory_order_release);
  dequeue_pos_.store(pos + 1, std::memory_order_relaxed);
  return task;
}

ShardRouter::ShardRouter(size_t num_shards)
    : num_shards_(num_shards < 1 ? 1 : num_shards) {}

size_t ShardRouter::RouteKey(uint64_t key) const {
  // splitmix64 finalizer: full-avalanche mix so adjacent keys spread
  // uniformly over the shards regardless of the shard count.
  uint64_t h = key + 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return static_cast<size_t>(h % num_shards_);
}

size_t ShardRouter::RouteNext() {
  return static_cast<size_t>(
      round_robin_.fetch_add(1, std::memory_order_relaxed) % num_shards_);
}

}  // namespace falcc::serve
