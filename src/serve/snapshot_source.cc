#include "serve/snapshot_source.h"

#include <fstream>
#include <utility>

#include "io/snapshot.h"
#include "util/status.h"

namespace falcc::serve {

namespace {

/// Reads the whole artifact at `path`. Delta artifacts are one cluster's
/// section plus a manifest — small by construction — so slurping is the
/// right tool; full snapshots never come through here (LoadFull streams
/// or maps them).
Result<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("SnapshotSource: cannot open '" + path + "'");
  }
  std::string bytes;
  char chunk[65536];
  while (in.read(chunk, sizeof(chunk)) || in.gcount() > 0) {
    bytes.append(chunk, static_cast<size_t>(in.gcount()));
  }
  if (in.bad()) {
    return Status::IOError("SnapshotSource: read error on '" + path + "'");
  }
  return bytes;
}

/// First line of the artifact (without the newline), for header
/// dispatch. Reads at most one buffer's worth — headers are short.
Result<std::string> ReadHeaderLine(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("SnapshotSource: cannot open '" + path + "'");
  }
  std::string line;
  if (!std::getline(in, line)) {
    return Status::IOError("SnapshotSource: empty artifact '" + path + "'");
  }
  return line;
}

}  // namespace

SnapshotSource::SnapshotSource(FalccEngine* engine,
                               SnapshotSourceOptions options)
    : engine_(engine), options_(options) {
  FALCC_CHECK(engine_ != nullptr, "SnapshotSource: null engine");
}

SnapshotSource::SnapshotSource(ShardedEngine* engine,
                               SnapshotSourceOptions options)
    : sharded_(engine), options_(options) {
  FALCC_CHECK(sharded_ != nullptr, "SnapshotSource: null engine");
}

Status SnapshotSource::LoadFull(const std::string& path) {
  if (options_.prefer_mmap) {
    return engine_ != nullptr ? engine_->ReloadMapped(path)
                              : sharded_->ReloadMapped(path);
  }
  return engine_ != nullptr ? engine_->ReloadFromFile(path)
                            : sharded_->ReloadFromFile(path);
}

Status SnapshotSource::ApplyDelta(const std::string& path) {
  Result<std::string> bytes = ReadFileBytes(path);
  FALCC_RETURN_IF_ERROR(bytes.status());
  return ApplyDeltaBytes(bytes.value());
}

Status SnapshotSource::ApplyDeltaBytes(std::string_view bytes) {
  return engine_ != nullptr ? engine_->ApplyDeltaBytes(bytes)
                            : sharded_->ApplyDeltaBytes(bytes);
}

Result<SnapshotLoadKind> SnapshotSource::Load(const std::string& path) {
  Result<std::string> header = ReadHeaderLine(path);
  FALCC_RETURN_IF_ERROR(header.status());
  if (header.value() == io::kDeltaHeaderV2) {
    FALCC_RETURN_IF_ERROR(ApplyDelta(path));
    return SnapshotLoadKind::kDelta;
  }
  // Full snapshots — v2 sectioned or the legacy v1 text format — go
  // through the regular loader, which does its own header validation
  // and rejects anything unrecognized.
  FALCC_RETURN_IF_ERROR(LoadFull(path));
  // Only v2 snapshots actually serve from a mapping; LoadMapped falls
  // back to the copying loader for v1, so report that truthfully.
  const bool mapped =
      options_.prefer_mmap && header.value() == io::kSnapshotHeaderV2;
  return mapped ? SnapshotLoadKind::kMapped : SnapshotLoadKind::kFull;
}

}  // namespace falcc::serve
