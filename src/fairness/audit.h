// One-call fairness audit: evaluates a prediction vector against every
// fairness notion the library implements, with per-group diagnostics.
// The reporting-side companion of the metric primitives in metrics.h —
// used by the CLI's `inspect` command and convenient for library users
// who want a dashboard-style summary instead of individual metric calls.

#ifndef FALCC_FAIRNESS_AUDIT_H_
#define FALCC_FAIRNESS_AUDIT_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/groups.h"
#include "fairness/metrics.h"

namespace falcc {

/// Confusion-matrix-level statistics of one sensitive group.
struct GroupAudit {
  std::string name;           ///< e.g. "(sex=1, race=0)"
  size_t size = 0;
  double base_rate = 0.0;     ///< P(y=1) within the group
  double positive_rate = 0.0; ///< P(z=1) within the group
  double accuracy = 0.0;
  double tpr = 0.0;           ///< 0 when the group has no positives
  double fpr = 0.0;           ///< 0 when the group has no negatives
};

/// Full audit of one prediction vector.
struct FairnessAudit {
  double accuracy = 0.0;
  double demographic_parity = 0.0;
  double equalized_odds = 0.0;
  double equal_opportunity = 0.0;
  double treatment_equality = 0.0;
  /// 1 = fully consistent over k nearest (non-sensitive) neighbors.
  double consistency = 0.0;
  std::vector<GroupAudit> groups;
};

/// Audits `predictions` (one binary label per row of `data`). The
/// consistency neighborhood size defaults to the paper's k = 15.
Result<FairnessAudit> AuditPredictions(const Dataset& data,
                                       std::span<const int> predictions,
                                       size_t consistency_k = 15);

/// Renders an audit as a human-readable multi-line report.
std::string FormatAudit(const FairnessAudit& audit);

}  // namespace falcc

#endif  // FALCC_FAIRNESS_AUDIT_H_
