// Group-fairness metrics (Tab. 3 of the paper) and the consistency
// metric for individual fairness.
//
// All group metrics are the paper's mean-difference form: for each
// sensitive group, compare a group-conditional probability against the
// same probability over the whole (sub)population, and average the
// absolute deviations over groups. Every metric returns a bias value in
// [0, 1], 0 = perfectly fair.

#ifndef FALCC_FAIRNESS_METRICS_H_
#define FALCC_FAIRNESS_METRICS_H_

#include <span>
#include <string>
#include <vector>

#include "util/status.h"

namespace falcc {

/// The fairness definitions integrated in FALCC (Tab. 3).
enum class FairnessMetric {
  kDemographicParity,
  kEqualizedOdds,
  kEqualOpportunity,
  kTreatmentEquality,
};

/// Short name, e.g. "dp", "eq_od", "eq_op", "tr_eq".
std::string FairnessMetricName(FairnessMetric metric);

/// Inputs shared by all group metrics: true labels y, predictions z,
/// group id per sample, and the number of groups.
struct GroupedPredictions {
  std::span<const int> labels;       ///< y_i ∈ {0,1}
  std::span<const int> predictions;  ///< z_i ∈ {0,1}
  std::span<const size_t> groups;    ///< group id per sample
  size_t num_groups = 0;
};

/// Demographic parity: mean over groups of |P(z=1|G=j) − P(z=1)|.
Result<double> DemographicParity(const GroupedPredictions& in);

/// Equalized odds: average over y ∈ {0,1} of the demographic-parity-style
/// deviation conditioned on y.
Result<double> EqualizedOdds(const GroupedPredictions& in);

/// Equal opportunity: the y = 1 half of equalized odds.
Result<double> EqualOpportunity(const GroupedPredictions& in);

/// Treatment equality: mean over groups of the deviation of the group's
/// FP/(FP+FN) ratio from the overall ratio.
Result<double> TreatmentEquality(const GroupedPredictions& in);

/// Dispatch on `metric`.
Result<double> ComputeBias(FairnessMetric metric,
                           const GroupedPredictions& in);

/// Consistency (individual fairness, Zemel et al.):
/// 1 − (1/n) Σ_i |z_i − mean(z of the k nearest neighbors of i)|.
/// `neighbors[i]` lists the neighbor indices of sample i (excluding i).
/// Returns a value in [0, 1]; 1 = fully consistent.
Result<double> Consistency(std::span<const int> predictions,
                           const std::vector<std::vector<size_t>>& neighbors);

/// Convenience: builds the neighbor lists with a kd-tree over `points`
/// (k nearest, excluding the sample itself) and evaluates Consistency.
Result<double> ConsistencyKnn(std::span<const int> predictions,
                              const std::vector<std::vector<double>>& points,
                              size_t k);

}  // namespace falcc

#endif  // FALCC_FAIRNESS_METRICS_H_
