// The combined accuracy/fairness loss L̂ (Eq. 2 of the paper) and its
// local (per-region) aggregation.
//
//   L̂ = λ · inaccuracy + (1 − λ) · bias
//
// Model assessment minimizes L̂ inside each cluster; the evaluation
// reports L̂-based rankings and the cluster-weighted local loss.

#ifndef FALCC_FAIRNESS_LOSS_H_
#define FALCC_FAIRNESS_LOSS_H_

#include "fairness/metrics.h"

namespace falcc {

/// Accuracy/fairness/loss bundle of one evaluation.
struct LossBreakdown {
  double inaccuracy = 0.0;
  double bias = 0.0;
  double combined = 0.0;  ///< λ·inaccuracy + (1−λ)·bias
};

/// Evaluates Eq. 2 over the full sample set.
Result<LossBreakdown> CombinedLoss(const GroupedPredictions& in,
                                   FairnessMetric metric, double lambda);

/// Evaluates Eq. 2 inside each region and returns the average weighted by
/// the region's share of samples (the paper's "local bias" report, §4.1.3
/// uses λ = 0.5; λ = 0 yields the pure per-region bias).
/// `regions[i]` is the region id of sample i; ids must be < num_regions.
Result<LossBreakdown> LocalLoss(const GroupedPredictions& in,
                                std::span<const size_t> regions,
                                size_t num_regions, FairnessMetric metric,
                                double lambda);

}  // namespace falcc

#endif  // FALCC_FAIRNESS_LOSS_H_
