#include "fairness/proxy.h"

#include <algorithm>
#include <cmath>

#include "util/math.h"

namespace falcc {

Result<std::vector<ProxyReport>> AnalyzeProxies(const Dataset& data,
                                                const ProxyOptions& options) {
  if (data.num_rows() < 3) {
    return Status::InvalidArgument("proxy analysis needs >= 3 rows");
  }
  const std::vector<size_t>& sens = data.sensitive_features();
  if (sens.empty()) {
    return Status::InvalidArgument("proxy analysis needs sensitive features");
  }
  if (options.removal_threshold < 0.0 || options.removal_threshold > 1.0) {
    return Status::InvalidArgument("removal_threshold must be in [0,1]");
  }

  std::vector<std::vector<double>> sens_cols;
  sens_cols.reserve(sens.size());
  for (size_t s : sens) sens_cols.push_back(data.Column(s));

  std::vector<ProxyReport> reports;
  for (size_t a = 0; a < data.num_features(); ++a) {
    if (std::find(sens.begin(), sens.end(), a) != sens.end()) continue;
    const std::vector<double> col = data.Column(a);
    ProxyReport report;
    report.column = a;
    double weight_sum = 0.0;
    double abs_sum = 0.0;
    bool significant_strong = false;
    for (const auto& s_col : sens_cols) {
      const double r = PearsonCorrelation(s_col, col);
      weight_sum += 1.0 - std::fabs(r);
      abs_sum += std::fabs(r);
      const double p = PearsonPValue(r, col.size());
      if (std::fabs(r) > options.removal_threshold &&
          p < options.significance) {
        significant_strong = true;
      }
    }
    report.weight = weight_sum / static_cast<double>(sens_cols.size());
    report.mean_abs_correlation =
        abs_sum / static_cast<double>(sens_cols.size());
    report.removed = significant_strong;
    reports.push_back(report);
  }
  return reports;
}

Result<ColumnTransform> BuildClusteringTransform(const Dataset& data,
                                                 const ProxyOptions& options,
                                                 ColumnTransform base) {
  if (base.num_input_features() != data.num_features()) {
    return Status::InvalidArgument(
        "base transform width does not match dataset");
  }
  // Clustering never sees sensitive attributes.
  base.DropColumns(data.sensitive_features());

  if (options.strategy == ProxyMitigation::kNone) return base;

  Result<std::vector<ProxyReport>> reports = AnalyzeProxies(data, options);
  if (!reports.ok()) return reports.status();

  if (options.strategy == ProxyMitigation::kReweigh) {
    for (const ProxyReport& r : reports.value()) {
      base.ScaleColumn(r.column, r.weight);
    }
    return base;
  }

  // kRemove: drop flagged proxies; keep everything else untouched.
  for (const ProxyReport& r : reports.value()) {
    if (r.removed) base.DropColumn(r.column);
  }
  if (base.num_output_features() == 0) {
    return Status::FailedPrecondition(
        "proxy removal dropped every clustering feature");
  }
  return base;
}

}  // namespace falcc
