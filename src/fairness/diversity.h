// Ensemble-diversity measurement.
//
// FALCC's diverse-model-training component tunes its pool of classifiers
// to maximize diversity, measured with the non-pairwise entropy of
// Cunningham & Carney (ECML 2000), the measure the paper selects (§3.3)
// and the x-axis of the Fig. 4 experiment. For each sample the Shannon
// entropy of the ensemble's vote distribution is computed; the ensemble
// score is the mean over samples, normalized to [0, 1].

#ifndef FALCC_FAIRNESS_DIVERSITY_H_
#define FALCC_FAIRNESS_DIVERSITY_H_

#include <vector>

#include "util/status.h"

namespace falcc {

/// Non-pairwise (entropy) diversity of an ensemble.
///
/// `votes[m][i]` is the binary prediction of model m on sample i; all
/// models must have voted on the same samples. Returns a value in [0, 1]:
/// 0 when all models always agree, 1 when every sample splits the
/// ensemble evenly.
Result<double> EnsembleEntropy(const std::vector<std::vector<int>>& votes);

}  // namespace falcc

#endif  // FALCC_FAIRNESS_DIVERSITY_H_
