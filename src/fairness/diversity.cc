#include "fairness/diversity.h"

#include <cmath>

namespace falcc {

Result<double> EnsembleEntropy(const std::vector<std::vector<int>>& votes) {
  if (votes.empty()) {
    return Status::InvalidArgument("EnsembleEntropy: no models");
  }
  const size_t n = votes[0].size();
  if (n == 0) {
    return Status::InvalidArgument("EnsembleEntropy: no samples");
  }
  for (const auto& v : votes) {
    if (v.size() != n) {
      return Status::InvalidArgument("EnsembleEntropy: ragged vote matrix");
    }
  }
  const double num_models = static_cast<double>(votes.size());

  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double ones = 0.0;
    for (const auto& v : votes) ones += v[i];
    const double p = ones / num_models;
    double h = 0.0;
    if (p > 0.0) h -= p * std::log2(p);
    if (p < 1.0) h -= (1.0 - p) * std::log2(1.0 - p);
    total += h;  // log2 => already normalized to [0,1] for binary votes
  }
  return total / static_cast<double>(n);
}

}  // namespace falcc
