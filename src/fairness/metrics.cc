#include "fairness/metrics.h"

#include <cmath>

#include "cluster/kdtree.h"

namespace falcc {

namespace {

Status Validate(const GroupedPredictions& in) {
  const size_t n = in.labels.size();
  if (n == 0) return Status::InvalidArgument("metric: no samples");
  if (in.predictions.size() != n || in.groups.size() != n) {
    return Status::InvalidArgument("metric: input size mismatch");
  }
  if (in.num_groups == 0) {
    return Status::InvalidArgument("metric: num_groups must be positive");
  }
  for (size_t i = 0; i < n; ++i) {
    if (in.groups[i] >= in.num_groups) {
      return Status::InvalidArgument("metric: group id out of range");
    }
    if ((in.labels[i] != 0 && in.labels[i] != 1) ||
        (in.predictions[i] != 0 && in.predictions[i] != 1)) {
      return Status::InvalidArgument("metric: labels must be binary");
    }
  }
  return Status::OK();
}

// Mean over groups of |rate_j − rate_overall| where rate is the positive-
// prediction rate among samples with mask true. Groups with no masked
// samples contribute 0 (they have no measurable rate).
double MeanRateDeviation(const GroupedPredictions& in,
                         const std::vector<bool>& mask) {
  std::vector<double> group_pos(in.num_groups, 0.0);
  std::vector<double> group_count(in.num_groups, 0.0);
  double pos = 0.0, count = 0.0;
  for (size_t i = 0; i < in.labels.size(); ++i) {
    if (!mask[i]) continue;
    ++count;
    group_count[in.groups[i]] += 1.0;
    if (in.predictions[i] == 1) {
      ++pos;
      group_pos[in.groups[i]] += 1.0;
    }
  }
  if (count <= 0.0) return 0.0;
  const double overall = pos / count;
  double dev = 0.0;
  for (size_t g = 0; g < in.num_groups; ++g) {
    if (group_count[g] <= 0.0) continue;
    dev += std::fabs(group_pos[g] / group_count[g] - overall);
  }
  return dev / static_cast<double>(in.num_groups);
}

}  // namespace

std::string FairnessMetricName(FairnessMetric metric) {
  switch (metric) {
    case FairnessMetric::kDemographicParity:
      return "dp";
    case FairnessMetric::kEqualizedOdds:
      return "eq_od";
    case FairnessMetric::kEqualOpportunity:
      return "eq_op";
    case FairnessMetric::kTreatmentEquality:
      return "tr_eq";
  }
  return "unknown";
}

Result<double> DemographicParity(const GroupedPredictions& in) {
  FALCC_RETURN_IF_ERROR(Validate(in));
  std::vector<bool> all(in.labels.size(), true);
  return MeanRateDeviation(in, all);
}

Result<double> EqualizedOdds(const GroupedPredictions& in) {
  FALCC_RETURN_IF_ERROR(Validate(in));
  double total = 0.0;
  for (int y = 0; y <= 1; ++y) {
    std::vector<bool> mask(in.labels.size());
    for (size_t i = 0; i < in.labels.size(); ++i) {
      mask[i] = in.labels[i] == y;
    }
    total += MeanRateDeviation(in, mask);
  }
  return total / 2.0;
}

Result<double> EqualOpportunity(const GroupedPredictions& in) {
  FALCC_RETURN_IF_ERROR(Validate(in));
  std::vector<bool> mask(in.labels.size());
  for (size_t i = 0; i < in.labels.size(); ++i) {
    mask[i] = in.labels[i] == 1;
  }
  return MeanRateDeviation(in, mask);
}

Result<double> TreatmentEquality(const GroupedPredictions& in) {
  FALCC_RETURN_IF_ERROR(Validate(in));
  std::vector<double> fp(in.num_groups, 0.0), fn(in.num_groups, 0.0);
  double fp_total = 0.0, fn_total = 0.0;
  for (size_t i = 0; i < in.labels.size(); ++i) {
    if (in.predictions[i] == 1 && in.labels[i] == 0) {
      fp[in.groups[i]] += 1.0;
      fp_total += 1.0;
    } else if (in.predictions[i] == 0 && in.labels[i] == 1) {
      fn[in.groups[i]] += 1.0;
      fn_total += 1.0;
    }
  }
  // With no errors at all, treatment is trivially equal.
  if (fp_total + fn_total <= 0.0) return 0.0;
  const double overall = fp_total / (fp_total + fn_total);
  double dev = 0.0;
  for (size_t g = 0; g < in.num_groups; ++g) {
    const double denom = fp[g] + fn[g];
    if (denom <= 0.0) continue;  // group has no errors: skip (no ratio)
    dev += std::fabs(fp[g] / denom - overall);
  }
  return dev / static_cast<double>(in.num_groups);
}

Result<double> ComputeBias(FairnessMetric metric,
                           const GroupedPredictions& in) {
  switch (metric) {
    case FairnessMetric::kDemographicParity:
      return DemographicParity(in);
    case FairnessMetric::kEqualizedOdds:
      return EqualizedOdds(in);
    case FairnessMetric::kEqualOpportunity:
      return EqualOpportunity(in);
    case FairnessMetric::kTreatmentEquality:
      return TreatmentEquality(in);
  }
  return Status::InvalidArgument("unknown fairness metric");
}

Result<double> Consistency(std::span<const int> predictions,
                           const std::vector<std::vector<size_t>>& neighbors) {
  const size_t n = predictions.size();
  if (n == 0) return Status::InvalidArgument("consistency: no samples");
  if (neighbors.size() != n) {
    return Status::InvalidArgument("consistency: neighbor list size mismatch");
  }
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    if (neighbors[i].empty()) continue;  // isolated sample: consistent
    double mean = 0.0;
    for (size_t j : neighbors[i]) {
      if (j >= n) {
        return Status::InvalidArgument("consistency: neighbor out of range");
      }
      mean += predictions[j];
    }
    mean /= static_cast<double>(neighbors[i].size());
    total += std::fabs(static_cast<double>(predictions[i]) - mean);
  }
  return 1.0 - total / static_cast<double>(n);
}

Result<double> ConsistencyKnn(std::span<const int> predictions,
                              const std::vector<std::vector<double>>& points,
                              size_t k) {
  if (points.size() != predictions.size()) {
    return Status::InvalidArgument("consistency: points size mismatch");
  }
  Result<KdTree> tree = KdTree::Build(points);
  if (!tree.ok()) return tree.status();
  std::vector<std::vector<size_t>> neighbors(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    // k+1 because the query point itself is its own nearest neighbor.
    std::vector<size_t> nn = tree.value().Nearest(points[i], k + 1);
    for (size_t j : nn) {
      if (j != i && neighbors[i].size() < k) neighbors[i].push_back(j);
    }
  }
  return Consistency(predictions, neighbors);
}

}  // namespace falcc
