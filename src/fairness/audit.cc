#include "fairness/audit.h"

#include <sstream>

#include "data/transforms.h"
#include "eval/report.h"

namespace falcc {

Result<FairnessAudit> AuditPredictions(const Dataset& data,
                                       std::span<const int> predictions,
                                       size_t consistency_k) {
  if (predictions.size() != data.num_rows()) {
    return Status::InvalidArgument("audit: prediction count mismatch");
  }
  if (data.num_rows() == 0) {
    return Status::InvalidArgument("audit: empty dataset");
  }
  Result<GroupIndex> index = GroupIndex::Build(data);
  if (!index.ok()) return index.status();
  Result<std::vector<size_t>> groups_r = index.value().GroupsOf(data);
  if (!groups_r.ok()) return groups_r.status();
  const std::vector<size_t>& groups = groups_r.value();
  const size_t num_groups = index.value().num_groups();

  GroupedPredictions in;
  in.labels = data.labels();
  in.predictions = predictions;
  in.groups = groups;
  in.num_groups = num_groups;

  FairnessAudit audit;
  Result<double> dp = DemographicParity(in);
  if (!dp.ok()) return dp.status();
  audit.demographic_parity = dp.value();
  audit.equalized_odds = EqualizedOdds(in).value();
  audit.equal_opportunity = EqualOpportunity(in).value();
  audit.treatment_equality = TreatmentEquality(in).value();

  // Consistency over the standardized non-sensitive feature space.
  ColumnTransform transform = ColumnTransform::Standardize(data);
  transform.DropColumns(data.sensitive_features());
  Result<double> consistency =
      ConsistencyKnn(predictions, transform.ApplyAll(data), consistency_k);
  if (!consistency.ok()) return consistency.status();
  audit.consistency = consistency.value();

  // Per-group confusion statistics.
  struct Counts {
    double n = 0, pos_label = 0, pos_pred = 0, correct = 0;
    double tp = 0, fp = 0, fn = 0, tn = 0;
  };
  std::vector<Counts> counts(num_groups);
  double total_correct = 0.0;
  for (size_t i = 0; i < data.num_rows(); ++i) {
    Counts& c = counts[groups[i]];
    const int y = data.Label(i);
    const int z = predictions[i];
    c.n += 1.0;
    c.pos_label += y;
    c.pos_pred += z;
    if (y == z) {
      c.correct += 1.0;
      total_correct += 1.0;
    }
    if (y == 1 && z == 1) c.tp += 1.0;
    if (y == 0 && z == 1) c.fp += 1.0;
    if (y == 1 && z == 0) c.fn += 1.0;
    if (y == 0 && z == 0) c.tn += 1.0;
  }
  audit.accuracy = total_correct / static_cast<double>(data.num_rows());
  for (size_t g = 0; g < num_groups; ++g) {
    const Counts& c = counts[g];
    GroupAudit group;
    group.name = index.value().GroupName(g, data);
    group.size = static_cast<size_t>(c.n);
    if (c.n > 0.0) {
      group.base_rate = c.pos_label / c.n;
      group.positive_rate = c.pos_pred / c.n;
      group.accuracy = c.correct / c.n;
    }
    if (c.tp + c.fn > 0.0) group.tpr = c.tp / (c.tp + c.fn);
    if (c.fp + c.tn > 0.0) group.fpr = c.fp / (c.fp + c.tn);
    audit.groups.push_back(std::move(group));
  }
  return audit;
}

std::string FormatAudit(const FairnessAudit& audit) {
  std::ostringstream out;
  out << "accuracy:            " << FormatPercent(audit.accuracy, 1)
      << "%\n";
  out << "demographic parity:  " << FormatDouble(audit.demographic_parity, 4)
      << '\n';
  out << "equalized odds:      " << FormatDouble(audit.equalized_odds, 4)
      << '\n';
  out << "equal opportunity:   " << FormatDouble(audit.equal_opportunity, 4)
      << '\n';
  out << "treatment equality:  " << FormatDouble(audit.treatment_equality, 4)
      << '\n';
  out << "consistency:         " << FormatDouble(audit.consistency, 4)
      << '\n';
  TextTable table({"group", "size", "base-rate%", "pos-rate%", "acc%",
                   "TPR%", "FPR%"});
  for (const GroupAudit& g : audit.groups) {
    table.AddRow({g.name, std::to_string(g.size),
                  FormatPercent(g.base_rate, 1),
                  FormatPercent(g.positive_rate, 1),
                  FormatPercent(g.accuracy, 1), FormatPercent(g.tpr, 1),
                  FormatPercent(g.fpr, 1)});
  }
  out << table.ToString();
  return out.str();
}

}  // namespace falcc
