#include "fairness/loss.h"

namespace falcc {

Result<LossBreakdown> CombinedLoss(const GroupedPredictions& in,
                                   FairnessMetric metric, double lambda) {
  if (lambda < 0.0 || lambda > 1.0) {
    return Status::InvalidArgument("lambda must be in [0,1]");
  }
  const size_t n = in.labels.size();
  if (n == 0) return Status::InvalidArgument("CombinedLoss: no samples");

  double wrong = 0.0;
  for (size_t i = 0; i < n; ++i) {
    if (in.labels[i] != in.predictions[i]) ++wrong;
  }
  Result<double> bias = ComputeBias(metric, in);
  if (!bias.ok()) return bias.status();

  LossBreakdown out;
  out.inaccuracy = wrong / static_cast<double>(n);
  out.bias = bias.value();
  out.combined = lambda * out.inaccuracy + (1.0 - lambda) * out.bias;
  return out;
}

Result<LossBreakdown> LocalLoss(const GroupedPredictions& in,
                                std::span<const size_t> regions,
                                size_t num_regions, FairnessMetric metric,
                                double lambda) {
  const size_t n = in.labels.size();
  if (regions.size() != n) {
    return Status::InvalidArgument("LocalLoss: regions size mismatch");
  }
  if (num_regions == 0) {
    return Status::InvalidArgument("LocalLoss: num_regions must be positive");
  }

  // Bucket sample indices by region.
  std::vector<std::vector<size_t>> buckets(num_regions);
  for (size_t i = 0; i < n; ++i) {
    if (regions[i] >= num_regions) {
      return Status::InvalidArgument("LocalLoss: region id out of range");
    }
    buckets[regions[i]].push_back(i);
  }

  LossBreakdown total;
  for (const auto& bucket : buckets) {
    if (bucket.empty()) continue;
    std::vector<int> labels, predictions;
    std::vector<size_t> groups;
    labels.reserve(bucket.size());
    predictions.reserve(bucket.size());
    groups.reserve(bucket.size());
    for (size_t i : bucket) {
      labels.push_back(in.labels[i]);
      predictions.push_back(in.predictions[i]);
      groups.push_back(in.groups[i]);
    }
    GroupedPredictions region;
    region.labels = labels;
    region.predictions = predictions;
    region.groups = groups;
    region.num_groups = in.num_groups;
    Result<LossBreakdown> local = CombinedLoss(region, metric, lambda);
    if (!local.ok()) return local.status();
    const double weight =
        static_cast<double>(bucket.size()) / static_cast<double>(n);
    total.inaccuracy += weight * local.value().inaccuracy;
    total.bias += weight * local.value().bias;
    total.combined += weight * local.value().combined;
  }
  return total;
}

}  // namespace falcc
