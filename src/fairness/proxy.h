// Proxy-discrimination mitigation (paper §3.4).
//
// Both strategies rely on the Pearson correlation between each sensitive
// attribute and every other attribute:
//  * kReweigh — every non-sensitive attribute is scaled by
//    weight(a, Sens) = (1/|Sens|) Σ_s (1 − |ρ(s, a)|)  (Eq. 1)
//    before clustering, so strongly group-correlated (proxy) attributes
//    contribute less to the distances that define local regions. The
//    paper prints Eq. 1 with (1 − ρ); we use |ρ| so the stated codomain
//    [0, 1] and the intended "stronger correlation ⇒ lower weight"
//    semantics also hold for negative correlations.
//  * kRemove — attributes with |ρ| > δ (default 0.5) at significance
//    p < 0.05 (two-sided t-test) are dropped for clustering entirely.
//
// The models themselves always see the original attributes; only the
// feature space used for local-region identification is altered.

#ifndef FALCC_FAIRNESS_PROXY_H_
#define FALCC_FAIRNESS_PROXY_H_

#include <vector>

#include "data/dataset.h"
#include "data/transforms.h"
#include "util/status.h"

namespace falcc {

/// Mitigation strategy selector.
enum class ProxyMitigation { kNone, kReweigh, kRemove };

/// Correlation diagnostics of one non-sensitive attribute.
struct ProxyReport {
  size_t column = 0;
  double mean_abs_correlation = 0.0;  ///< mean |ρ| over sensitive attrs
  double weight = 1.0;                ///< Eq. 1 reweighing factor
  bool removed = false;               ///< flagged by the removal strategy
};

/// Options for proxy analysis.
struct ProxyOptions {
  ProxyMitigation strategy = ProxyMitigation::kNone;
  double removal_threshold = 0.5;  ///< δ on |ρ|
  double significance = 0.05;      ///< p-value bound for removal
};

/// Analyzes every non-sensitive attribute of `data` against the sensitive
/// attributes. The report always carries weights and removal flags for
/// both strategies so callers can inspect either.
Result<std::vector<ProxyReport>> AnalyzeProxies(const Dataset& data,
                                                const ProxyOptions& options);

/// Builds the clustering-space transform implementing `options.strategy`
/// on top of `base` (typically a standardizing transform fitted on the
/// validation data). Sensitive columns are always dropped — clustering
/// operates on Π_{R∖Sens} (paper §3.5) regardless of strategy.
Result<ColumnTransform> BuildClusteringTransform(const Dataset& data,
                                                 const ProxyOptions& options,
                                                 ColumnTransform base);

}  // namespace falcc

#endif  // FALCC_FAIRNESS_PROXY_H_
