// Column-level transforms used across the pipeline:
//  * projecting out columns (clustering ignores sensitive attributes,
//    Π_{R∖Sens}, and the proxy "removal" strategy drops proxy columns),
//  * per-column scaling (the proxy "reweighing" strategy distorts the
//    space clustered over, Eq. 1 of the paper),
//  * standardization (z-scoring) for distance-based components.
//
// ColumnTransform captures a fitted transform so the online phase can
// process new samples exactly like the offline validation data
// (paper §3.7 step 1).

#ifndef FALCC_DATA_TRANSFORMS_H_
#define FALCC_DATA_TRANSFORMS_H_

#include <iosfwd>
#include <span>
#include <vector>

#include "data/dataset.h"
#include "util/status.h"

namespace falcc {

/// A fitted, reusable feature-space transform: optionally standardize,
/// multiply per-column weights, then keep only selected columns.
/// Apply() works on both whole datasets and single samples so the online
/// phase reproduces the offline processing.
class ColumnTransform {
 public:
  /// Empty transform over zero columns; assign a fitted transform before
  /// use (allows holder types to be default-constructible).
  ColumnTransform() = default;

  /// Identity transform over `num_features` columns.
  static ColumnTransform Identity(size_t num_features);

  /// Standardizing transform fitted on `data` (per-column z-scoring;
  /// constant columns are left centered but unscaled).
  static ColumnTransform Standardize(const Dataset& data);

  /// Number of input columns expected by Apply().
  size_t num_input_features() const { return offsets_.size(); }
  /// Number of output columns produced by Apply().
  size_t num_output_features() const { return kept_columns_.size(); }
  /// Indices (into the input space) of the columns kept, ascending.
  const std::vector<size_t>& kept_columns() const { return kept_columns_; }

  /// Multiplies the scale of column `col` by `w` (applied after
  /// standardization). Used by proxy reweighing.
  void ScaleColumn(size_t col, double w);

  /// Drops `col` from the output. Dropping a column twice is a no-op.
  void DropColumn(size_t col);

  /// Drops all the given columns.
  void DropColumns(std::span<const size_t> cols);

  /// Transforms one sample. `features` must have num_input_features().
  std::vector<double> Apply(std::span<const double> features) const;

  /// Allocation-free variant: writes the transformed sample into `*out`
  /// (resized to num_output_features()). Lets batch callers reuse one
  /// scratch buffer per thread instead of allocating per sample.
  void ApplyInto(std::span<const double> features,
                 std::vector<double>* out) const;

  /// Transforms every row of `data`; the result is a plain matrix
  /// (row-major) since labels/sensitive metadata are unaffected.
  std::vector<std::vector<double>> ApplyAll(const Dataset& data) const;

  /// Text serialization (whitespace tokens, lossless doubles).
  Status Serialize(std::ostream* out) const;
  static Result<ColumnTransform> Deserialize(std::istream* in);

 private:
  std::vector<double> offsets_;  // subtracted per input column
  std::vector<double> scales_;   // multiplied per input column
  std::vector<size_t> kept_columns_;
};

}  // namespace falcc

#endif  // FALCC_DATA_TRANSFORMS_H_
