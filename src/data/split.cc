#include "data/split.h"

#include <cmath>

#include "util/rng.h"

namespace falcc {

Result<TrainValTest> SplitDataset(const Dataset& data, double train_frac,
                                  double val_frac, double test_frac,
                                  uint64_t seed) {
  if (train_frac <= 0.0 || val_frac <= 0.0 || test_frac <= 0.0) {
    return Status::InvalidArgument("split fractions must be positive");
  }
  if (train_frac + val_frac + test_frac > 1.0 + 1e-9) {
    return Status::InvalidArgument("split fractions sum to more than 1");
  }
  const size_t n = data.num_rows();
  if (n < 3) {
    return Status::InvalidArgument("dataset too small to split three ways");
  }

  Rng rng(seed);
  const std::vector<size_t> perm = rng.Permutation(n);

  const auto n_train = static_cast<size_t>(
      std::floor(train_frac * static_cast<double>(n)));
  const auto n_val =
      static_cast<size_t>(std::floor(val_frac * static_cast<double>(n)));
  auto n_test =
      static_cast<size_t>(std::floor(test_frac * static_cast<double>(n)));
  // If the three fractions cover the whole dataset, assign rounding
  // leftovers to the test partition.
  if (train_frac + val_frac + test_frac > 1.0 - 1e-9) {
    n_test = n - n_train - n_val;
  }
  if (n_train == 0 || n_val == 0 || n_test == 0) {
    return Status::InvalidArgument("a split partition would be empty");
  }

  const std::span<const size_t> all(perm);
  TrainValTest out;
  out.train = data.Subset(all.subspan(0, n_train));
  out.validation = data.Subset(all.subspan(n_train, n_val));
  out.test = data.Subset(all.subspan(n_train + n_val, n_test));
  return out;
}

Result<TrainValTest> SplitDatasetDefault(const Dataset& data, uint64_t seed) {
  return SplitDataset(data, 0.50, 0.35, 0.15, seed);
}

}  // namespace falcc
