#include "data/groups.h"

#include <cmath>
#include <sstream>

#include "util/serialize.h"

namespace falcc {

namespace {

std::vector<double> SensitiveKey(std::span<const double> features,
                                 const std::vector<size_t>& sensitive) {
  std::vector<double> key;
  key.reserve(sensitive.size());
  for (size_t col : sensitive) key.push_back(features[col]);
  return key;
}

}  // namespace

Result<GroupIndex> GroupIndex::Build(const Dataset& data) {
  if (data.sensitive_features().empty()) {
    return Status::InvalidArgument(
        "GroupIndex requires at least one sensitive feature");
  }
  GroupIndex index;
  index.sensitive_features_ = data.sensitive_features();
  for (size_t i = 0; i < data.num_rows(); ++i) {
    std::vector<double> key =
        SensitiveKey(data.Row(i), index.sensitive_features_);
    auto [it, inserted] =
        index.key_to_group_.try_emplace(key, index.group_keys_.size());
    if (inserted) index.group_keys_.push_back(std::move(key));
  }
  if (index.group_keys_.empty()) {
    return Status::InvalidArgument("GroupIndex built on empty dataset");
  }
  return index;
}

Result<size_t> GroupIndex::GroupOf(std::span<const double> features) const {
  const std::vector<double> key = SensitiveKey(features, sensitive_features_);
  const auto it = key_to_group_.find(key);
  if (it == key_to_group_.end()) {
    return Status::NotFound("sensitive value combination not seen at build");
  }
  return it->second;
}

size_t GroupIndex::GroupOfOrNearest(std::span<const double> features) const {
  std::vector<double> scratch;
  return GroupOfOrNearest(features, &scratch);
}

size_t GroupIndex::GroupOfOrNearest(std::span<const double> features,
                                    std::vector<double>* key_scratch) const {
  FALCC_CHECK(!group_keys_.empty(), "GroupOfOrNearest on empty index");
  std::vector<double>& key = *key_scratch;
  key.clear();
  for (size_t col : sensitive_features_) key.push_back(features[col]);
  const auto it = key_to_group_.find(key);
  if (it != key_to_group_.end()) return it->second;
  size_t best = 0;
  double best_d2 = 1e300;
  for (size_t g = 0; g < group_keys_.size(); ++g) {
    double d2 = 0.0;
    for (size_t i = 0; i < key.size(); ++i) {
      const double diff = key[i] - group_keys_[g][i];
      d2 += diff * diff;
    }
    if (d2 < best_d2) {
      best_d2 = d2;
      best = g;
    }
  }
  return best;
}

Result<std::vector<size_t>> GroupIndex::GroupsOf(const Dataset& data) const {
  std::vector<size_t> groups(data.num_rows());
  for (size_t i = 0; i < data.num_rows(); ++i) {
    Result<size_t> g = GroupOf(data.Row(i));
    if (!g.ok()) return g.status();
    groups[i] = g.value();
  }
  return groups;
}

std::string GroupIndex::GroupName(size_t group, const Dataset& data) const {
  FALCC_CHECK(group < group_keys_.size(), "GroupName: group out of range");
  std::ostringstream out;
  out << '(';
  for (size_t i = 0; i < sensitive_features_.size(); ++i) {
    if (i > 0) out << ", ";
    out << data.feature_names()[sensitive_features_[i]] << '='
        << group_keys_[group][i];
  }
  out << ')';
  return out.str();
}

Status GroupIndex::Serialize(std::ostream* out) const {
  io::PrepareStream(out);
  io::WriteVector(out, sensitive_features_);
  *out << group_keys_.size() << '\n';
  for (const auto& key : group_keys_) {
    io::WriteVector(out, key);
  }
  if (!*out) return Status::IOError("GroupIndex serialization failed");
  return Status::OK();
}

Result<GroupIndex> GroupIndex::Deserialize(std::istream* in) {
  GroupIndex index;
  FALCC_RETURN_IF_ERROR(io::ReadVector(in, &index.sensitive_features_));
  if (index.sensitive_features_.empty()) {
    return Status::InvalidArgument("GroupIndex: no sensitive columns");
  }
  size_t num_groups = 0;
  FALCC_RETURN_IF_ERROR(io::Read(in, &num_groups));
  if (num_groups == 0 || num_groups > 1000000) {
    return Status::InvalidArgument("GroupIndex: implausible group count");
  }
  for (size_t g = 0; g < num_groups; ++g) {
    std::vector<double> key;
    FALCC_RETURN_IF_ERROR(io::ReadVector(in, &key));
    if (key.size() != index.sensitive_features_.size()) {
      return Status::InvalidArgument("GroupIndex: key width mismatch");
    }
    for (double v : key) {
      if (!std::isfinite(v)) {
        return Status::InvalidArgument("GroupIndex: non-finite group key");
      }
    }
    auto [it, inserted] = index.key_to_group_.try_emplace(key, g);
    if (!inserted) {
      return Status::InvalidArgument("GroupIndex: duplicate group key");
    }
    index.group_keys_.push_back(std::move(key));
  }
  return index;
}

Result<std::vector<std::vector<size_t>>> RowsByGroup(const GroupIndex& index,
                                                     const Dataset& data) {
  std::vector<std::vector<size_t>> buckets(index.num_groups());
  Result<std::vector<size_t>> groups = index.GroupsOf(data);
  if (!groups.ok()) return groups.status();
  for (size_t i = 0; i < data.num_rows(); ++i) {
    buckets[groups.value()[i]].push_back(i);
  }
  return buckets;
}

}  // namespace falcc
