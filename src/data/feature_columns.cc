#include "data/feature_columns.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "util/parallel.h"

namespace falcc {

FeatureColumns::FeatureColumns(const Dataset& data)
    : data_(&data),
      num_rows_(data.num_rows()),
      num_features_(data.num_features()) {
  FALCC_CHECK(num_rows_ <= std::numeric_limits<uint32_t>::max(),
              "FeatureColumns: too many rows for 32-bit indices");
  rows_.resize(num_features_ * num_rows_);
  values_.resize(num_features_ * num_rows_);

  ParallelFor(0, num_features_, 1,
              [&](size_t /*chunk*/, size_t lo, size_t hi) {
                std::vector<double> column(num_rows_);
                for (size_t f = lo; f < hi; ++f) {
                  uint32_t* rows = rows_.data() + f * num_rows_;
                  double* values = values_.data() + f * num_rows_;
                  for (size_t i = 0; i < num_rows_; ++i) {
                    column[i] = data.Feature(i, f);
                  }
                  std::iota(rows, rows + num_rows_, 0u);
                  std::sort(rows, rows + num_rows_,
                            [&](uint32_t a, uint32_t b) {
                              if (column[a] != column[b]) {
                                return column[a] < column[b];
                              }
                              return a < b;
                            });
                  for (size_t i = 0; i < num_rows_; ++i) {
                    values[i] = column[rows[i]];
                  }
                }
              });
}

}  // namespace falcc
