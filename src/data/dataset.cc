#include "data/dataset.h"

#include <algorithm>

namespace falcc {

Result<Dataset> Dataset::Create(std::vector<std::string> feature_names,
                                std::vector<double> features, size_t num_cols,
                                std::vector<int> labels,
                                std::vector<size_t> sensitive_features) {
  if (num_cols == 0) {
    return Status::InvalidArgument("dataset needs at least one feature");
  }
  if (feature_names.size() != num_cols) {
    return Status::InvalidArgument("feature_names size != num_cols");
  }
  if (features.size() != labels.size() * num_cols) {
    return Status::InvalidArgument(
        "features size does not match labels * num_cols");
  }
  for (int y : labels) {
    if (y != 0 && y != 1) {
      return Status::InvalidArgument("labels must be binary (0/1)");
    }
  }
  for (size_t s : sensitive_features) {
    if (s >= num_cols) {
      return Status::InvalidArgument("sensitive feature index out of range");
    }
  }
  std::sort(sensitive_features.begin(), sensitive_features.end());
  if (std::adjacent_find(sensitive_features.begin(),
                         sensitive_features.end()) !=
      sensitive_features.end()) {
    return Status::InvalidArgument("duplicate sensitive feature index");
  }

  Dataset d;
  d.feature_names_ = std::move(feature_names);
  d.features_ = std::move(features);
  d.num_cols_ = num_cols;
  d.labels_ = std::move(labels);
  d.sensitive_features_ = std::move(sensitive_features);
  return d;
}

std::vector<double> Dataset::Column(size_t col) const {
  FALCC_CHECK(col < num_cols_, "Column index out of range");
  std::vector<double> out(num_rows());
  for (size_t i = 0; i < num_rows(); ++i) out[i] = Feature(i, col);
  return out;
}

Dataset Dataset::Subset(std::span<const size_t> rows) const {
  Dataset out;
  out.feature_names_ = feature_names_;
  out.num_cols_ = num_cols_;
  out.sensitive_features_ = sensitive_features_;
  out.features_.reserve(rows.size() * num_cols_);
  out.labels_.reserve(rows.size());
  for (size_t r : rows) {
    FALCC_CHECK(r < num_rows(), "Subset row index out of range");
    const auto row = Row(r);
    out.features_.insert(out.features_.end(), row.begin(), row.end());
    out.labels_.push_back(labels_[r]);
  }
  return out;
}

void Dataset::AppendRow(std::span<const double> features, int label) {
  FALCC_CHECK(features.size() == num_cols_, "AppendRow: width mismatch");
  FALCC_CHECK(label == 0 || label == 1, "AppendRow: label must be binary");
  features_.insert(features_.end(), features.begin(), features.end());
  labels_.push_back(label);
}

void Dataset::ReplaceRows(std::span<const double> features) {
  FALCC_CHECK(num_cols_ > 0 && features.size() % num_cols_ == 0 &&
                  !features.empty(),
              "ReplaceRows: size not a non-zero multiple of num_features()");
  features_.assign(features.begin(), features.end());
  labels_.assign(features.size() / num_cols_, 0);
}

Result<Dataset> ConcatDatasets(const Dataset& a, const Dataset& b) {
  if (a.feature_names() != b.feature_names()) {
    return Status::InvalidArgument("ConcatDatasets: schema mismatch");
  }
  if (a.sensitive_features() != b.sensitive_features()) {
    return Status::InvalidArgument(
        "ConcatDatasets: sensitive feature mismatch");
  }
  Dataset out = a;
  for (size_t i = 0; i < b.num_rows(); ++i) {
    out.AppendRow(b.Row(i), b.Label(i));
  }
  return out;
}

double Dataset::PositiveRate() const {
  if (labels_.empty()) return 0.0;
  double pos = 0.0;
  for (int y : labels_) pos += y;
  return pos / static_cast<double>(labels_.size());
}

}  // namespace falcc
