// Tabular dataset representation for binary classification with sensitive
// attributes.
//
// A Dataset holds a dense row-major feature matrix, binary labels, feature
// names, and the indices of the sensitive (protected) attributes among the
// feature columns. Sensitive attributes are ordinary feature columns — the
// components that must ignore them (clustering, cluster matching) project
// them out explicitly via data/transforms.h, mirroring Π_{R∖Sens} in the
// paper.

#ifndef FALCC_DATA_DATASET_H_
#define FALCC_DATA_DATASET_H_

#include <span>
#include <string>
#include <vector>

#include "util/status.h"

namespace falcc {

/// A labeled tabular dataset for binary classification.
class Dataset {
 public:
  Dataset() = default;

  /// Builds a dataset and validates shape consistency:
  /// `features` must be rows*cols long, `labels` must have one 0/1 entry
  /// per row, `feature_names` one name per column, and every index in
  /// `sensitive_features` must refer to an existing column.
  static Result<Dataset> Create(std::vector<std::string> feature_names,
                                std::vector<double> features, size_t num_cols,
                                std::vector<int> labels,
                                std::vector<size_t> sensitive_features);

  size_t num_rows() const { return labels_.size(); }
  size_t num_features() const { return num_cols_; }

  /// Feature vector of row i.
  std::span<const double> Row(size_t i) const {
    return {features_.data() + i * num_cols_, num_cols_};
  }
  /// Mutable feature vector of row i (used by column transforms).
  std::span<double> MutableRow(size_t i) {
    return {features_.data() + i * num_cols_, num_cols_};
  }

  double Feature(size_t row, size_t col) const {
    return features_[row * num_cols_ + col];
  }

  int Label(size_t i) const { return labels_[i]; }
  const std::vector<int>& labels() const { return labels_; }

  const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }
  /// Column indices of the sensitive attributes, ascending.
  const std::vector<size_t>& sensitive_features() const {
    return sensitive_features_;
  }

  /// All values of one feature column (copy).
  std::vector<double> Column(size_t col) const;

  /// Overwrites one label (used by relabeling baselines).
  void SetLabel(size_t i, int label) { labels_[i] = label; }

  /// Dataset restricted to the given rows, in the given order.
  Dataset Subset(std::span<const size_t> rows) const;

  /// Appends one row (feature vector + label). The vector length must
  /// equal num_features(); violations abort (internal invariant).
  void AppendRow(std::span<const double> features, int label);

  /// Replaces the entire feature matrix, keeping the schema (names and
  /// sensitive columns); labels reset to 0. `features.size()` must be a
  /// non-zero multiple of num_features() (internal invariant, aborts).
  /// Reuses existing storage — the serving path rebinds its request
  /// wrapper with this once per batch instead of constructing a Dataset.
  void ReplaceRows(std::span<const double> features);

  /// Fraction of rows with label 1; 0 for an empty dataset.
  double PositiveRate() const;

 private:
  std::vector<std::string> feature_names_;
  std::vector<double> features_;  // row-major, num_rows x num_cols
  size_t num_cols_ = 0;
  std::vector<int> labels_;
  std::vector<size_t> sensitive_features_;
};

/// Concatenates two datasets with identical schemas (feature names and
/// sensitive columns must match).
Result<Dataset> ConcatDatasets(const Dataset& a, const Dataset& b);

}  // namespace falcc

#endif  // FALCC_DATA_DATASET_H_
