// Bridging CSV tables and Datasets, for the CLI tool and for users with
// on-disk data: a dataset is a CSV file with a header row, one numeric
// label column (binary), and any number of numeric feature columns, some
// of which are declared sensitive by name.

#ifndef FALCC_DATA_CSV_DATASET_H_
#define FALCC_DATA_CSV_DATASET_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "util/csv.h"

namespace falcc {

/// Converts a parsed CSV table to a Dataset. `label_column` names the
/// binary label; `sensitive_columns` names the protected attributes
/// (all must exist; the label may not be sensitive).
Result<Dataset> DatasetFromCsv(const CsvTable& table,
                               const std::string& label_column,
                               const std::vector<std::string>& sensitive);

/// Reads a CSV file from disk and converts it.
Result<Dataset> ReadDatasetCsv(const std::string& path,
                               const std::string& label_column,
                               const std::vector<std::string>& sensitive);

/// Converts a Dataset back to a CSV table (features + a trailing label
/// column named `label_column`).
CsvTable DatasetToCsv(const Dataset& data, const std::string& label_column);

/// Writes a dataset to disk as CSV.
Status WriteDatasetCsv(const std::string& path, const Dataset& data,
                       const std::string& label_column);

}  // namespace falcc

#endif  // FALCC_DATA_CSV_DATASET_H_
