#include "data/transforms.h"

#include <algorithm>
#include <cmath>

#include "util/math.h"
#include "util/serialize.h"

namespace falcc {

ColumnTransform ColumnTransform::Identity(size_t num_features) {
  ColumnTransform t;
  t.offsets_.assign(num_features, 0.0);
  t.scales_.assign(num_features, 1.0);
  t.kept_columns_.resize(num_features);
  for (size_t i = 0; i < num_features; ++i) t.kept_columns_[i] = i;
  return t;
}

ColumnTransform ColumnTransform::Standardize(const Dataset& data) {
  ColumnTransform t = Identity(data.num_features());
  for (size_t c = 0; c < data.num_features(); ++c) {
    const std::vector<double> col = data.Column(c);
    const double mu = Mean(col);
    const double sd = StdDev(col);
    t.offsets_[c] = mu;
    t.scales_[c] = sd > 0.0 ? 1.0 / sd : 1.0;
  }
  return t;
}

void ColumnTransform::ScaleColumn(size_t col, double w) {
  FALCC_CHECK(col < scales_.size(), "ScaleColumn: column out of range");
  scales_[col] *= w;
}

void ColumnTransform::DropColumn(size_t col) {
  FALCC_CHECK(col < offsets_.size(), "DropColumn: column out of range");
  kept_columns_.erase(
      std::remove(kept_columns_.begin(), kept_columns_.end(), col),
      kept_columns_.end());
}

void ColumnTransform::DropColumns(std::span<const size_t> cols) {
  for (size_t c : cols) DropColumn(c);
}

std::vector<double> ColumnTransform::Apply(
    std::span<const double> features) const {
  std::vector<double> out;
  ApplyInto(features, &out);
  return out;
}

void ColumnTransform::ApplyInto(std::span<const double> features,
                                std::vector<double>* out) const {
  FALCC_CHECK(features.size() == offsets_.size(),
              "ColumnTransform::Apply: width mismatch");
  out->resize(kept_columns_.size());
  for (size_t i = 0; i < kept_columns_.size(); ++i) {
    const size_t c = kept_columns_[i];
    (*out)[i] = (features[c] - offsets_[c]) * scales_[c];
  }
}

Status ColumnTransform::Serialize(std::ostream* out) const {
  io::PrepareStream(out);
  io::WriteVector(out, offsets_);
  io::WriteVector(out, scales_);
  io::WriteVector(out, kept_columns_);
  if (!*out) return Status::IOError("ColumnTransform serialization failed");
  return Status::OK();
}

Result<ColumnTransform> ColumnTransform::Deserialize(std::istream* in) {
  ColumnTransform t;
  FALCC_RETURN_IF_ERROR(io::ReadVector(in, &t.offsets_));
  FALCC_RETURN_IF_ERROR(io::ReadVector(in, &t.scales_));
  FALCC_RETURN_IF_ERROR(io::ReadVector(in, &t.kept_columns_));
  if (t.scales_.size() != t.offsets_.size()) {
    return Status::InvalidArgument("ColumnTransform: width mismatch");
  }
  for (size_t c : t.kept_columns_) {
    if (c >= t.offsets_.size()) {
      return Status::InvalidArgument("ColumnTransform: kept column range");
    }
  }
  for (size_t j = 0; j < t.offsets_.size(); ++j) {
    if (!std::isfinite(t.offsets_[j]) || !std::isfinite(t.scales_[j])) {
      return Status::InvalidArgument("ColumnTransform: non-finite parameters");
    }
  }
  return t;
}

std::vector<std::vector<double>> ColumnTransform::ApplyAll(
    const Dataset& data) const {
  std::vector<std::vector<double>> out;
  out.reserve(data.num_rows());
  for (size_t i = 0; i < data.num_rows(); ++i) out.push_back(Apply(data.Row(i)));
  return out;
}

}  // namespace falcc
