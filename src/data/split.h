// Seeded random dataset splits. The paper's evaluation uses a
// 50% train / 35% validation / 15% test split with four random states per
// configuration (§4.1.1).

#ifndef FALCC_DATA_SPLIT_H_
#define FALCC_DATA_SPLIT_H_

#include <cstdint>

#include "data/dataset.h"
#include "util/status.h"

namespace falcc {

/// The three partitions used by the FALCC pipeline.
struct TrainValTest {
  Dataset train;
  Dataset validation;
  Dataset test;
};

/// Randomly permutes rows with the given seed and splits them into
/// train/validation/test by the given fractions. Fractions must be
/// positive and sum to at most 1 (the remainder, if any, is dropped —
/// matching scikit-learn's sequential splits).
Result<TrainValTest> SplitDataset(const Dataset& data, double train_frac,
                                  double val_frac, double test_frac,
                                  uint64_t seed);

/// Paper-default split: 50/35/15.
Result<TrainValTest> SplitDatasetDefault(const Dataset& data, uint64_t seed);

}  // namespace falcc

#endif  // FALCC_DATA_SPLIT_H_
