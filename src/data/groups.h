// Sensitive-group enumeration.
//
// Given sensitive attributes Sens = {A_1, ..., A_s}, the sensitive groups
// are G = dom(A_1) × ... × dom(A_s) (paper §3.1). GroupIndex discovers the
// observed domains from a dataset, assigns each value combination a dense
// group id, and maps arbitrary samples (including unseen test samples) to
// their group.

#ifndef FALCC_DATA_GROUPS_H_
#define FALCC_DATA_GROUPS_H_

#include <iosfwd>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "util/status.h"

namespace falcc {

/// Dense indexing of sensitive groups (value combinations of the
/// sensitive attributes).
class GroupIndex {
 public:
  GroupIndex() = default;

  /// Discovers groups from the dataset's sensitive columns. Fails if the
  /// dataset declares no sensitive features.
  static Result<GroupIndex> Build(const Dataset& data);

  /// Number of groups |G|.
  size_t num_groups() const { return key_to_group_.size(); }

  /// Sensitive columns this index was built over.
  const std::vector<size_t>& sensitive_features() const {
    return sensitive_features_;
  }

  /// Group id of a full feature vector (uses the sensitive columns).
  /// Returns NotFound for combinations never seen at build time.
  Result<size_t> GroupOf(std::span<const double> features) const;

  /// Like GroupOf, but maps unseen combinations to the group with the
  /// nearest sensitive-attribute key (Euclidean). Never fails on a built
  /// index; used by online classification of arbitrary test samples.
  /// `features` must cover every sensitive column of the index.
  size_t GroupOfOrNearest(std::span<const double> features) const;

  /// Allocation-free variant for batch callers: `key_scratch` holds the
  /// extracted sensitive key between calls and is overwritten each time.
  size_t GroupOfOrNearest(std::span<const double> features,
                          std::vector<double>* key_scratch) const;

  /// Group id per row of `data` (must have the same sensitive columns).
  /// Rows with unseen combinations fail.
  Result<std::vector<size_t>> GroupsOf(const Dataset& data) const;

  /// Human-readable name of a group, e.g. "(sex=1, race=0)".
  std::string GroupName(size_t group, const Dataset& data) const;

  /// The sensitive attribute values identifying group `g`.
  const std::vector<double>& GroupKey(size_t g) const { return group_keys_[g]; }

  /// Text serialization (whitespace tokens, lossless doubles).
  Status Serialize(std::ostream* out) const;
  static Result<GroupIndex> Deserialize(std::istream* in);

 private:
  std::vector<size_t> sensitive_features_;
  std::map<std::vector<double>, size_t> key_to_group_;
  std::vector<std::vector<double>> group_keys_;  // by group id
};

/// Partitions row indices of `data` by group id; result has
/// `index.num_groups()` buckets.
Result<std::vector<std::vector<size_t>>> RowsByGroup(const GroupIndex& index,
                                                     const Dataset& data);

}  // namespace falcc

#endif  // FALCC_DATA_GROUPS_H_
