// Column-major presorted feature cache for tree training.
//
// CART split finding scans each candidate feature in value order. The
// seed trainer re-sorted the node's rows per candidate feature per node —
// an O(d·n log n) cost at every node of every tree, multiplied by every
// AdaBoost round, Random-Forest tree, and grid-search cell. FeatureColumns
// sorts every feature column exactly once per dataset (ascending value,
// ties by row index) and exposes that order as contiguous row/value
// arrays. The tree builder (ml/tree_builder.h) partitions these arrays
// stably as it recurses, so no sort ever happens below the root, and one
// cache is shared across every trainer that fits on the same dataset —
// sample weights change per boosting round, the sort order never does.

#ifndef FALCC_DATA_FEATURE_COLUMNS_H_
#define FALCC_DATA_FEATURE_COLUMNS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "data/dataset.h"

namespace falcc {

/// Per-feature presorted row order over one dataset. Read-only after
/// construction and therefore safe to share across concurrent tree fits.
class FeatureColumns {
 public:
  FeatureColumns() = default;

  /// Builds the cache: one sort per feature column, parallelized across
  /// columns (columns are independent, so the result is identical at any
  /// thread count). The dataset must outlive the cache and must not be
  /// mutated while any trainer uses it.
  explicit FeatureColumns(const Dataset& data);

  /// The dataset this cache was built over.
  const Dataset& data() const {
    FALCC_CHECK(data_ != nullptr, "FeatureColumns: not built");
    return *data_;
  }

  size_t num_rows() const { return num_rows_; }
  size_t num_features() const { return num_features_; }

  /// Row indices of feature `f` in ascending value order; equal values
  /// are ordered by row index.
  std::span<const uint32_t> SortedRows(size_t f) const {
    return {rows_.data() + f * num_rows_, num_rows_};
  }

  /// Values aligned with SortedRows(f):
  /// SortedValues(f)[i] == data().Feature(SortedRows(f)[i], f).
  std::span<const double> SortedValues(size_t f) const {
    return {values_.data() + f * num_rows_, num_rows_};
  }

 private:
  const Dataset* data_ = nullptr;
  size_t num_rows_ = 0;
  size_t num_features_ = 0;
  std::vector<uint32_t> rows_;  // feature-major, num_features x num_rows
  std::vector<double> values_;  // feature-major, aligned with rows_
};

}  // namespace falcc

#endif  // FALCC_DATA_FEATURE_COLUMNS_H_
