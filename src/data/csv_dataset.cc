#include "data/csv_dataset.h"

#include <algorithm>
#include <cmath>

namespace falcc {

Result<Dataset> DatasetFromCsv(const CsvTable& table,
                               const std::string& label_column,
                               const std::vector<std::string>& sensitive) {
  const auto find_column = [&](const std::string& name) -> int {
    const auto it =
        std::find(table.header.begin(), table.header.end(), name);
    return it == table.header.end()
               ? -1
               : static_cast<int>(it - table.header.begin());
  };

  const int label_idx = find_column(label_column);
  if (label_idx < 0) {
    return Status::InvalidArgument("label column '" + label_column +
                                   "' not found");
  }
  if (table.header.size() < 2) {
    return Status::InvalidArgument("CSV needs at least one feature column");
  }
  if (table.rows.empty()) {
    return Status::InvalidArgument("CSV has a header but no data rows");
  }

  // Feature columns = all but the label, in CSV order.
  std::vector<size_t> feature_cols;
  std::vector<std::string> feature_names;
  for (size_t c = 0; c < table.header.size(); ++c) {
    if (static_cast<int>(c) == label_idx) continue;
    feature_cols.push_back(c);
    feature_names.push_back(table.header[c]);
  }

  std::vector<size_t> sensitive_cols;
  for (const std::string& name : sensitive) {
    if (name == label_column) {
      return Status::InvalidArgument("label column cannot be sensitive");
    }
    const auto it =
        std::find(feature_names.begin(), feature_names.end(), name);
    if (it == feature_names.end()) {
      return Status::InvalidArgument("sensitive column '" + name +
                                     "' not found");
    }
    sensitive_cols.push_back(
        static_cast<size_t>(it - feature_names.begin()));
  }

  std::vector<double> features;
  features.reserve(table.num_rows() * feature_cols.size());
  std::vector<int> labels;
  labels.reserve(table.num_rows());
  for (size_t r = 0; r < table.rows.size(); ++r) {
    const auto& row = table.rows[r];
    const double y = row[static_cast<size_t>(label_idx)];
    if (y != 0.0 && y != 1.0) {
      return Status::InvalidArgument(
          "CSV data row " + std::to_string(r + 1) + ", column '" +
          label_column + "': label must be 0 or 1, got " + std::to_string(y));
    }
    labels.push_back(static_cast<int>(y));
    for (size_t c : feature_cols) features.push_back(row[c]);
  }

  return Dataset::Create(std::move(feature_names), std::move(features),
                         feature_cols.size(), std::move(labels),
                         std::move(sensitive_cols));
}

Result<Dataset> ReadDatasetCsv(const std::string& path,
                               const std::string& label_column,
                               const std::vector<std::string>& sensitive) {
  Result<CsvTable> table = ReadCsvFile(path);
  if (!table.ok()) return table.status();
  return DatasetFromCsv(table.value(), label_column, sensitive);
}

CsvTable DatasetToCsv(const Dataset& data, const std::string& label_column) {
  CsvTable table;
  table.header = data.feature_names();
  table.header.push_back(label_column);
  table.rows.reserve(data.num_rows());
  for (size_t i = 0; i < data.num_rows(); ++i) {
    const auto row = data.Row(i);
    std::vector<double> out(row.begin(), row.end());
    out.push_back(static_cast<double>(data.Label(i)));
    table.rows.push_back(std::move(out));
  }
  return table;
}

Status WriteDatasetCsv(const std::string& path, const Dataset& data,
                       const std::string& label_column) {
  return WriteCsvFile(path, DatasetToCsv(data, label_column));
}

}  // namespace falcc
