#include "io/mapped_file.h"

#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define FALCC_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define FALCC_HAVE_MMAP 0
#endif

namespace falcc::io {

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    Reset();
    size_ = other.size_;
    mapped_ = other.mapped_;
    fallback_ = std::move(other.fallback_);
    data_ = mapped_ ? other.data_ : fallback_.data();
    other.data_ = nullptr;
    other.size_ = 0;
    other.mapped_ = false;
  }
  return *this;
}

void MappedFile::Reset() {
#if FALCC_HAVE_MMAP
  if (mapped_ && data_ != nullptr) {
    munmap(const_cast<void*>(data_), size_);
  }
#endif
  fallback_.clear();
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
}

MappedFile::~MappedFile() { Reset(); }

Result<MappedFile> MappedFile::Open(const std::string& path) {
#if FALCC_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    struct stat st;
    if (fstat(fd, &st) != 0 || st.st_size < 0) {
      ::close(fd);
      return Status::IOError("MappedFile: cannot stat " + path);
    }
    const size_t size = static_cast<size_t>(st.st_size);
    if (size == 0) {
      ::close(fd);
      return Status::IOError("MappedFile: " + path + " is empty");
    }
    void* data = mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (data != MAP_FAILED) {
      MappedFile file;
      file.data_ = data;
      file.size_ = size;
      file.mapped_ = true;
      return file;
    }
    // mmap refused (e.g. a pseudo-filesystem): fall through to the read
    // fallback below.
  }
#endif
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("MappedFile: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IOError("MappedFile: read of " + path +
                                       " failed");
  MappedFile file;
  file.fallback_ = std::move(buffer).str();
  if (file.fallback_.empty()) {
    return Status::IOError("MappedFile: " + path + " is empty");
  }
  file.size_ = file.fallback_.size();
  file.data_ = file.fallback_.data();
  file.mapped_ = false;
  return file;
}

}  // namespace falcc::io
