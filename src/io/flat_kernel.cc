#include "io/flat_kernel.h"

#include <cstring>
#include <string>
#include <utility>

namespace falcc::io {

namespace {

// "falcc-f2" as the little-endian byte sequence of one u64. A reader on
// a byte order other than the writer's sees a scrambled magic and
// rejects before touching any other field.
constexpr uint64_t kFlatMagic =
    uint64_t{'f'} | (uint64_t{'a'} << 8) | (uint64_t{'l'} << 16) |
    (uint64_t{'c'} << 24) | (uint64_t{'c'} << 32) | (uint64_t{'-'} << 40) |
    (uint64_t{'f'} << 48) | (uint64_t{'2'} << 56);

constexpr uint64_t kMaxClusters = 10000000;
constexpr uint64_t kMaxWidth = 1000000;
constexpr uint64_t kMaxGroups = 1000000;
constexpr uint64_t kMaxNodes = 1u << 30;
constexpr uint64_t kMaxTrees = 1u << 30;

void PutU32(std::string* buffer, uint32_t v) {
  char bytes[sizeof(v)];
  std::memcpy(bytes, &v, sizeof(v));
  buffer->append(bytes, sizeof(v));
}

void PutU64(std::string* buffer, uint64_t v) {
  char bytes[sizeof(v)];
  std::memcpy(bytes, &v, sizeof(v));
  buffer->append(bytes, sizeof(v));
}

void PutF64(std::string* buffer, double v) {
  char bytes[sizeof(v)];
  std::memcpy(bytes, &v, sizeof(v));
  buffer->append(bytes, sizeof(v));
}

template <typename T>
void PutArray(std::string* buffer, std::span<const T> values) {
  if (!values.empty()) {
    buffer->append(reinterpret_cast<const char*>(values.data()),
                   values.size() * sizeof(T));
  }
}

// Keeps the next field 8-byte aligned after an odd-count 4-byte array.
void PutPad4IfOdd(std::string* buffer, size_t count) {
  if (count % 2 != 0) buffer->append(4, '\0');
}

Status FlatError(std::string what) {
  return Status::InvalidArgument("flat section: " + std::move(what));
}

// Forward-only reader over the section payload. All multi-byte reads go
// through memcpy, so the cursor itself has no alignment requirements.
class Cursor {
 public:
  explicit Cursor(std::string_view data)
      : next_(data.data()), end_(data.data() + data.size()) {}

  bool Bytes(size_t n, const char** out) {
    if (n > static_cast<size_t>(end_ - next_)) return false;
    *out = next_;
    next_ += n;
    return true;
  }

  bool U32(uint32_t* v) { return Scalar(v); }
  bool U64(uint64_t* v) { return Scalar(v); }
  bool F64(double* v) { return Scalar(v); }

  bool AtEnd() const { return next_ == end_; }
  size_t remaining() const { return static_cast<size_t>(end_ - next_); }

 private:
  template <typename T>
  bool Scalar(T* v) {
    const char* p;
    if (!Bytes(sizeof(T), &p)) return false;
    std::memcpy(v, p, sizeof(T));
    return true;
  }

  const char* next_;
  const char* end_;
};

// Reads `count` elements as a view into the payload (zero copy) or, when
// `storage` is non-null, as a copy into it. The caller guarantees the
// payload base is 8-byte aligned whenever `storage` is null; the layout
// keeps every array start at an 8-byte multiple from the base.
template <typename T>
bool TakeArray(Cursor* cursor, size_t count, std::span<const T>* view,
               std::vector<T>* storage) {
  if (count > cursor->remaining() / sizeof(T)) return false;
  const char* p;
  if (!cursor->Bytes(count * sizeof(T), &p)) return false;
  if (storage != nullptr) {
    storage->resize(count);
    if (count > 0) std::memcpy(storage->data(), p, count * sizeof(T));
    *view = *storage;
  } else {
    *view = std::span<const T>(reinterpret_cast<const T*>(p), count);
  }
  return true;
}

bool SkipZeroPad4IfOdd(Cursor* cursor, size_t count) {
  if (count % 2 == 0) return true;
  const char* p;
  if (!cursor->Bytes(4, &p)) return false;
  return p[0] == 0 && p[1] == 0 && p[2] == 0 && p[3] == 0;
}

// Owned copies of one slot's arrays for the unaligned fallback.
struct OwnedSlotArrays {
  std::vector<TreeRef> trees;
  std::vector<double> alphas;
  std::vector<int32_t> feature;
  std::vector<double> threshold;
  std::vector<uint32_t> children;
  std::vector<double> leaf_proba;
};

}  // namespace

Status EncodeFlatSection(std::ostream* out,
                         std::span<const std::vector<double>> centroids,
                         std::span<const uint32_t> slot_of_cluster,
                         std::span<const CompiledCombo* const> slots) {
  const size_t k = slot_of_cluster.size();
  if (k == 0 || k > kMaxClusters || centroids.size() != k) {
    return Status::Internal("EncodeFlatSection: bad cluster count");
  }
  const size_t width = centroids[0].size();
  if (width == 0 || width > kMaxWidth) {
    return Status::Internal("EncodeFlatSection: bad centroid width");
  }
  for (const std::vector<double>& centroid : centroids) {
    if (centroid.size() != width) {
      return Status::Internal("EncodeFlatSection: ragged centroids");
    }
  }
  if (slots.empty() || slots.size() > k) {
    return Status::Internal("EncodeFlatSection: bad slot count");
  }
  const size_t num_groups = slots[0]->num_groups();
  if (num_groups == 0 || num_groups > kMaxGroups) {
    return Status::Internal("EncodeFlatSection: bad group count");
  }
  // Canonical slot order: first references in increasing order, every
  // slot referenced. Violations are encoder bugs, not artifact states.
  size_t seen = 0;
  for (uint32_t slot : slot_of_cluster) {
    if (slot > seen || slot >= slots.size()) {
      return Status::Internal("EncodeFlatSection: non-canonical slot order");
    }
    if (slot == seen) ++seen;
  }
  if (seen != slots.size()) {
    return Status::Internal("EncodeFlatSection: unreferenced slot");
  }

  std::string buffer;
  PutU64(&buffer, kFlatMagic);
  PutU64(&buffer, k);
  PutU64(&buffer, width);
  PutU64(&buffer, num_groups);
  PutU64(&buffer, slots.size());
  PutArray(&buffer, slot_of_cluster);
  PutPad4IfOdd(&buffer, k);
  for (const std::vector<double>& centroid : centroids) {
    PutArray(&buffer, std::span<const double>(centroid));
  }
  for (const CompiledCombo* slot : slots) {
    if (slot == nullptr || slot->num_groups() != num_groups) {
      return Status::Internal("EncodeFlatSection: inconsistent slot kernel");
    }
    const CompiledCombo::FlatParts& parts = slot->parts();
    PutU64(&buffer, parts.trees.size());
    PutU64(&buffer, parts.feature.size());
    for (const CompiledCombo::GroupEntry& entry : slot->groups()) {
      PutU32(&buffer, static_cast<uint32_t>(entry.kind));
      PutU32(&buffer, entry.model);
      PutU32(&buffer, entry.tree_begin);
      PutU32(&buffer, entry.tree_end);
      PutU32(&buffer, entry.compiled ? 1 : 0);
      PutU32(&buffer, 0);
      PutF64(&buffer, entry.alpha_sum);
    }
    for (const TreeRef& tree : parts.trees) {
      PutU32(&buffer, tree.root);
      PutU32(&buffer, tree.steps);
    }
    PutArray(&buffer, parts.alphas);
    PutArray(&buffer, parts.feature);
    PutPad4IfOdd(&buffer, parts.feature.size());
    PutArray(&buffer, parts.threshold);
    PutArray(&buffer, parts.children);
    PutArray(&buffer, parts.leaf_proba);
  }
  out->write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
  if (!out->good()) {
    return Status::IOError("EncodeFlatSection: write failed");
  }
  return Status::OK();
}

Result<DecodedFlat> DecodeFlatSection(std::string_view payload,
                                      size_t num_groups, size_t num_features,
                                      size_t pool_size,
                                      std::shared_ptr<const void> backing) {
  Cursor cursor(payload);
  uint64_t magic = 0;
  if (!cursor.U64(&magic)) return FlatError("truncated header");
  if (magic != kFlatMagic) {
    return FlatError("bad magic (not a flat section, or wrong byte order)");
  }
  uint64_t k = 0, width = 0, groups_in_file = 0, num_slots = 0;
  if (!cursor.U64(&k) || !cursor.U64(&width) || !cursor.U64(&groups_in_file) ||
      !cursor.U64(&num_slots)) {
    return FlatError("truncated header");
  }
  if (k == 0 || k > kMaxClusters) return FlatError("cluster count out of range");
  if (width == 0 || width > kMaxWidth) {
    return FlatError("centroid width out of range");
  }
  if (groups_in_file != num_groups) {
    return FlatError("group count does not match the snapshot's sections");
  }
  if (num_slots == 0 || num_slots > k) {
    return FlatError("slot count out of range");
  }

  // Zero copy requires the payload base to sit on an 8-byte boundary
  // (every array offset is a multiple of 8 by layout). Mapped files
  // always qualify; an unaligned in-memory buffer decodes via copies.
  const bool copy =
      reinterpret_cast<uintptr_t>(payload.data()) % 8 != 0;
  auto owned = copy ? std::make_shared<std::vector<OwnedSlotArrays>>()
                    : nullptr;
  if (owned) owned->resize(num_slots);

  DecodedFlat decoded;
  decoded.centroid_width = static_cast<size_t>(width);
  // Routing and centroids are always copied out (they are small and only
  // compared against the text sections), so alignment never matters.
  std::span<const uint32_t> routing;
  if (!TakeArray(&cursor, static_cast<size_t>(k), &routing,
                 &decoded.slot_of_cluster)) {
    return FlatError("truncated cluster routing");
  }
  if (!SkipZeroPad4IfOdd(&cursor, static_cast<size_t>(k))) {
    return FlatError("bad routing padding");
  }
  size_t seen = 0;
  for (uint32_t slot : decoded.slot_of_cluster) {
    if (slot > seen || slot >= num_slots) {
      return FlatError("cluster routing is not in canonical slot order");
    }
    if (slot == seen) ++seen;
  }
  if (seen != num_slots) return FlatError("unreferenced kernel slot");

  std::span<const double> centroid_view;
  if (static_cast<size_t>(width) > cursor.remaining() / sizeof(double) / k ||
      !TakeArray(&cursor, static_cast<size_t>(k * width), &centroid_view,
                 &decoded.centroids)) {
    return FlatError("truncated centroids");
  }

  decoded.slot_kernels.reserve(num_slots);
  for (size_t s = 0; s < num_slots; ++s) {
    uint64_t num_trees = 0, num_nodes = 0;
    if (!cursor.U64(&num_trees) || !cursor.U64(&num_nodes)) {
      return FlatError("truncated slot header");
    }
    if (num_trees > kMaxTrees) return FlatError("tree count out of range");
    if (num_nodes > kMaxNodes) return FlatError("node count out of range");
    std::vector<CompiledCombo::GroupEntry> entries(num_groups);
    for (CompiledCombo::GroupEntry& entry : entries) {
      uint32_t kind = 0, compiled = 0, pad = 0;
      double alpha_sum = 0.0;
      if (!cursor.U32(&kind) || !cursor.U32(&entry.model) ||
          !cursor.U32(&entry.tree_begin) || !cursor.U32(&entry.tree_end) ||
          !cursor.U32(&compiled) || !cursor.U32(&pad) ||
          !cursor.F64(&alpha_sum)) {
        return FlatError("truncated group entry");
      }
      if (kind > 2) return FlatError("unknown ensemble kind");
      if (compiled > 1) return FlatError("bad compiled flag");
      if (pad != 0) return FlatError("nonzero entry padding");
      entry.kind = static_cast<EnsembleKind>(kind);
      entry.compiled = compiled == 1;
      entry.alpha_sum = alpha_sum;
    }
    OwnedSlotArrays* slot_storage = owned ? &(*owned)[s] : nullptr;
    CompiledCombo::FlatParts parts;
    if (!TakeArray(&cursor, static_cast<size_t>(num_trees), &parts.trees,
                   slot_storage ? &slot_storage->trees : nullptr) ||
        !TakeArray(&cursor, static_cast<size_t>(num_trees), &parts.alphas,
                   slot_storage ? &slot_storage->alphas : nullptr) ||
        !TakeArray(&cursor, static_cast<size_t>(num_nodes), &parts.feature,
                   slot_storage ? &slot_storage->feature : nullptr) ||
        !SkipZeroPad4IfOdd(&cursor, static_cast<size_t>(num_nodes)) ||
        !TakeArray(&cursor, static_cast<size_t>(num_nodes), &parts.threshold,
                   slot_storage ? &slot_storage->threshold : nullptr) ||
        !TakeArray(&cursor, static_cast<size_t>(2 * num_nodes),
                   &parts.children,
                   slot_storage ? &slot_storage->children : nullptr) ||
        !TakeArray(&cursor, static_cast<size_t>(num_nodes), &parts.leaf_proba,
                   slot_storage ? &slot_storage->leaf_proba : nullptr)) {
      return FlatError("truncated slot " + std::to_string(s) + " arrays");
    }
    // Copied arrays live in `owned`; aliased arrays live in the payload
    // kept alive by the caller's backing.
    std::shared_ptr<const void> slot_backing =
        owned ? std::shared_ptr<const void>(owned, owned.get()) : backing;
    auto kernel =
        CompiledCombo::FromParts(parts, std::move(entries), num_features,
                                 pool_size, std::move(slot_backing));
    if (!kernel.ok()) return kernel.status();
    decoded.slot_kernels.push_back(std::move(kernel).value());
  }
  if (!cursor.AtEnd()) return FlatError("trailing bytes after last slot");
  return decoded;
}

}  // namespace falcc::io
