// Sectioned snapshot container (format `falcc-snapshot-v2`).
//
// A v2 artifact is a text manifest followed by a byte-addressed payload
// area holding named sections:
//
//   falcc-snapshot-v2\n
//   sections <N>\n
//   section <name> <offset> <length> <fnv64-hex>\n     (N lines)
//   end <content-hash-hex>\n
//   ##..#\n                  (pad line: payload starts 8-byte aligned)
//   <payload bytes>
//
// Offsets are relative to the payload start, every section offset is
// 8-byte aligned (inter-section gaps are '#' bytes), and each section
// carries an FNV-1a 64 checksum over exactly its payload bytes — so a
// reader can verify (or skip) sections independently and report a
// failing section by name and offset instead of "stream corrupt".
//
// The content hash on the `end` line is the artifact's identity: an
// FNV-1a fold over (name, length, checksum) of every *semantic* section
// in manifest order. Derived sections (currently `flat`, the compiled
// kernel cache) are excluded, so adding or dropping them never changes
// what snapshot this logically is — which is what lets a delta update
// the hash incrementally after swapping one combo section.
//
// A delta artifact (`falcc-delta-v2`) is the same container with a
// `base <content-hash-hex>` line after the header; its sections replace
// the equally named sections of the base snapshot.
//
// SnapshotWriter buffers sections (BeginSection/EndSection) and lays the
// file out deterministically in Finish; SnapshotReader parses and
// validates the manifest without touching payload bytes, and ReadSection
// verifies one checksum on demand.

#ifndef FALCC_IO_SNAPSHOT_H_
#define FALCC_IO_SNAPSHOT_H_

#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace falcc::io {

inline constexpr char kSnapshotHeaderV2[] = "falcc-snapshot-v2";
inline constexpr char kDeltaHeaderV2[] = "falcc-delta-v2";
/// The one derived section name: a cache of compiled state that Load can
/// rebuild from the semantic sections, excluded from the content hash.
inline constexpr char kFlatSectionName[] = "flat";

/// FNV-1a 64-bit over `bytes`, continuing from `seed` (chain calls to
/// hash a concatenation).
uint64_t Fnv1a(std::string_view bytes,
               uint64_t seed = 14695981039346656037ull);

/// One manifest entry. `offset` is relative to the payload start.
struct SectionInfo {
  std::string name;
  uint64_t offset = 0;
  uint64_t length = 0;
  uint64_t checksum = 0;
};

struct SnapshotManifest {
  std::vector<SectionInfo> sections;

  const SectionInfo* Find(std::string_view name) const;
  bool Has(std::string_view name) const { return Find(name) != nullptr; }

  /// Artifact identity: FNV-1a fold over (name, length, checksum) of
  /// every non-derived section, in manifest order.
  uint64_t ContentHash() const;

  /// Whether `name` is a derived (hash-excluded) section.
  static bool IsDerived(std::string_view name);
  /// Valid section names: [a-z0-9._-]+, at most 64 chars.
  static bool ValidName(std::string_view name);
};

/// Serializes `hash` the way manifests spell checksums: 16 lowercase hex
/// digits, zero padded.
std::string HashHex(uint64_t hash);

/// Buffered writer. Usage:
///   SnapshotWriter writer(&out);
///   auto* s = writer.BeginSection("pool");
///   ... stream the section payload into *s ...
///   writer.EndSection();
///   ... more sections ...
///   writer.Finish(&manifest);
/// Errors (nested/duplicate/invalid sections, stream failure) latch and
/// surface from EndSection/Finish.
class SnapshotWriter {
 public:
  explicit SnapshotWriter(std::ostream* out);

  /// Switches the artifact to a delta referencing `base_hash`. Must be
  /// called before Finish.
  void SetDeltaBase(uint64_t base_hash);

  /// Opens a named section and returns the stream its payload goes to
  /// (precision already prepared for lossless doubles; binary writes are
  /// fine too). Returns a poisoned sink if the writer is in error.
  std::ostream* BeginSection(std::string_view name);
  Status EndSection();

  /// Computes offsets and checksums, then emits header + manifest + the
  /// aligned payload area. When `manifest_out` is non-null the final
  /// manifest is copied there (its ContentHash() is the artifact hash).
  Status Finish(SnapshotManifest* manifest_out = nullptr);

 private:
  struct Pending {
    std::string name;
    std::string payload;
  };

  std::ostream* out_;
  bool delta_ = false;
  uint64_t base_hash_ = 0;
  bool finished_ = false;
  std::vector<Pending> sections_;
  std::optional<std::ostringstream> current_;
  std::string current_name_;
  Status status_;
};

/// Parsed view over one artifact. The reader never copies payload bytes:
/// construct it over storage that outlives it (ParseView) or hand it the
/// owned string (Parse).
class SnapshotReader {
 public:
  /// Parses and strictly validates the manifest + layout (alignment,
  /// ordering, '#' gaps, exact total length, manifest self-hash); does
  /// NOT verify section checksums — use ReadSection / VerifyAll.
  static Result<SnapshotReader> Parse(std::string data);
  static Result<SnapshotReader> ParseView(std::string_view data);

  // Moves re-anchor data_ to the owned buffer (a small-string move would
  // otherwise leave the view dangling).
  SnapshotReader(SnapshotReader&& other) noexcept { *this = std::move(other); }
  SnapshotReader& operator=(SnapshotReader&& other) noexcept {
    owned_ = std::move(other.owned_);
    data_ = owned_.empty() ? other.data_ : std::string_view(owned_);
    payload_offset_ = other.payload_offset_;
    is_delta_ = other.is_delta_;
    base_hash_ = other.base_hash_;
    manifest_ = std::move(other.manifest_);
    return *this;
  }
  SnapshotReader(const SnapshotReader&) = delete;
  SnapshotReader& operator=(const SnapshotReader&) = delete;

  bool is_delta() const { return is_delta_; }
  /// Content hash of the base snapshot a delta applies to (delta only).
  uint64_t base_hash() const { return base_hash_; }
  const SnapshotManifest& manifest() const { return manifest_; }

  /// The section payload after verifying its checksum. Errors name the
  /// failing section and its byte offset in the file.
  Result<std::string_view> ReadSection(std::string_view name) const;

  /// Verifies every section checksum (first failure wins).
  Status VerifyAll() const;

  /// File offset where the payload area starts (diagnostics).
  size_t payload_file_offset() const { return payload_offset_; }

 private:
  SnapshotReader() = default;

  static Result<SnapshotReader> ParseImpl(std::string_view data,
                                          std::string owned);

  std::string owned_;  // empty when constructed over external storage
  std::string_view data_;
  size_t payload_offset_ = 0;
  bool is_delta_ = false;
  uint64_t base_hash_ = 0;
  SnapshotManifest manifest_;
};

}  // namespace falcc::io

#endif  // FALCC_IO_SNAPSHOT_H_
