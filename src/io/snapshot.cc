#include "io/snapshot.h"

#include <algorithm>
#include <cstring>
#include <ostream>
#include <utility>

namespace falcc::io {

namespace {

constexpr uint64_t kFnvPrime = 1099511628211ull;
constexpr size_t kMaxSections = 100000;
constexpr size_t kMaxNameLength = 64;

uint64_t FnvByte(uint64_t hash, unsigned char byte) {
  return (hash ^ byte) * kFnvPrime;
}

uint64_t FnvU64(uint64_t hash, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash = FnvByte(hash, static_cast<unsigned char>(value >> (8 * i)));
  }
  return hash;
}

/// Strict unsigned decimal: no sign, no leading junk, no overflow.
bool ParseU64(std::string_view token, uint64_t* out) {
  if (token.empty() || token.size() > 20) return false;
  uint64_t value = 0;
  for (char c : token) {
    if (c < '0' || c > '9') return false;
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

/// Strict 16-digit lowercase hex.
bool ParseHash(std::string_view token, uint64_t* out) {
  if (token.size() != 16) return false;
  uint64_t value = 0;
  for (char c : token) {
    uint64_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint64_t>(c - 'a') + 10;
    } else {
      return false;
    }
    value = (value << 4) | digit;
  }
  *out = value;
  return true;
}

/// Splits `line` on single spaces; rejects empty fields (double spaces,
/// leading/trailing space) by returning an empty vector.
std::vector<std::string_view> SplitFields(std::string_view line) {
  std::vector<std::string_view> fields;
  size_t begin = 0;
  while (true) {
    const size_t space = line.find(' ', begin);
    const std::string_view field =
        space == std::string_view::npos ? line.substr(begin)
                                        : line.substr(begin, space - begin);
    if (field.empty()) return {};
    fields.push_back(field);
    if (space == std::string_view::npos) return fields;
    begin = space + 1;
  }
}

Status ManifestError(const std::string& what) {
  return Status::InvalidArgument("snapshot manifest: " + what);
}

/// Pulls the next '\n'-terminated line off `*rest`.
Status NextLine(std::string_view* rest, std::string_view* line,
                size_t* consumed) {
  const size_t nl = rest->find('\n');
  if (nl == std::string_view::npos) {
    return ManifestError("truncated before end of header");
  }
  *line = rest->substr(0, nl);
  *rest = rest->substr(nl + 1);
  *consumed += nl + 1;
  return Status::OK();
}

}  // namespace

uint64_t Fnv1a(std::string_view bytes, uint64_t seed) {
  uint64_t hash = seed;
  for (char c : bytes) hash = FnvByte(hash, static_cast<unsigned char>(c));
  return hash;
}

std::string HashHex(uint64_t hash) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kDigits[hash & 0xf];
    hash >>= 4;
  }
  return out;
}

const SectionInfo* SnapshotManifest::Find(std::string_view name) const {
  for (const SectionInfo& section : sections) {
    if (section.name == name) return &section;
  }
  return nullptr;
}

uint64_t SnapshotManifest::ContentHash() const {
  uint64_t hash = Fnv1a("");
  for (const SectionInfo& section : sections) {
    if (IsDerived(section.name)) continue;
    hash = Fnv1a(section.name, hash);
    hash = FnvByte(hash, 0);
    hash = FnvU64(hash, section.length);
    hash = FnvU64(hash, section.checksum);
  }
  return hash;
}

bool SnapshotManifest::IsDerived(std::string_view name) {
  return name == kFlatSectionName;
}

bool SnapshotManifest::ValidName(std::string_view name) {
  if (name.empty() || name.size() > kMaxNameLength) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

SnapshotWriter::SnapshotWriter(std::ostream* out) : out_(out) {
  FALCC_CHECK(out_ != nullptr, "SnapshotWriter: null output stream");
}

void SnapshotWriter::SetDeltaBase(uint64_t base_hash) {
  delta_ = true;
  base_hash_ = base_hash;
}

std::ostream* SnapshotWriter::BeginSection(std::string_view name) {
  if (status_.ok()) {
    if (finished_) {
      status_ = Status::Internal("SnapshotWriter: BeginSection after Finish");
    } else if (current_.has_value()) {
      status_ = Status::Internal(
          "SnapshotWriter: BeginSection inside open section '" +
          current_name_ + "'");
    } else if (!SnapshotManifest::ValidName(name)) {
      status_ = Status::InvalidArgument(
          "SnapshotWriter: invalid section name '" + std::string(name) + "'");
    } else {
      for (const Pending& section : sections_) {
        if (section.name == name) {
          status_ = Status::InvalidArgument(
              "SnapshotWriter: duplicate section '" + std::string(name) + "'");
          break;
        }
      }
    }
  }
  // Always hand back a usable sink so callers can stream unconditionally;
  // a poisoned writer simply discards everything at Finish.
  current_.emplace();
  current_->precision(17);
  current_name_ = std::string(name);
  return &current_.value();
}

Status SnapshotWriter::EndSection() {
  if (!current_.has_value()) {
    if (status_.ok()) {
      status_ = Status::Internal("SnapshotWriter: EndSection without Begin");
    }
    return status_;
  }
  if (status_.ok() && !current_.value()) {
    status_ = Status::IOError("SnapshotWriter: section '" + current_name_ +
                              "' stream failed");
  }
  if (status_.ok()) {
    sections_.push_back(Pending{current_name_, current_->str()});
  }
  current_.reset();
  current_name_.clear();
  return status_;
}

Status SnapshotWriter::Finish(SnapshotManifest* manifest_out) {
  if (status_.ok() && current_.has_value()) {
    status_ = Status::Internal("SnapshotWriter: Finish with open section '" +
                               current_name_ + "'");
  }
  if (status_.ok() && finished_) {
    status_ = Status::Internal("SnapshotWriter: Finish called twice");
  }
  if (status_.ok() && sections_.empty()) {
    status_ = Status::InvalidArgument("SnapshotWriter: no sections");
  }
  FALCC_RETURN_IF_ERROR(status_);
  finished_ = true;

  SnapshotManifest manifest;
  uint64_t offset = 0;
  for (const Pending& section : sections_) {
    offset = (offset + 7) & ~uint64_t{7};
    manifest.sections.push_back(SectionInfo{
        section.name, offset, section.payload.size(),
        Fnv1a(section.payload)});
    offset += section.payload.size();
  }

  std::ostringstream header;
  header << (delta_ ? kDeltaHeaderV2 : kSnapshotHeaderV2) << '\n';
  if (delta_) header << "base " << HashHex(base_hash_) << '\n';
  header << "sections " << manifest.sections.size() << '\n';
  for (const SectionInfo& section : manifest.sections) {
    header << "section " << section.name << ' ' << section.offset << ' '
           << section.length << ' ' << HashHex(section.checksum) << '\n';
  }
  header << "end " << HashHex(manifest.ContentHash()) << '\n';
  // Pad line: p '#' characters plus the newline, sized so the payload
  // area begins at an 8-byte-aligned file offset (mmap alignment of the
  // binary sections follows from page-aligned mapping bases).
  const size_t header_len = header.str().size();
  const size_t pad = (8 - (header_len + 1) % 8) % 8;
  header << std::string(pad, '#') << '\n';

  *out_ << header.str();
  uint64_t written = 0;
  for (const Pending& section : sections_) {
    const uint64_t aligned = (written + 7) & ~uint64_t{7};
    if (aligned > written) {
      *out_ << std::string(static_cast<size_t>(aligned - written), '#');
      written = aligned;
    }
    out_->write(section.payload.data(),
                static_cast<std::streamsize>(section.payload.size()));
    written += section.payload.size();
  }
  if (!*out_) return Status::IOError("SnapshotWriter: output stream failed");
  if (manifest_out != nullptr) *manifest_out = std::move(manifest);
  return Status::OK();
}

Result<SnapshotReader> SnapshotReader::Parse(std::string data) {
  std::string owned = std::move(data);
  const std::string_view view = owned;
  return ParseImpl(view, std::move(owned));
}

Result<SnapshotReader> SnapshotReader::ParseView(std::string_view data) {
  return ParseImpl(data, std::string());
}

Result<SnapshotReader> SnapshotReader::ParseImpl(std::string_view data,
                                                 std::string owned) {
  SnapshotReader reader;
  reader.owned_ = std::move(owned);
  reader.data_ = reader.owned_.empty() ? data : std::string_view(reader.owned_);

  std::string_view rest = reader.data_;
  size_t consumed = 0;
  std::string_view line;

  FALCC_RETURN_IF_ERROR(NextLine(&rest, &line, &consumed));
  if (line == kSnapshotHeaderV2) {
    reader.is_delta_ = false;
  } else if (line == kDeltaHeaderV2) {
    reader.is_delta_ = true;
  } else {
    return ManifestError("unknown header line");
  }

  if (reader.is_delta_) {
    FALCC_RETURN_IF_ERROR(NextLine(&rest, &line, &consumed));
    const std::vector<std::string_view> fields = SplitFields(line);
    if (fields.size() != 2 || fields[0] != "base" ||
        !ParseHash(fields[1], &reader.base_hash_)) {
      return ManifestError("malformed base line");
    }
  }

  FALCC_RETURN_IF_ERROR(NextLine(&rest, &line, &consumed));
  uint64_t num_sections = 0;
  {
    const std::vector<std::string_view> fields = SplitFields(line);
    if (fields.size() != 2 || fields[0] != "sections" ||
        !ParseU64(fields[1], &num_sections)) {
      return ManifestError("malformed sections line");
    }
  }
  if (num_sections == 0 || num_sections > kMaxSections) {
    return ManifestError("implausible section count");
  }

  uint64_t previous_end = 0;
  for (uint64_t i = 0; i < num_sections; ++i) {
    FALCC_RETURN_IF_ERROR(NextLine(&rest, &line, &consumed));
    const std::vector<std::string_view> fields = SplitFields(line);
    SectionInfo section;
    if (fields.size() != 5 || fields[0] != "section" ||
        !ParseU64(fields[2], &section.offset) ||
        !ParseU64(fields[3], &section.length) ||
        !ParseHash(fields[4], &section.checksum)) {
      return ManifestError("malformed section line " + std::to_string(i));
    }
    section.name = std::string(fields[1]);
    if (!SnapshotManifest::ValidName(section.name)) {
      return ManifestError("invalid section name '" + section.name + "'");
    }
    if (reader.manifest_.Has(section.name)) {
      return ManifestError("duplicate section '" + section.name + "'");
    }
    if (section.offset % 8 != 0) {
      return ManifestError("section '" + section.name + "' misaligned");
    }
    if (section.offset < previous_end ||
        section.offset - previous_end > 7) {
      return ManifestError("section '" + section.name +
                           "' offset out of order");
    }
    if (section.length > reader.data_.size() ||
        section.offset > reader.data_.size() - section.length) {
      return ManifestError("section '" + section.name +
                           "' exceeds the artifact");
    }
    previous_end = section.offset + section.length;
    reader.manifest_.sections.push_back(std::move(section));
  }

  FALCC_RETURN_IF_ERROR(NextLine(&rest, &line, &consumed));
  uint64_t declared_hash = 0;
  {
    const std::vector<std::string_view> fields = SplitFields(line);
    if (fields.size() != 2 || fields[0] != "end" ||
        !ParseHash(fields[1], &declared_hash)) {
      return ManifestError("malformed end line");
    }
  }
  if (declared_hash != reader.manifest_.ContentHash()) {
    return ManifestError("content hash does not match the section list");
  }

  // Pad line: '#' only, and it must actually leave the payload aligned.
  FALCC_RETURN_IF_ERROR(NextLine(&rest, &line, &consumed));
  if (line.size() > 7 ||
      line.find_first_not_of('#') != std::string_view::npos) {
    return ManifestError("malformed pad line");
  }
  if (consumed % 8 != 0) {
    return ManifestError("payload area is misaligned");
  }
  reader.payload_offset_ = consumed;

  if (rest.size() != previous_end) {
    return ManifestError("payload length mismatch (expected " +
                         std::to_string(previous_end) + " bytes, have " +
                         std::to_string(rest.size()) + ")");
  }
  // Inter-section gaps are writer padding and must look like it; anything
  // else is either corruption or data smuggled past the checksums.
  uint64_t cursor = 0;
  for (const SectionInfo& section : reader.manifest_.sections) {
    for (uint64_t b = cursor; b < section.offset; ++b) {
      if (rest[static_cast<size_t>(b)] != '#') {
        return ManifestError("non-padding byte between sections");
      }
    }
    cursor = section.offset + section.length;
  }
  return reader;
}

Result<std::string_view> SnapshotReader::ReadSection(
    std::string_view name) const {
  const SectionInfo* section = manifest_.Find(name);
  if (section == nullptr) {
    return Status::InvalidArgument("snapshot section '" + std::string(name) +
                                   "' not present");
  }
  const std::string_view payload = data_.substr(
      payload_offset_ + static_cast<size_t>(section->offset),
      static_cast<size_t>(section->length));
  const uint64_t actual = Fnv1a(payload);
  if (actual != section->checksum) {
    return Status::InvalidArgument(
        "snapshot section '" + section->name + "' checksum mismatch at file "
        "offset " + std::to_string(payload_offset_ + section->offset) +
        " (length " + std::to_string(section->length) + "): expected " +
        HashHex(section->checksum) + ", found " + HashHex(actual));
  }
  return payload;
}

Status SnapshotReader::VerifyAll() const {
  for (const SectionInfo& section : manifest_.sections) {
    FALCC_RETURN_IF_ERROR(ReadSection(section.name).status());
  }
  return Status::OK();
}

}  // namespace falcc::io
