// Read-only memory-mapped file with a heap fallback.
//
// The zero-copy load path serves compiled kernel tables directly out of
// the page cache: MappedFile mmaps the artifact PROT_READ/MAP_PRIVATE
// and the decoded sections alias the mapping (kept alive by shared_ptr
// ownership threaded through CompiledCombo::backing). On platforms or
// filesystems where mmap is unavailable the file is read into an owned
// buffer instead — same interface, one copy, identical bytes.
//
// Aliasing rule: the artifact must not be modified or truncated while a
// model loaded from it is alive. Replacing a snapshot in place is done
// by writing a new file and renaming over the old path — the mapping
// keeps the old inode's pages alive until the model drops it.

#ifndef FALCC_IO_MAPPED_FILE_H_
#define FALCC_IO_MAPPED_FILE_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "util/status.h"

namespace falcc::io {

class MappedFile {
 public:
  /// Maps `path` read-only (or reads it into memory when mmap is not
  /// available). Fails with IOError on open/stat/map errors and on empty
  /// files (no valid artifact is empty).
  static Result<MappedFile> Open(const std::string& path);

  MappedFile(MappedFile&& other) noexcept { *this = std::move(other); }
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  std::string_view view() const {
    return std::string_view(static_cast<const char*>(data_), size_);
  }
  size_t size() const { return size_; }
  /// False when the heap fallback was used.
  bool is_mapped() const { return mapped_; }

 private:
  MappedFile() = default;

  void Reset();

  const void* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;
  std::string fallback_;
};

}  // namespace falcc::io

#endif  // FALCC_IO_MAPPED_FILE_H_
