// Binary codec for the `flat` snapshot section: the compiled per-cluster
// kernel tables and centroids in a layout that can be served directly
// out of a read-only mapping, with no deserialize copy.
//
// Wire layout (all integers little-endian, every array 8-byte aligned
// relative to the section start, pad bytes zero):
//
//   u64 magic            "falcc-f2" (doubles as an endianness sentinel)
//   u64 k                number of clusters
//   u64 centroid_width   features per centroid
//   u64 num_groups       sensitive groups per combination
//   u64 num_slots        distinct compiled kernels
//   u32 slot_of_cluster[k]            (+4 zero bytes when k is odd)
//   f64 centroids[k * centroid_width] row-major
//   per slot s in [0, num_slots):
//     u64 num_trees
//     u64 num_nodes
//     32-byte entry x num_groups: u32 kind, u32 model, u32 tree_begin,
//                                 u32 tree_end, u32 compiled, u32 zero,
//                                 f64 alpha_sum
//     u32 pair (root, steps) x num_trees
//     f64 alphas[num_trees]
//     i32 feature[num_nodes]            (+4 zero bytes when odd)
//     f64 threshold[num_nodes]
//     u32 children[2 * num_nodes]
//     f64 leaf_proba[num_nodes]
//
// Slots are canonical: cluster order first-appearance, so slot s's first
// reference in slot_of_cluster comes after slot s - 1's and every slot
// is referenced. That makes the section a pure function of the model —
// the byte fixed-point tests depend on it.
//
// Decode aliases the payload when it is 8-byte aligned in memory (the
// mmap path — the manifest guarantees alignment relative to the file,
// and mappings are page aligned) and falls back to copying into owned
// arrays otherwise, with identical decisions either way. Every decoded
// kernel passes CompiledCombo::FromParts validation before use.

#ifndef FALCC_IO_FLAT_KERNEL_H_
#define FALCC_IO_FLAT_KERNEL_H_

#include <cstdint>
#include <memory>
#include <ostream>
#include <span>
#include <string_view>
#include <vector>

#include "ml/compiled_ensemble.h"
#include "util/status.h"

namespace falcc::io {

/// Serializes centroids + the compiled kernel tables. `slots[s]` is the
/// canonical kernel for slot s; `slot_of_cluster[c]` routes cluster c.
/// The caller is responsible for canonical slot order (see header
/// comment); sizes are validated here.
Status EncodeFlatSection(std::ostream* out,
                         std::span<const std::vector<double>> centroids,
                         std::span<const uint32_t> slot_of_cluster,
                         std::span<const CompiledCombo* const> slots);

/// A decoded flat section. The kernels alias the section payload (kept
/// alive through their backing) or own copies — callers cannot tell the
/// difference. Centroids and routing are copied out: they are small and
/// only compared against the authoritative text sections.
struct DecodedFlat {
  size_t centroid_width = 0;
  std::vector<uint32_t> slot_of_cluster;
  std::vector<double> centroids;  ///< row-major, k * centroid_width
  std::vector<std::shared_ptr<const CompiledCombo>> slot_kernels;
};

/// Parses and fully validates one flat section. `num_groups`,
/// `num_features`, and `pool_size` come from the snapshot's semantic
/// sections and pin the shapes the kernels must have. `backing` keeps
/// the payload alive for zero-copy kernels (pass the mapped file handle;
/// may be null only if the payload outlives every returned kernel).
Result<DecodedFlat> DecodeFlatSection(std::string_view payload,
                                      size_t num_groups, size_t num_features,
                                      size_t pool_size,
                                      std::shared_ptr<const void> backing);

}  // namespace falcc::io

#endif  // FALCC_IO_FLAT_KERNEL_H_
