#include "core/tuning.h"

#include <cmath>

#include "util/rng.h"

namespace falcc {

namespace {

// Cluster-weighted L̂ of `model` on `tune` using the model's own regions.
Result<double> ScoreOnTuneSet(const FalccModel& model, const Dataset& tune,
                              const GroupIndex& index,
                              FairnessMetric metric, double lambda) {
  const std::vector<int> predictions = model.ClassifyAll(tune);
  Result<std::vector<size_t>> groups_r = index.GroupsOf(tune);
  if (!groups_r.ok()) return groups_r.status();
  std::vector<size_t> regions(tune.num_rows());
  for (size_t i = 0; i < tune.num_rows(); ++i) {
    regions[i] = model.MatchCluster(tune.Row(i));
  }
  GroupedPredictions in;
  in.labels = tune.labels();
  in.predictions = predictions;
  in.groups = groups_r.value();
  in.num_groups = index.num_groups();
  Result<LossBreakdown> loss =
      LocalLoss(in, regions, model.num_clusters(), metric, lambda);
  if (!loss.ok()) return loss.status();
  return loss.value().combined;
}

}  // namespace

Result<TuneResult> TuneFalcc(const Dataset& train, const Dataset& validation,
                             const TuneOptions& options) {
  if (options.lambdas.empty() || options.proxy_strategies.empty() ||
      options.cluster_counts.empty()) {
    return Status::InvalidArgument("TuneFalcc: empty search space");
  }
  if (options.tune_fraction <= 0.0 || options.tune_fraction >= 1.0) {
    return Status::InvalidArgument("TuneFalcc: tune_fraction in (0,1)");
  }
  const size_t n = validation.num_rows();
  const size_t n_tune =
      static_cast<size_t>(std::floor(options.tune_fraction * n));
  if (n_tune < 10 || n - n_tune < 10) {
    return Status::InvalidArgument("TuneFalcc: validation data too small");
  }

  // Seeded split of the validation data into assess/tune partitions.
  Rng rng(options.seed);
  const std::vector<size_t> perm = rng.Permutation(n);
  const std::span<const size_t> all(perm);
  const Dataset assess = validation.Subset(all.subspan(n_tune));
  const Dataset tune = validation.Subset(all.subspan(0, n_tune));

  Result<GroupIndex> index = GroupIndex::Build(tune);
  if (!index.ok()) return index.status();

  FalccOptions best_options;
  double best_score = 1e300;
  size_t evaluated = 0;
  for (double lambda : options.lambdas) {
    for (ProxyMitigation strategy : options.proxy_strategies) {
      for (size_t k : options.cluster_counts) {
        FalccOptions candidate;
        candidate.lambda = lambda;
        candidate.metric = options.metric;
        candidate.proxy.strategy = strategy;
        candidate.fixed_k = k;
        candidate.seed = options.seed;
        Result<FalccModel> model =
            FalccModel::Train(train, assess, candidate);
        if (!model.ok()) return model.status();
        Result<double> score =
            ScoreOnTuneSet(model.value(), tune, index.value(),
                           options.metric, options.scoring_lambda);
        if (!score.ok()) return score.status();
        ++evaluated;
        if (score.value() < best_score) {
          best_score = score.value();
          best_options = candidate;
        }
      }
    }
  }

  // Retrain the winner on the full validation set.
  Result<FalccModel> final_model =
      FalccModel::Train(train, validation, best_options);
  if (!final_model.ok()) return final_model.status();

  TuneResult result(std::move(final_model).value());
  result.best_options = best_options;
  result.best_score = best_score;
  result.num_evaluated = evaluated;
  return result;
}

}  // namespace falcc
