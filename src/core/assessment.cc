#include "core/assessment.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace falcc {

namespace {

Status ValidateContext(const AssessmentContext& ctx) {
  if (ctx.votes == nullptr || ctx.votes->empty()) {
    return Status::InvalidArgument("assessment: missing vote matrix");
  }
  const size_t n = ctx.labels.size();
  if (n == 0) return Status::InvalidArgument("assessment: no labels");
  if (ctx.groups.size() != n) {
    return Status::InvalidArgument("assessment: groups size mismatch");
  }
  for (const auto& v : *ctx.votes) {
    if (v.size() != n) {
      return Status::InvalidArgument("assessment: vote row size mismatch");
    }
  }
  if (ctx.num_groups == 0) {
    return Status::InvalidArgument("assessment: num_groups must be positive");
  }
  return Status::OK();
}

}  // namespace

Result<double> AssessCombination(const AssessmentContext& ctx,
                                 const ModelCombination& combination,
                                 std::span<const size_t> rows) {
  FALCC_RETURN_IF_ERROR(ValidateContext(ctx));
  if (combination.size() != ctx.num_groups) {
    return Status::InvalidArgument("combination size != num_groups");
  }
  if (rows.empty()) {
    return Status::InvalidArgument("assessment: empty region");
  }

  std::vector<int> labels, predictions;
  std::vector<size_t> groups;
  labels.reserve(rows.size());
  predictions.reserve(rows.size());
  groups.reserve(rows.size());
  for (size_t row : rows) {
    if (row >= ctx.labels.size()) {
      return Status::InvalidArgument("assessment: row out of range");
    }
    const size_t g = ctx.groups[row];
    const size_t m = combination[g];
    if (m >= ctx.votes->size()) {
      return Status::InvalidArgument("assessment: model index out of range");
    }
    labels.push_back(ctx.labels[row]);
    predictions.push_back((*ctx.votes)[m][row]);
    groups.push_back(g);
  }

  if (ctx.mode == AssessmentMode::kConsistency) {
    // Individual fairness: unfairness = 1 − consistency, where each
    // sample's neighborhood is the rest of the region (cluster-as-kNN
    // approximation, paper §3.6).
    const size_t n = predictions.size();
    double wrong = 0.0, pos = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (predictions[i] != labels[i]) ++wrong;
      pos += predictions[i];
    }
    double inconsistency = 0.0;
    if (n > 1) {
      for (size_t i = 0; i < n; ++i) {
        const double others_mean =
            (pos - predictions[i]) / static_cast<double>(n - 1);
        inconsistency +=
            std::fabs(static_cast<double>(predictions[i]) - others_mean);
      }
      inconsistency /= static_cast<double>(n);
    }
    return ctx.lambda * wrong / static_cast<double>(n) +
           (1.0 - ctx.lambda) * inconsistency;
  }

  GroupedPredictions in;
  in.labels = labels;
  in.predictions = predictions;
  in.groups = groups;
  in.num_groups = ctx.num_groups;
  Result<LossBreakdown> loss = CombinedLoss(in, ctx.metric, ctx.lambda);
  if (!loss.ok()) return loss.status();
  return loss.value().combined;
}

Result<RegionBest> ReassessRegion(const AssessmentContext& ctx,
                                  const std::vector<ModelCombination>& combos,
                                  std::span<const size_t> rows) {
  if (combos.empty()) {
    return Status::InvalidArgument("assessment: no combinations");
  }
  if (rows.empty()) {
    return Status::InvalidArgument("assessment: empty region");
  }
  RegionBest best;
  best.loss = 1e300;
  for (size_t c = 0; c < combos.size(); ++c) {
    Result<double> loss = AssessCombination(ctx, combos[c], rows);
    if (!loss.ok()) return loss.status();
    if (loss.value() < best.loss) {
      best.loss = loss.value();
      best.index = c;
    }
  }
  return best;
}

Result<std::vector<size_t>> SelectBestCombinations(
    const AssessmentContext& ctx,
    const std::vector<ModelCombination>& combinations,
    const std::vector<std::vector<size_t>>& region_rows) {
  if (combinations.empty()) {
    return Status::InvalidArgument("assessment: no combinations");
  }
  std::vector<size_t> best(region_rows.size(), 0);
  for (size_t r = 0; r < region_rows.size(); ++r) {
    if (region_rows[r].empty()) {
      return Status::InvalidArgument("assessment: region " +
                                     std::to_string(r) + " is empty");
    }
    Result<RegionBest> winner =
        ReassessRegion(ctx, combinations, region_rows[r]);
    if (!winner.ok()) return winner.status();
    best[r] = winner.value().index;
  }
  return best;
}

Result<size_t> SelectGlobalBest(const AssessmentContext& ctx,
                                const std::vector<ModelCombination>& combos) {
  std::vector<size_t> all(ctx.labels.size());
  std::iota(all.begin(), all.end(), 0);
  std::vector<std::vector<size_t>> one_region = {std::move(all)};
  Result<std::vector<size_t>> best =
      SelectBestCombinations(ctx, combos, one_region);
  if (!best.ok()) return best.status();
  return best.value()[0];
}

Result<std::vector<size_t>> FilterTopCombinations(
    const AssessmentContext& ctx, const std::vector<ModelCombination>& combos,
    size_t keep) {
  if (keep == 0) {
    return Status::InvalidArgument("FilterTopCombinations: keep must be > 0");
  }
  std::vector<size_t> all(ctx.labels.size());
  std::iota(all.begin(), all.end(), 0);

  std::vector<std::pair<double, size_t>> scored;
  scored.reserve(combos.size());
  for (size_t c = 0; c < combos.size(); ++c) {
    Result<double> loss = AssessCombination(ctx, combos[c], all);
    if (!loss.ok()) return loss.status();
    scored.emplace_back(loss.value(), c);
  }
  std::sort(scored.begin(), scored.end());
  scored.resize(std::min(keep, scored.size()));

  std::vector<size_t> kept;
  kept.reserve(scored.size());
  for (const auto& [loss, idx] : scored) kept.push_back(idx);
  return kept;
}

}  // namespace falcc
