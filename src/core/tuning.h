// Automatic FALCC configuration (the paper's outlook, §5: "investigate
// how to simplify the configuration of FALCC using parameter estimation
// techniques").
//
// TuneFalcc grid-searches over candidate configurations (λ, proxy
// strategy, cluster-count selection): each candidate is trained on the
// training data with a *reduced* validation set and scored by the
// cluster-weighted combined loss L̂ on a held-out tune partition carved
// from the validation data. The winner is retrained on the full
// validation set.

#ifndef FALCC_CORE_TUNING_H_
#define FALCC_CORE_TUNING_H_

#include "core/falcc.h"

namespace falcc {

/// The tuning search space and protocol.
struct TuneOptions {
  std::vector<double> lambdas = {0.3, 0.5, 0.7};
  std::vector<ProxyMitigation> proxy_strategies = {
      ProxyMitigation::kNone, ProxyMitigation::kReweigh,
      ProxyMitigation::kRemove};
  /// Cluster counts to try; 0 = automatic (LOG-Means).
  std::vector<size_t> cluster_counts = {0};
  FairnessMetric metric = FairnessMetric::kDemographicParity;
  /// Fraction of the validation data held out for scoring candidates.
  double tune_fraction = 0.3;
  /// λ used for *scoring* candidates (how much the tuner itself values
  /// accuracy vs bias; candidates' own λ only affects their training).
  double scoring_lambda = 0.5;
  uint64_t seed = 1;
};

/// Outcome of a tuning run.
struct TuneResult {
  FalccOptions best_options;
  double best_score = 0.0;   ///< held-out L̂ of the winner
  size_t num_evaluated = 0;  ///< configurations tried
  FalccModel model;          ///< winner retrained on the full validation set

  TuneResult(FalccModel m) : model(std::move(m)) {}  // NOLINT
};

/// Runs the grid search. Fails if the search space is empty or the data
/// cannot support the tune split.
Result<TuneResult> TuneFalcc(const Dataset& train, const Dataset& validation,
                             const TuneOptions& options = {});

}  // namespace falcc

#endif  // FALCC_CORE_TUNING_H_
