// Model assessment (paper §3.6): evaluating candidate model combinations
// against the combined loss L̂ inside local regions, and retaining the
// best combination per region.

#ifndef FALCC_CORE_ASSESSMENT_H_
#define FALCC_CORE_ASSESSMENT_H_

#include "core/model_pool.h"
#include "fairness/loss.h"

namespace falcc {

/// What the unfairness part of L̂ measures during assessment.
enum class AssessmentMode {
  /// Group fairness: one of the Tab. 3 mean-difference metrics inside
  /// the region (the paper's default).
  kGroupFairness,
  /// Individual fairness: 1 − consistency, with the region itself used
  /// as each sample's neighborhood — the paper's §3.6 "leverage clusters
  /// as substitutes for kNN" approximation.
  kConsistency,
};

/// Precomputed context for assessing combinations on validation data.
struct AssessmentContext {
  /// votes[m][row]: prediction of model m on validation row `row`.
  const std::vector<std::vector<int>>* votes = nullptr;
  /// True labels of the validation rows.
  std::span<const int> labels;
  /// Sensitive group of each validation row.
  std::span<const size_t> groups;
  size_t num_groups = 0;
  AssessmentMode mode = AssessmentMode::kGroupFairness;
  FairnessMetric metric = FairnessMetric::kDemographicParity;
  double lambda = 0.5;
};

/// L̂ of one combination over the validation rows in `rows` (a local
/// region, possibly gap-filled with neighbors of missing groups).
Result<double> AssessCombination(const AssessmentContext& ctx,
                                 const ModelCombination& combination,
                                 std::span<const size_t> rows);

/// Winner of one region's assessment: the index (into the candidate
/// combination vector) of the combination minimizing L̂, and that loss.
struct RegionBest {
  size_t index = 0;
  double loss = 0.0;
};

/// Assesses every candidate combination over one region's rows and
/// returns the winner plus its L̂. This is the partial re-assessment
/// entry point of the online monitor: a drifted cluster is refreshed by
/// re-running exactly this selection over its windowed stream samples.
/// The argmin matches SelectBestCombinations on the same region (same
/// iteration order, ties to the lower index).
Result<RegionBest> ReassessRegion(const AssessmentContext& ctx,
                                  const std::vector<ModelCombination>& combos,
                                  std::span<const size_t> rows);

/// For each region, the index (into `combinations`) of the combination
/// minimizing L̂ over that region's rows. Ties go to the lower index, so
/// results are deterministic.
Result<std::vector<size_t>> SelectBestCombinations(
    const AssessmentContext& ctx,
    const std::vector<ModelCombination>& combinations,
    const std::vector<std::vector<size_t>>& region_rows);

/// Globally best combination (single region = whole validation set);
/// returns the index into `combinations`. This implements the Decouple
/// baseline's selection and FALCES's global pre-filtering.
Result<size_t> SelectGlobalBest(const AssessmentContext& ctx,
                                const std::vector<ModelCombination>& combos);

/// Indices of the `keep` combinations with lowest global L̂, ascending by
/// loss (FALCES pre-filtering step).
Result<std::vector<size_t>> FilterTopCombinations(
    const AssessmentContext& ctx, const std::vector<ModelCombination>& combos,
    size_t keep);

}  // namespace falcc

#endif  // FALCC_CORE_ASSESSMENT_H_
