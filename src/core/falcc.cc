#include "core/falcc.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <istream>
#include <map>
#include <memory>
#include <numeric>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>

#include "cluster/kdtree.h"
#include "io/flat_kernel.h"
#include "io/mapped_file.h"
#include "ml/adaboost.h"
#include "util/math.h"
#include "util/parallel.h"
#include "util/serialize.h"
#include "util/timer.h"

namespace falcc {

Result<FalccModel> FalccModel::Train(const Dataset& train,
                                     const Dataset& validation,
                                     const FalccOptions& options,
                                     OfflineStageTimes* stage_times) {
  Timer train_timer;
  DiverseTrainerOptions trainer = options.trainer;
  trainer.seed = options.seed;
  Result<DiversePool> diverse = TrainDiversePool(train, validation, trainer);
  if (!diverse.ok()) return diverse.status();

  ModelPool pool;
  for (auto& model : diverse.value().models) {
    pool.Add(std::move(model));
  }

  if (trainer.split_by_group) {
    // Split training (paper §3.1): one additional ensemble per sensitive
    // group, trained on that group's partition and applicable to it
    // only. Applicability is expressed in validation group ids since the
    // assessment and the online phase operate on those.
    Result<GroupIndex> train_index = GroupIndex::Build(train);
    if (!train_index.ok()) return train_index.status();
    Result<std::vector<std::vector<size_t>>> buckets =
        RowsByGroup(train_index.value(), train);
    if (!buckets.ok()) return buckets.status();
    Result<GroupIndex> val_index = GroupIndex::Build(validation);
    if (!val_index.ok()) return val_index.status();

    for (size_t g = 0; g < buckets.value().size(); ++g) {
      const std::vector<size_t>& rows = buckets.value()[g];
      if (rows.size() < trainer.min_group_rows) continue;
      const Dataset partition = train.Subset(rows);
      AdaBoostOptions boost;
      boost.num_estimators = 20;
      boost.base.max_depth = 4;
      boost.base.seed = options.seed + 300 + g;
      auto model = std::make_unique<AdaBoost>(boost);
      FALCC_RETURN_IF_ERROR(model->Fit(partition));
      const size_t val_g =
          val_index.value().GroupOfOrNearest(partition.Row(0));
      pool.Add(std::move(model), {val_g});
    }
  }

  if (stage_times != nullptr) {
    stage_times->train_seconds = train_timer.ElapsedSeconds();
  }
  return RunOfflinePhase(std::move(pool), validation, options,
                         diverse.value().entropy, stage_times);
}

Result<FalccModel> FalccModel::TrainWithPool(ModelPool pool,
                                             const Dataset& validation,
                                             const FalccOptions& options,
                                             double pool_entropy) {
  return RunOfflinePhase(std::move(pool), validation, options, pool_entropy);
}

Result<FalccModel> FalccModel::RunOfflinePhase(ModelPool pool,
                                               const Dataset& validation,
                                               const FalccOptions& options,
                                               double pool_entropy,
                                               OfflineStageTimes* stage_times) {
  Timer cluster_timer;
  if (validation.num_rows() < 2) {
    return Status::InvalidArgument("FALCC: validation data too small");
  }
  if (options.lambda < 0.0 || options.lambda > 1.0) {
    return Status::InvalidArgument("FALCC: lambda must be in [0,1]");
  }
  if (pool.size() == 0) {
    return Status::InvalidArgument("FALCC: empty model pool");
  }

  FalccModel model;
  model.pool_ = std::make_shared<const ModelPool>(std::move(pool));
  model.pool_entropy_ = pool_entropy;

  // Sensitive groups observed in the validation data.
  Result<GroupIndex> group_index = GroupIndex::Build(validation);
  if (!group_index.ok()) return group_index.status();
  model.group_index_ = std::move(group_index).value();
  const size_t num_groups = model.group_index_.num_groups();

  // Sample processing for the clustering space: standardization, proxy
  // mitigation, and projection of the sensitive attributes.
  ColumnTransform base = options.standardize
                             ? ColumnTransform::Standardize(validation)
                             : ColumnTransform::Identity(
                                   validation.num_features());
  Result<ColumnTransform> transform =
      BuildClusteringTransform(validation, options.proxy, std::move(base));
  if (!transform.ok()) return transform.status();
  model.clustering_transform_ = std::move(transform).value();

  const std::vector<std::vector<double>> points =
      model.clustering_transform_.ApplyAll(validation);

  // Clustering: fixed k, or automatic estimation with the configured
  // estimator (LOG-Means by default).
  size_t k = options.fixed_k;
  if (k == 0) {
    KEstimationOptions est = options.k_estimation;
    est.kmeans.seed = options.seed;
    est.k_max = std::min(est.k_max, validation.num_rows());
    switch (options.k_selection) {
      case FalccOptions::KSelection::kLogMeans: {
        Result<KEstimate> estimate = EstimateKLogMeans(points, est);
        if (!estimate.ok()) return estimate.status();
        k = estimate.value().k;
        break;
      }
      case FalccOptions::KSelection::kElbow: {
        Result<KEstimate> estimate = EstimateKElbow(points, est);
        if (!estimate.ok()) return estimate.status();
        k = estimate.value().k;
        break;
      }
      case FalccOptions::KSelection::kXMeans: {
        XMeansOptions xm;
        xm.k_min = est.k_min;
        xm.k_max = est.k_max;
        xm.kmeans = est.kmeans;
        Result<KMeansResult> estimate = RunXMeans(points, xm);
        if (!estimate.ok()) return estimate.status();
        k = estimate.value().centroids.size();
        break;
      }
    }
  }
  if (k > validation.num_rows()) {
    return Status::InvalidArgument("FALCC: k exceeds validation size");
  }
  KMeansOptions kmeans_options;
  kmeans_options.seed = options.seed;
  Result<KMeansResult> clustering = RunKMeans(points, k, kmeans_options);
  if (!clustering.ok()) return clustering.status();
  model.centroids_ = std::move(clustering.value().centroids);
  model.assignment_ = std::move(clustering.value().assignment);

  // Region row sets, gap-filled: every cluster must contain
  // representatives of every sensitive group (§3.5).
  Result<std::vector<size_t>> val_groups =
      model.group_index_.GroupsOf(validation);
  if (!val_groups.ok()) return val_groups.status();
  const std::vector<size_t>& groups = val_groups.value();

  std::vector<std::vector<size_t>> region_rows(k);
  for (size_t i = 0; i < validation.num_rows(); ++i) {
    region_rows[model.assignment_[i]].push_back(i);
  }

  // Per-group kd-trees are built lazily: most clusters cover all groups.
  std::vector<std::vector<bool>> group_masks(num_groups);
  Result<KdTree> tree = KdTree::Build(points);
  if (!tree.ok()) return tree.status();
  auto group_mask = [&](size_t g) -> const std::vector<bool>& {
    if (group_masks[g].empty()) {
      group_masks[g].assign(validation.num_rows(), false);
      for (size_t i = 0; i < validation.num_rows(); ++i) {
        group_masks[g][i] = groups[i] == g;
      }
    }
    return group_masks[g];
  };

  for (size_t c = 0; c < k; ++c) {
    if (region_rows[c].empty()) continue;  // empty cluster: nothing to fill
    std::vector<bool> present(num_groups, false);
    for (size_t row : region_rows[c]) present[groups[row]] = true;
    for (size_t g = 0; g < num_groups; ++g) {
      if (present[g]) continue;
      // Pull the gap_fill_k nearest validation samples of group g to the
      // cluster centroid into this cluster's assessment rows.
      const std::vector<size_t> nn = tree.value().NearestWhere(
          model.centroids_[c], options.gap_fill_k, group_mask(g));
      region_rows[c].insert(region_rows[c].end(), nn.begin(), nn.end());
    }
  }
  if (stage_times != nullptr) {
    stage_times->cluster_seconds = cluster_timer.ElapsedSeconds();
  }
  Timer assess_timer;

  // Drop empty regions from assessment but keep centroid indexing intact
  // by assigning them the globally best combination later.
  const std::vector<std::vector<int>> votes =
      model.pool_->PredictMatrix(validation);

  AssessmentContext ctx;
  ctx.votes = &votes;
  ctx.labels = validation.labels();
  ctx.groups = groups;
  ctx.num_groups = num_groups;
  ctx.mode = options.assessment_mode;
  ctx.metric = options.metric;
  ctx.lambda = options.lambda;

  Result<std::vector<ModelCombination>> combos =
      EnumerateCombinations(*model.pool_, num_groups);
  if (!combos.ok()) return combos.status();

  std::vector<size_t> all_rows(validation.num_rows());
  std::iota(all_rows.begin(), all_rows.end(), 0);
  Result<RegionBest> global_best =
      ReassessRegion(ctx, combos.value(), all_rows);
  if (!global_best.ok()) return global_best.status();

  // Per-cluster combination assessment: clusters are independent, each
  // task writes only its own selected_ / baseline slot. The winning L̂ is
  // kept per cluster — it anchors online drift detection.
  model.selected_.resize(k);
  model.baseline_loss_.assign(k, 0.0);
  model.assess_lambda_ = options.lambda;
  model.assess_metric_ = options.metric;
  model.assess_mode_ = options.assessment_mode;
  std::vector<Status> cluster_status(k);
  ParallelFor(0, k, 1, [&](size_t /*chunk*/, size_t lo, size_t hi) {
    for (size_t c = lo; c < hi; ++c) {
      if (region_rows[c].empty()) {
        model.selected_[c] = combos.value()[global_best.value().index];
        model.baseline_loss_[c] = global_best.value().loss;
        continue;
      }
      Result<RegionBest> best =
          ReassessRegion(ctx, combos.value(), region_rows[c]);
      if (!best.ok()) {
        cluster_status[c] = best.status();
        continue;
      }
      model.selected_[c] = combos.value()[best.value().index];
      model.baseline_loss_[c] = best.value().loss;
    }
  });
  for (const Status& status : cluster_status) {
    FALCC_RETURN_IF_ERROR(status);
  }
  FALCC_RETURN_IF_ERROR(model.BuildCentroidIndex());
  FALCC_RETURN_IF_ERROR(model.CompileKernels());
  if (stage_times != nullptr) {
    stage_times->assess_seconds = assess_timer.ElapsedSeconds();
  }
  return model;
}

Status FalccModel::CompileKernels() {
  const size_t k = centroids_.size();
  compiled_.assign(k, nullptr);
  // Clusters frequently select the same combination (the global best in
  // particular); they share one fused kernel.
  std::map<ModelCombination, std::shared_ptr<const CompiledCombo>> dedup;
  for (size_t c = 0; c < k; ++c) {
    auto [it, inserted] = dedup.try_emplace(selected_[c]);
    if (inserted) {
      Result<std::shared_ptr<const CompiledCombo>> combo =
          CompiledCombo::Compile(*pool_, selected_[c]);
      if (!combo.ok()) return combo.status();
      it->second = std::move(combo).value();
    }
    compiled_[c] = it->second;
  }
  RebuildComboSlots();
  return Status::OK();
}

void FalccModel::RebuildComboSlots() {
  combo_slot_.assign(compiled_.size(), 0);
  slot_kernel_.clear();
  std::map<const CompiledCombo*, uint32_t> slots;
  for (size_t c = 0; c < compiled_.size(); ++c) {
    const CompiledCombo* kernel = compiled_[c].get();
    auto [it, inserted] = slots.try_emplace(
        kernel, static_cast<uint32_t>(slot_kernel_.size()));
    if (inserted) slot_kernel_.push_back(kernel);
    combo_slot_[c] = it->second;
  }
}

Status FalccModel::BuildCentroidIndex() {
  Result<KdTree> index = KdTree::Build(centroids_);
  if (!index.ok()) return index.status();
  centroid_index_ = std::move(index).value();
  return Status::OK();
}

namespace {
constexpr char kModelHeader[] = "falcc-model-v1";
/// Optional trailing v1 section holding the monitoring anchors:
/// assessment parameters and the per-cluster baseline L̂. Artifacts
/// written before monitoring existed simply end after the combinations;
/// Load treats the section as absent and leaves the baselines empty.
constexpr char kMonitorSection[] = "falcc-monitor-v1";

// v2 section names, in canonical manifest order (the combo sections sit
// between clustering and monitor, one per cluster).
constexpr char kSectionMeta[] = "meta";
constexpr char kSectionPool[] = "pool";
constexpr char kSectionGroups[] = "groups";
constexpr char kSectionTransform[] = "transform";
constexpr char kSectionClustering[] = "clustering";
constexpr char kSectionMonitor[] = "monitor";
constexpr char kComboSectionPrefix[] = "combo.";

std::string ComboSectionName(size_t cluster) {
  return kComboSectionPrefix + std::to_string(cluster);
}

/// Every section parser ends with this: a v2 section is a closed unit,
/// so trailing tokens mean the artifact disagrees with its manifest.
Status ExpectSectionEnd(std::istream* in, const std::string& name) {
  std::string extra;
  if (*in >> extra) {
    return Status::InvalidArgument("FalccModel: trailing data in section '" +
                                   name + "'");
  }
  return Status::OK();
}

/// Strict "combo.<index>" parser for delta manifests: digits only, no
/// leading zeros, value below `num_clusters`.
Result<size_t> ParseComboSectionName(const std::string& name,
                                     size_t num_clusters) {
  const std::string_view prefix = kComboSectionPrefix;
  if (name.size() <= prefix.size() ||
      std::string_view(name).substr(0, prefix.size()) != prefix) {
    return Status::InvalidArgument(
        "FalccModel: delta may only carry combo sections, found '" + name +
        "'");
  }
  const std::string_view digits = std::string_view(name).substr(prefix.size());
  if (digits.size() > 1 && digits[0] == '0') {
    return Status::InvalidArgument("FalccModel: bad combo section name '" +
                                   name + "'");
  }
  size_t value = 0;
  for (char c : digits) {
    if (c < '0' || c > '9' || value > num_clusters) {
      return Status::InvalidArgument("FalccModel: bad combo section name '" +
                                     name + "'");
    }
    value = value * 10 + static_cast<size_t>(c - '0');
  }
  if (value >= num_clusters) {
    return Status::InvalidArgument("FalccModel: delta cluster " +
                                   std::to_string(value) + " out of range");
  }
  return value;
}
}  // namespace

Status FalccModel::Save(std::ostream* out) const {
  return Save(out, save_format_);
}

Status FalccModel::Save(std::ostream* out, SnapshotFormat format) const {
  return format == SnapshotFormat::kV1 ? SaveV1(out) : SaveV2(out, nullptr);
}

Status FalccModel::SaveV1(std::ostream* out) const {
  io::PrepareStream(out);
  *out << kModelHeader << '\n';
  *out << pool_entropy_ << '\n';
  FALCC_RETURN_IF_ERROR(pool_->Serialize(out));
  FALCC_RETURN_IF_ERROR(group_index_.Serialize(out));
  FALCC_RETURN_IF_ERROR(clustering_transform_.Serialize(out));
  *out << centroids_.size() << '\n';
  for (const auto& c : centroids_) io::WriteVector(out, c);
  *out << selected_.size() << '\n';
  for (const auto& combo : selected_) io::WriteVector(out, combo);
  // The monitor section is written only when monitoring anchors exist, so
  // a legacy artifact (no baselines) round-trips byte-identically through
  // Load → Save instead of growing a section it never had.
  if (!baseline_loss_.empty()) {
    *out << kMonitorSection << '\n';
    *out << assess_lambda_ << ' ' << static_cast<int>(assess_metric_) << ' '
         << static_cast<int>(assess_mode_) << '\n';
    io::WriteVector(out, baseline_loss_);
  }
  if (!*out) return Status::IOError("FalccModel serialization failed");
  return Status::OK();
}

void FalccModel::WriteComboSection(std::ostream* out, size_t cluster) const {
  io::WriteVector(out, selected_[cluster]);
  // Self-describing baseline: a delta section replays without the base
  // artifact in hand, so it must say whether a baseline exists.
  if (baseline_loss_.empty()) {
    *out << "none\n";
  } else {
    *out << "baseline " << baseline_loss_[cluster] << '\n';
  }
}

void FalccModel::CanonicalSlots(std::vector<uint32_t>* slot_of_cluster,
                                std::vector<size_t>* slot_clusters) const {
  slot_of_cluster->assign(selected_.size(), 0);
  slot_clusters->clear();
  std::map<ModelCombination, uint32_t> slots;
  for (size_t c = 0; c < selected_.size(); ++c) {
    auto [it, inserted] = slots.try_emplace(
        selected_[c], static_cast<uint32_t>(slot_clusters->size()));
    if (inserted) slot_clusters->push_back(c);
    (*slot_of_cluster)[c] = it->second;
  }
}

Status FalccModel::SaveV2(std::ostream* out,
                          io::SnapshotManifest* manifest_out) const {
  io::SnapshotWriter writer(out);
  *writer.BeginSection(kSectionMeta) << "entropy " << pool_entropy_ << '\n';
  FALCC_RETURN_IF_ERROR(writer.EndSection());
  FALCC_RETURN_IF_ERROR(pool_->Serialize(writer.BeginSection(kSectionPool)));
  FALCC_RETURN_IF_ERROR(writer.EndSection());
  FALCC_RETURN_IF_ERROR(
      group_index_.Serialize(writer.BeginSection(kSectionGroups)));
  FALCC_RETURN_IF_ERROR(writer.EndSection());
  FALCC_RETURN_IF_ERROR(
      clustering_transform_.Serialize(writer.BeginSection(kSectionTransform)));
  FALCC_RETURN_IF_ERROR(writer.EndSection());
  {
    std::ostream* s = writer.BeginSection(kSectionClustering);
    *s << centroids_.size() << '\n';
    for (const auto& c : centroids_) io::WriteVector(s, c);
    FALCC_RETURN_IF_ERROR(writer.EndSection());
  }
  for (size_t c = 0; c < selected_.size(); ++c) {
    WriteComboSection(writer.BeginSection(ComboSectionName(c)), c);
    FALCC_RETURN_IF_ERROR(writer.EndSection());
  }
  if (!baseline_loss_.empty()) {
    *writer.BeginSection(kSectionMonitor)
        << assess_lambda_ << ' ' << static_cast<int>(assess_metric_) << ' '
        << static_cast<int>(assess_mode_) << '\n';
    FALCC_RETURN_IF_ERROR(writer.EndSection());
  }
  // The flat section is derived state: written when kernels exist,
  // rebuilt (or verified) by Load when absent (or present). Slots are
  // keyed by combination value, not kernel pointer, so the bytes are a
  // pure function of (pool, selected_) — clones and fresh compiles
  // serialize identically.
  if (has_compiled_kernels()) {
    std::vector<uint32_t> slot_of_cluster;
    std::vector<size_t> slot_clusters;
    CanonicalSlots(&slot_of_cluster, &slot_clusters);
    std::vector<const CompiledCombo*> slots;
    slots.reserve(slot_clusters.size());
    for (size_t first_cluster : slot_clusters) {
      slots.push_back(compiled_[first_cluster].get());
    }
    FALCC_RETURN_IF_ERROR(io::EncodeFlatSection(
        writer.BeginSection(io::kFlatSectionName), centroids_,
        slot_of_cluster, slots));
    FALCC_RETURN_IF_ERROR(writer.EndSection());
  }
  return writer.Finish(manifest_out);
}

Result<FalccModel> FalccModel::Load(std::istream* in) {
  // Slurp once, then sniff the format from the first bytes. Incremental
  // token reads would work for v1 but a v2 manifest needs the byte
  // layout, and a single read path keeps stream-fault handling uniform.
  std::string bytes;
  char chunk[65536];
  for (;;) {
    in->read(chunk, sizeof(chunk));
    bytes.append(chunk, static_cast<size_t>(in->gcount()));
    if (!*in) break;
  }
  if (in->bad()) return Status::IOError("FalccModel: stream read failed");
  const std::string_view view(bytes);
  const auto starts_with = [view](const char* header) {
    const std::string_view h(header);
    return view.size() > h.size() && view.substr(0, h.size()) == h &&
           view[h.size()] == '\n';
  };
  if (starts_with(io::kSnapshotHeaderV2)) {
    Result<io::SnapshotReader> reader =
        io::SnapshotReader::Parse(std::move(bytes));
    if (!reader.ok()) return reader.status();
    return LoadV2(std::move(reader).value(), nullptr);
  }
  if (starts_with(io::kDeltaHeaderV2)) {
    return Status::InvalidArgument(
        "FalccModel: artifact is a delta snapshot; apply it to its base "
        "with ApplyDelta instead of loading it directly");
  }
  std::istringstream stream{std::move(bytes)};
  return LoadImpl(&stream, /*compile=*/true);
}

Result<FalccModel> FalccModel::LoadImpl(std::istream* in, bool compile) {
  FALCC_RETURN_IF_ERROR(io::Expect(in, kModelHeader));
  FalccModel model;
  // Sticky format: a legacy artifact keeps saving as v1 so the golden
  // byte-identity contract holds for existing snapshots.
  model.save_format_ = SnapshotFormat::kV1;
  FALCC_RETURN_IF_ERROR(io::Read(in, &model.pool_entropy_));

  Result<ModelPool> pool = ModelPool::Deserialize(in);
  if (!pool.ok()) return pool.status();
  model.pool_ = std::make_shared<const ModelPool>(std::move(pool).value());

  Result<GroupIndex> index = GroupIndex::Deserialize(in);
  if (!index.ok()) return index.status();
  model.group_index_ = std::move(index).value();

  Result<ColumnTransform> transform = ColumnTransform::Deserialize(in);
  if (!transform.ok()) return transform.status();
  model.clustering_transform_ = std::move(transform).value();

  size_t num_centroids = 0;
  FALCC_RETURN_IF_ERROR(io::Read(in, &num_centroids));
  if (num_centroids == 0 || num_centroids > 10000000) {
    return Status::InvalidArgument("FalccModel: implausible centroid count");
  }
  model.centroids_.resize(num_centroids);
  for (auto& c : model.centroids_) {
    FALCC_RETURN_IF_ERROR(io::ReadVector(in, &c));
    if (c.size() != model.clustering_transform_.num_output_features()) {
      return Status::InvalidArgument("FalccModel: centroid width mismatch");
    }
    for (double v : c) {
      if (!std::isfinite(v)) {
        return Status::InvalidArgument("FalccModel: non-finite centroid");
      }
    }
  }

  size_t num_selected = 0;
  FALCC_RETURN_IF_ERROR(io::Read(in, &num_selected));
  if (num_selected != num_centroids) {
    return Status::InvalidArgument(
        "FalccModel: combination count != centroid count");
  }
  model.selected_.resize(num_selected);
  for (auto& combo : model.selected_) {
    FALCC_RETURN_IF_ERROR(io::ReadVector(in, &combo));
    if (combo.size() != model.group_index_.num_groups()) {
      return Status::InvalidArgument("FalccModel: combination width");
    }
    for (size_t g = 0; g < combo.size(); ++g) {
      const size_t m = combo[g];
      if (m >= model.pool_->size()) {
        return Status::InvalidArgument("FalccModel: model index range");
      }
      if (!model.pool_->Applicable(m, g)) {
        return Status::InvalidArgument(
            "FalccModel: model " + std::to_string(m) +
            " selected for group " + std::to_string(g) +
            " it is not applicable to");
      }
    }
  }

  // Cross-component consistency: the sections above are individually
  // well-formed, but classification indexes samples of width
  // num_features() through the group index and every pool model, so a
  // mismatched pair of sections would read out of bounds (or trip an
  // internal abort) at serving time. Reject it here instead.
  const size_t width = model.num_features();
  for (size_t col : model.group_index_.sensitive_features()) {
    if (col >= width) {
      return Status::InvalidArgument(
          "FalccModel: sensitive column " + std::to_string(col) +
          " out of range for " + std::to_string(width) + " features");
    }
  }
  for (size_t m = 0; m < model.pool_->size(); ++m) {
    FALCC_RETURN_IF_ERROR(model.pool_->model(m).ValidateForWidth(width));
  }

  // Monitoring anchors: optional trailing section (absent in artifacts
  // saved before the drift monitor existed — those load with empty
  // baselines and default assessment parameters).
  std::string marker;
  if (*in >> marker) {
    if (marker != kMonitorSection) {
      return Status::InvalidArgument(
          "FalccModel: unexpected trailing token '" + marker + "'");
    }
    int metric = 0;
    int mode = 0;
    FALCC_RETURN_IF_ERROR(io::Read(in, &model.assess_lambda_));
    FALCC_RETURN_IF_ERROR(io::Read(in, &metric));
    FALCC_RETURN_IF_ERROR(io::Read(in, &mode));
    if (model.assess_lambda_ < 0.0 || model.assess_lambda_ > 1.0) {
      return Status::InvalidArgument("FalccModel: lambda out of range");
    }
    if (metric < 0 ||
        metric > static_cast<int>(FairnessMetric::kTreatmentEquality)) {
      return Status::InvalidArgument("FalccModel: unknown fairness metric");
    }
    if (mode < 0 || mode > static_cast<int>(AssessmentMode::kConsistency)) {
      return Status::InvalidArgument("FalccModel: unknown assessment mode");
    }
    model.assess_metric_ = static_cast<FairnessMetric>(metric);
    model.assess_mode_ = static_cast<AssessmentMode>(mode);
    FALCC_RETURN_IF_ERROR(io::ReadVector(in, &model.baseline_loss_));
    if (!model.baseline_loss_.empty() &&
        model.baseline_loss_.size() != num_centroids) {
      return Status::InvalidArgument(
          "FalccModel: baseline count != centroid count");
    }
    for (double loss : model.baseline_loss_) {
      if (!std::isfinite(loss)) {
        return Status::InvalidArgument("FalccModel: non-finite baseline");
      }
    }
  }
  FALCC_RETURN_IF_ERROR(model.BuildCentroidIndex());
  // Compile after every validation pass above: the kernels gather
  // through feature indices the width checks just vetted, so nothing an
  // accepted artifact contains can make a kernel read out of bounds.
  if (compile) {
    FALCC_RETURN_IF_ERROR(model.CompileKernels());
  }
  return model;
}

Result<FalccModel> FalccModel::LoadV2(io::SnapshotReader reader,
                                      std::shared_ptr<const void> backing) {
  if (reader.is_delta()) {
    return Status::InvalidArgument(
        "FalccModel: artifact is a delta snapshot; apply it to its base "
        "with ApplyDelta instead of loading it directly");
  }
  const io::SnapshotManifest& manifest = reader.manifest();
  // ReadSection verifies the section checksum; its error names the
  // failing section and file offset, which is the diagnostic v2 exists
  // to give.
  auto section = [&](const std::string& name) -> Result<std::string_view> {
    if (!manifest.Has(name)) {
      return Status::InvalidArgument("FalccModel: snapshot is missing the '" +
                                     name + "' section");
    }
    return reader.ReadSection(name);
  };

  FalccModel model;
  model.save_format_ = SnapshotFormat::kV2;
  {
    Result<std::string_view> payload = section(kSectionMeta);
    if (!payload.ok()) return payload.status();
    std::istringstream s{std::string(payload.value())};
    FALCC_RETURN_IF_ERROR(io::Expect(&s, "entropy"));
    FALCC_RETURN_IF_ERROR(io::Read(&s, &model.pool_entropy_));
    FALCC_RETURN_IF_ERROR(ExpectSectionEnd(&s, kSectionMeta));
  }
  {
    Result<std::string_view> payload = section(kSectionPool);
    if (!payload.ok()) return payload.status();
    std::istringstream s{std::string(payload.value())};
    Result<ModelPool> pool = ModelPool::Deserialize(&s);
    if (!pool.ok()) return pool.status();
    model.pool_ = std::make_shared<const ModelPool>(std::move(pool).value());
    FALCC_RETURN_IF_ERROR(ExpectSectionEnd(&s, kSectionPool));
  }
  {
    Result<std::string_view> payload = section(kSectionGroups);
    if (!payload.ok()) return payload.status();
    std::istringstream s{std::string(payload.value())};
    Result<GroupIndex> index = GroupIndex::Deserialize(&s);
    if (!index.ok()) return index.status();
    model.group_index_ = std::move(index).value();
    FALCC_RETURN_IF_ERROR(ExpectSectionEnd(&s, kSectionGroups));
  }
  {
    Result<std::string_view> payload = section(kSectionTransform);
    if (!payload.ok()) return payload.status();
    std::istringstream s{std::string(payload.value())};
    Result<ColumnTransform> transform = ColumnTransform::Deserialize(&s);
    if (!transform.ok()) return transform.status();
    model.clustering_transform_ = std::move(transform).value();
    FALCC_RETURN_IF_ERROR(ExpectSectionEnd(&s, kSectionTransform));
  }
  {
    Result<std::string_view> payload = section(kSectionClustering);
    if (!payload.ok()) return payload.status();
    std::istringstream s{std::string(payload.value())};
    size_t num_centroids = 0;
    FALCC_RETURN_IF_ERROR(io::Read(&s, &num_centroids));
    if (num_centroids == 0 || num_centroids > 10000000) {
      return Status::InvalidArgument("FalccModel: implausible centroid count");
    }
    model.centroids_.resize(num_centroids);
    for (auto& c : model.centroids_) {
      FALCC_RETURN_IF_ERROR(io::ReadVector(&s, &c));
      if (c.size() != model.clustering_transform_.num_output_features()) {
        return Status::InvalidArgument("FalccModel: centroid width mismatch");
      }
      for (double v : c) {
        if (!std::isfinite(v)) {
          return Status::InvalidArgument("FalccModel: non-finite centroid");
        }
      }
    }
    FALCC_RETURN_IF_ERROR(ExpectSectionEnd(&s, kSectionClustering));
  }
  const size_t k = model.centroids_.size();
  const size_t num_groups = model.group_index_.num_groups();

  // The manifest must list exactly the canonical sections in canonical
  // order — section layout is part of the format, and enforcing it keeps
  // Save ∘ Load ∘ Save a byte fixed point.
  const bool has_monitor = manifest.Has(kSectionMonitor);
  const bool has_flat = manifest.Has(io::kFlatSectionName);
  {
    std::vector<std::string> expected = {kSectionMeta, kSectionPool,
                                         kSectionGroups, kSectionTransform,
                                         kSectionClustering};
    for (size_t c = 0; c < k; ++c) expected.push_back(ComboSectionName(c));
    if (has_monitor) expected.push_back(kSectionMonitor);
    if (has_flat) expected.push_back(io::kFlatSectionName);
    if (manifest.sections.size() != expected.size()) {
      return Status::InvalidArgument(
          "FalccModel: snapshot has " +
          std::to_string(manifest.sections.size()) + " sections, expected " +
          std::to_string(expected.size()));
    }
    for (size_t i = 0; i < expected.size(); ++i) {
      if (manifest.sections[i].name != expected[i]) {
        return Status::InvalidArgument(
            "FalccModel: unexpected section '" + manifest.sections[i].name +
            "' at position " + std::to_string(i) + " (expected '" +
            expected[i] + "')");
      }
    }
  }

  if (has_monitor) {
    Result<std::string_view> payload = section(kSectionMonitor);
    if (!payload.ok()) return payload.status();
    std::istringstream s{std::string(payload.value())};
    int metric = 0;
    int mode = 0;
    FALCC_RETURN_IF_ERROR(io::Read(&s, &model.assess_lambda_));
    FALCC_RETURN_IF_ERROR(io::Read(&s, &metric));
    FALCC_RETURN_IF_ERROR(io::Read(&s, &mode));
    if (model.assess_lambda_ < 0.0 || model.assess_lambda_ > 1.0) {
      return Status::InvalidArgument("FalccModel: lambda out of range");
    }
    if (metric < 0 ||
        metric > static_cast<int>(FairnessMetric::kTreatmentEquality)) {
      return Status::InvalidArgument("FalccModel: unknown fairness metric");
    }
    if (mode < 0 || mode > static_cast<int>(AssessmentMode::kConsistency)) {
      return Status::InvalidArgument("FalccModel: unknown assessment mode");
    }
    model.assess_metric_ = static_cast<FairnessMetric>(metric);
    model.assess_mode_ = static_cast<AssessmentMode>(mode);
    FALCC_RETURN_IF_ERROR(ExpectSectionEnd(&s, kSectionMonitor));
    model.baseline_loss_.assign(k, 0.0);
  }

  model.selected_.resize(k);
  for (size_t c = 0; c < k; ++c) {
    const std::string name = ComboSectionName(c);
    Result<std::string_view> payload = section(name);
    if (!payload.ok()) return payload.status();
    std::istringstream s{std::string(payload.value())};
    ModelCombination& combo = model.selected_[c];
    FALCC_RETURN_IF_ERROR(io::ReadVector(&s, &combo));
    if (combo.size() != num_groups) {
      return Status::InvalidArgument("FalccModel: combination width");
    }
    for (size_t g = 0; g < combo.size(); ++g) {
      const size_t m = combo[g];
      if (m >= model.pool_->size()) {
        return Status::InvalidArgument("FalccModel: model index range");
      }
      if (!model.pool_->Applicable(m, g)) {
        return Status::InvalidArgument(
            "FalccModel: model " + std::to_string(m) + " selected for group " +
            std::to_string(g) + " it is not applicable to");
      }
    }
    std::string tag;
    if (!(s >> tag)) {
      return Status::InvalidArgument("FalccModel: truncated section '" + name +
                                     "'");
    }
    if (tag == "baseline") {
      if (!has_monitor) {
        return Status::InvalidArgument(
            "FalccModel: section '" + name +
            "' carries a baseline but the snapshot has no monitor section");
      }
      double loss = 0.0;
      FALCC_RETURN_IF_ERROR(io::Read(&s, &loss));
      if (!std::isfinite(loss)) {
        return Status::InvalidArgument("FalccModel: non-finite baseline");
      }
      model.baseline_loss_[c] = loss;
    } else if (tag == "none") {
      if (has_monitor) {
        return Status::InvalidArgument(
            "FalccModel: section '" + name +
            "' lacks a baseline despite the monitor section");
      }
    } else {
      return Status::InvalidArgument("FalccModel: bad baseline tag '" + tag +
                                     "' in section '" + name + "'");
    }
    FALCC_RETURN_IF_ERROR(ExpectSectionEnd(&s, name));
  }

  // Cross-component consistency (identical to the v1 checks): the online
  // phase indexes width-num_features() samples through the group index
  // and every pool model, so a mismatched pair of individually
  // well-formed sections must be rejected here.
  const size_t width = model.num_features();
  for (size_t col : model.group_index_.sensitive_features()) {
    if (col >= width) {
      return Status::InvalidArgument(
          "FalccModel: sensitive column " + std::to_string(col) +
          " out of range for " + std::to_string(width) + " features");
    }
  }
  for (size_t m = 0; m < model.pool_->size(); ++m) {
    FALCC_RETURN_IF_ERROR(model.pool_->model(m).ValidateForWidth(width));
  }
  FALCC_RETURN_IF_ERROR(model.BuildCentroidIndex());

  if (has_flat) {
    Result<std::string_view> payload = section(io::kFlatSectionName);
    if (!payload.ok()) return payload.status();
    Result<io::DecodedFlat> decoded = io::DecodeFlatSection(
        payload.value(), num_groups, width, model.pool_->size(), backing);
    if (!decoded.ok()) return decoded.status();
    const io::DecodedFlat& flat = decoded.value();
    auto flat_mismatch = [](const std::string& what) {
      return Status::InvalidArgument(
          "FalccModel: flat section does not match the semantic sections (" +
          what + ")");
    };
    if (flat.slot_of_cluster.size() != k) {
      return flat_mismatch("cluster count");
    }
    if (flat.centroid_width !=
        model.clustering_transform_.num_output_features()) {
      return flat_mismatch("centroid width");
    }
    // Centroid bit-equality against the authoritative text section: the
    // flat copy exists so the match stage can gather from one contiguous
    // array, and any divergence would silently re-route samples.
    for (size_t c = 0; c < k; ++c) {
      if (std::memcmp(model.centroids_[c].data(),
                      flat.centroids.data() + c * flat.centroid_width,
                      flat.centroid_width * sizeof(double)) != 0) {
        return flat_mismatch("centroid bits of cluster " + std::to_string(c));
      }
    }
    // Routing honesty: every (cluster, group) entry in the flat section
    // must dispatch to exactly the pool model the combo sections select.
    for (size_t c = 0; c < k; ++c) {
      const CompiledCombo& kernel =
          *flat.slot_kernels[flat.slot_of_cluster[c]];
      for (size_t g = 0; g < num_groups; ++g) {
        if (kernel.GroupModel(g) != model.selected_[c][g]) {
          return flat_mismatch("entry model of cluster " + std::to_string(c) +
                               ", group " + std::to_string(g));
        }
      }
    }
    if (backing != nullptr) {
      // Zero-copy install: the kernels alias the mapping (structural
      // safety was established by FromParts; `falcc_cli snapshot verify`
      // provides the full recompile check offline).
      model.compiled_.assign(k, nullptr);
      for (size_t c = 0; c < k; ++c) {
        model.compiled_[c] = flat.slot_kernels[flat.slot_of_cluster[c]];
      }
      model.RebuildComboSlots();
    } else {
      // Stream load: the pool stays authoritative — compile from it and
      // require the flat section to match bit for bit.
      FALCC_RETURN_IF_ERROR(model.CompileKernels());
      if (model.combo_slot_ != flat.slot_of_cluster ||
          model.slot_kernel_.size() != flat.slot_kernels.size()) {
        return flat_mismatch("kernel slot layout");
      }
      for (size_t s = 0; s < model.slot_kernel_.size(); ++s) {
        if (!model.slot_kernel_[s]->SameBits(*flat.slot_kernels[s])) {
          return flat_mismatch("kernel bits of slot " + std::to_string(s));
        }
      }
    }
  } else {
    FALCC_RETURN_IF_ERROR(model.CompileKernels());
  }
  model.manifest_ = manifest;
  return model;
}

Result<FalccModel> FalccModel::LoadMapped(const std::string& path) {
  Result<io::MappedFile> file = io::MappedFile::Open(path);
  if (!file.ok()) return file.status();
  auto holder = std::make_shared<const io::MappedFile>(std::move(file).value());
  const std::string_view view = holder->view();
  const std::string header = std::string(io::kSnapshotHeaderV2) + "\n";
  if (view.size() <= header.size() || view.substr(0, header.size()) != header) {
    // Legacy (or delta) artifact: no flat section to alias, so the
    // stream path is the same work.
    return LoadFromFile(path);
  }
  Result<io::SnapshotReader> reader = io::SnapshotReader::ParseView(view);
  if (!reader.ok()) return reader.status();
  return LoadV2(std::move(reader).value(), holder);
}

Status FalccModel::SaveDelta(std::ostream* out,
                             std::span<const size_t> clusters,
                             uint64_t base_hash) const {
  if (clusters.empty()) {
    return Status::InvalidArgument("SaveDelta: no clusters listed");
  }
  std::vector<size_t> sorted(clusters.begin(), clusters.end());
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (sorted[i] >= centroids_.size()) {
      return Status::InvalidArgument("SaveDelta: cluster " +
                                     std::to_string(sorted[i]) +
                                     " out of range");
    }
    if (i > 0 && sorted[i] == sorted[i - 1]) {
      return Status::InvalidArgument("SaveDelta: duplicate cluster " +
                                     std::to_string(sorted[i]));
    }
  }
  io::SnapshotWriter writer(out);
  writer.SetDeltaBase(base_hash);
  for (size_t c : sorted) {
    WriteComboSection(writer.BeginSection(ComboSectionName(c)), c);
    FALCC_RETURN_IF_ERROR(writer.EndSection());
  }
  return writer.Finish();
}

Result<FalccModel> FalccModel::ApplyDeltaBytes(std::string_view bytes) const {
  Result<io::SnapshotReader> parsed = io::SnapshotReader::ParseView(bytes);
  if (!parsed.ok()) return parsed.status();
  const io::SnapshotReader& reader = parsed.value();
  if (!reader.is_delta()) {
    return Status::InvalidArgument(
        "ApplyDelta: artifact is a full snapshot, not a delta");
  }
  Result<uint64_t> hash = ContentHash();
  if (!hash.ok()) return hash.status();
  if (reader.base_hash() != hash.value()) {
    // At-least-once feeds redeliver deltas. If every delta section is
    // already live bit for bit (same length and checksum as the equally
    // named section here), the post-apply content hash equals the live
    // one — the delta's effect is already installed, so accept it as a
    // success no-op and rebuild the identical model below. Anything
    // else is a genuine chain break.
    io::SnapshotManifest computed;
    const io::SnapshotManifest* live = nullptr;
    if (manifest_.has_value()) {
      live = &*manifest_;
    } else {
      std::ostringstream sink;
      if (SaveV2(&sink, &computed).ok()) live = &computed;
    }
    bool already_applied = live != nullptr;
    if (already_applied) {
      for (const io::SectionInfo& info : reader.manifest().sections) {
        const io::SectionInfo* have = live->Find(info.name);
        if (have == nullptr || have->length != info.length ||
            have->checksum != info.checksum) {
          already_applied = false;
          break;
        }
      }
    }
    if (!already_applied) {
      return Status::FailedPrecondition(
          "ApplyDelta: delta applies to base " +
          io::HashHex(reader.base_hash()) +
          " but the installed snapshot has content hash " +
          io::HashHex(hash.value()));
    }
  }
  const bool has_baselines = !baseline_loss_.empty();
  std::vector<ClusterRefresh> refreshes;
  std::vector<bool> seen(centroids_.size(), false);
  for (const io::SectionInfo& info : reader.manifest().sections) {
    Result<size_t> cluster =
        ParseComboSectionName(info.name, centroids_.size());
    if (!cluster.ok()) return cluster.status();
    if (seen[cluster.value()]) {
      return Status::InvalidArgument("ApplyDelta: duplicate cluster " +
                                     std::to_string(cluster.value()));
    }
    seen[cluster.value()] = true;
    Result<std::string_view> payload = reader.ReadSection(info.name);
    if (!payload.ok()) return payload.status();
    std::istringstream s{std::string(payload.value())};
    ClusterRefresh refresh;
    refresh.cluster = cluster.value();
    FALCC_RETURN_IF_ERROR(io::ReadVector(&s, &refresh.combination));
    std::string tag;
    if (!(s >> tag)) {
      return Status::InvalidArgument("ApplyDelta: truncated section '" +
                                     info.name + "'");
    }
    if (tag == "baseline") {
      if (!has_baselines) {
        return Status::InvalidArgument(
            "ApplyDelta: delta carries a baseline but the base snapshot "
            "has none");
      }
      FALCC_RETURN_IF_ERROR(io::Read(&s, &refresh.baseline_loss));
    } else if (tag == "none") {
      if (has_baselines) {
        return Status::InvalidArgument(
            "ApplyDelta: delta lacks a baseline the base snapshot tracks");
      }
    } else {
      return Status::InvalidArgument("ApplyDelta: bad baseline tag '" + tag +
                                     "' in section '" + info.name + "'");
    }
    FALCC_RETURN_IF_ERROR(ExpectSectionEnd(&s, info.name));
    refreshes.push_back(std::move(refresh));
  }
  // Combination validity (width, range, applicability, finite baseline)
  // is enforced by CloneWithRefreshes — the same gate the monitor's
  // in-process refresh goes through.
  return CloneWithRefreshes(refreshes);
}

Status FalccModel::EnsureManifest() {
  if (manifest_.has_value()) return Status::OK();
  std::ostringstream sink;
  io::SnapshotManifest manifest;
  FALCC_RETURN_IF_ERROR(SaveV2(&sink, &manifest));
  manifest_ = std::move(manifest);
  return Status::OK();
}

Result<uint64_t> FalccModel::ContentHash() const {
  if (manifest_.has_value()) return manifest_->ContentHash();
  std::ostringstream sink;
  io::SnapshotManifest manifest;
  FALCC_RETURN_IF_ERROR(SaveV2(&sink, &manifest));
  return manifest.ContentHash();
}

Result<FalccModel> FalccModel::CloneWithRefreshes(
    std::span<const ClusterRefresh> refreshes) const {
  // In-memory clone: the pool is shared (immutable, by far the largest
  // component) and everything else is copied, so the clone costs
  // O(refreshed clusters + routing tables), not a serialization round
  // trip of the whole model. Training diagnostics (assignment_) are not
  // carried over, matching what a save/load round trip would drop.
  FalccModel model;
  model.pool_ = pool_;
  model.pool_entropy_ = pool_entropy_;
  model.group_index_ = group_index_;
  model.clustering_transform_ = clustering_transform_;
  model.centroids_ = centroids_;
  model.centroid_index_ = centroid_index_;
  model.selected_ = selected_;
  model.baseline_loss_ = baseline_loss_;
  model.use_compiled_ = use_compiled_;
  model.assess_lambda_ = assess_lambda_;
  model.assess_metric_ = assess_metric_;
  model.assess_mode_ = assess_mode_;
  model.save_format_ = save_format_;
  for (const ClusterRefresh& refresh : refreshes) {
    if (refresh.cluster >= model.centroids_.size()) {
      return Status::InvalidArgument("CloneWithRefreshes: cluster " +
                                     std::to_string(refresh.cluster) +
                                     " out of range");
    }
    if (refresh.combination.size() != model.group_index_.num_groups()) {
      return Status::InvalidArgument(
          "CloneWithRefreshes: combination width != num_groups");
    }
    for (size_t g = 0; g < refresh.combination.size(); ++g) {
      const size_t m = refresh.combination[g];
      if (m >= model.pool_->size() || !model.pool_->Applicable(m, g)) {
        return Status::InvalidArgument(
            "CloneWithRefreshes: model " + std::to_string(m) +
            " is not applicable to group " + std::to_string(g));
      }
    }
    if (!std::isfinite(refresh.baseline_loss)) {
      return Status::InvalidArgument(
          "CloneWithRefreshes: non-finite baseline loss");
    }
    model.selected_[refresh.cluster] = refresh.combination;
    if (model.has_baseline_losses()) {
      model.baseline_loss_[refresh.cluster] = refresh.baseline_loss;
    }
  }
  if (has_compiled_kernels()) {
    // Kernel reuse: untouched clusters share this model's compiled
    // combos pointer-for-pointer; each distinct refreshed combination
    // compiles exactly once.
    model.compiled_ = compiled_;
    std::map<ModelCombination, std::shared_ptr<const CompiledCombo>> fresh;
    for (const ClusterRefresh& refresh : refreshes) {
      auto [it, inserted] = fresh.try_emplace(refresh.combination);
      if (inserted) {
        Result<std::shared_ptr<const CompiledCombo>> combo =
            CompiledCombo::Compile(*model.pool_, refresh.combination);
        if (!combo.ok()) return combo.status();
        it->second = std::move(combo).value();
      }
      model.compiled_[refresh.cluster] = it->second;
    }
    model.RebuildComboSlots();
  }
  // Incremental manifest update: a refresh changes only the refreshed
  // clusters' combo sections (and invalidates the derived flat cache),
  // so the clone's content hash is recomputed from per-section metadata
  // without serializing the model. Offsets go stale but nothing reads
  // them (ContentHash folds name/length/checksum only); EnsureManifest
  // on a fresh save restores exact offsets.
  if (manifest_.has_value()) {
    io::SnapshotManifest manifest = *manifest_;
    bool consistent = true;
    for (const ClusterRefresh& refresh : refreshes) {
      std::ostringstream payload;
      io::PrepareStream(&payload);
      model.WriteComboSection(&payload, refresh.cluster);
      const std::string bytes = std::move(payload).str();
      bool found = false;
      for (io::SectionInfo& info : manifest.sections) {
        if (info.name == ComboSectionName(refresh.cluster)) {
          info.length = bytes.size();
          info.checksum = io::Fnv1a(bytes);
          found = true;
          break;
        }
      }
      consistent = consistent && found;
    }
    std::erase_if(manifest.sections, [](const io::SectionInfo& info) {
      return info.name == io::kFlatSectionName;
    });
    if (consistent) model.manifest_ = std::move(manifest);
  }
  return model;
}

Status FalccModel::SaveToFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  FALCC_RETURN_IF_ERROR(Save(&out));
  out.flush();
  if (!out) return Status::IOError("write to " + path + " failed");
  return Status::OK();
}

Result<FalccModel> FalccModel::LoadFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  return Load(&in);
}

Status FalccModel::ValidateSample(std::span<const double> features) const {
  if (features.size() != num_features()) {
    return Status::InvalidArgument(
        "sample has " + std::to_string(features.size()) +
        " features; the model expects " + std::to_string(num_features()));
  }
  for (size_t j = 0; j < features.size(); ++j) {
    if (!std::isfinite(features[j])) {
      return Status::InvalidArgument("non-finite feature value in column " +
                                     std::to_string(j));
    }
  }
  return Status::OK();
}

size_t FalccModel::MatchCluster(std::span<const double> features) const {
  const Status valid = ValidateSample(features);
  FALCC_CHECK(valid.ok(), valid.ToString().c_str());
  const std::vector<double> processed = clustering_transform_.Apply(features);
  if (centroid_index_.has_value()) {
    return centroid_index_->Nearest1(processed);
  }
  return NearestCentroid(centroids_, processed);
}

Result<size_t> FalccModel::GroupOf(std::span<const double> features) const {
  FALCC_RETURN_IF_ERROR(ValidateSample(features));
  return group_index_.GroupOfOrNearest(features);
}

int FalccModel::Classify(std::span<const double> features) const {
  const size_t cluster = MatchCluster(features);
  const size_t group = group_index_.GroupOfOrNearest(features);
  const size_t m = selected_[cluster][group];
  return pool_->model(m).Predict(features);
}

double FalccModel::ClassifyProba(std::span<const double> features) const {
  const size_t cluster = MatchCluster(features);
  const size_t group = group_index_.GroupOfOrNearest(features);
  const size_t m = selected_[cluster][group];
  return pool_->model(m).PredictProba(features);
}

void FalccModel::ClassifyRowsInto(const Dataset& data,
                                  ClassifyResponse* response,
                                  ClassifyScratch* scratch) const {
  const size_t n = data.num_rows();
  std::vector<SampleDecision>& decisions = response->decisions;
  decisions.assign(n, SampleDecision{});
  Timer stage_timer;

  // Stage 1 — sample processing (§3.7 step 1) into one contiguous
  // row-major matrix (caller scratch, reused across batches). One
  // transform buffer per chunk: the per-sample Apply allocation
  // dominates the nearest-centroid lookup on small models.
  const size_t width = clustering_transform_.num_output_features();
  std::vector<double>& transformed = scratch->transformed;
  transformed.resize(n * width);
  ParallelFor(0, n, 256, [&](size_t /*chunk*/, size_t lo, size_t hi) {
    std::vector<double> scratch;
    for (size_t i = lo; i < hi; ++i) {
      clustering_transform_.ApplyInto(data.Row(i), &scratch);
      std::copy(scratch.begin(), scratch.end(),
                transformed.begin() + static_cast<ptrdiff_t>(i * width));
    }
  });
  response->stages.transform = stage_timer.ElapsedSeconds();
  stage_timer.Restart();

  // Stage 2 — route every row to the model stored for its (region,
  // group). The sensitive-key scratch buffer is reused across the chunk.
  ParallelFor(0, n, 256, [&](size_t /*chunk*/, size_t lo, size_t hi) {
    std::vector<double> key_scratch;
    for (size_t i = lo; i < hi; ++i) {
      const std::span<const double> point(transformed.data() + i * width,
                                          width);
      const size_t cluster = centroid_index_.has_value()
                                 ? centroid_index_->Nearest1(point)
                                 : NearestCentroid(centroids_, point);
      const size_t group =
          group_index_.GroupOfOrNearest(data.Row(i), &key_scratch);
      decisions[i].cluster = cluster;
      decisions[i].group = group;
      decisions[i].model = selected_[cluster][group];
    }
  });
  response->stages.match = stage_timer.ElapsedSeconds();
  stage_timer.Restart();

  // Stage 3 — batch inference. With compiled kernels, rows group by
  // (kernel slot, group): each segment runs one fused flat-node walk —
  // no group routing or per-model virtual dispatch inside the segment —
  // with non-lowerable models falling back to the interpreted batch
  // path. Without kernels, rows group by model exactly as before. The
  // counting sort keeps row ids ascending within each segment and
  // per-row results are independent, so the regrouping cannot change any
  // prediction; segments write disjoint slices of the shared scratch
  // probability buffer, so the parallel loop allocates nothing.
  const bool fused = use_compiled_ && has_compiled_kernels();
  const size_t groups = num_groups();
  const size_t num_keys =
      fused ? slot_kernel_.size() * groups : pool_->size();
  auto key_of = [&](const SampleDecision& d) {
    return fused ? combo_slot_[d.cluster] * groups + d.group : d.model;
  };
  std::vector<size_t>& offsets = scratch->offsets;
  std::vector<size_t>& cursor = scratch->cursor;
  std::vector<size_t>& rows = scratch->rows;
  std::vector<double>& proba = scratch->proba;
  offsets.assign(num_keys + 1, 0);
  for (size_t i = 0; i < n; ++i) ++offsets[key_of(decisions[i]) + 1];
  for (size_t s = 0; s < num_keys; ++s) offsets[s + 1] += offsets[s];
  rows.resize(n);
  proba.resize(n);
  cursor.assign(offsets.begin(), offsets.end() - 1);
  for (size_t i = 0; i < n; ++i) rows[cursor[key_of(decisions[i])]++] = i;
  ParallelFor(0, num_keys, 1, [&](size_t /*chunk*/, size_t lo, size_t hi) {
    for (size_t s = lo; s < hi; ++s) {
      const std::span<const size_t> segment_rows(rows.data() + offsets[s],
                                                 offsets[s + 1] - offsets[s]);
      if (segment_rows.empty()) continue;
      const std::span<double> segment_proba(proba.data() + offsets[s],
                                            segment_rows.size());
      if (fused) {
        const CompiledCombo& combo = *slot_kernel_[s / groups];
        const size_t g = s % groups;
        if (combo.GroupCompiled(g)) {
          combo.PredictGroup(data, g, segment_rows, segment_proba);
        } else {
          pool_->model(combo.GroupModel(g))
              .PredictProbaBatch(data, segment_rows, segment_proba);
        }
      } else {
        pool_->model(s).PredictProbaBatch(data, segment_rows, segment_proba);
      }
      for (size_t j = 0; j < segment_rows.size(); ++j) {
        SampleDecision& d = decisions[segment_rows[j]];
        d.probability = segment_proba[j];
        d.label = segment_proba[j] >= 0.5 ? 1 : 0;
      }
    }
  });
  response->stages.predict = stage_timer.ElapsedSeconds();
}

std::vector<int> FalccModel::ClassifyAll(const Dataset& data) const {
  FALCC_CHECK(data.num_features() == num_features(),
              "ClassifyAll: dataset width differs from model num_features()");
  ClassifyResponse response;
  ClassifyScratch scratch;
  ClassifyRowsInto(data, &response, &scratch);
  std::vector<int> out(data.num_rows());
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = response.decisions[i].label;
  }
  return out;
}

Result<ClassifyResponse> FalccModel::ClassifyBatch(
    const ClassifyRequest& request) const {
  // One scratch per serving thread: steady-state batches reuse the
  // transform matrix, sort arrays, and the wrapper Dataset without any
  // per-call allocation. Distinct models on one thread just re-grow it.
  static thread_local ClassifyScratch scratch;
  return ClassifyBatch(request, &scratch);
}

Result<ClassifyResponse> FalccModel::ClassifyBatch(
    const ClassifyRequest& request, ClassifyScratch* scratch) const {
  Timer validate_timer;
  const size_t width = num_features();
  if (request.num_features != width) {
    return Status::InvalidArgument(
        "ClassifyBatch: request num_features=" +
        std::to_string(request.num_features) + " but the model expects " +
        std::to_string(width));
  }
  if (request.features.size() % width != 0) {
    return Status::InvalidArgument(
        "ClassifyBatch: features.size()=" +
        std::to_string(request.features.size()) +
        " is not a multiple of num_features=" + std::to_string(width));
  }
  const size_t n = request.features.size() / width;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < width; ++j) {
      if (!std::isfinite(request.features[i * width + j])) {
        return Status::InvalidArgument(
            "ClassifyBatch: non-finite value in sample " + std::to_string(i) +
            ", column " + std::to_string(j));
      }
    }
  }
  ClassifyResponse response;
  response.stages.validate = validate_timer.ElapsedSeconds();
  if (n == 0) return response;

  // Wrap the request in a Dataset so the kernel (and the per-model
  // PredictProbaBatch underneath) can run unchanged: placeholder names
  // and labels, the model's own sensitive columns for group routing.
  // The wrapper lives in the scratch; when its cached schema still
  // matches this model, only the feature rows are replaced in place.
  Dataset& wrap = scratch->wrap;
  if (scratch->wrap_valid && wrap.num_features() == width &&
      wrap.sensitive_features() == group_index_.sensitive_features()) {
    wrap.ReplaceRows(request.features);
  } else {
    scratch->wrap_valid = false;
    std::vector<std::string> names(width);
    for (size_t j = 0; j < width; ++j) names[j] = "f" + std::to_string(j);
    Result<Dataset> data = Dataset::Create(
        std::move(names),
        std::vector<double>(request.features.begin(), request.features.end()),
        width, std::vector<int>(n, 0), group_index_.sensitive_features());
    if (!data.ok()) return data.status();
    wrap = std::move(data).value();
    scratch->wrap_valid = true;
  }
  ClassifyRowsInto(wrap, &response, scratch);
  return response;
}

}  // namespace falcc
